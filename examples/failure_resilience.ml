(* Fault tolerance through soft state (§3.1: "routing resiliency ...
   hosting servers for nodes with failed replicas will incur more load
   after failure than before, and will replicate again to meet new load
   conditions").

   Timeline:
     0–30 s   warm up under skewed load; replicas spread through the system
     t=30 s   fail-stop 12 of 64 servers (replica holders preferred)
     30–60 s  lookups keep resolving: messages to dead hosts bounce, the
              sender prunes the dead entry and retries an alternative;
              survivors re-replicate to absorb the shifted load
     t=60 s   revive the failed servers; the system re-balances

   Run with: dune exec examples/failure_resilience.exe *)

open Terradir_util
open Terradir_namespace
open Terradir
open Terradir_workload

let () =
  let tree = Build.balanced ~arity:2 ~levels:9 in
  let config = { Config.default with Config.num_servers = 64; seed = 41 } in
  let cluster = Cluster.create ~config ~tree () in
  let rate = 400.0 in
  let phases =
    [ { Stream.duration = 90.0; rate; dist = Stream.Zipf { alpha = 1.0; reshuffle = true } } ]
  in

  (* Schedule the failure and recovery around the workload. *)
  let victims = ref [] in
  Terradir_sim.Engine.schedule_at cluster.Cluster.engine 30.0 (fun () ->
      let holders =
        Array.to_list cluster.Cluster.servers
        |> List.filter (fun s -> s.Server.replica_count > 0)
        |> List.map (fun s -> s.Server.id)
      in
      let rest =
        List.init 64 Fun.id |> List.filter (fun id -> not (List.mem id holders))
      in
      victims := List.filteri (fun i _ -> i < 12) (holders @ rest);
      List.iter (Cluster.kill cluster) !victims;
      Printf.printf "t=30: killed %d servers (%d were replica holders)\n" (List.length !victims)
        (List.length (List.filter (fun v -> List.mem v holders) !victims)));
  Terradir_sim.Engine.schedule_at cluster.Cluster.engine 60.0 (fun () ->
      List.iter (Cluster.revive cluster) !victims;
      Printf.printf "t=60: revived all %d\n" (List.length !victims));

  Scenario.run cluster ~phases ~seed:43;

  let m = Cluster.metrics cluster in
  let drops = Timeseries.sums m.Metrics.drops_ts in
  let resolved_ts = Timeseries.sums m.Metrics.injected_ts in
  print_endline "\nphase                  injected/s  drops/s";
  let window label a b =
    let slice arr =
      let hi = min b (Array.length arr) in
      let acc = ref 0.0 in
      for i = a to hi - 1 do
        acc := !acc +. arr.(i)
      done;
      !acc /. float_of_int (max 1 (hi - a))
    in
    Printf.printf "%-22s %9.0f %9.1f\n" label (slice resolved_ts) (slice drops)
  in
  window "healthy (0-30s)" 0 30;
  window "12/64 dead (30-60s)" 30 60;
  window "recovered (60-90s)" 60 90;

  Printf.printf "\ntotals: injected=%d resolved=%d dropped=%d (%.2f%%)\n" m.Metrics.injected
    m.Metrics.resolved (Metrics.dropped_total m)
    (100.0 *. Metrics.drop_fraction m);
  Printf.printf "dropped at dead servers: %d, dead ends: %d, stale forwards pruned-and-retried: %d\n"
    m.Metrics.dropped_server_dead m.Metrics.dropped_dead_end m.Metrics.stale_forwards;
  Printf.printf "replicas created: %d (failure recovery re-replicates on its own)\n"
    m.Metrics.replicas_created;
  Printf.printf "alive servers at end: %d/64\n" (Cluster.alive_servers cluster);
  Cluster.check_invariants cluster
