(* Fault tolerance through soft state (§3.1: "routing resiliency ...
   hosting servers for nodes with failed replicas will incur more load
   after failure than before, and will replicate again to meet new load
   conditions") — expressed as a declarative chaos timeline.

   Timeline:
     0–30 s   warm up under skewed load; replicas spread through the system
     t=30 s   fail-stop ~19% of the servers (seeded deterministic pick)
     30–60 s  lookups keep resolving: messages to dead hosts bounce, the
              sender prunes the dead entry and retries an alternative;
              survivors re-replicate to absorb the shifted load
     t=60 s   revive every failed server; the system re-balances

   The chaos engine replays this as a typed timeline and hands back a
   resilience report: windowed availability, the availability floor while
   the servers are dead, and the time to reconvergence after the revival.

   Run with: dune exec examples/failure_resilience.exe *)

open Terradir_namespace
open Terradir
open Terradir_workload
module Chaos = Terradir_chaos

let () =
  let tree = Build.balanced ~arity:2 ~levels:9 in
  let config =
    {
      Config.default with
      Config.num_servers = 64;
      seed = 41;
      (* arm the rpc timers so queries stranded at dead servers fail fast
         and the fault window shows up as an availability dip, not a
         silent unresolved backlog *)
      rpc_timeout = 0.5;
      max_retries = 3;
      retry_backoff = 2.0;
    }
  in
  let cluster = Cluster.create ~config ~tree () in
  let workload =
    [ { Stream.duration = 90.0; rate = 400.0; dist = Stream.Zipf { alpha = 1.0; reshuffle = true } } ]
  in
  let timeline =
    Chaos.Timeline.make
      [
        (30.0, Chaos.Action.Kill_fraction { fraction = 0.19; salt = 41 });
        (60.0, Chaos.Action.Revive_killed);
      ]
  in
  let report =
    Chaos.Chaos.run ~window:2.0 ~scenario:"failure-resilience" ~seed:41 cluster ~workload
      ~workload_seed:43 ~timeline ()
  in
  List.iter (fun (k, v) -> Printf.printf "%-36s %s\n" k v) (Chaos.Report.summary_rows report);
  let m = Cluster.metrics cluster in
  Printf.printf "\ndropped at dead servers: %d, dead ends: %d, stale forwards pruned-and-retried: %d\n"
    m.Metrics.dropped_server_dead m.Metrics.dropped_dead_end m.Metrics.stale_forwards;
  Printf.printf "replicas created: %d (failure recovery re-replicates on its own)\n"
    m.Metrics.replicas_created;
  Printf.printf "alive servers at end: %d/64\n" (Cluster.alive_servers cluster);
  Cluster.check_invariants cluster
