(* Fault injection at the network layer: loss, jitter, timeouts and a
   mid-run partition.

   The transport under the cluster is a [Terradir_sim.Net]: every message
   samples its latency from a distribution, may be lost iid, and is
   silently swallowed while a partition covers its (src, dst) pair.  The
   issuer-side request timers ([rpc_timeout] > 0) are what turn silent
   loss into bounded retransmission instead of lost queries.

   Timeline:
     0–20 s   lossy steady state: 2% loss, ±30% jitter, retries enabled
     t=20 s   partition: servers 0–7 cut off from the other 24
     20–35 s  queries crossing the cut vanish; timers fire, retries burn,
              some requests time out
     t=35 s   heal; the backlog of retrying requests completes
     35–60 s  recovered lossy steady state.  Note drops are recorded when
              the *last* timer expires (~13 s after injection with these
              knobs), so partition-era failures surface post-heal.

   Run with: dune exec examples/lossy_network.exe *)

open Terradir_util
open Terradir_namespace
open Terradir_sim
open Terradir
open Terradir_workload

let () =
  let tree = Build.balanced ~arity:2 ~levels:8 in
  let config =
    {
      Config.default with
      Config.num_servers = 32;
      seed = 11;
      net_loss = 0.02;
      net_jitter = 0.3 *. Config.default.Config.network_delay;
      rpc_timeout = 1.0;
      max_retries = 4;
      retry_backoff = 1.5;
    }
  in
  let cluster = Cluster.create ~config ~tree () in
  let side_a = List.init 8 Fun.id in
  let side_b = List.init 24 (fun i -> i + 8) in
  let pid = ref None in
  Engine.schedule_at cluster.Cluster.engine 20.0 (fun () ->
      pid := Some (Net.partition cluster.Cluster.net ~a:side_a ~b:side_b);
      Printf.printf "t=20: partition installed (8 | 24 servers)\n");
  Engine.schedule_at cluster.Cluster.engine 35.0 (fun () ->
      Option.iter (Net.heal cluster.Cluster.net) !pid;
      Printf.printf "t=35: partition healed\n");

  Scenario.run cluster
    ~phases:[ { Stream.duration = 60.0; rate = 150.0; dist = Stream.Uniform } ]
    ~seed:7;

  let m = Cluster.metrics cluster in
  let injected_ts = Timeseries.sums m.Metrics.injected_ts in
  let drops_ts = Timeseries.sums m.Metrics.drops_ts in
  print_endline "\nphase                      injected/s  drops/s";
  let window label a b =
    let slice arr =
      let hi = min b (Array.length arr) in
      let acc = ref 0.0 in
      for i = a to hi - 1 do
        acc := !acc +. arr.(i)
      done;
      !acc /. float_of_int (max 1 (hi - a))
    in
    Printf.printf "%-26s %9.0f %9.1f\n" label (slice injected_ts) (slice drops_ts)
  in
  window "lossy (0-20s)" 0 20;
  window "partitioned (20-35s)" 20 35;
  window "healed, draining (35-60s)" 35 60;

  Printf.printf "\nnetwork: %d delivered, %d lost (%.2f%%), %d blocked by the partition\n"
    (Net.delivered cluster.Cluster.net)
    (Net.lost cluster.Cluster.net)
    (100.0
    *. float_of_int (Net.lost cluster.Cluster.net)
    /. float_of_int (max 1 (Net.delivered cluster.Cluster.net + Net.lost cluster.Cluster.net)))
    (Net.blocked_count cluster.Cluster.net);
  Printf.printf
    "recovery: %d query + %d fetch retransmits, %d late replies discarded, %d timed out\n"
    m.Metrics.query_retransmits m.Metrics.fetch_retransmits m.Metrics.late_replies
    m.Metrics.dropped_timeout;
  Printf.printf "totals: injected=%d resolved=%d dropped=%d (%.2f%%)\n\n" m.Metrics.injected
    m.Metrics.resolved (Metrics.dropped_total m)
    (100.0 *. Metrics.drop_fraction m);
  print_string (Terradir_experiments.Csv_export.metrics_csv m);
  Cluster.check_invariants cluster
