(* Quickstart: build a namespace, start a simulated TerraDir deployment,
   run a query stream against it, and read the results.

   Run with: dune exec examples/quickstart.exe *)

open Terradir_util
open Terradir_namespace
open Terradir
open Terradir_workload

let () =
  (* 1. A namespace: a perfectly balanced binary tree with levels 0..9
        (1023 nodes).  Real deployments would use Build.of_paths or
        Build.coda_like. *)
  let tree = Build.balanced ~arity:2 ~levels:9 in
  Printf.printf "namespace: %s\n" (Build.describe tree);

  (* 2. A cluster of 64 servers with the full protocol (caching +
        replication + digests). *)
  let config = { Config.default with Config.num_servers = 64; seed = 7 } in
  let cluster = Cluster.create ~config ~tree () in
  Printf.printf "servers: %d, owned nodes/server ~ %.1f\n" (Cluster.num_servers cluster)
    (float_of_int (Tree.size tree) /. float_of_int (Cluster.num_servers cluster));

  (* 3. Drive it: 20 simulated seconds of uniform lookups, then 20 seconds
        of heavily skewed (Zipf 1.2) lookups — watch replication absorb the
        hot-spot. *)
  let rate = 400.0 in
  let phases =
    Stream.unif ~rate ~duration:20.0
    @ [ { Stream.duration = 20.0; rate; dist = Stream.Zipf { alpha = 1.2; reshuffle = true } } ]
  in
  Scenario.run cluster ~phases ~seed:11;

  (* 4. Results. *)
  let m = Cluster.metrics cluster in
  print_endline "\n== run summary ==";
  Tablefmt.print ~header:[ "metric"; "value" ]
    (List.map (fun (k, v) -> [ k; v ]) (Metrics.summary_rows m));

  Printf.printf "\nreplicas now hosted: %d\n" (Cluster.total_replicas cluster);
  let per_level = Cluster.replicas_per_level cluster `Current in
  print_endline "avg replicas per node, by namespace level:";
  Array.iteri (fun d avg -> Printf.printf "  level %2d: %.2f\n" d avg) per_level;

  (* 5. Name-level API: look up where a node lives. *)
  let name = "/0/1/0" in
  (match Tree.find_string tree name with
  | None -> Printf.printf "%s: not in namespace\n" name
  | Some node ->
    let owner = cluster.Cluster.owner_of.(node) in
    let hosts =
      Array.to_list cluster.Cluster.servers
      |> List.filter (fun s -> Server.hosts s node)
      |> List.map (fun s -> s.Server.id)
    in
    Printf.printf "\n%s -> node %d, owner server %d, hosts now: [%s]\n" name node owner
      (String.concat "; " (List.map string_of_int hosts)));

  Cluster.check_invariants cluster;
  print_endline "invariants: OK"
