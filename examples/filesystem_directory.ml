(* A wide-area distributed file-system directory — the paper's driving use
   case (TerraDir namespaces are "much like file names in Unix
   file-systems", and the evaluation's N_C namespace is a Coda file
   server's tree).

   We serve a ~20k-node file-system namespace from 96 peers, run Zipf
   lookups over it (file popularity is Zipf — Breslau et al.), and compare
   caching-only (BC) against the full adaptive protocol (BCR) on the same
   workload: latency, hop count, drops, and where the replicas went.

   Run with: dune exec examples/filesystem_directory.exe *)

open Terradir_util
open Terradir_namespace
open Terradir
open Terradir_workload

let describe_run label features =
  let tree = Build.coda_like ~target:20_000 () in
  let config = { Config.default with Config.num_servers = 96; features; seed = 31 } in
  let cluster = Cluster.create ~config ~tree () in
  let phases =
    Stream.unif ~rate:500.0 ~duration:20.0
    @ [ { Stream.duration = 60.0; rate = 500.0; dist = Stream.Zipf { alpha = 1.0; reshuffle = true } } ]
  in
  Scenario.run cluster ~phases ~seed:37;
  let m = Cluster.metrics cluster in
  Printf.printf "%-4s  latency %5.0f ms   hops %4.2f   drop %6.4f   replicas %5d   shortcuts %d\n"
    label
    (1000.0 *. Stats.mean m.Metrics.latency)
    (Stats.mean m.Metrics.hops) (Metrics.drop_fraction m) m.Metrics.replicas_created
    m.Metrics.shortcut_forwards;
  cluster

let () =
  let tree_info = Build.describe (Build.coda_like ~target:20_000 ()) in
  Printf.printf "namespace: %s\n\n" tree_info;

  let _bc = describe_run "BC" Config.bc in
  let bcr = describe_run "BCR" Config.bcr in

  (* Where did the adaptive protocol put the state?  Top of the namespace
     (hierarchical bottleneck) plus the Zipf head (hot files). *)
  print_endline "\nreplicas created per node, by directory depth (BCR):";
  let per_level = Cluster.replicas_per_level bcr `Created in
  Array.iteri (fun d avg -> if avg > 0.005 then Printf.printf "  depth %2d: %6.2f\n" d avg) per_level;

  (* Resolve one path end-to-end through the public API. *)
  let tree = bcr.Cluster.tree in
  let deep =
    Tree.leaves tree
    |> List.fold_left (fun acc v -> if Tree.depth tree v > Tree.depth tree acc then v else acc) 0
  in
  Printf.printf "\ndeepest file: %s (depth %d), owned by server %d, hosted by %d server(s)\n"
    (Tree.name_string tree deep) (Tree.depth tree deep)
    bcr.Cluster.owner_of.(deep)
    (Array.to_list bcr.Cluster.servers
    |> List.filter (fun s -> Server.hosts s deep)
    |> List.length);

  (* Directory listing as a complex query (§2.1): glob one level under the
     deepest file's grandparent, then fetch the file's data (step two). *)
  let dir = Tree.ancestor_at_depth tree deep (Tree.depth tree deep - 1) in
  let listing = ref None in
  Search.glob bcr ~src:0
    ~pattern:(Tree.name_string tree dir ^ "/*")
    ~on_done:(fun r -> listing := Some r);
  let fetched = ref None in
  Cluster.fetch bcr ~client:0 ~node:deep ~on_done:(fun o -> fetched := Some o);
  Cluster.run_until bcr (Cluster.now bcr +. 30.0);
  (match !listing with
  | Some r ->
    Printf.printf "\nls %s -> %d entries (%d lookups, %.0f ms)\n"
      (Tree.name_string tree dir) (List.length r.Search.matched) r.Search.lookups_issued
      (1000.0 *. r.Search.latency)
  | None -> print_endline "listing did not complete");
  (match !fetched with
  | Some (Cluster.Fetched { latency }) ->
    Printf.printf "cat %s -> data fetched in %.0f ms\n" (Tree.name_string tree deep)
      (1000.0 *. latency)
  | Some Cluster.Fetch_failed -> print_endline "fetch failed"
  | None -> print_endline "fetch did not complete");

  (* And the route a lookup for that file would take right now (Fig. 1). *)
  print_newline ();
  print_string (Trace.to_string bcr (Trace.route bcr ~src:7 ~dst:deep));
  Cluster.check_invariants bcr
