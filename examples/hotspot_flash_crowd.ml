(* Flash crowd: a calm uniform workload, then a sudden extreme hot-spot
   (the paper's motivating scenario — §1 "arbitrary and instantaneous
   changes in demand distribution") — expressed as a chaos timeline.

   A background uniform stream runs throughout; at t = 30 s the timeline
   fires a Flash_crowd action: a Zipf-1.5 stream with four instantaneous
   popularity re-rankings slams the system.  Watch the per-window report:
   availability wobbles at each shift, replicas chase the hot nodes, and
   the trajectory settles back once the crowd passes.

   Run with: dune exec examples/hotspot_flash_crowd.exe *)

open Terradir_util
open Terradir_namespace
open Terradir
open Terradir_workload
module Chaos = Terradir_chaos

let () =
  let tree = Build.balanced ~arity:2 ~levels:10 in
  let config = { Config.default with Config.num_servers = 128; seed = 23 } in
  let cluster = Cluster.create ~config ~tree () in
  let background = Stream.unif ~rate:300.0 ~duration:120.0 in
  let flash_phases =
    List.init 4 (fun _ ->
        { Stream.duration = 22.5; rate = 900.0; dist = Stream.Zipf { alpha = 1.5; reshuffle = true } })
  in
  let timeline =
    Chaos.Timeline.make [ (30.0, Chaos.Action.Flash_crowd { phases = flash_phases; seed = 6 }) ]
  in
  let report =
    Chaos.Chaos.run ~window:5.0 ~scenario:"hotspot-flash-crowd" ~seed:23 cluster
      ~workload:background ~workload_seed:5 ~timeline ()
  in
  print_endline "t(s)   issued  resolved  avail   p99(s)  replicas   (flash crowd starts at t=30)";
  List.iter
    (fun w ->
      Printf.printf "%5.0f  %7d %9d  %.3f  %7.3f  %8d\n" w.Chaos.Report.w_start
        w.Chaos.Report.issued w.Chaos.Report.resolved w.Chaos.Report.availability
        w.Chaos.Report.p99_latency w.Chaos.Report.replicas_created)
    report.Chaos.Report.windows;
  let m = Cluster.metrics cluster in
  Printf.printf "\ntotals: injected=%d resolved=%d dropped=%d replicas=%d sessions=%d\n"
    m.Metrics.injected m.Metrics.resolved (Metrics.dropped_total m) m.Metrics.replicas_created
    m.Metrics.sessions_started;
  Printf.printf "drop fraction: %.4f; mean lookup latency: %.0f ms\n"
    (Metrics.drop_fraction m)
    (1000.0 *. Stats.mean m.Metrics.latency);
  Cluster.check_invariants cluster
