(* Flash crowd: a calm uniform workload, then a sudden extreme hot-spot
   (the paper's motivating scenario — §1 "arbitrary and instantaneous
   changes in demand distribution").

   A background uniform stream runs throughout; at t = 30 s a Zipf-1.5
   stream with four instantaneous popularity re-rankings slams the system.
   Watch: drops spike momentarily at each shift, replicas chase the hot
   nodes, and the maximum server load sinks back toward the high-water
   threshold.

   Run with: dune exec examples/hotspot_flash_crowd.exe *)

open Terradir_util
open Terradir_namespace
open Terradir
open Terradir_workload

(* Per-second sums padded to [bins]. *)
let per_second ts bins =
  let sums = Timeseries.sums ts in
  Array.init bins (fun i -> if i < Array.length sums then sums.(i) else 0.0)

let () =
  let tree = Build.balanced ~arity:2 ~levels:10 in
  let config = { Config.default with Config.num_servers = 128; seed = 23 } in
  let cluster = Cluster.create ~config ~tree () in

  let background = Stream.unif ~rate:300.0 ~duration:120.0 in
  let flash_crowd =
    (* a negligible trickle for 30 s stands in for "not started yet", then
       shifting Zipf-1.5 hammering *)
    { Stream.duration = 30.0; rate = 1.0; dist = Stream.Uniform }
    :: List.init 4 (fun _ ->
           {
             Stream.duration = 22.5;
             rate = 900.0;
             dist = Stream.Zipf { alpha = 1.5; reshuffle = true };
           })
  in
  Scenario.run_interleaved cluster ~streams:[ (background, 5); (flash_crowd, 6) ];

  let m = Cluster.metrics cluster in
  let drops = per_second m.Metrics.drops_ts 120 in
  let replicas = per_second m.Metrics.replicas_ts 120 in
  let max_load = Timeseries.maxima m.Metrics.load_max_ts in

  print_endline "t(s)  drops/s  replicas-created/s  max-load   (flash crowd starts at t=30)";
  Array.iteri
    (fun t d ->
      if t mod 5 = 0 then
        Printf.printf "%4d  %7.0f  %18.0f  %8.2f\n" t d
          (if t < Array.length replicas then replicas.(t) else 0.0)
          (if t < Array.length max_load then max_load.(t) else 0.0))
    drops;

  Printf.printf "\ntotals: injected=%d resolved=%d dropped=%d replicas=%d sessions=%d\n"
    m.Metrics.injected m.Metrics.resolved (Metrics.dropped_total m) m.Metrics.replicas_created
    m.Metrics.sessions_started;
  Printf.printf "drop fraction: %.4f; mean lookup latency: %.0f ms\n"
    (Metrics.drop_fraction m)
    (1000.0 *. Stats.mean m.Metrics.latency);
  Cluster.check_invariants cluster
