(* Benchmark harness:

   1. Bechamel micro-benchmarks of the protocol's hot operations.
   2. Regeneration of every table and figure in the paper's evaluation
      (§4), at a configurable scale, fanned out over TERRADIR_JOBS domains.
   3. A machine-readable report, written to TERRADIR_BENCH_OUT (default
      BENCH_results.json; schema documented in EXPERIMENTS.md).

   The default scale is 1/32 of the paper's 4096-server testbed so the
   whole suite completes in minutes; set TERRADIR_BENCH_SCALE (e.g. 0.125)
   to run closer to paper scale, and TERRADIR_BENCH_SEED to vary runs.
   Per-server utilization — the quantity behind every result — is
   preserved by the scaling (see Experiments.Common). *)

module E = Terradir_experiments

let getenv_float name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some v -> ( match float_of_string_opt v with Some f -> f | None -> default)

let getenv_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)

let scale = getenv_float "TERRADIR_BENCH_SCALE" (1.0 /. 32.0)

let seed = getenv_int "TERRADIR_BENCH_SEED" 42

let out_file =
  match Sys.getenv_opt "TERRADIR_BENCH_OUT" with
  | Some f -> f
  | None -> "BENCH_results.json"

(* Durations in simulated seconds: compressed relative to the paper's
   250 s (Figs. 3–6) and 10000 s (Fig. 8) horizons so the whole suite
   finishes in minutes — each series still contains the warmup, multiple
   popularity shifts, and (for Fig. 8) an unambiguous decay tail.  Pass a
   larger TERRADIR_BENCH_SCALE and edit here for paper-scale runs. *)
let durations =
  [
    ("fig3", 180.0);
    ("fig4", 180.0);
    ("fig5", 100.0);
    ("fig6", 180.0);
    ("fig7", 120.0);
    ("fig8", 480.0);
    ("fig9", 80.0);
    ("rfact", 120.0);
    ("ablations", 100.0);
    ("hetero", 110.0);
  ]

type figure_report = {
  id : string;
  wall_s : float;
  events : int;
  minor_words : int;  (** minor-heap words allocated across the figure's cells *)
  promoted_words : int;
}

(* One representative full-system run whose latency/hop distributions go
   into the report (schema v2 "histograms"): fig3's uniform stream,
   compressed.  The histograms come from [Metrics] itself (log-bucketed,
   RNG-free) so no observability level needs to be on. *)
let histogram_summaries () =
  let setup = E.Common.make ~scale ~seed E.Common.NS in
  let phases =
    E.Common.unif_stream setup ~paper_rate:E.Common.paper_lambda_fig3 ~duration:30.0
  in
  let cluster = E.Runner.run_phases setup phases in
  let m = Terradir.Cluster.metrics cluster in
  [
    ("latency_s", Terradir_obs.Hist.summary_fields m.Terradir.Metrics.latency_hist);
    ("hops", Terradir_obs.Hist.summary_fields m.Terradir.Metrics.hops_hist);
  ]

(* Hand-written JSON (the image carries no JSON library); every string we
   emit is a known identifier, so escaping only needs the basics. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let write_report ~jobs ~total_wall ~micro ~figures ~histograms =
  let micro_json =
    micro
    |> List.map (fun (name, ns) ->
           Printf.sprintf "    { \"name\": %s, \"ns_per_run\": %s }" (json_string name)
             (json_float ns))
    |> String.concat ",\n"
  in
  let figures_json =
    figures
    |> List.map (fun f ->
           let events_per_sec =
             if f.wall_s > 0.0 then float_of_int f.events /. f.wall_s else 0.0
           in
           let per_event w =
             if f.events > 0 then float_of_int w /. float_of_int f.events else 0.0
           in
           Printf.sprintf
             "    { \"id\": %s, \"wall_s\": %s, \"events_executed\": %d, \"events_per_sec\": \
              %s, \"minor_words_per_event\": %s, \"promoted_words_per_event\": %s }"
             (json_string f.id) (json_float f.wall_s) f.events (json_float events_per_sec)
             (json_float (per_event f.minor_words))
             (json_float (per_event f.promoted_words)))
    |> String.concat ",\n"
  in
  let histograms_json =
    histograms
    |> List.map (fun (name, fields) ->
           Printf.sprintf "    { \"name\": %s, %s }" (json_string name)
             (String.concat ", "
                (List.map
                   (fun (k, v) -> Printf.sprintf "\"%s\": %s" k (json_float v))
                   fields)))
    |> String.concat ",\n"
  in
  let oc = open_out out_file in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 2,\n\
    \  \"scale\": %s,\n\
    \  \"seed\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"total_wall_s\": %s,\n\
    \  \"micro_ns_per_run\": [\n%s\n  ],\n\
    \  \"histograms\": [\n%s\n  ],\n\
    \  \"figures\": [\n%s\n  ]\n\
     }\n"
    (json_float scale) seed jobs (json_float total_wall) micro_json histograms_json figures_json;
  close_out oc;
  Printf.printf "Report written to %s\n" out_file

let () =
  let t0 = Unix.gettimeofday () in
  let jobs = E.Runner.jobs () in
  Printf.printf
    "TerraDir soft-state replication benchmark suite (scale=%.4f, seed=%d, jobs=%d)\n\n%!"
    scale seed jobs;
  let micro = Micro.run () in
  print_endline "\n== representative run (latency/hop histograms) ==";
  let histograms = histogram_summaries () in
  List.iter
    (fun (name, fields) ->
      Printf.printf "  %-10s %s\n%!" name
        (String.concat "  " (List.map (fun (k, v) -> Printf.sprintf "%s=%.4g" k v) fields)))
    histograms;
  let figures =
    List.map
      (fun entry ->
        let id = entry.E.Registry.id in
        let duration = List.assoc_opt id durations in
        let events_before = E.Runner.events_executed () in
        let minor_before = E.Runner.minor_words_allocated () in
        let promoted_before = E.Runner.promoted_words_allocated () in
        let start = Unix.gettimeofday () in
        Printf.printf "\n===== %s =====\n%!" id;
        entry.E.Registry.run ~scale ?duration ~seed ();
        let wall_s = Unix.gettimeofday () -. start in
        let events = E.Runner.events_executed () - events_before in
        (* Figures run sequentially, so the counter deltas attribute
           cleanly even though each figure fans its cells out in
           parallel (workers fold their regions in before the figure
           returns). *)
        let minor_words = E.Runner.minor_words_allocated () - minor_before in
        let promoted_words = E.Runner.promoted_words_allocated () - promoted_before in
        Printf.printf "[%s completed in %.1fs wall, %d engine events, %.1f minor words/event]\n%!"
          id wall_s events
          (if events > 0 then float_of_int minor_words /. float_of_int events else 0.0);
        { id; wall_s; events; minor_words; promoted_words })
      E.Registry.all
  in
  let total_wall = Unix.gettimeofday () -. t0 in
  Printf.printf "\nTotal wall time: %.1fs\n" total_wall;
  write_report ~jobs ~total_wall ~micro ~figures ~histograms
