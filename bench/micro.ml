(* Micro-benchmarks of the protocol's hot operations (Bechamel).

   These are the per-event costs that determine how large a deployment the
   simulator can replay: one routing decision, one map merge, one digest
   test, one cache insert, one engine event. *)

open Bechamel
open Toolkit
open Terradir_util
open Terradir_namespace
open Terradir
open Types

(* A server warmed up with replicas, cache entries and remote digests, as it
   would look mid-run. *)
let warmed_server () =
  let tree = Build.balanced ~arity:2 ~levels:11 in
  let config = { Config.default with Config.num_servers = 256; seed = 5 } in
  let rng = Splitmix.create 99 in
  let s = Server.create ~id:0 ~config ~tree ~rng () in
  let owner_of node = node mod config.Config.num_servers in
  (* 8 owned nodes spread over the tree *)
  for i = 0 to 7 do
    Server.add_owned s ((i * 37) mod Tree.size tree) ~owner_of ~now:0.0
  done;
  (* 16 replicas *)
  let payload node =
    {
      rp_node = node;
      rp_meta_version = 1;
      rp_map = Node_map.singleton ~is_owner:true ~server:(owner_of node) ~stamp:1.0 ();
      rp_context =
        List.map
          (fun nb -> (nb, Node_map.singleton ~is_owner:true ~server:(owner_of nb) ~stamp:1.0 ()))
          (Tree.neighbors tree node);
      rp_weight_hint = 2.0;
    }
  in
  for i = 0 to 15 do
    ignore (Server.install_replica s (payload (((i * 101) + 13) mod Tree.size tree)) ~now:1.0)
  done;
  (* cache entries *)
  for i = 0 to 23 do
    Cache.insert s.Server.cache ~node:(((i * 211) + 7) mod Tree.size tree)
      (Node_map.singleton ~server:(i mod 256) ~stamp:2.0 ())
  done;
  (* remote digests *)
  for peer = 1 to 16 do
    let hosted = List.init 24 (fun i -> ((peer * 400) + (i * 17)) mod Tree.size tree) in
    Digest_store.record_remote s.Server.digests ~server:peer ~version:1
      (Terradir_bloom.Bloom.of_list ~bits_per_element:16 ~hashes:10 hosted);
    Server.note_peer_load s peer (float_of_int peer /. 20.0)
  done;
  (s, tree)

let bench_routing_decide =
  let s, tree = warmed_server () in
  let dst = ref 1 in
  Test.make ~name:"routing_decide" (Staged.stage (fun () ->
      dst := ((!dst * 7919) + 11) mod Tree.size tree;
      ignore (Routing.decide s ~dst:!dst)))

(* The same decision against a server that has learned a digest from every
   peer of a 256-server deployment (the remote store at its cap) and the
   believed load of all 255 — the shape fig9's larger sizes hit on every
   hop.  Guards the two fixes that made that figure collapse: the shortcut
   walk must touch only its MRU prefix, not the whole store, and the
   replication trigger's believed-mean check must stay O(1). *)
let bench_routing_decide_full_store =
  let s, tree = warmed_server () in
  for peer = 1 to 255 do
    let hosted = List.init 24 (fun i -> ((peer * 401) + (i * 19)) mod Tree.size tree) in
    Digest_store.record_remote s.Server.digests ~server:peer ~version:2
      (Terradir_bloom.Bloom.of_list ~bits_per_element:16 ~hashes:10 hosted);
    Server.note_peer_load s peer (float_of_int peer /. 300.0)
  done;
  let dst = ref 1 in
  Test.make ~name:"routing_decide_full_store" (Staged.stage (fun () ->
      dst := ((!dst * 7919) + 11) mod Tree.size tree;
      ignore (Routing.decide s ~dst:!dst)))

let bench_replication_trigger =
  let s, _tree = warmed_server () in
  for peer = 1 to 255 do
    Server.note_peer_load s peer (float_of_int peer /. 300.0)
  done;
  (* Two busy windows put the sustained load above the floor so the
     adaptive-threshold arm (the formerly O(peers) one) is what's timed. *)
  let t = ref 0.0 in
  for _ = 1 to 4 do
    Load_meter.begin_busy s.Server.load !t;
    t := !t +. 0.45;
    Load_meter.end_busy s.Server.load !t;
    t := !t +. 0.05
  done;
  Test.make ~name:"replication_trigger" (Staged.stage (fun () ->
      t := !t +. 1e-7;
      ignore (Replication.should_start s ~now:!t)))

let bench_tree_distance =
  let tree = Build.balanced ~arity:2 ~levels:14 in
  let a = ref 1 and b = ref 2 in
  Test.make ~name:"tree_distance" (Staged.stage (fun () ->
      a := ((!a * 7919) + 3) mod Tree.size tree;
      b := ((!b * 104729) + 5) mod Tree.size tree;
      ignore (Tree.distance tree !a !b)))

let bench_node_map_merge =
  let rng = Splitmix.create 3 in
  let mk stamp = Node_map.of_entries ~max:4
      [
        { Node_map.server = 1; is_owner = true; stamp };
        { Node_map.server = 2; is_owner = false; stamp = stamp +. 1.0 };
        { Node_map.server = 3; is_owner = false; stamp = stamp +. 2.0 };
      ]
  in
  let a = mk 1.0 and b = mk 5.0 in
  Test.make ~name:"node_map_merge" (Staged.stage (fun () -> ignore (Node_map.merge ~max:4 rng a b)))

let bench_node_map_merge_subsumed =
  let rng = Splitmix.create 3 in
  let a =
    Node_map.of_entries ~max:4
      [
        { Node_map.server = 1; is_owner = true; stamp = 9.0 };
        { Node_map.server = 2; is_owner = false; stamp = 9.0 };
      ]
  in
  Test.make ~name:"node_map_merge_subsumed"
    (Staged.stage (fun () -> ignore (Node_map.merge ~max:4 rng a a)))

let bench_bloom_mem =
  let bloom = Terradir_bloom.Bloom.of_list ~bits_per_element:16 ~hashes:10 (List.init 24 (fun i -> i * 17)) in
  let x = ref 0 in
  Test.make ~name:"bloom_mem_negative" (Staged.stage (fun () ->
      incr x;
      ignore (Terradir_bloom.Bloom.mem bloom (1_000_000 + !x))))

let bench_cache_insert =
  let rng = Splitmix.create 4 in
  let cache = Cache.create ~slots:24 ~r_map:4 ~rng () in
  let map = Node_map.singleton ~server:3 ~stamp:1.0 () in
  let node = ref 0 in
  Test.make ~name:"cache_insert" (Staged.stage (fun () ->
      node := (!node + 97) land 1023;
      Cache.insert cache ~node:!node map))

let bench_engine_event =
  Test.make ~name:"engine_schedule_run" (Staged.stage (fun () ->
      let e = Terradir_sim.Engine.create () in
      for _ = 1 to 10 do
        Terradir_sim.Engine.schedule e ~delay:1.0 (fun () -> ())
      done;
      Terradir_sim.Engine.run e))

let bench_load_meter =
  let m = Load_meter.create ~window:0.5 in
  let t = ref 0.0 in
  Test.make ~name:"load_meter_cycle" (Staged.stage (fun () ->
      t := !t +. 0.001;
      Load_meter.begin_busy m !t;
      t := !t +. 0.001;
      Load_meter.end_busy m !t;
      ignore (Load_meter.load m !t)))

let bench_node_map_of_entries =
  (* 24 entries with duplicate servers and mixed owner flags — the shape
     [merge] and context assembly feed through [of_entries]. *)
  let entries =
    List.init 24 (fun i ->
        { Node_map.server = i mod 9; is_owner = i mod 5 = 0; stamp = float_of_int ((i * 31) mod 17) })
  in
  Test.make ~name:"node_map_of_entries"
    (Staged.stage (fun () -> ignore (Node_map.of_entries ~max:8 entries)))

let bench_splitmix_exp =
  let g = Splitmix.create 8 in
  Test.make ~name:"splitmix_exponential" (Staged.stage (fun () -> ignore (Splitmix.exponential g 0.02)))

(* The hook pattern every protocol layer compiles to, against the shared
   null sink: one boolean load, one untaken branch, no allocation.  This
   is the number behind the "< 2% with obs compiled in but disabled"
   budget. *)
let bench_obs_record_disabled =
  let obs = Terradir_obs.Obs.null in
  let i = ref 0 in
  Test.make ~name:"obs_record_disabled"
    (Staged.stage (fun () ->
         incr i;
         if Terradir_obs.Obs.spans_on obs then
           (* lint: obs-in-hot-path this is the benchmark of the hook itself *)
           Terradir_obs.Obs.record obs ~server:0
             (Terradir_obs.Event.Queue_enter { qid = !i; attempt = 0 })))

let bench_obs_record_enabled =
  let obs = Terradir_obs.Obs.create ~capacity:(1 lsl 12) ~level:Terradir_obs.Obs.Spans () in
  let i = ref 0 in
  Test.make ~name:"obs_record_enabled"
    (Staged.stage (fun () ->
         incr i;
         (* lint: obs-in-hot-path this is the benchmark of the hook itself *)
         Terradir_obs.Obs.record obs ~server:0
           (Terradir_obs.Event.Queue_enter { qid = !i; attempt = 0 })))

let bench_hist_add =
  let h = Terradir_obs.Hist.create () in
  let x = ref 1e-6 in
  Test.make ~name:"hist_add"
    (Staged.stage (fun () ->
         x := !x *. 1.001;
         if !x > 1e6 then x := 1e-6;
         Terradir_obs.Hist.add h !x))

let all =
  [
    bench_routing_decide;
    bench_routing_decide_full_store;
    bench_replication_trigger;
    bench_tree_distance;
    bench_node_map_merge;
    bench_node_map_merge_subsumed;
    bench_node_map_of_entries;
    bench_bloom_mem;
    bench_cache_insert;
    bench_engine_event;
    bench_load_meter;
    bench_splitmix_exp;
    bench_obs_record_disabled;
    bench_obs_record_enabled;
    bench_hist_add;
  ]

(* Runs every micro-benchmark, prints the table, and returns
   [(name, ns_per_run)] for the JSON report. *)
let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  print_endline "== micro-benchmarks (ns per call) ==";
  let acc = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols (Instance.monotonic_clock) results in
      let rows =
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (Hashtbl.fold (fun name ols_result l -> (name, ols_result) :: l) analyzed [])
      in
      List.iter
        (fun (name, ols_result) ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            Printf.printf "  %-28s %12.1f ns/run\n%!" name est;
            acc := (name, est) :: !acc
          | _ -> Printf.printf "  %-28s (no estimate)\n%!" name)
        rows)
    all;
  List.rev !acc
