(* Capacity macro-benchmark harness: one large Experiments.Capacity run
   plus the host-side measurements the simulator itself cannot take —
   wall-clock throughput (engine events per second), peak RSS (VmHWM from
   /proc/self/status), and GC totals.

   Defaults reproduce the headline scenario: 100 000 servers, an expected
   2 000 000 queries.  Override with

     TERRADIR_CAP_SERVERS     deployment size         (default 100000)
     TERRADIR_CAP_QUERIES     expected query count    (default 2000000)
     TERRADIR_CAP_SEED        simulation seed         (default 42)
     TERRADIR_CAP_OUT         report path             (default BENCH_results.json)
     TERRADIR_CAP_GC_OUT      Gc.stat summary path    (default: not written)
     TERRADIR_CAP_SPACE_OVERHEAD  major-heap pacing   (default 40)
     TERRADIR_ENGINE_DOMAINS  engine domains          (default 1)

   The report is schema v2 (see EXPERIMENTS.md): the simulation fields are
   deterministic per (servers, queries, seed) — and byte-identical for any
   engine-domain count; wall_s / events_per_sec / peak_rss_kb / gc are
   measurements of this process. *)

module E = Terradir_experiments

let getenv_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)

let servers = getenv_int "TERRADIR_CAP_SERVERS" E.Capacity.reference_servers

let queries = getenv_int "TERRADIR_CAP_QUERIES" E.Capacity.reference_queries

let seed = getenv_int "TERRADIR_CAP_SEED" 42

let out_file =
  match Sys.getenv_opt "TERRADIR_CAP_OUT" with Some f -> f | None -> "BENCH_results.json"

(* Major-heap pacing.  With the pooled/flat hot path, what allocation
   remains is short-lived merge results and closures; under the default
   space_overhead (120) the major heap balloons with floating garbage —
   measured top_heap is ~50× the end-of-run live set, i.e. peak RSS is
   mostly GC slack.  Pinning the overhead low keeps the heap near the
   live set, and the smaller working set is also measurably faster here
   (cache residency beats the extra collection work).  Override with
   TERRADIR_CAP_SPACE_OVERHEAD. *)
let () =
  let overhead = getenv_int "TERRADIR_CAP_SPACE_OVERHEAD" 40 in
  Gc.set { (Gc.get ()) with Gc.space_overhead = overhead }

(* Linux-specific; [None] elsewhere (the report then says "null" — 0 would
   read as a real measurement to the regression gate). *)
let peak_rss_kb () =
  match In_channel.with_open_text "/proc/self/status" In_channel.input_all with
  | exception _ -> None
  | body ->
    List.find_map
      (fun line ->
        match String.index_opt line ':' with
        | Some i when String.sub line 0 i = "VmHWM" ->
          let rest = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
          let digits =
            match String.index_opt rest ' ' with
            | Some j -> String.sub rest 0 j
            | None -> rest
          in
          int_of_string_opt digits
        | _ -> None)
      (String.split_on_char '\n' body)

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let phase_json (pg : E.Capacity.phase_gc) =
  Printf.sprintf
    "      { \"phase\": \"%s\", \"events\": %d, \"minor_words\": %s, \"promoted_words\": %s, \
     \"major_words\": %s, \"minor_collections\": %d, \"major_collections\": %d, \
     \"minor_words_per_event\": %s }"
    pg.E.Capacity.pg_phase pg.E.Capacity.pg_events
    (json_float pg.E.Capacity.pg_minor_words)
    (json_float pg.E.Capacity.pg_promoted_words)
    (json_float pg.E.Capacity.pg_major_words)
    pg.E.Capacity.pg_minor_collections pg.E.Capacity.pg_major_collections
    (json_float
       (if pg.E.Capacity.pg_events > 0 then
          pg.E.Capacity.pg_minor_words /. float_of_int pg.E.Capacity.pg_events
        else 0.0))

let write_report (r : E.Capacity.result) ~(phases : E.Capacity.phase_gc list) ~wall_s
    ~events_per_sec ~rss_kb ~(gc : Gc.stat) =
  (* The headline words-per-event numbers are steady-state only: warmup
     allocation (bootstrap churn, stores growing to size) is real but
     amortized, and gating on it would hide hot-path regressions behind
     setup noise.  The per-phase array keeps both visible. *)
  let steady =
    List.find_opt (fun p -> p.E.Capacity.pg_phase = "steady_state") phases
  in
  let per_event f =
    match steady with
    | Some p when p.E.Capacity.pg_events > 0 -> f p /. float_of_int p.E.Capacity.pg_events
    | Some _ | None -> 0.0
  in
  let oc = open_out out_file in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 2,\n\
    \  \"seed\": %d,\n\
    \  \"capacity\": {\n\
    \    \"servers\": %d,\n\
    \    \"engine_domains\": %d,\n\
    \    \"nodes\": %d,\n\
    \    \"rate_qps\": %s,\n\
    \    \"sim_duration_s\": %s,\n\
    \    \"events_executed\": %d,\n\
    \    \"injected\": %d,\n\
    \    \"resolved\": %d,\n\
    \    \"dropped\": %d,\n\
    \    \"drop_fraction\": %s,\n\
    \    \"mean_hops\": %s,\n\
    \    \"mean_latency_s\": %s,\n\
    \    \"replicas_created\": %d,\n\
    \    \"wall_s\": %s,\n\
    \    \"events_per_sec\": %s,\n\
    \    \"peak_rss_kb\": %s,\n\
    \    \"minor_words_per_event\": %s,\n\
    \    \"promoted_words_per_event\": %s,\n\
    \    \"gc\": { \"minor_words\": %s, \"major_words\": %s, \"minor_collections\": %d, \"major_collections\": %d, \"compactions\": %d, \"top_heap_words\": %d },\n\
    \    \"gc_phases\": [\n%s\n    ]\n\
    \  }\n\
     }\n"
    seed r.E.Capacity.servers r.E.Capacity.domains r.E.Capacity.nodes
    (json_float r.E.Capacity.rate)
    (json_float r.E.Capacity.sim_duration)
    r.E.Capacity.events r.E.Capacity.injected r.E.Capacity.resolved r.E.Capacity.dropped
    (json_float r.E.Capacity.drop_fraction)
    (json_float r.E.Capacity.mean_hops)
    (json_float r.E.Capacity.mean_latency)
    r.E.Capacity.replicas_created (json_float wall_s) (json_float events_per_sec)
    (match rss_kb with Some kb -> string_of_int kb | None -> "null")
    (json_float (per_event (fun p -> p.E.Capacity.pg_minor_words)))
    (json_float (per_event (fun p -> p.E.Capacity.pg_promoted_words)))
    (json_float gc.Gc.minor_words) (json_float gc.Gc.major_words) gc.Gc.minor_collections
    gc.Gc.major_collections gc.Gc.compactions gc.Gc.top_heap_words
    (String.concat ",\n" (List.map phase_json phases));
  close_out oc;
  Printf.printf "Report written to %s\n" out_file

(* Full [Gc.stat] dump to TERRADIR_CAP_GC_OUT (CI uploads it as an
   artifact — the long-form companion to the report's summary object). *)
let write_gc_summary (phases : E.Capacity.phase_gc list) =
  match Sys.getenv_opt "TERRADIR_CAP_GC_OUT" with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    let saved = Unix.dup Unix.stdout in
    flush stdout;
    Unix.dup2 (Unix.descr_of_out_channel oc) Unix.stdout;
    Printf.printf "== Gc.stat at end of capacity run ==\n";
    Gc.print_stat stdout;
    Printf.printf "\n== per-phase deltas ==\n";
    List.iter
      (fun p ->
        Printf.printf
          "%-12s events=%d minor_words=%.0f promoted_words=%.0f major_words=%.0f \
           minor_collections=%d major_collections=%d\n"
          p.E.Capacity.pg_phase p.E.Capacity.pg_events p.E.Capacity.pg_minor_words
          p.E.Capacity.pg_promoted_words p.E.Capacity.pg_major_words
          p.E.Capacity.pg_minor_collections p.E.Capacity.pg_major_collections)
      phases;
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved;
    close_out oc;
    Printf.printf "GC summary written to %s\n" path

let () =
  Printf.printf "TerraDir capacity benchmark: %d servers, ~%d queries, seed %d\n%!" servers
    queries seed;
  let t0 = Unix.gettimeofday () in
  let r, phases = E.Capacity.run_instrumented ~servers ~queries ~seed () in
  let wall_s = Unix.gettimeofday () -. t0 in
  let gc = Gc.quick_stat () in
  let rss_kb = peak_rss_kb () in
  let events_per_sec = if wall_s > 0.0 then float_of_int r.E.Capacity.events /. wall_s else 0.0 in
  E.Capacity.print r;
  Printf.printf "engine domains: %d\n" r.E.Capacity.domains;
  Printf.printf "wall: %.1fs   events/sec: %.0f   peak RSS: %s\n" wall_s events_per_sec
    (match rss_kb with Some kb -> Printf.sprintf "%d kB" kb | None -> "unavailable");
  List.iter
    (fun p ->
      Printf.printf "gc[%s]: %.1f minor words/event (%d events, %d minor collections)\n"
        p.E.Capacity.pg_phase
        (if p.E.Capacity.pg_events > 0 then
           p.E.Capacity.pg_minor_words /. float_of_int p.E.Capacity.pg_events
         else 0.0)
        p.E.Capacity.pg_events p.E.Capacity.pg_minor_collections)
    phases;
  flush stdout;
  write_report r ~phases ~wall_s ~events_per_sec ~rss_kb ~gc;
  write_gc_summary phases
