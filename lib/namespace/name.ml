(* Interned (hash-consed) names.

   A name is a dense integer id into a process-global intern table; the
   root is id 0 and every other id records (parent id, last component,
   depth).  Two structurally equal names always intern to the same id, so
   equality is one int comparison and hashing is the identity — the string
   form is materialized only on demand ([to_string]).

   Ids are assigned in interning order, which depends on construction
   order (and, under multi-domain experiment fan-out, on scheduling).
   Nothing may therefore *order* on ids or persist them: [compare] stays
   lexicographic over components, exactly the pre-interning semantics, and
   the qcheck equivalence suite in test/test_interning.ml holds every
   operation to the old string-list reference implementation.

   Concurrency: interning happens under [lock]; readers go through an
   immutable snapshot published via [Atomic].  Slots below a snapshot's
   [count] are frozen (written before the snapshot was published), so
   lock-free reads of any id obtained from a completed intern are safe. *)

type t = int

let root = 0

type table = {
  parents : int array; (* id -> parent id; root -> -1 *)
  components : string array; (* id -> last component; "" for root *)
  depths : int array;
  count : int;
}

let published =
  Atomic.make { parents = [| -1 |]; components = [| "" |]; depths = [| 0 |]; count = 1 }

let lock = Mutex.create ()

(* (parent id, component) -> id; only touched under [lock]. *)
let child_ids : (int * string, int) Hashtbl.t = Hashtbl.create 1024

let interned_count () = (Atomic.get published).count

let check_component c =
  if c = "" then invalid_arg "Name: empty component";
  if String.contains c '/' then invalid_arg "Name: component contains '/'"

(* Must be called with [lock] held. *)
let intern_child parent c =
  match Hashtbl.find_opt child_ids (parent, c) with
  | Some id -> id
  | None ->
    let tbl = Atomic.get published in
    let id = tbl.count in
    let capacity = Array.length tbl.parents in
    let tbl =
      if id < capacity then tbl
      else begin
        let grow a fill =
          let fresh = Array.make (2 * capacity) fill in
          Array.blit a 0 fresh 0 capacity;
          fresh
        in
        {
          parents = grow tbl.parents (-1);
          components = grow tbl.components "";
          depths = grow tbl.depths 0;
          count = tbl.count;
        }
      end
    in
    (* Write the slot, then publish: a reader can only hold id [n] after
       the intern that produced it returned, which ordered these writes
       before the [Atomic.set] it observed. *)
    tbl.parents.(id) <- parent;
    tbl.components.(id) <- c;
    tbl.depths.(id) <- tbl.depths.(parent) + 1;
    Atomic.set published { tbl with count = id + 1 };
    Hashtbl.add child_ids (parent, c) id;
    id

let of_components cs =
  List.iter check_component cs;
  Mutex.protect lock (fun () -> List.fold_left intern_child root cs)

let of_string s =
  let cs = String.split_on_char '/' s |> List.filter (fun c -> c <> "") in
  Mutex.protect lock (fun () -> List.fold_left intern_child root cs)

let child t c =
  check_component c;
  Mutex.protect lock (fun () -> intern_child t c)

let id t = t

let hash t = t

let equal (a : t) (b : t) = a = b

let depth t = (Atomic.get published).depths.(t)

let parent t = if t = root then None else Some (Atomic.get published).parents.(t)

let basename t = if t = root then None else Some (Atomic.get published).components.(t)

let components t =
  let tbl = Atomic.get published in
  let rec go acc v = if v = root then acc else go (tbl.components.(v) :: acc) tbl.parents.(v) in
  go [] t

let to_string t =
  if t = root then "/"
  else begin
    let tbl = Atomic.get published in
    let rec len acc v =
      if v = root then acc else len (acc + 1 + String.length tbl.components.(v)) tbl.parents.(v)
    in
    let buf = Buffer.create (len 0 t) in
    let rec emit v =
      if v <> root then begin
        emit tbl.parents.(v);
        Buffer.add_char buf '/';
        Buffer.add_string buf tbl.components.(v)
      end
    in
    emit t;
    Buffer.contents buf
  end

(* Lexicographic over components, root-first — identical to the historical
   string-list representation's [List.compare String.compare]. *)
let compare a b = List.compare String.compare (components a) (components b)

let rec lift tbl v target_depth =
  if tbl.depths.(v) > target_depth then lift tbl tbl.parents.(v) target_depth else v

let is_ancestor a b =
  let tbl = Atomic.get published in
  tbl.depths.(a) <= tbl.depths.(b) && lift tbl b tbl.depths.(a) = a

let ancestors t =
  let tbl = Atomic.get published in
  (* Walk up through parents: nearest ancestor first, root last. *)
  let rec go acc v = if v = root then List.rev acc else go (tbl.parents.(v) :: acc) tbl.parents.(v) in
  go [] t

let lowest_common_ancestor a b =
  let tbl = Atomic.get published in
  let d = min tbl.depths.(a) tbl.depths.(b) in
  let a = lift tbl a d and b = lift tbl b d in
  let rec go a b = if a = b then a else go tbl.parents.(a) tbl.parents.(b) in
  go a b

let distance a b =
  let tbl = Atomic.get published in
  let l = lowest_common_ancestor a b in
  tbl.depths.(a) + tbl.depths.(b) - (2 * tbl.depths.(l))

let pp fmt t = Format.pp_print_string fmt (to_string t)
