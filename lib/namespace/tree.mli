(** Immutable tree namespaces over interned node identifiers.

    The routing protocol treats the namespace as shared global knowledge of
    {e structure} (names and parent/child relations), while knowledge of
    {e placement} (which servers host which nodes) is local and replicated.
    Interning every name to a dense integer id makes the hot routing path
    (distance computations, digest membership) allocation-free.

    Ids are dense: [0 .. size-1], with the root always id [0]. *)

type node = int
(** Node identifier. *)

type t

module Builder : sig
  type tree = t

  type t

  val create : unit -> t
  (** A builder holding just the root. *)

  val add_child : t -> node -> string -> node
  (** [add_child b parent component] appends a new child and returns its id.
      @raise Invalid_argument if [parent] is out of range, the component is
      invalid, or a child with that component already exists. *)

  val size : t -> int

  val freeze : t -> tree
  (** Seal the builder into an immutable tree.  The builder must not be used
      afterwards (enforced: subsequent operations raise). *)
end

val size : t -> int

val root : node

val name : t -> node -> Name.t
(** Full name of a node (reconstructed; O(depth)). *)

val name_string : t -> node -> string

val parent : t -> node -> node option
(** [None] for the root. *)

val children : t -> node -> node array
(** Never mutate the returned array. *)

val num_children : t -> node -> int

val depth : t -> node -> int
(** Root has depth 0. *)

val max_depth : t -> int

val neighbors : t -> node -> node list
(** Parent (if any) followed by children — the node's routing context.
    Precomputed at freeze time: O(1), and callers on hot paths may rely on
    repeated calls returning the same (immutable) list without allocating. *)

val find : t -> Name.t -> node option
(** Name lookup; O(depth) hash probes. *)

val find_string : t -> string -> node option

val lca : t -> node -> node -> node

val is_ancestor : t -> node -> node -> bool
(** [is_ancestor t a b]: is [a] on the path from the root to [b] (inclusive)? *)

val ancestor_at_depth : t -> node -> int -> node
(** [ancestor_at_depth t v d] is the ancestor of [v] at depth [d].
    @raise Invalid_argument if [d] exceeds [depth t v] or is negative. *)

val distance : t -> node -> node -> int
(** Namespace metric: [depth a + depth b - 2*depth (lca a b)].  This is the
    hop count of the straightforward hierarchical route. *)

val route_path : t -> node -> node -> node list
(** The straightforward route: up from [src] to the LCA, then down to [dst];
    both endpoints included.  Length is [distance + 1]. *)

val level_sizes : t -> int array
(** [level_sizes t].(d) = number of nodes at depth [d]. *)

val iter : t -> (node -> unit) -> unit

val fold : t -> init:'a -> f:('a -> node -> 'a) -> 'a

val leaves : t -> node list

val check_invariants : t -> unit
(** Structural self-check (parent/child symmetry, depths, id density);
    raises [Failure] with a description when violated.  For tests. *)
