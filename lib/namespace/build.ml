open Terradir_util

let balanced_node_count ~arity ~levels =
  if arity = 1 then levels + 1
  else
    let rec pow acc n = if n = 0 then acc else pow (acc * arity) (n - 1) in
    (pow 1 (levels + 1) - 1) / (arity - 1)

let balanced ~arity ~levels =
  if arity < 1 then invalid_arg "Build.balanced: arity must be >= 1";
  if levels < 0 then invalid_arg "Build.balanced: levels must be >= 0";
  let b = Tree.Builder.create () in
  (* Breadth-first: the previous level's ids are contiguous, so we can expand
     level by level without extra bookkeeping. *)
  let current = ref [ Tree.root ] in
  for _ = 1 to levels do
    let next =
      List.concat_map
        (fun parent -> List.init arity (fun i -> Tree.Builder.add_child b parent (string_of_int i)))
        !current
    in
    current := next
  done;
  Tree.Builder.freeze b

(* Coda-like generator.  A weighted growth process over "directories":
   - each step adds one node under some open directory;
   - the new node is itself a directory with probability [p_dir];
   - the target directory is chosen by a mix of uniform choice (bushy,
     shallow growth) and most-recently-created preference (deep chains),
     which together yield the irregular, heavy-tailed shape of real file
     systems;
   - directories are closed (removed from the frontier) once they reach a
     per-directory fan-out cap drawn from a Pareto-like distribution. *)
let coda_like ?(seed = 1993) ~target () =
  if target < 1 then invalid_arg "Build.coda_like: target must be >= 1";
  let rng = Splitmix.create seed in
  let b = Tree.Builder.create () in
  let p_dir = 0.22 in
  let max_dir_depth = 13 (* directories deeper than this hold only files *) in
  let depth_of = Hashtbl.create 1024 in
  Hashtbl.add depth_of Tree.root 0;
  let frontier = ref [| Tree.root |] in
  let frontier_len = ref 1 in
  let capacity = Hashtbl.create 1024 in
  let fanout = Hashtbl.create 1024 in
  let draw_capacity () =
    (* Pareto(alpha=1.1) clipped to [2, 400]: few huge directories, many
       small ones. *)
    let u = Splitmix.float rng 1.0 in
    let v = 2.0 /. ((1.0 -. u) ** (1.0 /. 1.1)) in
    int_of_float (Float.min v 400.0)
  in
  Hashtbl.add capacity Tree.root (max 8 (draw_capacity ()));
  Hashtbl.add fanout Tree.root 0;
  let push dir =
    if !frontier_len = Array.length !frontier then begin
      let fresh = Array.make (2 * !frontier_len) 0 in
      Array.blit !frontier 0 fresh 0 !frontier_len;
      frontier := fresh
    end;
    !frontier.(!frontier_len) <- dir;
    frontier_len := !frontier_len + 1
  in
  let remove_at i =
    frontier_len := !frontier_len - 1;
    !frontier.(i) <- !frontier.(!frontier_len)
  in
  let counter = ref 0 in
  while Tree.Builder.size b < target do
    (* If every directory filled up, open a new top-level "volume" (as a
       Coda server accumulates mount points over a month of activity). *)
    if !frontier_len = 0 then begin
      incr counter;
      let volume = Tree.Builder.add_child b Tree.root (Printf.sprintf "vol%d" !counter) in
      Hashtbl.add capacity volume (max 8 (draw_capacity ()));
      Hashtbl.add fanout volume 0;
      Hashtbl.add depth_of volume 1;
      push volume
    end;
    (* 60% uniform over open dirs, 40% most recently opened: the latter
       drives the deep thin chains characteristic of source trees. *)
    let idx =
      if Splitmix.float rng 1.0 < 0.6 then Splitmix.int rng !frontier_len else !frontier_len - 1
    in
    let dir = !frontier.(idx) in
    incr counter;
    let child = Tree.Builder.add_child b dir (Printf.sprintf "n%d" !counter) in
    let f = Hashtbl.find fanout dir + 1 in
    Hashtbl.replace fanout dir f;
    if f >= Hashtbl.find capacity dir then remove_at idx;
    let child_depth = Hashtbl.find depth_of dir + 1 in
    if child_depth < max_dir_depth && Splitmix.float rng 1.0 < p_dir then begin
      Hashtbl.add capacity child (draw_capacity ());
      Hashtbl.add fanout child 0;
      Hashtbl.add depth_of child child_depth;
      push child
    end
  done;
  Tree.Builder.freeze b

let of_paths paths =
  let b = Tree.Builder.create () in
  let interned = Hashtbl.create 256 in
  Hashtbl.add interned (Name.id Name.root) Tree.root;
  let rec intern name =
    let key = Name.id name in
    match Hashtbl.find_opt interned key with
    | Some id -> id
    | None ->
      let parent_name = match Name.parent name with Some p -> p | None -> assert false in
      let parent_id = intern parent_name in
      let component = match Name.basename name with Some c -> c | None -> assert false in
      let id = Tree.Builder.add_child b parent_id component in
      Hashtbl.add interned key id;
      id
  in
  List.iter (fun p -> ignore (intern (Name.of_string p))) paths;
  Tree.Builder.freeze b

let describe t =
  let n = Tree.size t in
  let leaves = List.length (Tree.leaves t) in
  let fan = Stats.create () in
  Tree.iter t (fun v -> if Tree.num_children t v > 0 then Stats.add fan (float_of_int (Tree.num_children t v)));
  Printf.sprintf "nodes=%d max_depth=%d mean_fanout=%.2f max_fanout=%.0f leaf_share=%.2f" n
    (Tree.max_depth t) (Stats.mean fan)
    (if Stats.count fan = 0 then 0.0 else Stats.max_value fan)
    (float_of_int leaves /. float_of_int n)
