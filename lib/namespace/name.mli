(** Fully-qualified hierarchical names.

    A TerraDir node is identified by a name much like a Unix path:
    ["/university/private/people"].  A name is a list of non-empty
    components; the empty list is the root ["/"]. *)

type t
(** Immutable and interned: every distinct name is held once in a
    process-global hash-consing table and [t] is its dense integer id, so
    [equal] is one int comparison and [hash] is the identity.  [compare]
    remains lexicographic over components (not id order), preserving the
    semantics of the historical string-list representation. *)

val root : t

val of_string : string -> t
(** Parse ["/a/b/c"].  Accepts a leading slash, collapses repeated slashes,
    ignores a trailing slash.  @raise Invalid_argument on names containing
    no printable component where one is expected (e.g. [""] is fine — it is
    the root — but components cannot be empty by construction). *)

val to_string : t -> string
(** Canonical rendering, always with a leading ["/"]; the root is ["/"]. *)

val of_components : string list -> t
(** @raise Invalid_argument if any component is empty or contains ['/']. *)

val components : t -> string list

val child : t -> string -> t
(** [child n c] appends component [c].
    @raise Invalid_argument on invalid component. *)

val parent : t -> t option
(** [None] for the root. *)

val basename : t -> string option
(** Last component; [None] for the root. *)

val depth : t -> int
(** Number of components; the root has depth 0. *)

val is_ancestor : t -> t -> bool
(** [is_ancestor a b]: is [a] a (non-strict) prefix of [b]? *)

val ancestors : t -> t list
(** All strict ancestors, nearest first, ending with the root.
    [ancestors root = \[\]]. *)

val lowest_common_ancestor : t -> t -> t

val distance : t -> t -> int
(** Tree (namespace) distance: [depth a + depth b - 2 * depth (lca a b)]. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic over components, root-first — NOT id order.  Ids are
    assigned in interning order, which is construction- (and under domain
    fan-out, scheduling-) dependent; nothing deterministic may sort on
    them. *)

val id : t -> int
(** Dense intern id (root is 0).  Stable for the life of the process only:
    never persist an id or let output ordering depend on it. *)

val hash : t -> int
(** [hash t = id t]; suitable for [Hashtbl] keys. *)

val interned_count : unit -> int
(** Number of distinct names interned so far (≥ 1: the root). *)

val pp : Format.formatter -> t -> unit
