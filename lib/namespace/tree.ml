type node = int

type t = {
  component : string array; (* id -> last name component; "" for root *)
  parent : int array; (* id -> parent id; root -> -1 *)
  children : int array array;
  neighbors : int list array; (* id -> parent :: children, precomputed *)
  depth : int array;
  name_of : Name.t array; (* id -> interned name, O(1) lookup *)
  by_name : (int, int) Hashtbl.t; (* Name.id -> id; lookup only, never iterated *)
  max_depth : int;
}

let root = 0

module Builder = struct
  type tree = t

  type t = {
    mutable comps : string array;
    mutable parents : int array;
    mutable kids : int list array; (* reverse insertion order *)
    mutable depths : int array;
    mutable names : Name.t array; (* interned name per node *)
    mutable count : int;
    by_name : (int, int) Hashtbl.t; (* Name.id -> node id *)
    mutable sealed : bool;
  }

  let create () =
    let b =
      {
        comps = Array.make 16 "";
        parents = Array.make 16 (-1);
        kids = Array.make 16 [];
        depths = Array.make 16 0;
        names = Array.make 16 Name.root;
        count = 1;
        by_name = Hashtbl.create 256;
        sealed = false;
      }
    in
    Hashtbl.add b.by_name (Name.id Name.root) 0;
    b

  let check_alive b op = if b.sealed then invalid_arg ("Tree.Builder." ^ op ^ ": builder is sealed")

  let size b = b.count

  let ensure b =
    let cap = Array.length b.comps in
    if b.count = cap then begin
      let grow a fill =
        let fresh = Array.make (2 * cap) fill in
        Array.blit a 0 fresh 0 cap;
        fresh
      in
      b.comps <- grow b.comps "";
      b.parents <- grow b.parents (-1);
      b.kids <- grow b.kids [];
      b.depths <- grow b.depths 0;
      b.names <- grow b.names Name.root
    end

  let add_child b parent component =
    check_alive b "add_child";
    if parent < 0 || parent >= b.count then invalid_arg "Tree.Builder.add_child: bad parent id";
    if component = "" || String.contains component '/' then
      invalid_arg "Tree.Builder.add_child: invalid component";
    let name = Name.child b.names.(parent) component in
    if Hashtbl.mem b.by_name (Name.id name) then invalid_arg "Tree.Builder.add_child: duplicate child";
    ensure b;
    let id = b.count in
    b.count <- id + 1;
    b.comps.(id) <- component;
    b.parents.(id) <- parent;
    b.depths.(id) <- b.depths.(parent) + 1;
    b.names.(id) <- name;
    b.kids.(parent) <- id :: b.kids.(parent);
    Hashtbl.add b.by_name (Name.id name) id;
    id

  let freeze b =
    check_alive b "freeze";
    b.sealed <- true;
    let n = b.count in
    let children = Array.init n (fun i -> Array.of_list (List.rev b.kids.(i))) in
    let depth = Array.sub b.depths 0 n in
    let max_depth = Array.fold_left max 0 depth in
    (* Neighbor lists are read on every replica install/evict and every
       context assembly; the tree is immutable once frozen, so build them
       once here instead of re-allocating parent :: children per call. *)
    let neighbors =
      Array.init n (fun v ->
          let kids = Array.to_list children.(v) in
          if v = 0 then kids else b.parents.(v) :: kids)
    in
    {
      component = Array.sub b.comps 0 n;
      parent = Array.sub b.parents 0 n;
      children;
      neighbors;
      depth;
      name_of = Array.sub b.names 0 n;
      by_name = b.by_name;
      max_depth;
    }
end

let size t = Array.length t.component

let check_node t v op =
  if v < 0 || v >= size t then invalid_arg ("Tree." ^ op ^ ": node id out of range")

let name t v =
  check_node t v "name";
  t.name_of.(v)

let name_string t v = Name.to_string (name t v)

let parent t v =
  check_node t v "parent";
  if v = 0 then None else Some t.parent.(v)

let children t v =
  check_node t v "children";
  t.children.(v)

let num_children t v = Array.length (children t v)

let depth t v =
  check_node t v "depth";
  t.depth.(v)

let max_depth t = t.max_depth

let neighbors t v =
  check_node t v "neighbors";
  t.neighbors.(v)

let find t n = Hashtbl.find_opt t.by_name (Name.id n)

let find_string t s = find t (Name.of_string s)

let rec lift t v target_depth = if t.depth.(v) > target_depth then lift t t.parent.(v) target_depth else v

let lca t a b =
  check_node t a "lca";
  check_node t b "lca";
  let d = min t.depth.(a) t.depth.(b) in
  let a = lift t a d and b = lift t b d in
  let rec go a b = if a = b then a else go t.parent.(a) t.parent.(b) in
  go a b

let is_ancestor t a b =
  check_node t a "is_ancestor";
  check_node t b "is_ancestor";
  t.depth.(a) <= t.depth.(b) && lift t b t.depth.(a) = a

let ancestor_at_depth t v d =
  check_node t v "ancestor_at_depth";
  if d < 0 || d > t.depth.(v) then invalid_arg "Tree.ancestor_at_depth: bad depth";
  lift t v d

let distance t a b =
  let l = lca t a b in
  t.depth.(a) + t.depth.(b) - (2 * t.depth.(l))

let route_path t src dst =
  let l = lca t src dst in
  let rec up acc v = if v = l then List.rev (v :: acc) else up (v :: acc) t.parent.(v) in
  let upward = up [] src in
  let rec down acc v = if v = l then acc else down (v :: acc) t.parent.(v) in
  upward @ down [] dst

let level_sizes t =
  let levels = Array.make (t.max_depth + 1) 0 in
  Array.iter (fun d -> levels.(d) <- levels.(d) + 1) t.depth;
  levels

let iter t f =
  for v = 0 to size t - 1 do
    f v
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun v -> acc := f !acc v);
  !acc

let leaves t = fold t ~init:[] ~f:(fun acc v -> if num_children t v = 0 then v :: acc else acc)

let check_invariants t =
  let n = size t in
  if n = 0 then failwith "Tree: empty";
  if t.parent.(0) <> -1 then failwith "Tree: root has a parent";
  if t.depth.(0) <> 0 then failwith "Tree: root depth non-zero";
  for v = 1 to n - 1 do
    let p = t.parent.(v) in
    if p < 0 || p >= n then failwith "Tree: parent out of range";
    if t.depth.(v) <> t.depth.(p) + 1 then failwith "Tree: depth mismatch";
    if not (Array.exists (fun c -> c = v) t.children.(p)) then
      failwith "Tree: child missing from parent's children"
  done;
  let total_children = Array.fold_left (fun acc kids -> acc + Array.length kids) 0 t.children in
  if total_children <> n - 1 then failwith "Tree: children count mismatch";
  iter t (fun v ->
      match find t (name t v) with
      | Some v' when v' = v -> ()
      | _ -> failwith "Tree: name interning mismatch")
