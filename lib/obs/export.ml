(* Exporters: Chrome trace-event JSON (Perfetto / chrome://tracing), the
   compact event CSV, the probe CSV, and the terminal summary.

   Trace mapping (one track per server: pid 1, tid = server id):
   - whole-query lifetime  -> nestable async pair  (cat "query", id "q<qid>")
   - queue-wait segment    -> nestable async pair  (cat "queue", id "q<qid>/<attempt>")
   - network transit       -> nestable async pair  (cat "net",   id "q<qid>/<attempt>")
   - service segment       -> complete event "X" (a server serves one
     query at a time, so service spans never overlap on a track)
   - drops / retransmits / replica churn / digest & fault events -> instants.

   Async pairs (not "X") carry the queue and wire segments because
   different queries overlap freely on one server's track; only the
   matching (cat, id) keys them together. *)

let esc s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us t = t *. 1e6 (* trace-event timestamps are microseconds *)

(* ---- Chrome trace ---- *)

let instant_detail ev =
  match ev with
  | Event.Query_dropped _ | Event.Retransmit _ | Event.Replica_created _
  | Event.Replica_evicted _ | Event.Replica_advertised _ | Event.Session_trigger _
  | Event.Session_started _ | Event.Session_aborted _ | Event.Digest_prune _
  | Event.Digest_shortcut _ | Event.Net_lost _ | Event.Net_blocked _ | Event.Chaos_action _ ->
    Some (Event.kind ev, Event.detail ev)
  | Event.Query_injected _ | Event.Queue_enter _ | Event.Service_begin _ | Event.Service_end _
  | Event.Net_transit _ | Event.Query_forwarded _ | Event.Query_resolved _ | Event.Cache_hit _
  | Event.Cache_miss _ | Event.Server_busy _ | Event.Server_idle -> None

let chrome_trace recorder =
  let entries = Recorder.to_list recorder in
  let spans = Span.of_entries entries in
  let tids : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let tid i = if i < 0 then 0 else i in
  let touch i = Hashtbl.replace tids (tid i) () in
  let events = ref [] in
  let push e = events := e :: !events in
  let async ph ~cat ~id ~name ~t ~server =
    touch server;
    push
      (Printf.sprintf
         {|{"name":"%s","cat":"%s","ph":"%s","id":"%s","ts":%.3f,"pid":1,"tid":%d}|}
         (esc name) (esc cat) ph (esc id) (us t) (tid server))
  in
  List.iter
    (fun (sp : Span.t) ->
      let root_server =
        if sp.Span.span_src >= 0 then sp.Span.span_src
        else match sp.Span.span_segs with s :: _ -> s.Span.seg_server | [] -> 0
      in
      let qid = sp.Span.span_qid in
      let root_id = Printf.sprintf "q%d" qid in
      let root_name =
        let base = Printf.sprintf "q%d->n%d" qid sp.Span.span_dst in
        match sp.Span.span_outcome with
        | Span.Resolved _ -> base
        | Span.Dropped reason -> base ^ " [dropped:" ^ reason ^ "]"
        | Span.In_flight -> base ^ " [in flight]"
      in
      async "b" ~cat:"query" ~id:root_id ~name:root_name ~t:sp.Span.span_start
        ~server:root_server;
      List.iter
        (fun (g : Span.seg) ->
          let seg_id = Printf.sprintf "q%d/%d" qid g.Span.seg_attempt in
          match g.Span.seg_kind with
          | Span.Queue_wait ->
            let name = Printf.sprintf "queue s%d" g.Span.seg_server in
            async "b" ~cat:"queue" ~id:seg_id ~name ~t:g.Span.seg_start ~server:g.Span.seg_server;
            async "e" ~cat:"queue" ~id:seg_id ~name ~t:g.Span.seg_stop ~server:g.Span.seg_server
          | Span.Transit ->
            let name = Printf.sprintf "s%d->s%d" g.Span.seg_server g.Span.seg_peer in
            async "b" ~cat:"net" ~id:seg_id ~name ~t:g.Span.seg_start ~server:g.Span.seg_server;
            async "e" ~cat:"net" ~id:seg_id ~name ~t:g.Span.seg_stop ~server:g.Span.seg_server
          | Span.Service ->
            touch g.Span.seg_server;
            push
              (Printf.sprintf
                 {|{"name":"svc q%d","cat":"service","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d}|}
                 qid (us g.Span.seg_start)
                 (us (g.Span.seg_stop -. g.Span.seg_start))
                 (tid g.Span.seg_server)))
        sp.Span.span_segs;
      async "e" ~cat:"query" ~id:root_id ~name:root_name ~t:sp.Span.span_stop ~server:root_server)
    spans;
  List.iter
    (fun { Recorder.time; server; event } ->
      match instant_detail event with
      | None -> ()
      | Some (name, detail) ->
        touch server;
        push
          (Printf.sprintf
             {|{"name":"%s","cat":"instant","ph":"i","ts":%.3f,"pid":1,"tid":%d,"s":"t","args":{"detail":"%s"}}|}
             (esc name) (us time) (tid server) (esc detail)))
    entries;
  let meta =
    {|{"name":"process_name","ph":"M","pid":1,"args":{"name":"terradir cluster"}}|}
    :: (List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) tids [])
       |> List.map (fun t ->
              Printf.sprintf
                {|{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"server %d"}}|}
                t t))
  in
  let b = Buffer.create 65536 in
  Buffer.add_string b {|{"displayTimeUnit":"ms","traceEvents":[|};
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b e)
    (meta @ List.rev !events);
  Buffer.add_string b "]}";
  Buffer.contents b

(* ---- CSVs ---- *)

let events_csv recorder =
  let b = Buffer.create 4096 in
  Buffer.add_string b "time,server,kind,qid,detail\n";
  Recorder.iter recorder (fun { Recorder.time; server; event } ->
      Buffer.add_string b
        (Printf.sprintf "%.9f,%d,%s,%s,%s\n" time server (Event.kind event)
           (match Event.qid event with Some q -> string_of_int q | None -> "")
           (Event.detail event)));
  Buffer.contents b

let probes_csv probes =
  let b = Buffer.create 4096 in
  Buffer.add_string b "time,server,load,queue_depth,replicas,cache_hit_rate\n";
  Probes.iter probes (fun ~server { Probes.p_time; p_load; p_queue; p_replicas; p_hit_rate } ->
      Buffer.add_string b
        (Printf.sprintf "%.6f,%d,%.6f,%d,%d,%.6f\n" p_time server p_load p_queue p_replicas
           p_hit_rate));
  Buffer.contents b

(* ---- terminal summary ---- *)

let summary_rows obs =
  let recorder = Obs.recorder obs in
  let by_kind : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let qids : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  Recorder.iter recorder (fun { Recorder.event; _ } ->
      let k = Event.kind event in
      Hashtbl.replace by_kind k (1 + Option.value ~default:0 (Hashtbl.find_opt by_kind k));
      match Event.qid event with Some q -> Hashtbl.replace qids q () | None -> ());
  [
    ("obs level", Obs.level_to_string (Obs.level obs));
    ("events recorded", string_of_int (Recorder.total recorder));
    ("events retained", string_of_int (Recorder.retained recorder));
    ("queries traced", string_of_int (Hashtbl.length qids));
    ("probe samples", string_of_int (Probes.samples (Obs.probes obs)));
  ]
  @ (List.sort (fun (a, _) (b, _) -> String.compare a b)
       (Hashtbl.fold (fun k n acc -> (k, n) :: acc) by_kind [])
    |> List.map (fun (k, n) -> ("  ev " ^ k, string_of_int n)))
