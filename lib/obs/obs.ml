(* The sink: a verbosity level, a flight recorder, probe storage, and a
   clock closure the owning cluster points at its engine.  The three
   [*_on] booleans are precomputed so hot paths pay one load + branch to
   discover recording is off. *)

type level = Off | Counters | Spans | Full

let level_to_string = function
  | Off -> "off"
  | Counters -> "counters"
  | Spans -> "spans"
  | Full -> "full"

let level_of_string = function
  | "off" -> Some Off
  | "counters" -> Some Counters
  | "spans" -> Some Spans
  | "full" -> Some Full
  | _ -> None

type t = {
  level : level;
  counters_on : bool;
  spans_on : bool;
  full_on : bool;
  recorder : Recorder.t;
  mutable recorders : Recorder.t array;
      (* per-engine-lane recorders of a multi-domain run; [||] = the
         single-recorder sequential path *)
  mutable stamp : (unit -> int * float * int * int) option;
      (* engine stamp hook: (lane, time, tie, sub) of the running event *)
  probes : Probes.t;
  probe_every : int;
  mutable clock : unit -> float;
}

let make ~level ~capacity ~probe_every =
  {
    level;
    counters_on = level <> Off;
    spans_on = (match level with Spans | Full -> true | Off | Counters -> false);
    full_on = level = Full;
    recorder = Recorder.create ~capacity:(if level = Off then 0 else capacity);
    recorders = [||];
    stamp = None;
    probes = Probes.create ();
    probe_every;
    clock = (fun () -> 0.0);
  }

(* Shared across every cluster (and hence every domain) — but domain-safe:
   all writes to an [Off] sink are gated out ([set_clock], [set_multi],
   [emit] all test the level first), so [null] is immutable in practice.
   This is a record value, not a syntactic mutable root, so the race check
   cannot see it; lane-safety rests on this gate (DESIGN §14). *)
let null = make ~level:Off ~capacity:0 ~probe_every:max_int

let create ?(capacity = 1 lsl 18) ?(probe_every = 2000) ~level () =
  if probe_every < 1 then invalid_arg "Obs.create: probe_every must be >= 1";
  make ~level ~capacity ~probe_every

let level t = t.level

let counters_on t = t.counters_on

let spans_on t = t.spans_on

let full_on t = t.full_on

let recorder t =
  if Array.length t.recorders = 0 then t.recorder
  else Recorder.merged (Array.to_list t.recorders) ~capacity:(Recorder.capacity t.recorder)

let probes t = t.probes

let probe_every t = t.probe_every

(* Guarded so that pointing a clock at the shared [null] sink stays a
   no-op: [null] is immutable in practice and may be shared across
   domains (worker clusters created without a sink). *)
let set_clock t clock = if t.level <> Off then t.clock <- clock

(* Same [null]-guard as [set_clock]: switching the shared disabled sink
   into multi-lane mode would race across domains. *)
let set_multi t ~lanes ~stamp =
  if t.level <> Off then begin
    let capacity = Recorder.capacity t.recorder in
    t.recorders <- Array.init lanes (fun _ -> Recorder.create ~capacity);
    t.stamp <- Some stamp
  end

let now t = t.clock ()

let record t ~server event =
  if t.counters_on then begin
    match t.stamp with
    | None -> Recorder.record t.recorder ~time:(t.clock ()) ~server event
    | Some stamp ->
      let lane, time, tie, sub = stamp () in
      Recorder.record_stamped t.recorders.(lane) ~time ~tie ~sub ~server event
  end
