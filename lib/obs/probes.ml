(* Per-server time-series probes.  Server count is not known when the sink
   is created (the sink predates the cluster), so the per-server store
   grows by doubling on first touch of a new id. *)

type sample = {
  p_time : float;
  p_load : float;
  p_queue : int;
  p_replicas : int;
  p_hit_rate : float;
}

type t = {
  mutable series : sample list array;  (* per server id, newest first *)
  mutable samples : int;
}

let create () = { series = Array.make 0 []; samples = 0 }

let ensure t server =
  if server >= Array.length t.series then begin
    let n = max 16 (max (server + 1) (2 * Array.length t.series)) in
    let grown = Array.make n [] in
    Array.blit t.series 0 grown 0 (Array.length t.series);
    t.series <- grown
  end

let add t ~server sample =
  if server < 0 then invalid_arg "Probes.add: negative server id";
  ensure t server;
  t.series.(server) <- sample :: t.series.(server);
  t.samples <- t.samples + 1

let num_servers t = Array.length t.series

let samples t = t.samples

let series t server =
  if server < 0 || server >= Array.length t.series then []
  else List.rev t.series.(server)

let iter t f =
  for server = 0 to Array.length t.series - 1 do
    List.iter (fun s -> f ~server s) (List.rev t.series.(server))
  done
