(** The observability sink: level-gated flight recording plus probe
    storage, shared by every layer of one simulated cluster.

    {b Zero-cost-when-disabled contract.}  Call sites guard every emission
    on a precomputed boolean ({!counters_on} / {!spans_on} / {!full_on}),
    so with the shared {!null} sink a hook costs one load and one
    untaken branch — no event value is even allocated.  The bench suite
    pins this (< 2% on the routing micro-benches).

    {b Determinism contract.}  Recording reads the clock closure and
    writes sink-private arrays; it never draws randomness, schedules
    engine events, or mutates simulation state.  [test_obs] enforces this
    by byte-comparing fig3 CSVs between [Off] and [Full].

    Level ladder (each includes the previous):
    - [Off]: nothing recorded; {!record} is a no-op.
    - [Counters]: occupancy edges, replica churn, network faults, drops —
      the cheap aggregate set — plus periodic probes.
    - [Spans]: query lifecycle events (inject/queue/service/transit/
      resolve/retransmit) for per-query span reconstruction.
    - [Full]: everything, including per-lookup cache hit/miss and digest
      shortcut events. *)

type level = Off | Counters | Spans | Full

val level_to_string : level -> string

val level_of_string : string -> level option
(** Parses the CLI spelling ("off" | "counters" | "spans" | "full"). *)

type t

val null : t
(** The shared disabled sink — the default everywhere.  Immutable in
    practice, so it is safe to share across domains. *)

val create : ?capacity:int -> ?probe_every:int -> level:level -> unit -> t
(** Fresh sink.  [capacity] bounds the flight recorder ring (default
    2^18 entries); [probe_every] is the engine-observer cadence, in
    executed events, for time-series probes (default 2000).
    @raise Invalid_argument if [probe_every < 1]. *)

val level : t -> level

val counters_on : t -> bool
(** [level <> Off]. *)

val spans_on : t -> bool
(** [level >= Spans]. *)

val full_on : t -> bool
(** [level = Full]. *)

val recorder : t -> Recorder.t
(** The flight recorder.  After {!set_multi}, a freshly merged view of
    the per-lane recorders (identical to the sequential ring — the
    determinism contract); otherwise the backing recorder itself. *)

val set_multi : t -> lanes:int -> stamp:(unit -> int * float * int * int) -> unit
(** Switch to per-lane recording for a multi-domain engine: [lanes]
    recorders are created (each with the configured capacity) and every
    {!record} consults [stamp] — the engine hook returning the running
    event's [(lane, time, tie, sub)] — instead of the clock closure.
    Done by [Cluster.create] when [engine_domains > 1]; a no-op on
    {!null}. *)

val probes : t -> Probes.t

val probe_every : t -> int

val set_clock : t -> (unit -> float) -> unit
(** Point the sink at the owning engine's clock ([Engine.now]).  Done by
    [Cluster.create]; a no-op on {!null}. *)

val now : t -> float
(** Current stamp time (0 before {!set_clock}). *)

val record : t -> server:int -> Event.t -> unit
(** Stamp and store one event.  No-op below [Counters]; finer gating
    (which events exist at which level) is the call site's job via the
    [*_on] guards. *)
