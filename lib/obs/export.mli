(** Exporters over recorded observability data.

    {!chrome_trace} renders the flight recorder as Chrome trace-event JSON
    (the JSON-array flavor with a [traceEvents] wrapper), loadable in
    Perfetto ({:https://ui.perfetto.dev}) or [chrome://tracing].  Layout:
    one process, one track (tid) per server.  Whole-query lifetimes,
    queue waits and network transits are nestable async pairs ("b"/"e")
    keyed by query id — they overlap freely on a track; service segments
    are complete events ("X"); drops, retransmits, replica churn and
    network faults are instants ("i").

    The CSV exporters are lossless flat dumps of the recorder and probe
    stores, for ad-hoc analysis.  All exporters are pure readers. *)

val chrome_trace : Recorder.t -> string
(** The whole retained window as one JSON document.  Validated by
    [tools/trace_check] (shape + balanced async pairs). *)

val events_csv : Recorder.t -> string
(** Header [time,server,kind,qid,detail]; one row per retained event,
    chronological.  [qid] is empty for non-query events; [detail] is the
    comma-free [k=v] field rendering. *)

val probes_csv : Probes.t -> string
(** Header [time,server,load,queue_depth,replicas,cache_hit_rate]; rows
    grouped by server, chronological within a server. *)

val summary_rows : Obs.t -> (string * string) list
(** Terminal readout: level, recorded/retained totals, traced query
    count, probe samples, and per-kind event counts (sorted by kind). *)
