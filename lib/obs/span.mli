(** Per-query span reconstruction — the live counterpart of the offline
    [Trace.route] probe.

    A query's lifetime decomposes into segments, hop by hop:
    - [Queue_wait]: from [Queue_enter] to the matching [Service_begin] on
      one server (same attempt);
    - [Service]: from [Service_begin] to [Service_end];
    - [Transit]: the wire time of one forwarding step ([Net_transit]'s
      stamp plus its recorded delay).

    Reconstruction is defensive about ring-buffer truncation: a closing
    event whose opening event was overwritten is dropped, and a segment
    left open at the end of the stream is discarded rather than given an
    invented end time.  Retransmitted attempts contribute their own
    segments, distinguished by [seg_attempt]. *)

type seg_kind = Queue_wait | Service | Transit

type seg = {
  seg_kind : seg_kind;
  seg_server : int;  (** server the segment happened on (source for Transit) *)
  seg_peer : int;  (** Transit: destination server; -1 otherwise *)
  seg_attempt : int;
  seg_start : float;
  seg_stop : float;
}

type outcome = Resolved of { latency : float; hops : int } | Dropped of string | In_flight

type t = {
  span_qid : int;
  span_src : int;  (** issuing server; -1 if injection fell off the ring *)
  span_dst : int;  (** target node; -1 if unknown *)
  span_start : float;
  span_stop : float;  (** last activity, including trailing transit time *)
  span_outcome : outcome;
  span_retries : int;
  span_segs : seg list;  (** chronological by [seg_start] *)
}

val of_entries : Recorder.entry list -> t list
(** Group a chronological event stream by qid; result sorted by qid. *)

val of_recorder : Recorder.t -> t list
