(* Reconstruct per-query span trees from a flight-recorder stream.

   The recorder gives a single chronological event stream; this module
   re-threads it by qid into one trace per query, pairing Queue_enter with
   Service_begin and Service_begin with Service_end per (server, attempt).
   Because the ring may have overwritten the head of a long run, matching
   is defensive: an end without its begin is ignored, a begin without its
   end stays open and is dropped rather than invented. *)

type seg_kind = Queue_wait | Service | Transit

type seg = {
  seg_kind : seg_kind;
  seg_server : int;
  seg_peer : int;  (* Transit: destination server; otherwise -1 *)
  seg_attempt : int;
  seg_start : float;
  seg_stop : float;
}

type outcome = Resolved of { latency : float; hops : int } | Dropped of string | In_flight

type t = {
  span_qid : int;
  span_src : int;
  span_dst : int;
  span_start : float;
  span_stop : float;
  span_outcome : outcome;
  span_retries : int;
  span_segs : seg list;
}

type building = {
  mutable b_src : int;
  mutable b_dst : int;
  mutable b_start : float;
  mutable b_stop : float;
  mutable b_outcome : outcome;
  mutable b_retries : int;
  mutable b_segs : seg list;  (* newest first *)
  mutable b_queued : (int * int * float) list;  (* (server, attempt, enter time) *)
  mutable b_serving : (int * int * float) list;  (* (server, attempt, begin time) *)
}

let fresh_building time =
  {
    b_src = -1;
    b_dst = -1;
    b_start = time;
    b_stop = time;
    b_outcome = In_flight;
    b_retries = 0;
    b_segs = [];
    b_queued = [];
    b_serving = [];
  }

(* Remove the most recent pending entry for (server, attempt); [None] when
   the opening event predates the retained window. *)
let take pending server attempt =
  let rec go acc = function
    | [] -> None
    | (s, a, t0) :: rest when s = server && a = attempt ->
      Some (t0, List.rev_append acc rest)
    | x :: rest -> go (x :: acc) rest
  in
  go [] pending

let apply b ~time ~server (ev : Event.t) =
  if time > b.b_stop then b.b_stop <- time;
  match ev with
  | Event.Query_injected { dst; _ } ->
    b.b_src <- server;
    b.b_dst <- dst;
    b.b_start <- time
  | Event.Queue_enter { attempt; _ } -> b.b_queued <- (server, attempt, time) :: b.b_queued
  | Event.Service_begin { attempt; _ } ->
    (match take b.b_queued server attempt with
    | Some (t0, rest) ->
      b.b_queued <- rest;
      b.b_segs <-
        { seg_kind = Queue_wait; seg_server = server; seg_peer = -1; seg_attempt = attempt;
          seg_start = t0; seg_stop = time }
        :: b.b_segs
    | None -> ());
    b.b_serving <- (server, attempt, time) :: b.b_serving
  | Event.Service_end { attempt; _ } -> (
    match take b.b_serving server attempt with
    | Some (t0, rest) ->
      b.b_serving <- rest;
      b.b_segs <-
        { seg_kind = Service; seg_server = server; seg_peer = -1; seg_attempt = attempt;
          seg_start = t0; seg_stop = time }
        :: b.b_segs
    | None -> ())
  | Event.Net_transit { attempt; dst_server; delay; _ } ->
    let stop = time +. delay in
    if stop > b.b_stop then b.b_stop <- stop;
    b.b_segs <-
      { seg_kind = Transit; seg_server = server; seg_peer = dst_server; seg_attempt = attempt;
        seg_start = time; seg_stop = stop }
      :: b.b_segs
  | Event.Retransmit _ -> b.b_retries <- b.b_retries + 1
  | Event.Query_resolved { latency; hops; _ } -> b.b_outcome <- Resolved { latency; hops }
  | Event.Query_dropped { reason; _ } -> b.b_outcome <- Dropped reason
  | Event.Query_forwarded _ -> ()
  | Event.Replica_created _ | Event.Replica_evicted _ | Event.Replica_advertised _
  | Event.Session_trigger _ | Event.Session_started _ | Event.Session_aborted _
  | Event.Cache_hit _ | Event.Cache_miss _ | Event.Digest_prune _ | Event.Digest_shortcut _
  | Event.Net_lost _ | Event.Net_blocked _ | Event.Server_busy _ | Event.Server_idle
  | Event.Chaos_action _ -> ()

let finish qid b =
  let segs =
    List.stable_sort
      (fun a c ->
        let cmp = Float.compare a.seg_start c.seg_start in
        if cmp <> 0 then cmp else Float.compare a.seg_stop c.seg_stop)
      (List.rev b.b_segs)
  in
  {
    span_qid = qid;
    span_src = b.b_src;
    span_dst = b.b_dst;
    span_start = b.b_start;
    span_stop = b.b_stop;
    span_outcome = b.b_outcome;
    span_retries = b.b_retries;
    span_segs = segs;
  }

let of_entries entries =
  let tbl : (int, building) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun { Recorder.time; server; event } ->
      match Event.qid event with
      | None -> ()
      | Some qid ->
        let b =
          match Hashtbl.find_opt tbl qid with
          | Some b -> b
          | None ->
            let b = fresh_building time in
            Hashtbl.add tbl qid b;
            b
        in
        apply b ~time ~server event)
    entries;
  List.sort
    (fun a b -> Int.compare a.span_qid b.span_qid)
    (Hashtbl.fold (fun qid b acc -> finish qid b :: acc) tbl [])

let of_recorder r = of_entries (Recorder.to_list r)
