(* Flight recorder: fixed-capacity ring of stamped events.  The parallel
   arrays are allocated once at creation; recording writes a few slots
   and bumps a counter, so steady-state cost is independent of how long
   the run has been going.

   Each entry optionally carries a canonical sort stamp (tie, sub) from
   the engine: (time, tie, sub) is globally unique and K-independent, so
   per-lane recorders of a parallel run can be merged into the exact ring
   a sequential run would have produced ([merged]). *)

type entry = { time : float; server : int; event : Event.t }

type t = {
  times : float array;
  servers : int array;
  events : Event.t array;
  ties : int array;
  subs : int array;
  capacity : int;
  mutable recorded : int;  (* total ever recorded, monotone *)
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Recorder.create: negative capacity";
  {
    times = Array.make (max capacity 1) 0.0;
    servers = Array.make (max capacity 1) 0;
    events = Array.make (max capacity 1) Event.Server_idle;
    ties = Array.make (max capacity 1) 0;
    subs = Array.make (max capacity 1) 0;
    capacity;
    recorded = 0;
  }

let record_stamped t ~time ~tie ~sub ~server event =
  if t.capacity > 0 then begin
    let i = t.recorded mod t.capacity in
    t.times.(i) <- time;
    t.servers.(i) <- server;
    t.events.(i) <- event;
    t.ties.(i) <- tie;
    t.subs.(i) <- sub;
    t.recorded <- t.recorded + 1
  end

let record t ~time ~server event = record_stamped t ~time ~tie:0 ~sub:0 ~server event

let capacity t = t.capacity

let total t = t.recorded

let retained t = min t.recorded t.capacity

let iter t f =
  let n = retained t in
  let start = t.recorded - n in
  for k = 0 to n - 1 do
    let i = (start + k) mod t.capacity in
    f { time = t.times.(i); server = t.servers.(i); event = t.events.(i) }
  done

let to_list t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

(* Merge per-lane recorders into the ring a single recorder of
   [capacity] would hold: all surviving entries sorted by the canonical
   stamp, truncated to the newest [capacity].  Each lane retains its own
   newest [capacity] entries, which is a superset of its share of the
   global newest [capacity] — so the merge loses nothing the sequential
   ring would have kept.  [total] is preserved (sum over lanes) and the
   entries are laid out so that [iter]'s ring arithmetic still works. *)
let merged parts ~capacity =
  let out = create ~capacity in
  let entries = ref [] in
  let grand_total = ref 0 in
  List.iter
    (fun p ->
      grand_total := !grand_total + p.recorded;
      let n = retained p in
      let start = p.recorded - n in
      for k = 0 to n - 1 do
        let i = (start + k) mod p.capacity in
        entries := (p.times.(i), p.ties.(i), p.subs.(i), p.servers.(i), p.events.(i)) :: !entries
      done)
    parts;
  let sorted =
    List.sort
      (fun (t1, x1, s1, _, _) (t2, x2, s2, _, _) ->
        let c = Float.compare t1 t2 in
        if c <> 0 then c
        else
          let c = Int.compare x1 x2 in
          if c <> 0 then c else Int.compare s1 s2)
      !entries
  in
  let len = List.length sorted in
  let keep = min len (min capacity !grand_total) in
  let dropped = len - keep in
  if capacity > 0 then begin
    let k = ref 0 in
    List.iteri
      (fun j (time, tie, sub, server, event) ->
        if j >= dropped then begin
          let i = (!grand_total - keep + !k) mod capacity in
          out.times.(i) <- time;
          out.ties.(i) <- tie;
          out.subs.(i) <- sub;
          out.servers.(i) <- server;
          out.events.(i) <- event;
          incr k
        end)
      sorted;
    out.recorded <- !grand_total
  end;
  out
