(* Flight recorder: fixed-capacity ring of stamped events.  The three
   parallel arrays are allocated once at creation; recording writes three
   slots and bumps a counter, so steady-state cost is independent of how
   long the run has been going. *)

type entry = { time : float; server : int; event : Event.t }

type t = {
  times : float array;
  servers : int array;
  events : Event.t array;
  capacity : int;
  mutable recorded : int;  (* total ever recorded, monotone *)
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Recorder.create: negative capacity";
  {
    times = Array.make (max capacity 1) 0.0;
    servers = Array.make (max capacity 1) 0;
    events = Array.make (max capacity 1) Event.Server_idle;
    capacity;
    recorded = 0;
  }

let record t ~time ~server event =
  if t.capacity > 0 then begin
    let i = t.recorded mod t.capacity in
    t.times.(i) <- time;
    t.servers.(i) <- server;
    t.events.(i) <- event;
    t.recorded <- t.recorded + 1
  end

let capacity t = t.capacity

let total t = t.recorded

let retained t = min t.recorded t.capacity

let iter t f =
  let n = retained t in
  let start = t.recorded - n in
  for k = 0 to n - 1 do
    let i = (start + k) mod t.capacity in
    f { time = t.times.(i); server = t.servers.(i); event = t.events.(i) }
  done

let to_list t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc
