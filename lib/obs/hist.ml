(* Log-bucketed histogram: 16 sub-buckets per octave (power of two), so
   quantile readouts carry at most ~3% relative error while min/max/count/
   sum stay exact.  Replaces reservoir sampling in reports: no RNG, no
   sampling noise, O(1) add. *)

let sub = 16

(* Octaves covered: binary exponents in [min_exp, max_exp).  Latencies sit
   around 2^-14..2^4 seconds and hop counts in 2^0..2^8; the range below
   is vastly wider and still only ~2 KiB per histogram. *)
let min_exp = -64

let max_exp = 64

let nbuckets = ((max_exp - min_exp) * sub) + 1 (* slot 0: values <= 0 *)

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create () =
  { counts = Array.make nbuckets 0; count = 0; sum = 0.0; vmin = infinity; vmax = neg_infinity }

let reset t =
  Array.fill t.counts 0 nbuckets 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.vmin <- infinity;
  t.vmax <- neg_infinity

let index v =
  if v <= 0.0 || Float.is_nan v then 0
  else begin
    let m, e = Float.frexp v in
    (* m in [0.5, 1): spread over [sub] equal mantissa slices *)
    let s = int_of_float ((m -. 0.5) *. 2.0 *. float_of_int sub) in
    let s = if s < 0 then 0 else if s >= sub then sub - 1 else s in
    let e = if e < min_exp then min_exp else if e >= max_exp then max_exp - 1 else e in
    (((e - min_exp) * sub) + s) + 1
  end

(* Midpoint of bucket [i]'s value range — the quantile representative. *)
let value_of_index i =
  if i = 0 then 0.0
  else begin
    let i = i - 1 in
    let e = (i / sub) + min_exp in
    let s = i mod sub in
    let m = 0.5 +. ((float_of_int s +. 0.5) /. (2.0 *. float_of_int sub)) in
    Float.ldexp m e
  end

let add t v =
  let i = index v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

(* Integer state only: bucket counts and the total are exact under any
   merge order.  The float moments (sum/vmin/vmax) are deliberately NOT
   touched — partial float sums depend on the partition, so a
   byte-identical merge must set them from a source whose accumulation
   order is K-independent (see [set_moments]). *)
let absorb ~into src =
  for i = 0 to nbuckets - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.count <- into.count + src.count

(* Windowed readout: the per-bucket difference of two cumulative
   snapshots of the SAME value stream.  Bucket counts and the total are
   exact; the window's true extremes are unknown, so the float moments
   are bounded by the occupied bucket range (midpoints) — quantiles of
   the diff therefore carry the usual ~3% bucket error at the edges too.
   Deterministic: no RNG, no float accumulation order dependence beyond
   the subtraction of the two snapshots' sums. *)
let diff t ~since =
  let d = create () in
  let lo = ref (-1) and hi = ref (-1) in
  for i = 0 to nbuckets - 1 do
    let c = t.counts.(i) - since.counts.(i) in
    if c < 0 then invalid_arg "Hist.diff: since is not an earlier snapshot of t";
    d.counts.(i) <- c;
    if c > 0 then begin
      if !lo < 0 then lo := i;
      hi := i
    end
  done;
  d.count <- t.count - since.count;
  if d.count < 0 then invalid_arg "Hist.diff: since is not an earlier snapshot of t";
  d.sum <- t.sum -. since.sum;
  if d.count > 0 then begin
    d.vmin <- value_of_index !lo;
    d.vmax <- value_of_index !hi
  end;
  d

let set_moments t ~sum ~vmin ~vmax =
  t.sum <- sum;
  if t.count > 0 then begin
    t.vmin <- vmin;
    t.vmax <- vmax
  end

let count t = t.count

let sum t = t.sum

let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

let min_value t = if t.count = 0 then 0.0 else t.vmin

let max_value t = if t.count = 0 then 0.0 else t.vmax

let percentile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Hist.percentile: q outside [0, 1]";
  if t.count = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int t.count)) in
    let rank = if rank < 1 then 1 else rank in
    let acc = ref 0 and i = ref 0 and found = ref (nbuckets - 1) in
    (try
       while !i < nbuckets do
         acc := !acc + t.counts.(!i);
         if !acc >= rank then begin
           found := !i;
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    let v = value_of_index !found in
    (* the bucket midpoint can stick out past the observed extremes *)
    if v < t.vmin then t.vmin else if v > t.vmax then t.vmax else v
  end

let summary_fields t =
  [
    ("count", float_of_int t.count);
    ("mean", mean t);
    ("p50", percentile t 0.5);
    ("p95", percentile t 0.95);
    ("p99", percentile t 0.99);
    ("max", max_value t);
  ]
