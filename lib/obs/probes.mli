(** Per-server time-series probes.

    One {!sample} per server per probe tick (the engine-observer cadence
    configured by [probe_every]): smoothed load, instantaneous queue
    depth, replica count, and cumulative cache hit rate.  The store grows
    to cover whatever server ids are probed; sampling itself reads
    simulation state but never mutates it. *)

type sample = {
  p_time : float;
  p_load : float;  (** smoothed load-meter reading *)
  p_queue : int;  (** request-queue depth at the tick *)
  p_replicas : int;  (** replicas hosted (excluding owned nodes) *)
  p_hit_rate : float;  (** cumulative replica-cache hit rate, 0 if unused *)
}

type t

val create : unit -> t

val add : t -> server:int -> sample -> unit
(** @raise Invalid_argument on a negative server id. *)

val num_servers : t -> int
(** Upper bound on probed server ids (array extent, not sample count). *)

val samples : t -> int
(** Total samples across all servers. *)

val series : t -> int -> sample list
(** Chronological samples for one server; [] if never probed. *)

val iter : t -> (server:int -> sample -> unit) -> unit
(** All samples, grouped by server id ascending, chronological within. *)
