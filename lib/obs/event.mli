(** Flight-recorder event taxonomy.

    Every event is a plain constructor over [int]/[float]/[bool]/[string]
    fields — this library sits {e below} the protocol layer, so events
    refer to servers and namespace nodes by their integer ids rather than
    by the richer [Types] records.  The recorder stamps each event with
    the simulation time and the id of the server it happened on; the
    constructors only carry what the stamp cannot.

    Taxonomy (mirrors DESIGN §11):
    - query lifecycle: injected / queue-enter / service begin+end /
      net transit / forwarded / resolved / dropped / retransmit — these
      form the skeleton from which {!Span} reconstructs per-query trees;
    - replica churn: created / evicted / advertised, plus replication
      session start/abort;
    - cache and digest efficacy: hit / miss / digest prune / digest
      shortcut;
    - network faults: message lost / blocked by a partition;
    - server occupancy: busy (with instantaneous queue depth) / idle. *)

type t =
  | Query_injected of { qid : int; dst : int }
      (** a fresh lookup entered the system at the stamped server *)
  | Queue_enter of { qid : int; attempt : int }
      (** the query joined the stamped server's request queue *)
  | Service_begin of { qid : int; attempt : int }
  | Service_end of { qid : int; attempt : int }
  | Net_transit of { qid : int; attempt : int; dst_server : int; delay : float }
      (** the query left the stamped server on the wire; [delay] is the
          network transit time, so the span is [[t, t +. delay]] *)
  | Query_forwarded of { qid : int; via_node : int; to_server : int; shortcut : bool }
      (** routing decision: forwarded on behalf of [via_node];
          [shortcut] when a digest shortcut beat the tree route *)
  | Query_resolved of { qid : int; latency : float; hops : int }
  | Query_dropped of { qid : int; reason : string }
      (** [reason] matches the [Types.drop_reason] label, e.g. "queue_full" *)
  | Retransmit of { qid : int; attempt : int }
      (** issuer-side rpc timer fired; [attempt] is the new attempt number *)
  | Replica_created of { node : int; from_server : int }
  | Replica_evicted of { node : int }
  | Replica_advertised of { node : int; to_server : int }
  | Session_trigger of { load : float }
      (** the replication policy decided the stamped server's sustained
          load warrants shedding (§3.3 step 1) *)
  | Session_started of { session : int; peer : int }
  | Session_aborted of { session : int }
  | Cache_hit of { node : int }
  | Cache_miss of { node : int }
  | Digest_prune of { removed : int }
      (** stale digest entries dropped from the stamped server's map *)
  | Digest_shortcut of { node : int; to_server : int }
      (** a digest membership test redirected routing for [node] *)
  | Net_lost of { src : int; dst : int }
  | Net_blocked of { src : int; dst : int }  (** partitioned, not random loss *)
  | Server_busy of { queue_depth : int }
      (** the stamped server left the idle state; emitted on the
          idle->busy edge only, not per queued request *)
  | Server_idle  (** the stamped server drained its queue *)
  | Chaos_action of { action : string; detail : string }
      (** a chaos-timeline action fired (kill, partition, heal, ...);
          [action] is the stable action tag, [detail] its comma-free
          [k=v] rendering.  Stamped on server 0 by convention: campaign
          actions are cluster-wide, not tied to one server. *)

val kind : t -> string
(** Stable snake_case tag for CSV export and summaries ("query_injected",
    "cache_hit", ...). *)

val detail : t -> string
(** Space-separated [k=v] rendering of the payload fields (comma-free, so
    it embeds in a CSV cell). *)

val qid : t -> int option
(** The query id an event belongs to, for the span reconstructor; [None]
    for events that are not part of a query lifecycle. *)
