(** Log-bucketed histogram (HDR-style) for latency and hop distributions.

    Values are binned into 16 sub-buckets per power-of-two octave, which
    bounds the relative error of any quantile readout by about 3% while
    [count]/[sum]/[min_value]/[max_value] stay exact.  Adding is O(1),
    allocation-free, and — unlike the [Stats.Reservoir] path it replaces —
    consumes no randomness, so histograms can live inside the simulation
    without perturbing determinism.

    Values [<= 0] (and NaN) all share a single underflow bucket. *)

type t

val create : unit -> t

val reset : t -> unit

val add : t -> float -> unit

val absorb : into:t -> t -> unit
(** Accumulate [src]'s integer state (bucket counts and total count)
    into [into] — exact under any merge order.  The float moments
    (sum/min/max) are {e not} merged: partial float sums are
    partition-dependent, so after absorbing every part the caller must
    {!set_moments} from a K-independent source (the per-server [Stats]
    fold that saw the identical value stream). *)

val diff : t -> since:t -> t
(** [diff t ~since] is the histogram of the values added between the
    [since] snapshot and [t] (two cumulative histograms of the same value
    stream): bucket counts and the total subtract exactly.  The window's
    true extremes are unknown, so min/max are taken from the occupied
    bucket range (midpoints) — windowed quantiles carry the usual bucket
    error at the edges too.  Deterministic for any engine shard count.
    @raise Invalid_argument if [since] is not an earlier snapshot of [t]
    (any bucket would go negative). *)

val set_moments : t -> sum:float -> vmin:float -> vmax:float -> unit
(** Overwrite the float moments after {!absorb}.  [vmin]/[vmax] are
    ignored when the histogram is empty. *)

val count : t -> int

val sum : t -> float

val mean : t -> float
(** 0 when empty. *)

val min_value : t -> float
(** Exact smallest added value; 0 when empty. *)

val max_value : t -> float
(** Exact largest added value; 0 when empty. *)

val percentile : t -> float -> float
(** [percentile t q] for [q] in [\[0, 1\]]: the midpoint of the bucket
    holding the [ceil (q * count)]-th smallest value, clamped to the exact
    observed [\[min, max\]] range (so [percentile t 1.0 = max_value t]).
    0 when empty.  @raise Invalid_argument if [q] is outside [\[0, 1\]]. *)

val summary_fields : t -> (string * float) list
(** [("count", _); ("mean", _); ("p50", _); ("p95", _); ("p99", _);
    ("max", _)] — the report/bench readout. *)
