(** Flight recorder: a pre-allocated ring buffer of stamped events.

    Recording overwrites the oldest entry once [capacity] events have been
    stored — the recorder always retains the {e newest} [capacity] events,
    in recording order (qcheck-enforced in [test_obs]).  Storage is three
    parallel arrays allocated at creation; [record] never grows anything.

    A recorder with [capacity = 0] ignores every [record] — that is the
    disabled sink's backing store. *)

type entry = { time : float; server : int; event : Event.t }
(** [time] is simulation time; [server] the id of the server the event
    happened on (the issuer for injection/retransmit events, [-1] where no
    server is meaningful). *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 0]. *)

val record : t -> time:float -> server:int -> Event.t -> unit
(** Record with a zero stamp — the single-recorder (sequential) path,
    where arrival order is already the canonical order. *)

val record_stamped : t -> time:float -> tie:int -> sub:int -> server:int -> Event.t -> unit
(** Record with the engine's canonical stamp: [(time, tie, sub)] is
    globally unique and independent of the shard count, making per-lane
    recorders mergeable via {!merged}. *)

val merged : t list -> capacity:int -> t
(** Merge per-lane recorders into the ring one recorder of [capacity]
    would hold after the same run: entries sorted by stamp, truncated to
    the newest [capacity]; [total] is the sum over lanes. *)

val capacity : t -> int

val total : t -> int
(** Events ever recorded, including those overwritten. *)

val retained : t -> int
(** Events currently held: [min (total t) (capacity t)]. *)

val iter : t -> (entry -> unit) -> unit
(** Oldest retained entry first. *)

val to_list : t -> entry list
(** Chronological (oldest retained first). *)
