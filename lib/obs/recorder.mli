(** Flight recorder: a pre-allocated ring buffer of stamped events.

    Recording overwrites the oldest entry once [capacity] events have been
    stored — the recorder always retains the {e newest} [capacity] events,
    in recording order (qcheck-enforced in [test_obs]).  Storage is three
    parallel arrays allocated at creation; [record] never grows anything.

    A recorder with [capacity = 0] ignores every [record] — that is the
    disabled sink's backing store. *)

type entry = { time : float; server : int; event : Event.t }
(** [time] is simulation time; [server] the id of the server the event
    happened on (the issuer for injection/retransmit events, [-1] where no
    server is meaningful). *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 0]. *)

val record : t -> time:float -> server:int -> Event.t -> unit

val capacity : t -> int

val total : t -> int
(** Events ever recorded, including those overwritten. *)

val retained : t -> int
(** Events currently held: [min (total t) (capacity t)]. *)

val iter : t -> (entry -> unit) -> unit
(** Oldest retained entry first. *)

val to_list : t -> entry list
(** Chronological (oldest retained first). *)
