(* Typed flight-recorder events.  See the interface for the taxonomy. *)

type t =
  (* -- query lifecycle (span skeleton) -- *)
  | Query_injected of { qid : int; dst : int }
  | Queue_enter of { qid : int; attempt : int }
  | Service_begin of { qid : int; attempt : int }
  | Service_end of { qid : int; attempt : int }
  | Net_transit of { qid : int; attempt : int; dst_server : int; delay : float }
  | Query_forwarded of { qid : int; via_node : int; to_server : int; shortcut : bool }
  | Query_resolved of { qid : int; latency : float; hops : int }
  | Query_dropped of { qid : int; reason : string }
  | Retransmit of { qid : int; attempt : int }
  (* -- soft-state replica churn -- *)
  | Replica_created of { node : int; from_server : int }
  | Replica_evicted of { node : int }
  | Replica_advertised of { node : int; to_server : int }
  | Session_trigger of { load : float }
  | Session_started of { session : int; peer : int }
  | Session_aborted of { session : int }
  (* -- cache and digest efficacy -- *)
  | Cache_hit of { node : int }
  | Cache_miss of { node : int }
  | Digest_prune of { removed : int }
  | Digest_shortcut of { node : int; to_server : int }
  (* -- network faults -- *)
  | Net_lost of { src : int; dst : int }
  | Net_blocked of { src : int; dst : int }
  (* -- server occupancy transitions -- *)
  | Server_busy of { queue_depth : int }
  | Server_idle
  (* -- chaos campaign timeline -- *)
  | Chaos_action of { action : string; detail : string }

let kind = function
  | Query_injected _ -> "query_injected"
  | Queue_enter _ -> "queue_enter"
  | Service_begin _ -> "service_begin"
  | Service_end _ -> "service_end"
  | Net_transit _ -> "net_transit"
  | Query_forwarded _ -> "query_forwarded"
  | Query_resolved _ -> "query_resolved"
  | Query_dropped _ -> "query_dropped"
  | Retransmit _ -> "retransmit"
  | Replica_created _ -> "replica_created"
  | Replica_evicted _ -> "replica_evicted"
  | Replica_advertised _ -> "replica_advertised"
  | Session_trigger _ -> "session_trigger"
  | Session_started _ -> "session_started"
  | Session_aborted _ -> "session_aborted"
  | Cache_hit _ -> "cache_hit"
  | Cache_miss _ -> "cache_miss"
  | Digest_prune _ -> "digest_prune"
  | Digest_shortcut _ -> "digest_shortcut"
  | Net_lost _ -> "net_lost"
  | Net_blocked _ -> "net_blocked"
  | Server_busy _ -> "server_busy"
  | Server_idle -> "server_idle"
  | Chaos_action _ -> "chaos_action"

(* One compact [k=v] detail string per constructor; used by the event CSV
   and the terminal dump.  Keep it comma-free: it lands in a CSV cell. *)
let detail = function
  | Query_injected { qid; dst } -> Printf.sprintf "qid=%d dst=%d" qid dst
  | Queue_enter { qid; attempt } -> Printf.sprintf "qid=%d attempt=%d" qid attempt
  | Service_begin { qid; attempt } -> Printf.sprintf "qid=%d attempt=%d" qid attempt
  | Service_end { qid; attempt } -> Printf.sprintf "qid=%d attempt=%d" qid attempt
  | Net_transit { qid; attempt; dst_server; delay } ->
    Printf.sprintf "qid=%d attempt=%d dst_server=%d delay=%.6f" qid attempt dst_server delay
  | Query_forwarded { qid; via_node; to_server; shortcut } ->
    Printf.sprintf "qid=%d via_node=%d to_server=%d shortcut=%b" qid via_node to_server shortcut
  | Query_resolved { qid; latency; hops } ->
    Printf.sprintf "qid=%d latency=%.6f hops=%d" qid latency hops
  | Query_dropped { qid; reason } -> Printf.sprintf "qid=%d reason=%s" qid reason
  | Retransmit { qid; attempt } -> Printf.sprintf "qid=%d attempt=%d" qid attempt
  | Replica_created { node; from_server } ->
    Printf.sprintf "node=%d from_server=%d" node from_server
  | Replica_evicted { node } -> Printf.sprintf "node=%d" node
  | Replica_advertised { node; to_server } ->
    Printf.sprintf "node=%d to_server=%d" node to_server
  | Session_trigger { load } -> Printf.sprintf "load=%.4f" load
  | Session_started { session; peer } -> Printf.sprintf "session=%d peer=%d" session peer
  | Session_aborted { session } -> Printf.sprintf "session=%d" session
  | Cache_hit { node } -> Printf.sprintf "node=%d" node
  | Cache_miss { node } -> Printf.sprintf "node=%d" node
  | Digest_prune { removed } -> Printf.sprintf "removed=%d" removed
  | Digest_shortcut { node; to_server } -> Printf.sprintf "node=%d to_server=%d" node to_server
  | Net_lost { src; dst } -> Printf.sprintf "src=%d dst=%d" src dst
  | Net_blocked { src; dst } -> Printf.sprintf "src=%d dst=%d" src dst
  | Server_busy { queue_depth } -> Printf.sprintf "queue_depth=%d" queue_depth
  | Server_idle -> ""
  | Chaos_action { action; detail } ->
    if detail = "" then Printf.sprintf "action=%s" action
    else Printf.sprintf "action=%s %s" action detail

let qid = function
  | Query_injected { qid; _ }
  | Queue_enter { qid; _ }
  | Service_begin { qid; _ }
  | Service_end { qid; _ }
  | Net_transit { qid; _ }
  | Query_forwarded { qid; _ }
  | Query_resolved { qid; _ }
  | Query_dropped { qid; _ }
  | Retransmit { qid; _ } -> Some qid
  | Replica_created _ | Replica_evicted _ | Replica_advertised _ | Session_trigger _
  | Session_started _ | Session_aborted _ | Cache_hit _ | Cache_miss _ | Digest_prune _
  | Digest_shortcut _ | Net_lost _ | Net_blocked _ | Server_busy _ | Server_idle
  | Chaos_action _ -> None
