open Terradir_util
open Terradir_namespace
open Terradir_sim
open Types
module Obs = Terradir_obs.Obs
module Event = Terradir_obs.Event
module Probes = Terradir_obs.Probes

(* Stable labels for the flight recorder; event payloads carry strings so
   the obs library stays below [Types]. *)
let drop_label = function
  | Queue_full -> "queue_full"
  | Hop_budget -> "hop_budget"
  | Dead_end -> "dead_end"
  | Server_dead -> "server_dead"
  | Timed_out -> "timed_out"

type fetch_outcome = Fetched of { latency : float } | Fetch_failed

type fetch_state = {
  f_client : server_id;
  f_node : node_id;
  f_started : float;
  f_tried : (server_id, unit) Hashtbl.t;
  mutable f_attempts : int;
  f_on_done : (fetch_outcome -> unit) option;
}

type query_ctx = {
  qc_src : server_id;
  qc_dst : node_id;
  qc_born : float;
  mutable qc_attempt : int;
  qc_on_complete : (outcome -> unit) option;
}

type t = {
  engine : Engine.t;
  config : Config.t;
  tree : Tree.t;
  servers : Server.t array;
  owner_of : server_id array;
  rng : Splitmix.t;
  net : Net.t;
  obs : Obs.t;
  lane_metrics : Metrics.t array;
  lat_stats : Stats.t array;
  hops_stats : Stats.t array;
  data_lat_stats : Stats.t array;
  meta_lag_stats : Stats.t array;
  hop_budget : int;
  replicas_created_per_level : int array array;
  data_holders : server_id array array;
  shard_ix : int array;
  pending_fetches : (int, fetch_state) Hashtbl.t array;
  pending_queries : (int, query_ctx) Hashtbl.t array;
  query_seq : int array;
  fetch_seq : int array;
  session_seq : int array;
  meta_version : int array;
  mutable last_src : server_id;
  epochs : int array;
  msg_pool : message Freelist.t array;
  query_pool : query Freelist.t array;
  gt_scratch : Node_map.scratch;
      (* oracle-only workspace; oracle routing pins the engine to one
         domain, so a single scratch is race-free *)
  audit : Invariant.t option;
}

let now t = Engine.now t.engine

(* The executing lane's metrics part.  Every counter bump lands in the
   part owned by the domain running the current event, so parts never
   race; [metrics] folds them back into one struct. *)
let met t = t.lane_metrics.(Engine.lane_index t.engine)

let fold_stats arr = Array.fold_left Stats.merge (Stats.create ()) arr

(* ------------------------------------------------------------------ *)
(* Hot-path object pools                                               *)
(* ------------------------------------------------------------------ *)

(* Message and query records are recycled through per-lane free lists, so
   steady-state traffic allocates neither.  Ownership follows the record:
   whichever lane retires one frees it into its OWN lane's pool (records
   migrate between pools as traffic crosses lanes), so pools are
   single-owner within a window exactly like [lane_metrics] and need no
   atomics.  Each record reaches exactly one terminal point — enumerated
   at the [free_msg]/[free_query] call sites — and the scrubs below drop
   every reference (maps, blooms, payloads) so pooled records retain
   nothing across reuse.  Pooling is invisible to the trajectory: records
   are plain containers, and no RNG draw or event order depends on them. *)

let lane_pool t pools = pools.(Engine.lane_index t.engine)

let alloc_msg t ~from ~load ~digest_version ~digest payload =
  let p = lane_pool t t.msg_pool in
  if Freelist.is_empty p then
    {
      msg_from = from;
      msg_load = load;
      msg_digest_version = digest_version;
      msg_digest = digest;
      msg_payload = payload;
    }
  else begin
    let m = Freelist.pop p in
    m.msg_from <- from;
    m.msg_load <- load;
    m.msg_digest_version <- digest_version;
    m.msg_digest <- digest;
    m.msg_payload <- payload;
    m
  end

let free_msg t m =
  m.msg_digest <- None;
  m.msg_payload <- null_payload;
  Freelist.put (lane_pool t t.msg_pool) m

let alloc_query t ~qid ~src ~dst ~attempt ~born =
  let p = lane_pool t t.query_pool in
  let q = if Freelist.is_empty p then fresh_query () else Freelist.pop p in
  q.qid <- qid;
  q.src_server <- src;
  q.dst <- dst;
  q.attempt <- attempt;
  q.born <- born;
  q.hops <- 0;
  q.target <- dst;
  path_reset q;
  q.shortcut_hops <- 0;
  q.best_dist <- max_int;
  q.stale_forwards <- 0;
  q.result_map <- Node_map.empty;
  q.result_meta <- 0;
  q

let free_query t q =
  path_scrub q;
  q.result_map <- Node_map.empty;
  Freelist.put (lane_pool t t.query_pool) q

let metrics t =
  Metrics.merged
    ~parts:(Array.to_list t.lane_metrics)
    ~latency:(fold_stats t.lat_stats) ~hops:(fold_stats t.hops_stats)
    ~data_latency:(fold_stats t.data_lat_stats) ~meta_lag:(fold_stats t.meta_lag_stats)

(* Request ids encode their issuer ([(src + 1) lsl 32 lor seq], allocated
   from a per-server counter) so any context can find both the owning
   server and its shard's pending table without global state. *)
let id_owner id = (id lsr 32) - 1

let q_tbl t qid = t.pending_queries.(t.shard_ix.(id_owner qid))

let f_tbl t fid = t.pending_fetches.(t.shard_ix.(id_owner fid))

(* Run [f] in [target]'s context: inline when already there (or in a
   driver/sync context, where every shard lane is idle), otherwise
   re-scheduled to [target]'s lane after one network delay — the same
   price the failure signal that triggered it already paid, and never
   below the engine's lookahead.  The decision depends only on context
   ids, never on the shard layout, so one-domain and multi-domain runs
   defer identically. *)
let finalize_at t target f =
  let c = Engine.ctx t.engine in
  if c = target || c < 0 then f ()
  else Engine.schedule ~owner:target t.engine ~delay:t.config.Config.network_delay f

(* One full audit pass over engine time, every server, and ownership
   placement — runs between events (engine observer) and at the end of
   every [run_until]. *)
let audit_pass t a =
  Invariant.check_cluster a ~now:(now t) ~next_event:(Engine.next_time t.engine)
    ~servers:t.servers ~owner_of:t.owner_of

let server t sid = t.servers.(sid)

let num_servers t = Array.length t.servers

let features t = t.config.Config.features

(* The root's owner is durable bootstrap configuration (the same DNS-style
   hint [seed_root_hint] installs at join time), not soft state.  A server
   whose maps have all been pruned empty — bounce-pruning around dead peers
   can strand a leaf owner with no outward knowledge at all — re-reads that
   configuration instead of dead-ending queries forever.  Returns whether a
   usable hint was installed (false when this server is itself the root
   contact, where the hint cannot help: routing never self-forwards). *)
let reseed_root_contact t s =
  let root_owner = t.owner_of.(Tree.root) in
  if Server.hosts s Tree.root || root_owner = s.Server.id then false
  else begin
    Cache.insert s.Server.cache ~node:Tree.root
      (Node_map.singleton ~is_owner:true ~server:root_owner ~stamp:(now t) ());
    true
  end

(* Bounce-pruning must never erase the namespace itself.  Ownership is the
   one durable fact about a node; the context map a host keeps for a tree
   neighbor is delegation state (a DNS zone's NS record), and pruning a
   dead host out of it may not leave it permanently empty — that strands
   the whole subtree even after its owner revives, because re-learning
   needs a resolution and resolving needs the delegation.  Re-seed the
   current owner instead.  A still-dead owner is fine: queries to it keep
   bouncing into the hop budget (the region is {e unreachable}, not
   {e forgotten}) and resolve again the moment it revives. *)
let reseed_delegation t s node =
  match Server.neighbor_map s node with
  | Some m when Node_map.is_empty m ->
    Server.merge_into_known_map s node
      (Node_map.singleton ~is_owner:true ~server:t.owner_of.(node) ~stamp:(now t) ())
      ~now:(now t)
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Messaging                                                           *)
(* ------------------------------------------------------------------ *)

let rec send t ~from ~to_ payload =
  let s = t.servers.(from) in
  let version = Digest_store.local_version s.Server.digests in
  let digest =
    if
      (features t).Config.digests
      && Digest_store.last_version_sent s.Server.digests ~peer:to_ < version
    then begin
      Digest_store.note_version_sent s.Server.digests ~peer:to_ version;
      Some (Digest_store.local s.Server.digests)
    end
    else None
  in
  (* The paper's "load balancing messages": probes, replies, transfers —
     not query replies, which are part of the lookup itself. *)
  (match payload with
  | Load_probe _ | Load_reply _ | Replicate _ ->
    let m = met t in
    m.Metrics.control_messages <- m.Metrics.control_messages + 1
  | Query _ | Query_reply _ | Data_request _ | Data_reply _ -> ());
  (* The network decides: silent loss and partitions vanish the message —
     the sender learns nothing, so recovery is the issuer's timer's job.
     The message record is only built for deliveries the network makes
     ([Load_meter.load] is an idempotent window roll, so reading it after
     the transmit draw — or not at all on a loss — changes nothing). *)
  match Net.transmit t.net ~src:from ~dst:to_ with
  | Net.Delivered delay ->
    (match payload with
    | (Query q | Query_reply q) when Obs.spans_on t.obs ->
      (* lint: obs-in-hot-path span skeleton wire segment; spans level *)
      Obs.record t.obs ~server:from
        (Event.Net_transit { qid = q.qid; attempt = q.attempt; dst_server = to_; delay })
    | Query _ | Query_reply _ | Load_probe _ | Load_reply _ | Replicate _ | Data_request _
    | Data_reply _ -> ());
    let msg =
      alloc_msg t ~from
        ~load:(Load_meter.load s.Server.load (now t))
        ~digest_version:version ~digest payload
    in
    Engine.schedule ~owner:to_ t.engine ~delay (fun () -> deliver t ~to_ msg)
  | Net.Lost ->
    let m = met t in
    m.Metrics.net_lost <- m.Metrics.net_lost + 1;
    (* A silently-lost query attempt is this record's terminal point: the
       issuer's timer retransmits with a fresh record. *)
    (match payload with
    | Query q | Query_reply q -> free_query t q
    | Load_probe _ | Load_reply _ | Replicate _ | Data_request _ | Data_reply _ -> ())
  | Net.Blocked ->
    let m = met t in
    m.Metrics.net_blocked <- m.Metrics.net_blocked + 1;
    (match payload with
    | Query q | Query_reply q -> free_query t q
    | Load_probe _ | Load_reply _ | Replicate _ | Data_request _ | Data_reply _ -> ())

and deliver t ~to_ msg =
  let s = t.servers.(to_) in
  if not s.Server.alive then bounce t ~dead:to_ msg
  else begin
    if msg.msg_from <> to_ then Server.note_peer_load s msg.msg_from msg.msg_load;
    (match msg.msg_digest with
    | Some bloom when (features t).Config.digests && msg.msg_from <> to_ ->
      Digest_store.record_remote s.Server.digests ~server:msg.msg_from
        ~version:msg.msg_digest_version bloom
    | Some _ | None -> ());
    let queue_full () = Queue.length s.Server.queue >= t.config.Config.queue_capacity in
    (match msg.msg_payload with
    | Query q ->
      if queue_full () then begin
        finish_dropped t q Queue_full;
        free_msg t msg
      end
      else begin
        if Obs.spans_on t.obs then
          (* lint: obs-in-hot-path span skeleton queue entry; spans level *)
          Obs.record t.obs ~server:to_ (Event.Queue_enter { qid = q.qid; attempt = q.attempt });
        Queue.add msg s.Server.queue;
        kick t to_
      end
    | Data_request { fetch_id; _ } ->
      if queue_full () then begin
        fetch_retry t fetch_id ~failed:to_;
        free_msg t msg
      end
      else begin
        Queue.add msg s.Server.queue;
        kick t to_
      end
    | Query_reply _ | Load_probe _ | Load_reply _ | Replicate _ | Data_reply _ ->
      (match msg.msg_payload with
      | Query_reply q when Obs.spans_on t.obs ->
        (* lint: obs-in-hot-path the reply leg's queue wait; spans level *)
        Obs.record t.obs ~server:to_ (Event.Queue_enter { qid = q.qid; attempt = q.attempt })
      | _ -> ());
      Queue.add msg s.Server.ctrl_queue;
      kick t to_)
  end

(* A message reached a dead server.  Queries bounce back to the sender
   (failure detection), which prunes the dead host and retries; control
   messages are simply lost (session timeouts recover). *)
and bounce t ~dead msg =
  match msg.msg_payload with
  | Query q ->
    let sender = msg.msg_from in
    Engine.schedule ~owner:sender t.engine ~delay:t.config.Config.network_delay (fun () ->
        let s = t.servers.(sender) in
        if not s.Server.alive then begin
          finish_dropped t q Server_dead;
          free_msg t msg
        end
        else begin
          Server.forget_server s q.target dead;
          Server.forget_peer s dead;
          reseed_delegation t s q.target;
          q.hops <- q.hops + 2;
          if q.hops > t.hop_budget then begin
            finish_dropped t q Hop_budget;
            free_msg t msg
          end
          else begin
            (* Reuse the bounced record in place: the sender re-queues it
               without the digest (it already sent its current version). *)
            msg.msg_from <- sender;
            msg.msg_digest <- None;
            deliver t ~to_:sender msg
          end
        end)
  | Query_reply q ->
    (* The originator died; its lookup dies with it. *)
    finish_dropped t q Server_dead;
    free_msg t msg
  | Data_request { fetch_id; _ } ->
    fetch_retry t fetch_id ~failed:dead;
    free_msg t msg
  | Load_probe _ | Load_reply _ | Replicate _ | Data_reply _ -> free_msg t msg

(* ------------------------------------------------------------------ *)
(* Service loop                                                        *)
(* ------------------------------------------------------------------ *)

and kick t sid =
  let s = t.servers.(sid) in
  if s.Server.alive && not s.Server.serving then begin
    let next =
      if not (Queue.is_empty s.Server.ctrl_queue) then Some (Queue.pop s.Server.ctrl_queue)
      else if not (Queue.is_empty s.Server.queue) then Some (Queue.pop s.Server.queue)
      else None
    in
    match next with
    | None -> ()
    | Some msg ->
      s.Server.serving <- true;
      if Obs.counters_on t.obs && not s.Server.obs_busy then begin
        s.Server.obs_busy <- true;
        (* lint: obs-in-hot-path idle->busy edge only, not per request; counters level *)
        Obs.record t.obs ~server:sid
          (Event.Server_busy { queue_depth = Queue.length s.Server.queue })
      end;
      (match msg.msg_payload with
      | (Query q | Query_reply q) when Obs.spans_on t.obs ->
        (* lint: obs-in-hot-path span skeleton service start; spans level *)
        Obs.record t.obs ~server:sid (Event.Service_begin { qid = q.qid; attempt = q.attempt })
      | _ -> ());
      Load_meter.begin_busy s.Server.load (now t);
      let duration =
        (match msg.msg_payload with
        | Query _ -> Splitmix.exponential s.Server.rng t.config.Config.service_mean
        | Data_request _ -> Splitmix.exponential s.Server.rng t.config.Config.data_service_mean
        | Query_reply _ | Load_probe _ | Load_reply _ | Replicate _ | Data_reply _ ->
          t.config.Config.ctrl_service)
        /. s.Server.speed
      in
      let epoch = t.epochs.(sid) in
      Engine.schedule ~owner:sid t.engine ~delay:duration (fun () ->
          if t.epochs.(sid) = epoch && s.Server.alive then begin
            Load_meter.end_busy s.Server.load (now t);
            s.Server.serving <- false;
            (match msg.msg_payload with
            | (Query q | Query_reply q) when Obs.spans_on t.obs ->
              (* lint: obs-in-hot-path span skeleton service end; spans level *)
              Obs.record t.obs ~server:sid (Event.Service_end { qid = q.qid; attempt = q.attempt })
            | _ -> ());
            process t sid msg;
            (* [process] consumed the message; any query inside reached its
               own terminal point (completion, drop, or forward). *)
            free_msg t msg;
            kick t sid;
            (* [obs_busy] is only ever set while the counters level is on,
               so the drain edge below cannot fire with a disabled sink. *)
            if s.Server.obs_busy && not s.Server.serving then begin
              s.Server.obs_busy <- false;
              (* lint: obs-in-hot-path busy->idle edge only; counters level *)
              Obs.record t.obs ~server:sid Event.Server_idle
            end
          end
          else
            (* The server died (epoch bumped) with this message in service:
               it was already popped from the queue, so this closure is the
               sole owner.  A query inside is left to the GC — its issuer's
               timer recovers the request; recycling it here would risk a
               double-free if a revive raced the service completion. *)
            free_msg t msg)
  end

(* ------------------------------------------------------------------ *)
(* Message processing                                                  *)
(* ------------------------------------------------------------------ *)

and process t sid msg =
  let s = t.servers.(sid) in
  (match msg.msg_payload with
  | Query q -> process_query ~from:msg.msg_from t s q
  | Query_reply q -> complete_query t s q
  | Load_probe { session } ->
    send t ~from:sid ~to_:msg.msg_from
      (Load_reply { session; load = Load_meter.load s.Server.load (now t) })
  | Load_reply { session; load } -> handle_load_reply t s ~peer:msg.msg_from ~session ~peer_load:load
  | Replicate { session = _; replicas } ->
    handle_replicate t s ~sender:msg.msg_from ~sender_load:msg.msg_load replicas
  | Data_request { fetch_id; node; client } ->
    (* Data is durable at its holders (like ownership); serving it is pure
       busy time, already accounted by this service slot. *)
    send t ~from:sid ~to_:client (Data_reply { fetch_id; node })
  | Data_reply { fetch_id; _ } -> (
    match Hashtbl.find_opt (f_tbl t fetch_id) fetch_id with
    | None -> ()
    | Some f ->
      Hashtbl.remove (f_tbl t fetch_id) fetch_id;
      let m = met t in
      m.Metrics.data_completed <- m.Metrics.data_completed + 1;
      let latency = now t -. f.f_started in
      Stats.add t.data_lat_stats.(f.f_client) latency;
      Option.iter (fun k -> k (Fetched { latency })) f.f_on_done));
  (* §3.3 step 1: a server checks its load after each processed query. *)
  maybe_start_session t s

(* Path propagation is the caching mechanism (§2.4): without caching the
   base system neither carries nor absorbs path state.  Under the
   [Endpoints_only] strawman policy, intermediate servers absorb nothing —
   only the source caches, from the reply (see [complete_query]). *)
and absorb_path ?(at_endpoint = false) t s q =
  let cfg = t.config in
  if
    cfg.Config.features.Config.caching
    && (cfg.Config.cache_policy = Config.Path_propagation || at_endpoint)
  then begin
    let time = now t in
    path_iter q ~f:(fun node map -> Server.merge_into_known_map s node map ~now:time)
  end

and append_path_entry t s q =
  if
    (features t).Config.caching
    && t.config.Config.cache_policy = Config.Path_propagation
  then
    match Server.find_hosted s q.target with
    | Some h ->
      path_append q q.target h.Server.h_map;
      (* Bound piggyback size, keeping the newest entries. *)
      path_truncate q
    | None -> ()

and process_query ?from t s q =
  let time = now t in
  s.Server.queries_processed <- s.Server.queries_processed + 1;
  absorb_path t s q;
  if q.hops > 0 && not (Server.hosts s q.target) then begin
    q.stale_forwards <- q.stale_forwards + 1;
    let m = met t in
    m.Metrics.stale_forwards <- m.Metrics.stale_forwards + 1;
    (* Stale-forward feedback — the alive-host dual of the bounce.  The
       sender's map entry claiming this server hosts [q.target] is wrong;
       tell it so, exactly as bounce-back failure detection does for dead
       hosts.  Without it, stale entries between {e alive} peers never
       decay and can bounce a query between two mutually-stale servers
       until its hop budget dies.  Modeled like the bounce: a sender-side
       state correction after one network delay, riding the transport
       layer rather than the request queues. *)
    let stale_target = q.target in
    match from with
    | Some sender when sender <> s.Server.id ->
      let self = s.Server.id in
      Engine.schedule ~owner:sender t.engine ~delay:t.config.Config.network_delay (fun () ->
          let snd = t.servers.(sender) in
          if snd.Server.alive then begin
            Server.forget_server snd stale_target self;
            reseed_delegation t snd stale_target
          end)
    | Some _ | None -> ()
  end;
  if Server.hosts s q.target then begin
    Server.touch_node s q.target ~now:time;
    q.best_dist <- min q.best_dist (Tree.distance t.tree q.target q.dst)
  end;
  let oracle =
    if t.config.Config.oracle_maps then Some (ground_truth_map t) else None
  in
  let rec route ~reseeded =
  match Routing.decide ~shortcut_bound:q.best_dist ?oracle s ~dst:q.dst with
  | Routing.Resolve ->
    Server.touch_node s q.dst ~now:time;
    (match Server.find_hosted s q.dst with
    | Some h ->
      path_append q q.dst h.Server.h_map;
      (* the lookup's result: the destination's map and meta-data *)
      q.result_map <- h.Server.h_map;
      q.result_meta <- h.Server.h_meta_version
    | None -> ());
    if q.src_server = s.Server.id then complete_query t s q
    else begin
      q.hops <- q.hops + 1;
      send t ~from:s.Server.id ~to_:q.src_server (Query_reply q)
    end
  | Routing.Forward { via_node; to_server; shortcut } ->
    (* Loop breaking.  A stale forward whose best candidate is no closer
       than the query has already reached would wander sideways — two peers
       with mutually-stale maps bounce such a query between them until the
       hop budget kills it.  Fall back on the namespace guarantee instead:
       route via the well-known root and descend the owner chain, which
       always progresses while owners are alive (owner entries are durable,
       merge-pinned, and filter-exempt). *)
    let via_node, to_server, shortcut =
      if
        shortcut || q.hops = 0
        || Server.hosts s q.target
        || Tree.distance t.tree via_node q.dst < q.best_dist
        || not (reseed_root_contact t s)
      then (via_node, to_server, shortcut)
      else
        match
          Option.bind
            (Cache.use s.Server.cache ~node:Tree.root)
            (fun map -> Node_map.random_server ~exclude:s.Server.id map s.Server.rng)
        with
        | Some root_server -> (Tree.root, root_server, false)
        | None -> (via_node, to_server, shortcut)
    in
    if shortcut then begin
      q.shortcut_hops <- q.shortcut_hops + 1;
      let m = met t in
      m.Metrics.shortcut_forwards <- m.Metrics.shortcut_forwards + 1
    end;
    append_path_entry t s q;
    let m = met t in
    m.Metrics.query_forwards <- m.Metrics.query_forwards + 1;
    q.hops <- q.hops + 1;
    if q.hops > t.hop_budget then finish_dropped t q Hop_budget
    else begin
      q.target <- via_node;
      q.best_dist <- min q.best_dist (Tree.distance t.tree via_node q.dst);
      if Obs.full_on t.obs then
        (* lint: obs-in-hot-path per-hop routing detail; full level only *)
        Obs.record t.obs ~server:s.Server.id
          (Event.Query_forwarded { qid = q.qid; via_node; to_server; shortcut });
      send t ~from:s.Server.id ~to_:to_server (Query q)
    end
  | Routing.Dead_end ->
    (* Last resort before stranding the query: fall back on the durable
       root contact once and re-decide (soft state rebuilds from there via
       the usual path-propagation machinery).  Bounded: at most one reseed
       per processing step, and every resulting forward consumes hops. *)
    if (not reseeded) && reseed_root_contact t s then route ~reseeded:true
    else finish_dropped t q Dead_end
  in
  route ~reseeded:false

(* A query attempt reached a terminal drop.  Only the newest attempt's
   fate finalizes the request: explicit drops of superseded attempts are
   discarded (a retransmission is already racing them), and drops of
   already-finalized requests are stale noise from the network.
   Finalization is issuer state (the pending table, the callback), so a
   drop detected on another server's context travels back to the issuer
   through [finalize_at] — the re-check happens there. *)
and finish_dropped t q reason =
  finalize_at t q.src_server (fun () ->
      (match Hashtbl.find_opt (q_tbl t q.qid) q.qid with
      | None -> ()
      | Some ctx when q.attempt < ctx.qc_attempt -> ()
      | Some ctx ->
        Hashtbl.remove (q_tbl t q.qid) q.qid;
        Metrics.drop (met t) reason ~now:(now t);
        if Obs.spans_on t.obs then
          (* lint: obs-in-hot-path terminal drop closes the span; spans level *)
          Obs.record t.obs ~server:ctx.qc_src
            (Event.Query_dropped { qid = q.qid; reason = drop_label reason });
        Option.iter (fun k -> k (Dropped reason)) ctx.qc_on_complete);
      (* Whatever the branch, this attempt's record is retired here — the
         closure took sole ownership when the drop was detected. *)
      free_query t q)

(* ------------------------------------------------------------------ *)
(* Data retrieval (§2.1 step two)                                      *)
(* ------------------------------------------------------------------ *)

and fetch_attempt t fetch_id =
  match Hashtbl.find_opt (f_tbl t fetch_id) fetch_id with
  | None -> ()
  | Some f -> (
    let holders = t.data_holders.(f.f_node) in
    (* Constant-time membership: with many data copies and a long failover
       history, the old [List.mem h f_tried] filter was O(tried x holders)
       per attempt and quadratic across a failover sequence. *)
    let untried =
      Array.to_list holders |> List.filter (fun h -> not (Hashtbl.mem f.f_tried h))
    in
    match untried with
    | [] ->
      Hashtbl.remove (f_tbl t fetch_id) fetch_id;
      let m = met t in
      m.Metrics.data_dropped <- m.Metrics.data_dropped + 1;
      Option.iter (fun k -> k Fetch_failed) f.f_on_done
    | _ ->
      (* The holder choice draws from the {e client's} stream, so the
         sequence depends only on the client's own event order. *)
      let rng = t.servers.(f.f_client).Server.rng in
      let holder = List.nth untried (Splitmix.int rng (List.length untried)) in
      Hashtbl.replace f.f_tried holder ();
      send t ~from:f.f_client ~to_:holder
        (Data_request { fetch_id; node = f.f_node; client = f.f_client }))

and fetch_retry t fetch_id ~failed:_ =
  finalize_at t (id_owner fetch_id) (fun () -> fetch_attempt t fetch_id)

(* Ground truth for oracle routing: the servers that actually host a node
   right now.  A linear scan per call — acceptable because the oracle is an
   analysis reference run at small scales, never the protocol itself. *)
and ground_truth_map t node =
  let time = now t in
  Array.fold_left
    (fun acc s ->
      if s.Server.alive && Server.hosts s node then
        Node_map.add ~scratch:t.gt_scratch ~max:max_int acc
          {
            Node_map.server = s.Server.id;
            is_owner = t.owner_of.(node) = s.Server.id;
            stamp = time;
          }
      else acc)
    Node_map.empty t.servers

and complete_query t s q =
  (* Always runs on the issuer: a local resolve is at [q.src_server] and a
     [Query_reply] is delivered there. *)
  match Hashtbl.find_opt (q_tbl t q.qid) q.qid with
  | None ->
    (* The request was already finalized (another attempt won the race, or
       the last timer expired): a duplicate result, discarded. *)
    let m = met t in
    m.Metrics.late_replies <- m.Metrics.late_replies + 1;
    free_query t q
  | Some ctx ->
    (* First resolution wins, whichever attempt carried it. *)
    Hashtbl.remove (q_tbl t q.qid) q.qid;
    (* The source caches its lookup result even under endpoint-only caching;
       with path propagation it absorbs the whole route. *)
    absorb_path ~at_endpoint:true t s q;
    let latency = now t -. q.born in
    Metrics.resolve (met t) ~latency ~hops:q.hops ~now:(now t);
    Stats.add t.lat_stats.(ctx.qc_src) latency;
    Stats.add t.hops_stats.(ctx.qc_src) (float_of_int q.hops);
    if Obs.spans_on t.obs then
      (* lint: obs-in-hot-path resolution closes the span; spans level *)
      Obs.record t.obs ~server:ctx.qc_src
        (Event.Query_resolved { qid = q.qid; latency; hops = q.hops });
    (* Meta-data staleness at the resolving host, vs the owner's truth.
       The authoritative version lives in [t.meta_version] (updated only
       between events, by [update_meta]/owner writes), not read out of the
       owner server's records — those belong to another shard. *)
    Stats.add t.meta_lag_stats.(ctx.qc_src)
      (float_of_int (max 0 (t.meta_version.(q.dst) - q.result_meta)));
    Option.iter
      (fun k ->
        k (Resolved { latency; hops = q.hops; map = q.result_map; meta_version = q.result_meta }))
      ctx.qc_on_complete;
    (* The winning attempt's record retires after the callback captured its
       result values (the map is an immutable Node_map, safe to share). *)
    free_query t q

(* ------------------------------------------------------------------ *)
(* Replication protocol driver (§3.3)                                  *)
(* ------------------------------------------------------------------ *)

and maybe_start_session t s =
  if Replication.should_start s ~now:(now t) then begin
    let m = met t in
    m.Metrics.sessions_started <- m.Metrics.sessions_started + 1;
    let sid = s.Server.id in
    let session_id = ((sid + 1) lsl 32) lor t.session_seq.(sid) in
    t.session_seq.(sid) <- t.session_seq.(sid) + 1;
    let sess = { Server.session_id; tried = []; attempts = 0 } in
    s.Server.session <- Some sess;
    probe_next_peer t s sess
  end

and abort_session t s =
  let m = met t in
  m.Metrics.sessions_aborted <- m.Metrics.sessions_aborted + 1;
  (match s.Server.session with
  | Some sess when Obs.counters_on t.obs ->
    (* lint: obs-in-hot-path session aborts are rare; counters level *)
    Obs.record t.obs ~server:s.Server.id
      (Event.Session_aborted { session = sess.Server.session_id })
  | Some _ | None -> ());
  s.Server.session <- None;
  s.Server.session_backoff_until <- now t +. t.config.Config.retry_delay

and probe_next_peer t s sess =
  match Server.min_load_peer s ~exclude:(s.Server.id :: sess.Server.tried) with
  | None -> abort_session t s
  | Some (peer, _believed) ->
    if sess.Server.attempts = 0 && Obs.counters_on t.obs then
      (* lint: obs-in-hot-path at most one start per session; counters level *)
      Obs.record t.obs ~server:s.Server.id
        (Event.Session_started { session = sess.Server.session_id; peer });
    sess.Server.tried <- peer :: sess.Server.tried;
    sess.Server.attempts <- sess.Server.attempts + 1;
    send t ~from:s.Server.id ~to_:peer (Load_probe { session = sess.Server.session_id });
    (* Recover from lost probes/replies (dead peers): abort if no progress
       before a generous round-trip budget. *)
    let attempts_at_send = sess.Server.attempts in
    let timeout = (4.0 *. t.config.Config.network_delay) +. 0.5 in
    Engine.schedule ~owner:s.Server.id t.engine ~delay:timeout (fun () ->
        match s.Server.session with
        | Some cur
          when cur.Server.session_id = sess.Server.session_id
               && cur.Server.attempts = attempts_at_send ->
          abort_session t s
        | Some _ | None -> ())

and handle_load_reply t s ~peer ~session ~peer_load =
  match s.Server.session with
  | Some sess when sess.Server.session_id = session ->
    Server.note_peer_load s peer peer_load;
    let time = now t in
    let l_source = Load_meter.load s.Server.load time in
    if Replication.acceptable ~config:t.config ~l_source ~l_dest:peer_load then begin
      let nodes = Replication.select_nodes s ~l_source ~l_dest:peer_load ~now:time in
      let payloads = List.filter_map (fun n -> Server.make_replica_payload s n ~now:time) nodes in
      if payloads = [] then abort_session t s
      else begin
        send t ~from:s.Server.id ~to_:peer (Replicate { session; replicas = payloads });
        List.iter (fun n -> Server.record_new_replica s n peer ~now:time) nodes;
        Load_meter.set_adjustment s.Server.load
          (Replication.adjusted_load ~l_source ~l_dest:peer_load);
        s.Server.session <- None;
        (* Let the shed divert traffic before considering another one. *)
        s.Server.session_backoff_until <- time +. t.config.Config.success_cooldown
      end
    end
    else if sess.Server.attempts >= t.config.Config.max_attempts then abort_session t s
    else probe_next_peer t s sess
  | Some _ | None -> () (* stale reply from an expired session *)

and handle_replicate t s ~sender ~sender_load replicas =
  let time = now t in
  let installed = ref 0 in
  let evicted_before = s.Server.replicas_evicted in
  List.iter
    (fun payload ->
      match Server.install_replica s payload ~now:time with
      | `Installed ->
        incr installed;
        if Obs.counters_on t.obs then
          (* lint: obs-in-hot-path replica churn is rare; counters level *)
          Obs.record t.obs ~server:s.Server.id
            (Event.Replica_created { node = payload.rp_node; from_server = sender });
        Metrics.replica_created (met t) ~now:time;
        let level = Tree.depth t.tree payload.rp_node in
        let per_level = t.replicas_created_per_level.(Engine.lane_index t.engine) in
        per_level.(level) <- per_level.(level) + 1
      | `Merged | `Rejected -> ())
    replicas;
  (* Rank-based evictions performed to make room (§3.5). *)
  let m = met t in
  m.Metrics.replicas_evicted <-
    m.Metrics.replicas_evicted + (s.Server.replicas_evicted - evicted_before);
  if !installed > 0 then
    (* §3.3 step 4, receiver side: assume the ideal post-shed load until the
       next measurement window lands. *)
    Load_meter.set_adjustment s.Server.load
      (Replication.adjusted_load ~l_source:sender_load
         ~l_dest:(Load_meter.load s.Server.load time))

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* DNS-style root hint for a server with no state of its own (bootstrap,
   or a crash-revived server that owned nothing). *)
let seed_root_hint owner_of (s : Server.t) =
  if s.Server.owned_count = 0 && not (Server.hosts s Tree.root) then
    Cache.insert s.Server.cache ~node:Tree.root
      (Node_map.singleton ~is_owner:true ~server:owner_of.(Tree.root) ~stamp:0.0 ())

let place_owners config tree rng =
  let n = Tree.size tree and s = config.Config.num_servers in
  match config.Config.placement with
  | Config.Uniform -> Array.init n (fun _ -> Splitmix.int rng s)
  | Config.Round_robin ->
    let order = Splitmix.permutation rng n in
    let owners = Array.make n 0 in
    Array.iteri (fun rank node -> owners.(node) <- rank mod s) order;
    owners

let create ?(monitor = true) ?(obs = Obs.null) ?shard_of ~config ~tree () =
  Config.validate config;
  let rng = Splitmix.create config.Config.seed in
  let engine = Engine.create ~scheduler:config.Config.scheduler () in
  (* The sink reads simulation time through this closure; a null sink
     ignores it (shared across clusters and domains). *)
  Obs.set_clock obs (fun () -> Engine.now engine);
  let owner_of = place_owners config tree rng in
  (* Heterogeneous capacities: log-uniform speeds, normalized to mean 1 so
     the cluster's aggregate capacity does not depend on the spread. *)
  let speeds =
    let spread = config.Config.speed_spread in
    if spread = 1.0 then Array.make config.Config.num_servers 1.0
    else begin
      let raw =
        Array.init config.Config.num_servers (fun _ ->
            exp (Splitmix.float rng (2.0 *. log spread) -. log spread))
      in
      let mean = Array.fold_left ( +. ) 0.0 raw /. float_of_int (Array.length raw) in
      Array.map (fun v -> v /. mean) raw
    end
  in
  let servers =
    Array.init config.Config.num_servers (fun id ->
        Server.create ~speed:speeds.(id) ~id ~config ~tree ~obs ~rng:(Splitmix.split rng) ())
  in
  (* Static data placement: owner first, then distinct extra holders. *)
  let data_holders =
    Array.mapi
      (fun _node owner ->
        let extras = min (config.Config.data_copies - 1) (config.Config.num_servers - 1) in
        let holders = ref [ owner ] in
        while List.length !holders < extras + 1 do
          let candidate = Splitmix.int rng config.Config.num_servers in
          if not (List.mem candidate !holders) then holders := candidate :: !holders
        done;
        Array.of_list (List.rev !holders))
      owner_of
  in
  (* The network gets its own seed-derived stream (not a [split] of the
     main one) so an ideal-network run draws exactly the seed's sequence. *)
  let net =
    let latency =
      if config.Config.net_jitter > 0.0 then
        Net.Uniform { base = config.Config.network_delay; jitter = config.Config.net_jitter }
      else Net.Constant config.Config.network_delay
    in
    Net.create ~loss:config.Config.net_loss ~latency ~obs ~peers:config.Config.num_servers
      ~rng:(Splitmix.create (config.Config.seed lxor 0x4e455431)) ()
  in
  (* Effective domain count: multi-domain needs a positive lookahead
     (the minimum network latency bounds how far a shard may run ahead)
     and shard-local reads — oracle routing scans every server, so it
     pins the sequential engine.  The observable outputs are identical
     either way; only wall-clock changes. *)
  let k =
    let requested = config.Config.engine_domains in
    if requested <= 1 || config.Config.oracle_maps || Net.min_latency net <= 0.0 then 1
    else min requested config.Config.num_servers
  in
  let shard_ix =
    let assign = match shard_of with Some f -> f | None -> fun sid -> sid mod k in
    Array.init config.Config.num_servers (fun sid -> if k = 1 then 0 else assign sid)
  in
  if k > 1 then begin
    Engine.configure engine ~domains:k ~lookahead:(Net.min_latency net) ~shard_of:shard_ix;
    (* Per-lane flight recording, stamped with the engine's canonical
       event key so the merged view matches the sequential ring. *)
    Obs.set_multi obs ~lanes:(Engine.lane_count engine) ~stamp:(fun () -> Engine.stamp engine)
  end;
  let lanes = Engine.lane_count engine in
  let metrics_rng = Splitmix.split rng in
  let t =
    {
      engine;
      config;
      tree;
      servers;
      owner_of;
      rng;
      net;
      obs;
      lane_metrics = Array.init lanes (fun _ -> Metrics.create ~rng:metrics_rng);
      lat_stats = Array.init config.Config.num_servers (fun _ -> Stats.create ());
      hops_stats = Array.init config.Config.num_servers (fun _ -> Stats.create ());
      data_lat_stats = Array.init config.Config.num_servers (fun _ -> Stats.create ());
      meta_lag_stats = Array.init config.Config.num_servers (fun _ -> Stats.create ());
      hop_budget = (4 * Tree.max_depth tree) + config.Config.hop_budget_slack;
      replicas_created_per_level =
        Array.init lanes (fun _ -> Array.make (Tree.max_depth tree + 1) 0);
      data_holders;
      shard_ix;
      pending_fetches = Array.init (max 1 k) (fun _ -> Hashtbl.create 64);
      pending_queries = Array.init (max 1 k) (fun _ -> Hashtbl.create 256);
      query_seq = Array.make config.Config.num_servers 0;
      fetch_seq = Array.make config.Config.num_servers 0;
      session_seq = Array.make config.Config.num_servers 0;
      meta_version = Array.make (Tree.size tree) 0;
      last_src = 0;
      epochs = Array.make config.Config.num_servers 0;
      msg_pool = Array.init lanes (fun _ -> Freelist.create ());
      query_pool = Array.init lanes (fun _ -> Freelist.create ());
      gt_scratch = Node_map.scratch ();
      audit = (if Invariant.enabled config then Some (Invariant.create ()) else None);
    }
  in
  (match t.audit with
  | Some a -> Engine.add_observer t.engine ~every:config.Config.audit_every (fun () -> audit_pass t a)
  | None -> ());
  (* Per-server probe series on the engine-observer cadence: raw load,
     queue depth, replica count, cache hit rate.  Pure reads — consumes no
     randomness and schedules nothing, so the event order is untouched. *)
  if Obs.counters_on obs then
    Engine.add_observer t.engine ~every:(Obs.probe_every obs) (fun () ->
        let time = now t in
        Array.iter
          (fun s ->
            if s.Server.alive then
              Probes.add (Obs.probes obs) ~server:s.Server.id
                {
                  Probes.p_time = time;
                  p_load = Load_meter.raw_load s.Server.load time;
                  p_queue = Queue.length s.Server.queue;
                  p_replicas = s.Server.replica_count;
                  p_hit_rate = Cache.hit_rate s.Server.cache;
                })
          t.servers);
  (* Bootstrap ownership and per-node routing contexts. *)
  Array.iteri
    (fun node owner -> Server.add_owned servers.(owner) node ~owner_of:(fun v -> owner_of.(v)) ~now:0.0)
    owner_of;
  (* Bootstrap contact: under uniform placement a server can own zero
     nodes and would otherwise know nothing at all — queries injected
     there would dead-end.  Like DNS root hints, such a server joins
     knowing the root's owner (a permanent entry while nothing displaces
     it; once traffic flows, path propagation keeps it routable). *)
  Array.iter (fun s -> seed_root_hint owner_of s) servers;
  (* Each server starts off knowing a few random peers (believed idle), so
     replication sessions have somewhere to look before traffic teaches
     them real loads. *)
  let s_count = Array.length servers in
  Array.iter
    (fun s ->
      for _ = 1 to min config.Config.bootstrap_peers (s_count - 1) do
        let peer = Splitmix.int rng s_count in
        if peer <> s.Server.id then Server.note_peer_load s peer 0.0
      done)
    servers;
  if monitor then begin
    (* Per-second load sampling for the Fig. 6 series.  It reads every
       server, so it runs in the sync context — solo, all lanes idle —
       and its series land in one lane's part (single writer). *)
    let rec sample () =
      let time = now t in
      let sum = ref 0.0 and mx = ref 0.0 and alive = ref 0 in
      Array.iter
        (fun s ->
          if s.Server.alive then begin
            let l = Load_meter.raw_load s.Server.load time in
            sum := !sum +. l;
            if l > !mx then mx := l;
            incr alive
          end)
        servers;
      if !alive > 0 then begin
        let m = met t in
        Timeseries.add m.Metrics.load_mean_ts time (!sum /. float_of_int !alive);
        Timeseries.observe_max m.Metrics.load_max_ts time !mx
      end;
      Engine.schedule ~owner:Engine.sync_ctx t.engine ~delay:1.0 sample
    in
    Engine.schedule ~owner:Engine.sync_ctx t.engine ~delay:0.5 sample;
    (* Soft-state decay: periodic idle-replica eviction, staggered across
       servers to avoid synchronized scan storms. *)
    let period = config.Config.eviction_scan_period in
    Array.iter
      (fun s ->
        let rec scan () =
          if s.Server.alive then begin
            let evicted = Server.idle_scan s ~now:(now t) in
            let m = met t in
            m.Metrics.replicas_evicted <-
              m.Metrics.replicas_evicted + List.length evicted
          end;
          Engine.schedule ~owner:s.Server.id t.engine ~delay:period scan
        in
        let phase = Splitmix.float rng period in
        Engine.schedule ~owner:s.Server.id t.engine ~delay:phase scan)
      servers
  end;
  t

(* ------------------------------------------------------------------ *)
(* Driving                                                             *)
(* ------------------------------------------------------------------ *)

(* Hand one attempt of a pending request to its source server's queue.
   The query record is rebuilt per attempt (fresh hop budget and path);
   [born] stays the original injection time so latency is end-to-end. *)
let start_query_attempt t qid ctx =
  let q =
    alloc_query t ~qid ~src:ctx.qc_src ~dst:ctx.qc_dst ~attempt:ctx.qc_attempt ~born:ctx.qc_born
  in
  (* The query originates at [src]: straight into its queue, no network. *)
  deliver t ~to_:ctx.qc_src
    (alloc_msg t ~from:ctx.qc_src ~load:0.0 ~digest_version:0 ~digest:None (Query q))

(* Arm the current attempt's timer.  Timers only catch silent loss:
   explicit terminal drops finalize the request immediately, so with an
   ideal network a timer never changes behavior — it either finds the
   request finalized or its attempt superseded, and does nothing. *)
let rec arm_query_timer t qid =
  let cfg = t.config in
  if cfg.Config.rpc_timeout > 0.0 then
    match Hashtbl.find_opt (q_tbl t qid) qid with
    | None -> ()
    | Some ctx ->
      let attempt = ctx.qc_attempt in
      let timeout =
        Net.backoff ~base:cfg.Config.rpc_timeout ~factor:cfg.Config.retry_backoff ~attempt
      in
      (* The timer is issuer state and runs on the issuer's lane. *)
      Engine.schedule ~owner:(id_owner qid) t.engine ~delay:timeout (fun () ->
          match Hashtbl.find_opt (q_tbl t qid) qid with
          | Some cur when cur.qc_attempt = attempt ->
            if attempt >= t.config.Config.max_retries then begin
              Hashtbl.remove (q_tbl t qid) qid;
              Metrics.drop (met t) Timed_out ~now:(now t);
              if Obs.spans_on t.obs then
                (* lint: obs-in-hot-path final timer expiry closes the span; spans level *)
                Obs.record t.obs ~server:cur.qc_src
                  (Event.Query_dropped { qid; reason = drop_label Timed_out });
              Option.iter (fun k -> k (Dropped Timed_out)) cur.qc_on_complete
            end
            else begin
              cur.qc_attempt <- attempt + 1;
              let m = met t in
              m.Metrics.query_retransmits <- m.Metrics.query_retransmits + 1;
              if Obs.spans_on t.obs then
                (* lint: obs-in-hot-path timer-driven retries are rare; spans level *)
                Obs.record t.obs ~server:cur.qc_src
                  (Event.Retransmit { qid; attempt = attempt + 1 });
              start_query_attempt t qid cur;
              arm_query_timer t qid
            end
          | Some _ | None -> ())

let inject ?on_complete t ~src ~dst =
  if src < 0 || src >= num_servers t then invalid_arg "Cluster.inject: bad source server";
  if dst < 0 || dst >= Tree.size t.tree then invalid_arg "Cluster.inject: bad destination node";
  let time = now t in
  let m = met t in
  m.Metrics.injected <- m.Metrics.injected + 1;
  Timeseries.incr m.Metrics.injected_ts time;
  let qid = ((src + 1) lsl 32) lor t.query_seq.(src) in
  t.query_seq.(src) <- t.query_seq.(src) + 1;
  let ctx =
    { qc_src = src; qc_dst = dst; qc_born = time; qc_attempt = 0; qc_on_complete = on_complete }
  in
  Hashtbl.add (q_tbl t qid) qid ctx;
  if Obs.spans_on t.obs then
    (* lint: obs-in-hot-path span root; spans level *)
    Obs.record t.obs ~server:src (Event.Query_injected { qid; dst });
  start_query_attempt t qid ctx;
  arm_query_timer t qid

let inject_uniform_src ?on_complete t ~dst =
  let s_count = num_servers t in
  let rec pick tries =
    let src = Splitmix.int t.rng s_count in
    if t.servers.(src).Server.alive || tries > 32 then src else pick (tries + 1)
  in
  let src = pick 0 in
  t.last_src <- src;
  inject ?on_complete t ~src ~dst

let last_injected_src t = t.last_src

let run_until t time =
  Engine.run ~until:time t.engine;
  (* End-of-run audit: a final full pass, then deliver whatever this and
     the cadence passes collected (raising under the test suite's default
     mode, stashing a report under the CLI's --audit). *)
  match t.audit with
  | None -> ()
  | Some a ->
    audit_pass t a;
    Invariant.deliver a
      ~label:
        (Printf.sprintf "audit of run to t=%.3f (%d servers, seed %d)" time
           (Array.length t.servers) t.config.Config.seed)

(* Same shape as the query timer: a fetch whose request or reply was
   silently lost is retried on timeout, failing over to untried holders
   first and starting over across all holders once every one was tried. *)
let rec arm_fetch_timer t fetch_id =
  let cfg = t.config in
  if cfg.Config.rpc_timeout > 0.0 then
    match Hashtbl.find_opt (f_tbl t fetch_id) fetch_id with
    | None -> ()
    | Some f ->
      let attempt = f.f_attempts in
      let timeout =
        Net.backoff ~base:cfg.Config.rpc_timeout ~factor:cfg.Config.retry_backoff ~attempt
      in
      Engine.schedule ~owner:(id_owner fetch_id) t.engine ~delay:timeout (fun () ->
          match Hashtbl.find_opt (f_tbl t fetch_id) fetch_id with
          | Some cur when cur.f_attempts = attempt ->
            if attempt >= t.config.Config.max_retries then begin
              Hashtbl.remove (f_tbl t fetch_id) fetch_id;
              let m = met t in
              m.Metrics.data_dropped <- m.Metrics.data_dropped + 1;
              Option.iter (fun k -> k Fetch_failed) cur.f_on_done
            end
            else begin
              cur.f_attempts <- attempt + 1;
              let m = met t in
              m.Metrics.fetch_retransmits <- m.Metrics.fetch_retransmits + 1;
              let holders = t.data_holders.(cur.f_node) in
              if Array.for_all (Hashtbl.mem cur.f_tried) holders then Hashtbl.reset cur.f_tried;
              fetch_attempt t fetch_id;
              arm_fetch_timer t fetch_id
            end
          | Some _ | None -> ())

let fetch ?on_done t ~client ~node =
  if client < 0 || client >= num_servers t then invalid_arg "Cluster.fetch: bad client";
  if node < 0 || node >= Tree.size t.tree then invalid_arg "Cluster.fetch: bad node";
  let m = met t in
  m.Metrics.data_requests <- m.Metrics.data_requests + 1;
  let fetch_id = ((client + 1) lsl 32) lor t.fetch_seq.(client) in
  t.fetch_seq.(client) <- t.fetch_seq.(client) + 1;
  Hashtbl.add (f_tbl t fetch_id) fetch_id
    {
      f_client = client;
      f_node = node;
      f_started = now t;
      f_tried = Hashtbl.create 8;
      f_attempts = 0;
      f_on_done = on_done;
    };
  fetch_attempt t fetch_id;
  arm_fetch_timer t fetch_id

let owner_meta_version t node =
  match Server.find_hosted t.servers.(t.owner_of.(node)) node with
  | Some h -> h.Server.h_meta_version
  | None -> 0

let update_meta t node =
  if node < 0 || node >= Tree.size t.tree then invalid_arg "Cluster.update_meta: bad node";
  match Server.find_hosted t.servers.(t.owner_of.(node)) node with
  | Some h ->
    h.Server.h_meta_version <- h.Server.h_meta_version + 1;
    (* mirror of the owner's version, readable from any shard *)
    t.meta_version.(node) <- h.Server.h_meta_version;
    h.Server.h_meta_version
  | None -> 0 (* unreachable: owners host their nodes durably *)

(* ------------------------------------------------------------------ *)
(* Failures                                                            *)
(* ------------------------------------------------------------------ *)

let handoff t ~node ~to_ =
  if node < 0 || node >= Tree.size t.tree then invalid_arg "Cluster.handoff: bad node";
  if to_ < 0 || to_ >= num_servers t then invalid_arg "Cluster.handoff: bad recipient";
  let donor = t.servers.(t.owner_of.(node)) in
  let recipient = t.servers.(to_) in
  if not recipient.Server.alive then invalid_arg "Cluster.handoff: recipient is dead";
  (match Server.find_hosted recipient node with
  | Some h when h.Server.h_kind = Server.Owned -> invalid_arg "Cluster.handoff: already the owner"
  | Some _ | None -> ());
  let time = now t in
  let payload =
    match Server.make_replica_payload donor node ~now:time with
    | Some p -> p
    | None -> invalid_arg "Cluster.handoff: donor does not host the node"
  in
  Server.remove_owned donor node;
  Server.install_owned recipient payload ~now:time;
  t.owner_of.(node) <- to_;
  (* data moves with ownership *)
  let holders = t.data_holders.(node) in
  Array.iteri (fun i h -> if h = donor.Server.id then holders.(i) <- to_) holders;
  if not (Array.exists (fun h -> h = to_) holders) then holders.(0) <- to_;
  (* the donor remembers where the node went (soft pointer, like any cache
     entry) so in-flight traffic it receives re-routes in one hop *)
  let new_owner_map = Node_map.singleton ~is_owner:true ~server:to_ ~stamp:time () in
  Cache.insert donor.Server.cache ~node new_owner_map;
  (* the handoff protocol notifies the owners of the node's tree-neighbors
     (the donor holds their maps): without this, routing toward the node
     dead-ends once bounce-pruning clears the stale owner from adjacent
     contexts — everyone else converges lazily via path propagation *)
  List.iter
    (fun nb ->
      let nb_owner = t.servers.(t.owner_of.(nb)) in
      Server.merge_into_known_map nb_owner node new_owner_map ~now:time)
    (Tree.neighbors t.tree node)

let kill t sid =
  let s = t.servers.(sid) in
  if s.Server.alive then begin
    s.Server.alive <- false;
    t.epochs.(sid) <- t.epochs.(sid) + 1;
    if Load_meter.is_busy s.Server.load then Load_meter.end_busy s.Server.load (now t);
    s.Server.serving <- false;
    if s.Server.obs_busy then begin
      s.Server.obs_busy <- false;
      (* lint: obs-in-hot-path fail-stop is a cold path; counters level *)
      Obs.record t.obs ~server:sid Event.Server_idle
    end;
    (* Queued work dies with the server; fetches fail over to other
       holders.  Every swept message (and any reply-borne query record —
       the dead server was its issuer, so nothing else will ever touch it)
       is recycled here. *)
    Queue.iter
      (fun msg ->
        (match msg.msg_payload with
        | Query q -> finish_dropped t q Server_dead
        | Data_request { fetch_id; _ } -> fetch_retry t fetch_id ~failed:sid
        | Query_reply _ | Load_probe _ | Load_reply _ | Replicate _ | Data_reply _ -> ());
        free_msg t msg)
      s.Server.queue;
    Queue.clear s.Server.queue;
    Queue.iter
      (fun msg ->
        (match msg.msg_payload with
        | Query_reply q -> free_query t q
        | Query _ | Load_probe _ | Load_reply _ | Replicate _ | Data_request _ | Data_reply _ ->
          ());
        free_msg t msg)
      s.Server.ctrl_queue;
    Queue.clear s.Server.ctrl_queue;
    (* Fail-stop loses all soft state; ownership is durable. *)
    List.iter (fun node -> Server.evict_replica s node) (Server.replica_nodes s);
    Cache.clear s.Server.cache;
    Hashtbl.reset s.Server.known_loads;
    s.Server.peer_load_sum <- 0.0;
    s.Server.session <- None
  end

let revive t sid =
  let s = t.servers.(sid) in
  if not s.Server.alive then begin
    s.Server.alive <- true;
    t.epochs.(sid) <- t.epochs.(sid) + 1;
    (* a crash wiped the soft state; an ownerless server must rejoin with
       its bootstrap contact or it knows nothing *)
    seed_root_hint t.owner_of s
  end

let graceful_leave t sid =
  let s = t.servers.(sid) in
  if s.Server.alive then begin
    let peers =
      Array.to_list t.servers
      |> List.filter (fun p -> p.Server.alive && p.Server.id <> sid)
      |> List.map (fun p -> p.Server.id)
    in
    if peers = [] then invalid_arg "Cluster.graceful_leave: no alive peer to inherit";
    let peers = Array.of_list peers in
    List.iter
      (fun node -> handoff t ~node ~to_:peers.(Splitmix.int t.rng (Array.length peers)))
      (Server.owned_nodes s);
    kill t sid
  end

let alive_servers t =
  Array.fold_left (fun acc s -> if s.Server.alive then acc + 1 else acc) 0 t.servers

(* ------------------------------------------------------------------ *)
(* Observation                                                         *)
(* ------------------------------------------------------------------ *)

let total_replicas t =
  Array.fold_left (fun acc s -> acc + s.Server.replica_count) 0 t.servers

let replicas_per_level t which =
  let levels = Tree.level_sizes t.tree in
  let counts = Array.make (Array.length levels) 0 in
  (match which with
  | `Created ->
    Array.iter
      (fun lane -> Array.iteri (fun d c -> counts.(d) <- counts.(d) + c) lane)
      t.replicas_created_per_level
  | `Current ->
    Array.iter
      (fun s ->
        List.iter
          (fun node ->
            let d = Tree.depth t.tree node in
            counts.(d) <- counts.(d) + 1)
          (Server.replica_nodes s))
      t.servers);
  Array.mapi
    (fun d c -> if levels.(d) = 0 then 0.0 else float_of_int c /. float_of_int levels.(d))
    counts

let mean_load t =
  let time = now t in
  let sum = ref 0.0 and n = ref 0 in
  Array.iter
    (fun s ->
      if s.Server.alive then begin
        sum := !sum +. Load_meter.raw_load s.Server.load time;
        incr n
      end)
    t.servers;
  if !n = 0 then 0.0 else !sum /. float_of_int !n

let max_load t =
  let time = now t in
  Array.fold_left
    (fun acc s ->
      if s.Server.alive then Float.max acc (Load_meter.raw_load s.Server.load time) else acc)
    0.0 t.servers

let check_invariants t =
  let a = Invariant.create () in
  audit_pass t a;
  match Invariant.violations a with
  | [] -> ()
  | v :: _ -> failwith ("Cluster: " ^ Invariant.describe v)
