open Terradir_util

type entry = { server : int; is_owner : bool; stamp : float }

(* Flat struct-of-arrays map: row [i] packs the server id and owner flag
   into [ns.(i) = server lsl 1 lor owner] with the stamp unboxed in a
   [floatarray] — no per-entry record, no boxed float, no list spine.  The
   row order is the historical one: owners first, then newest-first,
   server id as the tie-break ([order] below is total with a unique
   tie-break, so a deduped entry set has exactly one sorted form).  Maps
   remain immutable values; operations build fresh row arrays, assembling
   intermediate states in a caller-provided {!scratch} so the hot merge
   path allocates only its result. *)
type t = { ns : int array; stamp : floatarray }

let empty = { ns = [||]; stamp = Float.Array.create 0 }

let size t = Array.length t.ns

let is_empty t = Array.length t.ns = 0

let row_server t i = t.ns.(i) lsr 1

let row_owner t i = t.ns.(i) land 1 <> 0

let row_stamp t i = Float.Array.unsafe_get t.stamp i

let pack ~server ~is_owner = (server lsl 1) lor (if is_owner then 1 else 0)

let entries t =
  List.init (size t) (fun i ->
      { server = row_server t i; is_owner = row_owner t i; stamp = row_stamp t i })

let servers t = List.init (size t) (fun i -> row_server t i)

let mem t s =
  let n = size t in
  let rec go i = i < n && (row_server t i = s || go (i + 1)) in
  go 0

let owner t = if size t > 0 && row_owner t 0 then Some (row_server t 0) else None

(* Owners first; ties broken newest-first, then by server id for
   determinism.  Compares packed rows: negative when row a sorts first. *)
let order_rows na sa nb sb =
  match ((nb land 1, na land 1) : int * int) with
  | 1, 0 -> 1
  | 0, 1 -> -1
  | _ -> (
    match Float.compare sb sa with 0 -> Int.compare (na lsr 1) (nb lsr 1) | c -> c)

(* ------------------------------------------------------------------ *)
(* Scratch                                                             *)
(* ------------------------------------------------------------------ *)

type scratch = {
  mutable sc_ns : int array;
  mutable sc_stamp : floatarray;
  mutable sc_pool : int array; (* merge: remainder rows still drawable *)
  mutable sc_keep : bool array; (* merge: remainder rows chosen by draw *)
}

let scratch () =
  {
    sc_ns = Array.make 8 0;
    sc_stamp = Float.Array.create 8;
    sc_pool = Array.make 8 0;
    sc_keep = Array.make 8 false;
  }

let ensure sc n =
  if Array.length sc.sc_ns < n then begin
    let cap = max n (2 * Array.length sc.sc_ns) in
    let ns = Array.make cap 0 and stamp = Float.Array.create cap in
    Array.blit sc.sc_ns 0 ns 0 (Array.length sc.sc_ns);
    Float.Array.blit sc.sc_stamp 0 stamp 0 (Float.Array.length sc.sc_stamp);
    sc.sc_ns <- ns;
    sc.sc_stamp <- stamp;
    sc.sc_pool <- Array.make cap 0;
    sc.sc_keep <- Array.make cap false
  end

let sc_or = function Some sc -> sc | None -> scratch ()

(* Fold one packed row into scratch rows [0 .. !len): combine with any
   existing row for the same server (newest stamp wins, owner flag is
   sticky), then place the result at its unique sort position.  Mirrors
   the historical [add_entry] list fold, shift for shift. *)
let insert_row sc len nrow srow =
  let ns = sc.sc_ns and stamp = sc.sc_stamp in
  let server = nrow lsr 1 in
  let nrow = ref nrow and srow = ref srow in
  (* Strip an existing row for the same server, combining into the new. *)
  let n = !len in
  let rec strip i =
    if i < n then
      if ns.(i) lsr 1 = server then begin
        nrow := !nrow lor (ns.(i) land 1);
        srow := Float.max (Float.Array.get stamp i) !srow;
        for j = i to n - 2 do
          ns.(j) <- ns.(j + 1);
          Float.Array.set stamp j (Float.Array.get stamp (j + 1))
        done;
        len := n - 1
      end
      else strip (i + 1)
  in
  strip 0;
  (* Sorted insertion: before the first row it does not sort after. *)
  let n = !len in
  let rec pos i = if i >= n then i else if order_rows !nrow !srow ns.(i) (Float.Array.get stamp i) <= 0 then i else pos (i + 1) in
  let at = pos 0 in
  for j = n downto at + 1 do
    ns.(j) <- ns.(j - 1);
    Float.Array.set stamp j (Float.Array.get stamp (j - 1))
  done;
  ns.(at) <- !nrow;
  Float.Array.set stamp at !srow;
  len := n + 1

(* Materialize scratch rows [0 .. n) as an immutable map. *)
let of_scratch sc n =
  if n = 0 then empty
  else begin
    let ns = Array.sub sc.sc_ns 0 n and stamp = Float.Array.create n in
    Float.Array.blit sc.sc_stamp 0 stamp 0 n;
    { ns; stamp }
  end

let load_scratch sc t =
  let n = size t in
  ensure sc n;
  Array.blit t.ns 0 sc.sc_ns 0 n;
  Float.Array.blit t.stamp 0 sc.sc_stamp 0 n;
  n

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let singleton ?(is_owner = false) ~server ~stamp () =
  { ns = [| pack ~server ~is_owner |]; stamp = Float.Array.make 1 stamp }

let of_entries ?scratch ~max entries =
  if max < 1 then invalid_arg "Node_map.of_entries: max must be >= 1";
  let sc = sc_or scratch in
  ensure sc (List.length entries);
  let len = ref 0 in
  List.iter
    (fun e -> insert_row sc len (pack ~server:e.server ~is_owner:e.is_owner) e.stamp)
    entries;
  of_scratch sc (min !len max)

let truncate ~max t =
  if max < 1 then invalid_arg "Node_map.truncate: max must be >= 1";
  if size t <= max then t
  else { ns = Array.sub t.ns 0 max; stamp = Float.Array.sub t.stamp 0 max }

(* [t] already satisfies the sorted/deduped invariant: one insertion pass
   suffices.  (The historical error message is [of_entries]'s — kept
   verbatim, callers match on it.) *)
let add ?scratch ~max t entry =
  if max < 1 then invalid_arg "Node_map.of_entries: max must be >= 1";
  let sc = sc_or scratch in
  ensure sc (size t + 1);
  let len = ref (load_scratch sc t) in
  insert_row sc len (pack ~server:entry.server ~is_owner:entry.is_owner) entry.stamp;
  of_scratch sc (min !len max)

(* [add] with a survival guarantee: the added server's entry is never
   truncated out.  Needed for a host's own entry — the map a host
   advertises must include itself, but a plain [add] of a non-owner self
   entry can lose it to truncation when [max] same-or-newer entries sort
   first (owners pinned ahead, equal stamps broken by lower server id).
   When the entry falls past the cut, the lowest-priority kept non-owner
   is evicted in its favor; if every kept entry is an owner (only possible
   once owners alone fill the map), the map keeps its owners — owners are
   never displaced.  The pinned row lands in the last kept slot, which is
   still its sort position relative to the surviving rows. *)
let add_pinned ?scratch ~max t entry =
  if max < 1 then invalid_arg "Node_map.add_pinned: max must be >= 1";
  let sc = sc_or scratch in
  ensure sc (size t + 1);
  let len = ref (load_scratch sc t) in
  insert_row sc len (pack ~server:entry.server ~is_owner:entry.is_owner) entry.stamp;
  let kept = min !len max in
  let in_kept =
    let rec go i = i < kept && (sc.sc_ns.(i) lsr 1 = entry.server || go (i + 1)) in
    go 0
  in
  if (not in_kept) && not (sc.sc_ns.(kept - 1) land 1 <> 0) then begin
    (* Refetch from the combined rows: owner stickiness and stamp max may
       have merged [entry] with an existing one. *)
    let rec pinned i = if sc.sc_ns.(i) lsr 1 = entry.server then i else pinned (i + 1) in
    let p = pinned kept in
    sc.sc_ns.(kept - 1) <- sc.sc_ns.(p);
    Float.Array.set sc.sc_stamp (kept - 1) (Float.Array.get sc.sc_stamp p)
  end;
  of_scratch sc kept

let remove t s =
  if not (mem t s) then t
  else begin
    let n = size t in
    let ns = Array.make (n - 1) 0 and stamp = Float.Array.create (n - 1) in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if row_server t i <> s then begin
        ns.(!j) <- t.ns.(i);
        Float.Array.set stamp !j (row_stamp t i);
        incr j
      end
    done;
    if !j = 0 then empty else { ns; stamp }
  end

(* ------------------------------------------------------------------ *)
(* Merging                                                             *)
(* ------------------------------------------------------------------ *)

(* [subsumes a b]: merging [b] into [a] cannot change [a] — every entry of
   [b] is already present with an equal-or-newer stamp and owner flag.  The
   common case on busy paths (the same maps circulate), worth a scan to
   avoid reallocating stored maps. *)
let subsumes a b =
  let na = size a and nb = size b in
  let rec all i =
    i >= nb
    ||
    let sb = row_server b i in
    let rec found j =
      j < na
      && ((row_server a j = sb
           && row_stamp a j >= row_stamp b i
           && (row_owner a j || not (row_owner b i)))
         || found (j + 1))
    in
    found 0 && all (i + 1)
  in
  all 0

let merge ?scratch ~max rng a b =
  if max < 1 then invalid_arg "Node_map.merge: max must be >= 1";
  if (a == b || subsumes a b) && size a <= max then a
  else begin
    let sc = sc_or scratch in
    ensure sc (size a + size b);
    (* Both inputs are sorted and deduped (the representation invariant),
       so folding [b] into [a] yields the combined set already in sorted
       order — owners form a prefix, the rest is newest-first. *)
    let len = ref (load_scratch sc a) in
    for i = 0 to size b - 1 do
      insert_row sc len b.ns.(i) (row_stamp b i)
    done;
    let total = !len in
    let owners_total =
      let rec go i = if i < total && sc.sc_ns.(i) land 1 <> 0 then go (i + 1) else i in
      go 0
    in
    let owners = min owners_total max in
    let slots = max - owners in
    if slots <= 0 then of_scratch sc owners
    else begin
      (* Keep the newest half of the remaining budget, fill the rest
         randomly from what is left so maps decorrelate across servers.
         The draw is uniform without replacement over the remainder rows
         in their sorted order — the pool is compacted by shifting, never
         swapping, so each RNG draw indexes exactly the position the
         historical list-based draw did. *)
      let rest = total - owners_total in
      let newest = min ((slots + 1) / 2) rest in
      let rem_start = owners_total + newest in
      let rem_len = total - rem_start in
      let want = slots - newest in
      let picked = ref 0 in
      (* Clear the remainder flags unconditionally: a reused scratch keeps
         [sc_keep] from the previous merge, and the emit pass below reads
         every remainder row's flag even when no draw happens. *)
      for i = rem_start to total - 1 do
        sc.sc_keep.(i) <- false
      done;
      if want > 0 && rem_len > 0 then begin
        let pool = sc.sc_pool and keep = sc.sc_keep in
        for i = 0 to rem_len - 1 do
          pool.(i) <- rem_start + i
        done;
        let plen = ref rem_len in
        while !picked < want && !plen > 0 do
          let i = Splitmix.int rng !plen in
          keep.(pool.(i)) <- true;
          for j = i to !plen - 2 do
            pool.(j) <- pool.(j + 1)
          done;
          decr plen;
          incr picked
        done
      end;
      let out = owners + newest + !picked in
      let ns = Array.make out 0 and stamp = Float.Array.create out in
      let j = ref 0 in
      let emit i =
        ns.(!j) <- sc.sc_ns.(i);
        Float.Array.set stamp !j (Float.Array.get sc.sc_stamp i);
        incr j
      in
      for i = 0 to owners - 1 do
        emit i
      done;
      for i = owners_total to rem_start - 1 do
        emit i
      done;
      for i = rem_start to total - 1 do
        if sc.sc_keep.(i) then emit i
      done;
      { ns; stamp }
    end
  end

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

(* Keep entries whose server satisfies [f]; owner entries are exempt (map
   filtering is conservative and must never orphan a node).  Counts first:
   when nothing is pruned — the overwhelmingly common case on the routing
   path — the input map is returned as-is, allocation-free. *)
let filter t ~f =
  let n = size t in
  let kept = ref 0 in
  for i = 0 to n - 1 do
    if row_owner t i || f (row_server t i) then incr kept
  done;
  if !kept = n then t
  else if !kept = 0 then empty
  else begin
    let ns = Array.make !kept 0 and stamp = Float.Array.create !kept in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if row_owner t i || f (row_server t i) then begin
        ns.(!j) <- t.ns.(i);
        Float.Array.set stamp !j (row_stamp t i);
        incr j
      end
    done;
    { ns; stamp }
  end

(* Count-then-walk: one draw on the eligible count, none when empty, so
   RNG consumption matches every historical trajectory. *)
let random_server ?exclude t rng =
  let n = size t in
  let excluded s = match exclude with Some x -> s = x | None -> false in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if not (excluded (row_server t i)) then incr count
  done;
  if !count = 0 then None
  else begin
    let want = ref (Splitmix.int rng !count) in
    let found = ref (-1) in
    let i = ref 0 in
    while !found < 0 do
      let s = row_server t !i in
      if not (excluded s) then begin
        if !want = 0 then found := s else decr want
      end;
      incr i
    done;
    Some !found
  end

let pp fmt t =
  Format.fprintf fmt "{%s}"
    (String.concat "; "
       (List.map
          (fun e -> Printf.sprintf "%d%s@%.2f" e.server (if e.is_owner then "*" else "") e.stamp)
          (entries t)))
