open Terradir_util

type entry = { server : int; is_owner : bool; stamp : float }

type t = entry list
(* Invariant: no duplicate servers, and the list is sorted by [order]
   (owners first, then newest-first, server id as the tie-break).  Maps are
   tiny (≤ r_map, typically 4) and merged on every query hop, so the
   implementation favors small-list operations over hashing — and, because
   every stored map is already sorted, construction is a single dedup +
   ordered-insertion pass with no List.sort on the hot path. *)

let empty = []

let entries t = t

let servers t = List.map (fun e -> e.server) t

let size = List.length

let is_empty t = t = []

let mem t s = List.exists (fun e -> e.server = s) t

let owner t = Option.map (fun e -> e.server) (List.find_opt (fun e -> e.is_owner) t)

let order a b =
  (* Owners first; ties broken newest-first, then by server id for
     determinism. *)
  match (b.is_owner, a.is_owner) with
  | true, false -> 1
  | false, true -> -1
  | _ -> (
    match Float.compare b.stamp a.stamp with 0 -> Int.compare a.server b.server | c -> c)

(* Newest stamp wins; the owner flag is sticky (a server once seen as owner
   stays owner even if a later stale entry forgot the flag). *)
let combine x e =
  { server = e.server; is_owner = x.is_owner || e.is_owner; stamp = Float.max x.stamp e.stamp }

(* [order] is total with a unique tie-break, so a deduped entry set has
   exactly one sorted form: maintaining it by insertion gives the same list
   the old sort-after-dedup pipeline produced, one element at a time. *)
let rec insert_no_dup e = function
  | [] -> [ e ]
  | x :: rest as l -> if order e x <= 0 then e :: l else x :: insert_no_dup e rest

(* Fold one entry into a sorted, deduped list: combine with any existing
   entry for the same server, then place the result at its sort position.
   Two short scans of a ≤ r_map-sized list — no allocation beyond the
   rebuilt spine, no comparator closures handed to List.sort. *)
let add_entry sorted e =
  let rec strip acc = function
    | [] -> insert_no_dup e sorted
    | x :: rest when x.server = e.server ->
      insert_no_dup (combine x e) (List.rev_append acc rest)
    | x :: rest -> strip (x :: acc) rest
  in
  strip [] sorted

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let of_entries ~max entries =
  if max < 1 then invalid_arg "Node_map.of_entries: max must be >= 1";
  let sorted = List.fold_left add_entry [] entries in
  take max sorted

let singleton ?(is_owner = false) ~server ~stamp () = [ { server; is_owner; stamp } ]

(* [t] already satisfies the sorted/deduped invariant: one insertion pass
   suffices, no rebuild of the whole map. *)
let add ~max t entry =
  if max < 1 then invalid_arg "Node_map.of_entries: max must be >= 1";
  take max (add_entry t entry)

(* [add] with a survival guarantee: the added server's entry is never
   truncated out.  Needed for a host's own entry — the map a host
   advertises must include itself, but a plain [add] of a non-owner self
   entry can lose it to truncation when [max] same-or-newer entries sort
   first (owners pinned ahead, equal stamps broken by lower server id).
   When the entry falls past the cut, the lowest-priority kept non-owner
   is evicted in its favor; if every kept entry is an owner (only possible
   once owners alone fill the map), the map is returned untruncated of
   owners — owners are never displaced. *)
let add_pinned ~max t entry =
  if max < 1 then invalid_arg "Node_map.add_pinned: max must be >= 1";
  let sorted = add_entry t entry in
  let kept = take max sorted in
  if List.exists (fun e -> e.server = entry.server) kept then kept
  else begin
    (* Refetch from the combined list: owner stickiness and stamp max may
       have merged [entry] with an existing one. *)
    let pinned = List.find (fun e -> e.server = entry.server) sorted in
    let rec replace_last = function
      | [] | [ _ ] -> [ pinned ]
      | x :: rest -> x :: replace_last rest
    in
    match kept with
    | [] -> [ pinned ]
    | _ ->
      let rec last = function [ e ] -> e | _ :: rest -> last rest | [] -> assert false in
      if (last kept).is_owner then kept else replace_last kept
  end

let remove t s = List.filter (fun e -> e.server <> s) t

(* Draw [want] entries uniformly without replacement from a small list. *)
let rec draw rng pool want acc =
  if want <= 0 then acc
  else
    match pool with
    | [] -> acc
    | _ ->
      let i = Splitmix.int rng (List.length pool) in
      let rec split k seen = function
        | [] -> assert false
        | e :: rest -> if k = 0 then (e, List.rev_append seen rest) else split (k - 1) (e :: seen) rest
      in
      let e, rest = split i [] pool in
      draw rng rest (want - 1) (e :: acc)

(* [subsumes a b]: merging [b] into [a] cannot change [a] — every entry of
   [b] is already present with an equal-or-newer stamp and owner flag.  The
   common case on busy paths (the same maps circulate), worth a scan to
   avoid reallocating stored maps. *)
let subsumes a b =
  List.for_all
    (fun eb ->
      List.exists
        (fun ea ->
          ea.server = eb.server && ea.stamp >= eb.stamp && (ea.is_owner || not eb.is_owner))
        a)
    b

let rec drop n = function
  | [] -> []
  | _ :: rest as l -> if n <= 0 then l else drop (n - 1) rest

let merge ~max rng a b =
  if max < 1 then invalid_arg "Node_map.merge: max must be >= 1";
  if (a == b || subsumes a b) && size a <= max then a
  else begin
    (* Both inputs are sorted and deduped (the representation invariant),
       so folding [b] into [a] yields the combined set already in sorted
       order — owners form a prefix, the rest is newest-first — with no
       partition/sort/sort pipeline behind it. *)
    let all = List.fold_left add_entry a b in
    let rec split_owners acc = function
      | e :: rest when e.is_owner -> split_owners (e :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let owners, rest = split_owners [] all in
    let owners = take max owners in
    let slots = max - List.length owners in
    if slots <= 0 then owners
    else begin
      (* Keep the newest half of the remaining budget, fill the rest
         randomly from what is left so maps decorrelate across servers. *)
      let keep_newest = (slots + 1) / 2 in
      let newest = take keep_newest rest in
      let remainder = drop keep_newest rest in
      let filled = draw rng remainder (slots - List.length newest) [] in
      List.fold_left (fun acc e -> insert_no_dup e acc) (owners @ newest) filled
    end
  end

let filter t ~f = List.filter (fun e -> e.is_owner || f e) t

(* Count-then-walk instead of filter + nth: this runs once per forwarding
   decision, and the two intermediate lists were measurable at scale.  RNG
   consumption is unchanged (one draw on the same eligible count, none when
   empty), so trajectories are identical. *)
let random_server ?exclude t rng =
  let excluded e = match exclude with Some s -> e.server = s | None -> false in
  let count = List.fold_left (fun n e -> if excluded e then n else n + 1) 0 t in
  if count = 0 then None
  else begin
    let rec nth_eligible i = function
      | [] -> assert false
      | e :: rest ->
        if excluded e then nth_eligible i rest
        else if i = 0 then Some e.server
        else nth_eligible (i - 1) rest
    in
    nth_eligible (Splitmix.int rng count) t
  end

let pp fmt t =
  Format.fprintf fmt "{%s}"
    (String.concat "; "
       (List.map
          (fun e -> Printf.sprintf "%d%s@%.2f" e.server (if e.is_owner then "*" else "") e.stamp)
          t))
