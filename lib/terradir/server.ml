open Terradir_util
open Terradir_namespace
open Types
module Obs = Terradir_obs.Obs
module Event = Terradir_obs.Event

type host_kind = Owned | Replicated

type hosted = {
  h_node : node_id;
  h_kind : host_kind;
  mutable h_map : Node_map.t;
  mutable h_meta_version : int;
  mutable h_last_used : float;
}

type session = { session_id : int; mutable tried : server_id list; mutable attempts : int }

type neighbor_ref = { mutable n_map : Node_map.t; mutable refs : int }

let max_digests_consulted = 8
(* Bloom false positives compound across (ancestors × digests) tests, so a
   routing step consults only the most recently refreshed digests. *)

type t = {
  id : server_id;
  config : Config.t;
  tree : Tree.t;
  rng : Splitmix.t;
  obs : Obs.t;
  speed : float;
  hosted : (node_id, hosted) Hashtbl.t;
  neighbor_maps : (node_id, neighbor_ref) Hashtbl.t;
  mutable owned_count : int;
  mutable replica_count : int;
  cache : Cache.t;
  digests : Digest_store.t;
  digest_scratch_servers : int array;
  digest_scratch_blooms : Terradir_bloom.Bloom.t array;
  map_scratch : Node_map.scratch;
  load : Load_meter.t;
  ranking : Ranking.t;
  known_loads : (server_id, float) Hashtbl.t;
  mutable peer_load_sum : float;
  queue : message Queue.t;
  ctrl_queue : message Queue.t;
  mutable serving : bool;
  mutable obs_busy : bool;
  mutable session : session option;
  mutable session_backoff_until : float;
  mutable last_decay : float;
  mutable alive : bool;
  mutable queries_processed : int;
  mutable replicas_installed : int;
  mutable replicas_evicted : int;
}

let create ~id ~config ~tree ?(speed = 1.0) ?(obs = Obs.null) ~rng () =
  if speed <= 0.0 then invalid_arg "Server.create: speed must be positive";
  let digests = Digest_store.create ~max_remote:config.Config.max_remote_digests () in
  {
    id;
    config;
    tree;
    rng;
    obs;
    speed;
    hosted = Hashtbl.create 32;
    neighbor_maps = Hashtbl.create 64;
    owned_count = 0;
    replica_count = 0;
    cache = Cache.create ~obs ~owner:id ~slots:config.Config.cache_slots ~r_map:config.Config.r_map ~rng ();
    digests;
    (* Reused by Routing.digest_shortcut so consulting digests allocates
       nothing per routing step. *)
    digest_scratch_servers = Array.make max_digests_consulted 0;
    digest_scratch_blooms = Array.make max_digests_consulted (Digest_store.local digests);
    map_scratch = Node_map.scratch ();
    load = Load_meter.create ~window:config.Config.load_window;
    ranking = Ranking.create ();
    known_loads = Hashtbl.create 32;
    peer_load_sum = 0.0;
    queue = Queue.create ();
    ctrl_queue = Queue.create ();
    serving = false;
    obs_busy = false;
    session = None;
    session_backoff_until = 0.0;
    last_decay = 0.0;
    alive = true;
    queries_processed = 0;
    replicas_installed = 0;
    replicas_evicted = 0;
  }

let find_hosted t node = Hashtbl.find_opt t.hosted node

let hosts t node = Hashtbl.mem t.hosted node

let hosted_nodes t =
  List.sort Int.compare (Hashtbl.fold (fun node _ acc -> node :: acc) t.hosted [])

let nodes_of_kind t kind =
  List.sort Int.compare
    (Hashtbl.fold (fun node h acc -> if h.h_kind = kind then node :: acc else acc) t.hosted [])

let owned_nodes t = nodes_of_kind t Owned

let replica_nodes t = nodes_of_kind t Replicated

(* The hash-table walk (vs the sorted [hosted_nodes] list) yields the same
   filter without the sort + list allocation: Bloom bit-sets are
   iteration-order independent. *)
let rebuild_digest t =
  Digest_store.rebuild_local_from t.digests ~count:(Hashtbl.length t.hosted)
    (* lint: ordered Bloom bit-sets are insertion-order independent *)
    ~iter:(fun add -> Hashtbl.iter (fun node _ -> add node) t.hosted)

let neighbor_map t node =
  Option.map (fun r -> r.n_map) (Hashtbl.find_opt t.neighbor_maps node)

let known_map t node =
  match find_hosted t node with
  | Some h -> Some h.h_map
  | None -> (
    match neighbor_map t node with
    | Some _ as m -> m
    | None -> Cache.peek t.cache ~node)

let r_map t = t.config.Config.r_map

(* Reference one tree-neighbor context, merging in [map] as the initial or
   additional view. *)
let ref_neighbor t node map =
  match Hashtbl.find_opt t.neighbor_maps node with
  | Some r ->
    r.refs <- r.refs + 1;
    if not (Node_map.is_empty map) then
      r.n_map <- Node_map.merge ~scratch:t.map_scratch ~max:(r_map t) t.rng r.n_map map
  | None -> Hashtbl.add t.neighbor_maps node { n_map = map; refs = 1 }

let unref_neighbor t node =
  match Hashtbl.find_opt t.neighbor_maps node with
  | None -> ()
  | Some r ->
    r.refs <- r.refs - 1;
    if r.refs <= 0 then Hashtbl.remove t.neighbor_maps node

let install_hosted t node kind ~map ~meta_version ~context ~now =
  Hashtbl.replace t.hosted node
    { h_node = node; h_kind = kind; h_map = map; h_meta_version = meta_version; h_last_used = now };
  (match kind with
  | Owned -> t.owned_count <- t.owned_count + 1
  | Replicated -> t.replica_count <- t.replica_count + 1);
  (* Every producer of a context assembles it by mapping over
     [Tree.neighbors], so the common case is both lists in lockstep — walk
     them together and only fall back to an assoc scan for a sender that
     reordered or omitted entries.  This turns context installation from
     O(neighbors x context) scans into one linear pass. *)
  let rec walk nbs ctx =
    match (nbs, ctx) with
    | [], _ -> ()
    | nb :: nbs', (n, m) :: ctx' when n = nb ->
      ref_neighbor t nb m;
      walk nbs' ctx'
    | nb :: nbs', _ ->
      let nb_map =
        match List.assoc_opt nb context with Some m -> m | None -> Node_map.empty
      in
      ref_neighbor t nb nb_map;
      walk nbs' ctx
  in
  walk (Tree.neighbors t.tree node) context;
  rebuild_digest t

let add_owned t node ~owner_of ~now =
  if hosts t node then invalid_arg "Server.add_owned: already hosted";
  let map = Node_map.singleton ~is_owner:true ~server:t.id ~stamp:now () in
  let context =
    List.map
      (fun nb -> (nb, Node_map.singleton ~is_owner:true ~server:(owner_of nb) ~stamp:now ()))
      (Tree.neighbors t.tree node)
  in
  install_hosted t node Owned ~map ~meta_version:0 ~context ~now

(* Bounded merges can push a replica host's own (non-owner) entry out of its
   hosted node's map; the map a host advertises must always include itself. *)
let ensure_self t h ~now =
  if not (Node_map.mem h.h_map t.id) then
    h.h_map <-
      Node_map.add_pinned ~scratch:t.map_scratch ~max:(r_map t) h.h_map
        { Node_map.server = t.id; is_owner = (h.h_kind = Owned); stamp = now }

let merge_into_known_map t node map ~now =
  if Node_map.is_empty map then ()
  else
    match find_hosted t node with
    | Some h ->
      h.h_map <- Node_map.merge ~scratch:t.map_scratch ~max:(r_map t) t.rng h.h_map map;
      ensure_self t h ~now
    | None -> (
      match Hashtbl.find_opt t.neighbor_maps node with
      | Some r ->
        r.n_map <- Node_map.merge ~scratch:t.map_scratch ~max:(r_map t) t.rng r.n_map map
      | None -> if t.config.Config.features.Config.caching then Cache.insert t.cache ~node map)

let touch_node t node ~now =
  Ranking.touch t.ranking node;
  (match find_hosted t node with Some h -> h.h_last_used <- now | None -> ());
  (* Periodic exponential decay keeps weights tracking recent demand. *)
  while now -. t.last_decay >= t.config.Config.load_window do
    Ranking.decay t.ranking;
    t.last_decay <- t.last_decay +. t.config.Config.load_window
  done

(* [peer_load_sum] mirrors Σ known_loads incrementally: the replication
   trigger consults the believed mean load after EVERY processed message,
   and a fresh fold there is O(peers) — the per-event cost that made large
   deployments (fig9's upper sizes) collapse.  Drift from the running
   subtract/add is deterministic (per-server update order is fixed for any
   engine-domain count) and re-zeroed whenever the table empties. *)
let note_peer_load t peer load =
  if peer <> t.id then begin
    (match Hashtbl.find_opt t.known_loads peer with
    | Some old -> t.peer_load_sum <- t.peer_load_sum -. old
    | None -> ());
    t.peer_load_sum <- t.peer_load_sum +. load;
    Hashtbl.replace t.known_loads peer load
  end

let min_load_peer t ~exclude =
  (* The [l <= load] tie-break keeps the earliest-visited of equally-loaded
     peers — ubiquitous at bootstrap, when every peer is believed idle.
     Visit order over a fixed insertion history is deterministic, and every
     published figure bakes this choice in; a total-order tie-break would be
     prettier but shifts all golden CSVs. *)
  (* lint: ordered deliberate historical tie-break; see comment above — changing it moves every figure *)
  Hashtbl.fold
    (fun peer load best ->
      if List.mem peer exclude then best
      else
        match best with
        | Some (_, l) when l <= load -> best
        | _ -> Some (peer, load))
    t.known_loads None

let replica_budget t =
  int_of_float (t.config.Config.r_fact *. float_of_int t.owned_count) - t.replica_count

let evict_replica t node =
  match find_hosted t node with
  | Some h when h.h_kind = Replicated ->
    Hashtbl.remove t.hosted node;
    t.replica_count <- t.replica_count - 1;
    t.replicas_evicted <- t.replicas_evicted + 1;
    (* lint: obs-in-hot-path replica churn is counters-level and rare *)
    if Obs.counters_on t.obs then Obs.record t.obs ~server:t.id (Event.Replica_evicted { node });
    List.iter (unref_neighbor t) (Tree.neighbors t.tree node);
    Ranking.remove t.ranking node;
    rebuild_digest t
  | Some _ -> invalid_arg "Server.evict_replica: node is owned, not a replica"
  | None -> invalid_arg "Server.evict_replica: node not hosted"

let remove_owned t node =
  match find_hosted t node with
  | Some h when h.h_kind = Owned ->
    Hashtbl.remove t.hosted node;
    t.owned_count <- t.owned_count - 1;
    List.iter (unref_neighbor t) (Tree.neighbors t.tree node);
    Ranking.remove t.ranking node;
    (* The replica budget shrank with the owned count; shed the overflow. *)
    let max_replicas = int_of_float (t.config.Config.r_fact *. float_of_int t.owned_count) in
    if t.replica_count > max_replicas then begin
      let victims = Ranking.ranked_asc t.ranking ~among:(replica_nodes t) in
      let rec shed = function
        | (v, _) :: rest when t.replica_count > max_replicas ->
          evict_replica t v;
          shed rest
        | _ -> ()
      in
      shed victims
    end;
    rebuild_digest t
  | Some _ -> invalid_arg "Server.remove_owned: node is a replica, not owned"
  | None -> invalid_arg "Server.remove_owned: node not hosted"

let install_owned t payload ~now =
  let node = payload.rp_node in
  (match find_hosted t node with
  | Some h when h.h_kind = Replicated -> evict_replica t node
  | Some _ -> invalid_arg "Server.install_owned: already owned"
  | None -> ());
  let map =
    Node_map.add_pinned ~scratch:t.map_scratch ~max:(r_map t) payload.rp_map
      { Node_map.server = t.id; is_owner = true; stamp = now }
  in
  install_hosted t node Owned ~map ~meta_version:payload.rp_meta_version
    ~context:payload.rp_context ~now;
  Ranking.seed t.ranking node payload.rp_weight_hint

let install_replica t payload ~now =
  let node = payload.rp_node in
  match find_hosted t node with
  | Some h ->
    (* Already hosted: fold in the newer view (soft-state merge). *)
    h.h_map <- Node_map.merge ~scratch:t.map_scratch ~max:(r_map t) t.rng h.h_map payload.rp_map;
    ensure_self t h ~now;
    if payload.rp_meta_version > h.h_meta_version then h.h_meta_version <- payload.rp_meta_version;
    List.iter
      (fun (nb, map) ->
        match Hashtbl.find_opt t.neighbor_maps nb with
        | Some r ->
          r.n_map <- Node_map.merge ~scratch:t.map_scratch ~max:(r_map t) t.rng r.n_map map
        | None -> ())
      payload.rp_context;
    `Merged
  | None ->
    (* Make room under the replication factor by evicting lowest-ranked
       replicas (§3.5) — but only replicas the incoming node clearly
       dominates.  Displacing comparably-warm replicas would thrash: under
       flat demand every server at budget would keep swapping replicas
       forever.  The margin asks for a 2× demand gap. *)
    let displacement_margin = 2.0 in
    let max_replicas = int_of_float (t.config.Config.r_fact *. float_of_int t.owned_count) in
    let deficit () = t.replica_count + 1 - max_replicas in
    if max_replicas < 1 then `Rejected
    else begin
      if deficit () > 0 then begin
        let victims = Ranking.ranked_asc t.ranking ~among:(replica_nodes t) in
        let rec evict = function
          | (v, w) :: rest when deficit () > 0 && w *. displacement_margin < payload.rp_weight_hint ->
            evict_replica t v;
            evict rest
          | _ -> ()
        in
        evict victims
      end;
      if deficit () > 0 then `Rejected
      else begin
        (* Pinned: a full same-stamp rp_map must not truncate the new
           host's own entry out of the map it will advertise. *)
        let map =
          Node_map.add_pinned ~scratch:t.map_scratch ~max:(r_map t) payload.rp_map
            { Node_map.server = t.id; is_owner = false; stamp = now }
        in
        install_hosted t node Replicated ~map ~meta_version:payload.rp_meta_version
          ~context:payload.rp_context ~now;
        Ranking.seed t.ranking node payload.rp_weight_hint;
        t.replicas_installed <- t.replicas_installed + 1;
        `Installed
      end
    end

let idle_scan t ~now =
  let timeout = t.config.Config.replica_idle_timeout in
  let victims =
    List.sort Int.compare
      (Hashtbl.fold
         (fun node h acc ->
           if h.h_kind = Replicated && now -. h.h_last_used > timeout then node :: acc else acc)
         t.hosted [])
  in
  List.iter (evict_replica t) victims;
  victims

let queue_length t = Queue.length t.queue

let prune_map_with_digests t node map =
  if not t.config.Config.features.Config.digests then map
  else begin
    let pruned =
      Node_map.filter map ~f:(fun server ->
          match Digest_store.test_remote t.digests ~server ~node with
          | Some false -> false (* digest denial is authoritative: no false negatives *)
          | Some true | None -> true)
    in
    if Obs.full_on t.obs then begin
      let removed = Node_map.size map - Node_map.size pruned in
      (* lint: obs-in-hot-path gated on the full level; pure size readout *)
      if removed > 0 then Obs.record t.obs ~server:t.id (Event.Digest_prune { removed })
    end;
    pruned
  end

let make_replica_payload t node ~now =
  match find_hosted t node with
  | None -> None
  | Some h ->
    let context =
      List.map
        (fun nb ->
          let map = match known_map t nb with Some m -> m | None -> Node_map.empty in
          (nb, map))
        (Tree.neighbors t.tree node)
    in
    ignore now;
    Some
      {
        rp_node = node;
        rp_meta_version = h.h_meta_version;
        rp_map = h.h_map;
        rp_context = context;
        rp_weight_hint = Ranking.weight t.ranking node /. 2.0;
      }

let forget_server t node server =
  match find_hosted t node with
  | Some h -> h.h_map <- Node_map.remove h.h_map server
  | None -> (
    match Hashtbl.find_opt t.neighbor_maps node with
    | Some r -> r.n_map <- Node_map.remove r.n_map server
    | None ->
      Cache.update t.cache ~node ~f:(fun map -> Node_map.remove map server))

let forget_peer t peer =
  match Hashtbl.find_opt t.known_loads peer with
  | None -> ()
  | Some old ->
    Hashtbl.remove t.known_loads peer;
    if Hashtbl.length t.known_loads = 0 then t.peer_load_sum <- 0.0
    else t.peer_load_sum <- t.peer_load_sum -. old

let record_new_replica t node target ~now =
  match find_hosted t node with
  | None -> ()
  | Some h ->
    h.h_map <-
      Node_map.add ~scratch:t.map_scratch ~max:(r_map t) h.h_map
        { Node_map.server = target; is_owner = false; stamp = now };
    ensure_self t h ~now;
    if Obs.counters_on t.obs then
      (* lint: obs-in-hot-path replica churn is counters-level and rare *)
      Obs.record t.obs ~server:t.id (Event.Replica_advertised { node; to_server = target })

let state_kinds t =
  let by_node (a, _) (b, _) = Int.compare a b in
  let hosted =
    List.sort by_node
      (Hashtbl.fold
         (fun node h acc ->
           (node, match h.h_kind with Owned -> "Owned" | Replicated -> "Replicated") :: acc)
         t.hosted [])
  in
  let neighboring =
    List.sort by_node
      (Hashtbl.fold
         (fun node _ acc -> if hosts t node then acc else (node, "Neighboring") :: acc)
         t.neighbor_maps [])
  in
  let cached = ref [] in
  Cache.iter t.cache ~f:(fun node _ ->
      if (not (hosts t node)) && not (Hashtbl.mem t.neighbor_maps node) then
        cached := (node, "Cached") :: !cached);
  hosted @ neighboring @ List.sort by_node !cached
