(** Per-server node cache (§2.4).

    A cache entry is {e just a map} for a node: it lacks routing context and
    acts as a pointer in the namespace; a hit cannot resolve a query by
    itself.  Replacement is LRU, with an entry touched whenever it is used in
    routing.  Path propagation means inserts come in bursts (the whole query
    path so far); inserted maps are merged with any existing entry for the
    same node. *)

type t

val create :
  ?obs:Terradir_obs.Obs.t ->
  ?owner:int ->
  slots:int ->
  r_map:int ->
  rng:Terradir_util.Splitmix.t ->
  unit ->
  t
(** [slots] may be 0 (caching disabled).  [obs] (default disabled)
    receives a [Cache_hit]/[Cache_miss] event per lookup at the [Full]
    level, attributed to server [owner]. *)

val slots : t -> int

val length : t -> int

val insert : t -> node:int -> Node_map.t -> unit
(** Insert or merge-with-existing, becoming most-recently-used. *)

val use : t -> node:int -> Node_map.t option
(** Lookup {e and touch} — call when the entry is chosen for routing. *)

val peek : t -> node:int -> Node_map.t option
(** Lookup without touching — call when scanning candidates. *)

val remove : t -> node:int -> unit

val update : t -> node:int -> f:(Node_map.t -> Node_map.t) -> unit
(** In-place map rewrite (e.g. pruning a stale server); no LRU effect;
    no-op when absent.  If [f] returns an empty map the entry is dropped. *)

val iter : t -> f:(int -> Node_map.t -> unit) -> unit
(** Iterate entries (MRU first) without touching them. *)

val hits : t -> int

val misses : t -> int
(** {!use} and {!peek} count towards the hit/miss counters. *)

val hit_rate : t -> float
(** [hits / (hits + misses)]; 0 before the first lookup. *)

val clear : t -> unit
