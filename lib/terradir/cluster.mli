(** The simulated TerraDir deployment: servers, network, and protocol
    drivers on top of the discrete-event engine.

    Simulation model (§4.1 of the paper):
    - each server is a single exponential-service-time processor with a
      bounded FIFO request queue; query arrivals beyond the bound are
      dropped;
    - control traffic (replies, load probes/replies, replicate transfers) is
      small and rare: it shares the server's busy time (fixed
      [ctrl_service] cost) through a separate unbounded priority queue;
    - every message traverses the {!Terradir_sim.Net} model: latency is
      sampled per message (constant by default, uniform jitter via
      [net_jitter]), messages are lost iid with probability [net_loss],
      and partitions installed on [net] silently swallow traffic across
      the cut until healed.  With the default config the model degenerates
      to the paper's constant-delay lossless network;
    - every message piggybacks sender load and (when stale at the receiver)
      the sender's inverse-mapping digest;
    - failures: {!kill} makes a server lose its soft state (replicas, cache,
      digests, peer loads) and drop traffic; in-flight messages to a dead
      server bounce back after one network delay, letting the sender prune
      the dead host from its maps and retry — queries thus survive host
      failures when an alternative replica is known;
    - staleness decay: three durable-knowledge fallbacks keep routing live
      under churn.  A stale forward (the receiver no longer hosts the
      target) corrects the sender's map after one network delay, the dual
      of the bounce for {e alive} hosts; a context map that bounce-pruning
      would leave empty is re-seeded with the node's current owner (the
      delegation is configuration, like a DNS NS record, never truly
      forgotten); and a server left with no usable candidate — or only
      sideways ones on a stale forward — falls back on the well-known root
      contact and lets the query descend the owner chain;
    - timeouts: when [rpc_timeout] is positive, every lookup and fetch
      carries a per-request timer at its issuer.  An attempt that produces
      no outcome in time (some message of it was silently lost) is
      retransmitted with exponentially backed-off timeouts, up to
      [max_retries] times; fetches fail over to alternate data holders
      first.  The first outcome of any attempt finalizes the request;
      duplicate results are discarded (counted as [late_replies]). *)

open Types

(** Outcome of a data fetch (step two of lookup-then-retrieve). *)
type fetch_outcome =
  | Fetched of { latency : float }
  | Fetch_failed

type fetch_state = {
  f_client : server_id;
  f_node : node_id;
  f_started : float;
  f_tried : (server_id, unit) Hashtbl.t;
      (** holders already attempted this failover round (constant-time
          membership; cleared when every holder has been tried) *)
  mutable f_attempts : int;  (** timeout-driven retransmissions used *)
  f_on_done : (fetch_outcome -> unit) option;
}

(** Per-request issuer state for an in-flight lookup: survives across
    retransmitted attempts; removed exactly once, on finalization. *)
type query_ctx = {
  qc_src : server_id;
  qc_dst : node_id;
  qc_born : float;
  mutable qc_attempt : int;  (** newest attempt number (0 = original) *)
  qc_on_complete : (outcome -> unit) option;
}

type t = {
  engine : Terradir_sim.Engine.t;
  config : Config.t;
  tree : Terradir_namespace.Tree.t;
  servers : Server.t array;
  owner_of : server_id array;  (** ground-truth owner per node (bootstrap) *)
  rng : Terradir_util.Splitmix.t;
  net : Terradir_sim.Net.t;
      (** the fault-injectable transport; install partitions / change loss
          on it directly ({!Terradir_sim.Net.partition}, [set_loss]) *)
  obs : Terradir_obs.Obs.t;
      (** the observability sink every layer records into; the null sink
          (the default) makes every hook a single dead branch *)
  lane_metrics : Metrics.t array;
      (** one metrics part per engine lane (exactly one on a sequential
          engine); every counter bump lands in the executing lane's part.
          Read results through {!metrics}, which folds the parts *)
  lat_stats : Terradir_util.Stats.t array;
      (** per-issuer resolution-latency accumulators; folded in server-id
          order by {!metrics}, so the merged moments are independent of
          the shard layout *)
  hops_stats : Terradir_util.Stats.t array;
  data_lat_stats : Terradir_util.Stats.t array;
  meta_lag_stats : Terradir_util.Stats.t array;
  hop_budget : int;
  replicas_created_per_level : int array array;  (** per lane, per level *)
  data_holders : server_id array array;
      (** node → servers durably holding its data (owner + static copies) *)
  shard_ix : int array;  (** server → engine shard lane (all 0 when K = 1) *)
  pending_fetches : (int, fetch_state) Hashtbl.t array;  (** per shard *)
  pending_queries : (int, query_ctx) Hashtbl.t array;  (** per shard *)
  query_seq : int array;
      (** per-server request-id counters; ids are
          [(issuer + 1) lsl 32 lor seq], so issuer and shard are
          recoverable from any context *)
  fetch_seq : int array;
  session_seq : int array;
  meta_version : int array;
      (** per-node authoritative meta-data version — the owner's truth,
          mirrored here so resolution-time staleness measurement reads no
          other shard's server records *)
  mutable last_src : server_id;
  epochs : int array;  (** bumped on kill/revive; cancels stale events *)
  msg_pool : Types.message Terradir_util.Freelist.t array;
      (** per-lane recycled message records; a lane frees only into its own
          pool (records migrate across pools with cross-lane traffic) *)
  query_pool : Types.query Terradir_util.Freelist.t array;
  gt_scratch : Node_map.scratch;
      (** oracle-only map workspace (oracle routing pins one domain) *)
  audit : Invariant.t option;
      (** the runtime invariant auditor, when enabled ({!Invariant.enabled}
          at construction): checks run every [config.audit_every] engine
          events via the engine observer and at the end of every
          {!run_until}, which also delivers the collected report *)
}

val metrics : t -> Metrics.t
(** The cluster's measurements: per-lane counter parts summed, per-server
    distribution accumulators folded in id order.  The result is
    byte-identical for every [engine_domains] value (the parallel
    engine's determinism contract).  Builds a fresh struct per call —
    read it once per reporting step, not per sample. *)

val create :
  ?monitor:bool ->
  ?obs:Terradir_obs.Obs.t ->
  ?shard_of:(int -> int) ->
  config:Config.t ->
  tree:Terradir_namespace.Tree.t ->
  unit ->
  t
(** Build the deployment: validate config, place node ownership (uniform or
    round-robin per config), bootstrap each server's owned nodes and
    neighbor contexts, give each server [bootstrap_peers] random known
    peers, and (when [monitor], default true) schedule the per-second load
    sampler and the periodic replica idle scans.

    When [config.engine_domains >= 2] (and the run admits a safe lookahead:
    no [oracle_maps], positive latency floor) the engine is switched to the
    sharded conservative parallel mode, servers assigned to shards by
    [shard_of] (default [fun sid -> sid mod k]; the option is a test hook
    for adversarial layouts — results must not depend on it).

    [obs] (default {!Terradir_obs.Obs.null}) is the flight-recorder sink:
    the cluster points its clock at the engine, threads it into every
    server, the cache layer, and the network, and — when the sink level
    enables counters — registers an engine observer that samples per-server
    probes (load, queue depth, replicas, cache hit rate) every
    [Obs.probe_every] events.  Recording is passive: it never draws
    randomness and never schedules events, so enabling it cannot change a
    run's trajectory. *)

val now : t -> float

val server : t -> server_id -> Server.t

val num_servers : t -> int

val inject : ?on_complete:(outcome -> unit) -> t -> src:server_id -> dst:node_id -> unit
(** Hand a fresh lookup to [src]'s request queue (no network delay — the
    query originates there).  Subject to the queue bound.  [on_complete]
    fires exactly once, with the result map and meta-data on resolution or
    the drop reason otherwise — the hook client layers (retrieval,
    search) build on. *)

val fetch : ?on_done:(fetch_outcome -> unit) -> t -> client:server_id -> node:node_id -> unit
(** Step two of §2.1's two-step access: request [node]'s data from one of
    its data holders (retried across holders on failure).  Data requests
    share the servers' bounded queues and busy time — data load is real
    load, merely {e orthogonal} to the routing load this paper balances. *)

val update_meta : t -> node_id -> int
(** Owner-side meta-data update (§2.3: only the owner may modify
    meta-data); bumps and returns the authoritative version.  Replicas
    learn newer versions lazily, via replica payloads and merges. *)

val owner_meta_version : t -> node_id -> int

val inject_uniform_src : ?on_complete:(outcome -> unit) -> t -> dst:node_id -> unit
(** [inject] from a uniformly random alive server. *)

val last_injected_src : t -> server_id
(** The source server chosen by the most recent {!inject_uniform_src}
    (clients layering retrieval on a stream need to fetch from the same
    peer the lookup ran at). *)

val run_until : t -> float -> unit
(** Advance the simulation clock.  With auditing enabled, ends with a full
    invariant pass and delivers collected violations —
    @raise Invariant.Audit_failure in [`Raise] mode (the default). *)

val handoff : t -> node:node_id -> to_:server_id -> unit
(** Ownership transfer (membership-change extension; the paper assumes a
    static owner per node).  The donor drops the node (shedding replicas
    that no longer fit its budget), the recipient installs it as owned
    with data, meta-data and routing context; ground-truth ownership and
    data placement move with it.  Maps elsewhere keep stale owner entries
    — routing self-corrects through the usual soft-state machinery (stale
    forwards re-route; the donor keeps a cache pointer to the new owner).
    @raise Invalid_argument if [to_] already hosts the node as owned, is
    dead, or ids are out of range. *)

val graceful_leave : t -> server_id -> unit
(** Planned departure: hand every owned node to random alive peers, then
    fail-stop.  Unlike {!kill} alone, no namespace region becomes
    unreachable.  @raise Invalid_argument when no alive peer remains. *)

val kill : t -> server_id -> unit
(** Fail-stop: drops queued work, loses soft state, keeps owned nodes.
    Idempotent. *)

val revive : t -> server_id -> unit

val alive_servers : t -> int

val total_replicas : t -> int
(** Replicas currently hosted across the cluster. *)

val replicas_per_level : t -> [ `Current | `Created ] -> float array
(** Average replicas per node at each namespace level (Fig. 7):
    [`Current] counts replicas held now, [`Created] cumulative installs. *)

val mean_load : t -> float
(** Mean raw measured load over alive servers, at the current time. *)

val max_load : t -> float

val check_invariants : t -> unit
(** One immediate {!Invariant.check_cluster} pass (independent of whether
    auditing is enabled).  @raise Failure describing the first violation. *)
