(** Shared protocol types: identifiers, queries, and messages.

    Plain data shuttled between the routing, replication and cluster
    layers; the interface restates the implementation so every module in
    the library carries one (warning 70 is enforced per directory). *)

type server_id = int

type node_id = int

(** Terminal outcome of a lookup, delivered to the issuer's callback. *)
type outcome =
  | Resolved of {
      latency : float;
      hops : int;
      map : Node_map.t;  (** the destination's map — the lookup result *)
      meta_version : int;  (** meta-data version at the resolving host *)
    }
  | Dropped of drop_reason

and drop_reason =
  | Queue_full  (** §4.1: arrivals beyond the request queue bound *)
  | Hop_budget  (** routing failed to converge (staleness/loops) *)
  | Dead_end  (** no forwarding candidate (e.g. all known hosts dead) *)
  | Server_dead  (** delivered to a failed server with no retry possible *)
  | Timed_out
      (** the per-request timer expired with no retransmissions left —
          some message of every attempt was silently lost in the network *)

(** In-flight lookup query state.  [target] is the node on whose behalf the
    query was last forwarded — the receiving server is expected (but, with
    soft state, not guaranteed) to host it.

    Every field is mutable because the record is {e pooled}: the cluster
    recycles retired records through per-lane free lists, so steady-state
    traffic allocates no query records.  The path rides in a fixed ring
    ([path_nodes]/[path_maps], newest at [path_head]) instead of a list —
    appending overwrites the oldest slot, reproducing the historical
    newest-first truncation without consing. *)
and query = {
  mutable qid : int;
  mutable src_server : server_id;
  mutable dst : node_id;
  mutable attempt : int;
      (** which transmission of the request this is (0 = original); the
          issuer discards outcomes of superseded attempts *)
  mutable born : float;  (** injection time of the {e original} attempt *)
  mutable hops : int;  (** network hops taken so far *)
  mutable target : node_id;
  path_nodes : int array;  (** ring of path node ids; length [path_store] *)
  path_maps : Node_map.t array;
      (** Path propagation (§2.4): the route so far as (node, map) slots
          parallel to [path_nodes], capped at [path_cap] in flight. *)
  mutable path_head : int;  (** ring index of the newest path entry *)
  mutable path_len : int;  (** live entries, newest-first from [path_head] *)
  mutable shortcut_hops : int;  (** hops chosen via a digest shortcut *)
  mutable best_dist : int;
      (** closest namespace distance to [dst] this query has ever reached;
          digest shortcuts must beat it, which makes shortcut chains
          strictly decreasing and immune to false-positive loops *)
  mutable stale_forwards : int;
      (** arrivals at a server that no longer hosted [target] — the routing
          inaccuracy measure of §4.4 *)
  mutable result_map : Node_map.t;  (** destination map captured at resolution *)
  mutable result_meta : int;
}
(** The issuer's callback lives with the cluster's per-request state (keyed
    by [qid]), not on the in-flight record: attempts are retransmitted and
    raced, but the request completes exactly once. *)

val path_cap : int
(** Bound on propagated path length; real deployments cap piggyback size. *)

val path_store : int
(** Ring capacity, [path_cap + 1]: resolution appends the destination's
    entry without truncating, exactly as the historical list did. *)

val path_reset : query -> unit
(** Empty the path (head and length only; slots keep stale references
    until overwritten or {!path_scrub}bed). *)

val path_append : query -> node_id -> Node_map.t -> unit
(** Push a newest entry, overwriting the oldest once the ring is full. *)

val path_truncate : query -> unit
(** Drop oldest entries beyond [path_cap] (the in-flight piggyback bound). *)

val path_iter : query -> f:(node_id -> Node_map.t -> unit) -> unit
(** Visit live entries newest-first — the historical list order. *)

val path_scrub : query -> unit
(** {!path_reset} plus clearing every map slot to [Node_map.empty], so a
    pooled record retains no maps across reuse. *)

val fresh_query : unit -> query
(** A blank record with its path ring allocated — the pool's constructor;
    every live field is overwritten by the cluster's recycler. *)

(** State shipped when a node is replicated: exactly the "Replicated" row of
    Table 1 — name (id), meta-data (version), map, and routing context. *)
type replica_payload = {
  rp_node : node_id;
  rp_meta_version : int;
  rp_map : Node_map.t;  (** map for the node itself, sender's view *)
  rp_context : (node_id * Node_map.t) list;  (** maps for each tree neighbor *)
  rp_weight_hint : float;  (** sender's demand weight, seeds receiver ranking *)
}

type payload =
  | Query of query
  | Query_reply of query  (** resolution notice, sent straight back to src *)
  | Load_probe of { session : int }
  | Load_reply of { session : int; load : float }
  | Replicate of { session : int; replicas : replica_payload list }
  | Data_request of { fetch_id : int; node : node_id; client : server_id }
      (** step two of the lookup-then-retrieve protocol (§2.1): fetch the
          node's data from one of its data holders *)
  | Data_reply of { fetch_id : int; node : node_id }

(** Every message piggybacks the sender's load and digest version; the full
    digest rides along when the sender believes the receiver's copy is
    stale (§6: in-band dissemination only).  Mutable for the same reason as
    [query]: messages are pooled, built only for deliveries the network
    actually makes. *)
type message = {
  mutable msg_from : server_id;
  mutable msg_load : float;
  mutable msg_digest_version : int;
  mutable msg_digest : Terradir_bloom.Bloom.t option;
  mutable msg_payload : payload;
}

val null_payload : payload
(** Scrub value for pooled messages — ids no pending table ever contains. *)

val is_query_class : payload -> bool
