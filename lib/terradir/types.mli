(** Shared protocol types: identifiers, queries, and messages.

    Plain data shuttled between the routing, replication and cluster
    layers; the interface restates the implementation so every module in
    the library carries one (warning 70 is enforced per directory). *)

type server_id = int

type node_id = int

(** Terminal outcome of a lookup, delivered to the issuer's callback. *)
type outcome =
  | Resolved of {
      latency : float;
      hops : int;
      map : Node_map.t;  (** the destination's map — the lookup result *)
      meta_version : int;  (** meta-data version at the resolving host *)
    }
  | Dropped of drop_reason

and drop_reason =
  | Queue_full  (** §4.1: arrivals beyond the request queue bound *)
  | Hop_budget  (** routing failed to converge (staleness/loops) *)
  | Dead_end  (** no forwarding candidate (e.g. all known hosts dead) *)
  | Server_dead  (** delivered to a failed server with no retry possible *)
  | Timed_out
      (** the per-request timer expired with no retransmissions left —
          some message of every attempt was silently lost in the network *)

(** In-flight lookup query state.  [target] is the node on whose behalf the
    query was last forwarded — the receiving server is expected (but, with
    soft state, not guaranteed) to host it. *)
and query = {
  qid : int;
  src_server : server_id;
  dst : node_id;
  attempt : int;
      (** which transmission of the request this is (0 = original); the
          issuer discards outcomes of superseded attempts *)
  born : float;  (** injection time of the {e original} attempt *)
  mutable hops : int;  (** network hops taken so far *)
  mutable target : node_id;
  mutable path : (node_id * Node_map.t) list;
      (** Path propagation (§2.4): the route so far as (node, map) pairs,
          newest first, capped at [path_cap]. *)
  mutable path_len : int;
      (** cached [List.length path], so the per-hop cap check is O(1) *)
  mutable shortcut_hops : int;  (** hops chosen via a digest shortcut *)
  mutable best_dist : int;
      (** closest namespace distance to [dst] this query has ever reached;
          digest shortcuts must beat it, which makes shortcut chains
          strictly decreasing and immune to false-positive loops *)
  mutable stale_forwards : int;
      (** arrivals at a server that no longer hosted [target] — the routing
          inaccuracy measure of §4.4 *)
  mutable result_map : Node_map.t;  (** destination map captured at resolution *)
  mutable result_meta : int;
}
(** The issuer's callback lives with the cluster's per-request state (keyed
    by [qid]), not on the in-flight record: attempts are retransmitted and
    raced, but the request completes exactly once. *)

val path_cap : int
(** Bound on propagated path length; real deployments cap piggyback size. *)

(** State shipped when a node is replicated: exactly the "Replicated" row of
    Table 1 — name (id), meta-data (version), map, and routing context. *)
type replica_payload = {
  rp_node : node_id;
  rp_meta_version : int;
  rp_map : Node_map.t;  (** map for the node itself, sender's view *)
  rp_context : (node_id * Node_map.t) list;  (** maps for each tree neighbor *)
  rp_weight_hint : float;  (** sender's demand weight, seeds receiver ranking *)
}

type payload =
  | Query of query
  | Query_reply of query  (** resolution notice, sent straight back to src *)
  | Load_probe of { session : int }
  | Load_reply of { session : int; load : float }
  | Replicate of { session : int; replicas : replica_payload list }
  | Data_request of { fetch_id : int; node : node_id; client : server_id }
      (** step two of the lookup-then-retrieve protocol (§2.1): fetch the
          node's data from one of its data holders *)
  | Data_reply of { fetch_id : int; node : node_id }

(** Every message piggybacks the sender's load and digest version; the full
    digest rides along when the sender believes the receiver's copy is
    stale (§6: in-band dissemination only). *)
type message = {
  msg_from : server_id;
  msg_load : float;
  msg_digest_version : int;
  msg_digest : Terradir_bloom.Bloom.t option;
  msg_payload : payload;
}

val is_query_class : payload -> bool
