(** Cluster-wide measurement: the quantities §4 reports.

    Counters are cumulative; time series are per-second (bin 1.0) unless
    noted.  Everything is plain observation — no protocol behavior depends
    on this module. *)

open Terradir_util

type t = {
  (* query lifecycle *)
  mutable injected : int;
  mutable resolved : int;
  mutable dropped_queue : int;
  mutable dropped_hops : int;
  mutable dropped_dead_end : int;
  mutable dropped_server_dead : int;
  mutable dropped_timeout : int;
      (** queries whose final attempt's timer expired (network faults) *)
  (* network faults and retransmission (Net layer) *)
  mutable net_lost : int;  (** messages silently lost by iid loss *)
  mutable net_blocked : int;  (** messages dropped by an active partition *)
  mutable query_retransmits : int;  (** lookup attempts beyond the original *)
  mutable fetch_retransmits : int;  (** data-fetch attempts beyond the original *)
  mutable late_replies : int;
      (** resolutions that arrived after their request was finalized
          (duplicate attempt won, or the request already timed out) *)
  (* replication protocol *)
  mutable replicas_created : int;
  mutable replicas_evicted : int;
  mutable control_messages : int;
  mutable sessions_started : int;
  mutable sessions_aborted : int;
  (* routing behavior *)
  mutable query_forwards : int;
  mutable shortcut_forwards : int;
  mutable stale_forwards : int;
  (* data retrieval (step two of lookup-then-retrieve) *)
  mutable data_requests : int;
  mutable data_completed : int;
  mutable data_dropped : int;
  (* distributions *)
  latency : Stats.t;  (** resolution latency, seconds *)
  latency_hist : Terradir_obs.Hist.t;
      (** log-bucketed latency distribution (p50/p95/p99/max readout);
          replaces the old reservoir-sampled percentile path — exact
          counts, no RNG *)
  hops : Stats.t;  (** network hops per resolved query *)
  hops_hist : Terradir_obs.Hist.t;
  data_latency : Stats.t;  (** fetch round-trip, seconds *)
  meta_lag : Stats.t;
      (** meta-data versions behind the owner at resolution — how stale the
          soft-state replicas' annotations run (§2.3's freshness caveat) *)
  (* per-second series *)
  injected_ts : Timeseries.t;
  drops_ts : Timeseries.t;
  replicas_ts : Timeseries.t;
  load_mean_ts : Timeseries.t;  (** mean server load sampled each second *)
  load_max_ts : Timeseries.t;  (** max server load sampled each second *)
}

val create : rng:Splitmix.t -> t
(** [rng] is consumed for stream-compatibility only (the reservoir
    sampler it used to feed is gone); callers keep splitting a stream off
    for it so seeded runs reproduce historical golden output. *)

val dropped_total : t -> int

val drop : t -> Types.drop_reason -> now:float -> unit
(** Count one dropped query (all reasons feed [drops_ts]). *)

val resolve : t -> latency:float -> hops:int -> now:float -> unit
(** Count one resolution and feed the histograms.  The Welford [Stats]
    for latency/hops are {e not} updated here — the cluster keeps those
    per-server (so they fold back in a shard-count-independent order)
    and reunites them with the counters via {!merged}. *)

val merged :
  parts:t list -> latency:Stats.t -> hops:Stats.t -> data_latency:Stats.t -> meta_lag:Stats.t -> t
(** Combine per-lane parts (plus the pre-folded distribution stats) into
    the metrics a one-domain run of the same schedule reports: counters
    and histogram bucket counts sum exactly; time series merge bin-wise;
    histogram float moments are re-derived from the matching [Stats]
    (which saw the identical value stream).  A single-lane run uses the
    same path with one part, so the result is byte-identical for every
    domain count. *)

val replica_created : t -> now:float -> unit

val drop_fraction : t -> float
(** Dropped / injected over the whole run (Fig. 5's metric). *)

val unresolved : t -> int
(** Queries injected but neither resolved nor counted as dropped — still
    in flight at observation time (or stranded awaiting an rpc timer that
    is disabled).  The chaos resilience report tracks this so a campaign
    can distinguish "failed fast" from "never answered". *)

val summary_rows : t -> (string * string) list
(** Human-readable key/value summary for reports.  Counter rows are
    generated from {!counter_fields}; derived rows (drop fraction, means,
    histogram percentiles) are interleaved, and the network-fault / data
    sections are omitted while inactive. *)

val counter_fields : (string * (t -> int)) list
(** The single source of truth for cumulative counters: (CSV column name,
    getter), one entry per mutable counter of [t], in export order.  Both
    {!summary_rows} and [Csv_export.metrics_csv] derive from this list. *)

val csv_header : string list
(** Column names of {!counter_fields}. *)

val csv_row : t -> string list
(** Counter values, aligned with {!csv_header}. *)
