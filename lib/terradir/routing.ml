open Terradir_namespace
open Types
module Obs = Terradir_obs.Obs
module Event = Terradir_obs.Event

type decision =
  | Resolve
  | Forward of { via_node : node_id; to_server : server_id; shortcut : bool }
  | Dead_end

type candidate = { c_node : node_id; c_dist : int; c_from_cache : bool }

(* Scan the knowledge set, collecting candidates sorted by distance.  The
   scan covers tree-neighbors of hosted nodes (the neighbor_maps table is
   exactly that set) and cached nodes.  Hosted nodes themselves need no
   entry: for any hosted [n] other than [dst], some tree-neighbor of [n] is
   strictly closer to [dst], and all such neighbors are in the table. *)
let candidates (s : Server.t) ~dst =
  let acc = ref [] in
  (* lint: ordered every collected candidate goes through the total (dist, node) sort below *)
  Hashtbl.iter
    (fun node (r : Server.neighbor_ref) ->
      if not (Node_map.is_empty r.n_map) then
        acc := { c_node = node; c_dist = Tree.distance s.tree node dst; c_from_cache = false } :: !acc)
    s.neighbor_maps;
  Cache.iter s.cache ~f:(fun node map ->
      if not (Node_map.is_empty map) then
        acc := { c_node = node; c_dist = Tree.distance s.tree node dst; c_from_cache = true } :: !acc);
  List.sort
    (fun a b ->
      match Int.compare a.c_dist b.c_dist with 0 -> Int.compare a.c_node b.c_node | c -> c)
    !acc

(* Allocation-free fast path returning only the minimum candidate.

   Instead of scanning all tree-neighbors of hosted nodes, scan the hosted
   nodes themselves: for hosted [h] ≠ dst, the neighbor of [h] nearest to
   [dst] is the one toward [dst] — the parent when [dst] is outside [h]'s
   subtree, else the child whose subtree holds [dst] — at distance
   [distance h dst − 1].  So the best neighbor candidate overall is derived
   from the hosted node minimizing [distance h dst], at a third of the
   scanning cost.  Cached nodes are scanned as themselves. *)
let best_candidate (s : Server.t) ~dst =
  let best_hosted = ref (-1) and best_hosted_dist = ref max_int in
  (* lint: ordered running minimum under the total (dist, node) order; any visit order yields it *)
  Hashtbl.iter
    (fun node (_ : Server.hosted) ->
      let d = Tree.distance s.tree node dst in
      if d < !best_hosted_dist || (d = !best_hosted_dist && node < !best_hosted) then begin
        best_hosted := node;
        best_hosted_dist := d
      end)
    s.hosted;
  let best_node = ref (-1) and best_dist = ref max_int and best_cache = ref false in
  if !best_hosted >= 0 then begin
    let h = !best_hosted in
    let toward =
      if Tree.is_ancestor s.tree h dst then Tree.ancestor_at_depth s.tree dst (Tree.depth s.tree h + 1)
      else match Tree.parent s.tree h with Some p -> p | None -> assert false
    in
    best_node := toward;
    best_dist := !best_hosted_dist - 1
  end;
  Cache.iter s.cache ~f:(fun node map ->
      if not (Node_map.is_empty map) then begin
        let d = Tree.distance s.tree node dst in
        if d < !best_dist || (d = !best_dist && node < !best_node) then begin
          best_node := node;
          best_dist := d;
          best_cache := true
        end
      end);
  if !best_node < 0 then None
  else Some { c_node = !best_node; c_dist = !best_dist; c_from_cache = !best_cache }

let best_distance cands = match cands with [] -> None | c :: _ -> Some c.c_dist

let max_shortcut_walk = 6
(* Ancestors of dst tested per step.  A shortcut farther out is still a
   shortcut, but the conventional route makes progress every hop and gets
   another chance to find it next step; bounding the walk bounds both the
   per-step cost and the false-positive exposure. *)

(* §3.6.1: walk dst's ancestor chain from dst upward (distance 0, 1, ...)
   and stop as soon as the chain distance reaches the best conventional
   candidate — a digest hit beyond that point cannot improve the route. *)
let digest_shortcut (s : Server.t) ~dst ~better_than =
  let limit = min better_than max_shortcut_walk in
  if (not s.config.Config.features.Config.digests) || limit <= 0 then None
  else begin
    (* Collect the MRU-first prefix of remote digests into the server's
       scratch arrays — no tuples, cons cells, or reversal on the hot
       path, and the walk STOPS at the prefix: this runs on every routing
       decision, and folding the whole store (up to [max_remote_digests]
       entries) here was the dominant per-event cost at large server
       counts. *)
    let servers = s.Server.digest_scratch_servers in
    let blooms = s.Server.digest_scratch_blooms in
    let cap = Array.length servers in
    let count =
      Digest_store.fold_remote_until s.digests ~init:0 ~f:(fun n server bloom ->
          if n >= cap then Either.Right n
          else if server = s.id then Either.Left n
          else begin
            servers.(n) <- server;
            blooms.(n) <- bloom;
            Either.Left (n + 1)
          end)
    in
    if count = 0 then None
    else
      let find_hit h =
        (* First hit in MRU order, matching the historical consultation
           order of the consulted list. *)
        let rec go i = if i >= count then -1 else if Terradir_bloom.Bloom.mem_hashed blooms.(i) h then i else go (i + 1) in
        go 0
      in
      let rec walk node dist =
        if dist >= limit then None
        else begin
          let h = Terradir_bloom.Bloom.hash node in
          let i = find_hit h in
          if i >= 0 then Some (node, servers.(i), dist)
          else
            match Tree.parent s.tree node with
            | Some p -> walk p (dist + 1)
            | None -> None
        end
      in
      walk dst 0
  end

(* Pick a server from the candidate node's map: digest-pruned first, raw as
   fallback (pruning is best-effort and must not strand the query). *)
let select_server (s : Server.t) node map =
  let pruned = Server.prune_map_with_digests s node map in
  match Node_map.random_server ~exclude:s.id pruned s.rng with
  | Some _ as r -> r
  | None -> Node_map.random_server ~exclude:s.id map s.rng

let forward_via ?oracle (s : Server.t) c =
  let map =
    match oracle with
    | Some truth ->
      (* Perfect accuracy: select among the node's actual current hosts.
         Local state is still touched so demand accounting matches. *)
      if c.c_from_cache then ignore (Cache.use s.cache ~node:c.c_node);
      let m = truth c.c_node in
      if Node_map.is_empty m then None else Some m
    | None ->
      if c.c_from_cache then Cache.use s.cache ~node:c.c_node else Server.neighbor_map s c.c_node
  in
  match map with
  | None -> None
  | Some map -> (
    match select_server s c.c_node map with
    | Some to_server -> Some (Forward { via_node = c.c_node; to_server; shortcut = false })
    | None -> None)

let decide ?(shortcut_bound = max_int) ?oracle (s : Server.t) ~dst =
  if Server.hosts s dst then Resolve
  else begin
    let best = best_candidate s ~dst in
    let best_dist = match best with Some c -> c.c_dist | None -> max_int in
    let shortcut =
      if oracle <> None then None
      else digest_shortcut s ~dst ~better_than:(min best_dist shortcut_bound)
    in
    match shortcut with
    | Some (via_node, to_server, _) ->
      if Obs.full_on s.Server.obs then
        (* lint: obs-in-hot-path gated on the full level; null-sink cost is one branch *)
        Obs.record s.Server.obs ~server:s.Server.id
          (Event.Digest_shortcut { node = via_node; to_server });
      Forward { via_node; to_server; shortcut = true }
    | None -> (
      (* Fast path: the nearest candidate almost always yields a server;
         fall back to the full nearest-first scan when it does not. *)
      match Option.bind best (forward_via ?oracle s) with
      | Some decision -> decision
      | None ->
        let rec attempt = function
          | [] -> Dead_end
          | c :: rest -> (
            match forward_via ?oracle s c with Some decision -> decision | None -> attempt rest)
        in
        attempt (candidates s ~dst)
      )
  end

let closest_known_distance s ~dst =
  if Server.hosts s dst then Some 0 else best_distance (candidates s ~dst)
