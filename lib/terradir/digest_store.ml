open Terradir_util
open Terradir_bloom

type remote = { bloom : Bloom.t; version : int }

type t = {
  mutable local : Bloom.t;
  mutable local_version : int;
  remotes : remote Lru.t;
  sent : (int, int) Hashtbl.t; (* peer -> last local version piggybacked *)
}

let create ~max_remote () =
  {
    local = Bloom.create ~expected:1 ();
    local_version = 0;
    remotes = Lru.create ~capacity:max_remote;
    sent = Hashtbl.create 64;
  }

let local_version t = t.local_version

let local t = t.local

(* Digests are consulted hundreds of times per routing step across many
   servers, so false positives compound: use 16 bits/element (k = 10,
   ~0.05% FP rate) rather than the Bloom default.

   The previous filter cannot be reset and refilled in place: [local] is
   published by reference in piggybacked digest messages, so servers that
   recorded it would see the mutation (and sizing must track the hosted
   count anyway). *)
let rebuild_local_from t ~count ~iter =
  t.local <- Bloom.of_iter ~bits_per_element:16 ~hashes:10 ~expected:count iter;
  t.local_version <- t.local_version + 1

let rebuild_local t ~hosted =
  rebuild_local_from t ~count:(List.length hosted) ~iter:(fun add -> List.iter add hosted)

let record_remote t ~server ~version bloom =
  match Lru.peek t.remotes server with
  | Some r when r.version >= version -> ()
  | Some _ | None -> Lru.put t.remotes server { bloom; version }

let remote_version t ~server = Option.map (fun r -> r.version) (Lru.peek t.remotes server)

let test_remote t ~server ~node =
  (* [find] rather than [peek]: a consulted digest is useful state, keep it
     warm in the LRU. *)
  Option.map (fun r -> Bloom.mem r.bloom node) (Lru.find t.remotes server)

let fold_remote t ~init ~f = Lru.fold t.remotes ~init ~f:(fun acc server r -> f acc server r.bloom)

let fold_remote_until t ~init ~f =
  Lru.fold_until t.remotes ~init ~f:(fun acc server r -> f acc server r.bloom)

let remote_count t = Lru.length t.remotes

let last_version_sent t ~peer = Option.value ~default:0 (Hashtbl.find_opt t.sent peer)

let note_version_sent t ~peer version = Hashtbl.replace t.sent peer version
