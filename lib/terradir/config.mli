(** Protocol and simulation parameters.

    One record holds every tunable of the system: the methodology constants
    of §4.1 (service time, network delay, queue bound), the replication
    protocol knobs of §3 (high-water threshold, minimum shed delta,
    replication factor, map size), and the feature switches that realize the
    paper's Fig. 5 ablations (B / BC / BCR). *)

type features = {
  caching : bool;  (** path-propagation LRU caches (§2.4) *)
  replication : bool;  (** adaptive replication protocol (§3) *)
  digests : bool;  (** inverse-mapping digests (§3.6) *)
}

type placement =
  | Uniform  (** each node's owner drawn uniformly at random (§4.1) *)
  | Round_robin  (** shuffled round-robin: exact nodes-per-server (Fig. 9) *)

type cache_policy =
  | Path_propagation
      (** §2.4: the path-so-far is cached at every step, and the whole path
          at the source on completion (the paper's design) *)
  | Endpoints_only
      (** the strawman the paper compares against: only the source caches,
          and only the destination's map *)

type t = {
  num_servers : int;
  placement : placement;
  speed_spread : float;
      (** server heterogeneity: per-server speed factors drawn log-uniform
          in [1/spread, spread] and normalized to mean 1, so the aggregate
          capacity is spread-invariant.  1.0 (default) = homogeneous.  The
          load metric needs no change — busy fraction is §3.1's normalized,
          locally-defined measure, which is how the protocol "exploits
          system heterogeneity" (§5) *)
  service_mean : float;  (** mean exponential query service time, seconds *)
  ctrl_service : float;  (** fixed service time of a control message *)
  network_delay : float;  (** mean application-layer network time *)
  net_jitter : float;
      (** half-width of the uniform per-message latency jitter around
          [network_delay] (0 = the paper's constant-delay network); must
          not exceed [network_delay].  Richer latency models (lognormal)
          are available on {!Terradir_sim.Net} directly *)
  net_loss : float;
      (** iid probability that any message is silently lost in the network
          (0 = the paper's lossless network).  Lost queries and fetches
          hang unless [rpc_timeout] arms the retransmission machinery *)
  rpc_timeout : float;
      (** per-request timer at the issuer for lookups and data fetches: an
          attempt that produces no outcome within the timeout is
          retransmitted (up to [max_retries] times, timeouts growing by
          [retry_backoff]); 0 (the default) disables timers entirely —
          exactly the seed semantics, where only explicit bounce-backs
          from dead hosts trigger retry *)
  max_retries : int;  (** retransmissions per request after the original *)
  retry_backoff : float;
      (** timeout multiplier per retransmission (>= 1); attempt [k] waits
          [rpc_timeout * retry_backoff^k] *)
  queue_capacity : int;  (** per-server request queue bound; excess dropped *)
  load_window : float;  (** busy-fraction measurement window W *)
  high_water : float;  (** T_high floor: load that triggers replication sessions *)
  high_water_factor : float;
      (** §3.1: the threshold "can automatically be set in proportion to
          the overall system utilization".  The effective threshold is
          [max high_water (min 0.95 (factor × believed mean load))], the
          mean taken over the in-band peer-load table.  Without this, any
          server whose sustained load sits above the constant floor sheds
          forever and the system never stabilizes (cf. Fig. 8).  0 disables
          the adaptation (constant threshold). *)
  min_delta : float;  (** minimum load gap required to shed onto a peer *)
  r_fact : float;  (** replicas hosted <= r_fact * nodes owned *)
  r_map : int;  (** maximum entries in any node map *)
  cache_slots : int;  (** LRU cache capacity, entries *)
  cache_policy : cache_policy;
  max_attempts : int;  (** destination-server attempts per session *)
  retry_delay : float;  (** pause after an aborted replication session *)
  success_cooldown : float;
      (** pause after a {e successful} shed before opening another session —
          gives the shed time to divert traffic (with only the one-window
          hysteresis adjustment, a persistently hot server would otherwise
          open a session per load window and thrash) *)
  replica_idle_timeout : float;  (** soft-state: evict replicas unused this long *)
  eviction_scan_period : float;  (** period of the idle-replica scan *)
  hop_budget_slack : int;  (** queries dropped after 4*max_depth + slack hops *)
  bootstrap_peers : int;  (** peers each server initially knows (load table) *)
  max_remote_digests : int;  (** bound on stored remote digests per server *)
  data_copies : int;
      (** static data replication degree: each node's data lives at its
          owner plus [data_copies − 1] fixed extra servers.  Orthogonal to
          the adaptive {e routing-state} replication (§1) — this knob is
          the "any data replication mechanism" the protocol combines with *)
  data_service_mean : float;  (** mean service time of a data fetch *)
  features : features;
  oracle_maps : bool;
      (** route with ground-truth host maps (§4.4's optimal-information
          reference); digest shortcuts are disabled under the oracle *)
  audit : bool;
      (** run the {!Invariant} auditor: protocol invariants are checked
          every [audit_every] engine events and at the end of every
          [Cluster.run_until]; violations collect into a report.  Also
          switched on (for any config) by the TERRADIR_AUDIT environment
          variable or the CLI's [--audit] flag *)
  audit_every : int;  (** auditor cadence, in executed engine events *)
  scheduler : [ `Heap | `Calendar ];
      (** event-queue implementation for the engine: [`Heap] (default) is
          the binary heap, [`Calendar] the calendar queue — O(1) expected
          add/pop at steady state, preferred for capacity-scale runs.
          Pop order is identical either way; the knob is performance-only *)
  engine_domains : int;
      (** OCaml domains driving the event loop: 1 (default) is the
          sequential engine; [k >= 2] shards servers across [k] domains
          under the conservative synchronization windows of
          [Engine.configure].  Every observable output is byte-identical
          for any value — the knob is performance-only.  Clamped to
          [num_servers]; falls back to 1 when the run leaves no safe
          lookahead ([oracle_maps], or a latency floor of zero) *)
  seed : int;
}

val bcr : features
(** Full system: caching + replication + digests. *)

val bc : features
(** Caching only (replication and digests off). *)

val base : features
(** Plain hierarchical routing. *)

val default : t
(** The paper's defaults at simulation scale: 4096 servers, 20 ms service,
    25 ms network, queue bound 12, W = 0.5 s, T_high = 0.7, delta = 0.2,
    r_fact = 2, r_map = 4, 24 cache slots, 600 s replica idle timeout, 1 s post-shed cooldown, features = {!bcr}, seed 42.  Network faults
    are off (no jitter, no loss, timers disabled) — the ideal transport
    the paper evaluates under. *)

val validate : t -> unit
(** @raise Invalid_argument with a description of the first violated
    constraint (non-positive sizes, thresholds outside (0,1], etc.). *)

val scaled : t -> factor:float -> t
(** [scaled c ~factor] shrinks the cluster for cheap runs: multiplies
    [num_servers] by [factor] (min 2) — query rates are supplied by
    experiments and must be scaled by the caller alongside. *)
