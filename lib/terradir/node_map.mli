(** Node maps: bounded server lists resolving a node name to hosts (§3.7).

    A map is "possibly incomplete and inaccurate": it never claims to list
    every host and entries can be stale.  Policies implemented here, per the
    paper:

    - {b size}: at most [max] entries, both at rest and on the wire;
    - {b owner pinning}: an entry flagged as the owner survives every merge
      and truncation (ownership is the one durable fact about a node);
    - {b recency preference}: the newest non-owner entries are kept first
      (owners advertise their most recently created replicas);
    - {b random fill}: remaining slots are chosen at random from what is
      left, so different servers end up with decorrelated maps.

    Maps are immutable values; all operations return new maps.  The
    representation is a flat struct-of-arrays (packed server/owner ints,
    unboxed stamps): operations that assemble intermediate states accept
    an optional {!scratch} buffer so hot-path callers allocate only the
    result map. *)

type entry = { server : int; is_owner : bool; stamp : float }
(** [stamp] is the simulation time this entry was (last) created/refreshed. *)

type t

type scratch
(** Reusable workspace for {!of_entries}/{!add}/{!add_pinned}/{!merge}.
    Single-owner mutable state: thread one per server (or per lane), never
    share across engine lanes.  Omitting it allocates a transient one. *)

val scratch : unit -> scratch

val empty : t

val singleton : ?is_owner:bool -> server:int -> stamp:float -> unit -> t

val of_entries : ?scratch:scratch -> max:int -> entry list -> t
(** Dedup by server (newest stamp wins, owner flag is sticky) and truncate
    under the policy above (deterministically — random fill only applies to
    {!merge}). *)

val truncate : max:int -> t -> t
(** First [max] entries under the policy order; the map itself (no copy)
    when it already fits. *)

val entries : t -> entry list
(** Owner entries first, then newest-first. *)

val servers : t -> int list

val size : t -> int

val is_empty : t -> bool

val mem : t -> int -> bool
(** Membership of a server. *)

val owner : t -> int option
(** The owner entry's server, if the map knows it. *)

val add : ?scratch:scratch -> max:int -> t -> entry -> t
(** Insert/refresh one entry, truncating to [max] under the policy. *)

val add_pinned : ?scratch:scratch -> max:int -> t -> entry -> t
(** [add], but the added server's entry is guaranteed to survive the
    truncation: if it would fall past the cut, the lowest-priority kept
    non-owner entry is evicted in its favor.  Owners are never displaced —
    in the degenerate case where owner entries alone fill the map, the
    result equals [add]'s.  Used for a host's self entry, which the map it
    advertises must contain (the PR-3-documented truncation subtlety). *)

val remove : t -> int -> t
(** Drop a server's entry (e.g. learned stale). *)

val merge : ?scratch:scratch -> max:int -> Terradir_util.Splitmix.t -> t -> t -> t
(** Merge two maps for the same node: owners kept, then the newest entries,
    then random fill from the remainder (§3.7 "map merging").  Call twice
    with different [rng] draws to produce the kept-vs-propagated variants.
    RNG consumption is representation-independent: one draw per randomly
    filled slot, over the remainder in policy order. *)

val filter : t -> f:(int -> bool) -> t
(** Keep entries whose {e server id} satisfies [f]; owner entries are
    exempt (map filtering is conservative and must never orphan a node).
    Returns the input map itself when nothing is pruned. *)

val random_server : ?exclude:int -> t -> Terradir_util.Splitmix.t -> int option
(** Uniform choice among entries (minus [exclude]) — replica selection. *)

val pp : Format.formatter -> t -> unit
