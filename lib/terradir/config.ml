type features = { caching : bool; replication : bool; digests : bool }

type placement = Uniform | Round_robin

type cache_policy = Path_propagation | Endpoints_only

type t = {
  num_servers : int;
  placement : placement;
  speed_spread : float;
  service_mean : float;
  ctrl_service : float;
  network_delay : float;
  net_jitter : float;
  net_loss : float;
  rpc_timeout : float;
  max_retries : int;
  retry_backoff : float;
  queue_capacity : int;
  load_window : float;
  high_water : float;
  high_water_factor : float;
  min_delta : float;
  r_fact : float;
  r_map : int;
  cache_slots : int;
  cache_policy : cache_policy;
  max_attempts : int;
  retry_delay : float;
  success_cooldown : float;
  replica_idle_timeout : float;
  eviction_scan_period : float;
  hop_budget_slack : int;
  bootstrap_peers : int;
  max_remote_digests : int;
  data_copies : int;
  data_service_mean : float;
  features : features;
  oracle_maps : bool;
  audit : bool;
  audit_every : int;
  scheduler : [ `Heap | `Calendar ];
  engine_domains : int;
  seed : int;
}

let bcr = { caching = true; replication = true; digests = true }

let bc = { caching = true; replication = false; digests = false }

let base = { caching = false; replication = false; digests = false }

let default =
  {
    num_servers = 4096;
    placement = Uniform;
    speed_spread = 1.0;
    service_mean = 0.020;
    ctrl_service = 0.002;
    network_delay = 0.025;
    net_jitter = 0.0;
    net_loss = 0.0;
    rpc_timeout = 0.0;
    max_retries = 3;
    retry_backoff = 2.0;
    queue_capacity = 12;
    load_window = 0.5;
    high_water = 0.7;
    high_water_factor = 1.6;
    min_delta = 0.2;
    r_fact = 2.0;
    r_map = 4;
    cache_slots = 24;
    cache_policy = Path_propagation;
    max_attempts = 3;
    retry_delay = 1.0;
    success_cooldown = 1.0;
    replica_idle_timeout = 600.0;
    eviction_scan_period = 10.0;
    hop_budget_slack = 16;
    bootstrap_peers = 8;
    max_remote_digests = 64;
    data_copies = 1;
    data_service_mean = 0.040;
    features = bcr;
    oracle_maps = false;
    audit = false;
    audit_every = 10_000;
    scheduler = `Heap;
    engine_domains = 1;
    seed = 42;
  }

let validate c =
  let fail msg = invalid_arg ("Config: " ^ msg) in
  if c.num_servers < 1 then fail "num_servers must be >= 1";
  if c.speed_spread < 1.0 then fail "speed_spread must be >= 1";
  if c.service_mean <= 0.0 then fail "service_mean must be positive";
  if c.ctrl_service < 0.0 then fail "ctrl_service must be non-negative";
  if c.network_delay < 0.0 then fail "network_delay must be non-negative";
  if c.net_jitter < 0.0 || c.net_jitter > c.network_delay then
    fail "net_jitter must be in [0, network_delay]";
  if not (c.net_loss >= 0.0 && c.net_loss <= 1.0) then fail "net_loss must be in [0, 1]";
  if c.rpc_timeout < 0.0 then fail "rpc_timeout must be non-negative";
  if c.max_retries < 0 then fail "max_retries must be non-negative";
  if c.retry_backoff < 1.0 then fail "retry_backoff must be >= 1";
  if c.queue_capacity < 1 then fail "queue_capacity must be >= 1";
  if c.load_window <= 0.0 then fail "load_window must be positive";
  if not (c.high_water > 0.0 && c.high_water <= 1.0) then fail "high_water must be in (0, 1]";
  if c.high_water_factor < 0.0 then fail "high_water_factor must be non-negative";
  if not (c.min_delta > 0.0 && c.min_delta <= 1.0) then fail "min_delta must be in (0, 1]";
  if c.r_fact < 0.0 then fail "r_fact must be non-negative";
  if c.r_map < 1 then fail "r_map must be >= 1";
  if c.cache_slots < 0 then fail "cache_slots must be non-negative";
  if c.max_attempts < 1 then fail "max_attempts must be >= 1";
  if c.retry_delay < 0.0 then fail "retry_delay must be non-negative";
  if c.success_cooldown < 0.0 then fail "success_cooldown must be non-negative";
  if c.replica_idle_timeout <= 0.0 then fail "replica_idle_timeout must be positive";
  if c.eviction_scan_period <= 0.0 then fail "eviction_scan_period must be positive";
  if c.hop_budget_slack < 0 then fail "hop_budget_slack must be non-negative";
  if c.bootstrap_peers < 0 then fail "bootstrap_peers must be non-negative";
  if c.max_remote_digests < 0 then fail "max_remote_digests must be non-negative";
  if c.data_copies < 1 then fail "data_copies must be >= 1";
  if c.data_service_mean <= 0.0 then fail "data_service_mean must be positive";
  if c.audit_every < 1 then fail "audit_every must be >= 1";
  if c.engine_domains < 1 then fail "engine_domains must be >= 1"

let scaled c ~factor =
  if factor <= 0.0 then invalid_arg "Config.scaled: factor must be positive";
  { c with num_servers = max 2 (int_of_float (float_of_int c.num_servers *. factor)) }
