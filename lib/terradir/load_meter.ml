(* Backed by a single unboxed [floatarray] rather than a record: the old
   mixed record (float options next to mutable floats) boxed every float
   field, so each begin_busy/end_busy — once per message per server —
   allocated and dragged the write barrier.  Cells 5 and 6 encode their
   option as NaN-for-None; all other values are ordinary finite floats,
   so the encoding is unambiguous. *)

type t = floatarray

(* Cell layout. *)
let i_window = 0
let i_window_start = 1
let i_busy_in_window = 2
let i_last_window_load = 3
let i_prev_window_load = 4
let i_adjustment = 5 (* NaN = none *)
let i_busy_since = 6 (* NaN = none *)
let i_total_busy = 7
let i_last_event = 8
let cells = 9

let get = Float.Array.get
let set = Float.Array.set

let create ~window =
  if window <= 0.0 then invalid_arg "Load_meter.create: window must be positive";
  let t = Float.Array.make cells 0.0 in
  set t i_window window;
  set t i_adjustment Float.nan;
  set t i_busy_since Float.nan;
  t

let window t = get t i_window

(* Roll completed windows up to [now].  Busy intervals spanning a boundary
   are split at the boundary. *)
let advance t now =
  let w = get t i_window in
  while now >= get t i_window_start +. w do
    let boundary = get t i_window_start +. w in
    let busy_since = get t i_busy_since in
    if not (Float.is_nan busy_since) then begin
      set t i_busy_in_window (get t i_busy_in_window +. (boundary -. busy_since));
      set t i_total_busy (get t i_total_busy +. (boundary -. busy_since));
      set t i_busy_since boundary
    end;
    set t i_prev_window_load (get t i_last_window_load);
    set t i_last_window_load (Float.min 1.0 (get t i_busy_in_window /. w));
    set t i_busy_in_window 0.0;
    set t i_window_start boundary;
    (* A completed measurement supersedes the hysteresis adjustment. *)
    set t i_adjustment Float.nan
  done

let check_time t now op =
  if now < get t i_last_event then invalid_arg ("Load_meter." ^ op ^ ": time regressed");
  set t i_last_event now

let begin_busy t now =
  check_time t now "begin_busy";
  advance t now;
  if not (Float.is_nan (get t i_busy_since)) then invalid_arg "Load_meter.begin_busy: already busy";
  set t i_busy_since now

let end_busy t now =
  check_time t now "end_busy";
  advance t now;
  let busy_since = get t i_busy_since in
  if Float.is_nan busy_since then invalid_arg "Load_meter.end_busy: not busy";
  set t i_busy_in_window (get t i_busy_in_window +. (now -. busy_since));
  set t i_total_busy (get t i_total_busy +. (now -. busy_since));
  set t i_busy_since Float.nan

let is_busy t = not (Float.is_nan (get t i_busy_since))

let raw_load t now =
  advance t now;
  get t i_last_window_load

let load t now =
  advance t now;
  let a = get t i_adjustment in
  if Float.is_nan a then get t i_last_window_load else a

let sustained_load t now =
  advance t now;
  let a = get t i_adjustment in
  if Float.is_nan a then Float.min (get t i_last_window_load) (get t i_prev_window_load) else a

let set_adjustment t v = set t i_adjustment (Float.max 0.0 (Float.min 1.0 v))

let busy_fraction_so_far t now =
  advance t now;
  let busy_since = get t i_busy_since in
  let live = if Float.is_nan busy_since then 0.0 else now -. busy_since in
  let elapsed = now -. get t i_window_start in
  if elapsed <= 0.0 then 0.0
  else Float.min 1.0 ((get t i_busy_in_window +. live) /. elapsed)

let total_busy_time t now =
  let busy_since = get t i_busy_since in
  let live = if Float.is_nan busy_since then 0.0 else now -. busy_since in
  get t i_total_busy +. live
