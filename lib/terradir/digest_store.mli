(** Inverse-mapping digest management (§3.6).

    Each server maintains (a) the Bloom digest of the node names {e it}
    hosts, rebuilt (with a bumped version) whenever its hosted set changes,
    and (b) a bounded LRU collection of other servers' digests learned from
    piggybacked traffic.  Remote digests answer "does server [s] host node
    [v]?" with one-sided error, enabling shortcut discovery (§3.6.1) and map
    pruning (§3.6.2). *)

type t

val create : max_remote:int -> unit -> t

val local_version : t -> int
(** Starts at 0 with an empty digest; bumped by every {!rebuild_local}. *)

val local : t -> Terradir_bloom.Bloom.t

val rebuild_local : t -> hosted:int list -> unit
(** Recompute the local digest over the hosted node ids. *)

val rebuild_local_from : t -> count:int -> iter:((int -> unit) -> unit) -> unit
(** {!rebuild_local} without materializing the hosted list: [iter] must
    produce exactly the hosted node ids ([count] of them — the filter is
    sized by it).  Order-independent, so a hash-table iteration is fine. *)

val record_remote : t -> server:int -> version:int -> Terradir_bloom.Bloom.t -> unit
(** Keep the digest if its version is newer than what is stored. *)

val remote_version : t -> server:int -> int option

val test_remote : t -> server:int -> node:int -> bool option
(** [Some answer] from server [server]'s stored digest; [None] when no
    digest for that server is held. *)

val fold_remote : t -> init:'a -> f:('a -> int -> Terradir_bloom.Bloom.t -> 'a) -> 'a
(** Fold over (server, digest) pairs currently held. *)

val fold_remote_until :
  t ->
  init:'a ->
  f:('a -> int -> Terradir_bloom.Bloom.t -> ('a, 'a) Either.t) ->
  'a
(** Like {!fold_remote} in MRU-first order, but [f] answering [Right acc]
    stops the walk.  The routing shortcut consults only a short MRU prefix
    on every decision; walking the whole store there dominated large
    deployments' event cost. *)

val remote_count : t -> int

val last_version_sent : t -> peer:int -> int
(** Highest local version already piggybacked to [peer] (0 if never). *)

val note_version_sent : t -> peer:int -> int -> unit
