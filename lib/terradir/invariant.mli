(** Runtime invariant auditor for the soft-state replication protocol.

    Asserts, per server, the properties the paper's protocol maintains by
    construction — statically checkable nowhere, so they are audited
    against the live state at a configurable event cadence and at the end
    of every [Cluster.run_until]:

    - {b replica-bound} (§3.4): replicas hosted ≤ ⌊r_fact × nodes owned⌋;
    - {b map-bound} (§3.7): every node map — hosted, neighbor context, or
      cached — holds at most [r_map] entries;
    - {b self-missing}: an {e owned} node's map lists the owning server —
      the self entry carries the owner flag, which every merge and
      truncation pins.  A replica's non-owner self entry enjoys no such
      pinning (a full map keeps owners first, so small [r_map] can truncate
      it), and the converse — a neighbor/cached map for a non-hosted node
      listing this server — is tolerated stale state: bootstrap seeds
      contexts from ground-truth ownership and replica eviction leaves the
      holder's own stale entry behind; routing excludes self as a target
      and the entry decays through the stale-forward machinery;
    - {b stamp-future}: no map entry is stamped later than the current
      simulation time (causality of creation/refresh stamps);
    - {b cache-bound}: LRU occupancy within [cache_slots];
    - {b load-range}: measured busy fractions lie in [0, 1];
    - {b digest-stale} (§3.6): the local Bloom digest has no false
      negatives over the hosted set;
    - {b queue-bound} (§4.1): query queues within [queue_capacity];
    - {b count-mismatch} / {b context-missing} / {b context-refs}: cached
      counters and refcounted neighbor contexts tie exactly to the hosted
      table;
    - {b owner-missing} (cluster-wide): every node's ground-truth owner
      hosts it as owned;
    - {b clock-regression} / {b event-queue-order} (engine): simulation
      time is monotone and no pending event is in the past.

    Violations are {e collected}, not asserted: a mid-run audit pass never
    aborts the simulation.  At the end of a [Cluster.run_until] the
    collected findings are delivered — by default ({!set_mode} [`Raise])
    as an {!Audit_failure}, which is how the test suite runs under
    TERRADIR_AUDIT=1; the CLI's [--audit] switches to [`Collect], which
    accumulates printable reports instead ({!collected_reports}).

    Audit passes are observationally neutral: no RNG draws, no event
    scheduling.  (Reading a load meter rolls its windows to the audit
    time — the identical mutation the next protocol read would perform.) *)

open Types

type violation = {
  v_time : float;  (** simulation time of the audit pass that caught it *)
  v_server : server_id option;  (** [None] for cluster-wide properties *)
  v_rule : string;  (** rule id from the catalogue above *)
  v_detail : string;
}

type t
(** A violation collector: one per audited cluster. *)

exception Audit_failure of string
(** Raised by {!deliver} in [`Raise] mode; the payload is {!report}. *)

val create : unit -> t

val check_server : t -> now:float -> Server.t -> unit
(** One audit pass over a single server's state. *)

val check_cluster :
  t ->
  now:float ->
  next_event:float option ->
  servers:Server.t array ->
  owner_of:server_id array ->
  unit
(** One audit pass over the whole deployment: engine-time sanity, every
    server, and cross-server ownership placement.  [next_event] is
    [Engine.next_time] at the moment of the pass. *)

val violations : t -> violation list
(** Collected violations, oldest first (at most 200 are kept; the total
    keeps counting). *)

val total_violations : t -> int

val passes : t -> int
(** Completed {!check_cluster} passes. *)

val describe : violation -> string

val report : t -> string
(** Human-readable summary of everything collected. *)

val deliver : t -> label:string -> unit
(** End-of-run delivery: no-op if nothing was collected; otherwise raises
    {!Audit_failure} ([`Raise] mode) or stashes the report for
    {!collected_reports} ([`Collect] mode).  Either way the collector is
    reset, so consecutive run segments deliver only their own findings. *)

(** {2 Enabling} *)

val enabled : Config.t -> bool
(** True when [config.audit], {!force_enable} or the TERRADIR_AUDIT
    environment variable (any value but "" and "0") asks for auditing. *)

val force_enable : unit -> unit
(** Process-wide switch used by the CLI's [--audit]; call before creating
    clusters (and before any worker domain spawns). *)

val set_mode : [ `Raise | `Collect ] -> unit

val collected_reports : unit -> string list
(** Reports stashed by [`Collect]-mode delivery, in delivery order;
    thread-safe across worker domains. *)

val assert_server : Server.t -> now:float -> unit
(** Single-server audit that raises [Failure] on the first violation —
    the test-friendly replacement for the old [Server.check_invariants]. *)
