module Obs = Terradir_obs.Obs
module Event = Terradir_obs.Event

let max_shed_nodes = 32

let effective_high_water (s : Server.t) ~now =
  let floor_threshold = s.config.Config.high_water in
  let factor = s.config.Config.high_water_factor in
  if factor <= 0.0 then floor_threshold
  else begin
    (* Believed overall utilization: peer loads learned in-band (their sum
       is maintained incrementally — this check runs after every processed
       message, so a fold here would cost O(peers) per event), plus own
       last measurement.  Raw (not adjusted) own load: the threshold should
       track reality, not the post-shed hysteresis value. *)
    let sum = Load_meter.raw_load s.load now +. s.Server.peer_load_sum in
    let n = 1 + Hashtbl.length s.Server.known_loads in
    let mean = sum /. float_of_int n in
    Float.max floor_threshold (Float.min 0.95 (factor *. mean))
  end

(* The trigger uses the sustained (two-window minimum) load: single-window
   excursions at moderate utilization would otherwise fire sessions
   spuriously and the system would never quiesce. *)
let should_start (s : Server.t) ~now =
  let go =
    s.config.Config.features.Config.replication
    && s.session = None
    && now >= s.session_backoff_until
    && Hashtbl.length s.hosted > 0
    && Load_meter.sustained_load s.load now >= s.config.Config.high_water (* cheap floor *)
    && Load_meter.sustained_load s.load now >= effective_high_water s ~now
  in
  if go && Obs.counters_on s.Server.obs then
    (* lint: obs-in-hot-path fires at most once per session; counters level *)
    Obs.record s.Server.obs ~server:s.Server.id
      (Event.Session_trigger { load = Load_meter.sustained_load s.load now });
  go

let shed_target ~l_source ~l_dest =
  if l_source <= 0.0 then 0.0 else Float.max 0.0 ((l_source -. l_dest) /. (2.0 *. l_source))

let acceptable ~config ~l_source ~l_dest = l_source -. l_dest >= config.Config.min_delta

let select_nodes (s : Server.t) ~l_source ~l_dest ~now =
  ignore now;
  let hosted = Server.hosted_nodes s in
  let ranked = Ranking.ranked_desc s.ranking ~among:hosted in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 ranked in
  if total <= 0.0 then []
  else begin
    let want = shed_target ~l_source ~l_dest *. total in
    let rec take acc weight_so_far count = function
      | [] -> List.rev acc
      | _ when count >= max_shed_nodes -> List.rev acc
      | (node, w) :: rest ->
        let acc = node :: acc and weight_so_far = weight_so_far +. w in
        if weight_so_far >= want then List.rev acc
        else take acc weight_so_far (count + 1) rest
    in
    take [] 0.0 0 ranked
  end

let adjusted_load ~l_source ~l_dest = (l_source +. l_dest) /. 2.0
