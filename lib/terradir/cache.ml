open Terradir_util
module Obs = Terradir_obs.Obs
module Event = Terradir_obs.Event

type t = {
  lru : Node_map.t Lru.t;
  r_map : int;
  rng : Splitmix.t;
  obs : Obs.t;
  owner : int;  (* server id the sink attributes hit/miss events to *)
  scratch : Node_map.scratch;  (* single-owner: the owning server's lane *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(obs = Obs.null) ?(owner = -1) ~slots ~r_map ~rng () =
  if r_map < 1 then invalid_arg "Cache.create: r_map must be >= 1";
  {
    lru = Lru.create ~capacity:slots;
    r_map;
    rng;
    obs;
    owner;
    scratch = Node_map.scratch ();
    hits = 0;
    misses = 0;
  }

let slots t = Lru.capacity t.lru

let length t = Lru.length t.lru

let insert t ~node map =
  if Node_map.is_empty map then ()
  else
    let merged =
      match Lru.peek t.lru node with
      | None -> Node_map.truncate ~max:t.r_map map
      | Some existing -> Node_map.merge ~scratch:t.scratch ~max:t.r_map t.rng existing map
    in
    Lru.put t.lru node merged

let count t ~node = function
  | Some _ as r ->
    t.hits <- t.hits + 1;
    (* lint: obs-in-hot-path per-lookup events only exist at the full level *)
    if Obs.full_on t.obs then Obs.record t.obs ~server:t.owner (Event.Cache_hit { node });
    r
  | None ->
    t.misses <- t.misses + 1;
    (* lint: obs-in-hot-path per-lookup events only exist at the full level *)
    if Obs.full_on t.obs then Obs.record t.obs ~server:t.owner (Event.Cache_miss { node });
    None

let use t ~node = count t ~node (Lru.find t.lru node)

let peek t ~node = count t ~node (Lru.peek t.lru node)

let remove t ~node = Lru.remove t.lru node

let update t ~node ~f =
  match Lru.peek t.lru node with
  | None -> ()
  | Some map ->
    let map' = f map in
    if Node_map.is_empty map' then Lru.remove t.lru node
    else
      (* Rewrite in place without promoting: Lru.put promotes, so go through
         peek/remove/put only when the value changed; promotion on rewrite is
         acceptable for pruning (it happens when the entry is in active use). *)
      Lru.put t.lru node map'

let iter t ~f = Lru.iter t.lru ~f

let hits t = t.hits

let misses t = t.misses

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let clear t = Lru.clear t.lru
