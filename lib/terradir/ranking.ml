type t = { weights : (int, float) Hashtbl.t }

let create () = { weights = Hashtbl.create 64 }

let weight t node = Option.value ~default:0.0 (Hashtbl.find_opt t.weights node)

let touch t node = Hashtbl.replace t.weights node (weight t node +. 1.0)

let seed t node w = Hashtbl.replace t.weights node (Float.max 0.0 w)

let decay t =
  let floor = 1.0 /. 64.0 in
  let dead = ref [] in
  (* lint: ordered independent per-key halving; the final table is the same in any visit order *)
  Hashtbl.iter
    (fun node w ->
      let w' = w /. 2.0 in
      if w' < floor then dead := node :: !dead else Hashtbl.replace t.weights node w')
    t.weights;
  List.iter (Hashtbl.remove t.weights) !dead

let remove t node = Hashtbl.remove t.weights node

let compare_desc (n1, w1) (n2, w2) =
  match Float.compare w2 w1 with 0 -> Int.compare n1 n2 | c -> c

let ranked_desc t ~among =
  List.sort compare_desc (List.map (fun n -> (n, weight t n)) among)

let ranked_asc t ~among = List.rev (ranked_desc t ~among)

let total_weight t ~among = List.fold_left (fun acc n -> acc +. weight t n) 0.0 among
