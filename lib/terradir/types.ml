(** Shared protocol types: identifiers, queries, and messages.

    Plain data shuttled between the routing, replication and cluster
    layers; see the interface for the full documentation. *)

type server_id = int

type node_id = int

(** Terminal outcome of a lookup, delivered to the issuer's callback. *)
type outcome =
  | Resolved of {
      latency : float;
      hops : int;
      map : Node_map.t;  (** the destination's map — the lookup result *)
      meta_version : int;  (** meta-data version at the resolving host *)
    }
  | Dropped of drop_reason

and drop_reason =
  | Queue_full  (** §4.1: arrivals beyond the request queue bound *)
  | Hop_budget  (** routing failed to converge (staleness/loops) *)
  | Dead_end  (** no forwarding candidate (e.g. all known hosts dead) *)
  | Server_dead  (** delivered to a failed server with no retry possible *)
  | Timed_out
      (** the per-request timer expired with no retransmissions left —
          some message of every attempt was silently lost in the network *)

(** In-flight lookup query state.  [target] is the node on whose behalf the
    query was last forwarded — the receiving server is expected (but, with
    soft state, not guaranteed) to host it.

    Every field is mutable because the record is {e pooled}: the cluster
    recycles retired records through per-lane free lists, so steady-state
    traffic allocates no query records.  The path rides in a fixed ring
    ([path_nodes]/[path_maps], newest at [path_head]) instead of a list —
    appending overwrites the oldest slot, reproducing the historical
    newest-first truncation without consing. *)
and query = {
  mutable qid : int;
  mutable src_server : server_id;
  mutable dst : node_id;
  mutable attempt : int;
      (** which transmission of the request this is (0 = original); the
          issuer discards outcomes of superseded attempts *)
  mutable born : float;  (** injection time of the {e original} attempt *)
  mutable hops : int;  (** network hops taken so far *)
  mutable target : node_id;
  path_nodes : int array;  (** ring of path node ids; length [path_store] *)
  path_maps : Node_map.t array;
      (** Path propagation (§2.4): the route so far as (node, map) slots
          parallel to [path_nodes], capped at [path_cap] in flight. *)
  mutable path_head : int;  (** ring index of the newest path entry *)
  mutable path_len : int;  (** live entries, newest-first from [path_head] *)
  mutable shortcut_hops : int;  (** hops chosen via a digest shortcut *)
  mutable best_dist : int;
      (** closest namespace distance to [dst] this query has ever reached;
          digest shortcuts must beat it, which makes shortcut chains
          strictly decreasing and immune to false-positive loops *)
  mutable stale_forwards : int;
      (** arrivals at a server that no longer hosted [target] — the routing
          inaccuracy measure of §4.4 *)
  mutable result_map : Node_map.t;  (** destination map captured at resolution *)
  mutable result_meta : int;
}
(** The issuer's callback lives with the cluster's per-request state (keyed
    by [qid]), not on the in-flight record: attempts are retransmitted and
    raced, but the request completes exactly once. *)

let path_cap = 32
(** Bound on propagated path length; real deployments cap piggyback size. *)

let path_store = path_cap + 1
(* One extra slot: resolution appends the destination's own entry without
   truncating (the historical list did the same), so the endpoint absorb
   can see path_cap + 1 entries. *)

let path_reset q =
  q.path_head <- 0;
  q.path_len <- 0

let path_append q node map =
  let h = q.path_head + 1 in
  let h = if h = path_store then 0 else h in
  q.path_head <- h;
  q.path_nodes.(h) <- node;
  q.path_maps.(h) <- map;
  if q.path_len < path_store then q.path_len <- q.path_len + 1

let path_truncate q = if q.path_len > path_cap then q.path_len <- path_cap

let path_iter q ~f =
  for i = 0 to q.path_len - 1 do
    let j = q.path_head - i in
    let j = if j < 0 then j + path_store else j in
    f q.path_nodes.(j) q.path_maps.(j)
  done

let path_scrub q =
  Array.fill q.path_maps 0 path_store Node_map.empty;
  path_reset q

let fresh_query () =
  {
    qid = 0;
    src_server = 0;
    dst = 0;
    attempt = 0;
    born = 0.0;
    hops = 0;
    target = 0;
    path_nodes = Array.make path_store 0;
    path_maps = Array.make path_store Node_map.empty;
    path_head = 0;
    path_len = 0;
    shortcut_hops = 0;
    best_dist = max_int;
    stale_forwards = 0;
    result_map = Node_map.empty;
    result_meta = 0;
  }

(** State shipped when a node is replicated: exactly the "Replicated" row of
    Table 1 — name (id), meta-data (version), map, and routing context. *)
type replica_payload = {
  rp_node : node_id;
  rp_meta_version : int;
  rp_map : Node_map.t;  (** map for the node itself, sender's view *)
  rp_context : (node_id * Node_map.t) list;  (** maps for each tree neighbor *)
  rp_weight_hint : float;  (** sender's demand weight, seeds receiver ranking *)
}

type payload =
  | Query of query
  | Query_reply of query  (** resolution notice, sent straight back to src *)
  | Load_probe of { session : int }
  | Load_reply of { session : int; load : float }
  | Replicate of { session : int; replicas : replica_payload list }
  | Data_request of { fetch_id : int; node : node_id; client : server_id }
      (** step two of the lookup-then-retrieve protocol (§2.1): fetch the
          node's data from one of its data holders *)
  | Data_reply of { fetch_id : int; node : node_id }

(** Every message piggybacks the sender's load and digest version; the full
    digest rides along when the sender believes the receiver's copy is
    stale (§6: in-band dissemination only).  Mutable for the same reason as
    [query]: messages are pooled, built only for deliveries the network
    actually makes. *)
type message = {
  mutable msg_from : server_id;
  mutable msg_load : float;
  mutable msg_digest_version : int;
  mutable msg_digest : Terradir_bloom.Bloom.t option;
  mutable msg_payload : payload;
}

let null_payload = Data_reply { fetch_id = -1; node = -1 }
(* Scrub value for pooled messages: an id no pending table ever contains,
   so even a bug that processed it would no-op. *)

let is_query_class = function
  | Query _ | Data_request _ -> true
  | Query_reply _ | Load_probe _ | Load_reply _ | Replicate _ | Data_reply _ -> false
