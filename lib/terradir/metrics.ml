open Terradir_util
module Hist = Terradir_obs.Hist

type t = {
  mutable injected : int;
  mutable resolved : int;
  mutable dropped_queue : int;
  mutable dropped_hops : int;
  mutable dropped_dead_end : int;
  mutable dropped_server_dead : int;
  mutable dropped_timeout : int;
  mutable net_lost : int;
  mutable net_blocked : int;
  mutable query_retransmits : int;
  mutable fetch_retransmits : int;
  mutable late_replies : int;
  mutable replicas_created : int;
  mutable replicas_evicted : int;
  mutable control_messages : int;
  mutable sessions_started : int;
  mutable sessions_aborted : int;
  mutable query_forwards : int;
  mutable shortcut_forwards : int;
  mutable stale_forwards : int;
  mutable data_requests : int;
  mutable data_completed : int;
  mutable data_dropped : int;
  latency : Stats.t;
  latency_hist : Hist.t;
  hops : Stats.t;
  hops_hist : Hist.t;
  data_latency : Stats.t;
  meta_lag : Stats.t;
  injected_ts : Timeseries.t;
  drops_ts : Timeseries.t;
  replicas_ts : Timeseries.t;
  load_mean_ts : Timeseries.t;
  load_max_ts : Timeseries.t;
}

let empty () =
  {
    injected = 0;
    resolved = 0;
    dropped_queue = 0;
    dropped_hops = 0;
    dropped_dead_end = 0;
    dropped_server_dead = 0;
    dropped_timeout = 0;
    net_lost = 0;
    net_blocked = 0;
    query_retransmits = 0;
    fetch_retransmits = 0;
    late_replies = 0;
    replicas_created = 0;
    replicas_evicted = 0;
    control_messages = 0;
    sessions_started = 0;
    sessions_aborted = 0;
    query_forwards = 0;
    shortcut_forwards = 0;
    stale_forwards = 0;
    data_requests = 0;
    data_completed = 0;
    data_dropped = 0;
    latency = Stats.create ();
    latency_hist = Hist.create ();
    hops = Stats.create ();
    hops_hist = Hist.create ();
    data_latency = Stats.create ();
    meta_lag = Stats.create ();
    injected_ts = Timeseries.create ();
    drops_ts = Timeseries.create ();
    replicas_ts = Timeseries.create ();
    load_mean_ts = Timeseries.create ();
    load_max_ts = Timeseries.create ();
  }

(* [rng] is accepted (and split off by the caller) for compatibility: the
   reservoir sampler it used to feed is gone — log-bucketed histograms
   need no randomness — but dropping the split here would shift every
   downstream draw and invalidate the golden CSVs.  The cluster splits
   exactly one stream off regardless of how many per-lane parts it
   creates, for the same reason. *)
let create ~rng =
  ignore (rng : Splitmix.t);
  empty ()

let dropped_total t =
  t.dropped_queue + t.dropped_hops + t.dropped_dead_end + t.dropped_server_dead
  + t.dropped_timeout

let drop t reason ~now =
  (match reason with
  | Types.Queue_full -> t.dropped_queue <- t.dropped_queue + 1
  | Types.Hop_budget -> t.dropped_hops <- t.dropped_hops + 1
  | Types.Dead_end -> t.dropped_dead_end <- t.dropped_dead_end + 1
  | Types.Server_dead -> t.dropped_server_dead <- t.dropped_server_dead + 1
  | Types.Timed_out -> t.dropped_timeout <- t.dropped_timeout + 1);
  Timeseries.incr t.drops_ts now

(* The latency/hops [Stats] live per-server in the cluster (so a
   multi-domain run can fold them back in a shard-count-independent
   order); [resolve] only maintains the lane-local counter and the
   integer histogram state.  [merged] reunites the two. *)
let resolve t ~latency ~hops ~now =
  ignore now;
  t.resolved <- t.resolved + 1;
  Hist.add t.latency_hist latency;
  Hist.add t.hops_hist (float_of_int hops)

let replica_created t ~now =
  t.replicas_created <- t.replicas_created + 1;
  Timeseries.incr t.replicas_ts now

(* Combine per-lane parts into the single [t] a one-domain run of the
   same schedule would report.  Counters and histogram bucket counts are
   integers (exact in any order); time-series bins carry +1.0 increments
   or single-writer samples (see [Timeseries.merge_into]); the float
   distributions come in pre-folded from the cluster's per-server arrays
   (server-id order — independent of the shard count), and the
   histograms' float moments are re-derived from them because both saw
   the identical value stream. *)
let merged ~parts ~latency ~hops ~data_latency ~meta_lag =
  let out = { (empty ()) with latency; hops; data_latency; meta_lag } in
  List.iter
    (fun p ->
      out.injected <- out.injected + p.injected;
      out.resolved <- out.resolved + p.resolved;
      out.dropped_queue <- out.dropped_queue + p.dropped_queue;
      out.dropped_hops <- out.dropped_hops + p.dropped_hops;
      out.dropped_dead_end <- out.dropped_dead_end + p.dropped_dead_end;
      out.dropped_server_dead <- out.dropped_server_dead + p.dropped_server_dead;
      out.dropped_timeout <- out.dropped_timeout + p.dropped_timeout;
      out.net_lost <- out.net_lost + p.net_lost;
      out.net_blocked <- out.net_blocked + p.net_blocked;
      out.query_retransmits <- out.query_retransmits + p.query_retransmits;
      out.fetch_retransmits <- out.fetch_retransmits + p.fetch_retransmits;
      out.late_replies <- out.late_replies + p.late_replies;
      out.replicas_created <- out.replicas_created + p.replicas_created;
      out.replicas_evicted <- out.replicas_evicted + p.replicas_evicted;
      out.control_messages <- out.control_messages + p.control_messages;
      out.sessions_started <- out.sessions_started + p.sessions_started;
      out.sessions_aborted <- out.sessions_aborted + p.sessions_aborted;
      out.query_forwards <- out.query_forwards + p.query_forwards;
      out.shortcut_forwards <- out.shortcut_forwards + p.shortcut_forwards;
      out.stale_forwards <- out.stale_forwards + p.stale_forwards;
      out.data_requests <- out.data_requests + p.data_requests;
      out.data_completed <- out.data_completed + p.data_completed;
      out.data_dropped <- out.data_dropped + p.data_dropped;
      Hist.absorb ~into:out.latency_hist p.latency_hist;
      Hist.absorb ~into:out.hops_hist p.hops_hist;
      Timeseries.merge_into ~into:out.injected_ts p.injected_ts;
      Timeseries.merge_into ~into:out.drops_ts p.drops_ts;
      Timeseries.merge_into ~into:out.replicas_ts p.replicas_ts;
      Timeseries.merge_into ~into:out.load_mean_ts p.load_mean_ts;
      Timeseries.merge_into ~into:out.load_max_ts p.load_max_ts)
    parts;
  if Stats.count latency > 0 then
    Hist.set_moments out.latency_hist ~sum:(Stats.total latency)
      ~vmin:(Stats.min_value latency) ~vmax:(Stats.max_value latency);
  if Stats.count hops > 0 then
    Hist.set_moments out.hops_hist ~sum:(Stats.total hops) ~vmin:(Stats.min_value hops)
      ~vmax:(Stats.max_value hops);
  out

let drop_fraction t =
  if t.injected = 0 then 0.0 else float_of_int (dropped_total t) /. float_of_int t.injected

let unresolved t = t.injected - t.resolved - dropped_total t

(* ---- the counter field-spec ----

   Single source of truth for every cumulative counter: (csv column,
   human label, getter).  The CSV exporter and the terminal summary both
   derive from these lists, so a counter added to the struct but not the
   spec shows up nowhere — and the spec-coverage test in test_obs pins
   the column count, so extending [t] forces extending this table. *)

let lifecycle_fields =
  [
    ("injected", "queries injected", fun m -> m.injected);
    ("resolved", "queries resolved", fun m -> m.resolved);
    ("dropped_queue", "dropped (queue full)", fun m -> m.dropped_queue);
    ("dropped_hops", "dropped (hop budget)", fun m -> m.dropped_hops);
    ("dropped_dead_end", "dropped (dead end)", fun m -> m.dropped_dead_end);
    ("dropped_server_dead", "dropped (server dead)", fun m -> m.dropped_server_dead);
  ]

let protocol_fields =
  [
    ("replicas_created", "replicas created", fun m -> m.replicas_created);
    ("replicas_evicted", "replicas evicted", fun m -> m.replicas_evicted);
    ("sessions_started", "replication sessions", fun m -> m.sessions_started);
    ("sessions_aborted", "sessions aborted", fun m -> m.sessions_aborted);
    ("control_messages", "control messages", fun m -> m.control_messages);
    ("query_forwards", "query forwards", fun m -> m.query_forwards);
    ("shortcut_forwards", "digest shortcuts", fun m -> m.shortcut_forwards);
    ("stale_forwards", "stale forwards", fun m -> m.stale_forwards);
  ]

let net_fields =
  [
    ("dropped_timeout", "dropped (timed out)", fun m -> m.dropped_timeout);
    ("net_lost", "messages lost (network)", fun m -> m.net_lost);
    ("net_blocked", "messages blocked (partition)", fun m -> m.net_blocked);
    ("query_retransmits", "query retransmits", fun m -> m.query_retransmits);
    ("fetch_retransmits", "fetch retransmits", fun m -> m.fetch_retransmits);
    ("late_replies", "late replies discarded", fun m -> m.late_replies);
  ]

let data_fields =
  [
    ("data_requests", "data fetches", fun m -> m.data_requests);
    ("data_completed", "data fetched", fun m -> m.data_completed);
    ("data_dropped", "data dropped", fun m -> m.data_dropped);
  ]

let counter_fields =
  List.map
    (fun (name, _, get) -> (name, get))
    (lifecycle_fields @ protocol_fields @ net_fields @ data_fields)

let csv_header = List.map fst counter_fields

let csv_row t = List.map (fun (_, get) -> string_of_int (get t)) counter_fields

let summary_rows t =
  let f = Printf.sprintf in
  let ints fields = List.map (fun (_, label, get) -> (label, f "%d" (get t))) fields in
  ints lifecycle_fields
  @ [
      ("drop fraction", f "%.4f" (drop_fraction t));
      ("mean latency (s)", f "%.4f" (Stats.mean t.latency));
      ("latency p50 (s)", f "%.4f" (Hist.percentile t.latency_hist 0.5));
      ("latency p95 (s)", f "%.4f" (Hist.percentile t.latency_hist 0.95));
      ("latency p99 (s)", f "%.4f" (Hist.percentile t.latency_hist 0.99));
      ("latency max (s)", f "%.4f" (Hist.max_value t.latency_hist));
      ("mean hops", f "%.2f" (Stats.mean t.hops));
      ("hops p99", f "%.0f" (Hist.percentile t.hops_hist 0.99));
    ]
  @ ints protocol_fields
  @ (if
       t.net_lost + t.net_blocked + t.query_retransmits + t.fetch_retransmits
       + t.dropped_timeout + t.late_replies
       = 0
     then []
     else ints net_fields)
  @
  if t.data_requests = 0 then []
  else ints data_fields @ [ ("mean fetch latency (s)", f "%.4f" (Stats.mean t.data_latency)) ]
