open Terradir_util

type t = {
  mutable injected : int;
  mutable resolved : int;
  mutable dropped_queue : int;
  mutable dropped_hops : int;
  mutable dropped_dead_end : int;
  mutable dropped_server_dead : int;
  mutable dropped_timeout : int;
  mutable net_lost : int;
  mutable net_blocked : int;
  mutable query_retransmits : int;
  mutable fetch_retransmits : int;
  mutable late_replies : int;
  mutable replicas_created : int;
  mutable replicas_evicted : int;
  mutable control_messages : int;
  mutable sessions_started : int;
  mutable sessions_aborted : int;
  mutable query_forwards : int;
  mutable shortcut_forwards : int;
  mutable stale_forwards : int;
  mutable data_requests : int;
  mutable data_completed : int;
  mutable data_dropped : int;
  latency : Stats.t;
  latency_sample : Stats.Reservoir.t;
  hops : Stats.t;
  data_latency : Stats.t;
  meta_lag : Stats.t;
  injected_ts : Timeseries.t;
  drops_ts : Timeseries.t;
  replicas_ts : Timeseries.t;
  load_mean_ts : Timeseries.t;
  load_max_ts : Timeseries.t;
}

let create ~rng =
  {
    injected = 0;
    resolved = 0;
    dropped_queue = 0;
    dropped_hops = 0;
    dropped_dead_end = 0;
    dropped_server_dead = 0;
    dropped_timeout = 0;
    net_lost = 0;
    net_blocked = 0;
    query_retransmits = 0;
    fetch_retransmits = 0;
    late_replies = 0;
    replicas_created = 0;
    replicas_evicted = 0;
    control_messages = 0;
    sessions_started = 0;
    sessions_aborted = 0;
    query_forwards = 0;
    shortcut_forwards = 0;
    stale_forwards = 0;
    data_requests = 0;
    data_completed = 0;
    data_dropped = 0;
    latency = Stats.create ();
    latency_sample = Stats.Reservoir.create ~capacity:8192 rng;
    hops = Stats.create ();
    data_latency = Stats.create ();
    meta_lag = Stats.create ();
    injected_ts = Timeseries.create ();
    drops_ts = Timeseries.create ();
    replicas_ts = Timeseries.create ();
    load_mean_ts = Timeseries.create ();
    load_max_ts = Timeseries.create ();
  }

let dropped_total t =
  t.dropped_queue + t.dropped_hops + t.dropped_dead_end + t.dropped_server_dead
  + t.dropped_timeout

let drop t reason ~now =
  (match reason with
  | Types.Queue_full -> t.dropped_queue <- t.dropped_queue + 1
  | Types.Hop_budget -> t.dropped_hops <- t.dropped_hops + 1
  | Types.Dead_end -> t.dropped_dead_end <- t.dropped_dead_end + 1
  | Types.Server_dead -> t.dropped_server_dead <- t.dropped_server_dead + 1
  | Types.Timed_out -> t.dropped_timeout <- t.dropped_timeout + 1);
  Timeseries.incr t.drops_ts now

let resolve t ~latency ~hops ~now =
  ignore now;
  t.resolved <- t.resolved + 1;
  Stats.add t.latency latency;
  Stats.Reservoir.add t.latency_sample latency;
  Stats.add t.hops (float_of_int hops)

let replica_created t ~now =
  t.replicas_created <- t.replicas_created + 1;
  Timeseries.incr t.replicas_ts now

let drop_fraction t =
  if t.injected = 0 then 0.0 else float_of_int (dropped_total t) /. float_of_int t.injected

let summary_rows t =
  let f = Printf.sprintf in
  [
    ("queries injected", f "%d" t.injected);
    ("queries resolved", f "%d" t.resolved);
    ("dropped (queue full)", f "%d" t.dropped_queue);
    ("dropped (hop budget)", f "%d" t.dropped_hops);
    ("dropped (dead end)", f "%d" t.dropped_dead_end);
    ("dropped (server dead)", f "%d" t.dropped_server_dead);
    ("drop fraction", f "%.4f" (drop_fraction t));
    ("mean latency (s)", f "%.4f" (Stats.mean t.latency));
    ("mean hops", f "%.2f" (Stats.mean t.hops));
    ("replicas created", f "%d" t.replicas_created);
    ("replicas evicted", f "%d" t.replicas_evicted);
    ("replication sessions", f "%d" t.sessions_started);
    ("sessions aborted", f "%d" t.sessions_aborted);
    ("control messages", f "%d" t.control_messages);
    ("query forwards", f "%d" t.query_forwards);
    ("digest shortcuts", f "%d" t.shortcut_forwards);
    ("stale forwards", f "%d" t.stale_forwards);
  ]
  @ (if
       t.net_lost + t.net_blocked + t.query_retransmits + t.fetch_retransmits
       + t.dropped_timeout + t.late_replies
       = 0
     then []
     else
       [
         ("dropped (timed out)", f "%d" t.dropped_timeout);
         ("messages lost (network)", f "%d" t.net_lost);
         ("messages blocked (partition)", f "%d" t.net_blocked);
         ("query retransmits", f "%d" t.query_retransmits);
         ("fetch retransmits", f "%d" t.fetch_retransmits);
         ("late replies discarded", f "%d" t.late_replies);
       ])
  @
  if t.data_requests = 0 then []
  else
    [
      ("data fetches", f "%d" t.data_requests);
      ("data fetched", f "%d" t.data_completed);
      ("data dropped", f "%d" t.data_dropped);
      ("mean fetch latency (s)", f "%.4f" (Stats.mean t.data_latency));
    ]
