open Types
module Tree = Terradir_namespace.Tree
module Bloom = Terradir_bloom.Bloom

(* The runtime invariant auditor.

   Collects violations of the paper's protocol invariants (the catalogue in
   the .mli) from periodic mid-run passes and an end-of-run pass, instead of
   asserting in the middle of a simulation: a violated invariant should
   produce a report naming every broken property, not die on the first.

   The checks are read-only with one deliberate exception: reading a load
   meter rolls its windows forward to the audit time, which is exactly what
   the next protocol read would have done at a later-or-equal time — audit
   passes never perturb simulation results.  Nothing here draws randomness
   or schedules events. *)

type violation = {
  v_time : float;
  v_server : server_id option;  (** [None] for cluster-wide properties *)
  v_rule : string;
  v_detail : string;
}

type t = {
  mutable kept : violation list;  (** newest first, at most [max_kept] *)
  mutable kept_count : int;
  mutable total : int;
  mutable passes : int;
  mutable last_clock : float;
}

let max_kept = 200

exception Audit_failure of string

let create () =
  { kept = []; kept_count = 0; total = 0; passes = 0; last_clock = neg_infinity }

let add t ~now ?server rule detail =
  t.total <- t.total + 1;
  if t.kept_count < max_kept then begin
    t.kept <- { v_time = now; v_server = server; v_rule = rule; v_detail = detail } :: t.kept;
    t.kept_count <- t.kept_count + 1
  end

let violations t = List.rev t.kept

let total_violations t = t.total

let passes t = t.passes

let describe v =
  let where = match v.v_server with Some s -> Printf.sprintf "server %d" s | None -> "cluster" in
  Printf.sprintf "t=%.3f %s [%s] %s" v.v_time where v.v_rule v.v_detail

let report t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "audit: %d violation(s) over %d pass(es)\n" t.total t.passes);
  List.iter
    (fun v ->
      Buffer.add_string b (describe v);
      Buffer.add_char b '\n')
    (violations t);
  if t.total > t.kept_count then
    Buffer.add_string b (Printf.sprintf "... and %d more (first %d kept)\n" (t.total - t.kept_count) max_kept);
  Buffer.contents b

(* ---- enabling ---- *)

(* [`Collect] is set (before any worker domain spawns) by the CLI's --audit:
   end-of-run violations accumulate here for a final printed report instead
   of raising.  The default [`Raise] is what the test suite runs under. *)
let mode : [ `Raise | `Collect ] ref = ref `Raise (* race: bare-shared-mutable single-writer: the CLI sets --audit mode before any domain spawns *)

let set_mode m = mode := m

(* Set alongside [`Collect] by --audit so auditing turns on without
   touching the environment; read (never written) from worker domains. *)
let forced = ref false (* race: bare-shared-mutable single-writer: set by --audit before any domain spawns, workers only read *)

let force_enable () = forced := true

let env_enabled () =
  match Sys.getenv_opt "TERRADIR_AUDIT" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let enabled (config : Config.t) = config.Config.audit || !forced || env_enabled ()

let collector_mutex = Mutex.create ()

let collected_reports_rev : string list ref = ref []

let collect_report r =
  Mutex.lock collector_mutex;
  collected_reports_rev := r :: !collected_reports_rev;
  Mutex.unlock collector_mutex

let collected_reports () =
  Mutex.lock collector_mutex;
  let r = List.rev !collected_reports_rev in
  Mutex.unlock collector_mutex;
  r

(* Raise or stash this auditor's findings; called at the end of every
   [Cluster.run_until].  Resets the collected state either way so back-to-
   back run segments do not re-deliver old findings. *)
let deliver t ~label =
  if t.total > 0 then begin
    let r = Printf.sprintf "%s\n%s" label (report t) in
    t.kept <- [];
    t.kept_count <- 0;
    t.total <- 0;
    match !mode with
    | `Raise -> raise (Audit_failure r)
    | `Collect -> collect_report r
  end

(* ---- the checks ---- *)

let check_map t ~now ~server ~r_map ~what node map =
  if Node_map.size map > r_map then
    add t ~now ~server "map-bound"
      (Printf.sprintf "%s map for node %d has %d entries > r_map=%d" what node
         (Node_map.size map) r_map);
  (* Causality: an entry's stamp records when it was created/refreshed, so
     no entry may be stamped in the simulation's future. *)
  List.iter
    (fun (e : Node_map.entry) ->
      if e.Node_map.stamp > now then
        add t ~now ~server "stamp-future"
          (Printf.sprintf "%s map for node %d stamps server %d at %g > now %g" what node
             e.Node_map.server e.Node_map.stamp now))
    (Node_map.entries map)

(* Every per-server invariant from the catalogue.  The hashtable walks are
   order-insensitive: each key is checked independently and counters are
   commutative sums. *)
let check_server t ~now (s : Server.t) =
  let server = s.Server.id in
  let config = s.Server.config in
  let r_map = config.Config.r_map in
  let owned = ref 0 and replicas = ref 0 in
  (* lint: ordered independent per-node checks and commutative counts; visit order immaterial *)
  Hashtbl.iter
    (fun node (h : Server.hosted) ->
      (match h.Server.h_kind with
      | Server.Owned -> incr owned
      | Server.Replicated -> incr replicas);
      check_map t ~now ~server ~r_map ~what:"hosted" node h.Server.h_map;
      (* Self-presence holds for every hosted node: owned self entries
         carry the owner flag (pinned through every merge/truncation), and
         replica self entries go through [Node_map.add_pinned], which
         survives truncation by displacing the lowest-priority non-owner.
         The one remaining exception: owners alone fill the map (r_map
         owner entries) — pinning never displaces an owner, so a replica's
         non-owner self entry genuinely cannot fit. *)
      (if not (Node_map.mem h.Server.h_map server) then
         let owners_fill_map =
           Node_map.size h.Server.h_map >= r_map
           && List.for_all
                (fun (e : Node_map.entry) -> e.Node_map.is_owner)
                (Node_map.entries h.Server.h_map)
         in
         if h.Server.h_kind = Server.Owned || not owners_fill_map then
           add t ~now ~server "self-missing"
             (Printf.sprintf "%s node %d's map does not list this server"
                (match h.Server.h_kind with Server.Owned -> "owned" | Server.Replicated -> "replica")
                node));
      List.iter
        (fun nb ->
          if (not (Hashtbl.mem s.Server.neighbor_maps nb)) && not (Server.hosts s nb) then
            add t ~now ~server "context-missing"
              (Printf.sprintf "hosted node %d lacks context for tree-neighbor %d" node nb))
        (Tree.neighbors s.Server.tree node);
      if not (Bloom.mem (Digest_store.local s.Server.digests) node) then
        add t ~now ~server "digest-stale"
          (Printf.sprintf "local digest denies hosted node %d (Bloom false negative)" node))
    s.Server.hosted;
  if !owned <> s.Server.owned_count then
    add t ~now ~server "count-mismatch"
      (Printf.sprintf "owned_count=%d but %d owned nodes hosted" s.Server.owned_count !owned);
  if !replicas <> s.Server.replica_count then
    add t ~now ~server "count-mismatch"
      (Printf.sprintf "replica_count=%d but %d replicas hosted" s.Server.replica_count !replicas);
  (* §3.4: replicas hosted never exceed r_fact × nodes owned. *)
  let bound = int_of_float (config.Config.r_fact *. float_of_int s.Server.owned_count) in
  if s.Server.replica_count > bound then
    add t ~now ~server "replica-bound"
      (Printf.sprintf "%d replicas > floor(r_fact=%.2f x %d owned) = %d" s.Server.replica_count
         config.Config.r_fact s.Server.owned_count bound);
  (* Neighbor contexts: bounded maps and refcounts that tie exactly to the
     hosted set.  Note a context map for a non-hosted node MAY list this
     server: bootstrap seeds contexts from ground-truth ownership, and an
     evicted replica leaves the holder's own (now stale) entry behind in
     its other maps — legitimate soft state that decays through the usual
     stale-forward machinery, with routing excluding self as a target. *)
  let expected_refs = Hashtbl.create 64 in
  (* lint: ordered commutative refcount accumulation into expected_refs *)
  Hashtbl.iter
    (fun node _ ->
      List.iter
        (fun nb ->
          Hashtbl.replace expected_refs nb
            (1 + Option.value ~default:0 (Hashtbl.find_opt expected_refs nb)))
        (Tree.neighbors s.Server.tree node))
    s.Server.hosted;
  (* lint: ordered independent per-neighbor checks; visit order immaterial *)
  Hashtbl.iter
    (fun nb (r : Server.neighbor_ref) ->
      check_map t ~now ~server ~r_map ~what:"neighbor" nb r.Server.n_map;
      match Hashtbl.find_opt expected_refs nb with
      | Some n when n = r.Server.refs -> ()
      | Some n ->
        add t ~now ~server "context-refs"
          (Printf.sprintf "neighbor %d refcount %d, expected %d" nb r.Server.refs n)
      | None ->
        add t ~now ~server "context-refs"
          (Printf.sprintf "neighbor map for %d but no hosted node references it" nb))
    s.Server.neighbor_maps;
  (* lint: ordered independent per-neighbor presence checks; visit order immaterial *)
  Hashtbl.iter
    (fun nb n ->
      if not (Hashtbl.mem s.Server.neighbor_maps nb) then
        add t ~now ~server "context-missing"
          (Printf.sprintf "no neighbor map for node %d (%d hosted references)" nb n))
    expected_refs;
  (* Cache: LRU occupancy within capacity, entries bounded.  As with
     neighbor contexts, a cached map listing this server for a non-hosted
     node is tolerated stale state, not corruption. *)
  if Cache.length s.Server.cache > Cache.slots s.Server.cache then
    add t ~now ~server "cache-bound"
      (Printf.sprintf "cache holds %d entries > %d slots" (Cache.length s.Server.cache)
         (Cache.slots s.Server.cache));
  Cache.iter s.Server.cache ~f:(fun node map ->
      check_map t ~now ~server ~r_map ~what:"cached" node map);
  (* Load meter: busy fractions are fractions. *)
  let raw = Load_meter.raw_load s.Server.load now in
  if not (raw >= 0.0 && raw <= 1.0) then
    add t ~now ~server "load-range" (Printf.sprintf "raw load %g outside [0, 1]" raw);
  let adj = Load_meter.load s.Server.load now in
  if not (adj >= 0.0 && adj <= 1.0) then
    add t ~now ~server "load-range" (Printf.sprintf "adjusted load %g outside [0, 1]" adj);
  (* Queue bound: the admission check must keep occupancy within the
     configured capacity. *)
  if Server.queue_length s > config.Config.queue_capacity then
    add t ~now ~server "queue-bound"
      (Printf.sprintf "query queue %d > capacity %d" (Server.queue_length s)
         config.Config.queue_capacity)

let check_cluster t ~now ~next_event ~(servers : Server.t array) ~(owner_of : server_id array) =
  t.passes <- t.passes + 1;
  (* Simulation-time sanity: the clock never regresses between audit
     passes, and no pending event sits in the past. *)
  if now < t.last_clock then
    add t ~now "clock-regression"
      (Printf.sprintf "clock %g before previous audit time %g" now t.last_clock);
  t.last_clock <- now;
  (match next_event with
  | Some nt when nt < now ->
    add t ~now "event-queue-order" (Printf.sprintf "earliest pending event %g < now %g" nt now)
  | Some _ | None -> ());
  Array.iter (fun s -> check_server t ~now s) servers;
  (* Ownership placement: every node's ground-truth owner hosts it as
     owned (ownership is durable — it survives even fail-stop). *)
  Array.iteri
    (fun node owner ->
      match Server.find_hosted servers.(owner) node with
      | Some h when h.Server.h_kind = Server.Owned -> ()
      | Some _ ->
        add t ~now "owner-missing" (Printf.sprintf "server %d holds node %d only as replica" owner node)
      | None ->
        add t ~now "owner-missing" (Printf.sprintf "server %d does not host its node %d" owner node))
    owner_of

(* Raising convenience for tests and the legacy check_invariants entry
   points: run one pass over a single server and fail on the first
   violation. *)
let assert_server (s : Server.t) ~now =
  let t = create () in
  check_server t ~now s;
  match violations t with [] -> () | v :: _ -> failwith ("Invariant: " ^ describe v)
