(** Per-server (peer) state and its invariant-preserving mutators.

    A server aggregates all four kinds of node state from Table 1:

    {v
    Node state    Name  Map  Data  Meta  Context
    Owned          x     x    x     x      x
    Replicated     x     x          x      x
    Neighboring    x     x
    Cached         x     x
    v}

    plus the machinery of the protocol: load meter, demand ranking, node
    cache, digest store, peer-load table, message queues and the replication
    session.  Mutators keep the cross-structure invariants (neighbor-map
    refcounts, replica budget, digest freshness) — {!Invariant} audits them
    at runtime and in tests.

    All event-driven behavior lives in {!Cluster}; this module never sends
    messages or schedules events. *)

open Types

val max_digests_consulted : int
(** Remote digests consulted per routing step (Bloom false positives
    compound across ancestors × digests, so only the most recently
    refreshed few are tested). *)

type host_kind = Owned | Replicated

type hosted = {
  h_node : node_id;
  h_kind : host_kind;
  mutable h_map : Node_map.t;  (** hosts of this node, self included *)
  mutable h_meta_version : int;
  mutable h_last_used : float;
}

(** An in-progress replication session (§3.3). *)
type session = { session_id : int; mutable tried : server_id list; mutable attempts : int }

(** Routing context for a tree-neighbor of hosted nodes, refcounted by the
    number of hosted nodes whose context it belongs to. *)
type neighbor_ref = { mutable n_map : Node_map.t; mutable refs : int }

type t = {
  id : server_id;
  config : Config.t;
  tree : Terradir_namespace.Tree.t;
  rng : Terradir_util.Splitmix.t;
  obs : Terradir_obs.Obs.t;
      (** observability sink (shared cluster-wide); read by {!Routing} and
          {!Replication} so their signatures stay hook-free *)
  speed : float;  (** relative capacity: service times divide by this *)
  hosted : (node_id, hosted) Hashtbl.t;
  neighbor_maps : (node_id, neighbor_ref) Hashtbl.t;
  mutable owned_count : int;
  mutable replica_count : int;
  cache : Cache.t;
  digests : Digest_store.t;
  digest_scratch_servers : int array;
      (** scratch for {!Routing}'s digest consultation — length
          {!max_digests_consulted}, reused every routing step *)
  digest_scratch_blooms : Terradir_bloom.Bloom.t array;
  map_scratch : Node_map.scratch;
      (** reusable workspace for every map merge/add this server performs —
          single-owner (the server's engine lane), never shared *)
  load : Load_meter.t;
  ranking : Ranking.t;
  known_loads : (server_id, float) Hashtbl.t;
  mutable peer_load_sum : float;
      (** running Σ of [known_loads] values, maintained by
          {!note_peer_load} / {!forget_peer} so the replication trigger's
          believed-mean-load check is O(1) per message instead of a
          O(peers) fold (the fold dominated large deployments) *)
  queue : message Queue.t;  (** bounded query-class FIFO *)
  ctrl_queue : message Queue.t;  (** unbounded, served with priority *)
  mutable serving : bool;
  mutable obs_busy : bool;
      (** observability-only: true between the recorded busy/idle edge
          events; written only while the sink's counters level is on *)
  mutable session : session option;
  mutable session_backoff_until : float;
  mutable last_decay : float;
  mutable alive : bool;
  (* counters *)
  mutable queries_processed : int;
  mutable replicas_installed : int;
  mutable replicas_evicted : int;
}

val create :
  id:server_id ->
  config:Config.t ->
  tree:Terradir_namespace.Tree.t ->
  ?speed:float ->
  ?obs:Terradir_obs.Obs.t ->
  rng:Terradir_util.Splitmix.t ->
  unit ->
  t
(** [speed] defaults to 1.0; must be positive.  [obs] defaults to the
    disabled sink; the server emits replica-churn and digest events
    through it and hands it to its cache. *)

val add_owned : t -> node_id -> owner_of:(node_id -> server_id) -> now:float -> unit
(** Install an owned node at bootstrap; neighbor maps are initialized from
    the ground-truth owner function (local information each owner has by
    construction of the namespace).  Rebuilds the digest. *)

val find_hosted : t -> node_id -> hosted option

val hosts : t -> node_id -> bool

val hosted_nodes : t -> node_id list

val owned_nodes : t -> node_id list

val replica_nodes : t -> node_id list

val neighbor_map : t -> node_id -> Node_map.t option
(** Routing context: map for a tree-neighbor of some hosted node. *)

val known_map : t -> node_id -> Node_map.t option
(** Best map this server has for a node: hosted > neighbor > cached.
    Does not touch the cache's LRU state. *)

val merge_into_known_map : t -> node_id -> Node_map.t -> now:float -> unit
(** Fold an incoming map (from a query path or back-propagation) into
    whatever representation the server has for the node — hosted map,
    neighbor context, or cache (only if caching is enabled). *)

val touch_node : t -> node_id -> now:float -> unit
(** Demand accounting: bump ranking weight and recency, with periodic decay
    every load window. *)

val note_peer_load : t -> server_id -> float -> unit

val min_load_peer : t -> exclude:server_id list -> (server_id * float) option
(** Least-loaded peer by believed load (the basis of §3.3 step 2). *)

val replica_budget : t -> int
(** floor(r_fact × owned) − replicas currently hosted (may be negative). *)

val install_replica : t -> replica_payload -> now:float -> [ `Installed | `Merged | `Rejected ]
(** Install a replica (§3.3 step 3 receiver side): makes room per r_fact by
    evicting lowest-ranked replicas, but only ones strictly colder than the
    incoming node's weight hint (displacing equally-hot replicas would
    thrash under flat demand); merges if already hosted; rejects when no
    room can be made. *)

val evict_replica : t -> node_id -> unit
(** @raise Invalid_argument if the node is not hosted as a replica. *)

val remove_owned : t -> node_id -> unit
(** Drop an owned node (ownership handoff, donor side).  Replicas that no
    longer fit the shrunken r_fact budget are evicted lowest-rank-first.
    @raise Invalid_argument if the node is not hosted as owned. *)

val install_owned : t -> replica_payload -> now:float -> unit
(** Ownership handoff, recipient side: install the node as {e owned} from a
    transfer payload (an existing replica of it is upgraded in place).
    The self entry is entered into the node's map as the new owner. *)

val idle_scan : t -> now:float -> node_id list
(** Evict replicas unused for [replica_idle_timeout]; returns them. *)

val queue_length : t -> int
(** Query-class queue occupancy. *)

val prune_map_with_digests : t -> node_id -> Node_map.t -> Node_map.t
(** §3.6.2: drop map entries whose server's stored digest denies hosting the
    node.  Conservative: entries without a digest, and owner entries, are
    kept.  No-op when the digest feature is off. *)

val make_replica_payload : t -> node_id -> now:float -> replica_payload option
(** Sender side: package a hosted node's replica state (map with self and
    the receiver-relevant stamp refresh, full neighbor context, weight
    hint).  [None] if the node is not hosted. *)

val forget_server : t -> node_id -> server_id -> unit
(** Remove a server from whatever map this server holds for [node] — used
    when a forwarding attempt finds the server dead.  Owner entries are
    removed too (unlike digest pruning, direct failure evidence is
    authoritative). *)

val forget_peer : t -> server_id -> unit
(** Drop a peer from the believed-load table. *)

val record_new_replica : t -> node_id -> server_id -> now:float -> unit
(** Sender-side bookkeeping after shipping a replica: enter the new host
    into the node's map with a fresh stamp so it is advertised (§3.7). *)

val state_kinds : t -> (node_id * string) list
(** Every node this server has state for, labeled Owned / Replicated /
    Neighboring / Cached (Table 1 introspection). *)
