open Terradir_util

type t = { bits : Bitset.t; k : int }

(* SplitMix64 finalizer as an integer hash; two independent hashes come from
   salting the input with distinct odd constants. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let hash_pair x =
  let h1 = mix64 (Int64.of_int x) in
  let h2 = mix64 (Int64.add h1 0x9E3779B97F4A7C15L) in
  (* Truncate to non-negative native ints. *)
  let mask v = Int64.to_int (Int64.shift_right_logical v 2) in
  (mask h1, mask h2 lor 1 (* odd stride avoids short probe cycles *))

let create ?(bits_per_element = 10) ?(hashes = 7) ~expected () =
  if expected <= 0 then invalid_arg "Bloom.create: expected must be positive";
  if bits_per_element <= 0 then invalid_arg "Bloom.create: bits_per_element must be positive";
  if hashes <= 0 then invalid_arg "Bloom.create: hashes must be positive";
  { bits = Bitset.create (max 64 (expected * bits_per_element)); k = hashes }

type hashed = int * int

let hash = hash_pair

let probe_hashed t (h1, h2) f =
  let m = Bitset.length t.bits in
  let rec go i =
    if i >= t.k then true
    else
      let pos = (h1 + (i * h2)) mod m in
      let pos = if pos < 0 then pos + m else pos in
      f pos && go (i + 1)
  in
  go 0

let probe t x f = probe_hashed t (hash_pair x) f

let add t x =
  ignore
    (probe t x (fun pos ->
         Bitset.set t.bits pos;
         true))

let mem t x = probe t x (fun pos -> Bitset.mem t.bits pos)

let mem_hashed t h = probe_hashed t h (fun pos -> Bitset.mem t.bits pos)

let fill_ratio t =
  float_of_int (Bitset.count t.bits) /. float_of_int (Bitset.length t.bits)

let cardinality_estimate t =
  let m = float_of_int (Bitset.length t.bits) in
  let x = float_of_int (Bitset.count t.bits) in
  if x >= m then infinity else -.m /. float_of_int t.k *. log (1.0 -. (x /. m))

let false_positive_rate t = fill_ratio t ** float_of_int t.k

let reset t = Bitset.reset t.bits

let copy t = { bits = Bitset.copy t.bits; k = t.k }

let equal a b = a.k = b.k && Bitset.equal a.bits b.bits

let num_bits t = Bitset.length t.bits

let num_hashes t = t.k

let of_list ?bits_per_element ?hashes elements =
  let t = create ?bits_per_element ?hashes ~expected:(max 1 (List.length elements)) () in
  List.iter (add t) elements;
  t

let of_iter ?bits_per_element ?hashes ~expected iter =
  let t = create ?bits_per_element ?hashes ~expected:(max 1 expected) () in
  iter (add t);
  t
