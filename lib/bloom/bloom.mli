(** Bloom filters — the paper's inverse-mapping digests (§3.6).

    Each TerraDir server summarizes the set of node names it hosts as a Bloom
    filter [Bloom 1970].  The only query is membership with one-sided error:
    [mem] may return [true] for an element never added (false positive) but
    never returns [false] for an added element.

    Hashing uses the Kirsch–Mitzenmacher double-hashing scheme: two 64-bit
    hashes [h1], [h2] derived from a SplitMix64 finalizer, probing positions
    [h1 + i*h2 mod m] for [i < k].  Elements are arbitrary integers (TerraDir
    hashes interned node identifiers; hashing the name string would be
    equivalent since the namespace is shared by all servers). *)

type t

val create : ?bits_per_element:int -> ?hashes:int -> expected:int -> unit -> t
(** [create ~expected ()] sizes the filter for [expected] insertions at
    [bits_per_element] bits each (default 10, k defaults to 7 ≈ ln 2 · 10,
    giving ≈1% false-positive rate at capacity).
    @raise Invalid_argument on non-positive parameters. *)

val add : t -> int -> unit

val mem : t -> int -> bool

type hashed
(** An element's precomputed hash pair — reusable across filters. *)

val hash : int -> hashed

val mem_hashed : t -> hashed -> bool
(** [mem_hashed t (hash x) = mem t x]; hoists the hashing out of loops that
    test one element against many filters. *)

val cardinality_estimate : t -> float
(** Maximum-likelihood estimate of the number of distinct insertions, from
    the fill fraction: [-m/k · ln(1 - X/m)]. *)

val fill_ratio : t -> float
(** Fraction of bits set, in [0, 1]. *)

val false_positive_rate : t -> float
(** Expected false-positive probability at the current fill: [fill^k]. *)

val reset : t -> unit

val copy : t -> t

val equal : t -> t -> bool

val num_bits : t -> int

val num_hashes : t -> int

val of_list : ?bits_per_element:int -> ?hashes:int -> int list -> t
(** Filter sized for and containing the given elements (empty list gets a
    minimal 64-bit filter). *)

val of_iter : ?bits_per_element:int -> ?hashes:int -> expected:int -> ((int -> unit) -> unit) -> t
(** [of_iter ~expected iter]: like {!of_list} over the elements [iter]
    produces, without materializing a list.  [expected] sizes the filter
    exactly as [of_list] would for a list of that length (clamped to ≥ 1);
    bit-set contents are iteration-order independent. *)
