(* A free list is a stack: recycled records are reused most-recent-first,
   which keeps the working set of pooled objects cache-warm.  The backing
   array starts empty and grows geometrically; [pop] leaves the popped
   slot's reference in place (the popped record is live in the caller, so
   the stale duplicate cannot pin garbage) and the next [put] overwrites
   it. *)

type 'a t = { mutable items : 'a array; mutable len : int }

let create () = { items = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let put t x =
  let cap = Array.length t.items in
  if t.len = cap then begin
    let grown = Array.make (max 16 (2 * cap)) x in
    Array.blit t.items 0 grown 0 t.len;
    t.items <- grown
  end;
  t.items.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Freelist.pop: empty";
  t.len <- t.len - 1;
  t.items.(t.len)
