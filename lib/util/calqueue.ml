(* Calendar queue (Brown 1988) with struct-of-arrays buckets — an
   alternative event queue for the engine with O(1) expected add/pop under
   the roughly-uniform arrival spacing of a simulation at steady state.

   Determinism: pop order is the total order (key, then insertion seq) —
   exactly [Pqueue]'s — regardless of bucketing, so the two schedulers are
   interchangeable event-for-event.  Bucket membership is decided by the
   integer "year" [int_of_float (key /. width)], never by accumulated
   float thresholds, so no entry can be skipped past by rounding drift.

   Invariant: every stored entry's year is >= [t.year] (the engine never
   schedules into the past; a smaller key re-anchors the scan anyway). *)

type 'a t = {
  mutable nbuckets : int; (* power of two *)
  mutable mask : int;
  mutable width : float; (* bucket time width *)
  mutable keys : float array array; (* per-bucket parallel vectors *)
  mutable seqs : int array array;
  mutable tags : int array array;
  mutable vals : 'a array array;
  mutable lens : int array;
  mutable size : int;
  mutable next_seq : int;
  mutable year : int; (* current scan year: all entries live at >= year *)
  mutable last_key : float; (* last popped (or re-anchored) key *)
  mutable cmin_bucket : int; (* cached min position; -1 = invalid *)
  mutable cmin_idx : int;
}

let min_buckets = 8

let fresh_buckets n =
  (Array.make n [||], Array.make n [||], Array.make n [||], Array.make n [||], Array.make n 0)

let create () =
  let keys, seqs, tags, vals, lens = fresh_buckets min_buckets in
  {
    nbuckets = min_buckets;
    mask = min_buckets - 1;
    width = 1.0;
    keys;
    seqs;
    tags;
    vals;
    lens;
    size = 0;
    next_seq = 0;
    year = 0;
    last_key = 0.0;
    cmin_bucket = -1;
    cmin_idx = 0;
  }

let length q = q.size

let is_empty q = q.size = 0

let year_of q key = int_of_float (key /. q.width)

let append q b key seq tag value =
  let len = q.lens.(b) in
  let capacity = Array.length q.keys.(b) in
  if len = capacity then begin
    let fresh_cap = max 4 (2 * capacity) in
    let fk = Array.make fresh_cap 0.0 and fs = Array.make fresh_cap 0 in
    let fg = Array.make fresh_cap 0 in
    let fv = Array.make fresh_cap value in
    Array.blit q.keys.(b) 0 fk 0 len;
    Array.blit q.seqs.(b) 0 fs 0 len;
    Array.blit q.tags.(b) 0 fg 0 len;
    Array.blit q.vals.(b) 0 fv 0 len;
    q.keys.(b) <- fk;
    q.seqs.(b) <- fs;
    q.tags.(b) <- fg;
    q.vals.(b) <- fv
  end;
  q.keys.(b).(len) <- key;
  q.seqs.(b).(len) <- seq;
  q.tags.(b).(len) <- tag;
  q.vals.(b).(len) <- value;
  q.lens.(b) <- len + 1

(* Pick a width so a bucket holds a couple of events: sample up to 64 keys,
   sort, and take twice the mean adjacent gap.  Falls back to the previous
   width when keys are too few or all coincide. *)
let estimate_width q =
  let sample_cap = 64 in
  let sample = Array.make (Stdlib.min sample_cap q.size) 0.0 in
  let filled = ref 0 in
  (let b = ref 0 in
   while !filled < Array.length sample && !b < q.nbuckets do
     let len = q.lens.(!b) in
     let take = Stdlib.min len (Array.length sample - !filled) in
     Array.blit q.keys.(!b) 0 sample !filled take;
     filled := !filled + take;
     incr b
   done);
  if !filled < 2 then q.width
  else begin
    Array.sort Float.compare sample;
    let gaps = ref 0.0 and n = ref 0 in
    for i = 1 to !filled - 1 do
      let g = sample.(i) -. sample.(i - 1) in
      if g > 0.0 then begin
        gaps := !gaps +. g;
        incr n
      end
    done;
    if !n = 0 then q.width else Float.max 1e-9 (2.0 *. !gaps /. float_of_int !n)
  end

let resize q target =
  let width = estimate_width q in
  let keys, seqs, tags, vals, lens = fresh_buckets target in
  let old_keys = q.keys and old_seqs = q.seqs and old_tags = q.tags in
  let old_vals = q.vals and old_lens = q.lens in
  let old_n = q.nbuckets in
  q.nbuckets <- target;
  q.mask <- target - 1;
  q.width <- width;
  q.keys <- keys;
  q.seqs <- seqs;
  q.tags <- tags;
  q.vals <- vals;
  q.lens <- lens;
  let size = q.size in
  q.size <- 0;
  for b = 0 to old_n - 1 do
    for i = 0 to old_lens.(b) - 1 do
      let k = old_keys.(b).(i) in
      append q (year_of q k land q.mask) k old_seqs.(b).(i) old_tags.(b).(i) old_vals.(b).(i)
    done
  done;
  q.size <- size;
  q.year <- year_of q q.last_key;
  q.cmin_bucket <- -1

let add_tagged q ~key ~seq ~tag value =
  if key < q.last_key then begin
    (* Late insert: re-anchor the scan so the invariant holds. *)
    q.last_key <- key;
    q.year <- year_of q key;
    q.cmin_bucket <- -1
  end;
  let y = year_of q key in
  (* A peek's year-by-year walk advances [year] past empty buckets; an
     insert can then legitimately land above [last_key] but below the
     advanced year (the parallel engine's coordinator peeks every lane
     between windows).  Pull the year back or the walk would skip it
     once the cached min is popped. *)
  if y < q.year then q.year <- y;
  let b = y land q.mask in
  append q b key seq tag value;
  q.size <- q.size + 1;
  if q.cmin_bucket >= 0 then begin
    let ck = q.keys.(q.cmin_bucket).(q.cmin_idx) and cs = q.seqs.(q.cmin_bucket).(q.cmin_idx) in
    if key < ck || (key = ck && seq < cs) then begin
      q.cmin_bucket <- b;
      q.cmin_idx <- q.lens.(b) - 1
    end
  end;
  if q.size > 2 * q.nbuckets then resize q (2 * q.nbuckets)

let add q key value =
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  add_tagged q ~key ~seq ~tag:0 value

(* Scan all buckets for the global minimum (key, seq); used when the
   year-by-year walk has gone a full cycle without a hit. *)
let direct_search q =
  let best_b = ref (-1) and best_i = ref 0 in
  let best_k = ref infinity and best_s = ref max_int in
  for b = 0 to q.nbuckets - 1 do
    for i = 0 to q.lens.(b) - 1 do
      let k = q.keys.(b).(i) in
      if k < !best_k || (k = !best_k && q.seqs.(b).(i) < !best_s) then begin
        best_k := k;
        best_s := q.seqs.(b).(i);
        best_b := b;
        best_i := i
      end
    done
  done;
  q.year <- year_of q !best_k;
  (!best_b, !best_i)

(* Position of the minimum entry; size must be > 0. *)
let find_min q =
  if q.cmin_bucket >= 0 then (q.cmin_bucket, q.cmin_idx)
  else begin
    let result = ref (-1, 0) in
    let steps = ref 0 in
    while fst !result < 0 && !steps < q.nbuckets do
      let b = q.year land q.mask in
      let best_i = ref (-1) in
      let best_k = ref infinity and best_s = ref max_int in
      for i = 0 to q.lens.(b) - 1 do
        let k = q.keys.(b).(i) in
        if
          year_of q k <= q.year
          && (k < !best_k || (k = !best_k && q.seqs.(b).(i) < !best_s))
        then begin
          best_k := k;
          best_s := q.seqs.(b).(i);
          best_i := i
        end
      done;
      if !best_i >= 0 then result := (b, !best_i)
      else begin
        q.year <- q.year + 1;
        incr steps
      end
    done;
    let pos = if fst !result >= 0 then !result else direct_search q in
    q.cmin_bucket <- fst pos;
    q.cmin_idx <- snd pos;
    pos
  end

let top_key q =
  let b, i = find_min q in
  q.keys.(b).(i)

let top_seq q =
  let b, i = find_min q in
  q.seqs.(b).(i)

let top_tag q =
  let b, i = find_min q in
  q.tags.(b).(i)

let min q =
  if q.size = 0 then None
  else begin
    let b, i = find_min q in
    Some (q.keys.(b).(i), q.vals.(b).(i))
  end

let pop_exn q =
  if q.size = 0 then invalid_arg "Calqueue.pop_exn: empty";
  let b, i = find_min q in
  let value = q.vals.(b).(i) in
  q.last_key <- q.keys.(b).(i);
  let last = q.lens.(b) - 1 in
  q.keys.(b).(i) <- q.keys.(b).(last);
  q.seqs.(b).(i) <- q.seqs.(b).(last);
  q.tags.(b).(i) <- q.tags.(b).(last);
  q.vals.(b).(i) <- q.vals.(b).(last);
  q.vals.(b).(last) <- value (* keep slot initialized *);
  q.lens.(b) <- last;
  q.size <- q.size - 1;
  q.cmin_bucket <- -1;
  if q.nbuckets > min_buckets && q.size < q.nbuckets / 2 then resize q (q.nbuckets / 2);
  value

let pop q =
  if q.size = 0 then None
  else begin
    let b, i = find_min q in
    let key = q.keys.(b).(i) in
    let value = pop_exn q in
    Some (key, value)
  end

let clear q =
  let keys, seqs, tags, vals, lens = fresh_buckets min_buckets in
  q.nbuckets <- min_buckets;
  q.mask <- min_buckets - 1;
  q.width <- 1.0;
  q.keys <- keys;
  q.seqs <- seqs;
  q.tags <- tags;
  q.vals <- vals;
  q.lens <- lens;
  q.size <- 0;
  q.year <- 0;
  q.last_key <- 0.0;
  q.cmin_bucket <- -1

let to_sorted_list q =
  let entries = ref [] in
  for b = 0 to q.nbuckets - 1 do
    for i = 0 to q.lens.(b) - 1 do
      entries := (q.keys.(b).(i), q.seqs.(b).(i), q.vals.(b).(i)) :: !entries
    done
  done;
  List.stable_sort
    (fun (k1, s1, _) (k2, s2, _) ->
      let c = Float.compare k1 k2 in
      if c <> 0 then c else Int.compare s1 s2)
    !entries
  |> List.map (fun (k, _, v) -> (k, v))
