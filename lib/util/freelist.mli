(** Object free lists for pooled records.

    The steady-state event loop recycles message and query records through
    per-lane free lists instead of allocating fresh ones: a record is
    [put] back exactly once, at its lifecycle's terminal point, and the
    next [pop] hands it out for reuse.  A pool is single-owner mutable
    state — the sharded engine gives each lane its own pool, and records
    migrate between pools as they cross lanes (a record popped on one lane
    may be put back on another, but only ever by the lane that currently
    owns the record). *)

type 'a t

val create : unit -> 'a t
(** An empty pool.  No backing storage is allocated until the first
    {!put}. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val put : 'a t -> 'a -> unit
(** Return a record to the pool.  The caller must not touch the record
    again until a {!pop} hands it back. *)

val pop : 'a t -> 'a
(** Most recently recycled record.  @raise Invalid_argument when empty —
    callers check {!is_empty} and construct a fresh record instead. *)
