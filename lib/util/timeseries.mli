(** Fixed-interval time series accumulation.

    The paper's figures report per-second (or per-minute) series: dropped
    queries per second, replicas created per second, mean/max load per
    second.  A {!t} buckets samples by timestamp into uniform bins and
    exposes the completed bins as arrays. *)

type t

val create : ?bin:float -> unit -> t
(** [create ~bin ()] buckets into bins of [bin] time units (default 1.0).
    @raise Invalid_argument if [bin <= 0]. *)

val bin_width : t -> float

val add : t -> float -> float -> unit
(** [add t time value] accumulates [value] into the bin containing [time].
    Times may arrive out of order. @raise Invalid_argument on negative time. *)

val incr : t -> float -> unit
(** [incr t time] is [add t time 1.0] — event counting. *)

val observe_max : t -> float -> float -> unit
(** [observe_max t time value] keeps the max of the values seen in the bin
    (use a separate series from sums). *)

val merge_into : into:t -> t -> unit
(** Accumulate [src]'s bins into [into]: sums add, counts add, maxima
    max.  Counts and maxima are order-independent; sums are bit-exact
    under any partition when every sample is an integral [+1.0]
    increment (the engine's per-lane counter series).
    @raise Invalid_argument if the bin widths differ. *)

val num_bins : t -> int
(** Index of the highest touched bin + 1. *)

val sums : t -> float array
(** Per-bin accumulated sums (untouched bins are 0). *)

val maxima : t -> float array
(** Per-bin maxima (untouched bins are 0). *)

val counts : t -> int array
(** Per-bin number of samples. *)

val means : t -> float array
(** Per-bin sum/count (0 for empty bins). *)

val smoothed_max : t -> window:int -> float array
(** [smoothed_max t ~window] averages the per-bin {e maxima} over a sliding
    window of [window] bins centred as a trailing window — the paper's
    "maximum load averaged over 11 seconds" (Fig. 6, right). *)
