let recommended_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* Persistent worker gang: [map] below spawns fresh domains per call,
   which is fine for a handful of multi-second experiment cells but far
   too heavy for the parallel engine's synchronized windows (thousands
   per simulated second).  A [Gang.t] parks its domains on a condition
   variable between jobs, so a launch/join round trip costs two lock
   acquisitions per worker instead of a domain spawn. *)
module Gang = struct
  type t = {
    mutable domains : unit Domain.t array;
    m : Mutex.t;
    cv : Condition.t;
    mutable job : (int -> unit) option;
    mutable epoch : int; (* bumped per launch; workers wait for a fresh one *)
    mutable remaining : int;
    mutable stop : bool;
    mutable failure : (exn * Printexc.raw_backtrace) option;
  }

  let worker t i =
    let seen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock t.m;
      while t.epoch = !seen && not t.stop do
        Condition.wait t.cv t.m
      done;
      if t.stop then begin
        running := false;
        Mutex.unlock t.m
      end
      else begin
        seen := t.epoch;
        let job = match t.job with Some f -> f | None -> assert false in
        Mutex.unlock t.m;
        (try job i
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Mutex.lock t.m;
           if t.failure = None then t.failure <- Some (e, bt);
           Mutex.unlock t.m);
        Mutex.lock t.m;
        t.remaining <- t.remaining - 1;
        if t.remaining = 0 then Condition.broadcast t.cv;
        Mutex.unlock t.m
      end
    done

  let create ~workers =
    if workers < 1 then invalid_arg "Pool.Gang.create: workers must be >= 1";
    let t =
      {
        domains = [||];
        m = Mutex.create ();
        cv = Condition.create ();
        job = None;
        epoch = 0;
        remaining = 0;
        stop = false;
        failure = None;
      }
    in
    t.domains <- Array.init workers (fun i -> Domain.spawn (fun () -> worker t i));
    t

  let size t = Array.length t.domains

  let launch t f =
    Mutex.lock t.m;
    if t.stop then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.Gang.launch: gang is shut down"
    end;
    if t.remaining > 0 then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.Gang.launch: previous job not joined"
    end;
    t.job <- Some f;
    t.remaining <- Array.length t.domains;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.cv;
    Mutex.unlock t.m

  let join t =
    Mutex.lock t.m;
    while t.remaining > 0 do
      Condition.wait t.cv t.m
    done;
    t.job <- None;
    let fail = t.failure in
    t.failure <- None;
    Mutex.unlock t.m;
    match fail with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()

  let shutdown t =
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.cv;
    Mutex.unlock t.m;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
end

(* Each slot is written exactly once, by whichever worker claimed its index;
   the claim goes through [next], so no index is ever written twice.  The
   caller reads the slots only after joining every worker, which publishes
   the writes (Domain.join is a synchronization point). *)
type 'b outcome =
  | Pending
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

let map ?domains f xs =
  (match domains with
  | Some d when d < 1 -> invalid_arg "Pool.map: domains must be >= 1"
  | _ -> ());
  let n = List.length xs in
  let k = min (match domains with Some d -> d | None -> recommended_jobs ()) n in
  if k <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let failed = Atomic.make false in
    let worker () =
      let rec loop () =
        if not (Atomic.get failed) then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (match f input.(i) with
            | v -> results.(i) <- Done v
            | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              results.(i) <- Raised (e, bt);
              Atomic.set failed true);
            loop ()
          end
        end
      in
      loop ()
    in
    let workers = Array.init (k - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is a worker too, so [domains] is a total. *)
    worker ();
    Array.iter Domain.join workers;
    Array.iter
      (function Raised (e, bt) -> Printexc.raise_with_backtrace e bt | Pending | Done _ -> ())
      results;
    Array.to_list
      (Array.map (function Done v -> v | Pending | Raised _ -> assert false) results)
  end
