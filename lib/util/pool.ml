let recommended_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* Each slot is written exactly once, by whichever worker claimed its index;
   the claim goes through [next], so no index is ever written twice.  The
   caller reads the slots only after joining every worker, which publishes
   the writes (Domain.join is a synchronization point). *)
type 'b outcome =
  | Pending
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

let map ?domains f xs =
  (match domains with
  | Some d when d < 1 -> invalid_arg "Pool.map: domains must be >= 1"
  | _ -> ());
  let n = List.length xs in
  let k = min (match domains with Some d -> d | None -> recommended_jobs ()) n in
  if k <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let failed = Atomic.make false in
    let worker () =
      let rec loop () =
        if not (Atomic.get failed) then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (match f input.(i) with
            | v -> results.(i) <- Done v
            | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              results.(i) <- Raised (e, bt);
              Atomic.set failed true);
            loop ()
          end
        end
      in
      loop ()
    in
    let workers = Array.init (k - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is a worker too, so [domains] is a total. *)
    worker ();
    Array.iter Domain.join workers;
    Array.iter
      (function Raised (e, bt) -> Printexc.raise_with_backtrace e bt | Pending | Done _ -> ())
      results;
    Array.to_list
      (Array.map (function Done v -> v | Pending | Raised _ -> assert false) results)
  end
