type t = { mutable state : int64; mutable draws : int }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed); draws = 0 }

let copy g = { state = g.state; draws = g.draws }

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  g.draws <- g.draws + 1;
  mix64 g.state

let split g = { state = bits64 g; draws = 0 }

let draws g = g.draws

(* Non-negative 62-bit int from the top bits: keeps arithmetic on OCaml's
   63-bit native ints exact. *)
let bits62 g = Int64.to_int (Int64.shift_right_logical (bits64 g) 2)

let int g n =
  if n <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask_range = 0x3FFF_FFFF_FFFF_FFFF in
  let limit = mask_range - (mask_range mod n) in
  let rec draw () =
    let v = bits62 g in
    if v >= limit then draw () else v mod n
  in
  draw ()

let float g x =
  (* 53 random mantissa bits scaled to [0, 1). *)
  let u = Int64.to_int (Int64.shift_right_logical (bits64 g) 11) in
  float_of_int u /. 9007199254740992.0 *. x

let bool g = Int64.logand (bits64 g) 1L = 1L

let exponential g mean =
  (* Inverse CDF; [1.0 -. u] keeps the log argument strictly positive. *)
  let u = float g 1.0 in
  -. mean *. log (1.0 -. u)

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation g n =
  let a = Array.init n (fun i -> i) in
  shuffle g a;
  a
