(** A minimal fixed-size domain pool for embarrassingly parallel fan-out
    (OCaml 5 [Domain]s, no dependency on domainslib).

    Designed for the experiment harness: each work item is a self-contained
    closure (its own cluster, RNG streams, metrics), so workers share
    nothing and results are bit-identical to a sequential run.  Tasks are
    claimed from a single atomic counter — no work stealing, no channels —
    which is all a workload of a few dozen multi-second simulations needs. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1] (at least 1): leave one core's
    worth of headroom for the caller's process and the OS. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] applies [f] to every element of [xs], running up to
    [domains] applications concurrently (the calling domain participates),
    and returns the results {e in input order}.

    - [domains] defaults to {!recommended_jobs}; it is clamped to the list
      length, and [domains:1] (or a singleton/empty list) degrades to plain
      [List.map f xs] on the calling domain — no domain is ever spawned.
    - If any application raises, the remaining unstarted items are
      abandoned, every worker is joined, and the exception of the
      lowest-index failed item is re-raised (with its backtrace) in the
      calling domain.
    - [f] must not rely on shared mutable state: applications run
      concurrently on separate domains in an unspecified relative order.

    @raise Invalid_argument if [domains < 1]. *)

(** Persistent worker domains for repeated fork-join rounds.

    Where {!map} spawns domains per call, a gang parks its workers on a
    condition variable between jobs — the launch/join round trip is two
    lock acquisitions per worker, cheap enough to run once per
    synchronized window of the parallel discrete-event engine. *)
module Gang : sig
  type t

  val create : workers:int -> t
  (** Spawn [workers] parked domains.  @raise Invalid_argument if
      [workers < 1]. *)

  val size : t -> int
  (** Number of worker domains. *)

  val launch : t -> (int -> unit) -> unit
  (** Start one job round: every worker [i] in [0, size) runs [f i]
      concurrently with the caller.  The caller may do its own share of
      the work before {!join}.  @raise Invalid_argument if the previous
      round was not joined or the gang is shut down. *)

  val join : t -> unit
  (** Block until every worker finished the current round (a
      synchronization point: workers' writes are visible after).  If any
      worker raised, the first exception recorded is re-raised here. *)

  val shutdown : t -> unit
  (** Stop and join all workers.  Idempotent. *)
end
