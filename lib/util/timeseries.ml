type t = {
  bin : float;
  mutable sums : float array;
  mutable maxima : float array;
  mutable counts : int array;
  mutable used : int; (* highest touched bin + 1 *)
}

let create ?(bin = 1.0) () =
  if bin <= 0.0 then invalid_arg "Timeseries.create: bin must be positive";
  { bin; sums = [||]; maxima = [||]; counts = [||]; used = 0 }

let bin_width t = t.bin

let ensure t idx =
  let capacity = Array.length t.sums in
  if idx >= capacity then begin
    let fresh = max 64 (max (idx + 1) (2 * capacity)) in
    let grow a init =
      let b = Array.make fresh init in
      Array.blit a 0 b 0 capacity;
      b
    in
    t.sums <- grow t.sums 0.0;
    t.maxima <- grow t.maxima 0.0;
    t.counts <- grow t.counts 0
  end;
  if idx + 1 > t.used then t.used <- idx + 1

let index t time =
  if time < 0.0 then invalid_arg "Timeseries: negative time";
  int_of_float (time /. t.bin)

let add t time value =
  let i = index t time in
  ensure t i;
  t.sums.(i) <- t.sums.(i) +. value;
  if value > t.maxima.(i) then t.maxima.(i) <- value;
  t.counts.(i) <- t.counts.(i) + 1

let incr t time = add t time 1.0

let observe_max t time value =
  let i = index t time in
  ensure t i;
  if value > t.maxima.(i) then t.maxima.(i) <- value;
  t.counts.(i) <- t.counts.(i) + 1

(* Exact in any partition order: per-bin sums are only ever merged
   pairwise from disjoint sample sets when each lane's +1.0 increments
   are integral, and counts/maxima are order-independent outright. *)
let merge_into ~into src =
  if into.bin <> src.bin then invalid_arg "Timeseries.merge_into: bin width mismatch";
  if src.used > 0 then begin
    ensure into (src.used - 1);
    for i = 0 to src.used - 1 do
      into.sums.(i) <- into.sums.(i) +. src.sums.(i);
      if src.maxima.(i) > into.maxima.(i) then into.maxima.(i) <- src.maxima.(i);
      into.counts.(i) <- into.counts.(i) + src.counts.(i)
    done
  end

let num_bins t = t.used

let sums t = Array.sub t.sums 0 t.used

let maxima t = Array.sub t.maxima 0 t.used

let counts t = Array.sub t.counts 0 t.used

let means t =
  Array.init t.used (fun i ->
      if t.counts.(i) = 0 then 0.0 else t.sums.(i) /. float_of_int t.counts.(i))

let smoothed_max t ~window =
  if window <= 0 then invalid_arg "Timeseries.smoothed_max: window must be positive";
  let m = maxima t in
  Array.init (Array.length m) (fun i ->
      let lo = max 0 (i - window + 1) in
      let acc = ref 0.0 in
      for j = lo to i do
        acc := !acc +. m.(j)
      done;
      !acc /. float_of_int (i - lo + 1))
