(** Calendar queue: an alternative engine event queue (Brown 1988).

    Same contract as {!Pqueue} — float keys, FIFO tie-break by insertion
    order — with O(1) expected add/pop when keys arrive with roughly
    uniform spacing, as simulation events do at steady state.  Pop order
    is byte-for-byte identical to {!Pqueue}'s for any insert sequence,
    which test/test_interning.ml verifies exhaustively; the engine selects
    between the two via [Config.scheduler]. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> float -> 'a -> unit
(** Insert with an internally assigned sequence number and tag 0. *)

val add_tagged : 'a t -> key:float -> seq:int -> tag:int -> 'a -> unit
(** Insert with a caller-supplied sequence number and opaque tag — same
    contract as [Pqueue.add_tagged]. *)

val min : 'a t -> (float * 'a) option

val pop : 'a t -> (float * 'a) option

val top_key : 'a t -> float
(** Smallest key without removal; undefined when empty. *)

val top_seq : 'a t -> int
(** Sequence number of the minimum entry; undefined when empty. *)

val top_tag : 'a t -> int
(** Tag of the minimum entry; undefined when empty. *)

val pop_exn : 'a t -> 'a
(** Remove the minimum entry and return its value.
    @raise Invalid_argument when empty. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> (float * 'a) list
(** Entries in pop order; the queue is unchanged. *)
