(** Calendar queue: an alternative engine event queue (Brown 1988).

    Same contract as {!Pqueue} — float keys, FIFO tie-break by insertion
    order — with O(1) expected add/pop when keys arrive with roughly
    uniform spacing, as simulation events do at steady state.  Pop order
    is byte-for-byte identical to {!Pqueue}'s for any insert sequence,
    which test/test_interning.ml verifies exhaustively; the engine selects
    between the two via [Config.scheduler]. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> float -> 'a -> unit

val min : 'a t -> (float * 'a) option

val pop : 'a t -> (float * 'a) option

val top_key : 'a t -> float
(** Smallest key without removal; undefined when empty. *)

val pop_exn : 'a t -> 'a
(** Remove the minimum entry and return its value.
    @raise Invalid_argument when empty. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> (float * 'a) list
(** Entries in pop order; the queue is unchanged. *)
