(** Bounded LRU table from integer keys to values.

    The TerraDir cache (§2.4 of the paper) stores node → map pointers with
    LRU replacement; an entry is "touched" whenever used in routing.  The
    implementation is flat: entries live in preallocated parallel arrays
    with the recency list as index links and an open-addressing int index
    — all operations are O(1) and allocation-free after the first
    insertion. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] holds at most [capacity] entries.  Capacity 0 is a
    valid always-empty cache. @raise Invalid_argument if negative. *)

val capacity : 'a t -> int

val length : 'a t -> int

val find : 'a t -> int -> 'a option
(** [find t k] returns the binding and promotes [k] to most-recently-used. *)

val peek : 'a t -> int -> 'a option
(** Like {!find} but without promoting. *)

val mem : 'a t -> int -> bool
(** Membership without promotion. *)

val put : 'a t -> int -> 'a -> unit
(** [put t k v] binds [k] to [v] as most-recently-used, evicting the
    least-recently-used entry if the cache is full. *)

val remove : 'a t -> int -> unit

val fold : 'a t -> init:'b -> f:('b -> int -> 'a -> 'b) -> 'b
(** Fold over entries from most- to least-recently used. *)

val fold_until :
  'a t -> init:'b -> f:('b -> int -> 'a -> ('b, 'b) Either.t) -> 'b
(** Like {!fold}, but [f] returning [Right acc] stops the walk with [acc].
    For consumers that only want an MRU prefix — a full {!fold} over a
    large cache is the dominant cost when called on a hot path. *)

val iter : 'a t -> f:(int -> 'a -> unit) -> unit

val keys_mru_order : 'a t -> int list
(** Keys from most- to least-recently-used (for tests). *)

val hits : 'a t -> int
(** Successful {!find} lookups since creation.  Only {!find} counts —
    {!peek} and {!mem} are inspection, not use, and leave both counters
    (like the recency list) untouched.  Cumulative: {!clear} drops the
    entries but keeps the accounting. *)

val misses : 'a t -> int
(** Failed {!find} lookups since creation (same counting rule). *)

val hit_rate : 'a t -> float
(** [hits / (hits + misses)]; 0 before the first counted lookup. *)

val clear : 'a t -> unit
