type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations from the running mean *)
  mutable minv : float;
  mutable maxv : float;
  mutable sum : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; minv = infinity; maxv = neg_infinity; sum = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.minv then t.minv <- x;
  if x > t.maxv then t.maxv <- x;
  t.sum <- t.sum +. x

let count t = t.n

let mean t = if t.n = 0 then 0.0 else t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min_value t =
  if t.n = 0 then invalid_arg "Stats.min_value: empty";
  t.minv

let max_value t =
  if t.n = 0 then invalid_arg "Stats.max_value: empty";
  t.maxv

let total t = t.sum

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let fa = float_of_int a.n and fb = float_of_int b.n and fn = float_of_int n in
    {
      n;
      mean = a.mean +. (delta *. fb /. fn);
      m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. fn);
      minv = Float.min a.minv b.minv;
      maxv = Float.max a.maxv b.maxv;
      sum = a.sum +. b.sum;
    }
  end

module Reservoir = struct
  type stats = t

  type nonrec t = {
    sample : float array;
    mutable filled : int;
    mutable seen : int;
    rng : Splitmix.t;
    all : stats;
  }

  let create ?(capacity = 4096) rng =
    if capacity <= 0 then invalid_arg "Reservoir.create: capacity must be positive";
    { sample = Array.make capacity 0.0; filled = 0; seen = 0; rng; all = create () }

  let add r x =
    add r.all x;
    r.seen <- r.seen + 1;
    if r.filled < Array.length r.sample then begin
      r.sample.(r.filled) <- x;
      r.filled <- r.filled + 1
    end
    else begin
      (* Algorithm R: keep each seen sample with probability capacity/seen. *)
      let j = Splitmix.int r.rng r.seen in
      if j < Array.length r.sample then r.sample.(j) <- x
    end

  let count r = r.seen

  let percentile r p =
    if r.filled = 0 then invalid_arg "Reservoir.percentile: empty";
    if p < 0.0 || p > 1.0 then invalid_arg "Reservoir.percentile: p out of range";
    let sorted = Array.sub r.sample 0 r.filled in
    Array.sort Float.compare sorted;
    let pos = p *. float_of_int (r.filled - 1) in
    let lo = max 0 (min (int_of_float pos) (r.filled - 1)) in
    let hi = min (lo + 1) (r.filled - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

  let summary r = r.all
end
