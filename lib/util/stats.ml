(* The accumulator keeps its five running floats in a [floatarray] rather
   than mutable record fields: a record mixing [int] and [float] fields
   stores every float boxed, so each [add] on the old representation
   allocated fresh boxes for mean/m2/sum on the minor heap.  [floatarray]
   slots are unboxed — [add] allocates nothing.  The arithmetic below is
   the old code's, operation for operation: Welford's update and Chan's
   merge are sensitive to evaluation order in floating point, and every
   golden CSV pins the historical results. *)

type t = { mutable n : int; f : floatarray }

(* Slot layout. *)
let i_mean = 0

let i_m2 = 1 (* sum of squared deviations from the running mean *)

let i_min = 2

let i_max = 3

let i_sum = 4

let get = Float.Array.unsafe_get

let set = Float.Array.unsafe_set

let create () =
  let f = Float.Array.create 5 in
  set f i_mean 0.0;
  set f i_m2 0.0;
  set f i_min infinity;
  set f i_max neg_infinity;
  set f i_sum 0.0;
  { n = 0; f }

let add t x =
  let f = t.f in
  t.n <- t.n + 1;
  let mean = get f i_mean in
  let delta = x -. mean in
  let mean = mean +. (delta /. float_of_int t.n) in
  set f i_mean mean;
  set f i_m2 (get f i_m2 +. (delta *. (x -. mean)));
  if x < get f i_min then set f i_min x;
  if x > get f i_max then set f i_max x;
  set f i_sum (get f i_sum +. x)

let count t = t.n

let mean t = if t.n = 0 then 0.0 else get t.f i_mean

let variance t = if t.n < 2 then 0.0 else get t.f i_m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min_value t =
  if t.n = 0 then invalid_arg "Stats.min_value: empty";
  get t.f i_min

let max_value t =
  if t.n = 0 then invalid_arg "Stats.max_value: empty";
  get t.f i_max

let total t = get t.f i_sum

let copy t = { n = t.n; f = Float.Array.copy t.f }

let merge a b =
  if a.n = 0 then copy b
  else if b.n = 0 then copy a
  else begin
    let n = a.n + b.n in
    let delta = get b.f i_mean -. get a.f i_mean in
    let fa = float_of_int a.n and fb = float_of_int b.n and fn = float_of_int n in
    let f = Float.Array.create 5 in
    set f i_mean (get a.f i_mean +. (delta *. fb /. fn));
    set f i_m2 (get a.f i_m2 +. get b.f i_m2 +. (delta *. delta *. fa *. fb /. fn));
    set f i_min (Float.min (get a.f i_min) (get b.f i_min));
    set f i_max (Float.max (get a.f i_max) (get b.f i_max));
    set f i_sum (get a.f i_sum +. get b.f i_sum);
    { n; f }
  end

module Reservoir = struct
  type stats = t

  type nonrec t = {
    sample : float array;
    mutable filled : int;
    mutable seen : int;
    rng : Splitmix.t;
    all : stats;
  }

  let create ?(capacity = 4096) rng =
    if capacity <= 0 then invalid_arg "Reservoir.create: capacity must be positive";
    { sample = Array.make capacity 0.0; filled = 0; seen = 0; rng; all = create () }

  let add r x =
    add r.all x;
    r.seen <- r.seen + 1;
    if r.filled < Array.length r.sample then begin
      r.sample.(r.filled) <- x;
      r.filled <- r.filled + 1
    end
    else begin
      (* Algorithm R: keep each seen sample with probability capacity/seen. *)
      let j = Splitmix.int r.rng r.seen in
      if j < Array.length r.sample then r.sample.(j) <- x
    end

  let count r = r.seen

  let percentile r p =
    if r.filled = 0 then invalid_arg "Reservoir.percentile: empty";
    if p < 0.0 || p > 1.0 then invalid_arg "Reservoir.percentile: p out of range";
    let sorted = Array.sub r.sample 0 r.filled in
    Array.sort Float.compare sorted;
    let pos = p *. float_of_int (r.filled - 1) in
    let lo = max 0 (min (int_of_float pos) (r.filled - 1)) in
    let hi = min (lo + 1) (r.filled - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

  let summary r = r.all
end
