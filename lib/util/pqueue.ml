(* Struct-of-arrays binary heap: keys, insertion sequences, tags, and
   values live in four parallel arrays instead of one boxed record per
   entry.  Long runs keep millions of pending events; with records every
   entry was a minor allocation that survived into the major heap.  The
   SoA layout allocates only on amortized growth, and the float keys are
   unboxed in their array.

   The [tag] is an opaque integer riding along with each entry (the
   engine stores the executing-context id there); it never participates
   in the ordering.  [add] assigns sequence numbers from an internal
   counter (tag 0); [add_tagged] lets the caller supply both, which the
   parallel engine uses to impose a partition-independent total order. *)

type 'a t = {
  mutable keys : float array; (* positions [0, size) are live *)
  mutable seqs : int array;
  mutable tags : int array;
  mutable vals : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { keys = [||]; seqs = [||]; tags = [||]; vals = [||]; size = 0; next_seq = 0 }

let length q = q.size

let is_empty q = q.size = 0

(* Entry ordering: key first, then insertion sequence for FIFO ties. *)
let before q i kj sj = q.keys.(i) < kj || (q.keys.(i) = kj && q.seqs.(i) < sj)

let grow q value =
  let capacity = Array.length q.keys in
  if q.size = capacity then begin
    (* Starting at 16 keeps short-lived engines (tests, micro benches) to
       a single growth of the four parallel arrays. *)
    let fresh_cap = max 16 (2 * capacity) in
    let fresh_keys = Array.make fresh_cap 0.0 in
    let fresh_seqs = Array.make fresh_cap 0 in
    let fresh_tags = Array.make fresh_cap 0 in
    let fresh_vals = Array.make fresh_cap value in
    Array.blit q.keys 0 fresh_keys 0 q.size;
    Array.blit q.seqs 0 fresh_seqs 0 q.size;
    Array.blit q.tags 0 fresh_tags 0 q.size;
    Array.blit q.vals 0 fresh_vals 0 q.size;
    q.keys <- fresh_keys;
    q.seqs <- fresh_seqs;
    q.tags <- fresh_tags;
    q.vals <- fresh_vals
  end

(* Both sifts use the hole technique: the moving entry lives in locals,
   displaced entries shift once, and the entry is written exactly once at
   its final slot — half the array traffic of a swap per level, which the
   four parallel arrays would otherwise quadruple. *)

let add_tagged q ~key ~seq ~tag value =
  grow q value;
  let i = ref q.size in
  q.size <- q.size + 1;
  (* Sift the hole up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if q.keys.(parent) > key || (q.keys.(parent) = key && q.seqs.(parent) > seq) then begin
      q.keys.(!i) <- q.keys.(parent);
      q.seqs.(!i) <- q.seqs.(parent);
      q.tags.(!i) <- q.tags.(parent);
      q.vals.(!i) <- q.vals.(parent);
      i := parent
    end
    else continue := false
  done;
  q.keys.(!i) <- key;
  q.seqs.(!i) <- seq;
  q.tags.(!i) <- tag;
  q.vals.(!i) <- value

let add q key value =
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  add_tagged q ~key ~seq ~tag:0 value

let top_key q = q.keys.(0)

let top_seq q = q.seqs.(0)

let top_tag q = q.tags.(0)

let min q = if q.size = 0 then None else Some (q.keys.(0), q.vals.(0))

(* Sift the last entry down from the root hole. *)
let sift_down q key seq tag value =
  let n = q.size in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    (* The hole at [i] holds stale data; the moving entry's (key, seq)
       stands in for it, tracked in locals as the running minimum. *)
    let smallest = ref !i and sk = ref key and ss = ref seq in
    if l < n && before q l !sk !ss then begin
      smallest := l;
      sk := q.keys.(l);
      ss := q.seqs.(l)
    end;
    if r < n && before q r !sk !ss then smallest := r;
    if !smallest <> !i then begin
      q.keys.(!i) <- q.keys.(!smallest);
      q.seqs.(!i) <- q.seqs.(!smallest);
      q.tags.(!i) <- q.tags.(!smallest);
      q.vals.(!i) <- q.vals.(!smallest);
      i := !smallest
    end
    else continue := false
  done;
  q.keys.(!i) <- key;
  q.seqs.(!i) <- seq;
  q.tags.(!i) <- tag;
  q.vals.(!i) <- value

let pop_exn q =
  if q.size = 0 then invalid_arg "Pqueue.pop_exn: empty";
  let top = q.vals.(0) in
  q.size <- q.size - 1;
  if q.size > 0 then begin
    let last = q.size in
    let k = q.keys.(last) and s = q.seqs.(last) and g = q.tags.(last) and v = q.vals.(last) in
    q.vals.(last) <- top (* keep slot initialized; avoids space leak concerns *);
    sift_down q k s g v
  end;
  top

let pop q =
  if q.size = 0 then None
  else begin
    let key = q.keys.(0) in
    let value = pop_exn q in
    Some (key, value)
  end

let clear q =
  q.keys <- [||];
  q.seqs <- [||];
  q.tags <- [||];
  q.vals <- [||];
  q.size <- 0

let to_sorted_list q =
  let copy =
    {
      keys = Array.copy q.keys;
      seqs = Array.copy q.seqs;
      tags = Array.copy q.tags;
      vals = Array.copy q.vals;
      size = q.size;
      next_seq = q.next_seq;
    }
  in
  let rec drain acc = match pop copy with None -> List.rev acc | Some kv -> drain (kv :: acc) in
  drain []
