(** Deterministic pseudo-random number generation (SplitMix64).

    All randomness in the simulator flows through this module so that every
    experiment is reproducible from a single integer seed.  The generator is
    the SplitMix64 algorithm of Steele, Lea and Flood (OOPSLA 2014): a 64-bit
    state advanced by a Weyl constant and finalized with an avalanche mixer.
    It is fast, has a period of 2^64, and passes BigCrush. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Generators created from the
    same seed produce identical streams. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val split : t -> t
(** [split g] derives a new generator from [g]'s stream, advancing [g].
    Streams of the parent and child are statistically independent; use this
    to hand sub-seeds to subsystems without coupling their draws. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val draws : t -> int
(** Number of raw 64-bit outputs drawn so far ([copy] preserves the count;
    [split] starts the child at 0).  Rejection sampling in {!int} may draw
    more than once per call — this counts actual state advances, which is
    the equivalence-test currency for "same rng consumption". *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)].  @raise Invalid_argument if [n <= 0]. *)

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)] (53-bit mantissa resolution). *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> float -> float
(** [exponential g mean] draws from Exp with the given mean (inverse-CDF). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation g n] is a uniformly random permutation of [0..n-1]. *)
