(* Flat, index-linked LRU: entries live in parallel arrays (key, value,
   prev, next) indexed by slot, with recency links as slot indices and an
   open-addressing int → slot index table.  No per-entry heap node and no
   hash-bucket cons — [put]/[find]/eviction allocate nothing once the
   value array exists.  Capacity is fixed at creation, so every array is
   preallocated; the value array alone is created lazily at the first
   [put] (there is no 'a dummy to prefill it with).

   The index table stores [slot + 1] per occupied probe, [0] for empty,
   [-1] for a tombstone left by a deletion.  Tombstones accumulate under
   remove/evict churn and are swept by an in-place rebuild once they
   outnumber a quarter of the table — live entries are bounded by
   [capacity <= table/2], so the rebuild cadence is at least
   [table/4] deletions apart. *)

type 'a t = {
  capacity : int;
  keys : int array; (* per-slot key *)
  mutable vals : 'a array; (* created at first put; length = capacity *)
  prev : int array; (* toward MRU end; -1 = none *)
  next : int array; (* toward LRU end; -1 = none *)
  mutable head : int; (* most recently used slot; -1 = empty *)
  mutable tail : int; (* least recently used slot; -1 = empty *)
  mutable len : int;
  free : int array; (* stack of unused slots *)
  mutable free_top : int;
  idx : int array; (* open addressing: slot + 1, 0 = empty, -1 = tombstone *)
  idx_mask : int;
  mutable idx_tombs : int;
  mutable hits : int;
  mutable misses : int;
}

(* Fibonacci-style multiplicative scramble of an int key; keys here are
   dense interned ids, which linear probing over the raw low bits would
   cluster badly. *)
let scramble k =
  let h = k lxor (k lsr 33) in
  let h = h * 0x27220A95FE220589 in
  (h lxor (h lsr 29)) land max_int

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  let table = pow2_at_least (max 16 (2 * capacity)) 16 in
  {
    capacity;
    keys = Array.make (max 1 capacity) 0;
    vals = [||];
    prev = Array.make (max 1 capacity) (-1);
    next = Array.make (max 1 capacity) (-1);
    head = -1;
    tail = -1;
    len = 0;
    free = Array.init (max 1 capacity) (fun i -> capacity - 1 - i);
    free_top = capacity;
    idx = Array.make table 0;
    idx_mask = table - 1;
    idx_tombs = 0;
    hits = 0;
    misses = 0;
  }

let capacity t = t.capacity

let length t = t.len

(* ---- index table ---- *)

let find_slot t k =
  let mask = t.idx_mask in
  let rec probe i =
    match t.idx.(i) with
    | 0 -> -1
    | v when v > 0 && t.keys.(v - 1) = k -> v - 1
    | _ -> probe ((i + 1) land mask)
  in
  probe (scramble k land mask)

let index_insert t k slot =
  let mask = t.idx_mask in
  let rec probe i =
    if t.idx.(i) <= 0 then begin
      if t.idx.(i) < 0 then t.idx_tombs <- t.idx_tombs - 1;
      t.idx.(i) <- slot + 1
    end
    else probe ((i + 1) land mask)
  in
  probe (scramble k land mask)

let sweep_tombs t =
  Array.fill t.idx 0 (Array.length t.idx) 0;
  t.idx_tombs <- 0;
  let rec reindex slot =
    if slot >= 0 then begin
      index_insert t t.keys.(slot) slot;
      reindex t.next.(slot)
    end
  in
  reindex t.head

let index_remove t k =
  let mask = t.idx_mask in
  let rec probe i =
    match t.idx.(i) with
    | 0 -> ()
    | v when v > 0 && t.keys.(v - 1) = k ->
      t.idx.(i) <- -1;
      t.idx_tombs <- t.idx_tombs + 1;
      if 4 * t.idx_tombs > Array.length t.idx then sweep_tombs t
    | _ -> probe ((i + 1) land mask)
  in
  probe (scramble k land mask)

(* ---- recency list ---- *)

let unlink t slot =
  let p = t.prev.(slot) and n = t.next.(slot) in
  if p >= 0 then t.next.(p) <- n else t.head <- n;
  if n >= 0 then t.prev.(n) <- p else t.tail <- p;
  t.prev.(slot) <- -1;
  t.next.(slot) <- -1

let push_front t slot =
  t.next.(slot) <- t.head;
  t.prev.(slot) <- -1;
  if t.head >= 0 then t.prev.(t.head) <- slot else t.tail <- slot;
  t.head <- slot

let promote t slot =
  if t.head <> slot then begin
    unlink t slot;
    push_front t slot
  end

(* ---- operations ---- *)

let find t k =
  match find_slot t k with
  | -1 ->
    t.misses <- t.misses + 1;
    None
  | slot ->
    t.hits <- t.hits + 1;
    promote t slot;
    Some t.vals.(slot)

let peek t k = match find_slot t k with -1 -> None | slot -> Some t.vals.(slot)

let mem t k = find_slot t k >= 0

let free_slot t slot =
  t.free.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1;
  t.len <- t.len - 1

let remove t k =
  match find_slot t k with
  | -1 -> ()
  | slot ->
    unlink t slot;
    index_remove t k;
    free_slot t slot

let evict_lru t =
  let slot = t.tail in
  if slot >= 0 then begin
    unlink t slot;
    index_remove t t.keys.(slot);
    free_slot t slot
  end

let put t k v =
  if t.capacity = 0 then ()
  else
    match find_slot t k with
    | slot when slot >= 0 ->
      t.vals.(slot) <- v;
      promote t slot
    | _ ->
      if t.len >= t.capacity then evict_lru t;
      if Array.length t.vals = 0 then t.vals <- Array.make t.capacity v;
      t.free_top <- t.free_top - 1;
      let slot = t.free.(t.free_top) in
      t.len <- t.len + 1;
      t.keys.(slot) <- k;
      t.vals.(slot) <- v;
      index_insert t k slot;
      push_front t slot

let fold t ~init ~f =
  let rec go acc slot = if slot < 0 then acc else go (f acc t.keys.(slot) t.vals.(slot)) t.next.(slot) in
  go init t.head

let fold_until t ~init ~f =
  let rec go acc slot =
    if slot < 0 then acc
    else
      match f acc t.keys.(slot) t.vals.(slot) with
      | Either.Left acc -> go acc t.next.(slot)
      | Either.Right acc -> acc
  in
  go init t.head

let iter t ~f = fold t ~init:() ~f:(fun () k v -> f k v)

let keys_mru_order t = List.rev (fold t ~init:[] ~f:(fun acc k _ -> k :: acc))

let hits t = t.hits

let misses t = t.misses

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let clear t =
  Array.fill t.idx 0 (Array.length t.idx) 0;
  t.idx_tombs <- 0;
  (* Entry values stay in [vals] until their slots are reused: bounded
     retention (<= capacity stale references), traded against needing a
     dummy 'a to scrub with. *)
  for i = 0 to Array.length t.free - 1 do
    t.free.(i) <- t.capacity - 1 - i
  done;
  t.free_top <- t.capacity;
  Array.fill t.prev 0 (Array.length t.prev) (-1);
  Array.fill t.next 0 (Array.length t.next) (-1);
  t.head <- -1;
  t.tail <- -1;
  t.len <- 0
