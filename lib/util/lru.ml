type 'a node = {
  key : int;
  mutable value : 'a;
  mutable prev : 'a node option; (* toward MRU end *)
  mutable next : 'a node option; (* toward LRU end *)
}

type 'a t = {
  capacity : int;
  table : (int, 'a node) Hashtbl.t;
  mutable head : 'a node option; (* most recently used *)
  mutable tail : 'a node option; (* least recently used *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  {
    capacity;
    table = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
  }

let capacity t = t.capacity

let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let promote t node =
  match t.head with
  | Some h when h == node -> ()
  | _ ->
    unlink t node;
    push_front t node

let find t k =
  match Hashtbl.find_opt t.table k with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some node ->
    t.hits <- t.hits + 1;
    promote t node;
    Some node.value

let peek t k = Option.map (fun node -> node.value) (Hashtbl.find_opt t.table k)

let mem t k = Hashtbl.mem t.table k

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table k

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key

let put t k v =
  if t.capacity = 0 then ()
  else
    match Hashtbl.find_opt t.table k with
    | Some node ->
      node.value <- v;
      promote t node
    | None ->
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let node = { key = k; value = v; prev = None; next = None } in
      Hashtbl.add t.table k node;
      push_front t node

let fold t ~init ~f =
  let rec go acc = function
    | None -> acc
    | Some node -> go (f acc node.key node.value) node.next
  in
  go init t.head

let fold_until t ~init ~f =
  let rec go acc = function
    | None -> acc
    | Some node -> (
      match f acc node.key node.value with
      | Either.Left acc -> go acc node.next
      | Either.Right acc -> acc)
  in
  go init t.head

let iter t ~f = fold t ~init:() ~f:(fun () k v -> f k v)

let keys_mru_order t = List.rev (fold t ~init:[] ~f:(fun acc k _ -> k :: acc))

let hits t = t.hits

let misses t = t.misses

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
