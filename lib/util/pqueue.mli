(** Mutable min-priority queue on float keys (struct-of-arrays binary heap).

    The event queue of the discrete-event engine.  Ties on the key are broken
    by insertion order (FIFO), which makes simulations deterministic even when
    many events share a timestamp.  Keys, sequence numbers, and values live in
    parallel arrays, so steady-state add/pop allocates nothing. *)

type 'a t

val create : unit -> 'a t
(** Empty queue. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> float -> 'a -> unit
(** [add q key v] inserts [v] with priority [key], a sequence number from
    the queue's internal counter, and tag 0. *)

val add_tagged : 'a t -> key:float -> seq:int -> tag:int -> 'a -> unit
(** Insert with a caller-supplied sequence number and tag.  The tag is an
    opaque payload (readable via {!top_tag}); ordering is (key, seq) as
    always.  Callers mixing [add_tagged] with {!add} own the burden of
    keeping sequence numbers unique per key. *)

val min : 'a t -> (float * 'a) option
(** Smallest key and its value, without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the entry with the smallest key; [None] when empty.
    Among equal keys, the earliest-inserted entry is returned first. *)

val top_key : 'a t -> float
(** Smallest key without removal; undefined when the queue is empty (check
    [is_empty] first).  Allocation-free counterpart of [min]. *)

val top_seq : 'a t -> int
(** Sequence number of the minimum entry; undefined when empty. *)

val top_tag : 'a t -> int
(** Tag of the minimum entry; undefined when empty. *)

val pop_exn : 'a t -> 'a
(** Remove the minimum entry and return its value without boxing the key.
    @raise Invalid_argument when empty. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> (float * 'a) list
(** Drain a copy of the queue in priority order (for tests/inspection);
    the queue itself is unchanged. *)
