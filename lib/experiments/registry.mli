(** Experiment catalog: one entry per table/figure of the paper (plus the
    §4.4 ablation), each runnable at an arbitrary scale.  Used by the CLI
    and the benchmark harness. *)

type entry = {
  id : string;  (** e.g. "fig3" *)
  title : string;
  run : ?scale:float -> ?duration:float -> ?seed:int -> unit -> unit;
      (** run and print; [duration] is in simulated seconds and is ignored
          by entries without a time axis (table1) *)
}

val all : entry list

val find : string -> entry option

val ids : unit -> string list
