(** Resilience under canned chaos campaigns, across replication factors.

    The paper's figures measure steady-state load balance; this figure
    measures the {e recovery} story the abstract promises ("graceful
    performance degradation" under failure): for each canned chaos
    campaign and each [r_fact], the windowed availability floor during
    the fault era, the drop fraction, and the mean time to reconvergence
    after the recovery actions.  Higher replication budgets should buy a
    higher availability floor and a faster return to baseline. *)

open Terradir
open Terradir_util
module Chaos = Terradir_chaos

type row = {
  campaign : string;
  r_fact : float;
  baseline_availability : float;
  min_availability : float;
  drop_fraction : float;
  unresolved : int;
  recoveries : int;
  recovered : int;
  mean_ttr : float option;
}

type result = { rows : row list }

let r_facts = [ 0.5; 1.0; 2.0 ]

(* Roughly the calibrated mid-utilization point of the figure suite:
   a few queries per server-second keeps the baseline comfortably
   available while leaving headroom for the fault era to hurt. *)
let rate_per_server = 4.0

let run ?(scale = 1.0 /. 16.0) ?duration ?(seed = 42) () =
  ignore (duration : float option) (* campaign timelines are fixed-length *);
  if scale <= 0.0 || scale > 1.0 then invalid_arg "Resilience.run: scale must be in (0, 1]";
  let servers = max 8 (int_of_float (Float.round (float_of_int Common.paper_servers *. scale))) in
  let rate = rate_per_server *. float_of_int servers in
  let specs =
    List.concat_map
      (fun campaign -> List.map (fun r_fact -> (campaign, r_fact)) r_facts)
      Chaos.Campaigns.all
  in
  let rows =
    Runner.map
      (fun (campaign, r_fact) ->
        let config = Runner.with_engine_config { Config.default with Config.r_fact } in
        let report = Chaos.Campaigns.run_campaign ~config campaign ~servers ~rate ~seed in
        let recovered =
          List.length
            (List.filter
               (fun r -> Option.is_some r.Chaos.Report.r_reconverged)
               report.Chaos.Report.recoveries)
        in
        let totals = report.Chaos.Report.totals in
        {
          campaign = campaign.Chaos.Campaigns.name;
          r_fact;
          baseline_availability =
            (match report.Chaos.Report.baseline with
            | Some b -> b.Chaos.Report.b_availability
            | None -> Float.nan);
          min_availability = Chaos.Report.min_fault_availability report;
          drop_fraction =
            (if totals.Chaos.Report.injected = 0 then 0.0
             else
               float_of_int totals.Chaos.Report.dropped_total
               /. float_of_int totals.Chaos.Report.injected);
          unresolved = totals.Chaos.Report.unresolved;
          recoveries = List.length report.Chaos.Report.recoveries;
          recovered;
          mean_ttr = Chaos.Report.mean_time_to_reconvergence report;
        })
      specs
  in
  { rows }

let ttr_cell = function None -> "-" | Some t -> Printf.sprintf "%.1f" t

let print r =
  print_endline "resilience under chaos campaigns: availability floor and reconvergence by r_fact";
  Tablefmt.print
    ~header:
      [
        "campaign"; "r_fact"; "base avail"; "min avail"; "drop frac"; "unresolved"; "recovered";
        "mean ttr (s)";
      ]
    (List.map
       (fun row ->
         [
           row.campaign;
           Printf.sprintf "%.2f" row.r_fact;
           Printf.sprintf "%.4f" row.baseline_availability;
           Printf.sprintf "%.4f" row.min_availability;
           Printf.sprintf "%.4f" row.drop_fraction;
           string_of_int row.unresolved;
           Printf.sprintf "%d/%d" row.recovered row.recoveries;
           ttr_cell row.mean_ttr;
         ])
       r.rows)
