(** Heterogeneity experiment — §5's closing claim: "the most distinguishing
    feature of [deployed P2P] systems is their heterogeneity.  We believe
    that the adaptive nature of our replication model makes it a
    first-class candidate for exploiting system heterogeneity."

    Setup: same aggregate capacity, but per-server speeds drawn log-uniform
    over a spread of 1 (homogeneous), 4, or 16.  §3.1's load metric is a
    locally-defined busy fraction, so slow servers report high loads early
    and shed their hot nodes toward fast ones with no protocol change.
    Expectation: with adaptive replication (BCR) the drop fraction barely
    moves with the spread; caching alone (BC) degrades, since static
    placement strands hot nodes on slow servers. *)

type row = {
  spread : float;
  system : string;
  drop_fraction : float;
  mean_latency : float;
  mean_load_of_max : float;  (** time-average of the per-second max load *)
}

type result = { rows : row list }

val spreads : float list

val run : ?scale:float -> ?duration:float -> ?seed:int -> unit -> result

val print : result -> unit
