(** Shared experiment machinery: the paper's §4.1 constants, namespace
    construction, and utilization-preserving downscaling.

    The paper's methodology (reconstructed where the OCR is damaged; see
    DESIGN.md): 4096 servers; exponential service, mean 20 ms; Poisson
    arrivals, λ from 4000 to 40000/s globally; request queue bound 12;
    constant 25 ms network time; namespace [N_S] a perfectly balanced
    binary tree of 32767 nodes (levels 0..14); namespace [N_C] a Coda-like
    file-system tree of ≈40342 nodes; Zipf orders 0.75/1.00/1.25/1.50.

    {b Scaling.}  Every experiment takes [~scale] (default 1/16).  Servers
    shrink by [scale]; namespaces shrink keeping nodes-per-server constant.
    Paper λ values convert via {!setup}'s [rate] by {e utilization
    calibration}: the paper's rates map linearly to server-utilization
    targets (λ=20000 on N_S ≈ ρ 0.8; the paper doubles λ on N_C "to keep
    approximately the same utilization"), and [rate] inverts a short probe
    measurement of busy-time-per-λ on the scaled system — so per-server
    utilization, the quantity that drives drops, replication and load
    balance, is preserved exactly rather than approximated. *)

type namespace = NS  (** balanced binary tree *) | NC  (** Coda-like file system *)

val paper_servers : int

val paper_lambda_fig3 : float
(** 20000 q/s on N_S. *)

val paper_lambda_fig4 : float
(** 40000 q/s on N_C (the paper doubles the rate to keep utilization). *)

val zipf_orders : float list
(** 0.75, 1.00, 1.25, 1.50. *)

type setup = {
  config : Terradir.Config.t;
  tree : Terradir_namespace.Tree.t;
  rate : float -> float;  (** paper-scale λ → this setup's λ *)
  scale : float;
}

val make :
  ?scale:float ->
  ?features:Terradir.Config.features ->
  ?seed:int ->
  ?config_tweak:(Terradir.Config.t -> Terradir.Config.t) ->
  namespace ->
  setup
(** Build a config + namespace at the given scale.  [config_tweak] runs last
    (after sizing), for per-experiment knob changes.
    @raise Invalid_argument if [scale] is outside (0, 1]. *)

val cluster : ?obs:Terradir_obs.Obs.t -> setup -> Terradir.Cluster.t
(** Fresh cluster for the setup; [obs] (default the null sink) is passed
    straight to {!Terradir.Cluster.create}. *)

val warmup_for : float -> float
(** Staggered uniform warmup before a Zipf stream, per order (§4.2: the
    unif component runs longer in 10 s increments): 40 s for 0.75 up to
    70 s for 1.50. *)

val uzipf_stream : setup -> paper_rate:float -> alpha:float -> duration:float -> Terradir_workload.Stream.phase list
(** Warmup + Zipf segments with instant re-rankings every 45 s, filling
    [duration] seconds. *)

val unif_stream : setup -> paper_rate:float -> duration:float -> Terradir_workload.Stream.phase list

val per_second_fraction : Terradir_util.Timeseries.t -> rate:float -> bins:int -> float array
(** Per-second event counts divided by [rate] (the paper's "fraction of λ"
    series), padded/truncated to [bins]. *)

val mean_depth : Terradir_namespace.Tree.t -> float

val log10_or_zero : float -> float
(** log10, with 0 mapped to 0 (for the paper's log-scale columns). *)
