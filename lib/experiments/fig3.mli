(** Figure 3: fraction of queries dropped every second (relative to λ) over
    time, namespace N_S, λ = 20000 q/s paper scale.

    Five curves: unif and uzipf at orders 0.75–1.50.  The uzipf streams
    begin with staggered uniform warmups; each Zipf segment re-ranks node
    popularity instantly, producing the paper's drop spikes that the
    replication protocol then flattens. *)

type result = {
  duration : float;
  scaled_rate : float;
  series : (string * float array) list;  (** per-second drop fraction *)
}

val run : ?scale:float -> ?duration:float -> ?seed:int -> unit -> result

val summarize : result -> (string * float * float) list
(** Per stream: (label, mean drop fraction, peak drop fraction). *)

val print : result -> unit
