(** Table 1: server–node relationships and the state kept for each.

    The table itself is a design artifact; here we re-derive it from the
    live implementation: build a small cluster, induce replication and
    caching through traffic, and check that a server holding each
    relationship kind actually maintains exactly the state the table
    claims. *)

val canonical : (string * bool list) list
(** The paper's table: kind → (name, map, data, meta, context) presence. *)

type result = { kinds_seen : string list; verified : bool }

val run : ?scale:float -> ?seed:int -> unit -> result

val print : result -> unit
