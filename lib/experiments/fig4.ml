(** Figure 4: fraction of replicas created every second (relative to λ) over
    time, namespace N_C (Coda-like), λ = 40000 q/s paper scale (the paper
    doubles the rate on N_C to hold utilization roughly constant).

    Spikes align with warmup (hierarchical stabilization) and with each
    instantaneous popularity re-ranking; between shifts the creation rate
    decays as the configuration adapts. *)

open Terradir
open Terradir_util

type result = {
  duration : float;
  scaled_rate : float;
  series : (string * float array) list;  (** per-second replica-creation fraction *)
}

let run ?scale ?(duration = 250.0) ?(seed = 42) () =
  (* One pool cell per stream; each builds its own setup and cluster. *)
  let series =
    Runner.map
      (fun (label, phases) ->
        let setup = Common.make ?scale ~seed Common.NC in
        let cluster = Runner.run_phases setup phases in
        let fractions =
          Common.per_second_fraction (Cluster.metrics cluster).Metrics.replicas_ts
            ~rate:(setup.Common.rate Common.paper_lambda_fig4)
            ~bins:(int_of_float duration)
        in
        (label, fractions))
      (Runner.named_streams
         (Common.make ?scale ~seed Common.NC)
         ~paper_rate:Common.paper_lambda_fig4 ~duration)
  in
  let setup = Common.make ?scale ~seed Common.NC in
  { duration; scaled_rate = setup.Common.rate Common.paper_lambda_fig4; series }

let print r =
  Printf.printf "Figure 4 — replicas created per second / lambda (N_C, lambda=%.0f scaled)\n"
    r.scaled_rate;
  Tablefmt.series ~title:"fig4: replica creation fraction per second" ~time_label:"t(s)"
    ~columns:r.series;
  Tablefmt.print ~header:[ "stream"; "total replicas created" ]
    (List.map
       (fun (label, fr) ->
         let total = Array.fold_left ( +. ) 0.0 fr *. r.scaled_rate in
         [ label; Printf.sprintf "%.0f" total ])
       r.series)
