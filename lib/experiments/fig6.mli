(** Figure 6: utilization and load balance.  N_S under uzipf1.00 with
    instant re-rankings, at three arrival rates (paper λ = 4000, 10000,
    20000 ≈ utilizations 0.15 / 0.4 / 0.8).

    Left panel: per-second mean and maximum server load — peaks follow each
    popularity shift, and the maximum sinks back toward T_high given time.
    Right panel: the maximum averaged over an 11-second window, showing the
    transiency of highly-loaded conditions. *)

type series = {
  label : string;
  mean_load : float array;
  max_load : float array;
  smoothed_max : float array;  (** 11-second trailing average of the max *)
}

type result = { duration : float; runs : series list }

val paper_rates : float list

val smoothing_window : int

val run : ?scale:float -> ?duration:float -> ?seed:int -> unit -> result

val print : result -> unit
