(** Figure 8: stabilization and long-term behavior — replicas created per
    minute over a long run, for unif and uzipf1.00 on both namespaces.

    With no change in the input pattern after the (single) Zipf onset, the
    creation rate decays like an exponential toward quiescence: the paper
    reaches ~2.x replicas/minute after 10000 s (≈ one replica per several
    hundred thousand queries).  The uzipf streams here use a 100 s uniform
    prefix and {e no} re-rankings. *)

type series = { label : string; per_minute : float array; final_rate : float }

type result = { duration : float; runs : series list }

val run : ?scale:float -> ?duration:float -> ?seed:int -> unit -> result

val print : result -> unit
