(** Figure 8: stabilization and long-term behavior — replicas created per
    minute over a long run, for unif and uzipf1.00 on both namespaces.

    With no change in the input pattern after the (single) Zipf onset, the
    creation rate decays like an exponential toward quiescence: the paper
    reaches ~2.x replicas/minute after 10000 s (≈ one replica per several
    hundred thousand queries).  The uzipf streams here use a 100 s uniform
    prefix and {e no} re-rankings. *)

open Terradir
open Terradir_util
open Terradir_workload

type series = { label : string; per_minute : float array; final_rate : float }

type result = { duration : float; runs : series list }

let run ?scale ?(duration = 1200.0) ?(seed = 42) () =
  let specs =
    [
      ("unifS", Common.NS, Common.paper_lambda_fig3, None);
      ("uzipfS1.00", Common.NS, Common.paper_lambda_fig3, Some 1.00);
      ("unifC", Common.NC, Common.paper_lambda_fig4, None);
      ("uzipfC1.00", Common.NC, Common.paper_lambda_fig4, Some 1.00);
    ]
  in
  (* One pool cell per (namespace, stream) spec — fig8 runs are the
     longest in the suite, so this is where fan-out pays the most. *)
  let runs =
    Runner.map
      (fun (label, ns, paper_rate, alpha) ->
        let setup = Common.make ?scale ~seed ns in
        let rate = setup.Common.rate paper_rate in
        let phases =
          match alpha with
          | None -> Stream.unif ~rate ~duration
          | Some alpha ->
            (* §4.4: uniform component of 100 s, then one unshifted Zipf
               phase for the rest of the run. *)
            {
              Stream.duration = 100.0;
              rate;
              dist = Stream.Uniform;
            }
            :: [ { Stream.duration = duration -. 100.0; rate; dist = Stream.Zipf { alpha; reshuffle = true } } ]
        in
        let cluster = Runner.run_phases setup phases in
        let per_second = Timeseries.sums (Cluster.metrics cluster).Metrics.replicas_ts in
        let minutes = (int_of_float duration + 59) / 60 in
        let per_minute =
          Array.init minutes (fun m ->
              let acc = ref 0.0 in
              for s = 60 * m to min ((60 * (m + 1)) - 1) (Array.length per_second - 1) do
                acc := !acc +. per_second.(s)
              done;
              !acc)
        in
        let final_rate =
          if minutes = 0 then 0.0
          else per_minute.(minutes - 1)
        in
        { label; per_minute; final_rate })
      specs
  in
  { duration; runs }

let print r =
  print_endline "Figure 8 — replicas created per minute over a long run";
  let columns = List.map (fun s -> (s.label, s.per_minute)) r.runs in
  Tablefmt.series ~title:"fig8: replicas per minute" ~time_label:"minute" ~columns;
  Tablefmt.print ~header:[ "stream"; "first-minute"; "final-minute" ]
    (List.map
       (fun s ->
         [
           s.label;
           Tablefmt.float_cell ~decimals:1 (if Array.length s.per_minute > 0 then s.per_minute.(0) else 0.0);
           Tablefmt.float_cell ~decimals:1 s.final_rate;
         ])
       r.runs)
