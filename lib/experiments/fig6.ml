(** Figure 6: utilization and load balance.  N_S under uzipf1.00 with
    instant re-rankings, at three arrival rates (paper λ = 4000, 10000,
    20000 ≈ utilizations 0.15 / 0.4 / 0.8).

    Left panel: per-second mean and maximum server load — peaks follow each
    popularity shift, and the maximum sinks back toward T_high given time.
    Right panel: the maximum averaged over an 11-second window, showing the
    transiency of highly-loaded conditions. *)

open Terradir
open Terradir_util

type series = {
  label : string;
  mean_load : float array;
  max_load : float array;
  smoothed_max : float array;  (** 11-second trailing average of the max *)
}

type result = { duration : float; runs : series list }

let paper_rates = [ 4000.0; 10000.0; 20000.0 ]

let smoothing_window = 11

let run ?scale ?(duration = 250.0) ?(seed = 42) () =
  (* One pool cell per arrival rate. *)
  let runs =
    Runner.map
      (fun paper_rate ->
        let setup = Common.make ?scale ~seed Common.NS in
        let phases =
          Common.uzipf_stream setup ~paper_rate ~alpha:1.00 ~duration
        in
        let cluster = Runner.run_phases setup phases in
        let m = Cluster.metrics cluster in
        {
          label = Printf.sprintf "lambda=%.0f" paper_rate;
          mean_load = Timeseries.means m.Metrics.load_mean_ts;
          max_load = Timeseries.maxima m.Metrics.load_max_ts;
          smoothed_max = Timeseries.smoothed_max m.Metrics.load_max_ts ~window:smoothing_window;
        })
      paper_rates
  in
  { duration; runs }

let print r =
  print_endline "Figure 6 — average and maximum server load (N_S, uzipf1.00 with shifts)";
  let columns =
    List.concat_map
      (fun s -> [ (s.label ^ " avg", s.mean_load); (s.label ^ " max", s.max_load) ])
      r.runs
  in
  Tablefmt.series ~title:"fig6 left: per-second load" ~time_label:"t(s)" ~columns;
  let columns11 = List.map (fun s -> (s.label ^ " max11", s.smoothed_max)) r.runs in
  Tablefmt.series ~title:"fig6 right: max load averaged over 11 s" ~time_label:"t(s)"
    ~columns:columns11;
  Tablefmt.print ~header:[ "run"; "mean of mean load"; "mean of max"; "mean of max11" ]
    (List.map
       (fun s ->
         let avg a =
           if Array.length a = 0 then 0.0
           else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)
         in
         [
           s.label;
           Tablefmt.float_cell (avg s.mean_load);
           Tablefmt.float_cell (avg s.max_load);
           Tablefmt.float_cell (avg s.smoothed_max);
         ])
       r.runs)
