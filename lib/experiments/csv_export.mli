(** Plot-ready CSV export for every experiment.

    Each experiment id writes one or more CSV files (gnuplot/pandas
    friendly) with exactly the series/rows its [print] function shows. *)

val export :
  id:string -> ?scale:float -> ?seed:int -> dir:string -> unit -> string list
(** [export ~id ~dir ()] runs the experiment and writes its CSVs under
    [dir] (created if missing); returns the paths written.
    @raise Invalid_argument on an unknown experiment id. *)

val exportable : string list
(** Ids accepted by {!export}. *)

val series_csv : index_label:string -> (string * float array) list -> string
(** CSV-encode named time/level series as columns, one row per index —
    the encoding every per-second figure export uses (exposed so tests can
    byte-compare figure output against committed goldens). *)

val metrics_csv : Terradir.Metrics.t -> string
(** Machine-readable metric/value rows: one row per
    {!Terradir.Metrics.counter_fields} entry (every cumulative counter,
    unconditionally, under its stable CSV name), then the
    histogram-derived latency and hop statistics as [latency_p50],
    [hops_p99], ….  Derived from the same field-spec list as the struct,
    so the export cannot drift from [Metrics.t]. *)
