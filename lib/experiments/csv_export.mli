(** Plot-ready CSV export for every experiment.

    Each experiment id writes one or more CSV files (gnuplot/pandas
    friendly) with exactly the series/rows its [print] function shows. *)

val export :
  id:string -> ?scale:float -> ?seed:int -> dir:string -> unit -> string list
(** [export ~id ~dir ()] runs the experiment and writes its CSVs under
    [dir] (created if missing); returns the paths written.
    @raise Invalid_argument on an unknown experiment id. *)

val exportable : string list
(** Ids accepted by {!export}. *)

val series_csv : index_label:string -> (string * float array) list -> string
(** CSV-encode named time/level series as columns, one row per index —
    the encoding every per-second figure export uses (exposed so tests can
    byte-compare figure output against committed goldens). *)

val metrics_csv : Terradir.Metrics.t -> string
(** One metric/value row per {!Terradir.Metrics.summary_rows} entry —
    the whole-run counter snapshot (including the network-fault block when
    any fault fired), CSV-encoded for ad-hoc runs and examples. *)
