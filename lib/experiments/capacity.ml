open Terradir
open Terradir_namespace
open Terradir_workload

(* Capacity macro-benchmark: how large a deployment the simulator sustains.

   Unlike the figure experiments, the scenario is sized in queries rather
   than simulated seconds, and the injection rate is ANALYTIC — no
   calibration probe.  A probe at 100k servers would cost as much as the
   measurement itself; instead the rate is derived from the quantities the
   probe would estimate: each resolved query occupies roughly
   [est_hops × service_mean] seconds of aggregate server time, so

     rate = ρ · S / (service_mean · est_hops)

   targets per-server utilization ρ directly.  [est_hops] is the
   ascend-plus-descend routing bound [2·mean_depth + 1] — a deliberate
   overestimate once caches warm, which keeps the realized MEAN
   utilization under the target.  The hierarchy is still a hierarchy: at
   full scale the handful of servers owning the top of the tree saturate
   transiently until path caches and soft-state replicas absorb them, so
   a visible drop fraction at 100k servers is expected protocol behavior,
   not a mis-sized rate — the benchmark measures engine throughput
   (events/sec), which drops do not distort. *)

type result = {
  servers : int;
  domains : int;  (** engine domains the run executed on *)
  nodes : int;
  rate : float;  (** analytic injection rate, queries/s *)
  sim_duration : float;  (** simulated seconds driven *)
  events : int;  (** engine events executed *)
  injected : int;
  resolved : int;
  dropped : int;
  drop_fraction : float;
  mean_hops : float;
  mean_latency : float;
  replicas_created : int;
}

type phase_gc = {
  pg_phase : string;
  pg_events : int;
  pg_minor_words : float;
  pg_promoted_words : float;
  pg_major_words : float;
  pg_minor_collections : int;
  pg_major_collections : int;
}

let reference_servers = 100_000

(* 2.1M expected: arrivals are Poisson, so the realized count fluctuates
   ~±0.1% around the expectation — the margin keeps a full-scale run
   safely above the two-million-query mark. *)
let reference_queries = 2_100_000

let target_utilization = 0.5

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

(* Fig. 9's size-dependent knobs (cache and map sizes grow
   logarithmically), plus the calendar-queue scheduler — at capacity scale
   the heap's O(log n) pops dominate the engine, and scheduler choice is
   behavior-neutral by construction. *)
let config_for ~servers ~seed =
  let log2s = log2i servers in
  {
    Config.default with
    Config.num_servers = servers;
    placement = Config.Round_robin;
    cache_slots = max 4 ((2 * log2s) - 2);
    r_map = max 2 (log2s - 2);
    scheduler = `Calendar;
    seed;
  }

(* Warmup/steady split point, as a fraction of the stream duration.  The
   first quarter covers the transient the module comment describes — cold
   caches, unreplicated tree top — after which allocation is the hot
   path's own (the quantity the zero-allocation work gates). *)
let warmup_fraction = 0.25

let run_instrumented ?servers ?queries ?domains ?(scale = 1.0 /. 16.0) ?(seed = 42) () =
  if scale <= 0.0 || scale > 1.0 then invalid_arg "Capacity.run: scale must be in (0, 1]";
  let servers =
    match servers with
    | Some s when s >= 8 -> s
    | Some _ -> invalid_arg "Capacity.run: servers must be >= 8"
    | None -> max 8 (int_of_float (Float.round (float_of_int reference_servers *. scale)))
  in
  let queries =
    match queries with
    | Some q when q >= 1 -> q
    | Some _ -> invalid_arg "Capacity.run: queries must be >= 1"
    | None -> max 1000 (int_of_float (Float.round (float_of_int reference_queries *. scale)))
  in
  let config =
    let c = Runner.with_engine_config (config_for ~servers ~seed) in
    match domains with
    | None -> c
    | Some d when d >= 1 -> { c with Config.engine_domains = d }
    | Some _ -> invalid_arg "Capacity.run: domains must be >= 1"
  in
  (* ~8 nodes per server, as in the N_S experiments. *)
  let levels = max 3 (log2i (8 * servers)) in
  let tree = Build.balanced ~arity:2 ~levels in
  let est_hops = (2.0 *. Common.mean_depth tree) +. 1.0 in
  let rate =
    target_utilization *. float_of_int servers /. (config.Config.service_mean *. est_hops)
  in
  let sim_duration = float_of_int queries /. rate in
  let cluster = Cluster.create ~config ~tree () in
  (* Same trajectory as the historical [Scenario.run] call (drain 2 s):
     the engine is time-ordered, so stopping at an intermediate instant
     and resuming replays the identical event sequence.  The split buys
     phase-resolved GC deltas — warmup allocation (bootstrap churn,
     growing stores) reported apart from the steady-state hot path the
     pooling work holds at zero.  Deltas are taken here, in the driving
     domain, and folded into {!Runner}'s global accounting; with K >= 2
     engine domains the lanes' own allocation folds in only as they are
     joined, so per-phase numbers are exact on the K = 1 reference run
     CI gates on. *)
  let d =
    Scenario.start cluster ~phases:(Stream.unif ~rate ~duration:sim_duration)
      ~seed:(seed + 1009)
  in
  let measure_phase name ~until =
    let e0 = Terradir_sim.Engine.events_executed cluster.Cluster.engine in
    let g0 = Gc.quick_stat () in
    Cluster.run_until cluster until;
    let g1 = Gc.quick_stat () in
    let e1 = Terradir_sim.Engine.events_executed cluster.Cluster.engine in
    {
      pg_phase = name;
      pg_events = e1 - e0;
      pg_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      pg_promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
      pg_major_words = g1.Gc.major_words -. g0.Gc.major_words;
      pg_minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
      pg_major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
    }
  in
  let stream_end = Scenario.stream_end d in
  let warmup = measure_phase "warmup" ~until:(warmup_fraction *. stream_end) in
  let steady = measure_phase "steady_state" ~until:(stream_end +. 2.0) in
  Runner.record_events cluster;
  List.iter
    (fun pg ->
      Runner.add_alloc
        ~minor:(int_of_float pg.pg_minor_words)
        ~promoted:(int_of_float pg.pg_promoted_words))
    [ warmup; steady ];
  let m = Cluster.metrics cluster in
  ( {
      servers;
      domains = Terradir_sim.Engine.domains cluster.Cluster.engine;
      nodes = Tree.size tree;
      rate;
      sim_duration;
      events = Terradir_sim.Engine.events_executed cluster.Cluster.engine;
      injected = m.Metrics.injected;
      resolved = m.Metrics.resolved;
      dropped = Metrics.dropped_total m;
      drop_fraction = Metrics.drop_fraction m;
      mean_hops = Terradir_util.Stats.mean m.Metrics.hops;
      mean_latency = Terradir_util.Stats.mean m.Metrics.latency;
      replicas_created = m.Metrics.replicas_created;
    },
    [ warmup; steady ] )

let run ?servers ?queries ?domains ?scale ?seed () =
  fst (run_instrumented ?servers ?queries ?domains ?scale ?seed ())

(* [domains] is deliberately absent: rows feed the golden CSV, which must
   stay byte-identical for any engine-domain count.  The bench harness
   reports the domain count alongside wall-clock in its own JSON. *)
let rows r =
  [
    ("servers", string_of_int r.servers);
    ("nodes", string_of_int r.nodes);
    ("rate_qps", Printf.sprintf "%.4f" r.rate);
    ("sim_duration_s", Printf.sprintf "%.4f" r.sim_duration);
    ("events", string_of_int r.events);
    ("injected", string_of_int r.injected);
    ("resolved", string_of_int r.resolved);
    ("dropped", string_of_int r.dropped);
    ("drop_fraction", Printf.sprintf "%.6f" r.drop_fraction);
    ("mean_hops", Printf.sprintf "%.4f" r.mean_hops);
    ("mean_latency_s", Printf.sprintf "%.6f" r.mean_latency);
    ("replicas_created", string_of_int r.replicas_created);
  ]

let print r =
  print_endline "Capacity — macro throughput scenario (unif stream, analytic rate)";
  Terradir_util.Tablefmt.print ~header:[ "metric"; "value" ]
    (List.map (fun (k, v) -> [ k; v ]) (rows r))
