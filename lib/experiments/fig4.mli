(** Figure 4: fraction of replicas created every second (relative to λ) over
    time, namespace N_C (Coda-like), λ = 40000 q/s paper scale (the paper
    doubles the rate on N_C to hold utilization roughly constant).

    Spikes align with warmup (hierarchical stabilization) and with each
    instantaneous popularity re-ranking; between shifts the creation rate
    decays as the configuration adapts. *)

type result = {
  duration : float;
  scaled_rate : float;
  series : (string * float array) list;  (** per-second replica-creation fraction *)
}

val run : ?scale:float -> ?duration:float -> ?seed:int -> unit -> result

val print : result -> unit
