open Terradir
open Terradir_util
open Terradir_workload

(* ------------------------------------------------------------------ *)
(* Parallel fan-out                                                    *)
(* ------------------------------------------------------------------ *)

(* Set from the main domain before any fan-out (tests pin it); reads from
   worker closures never happen — [jobs] is resolved by the dispatching
   domain only. *)
let forced_jobs = ref None (* race: bare-shared-mutable single-writer: pinned by the dispatching domain before fan-out, workers only read *)

let set_jobs j = forced_jobs := j

let jobs () =
  match !forced_jobs with
  | Some j -> max 1 j
  | None -> (
    match Sys.getenv_opt "TERRADIR_JOBS" with
    | Some v -> (
      match int_of_string_opt v with
      | Some j when j >= 1 -> j
      | Some _ | None -> Pool.recommended_jobs ())
    | None -> Pool.recommended_jobs ())

let with_jobs j f =
  let saved = !forced_jobs in
  forced_jobs := Some j;
  Fun.protect ~finally:(fun () -> forced_jobs := saved) f

let map f cells = Pool.map ~domains:(jobs ()) f cells

(* ------------------------------------------------------------------ *)
(* Engine parallelism                                                  *)
(* ------------------------------------------------------------------ *)

(* Domains INSIDE each simulation's event engine — orthogonal to [jobs],
   which fans independent cells out.  Same discipline: pinned by the main
   domain, read when a cluster is built.  The engine's determinism
   contract makes this knob observable-output-neutral. *)
let forced_engine_domains = ref None (* race: bare-shared-mutable single-writer: pinned by the dispatching domain before fan-out, workers only read *)

let set_engine_domains d = forced_engine_domains := d

let with_engine_domains d f =
  let saved = !forced_engine_domains in
  forced_engine_domains := Some d;
  Fun.protect ~finally:(fun () -> forced_engine_domains := saved) f

let engine_domains () =
  match !forced_engine_domains with
  | Some _ as d -> d
  | None -> (
    match Sys.getenv_opt "TERRADIR_ENGINE_DOMAINS" with
    | Some v -> ( match int_of_string_opt v with Some d when d >= 1 -> Some d | _ -> None)
    | None -> None)

(* Apply the pinned/environment override, if any, to a cluster config. *)
let with_engine_config config =
  match engine_domains () with
  | None -> config
  | Some d ->
    if d = config.Config.engine_domains then config
    else { config with Config.engine_domains = max 1 d }

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

(* Like [forced_jobs]: written by the main domain before any fan-out.
   Worker closures read it when they build their cluster — each cell gets
   its OWN fresh sink (sinks are single-cluster mutable state and must
   never be shared across domains). *)
let forced_obs : (Terradir_obs.Obs.level * int) option ref = ref None (* race: bare-shared-mutable single-writer: pinned by the dispatching domain before fan-out, workers only read *)

let set_obs v = forced_obs := v

let with_obs ~level ?(probe_every = 2000) f =
  let saved = !forced_obs in
  forced_obs := Some (level, probe_every);
  Fun.protect ~finally:(fun () -> forced_obs := saved) f

let fresh_obs () =
  match !forced_obs with
  | None -> None
  | Some (level, probe_every) -> Some (Terradir_obs.Obs.create ~probe_every ~level ())

(* ------------------------------------------------------------------ *)
(* Simulation-cost accounting                                          *)
(* ------------------------------------------------------------------ *)

(* Engine events executed across every run driven through [run_phases],
   summed atomically so concurrent domains account correctly.  The sum is
   order-independent, hence identical for any jobs count. *)
let events = Atomic.make 0

let events_executed () = Atomic.get events

let record_events cluster =
  ignore
    (Atomic.fetch_and_add events
       (Terradir_sim.Engine.events_executed cluster.Cluster.engine))

(* GC-pressure accounting, the memory twin of the event counter: words
   allocated while instrumented regions ran, summed atomically.  The
   before/after [Gc.quick_stat] delta MUST be taken from inside the
   executing domain — in OCaml 5 the allocation counters cover the
   calling domain (plus already-terminated ones), so a coordinator
   reading around a [Pool.map] fan-out would see none of its workers'
   allocation.  Engine lanes spawned and joined within a region fold
   their counters into that region's delta at join time. *)
let minor_words = Atomic.make 0

let promoted_words = Atomic.make 0

let minor_words_allocated () = Atomic.get minor_words

let promoted_words_allocated () = Atomic.get promoted_words

let add_alloc ~minor ~promoted =
  ignore (Atomic.fetch_and_add minor_words minor);
  ignore (Atomic.fetch_and_add promoted_words promoted)

let record_alloc f =
  let before = Gc.quick_stat () in
  Fun.protect f ~finally:(fun () ->
      let after = Gc.quick_stat () in
      add_alloc
        ~minor:(int_of_float (after.Gc.minor_words -. before.Gc.minor_words))
        ~promoted:(int_of_float (after.Gc.promoted_words -. before.Gc.promoted_words)))

(* ------------------------------------------------------------------ *)
(* Per-cell driver                                                     *)
(* ------------------------------------------------------------------ *)

let run_phases ?(workload_seed = 1009) setup phases =
  record_alloc (fun () ->
      let setup = { setup with Common.config = with_engine_config setup.Common.config } in
      let cluster = Common.cluster ?obs:(fresh_obs ()) setup in
      Scenario.run cluster ~phases ~seed:workload_seed;
      record_events cluster;
      cluster)

let named_streams setup ~paper_rate ~duration =
  ignore (Config.validate setup.Common.config);
  ("unif", Common.unif_stream setup ~paper_rate ~duration)
  :: List.map
       (fun alpha ->
         ( Printf.sprintf "uzipf%.2f" alpha,
           Common.uzipf_stream setup ~paper_rate ~alpha ~duration ))
       Common.zipf_orders
