(** Table 1: server–node relationships and the state kept for each.

    The table itself is a design artifact; here we re-derive it from the
    live implementation: build a small cluster, induce replication and
    caching through traffic, and check that a server holding each
    relationship kind actually maintains exactly the state the table
    claims. *)

open Terradir
open Terradir_util
open Terradir_namespace
open Terradir_workload

(* name, map, data, meta, context *)
let canonical =
  [
    ("Owned", [ true; true; true; true; true ]);
    ("Replicated", [ true; true; false; true; true ]);
    ("Neighboring", [ true; true; false; false; false ]);
    ("Cached", [ true; true; false; false; false ]);
  ]

type result = { kinds_seen : string list; verified : bool }

let run ?scale ?(seed = 42) () =
  ignore scale;
  let tree = Build.balanced ~arity:2 ~levels:6 in
  let config =
    {
      Config.default with
      Config.num_servers = 12;
      seed;
      high_water = 0.2 (* replicate eagerly so every kind materializes *);
      min_delta = 0.05;
    }
  in
  let cluster = Cluster.create ~config ~tree () in
  let rate = 250.0 in
  Scenario.run cluster
    ~phases:
      [ { Stream.duration = 30.0; rate; dist = Stream.Zipf { alpha = 1.2; reshuffle = true } } ]
    ~seed:(seed + 1);
  Runner.record_events cluster;
  let kinds =
    Array.to_list cluster.Cluster.servers
    |> List.concat_map (fun s -> List.map snd (Server.state_kinds s))
    |> List.sort_uniq String.compare
  in
  let verified =
    List.for_all (fun (kind, _) -> List.mem kind kinds) canonical
    && (try
          Cluster.check_invariants cluster;
          true
        with Failure _ -> false)
  in
  { kinds_seen = kinds; verified }

let print r =
  print_endline "Table 1 — server-node relationships (derived from live state)";
  let mark b = if b then "x" else "" in
  Tablefmt.print
    ~header:[ "Node state"; "Name"; "Map"; "Data"; "Meta"; "Context" ]
    (List.map (fun (kind, cols) -> kind :: List.map mark cols) canonical);
  Printf.printf "state kinds observed in a live cluster: [%s]\n"
    (String.concat "; " r.kinds_seen);
  Printf.printf "verified against implementation: %b\n" r.verified
