(** Figure 9: scalability.  System size doubles step by step; nodes per
    server stay constant (~8, balanced binary namespace), λ grows
    proportionally, cache slots grow logarithmically (2·log2 S − 2) and
    r_map grows logarithmically.

    Reported per size: average query latency (hops and seconds — the paper
    plots a logarithmically growing latency), log10 of replication events,
    and log10 of dropped queries (both roughly linear in system size,
    hence straight lines on the log scale). *)

type row = {
  servers : int;
  nodes : int;
  mean_hops : float;
  mean_latency : float;
  replications : int;
  drops : int;
  resolved : int;
}

type result = { rows : row list }

val sizes : ?scale:float -> unit -> int list
(** Scaled counterpart of the paper's 2^9..2^14 sweep: six doublings,
    starting from 512·scale servers (so scale=1 reproduces 2^9..2^14). *)

val run : ?scale:float -> ?duration:float -> ?seed:int -> unit -> result

val print : result -> unit
