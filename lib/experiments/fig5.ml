(** Figure 5: overall dropped-query fraction for the base system (B),
    caching only (BC), and caching + replication (BCR), across the ten
    standard streams (unif/uzipf × N_S/N_C).

    The paper's qualitative result: B is barely usable under load; BC can
    even {e aggravate} N_S (cache pointers concentrate traffic upstream
    without shedding it); BCR keeps drops low everywhere. *)

open Terradir
open Terradir_util

type cell = { stream : string; system : string; drop_fraction : float }

type result = { cells : cell list }

let systems = [ ("B", Config.base); ("BC", Config.bc); ("BCR", Config.bcr) ]

let stream_specs =
  (* (suffix, namespace, paper rate) *)
  [ ("S", Common.NS, Common.paper_lambda_fig3); ("C", Common.NC, Common.paper_lambda_fig4) ]

let run ?scale ?(duration = 120.0) ?(seed = 42) () =
  (* Enumerate all 30 (namespace x stream x system) cells up front, then
     run each as a self-contained pool cell. *)
  let specs =
    List.concat_map
      (fun (suffix, ns, paper_rate) ->
        let base_setup = Common.make ?scale ~seed ns in
        let streams = Runner.named_streams base_setup ~paper_rate ~duration in
        List.concat_map
          (fun (stream_label, phases) ->
            List.map
              (fun (system, features) -> (ns, stream_label ^ suffix, phases, system, features))
              systems)
          streams)
      stream_specs
  in
  let cells =
    Runner.map
      (fun (ns, stream, phases, system, features) ->
        let setup = Common.make ?scale ~features ~seed ns in
        let cluster = Runner.run_phases setup phases in
        { stream; system; drop_fraction = Metrics.drop_fraction (Cluster.metrics cluster) })
      specs
  in
  { cells }

let streams_in r =
  List.sort_uniq String.compare (List.map (fun c -> c.stream) r.cells)

let lookup r ~stream ~system =
  match List.find_opt (fun c -> c.stream = stream && c.system = system) r.cells with
  | Some c -> c.drop_fraction
  | None -> Float.nan

let print r =
  print_endline "Figure 5 — fraction of dropped queries: B vs BC vs BCR";
  let header = "stream" :: List.map fst systems in
  let rows =
    List.map
      (fun stream ->
        stream
        :: List.map (fun (system, _) -> Tablefmt.float_cell (lookup r ~stream ~system)) systems)
      (streams_in r)
  in
  Tablefmt.print ~header rows
