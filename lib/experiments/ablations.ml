(** Ablations of the design choices the paper asserts but does not plot.

    - {b Cache policy} (§2.4): "This mixture of close and far nodes
      [path propagation] performs significantly better than caching the
      query endpoints."
    - {b Cache size}: caches add O(log-ish) state per server and claim
      large latency wins even without locality.
    - {b Map size} (§3.7): maps are bounded at r_map entries "for
      scalability reasons" — how much accuracy does a tiny map cost?
    - {b Static vs. adaptive replication} (§2.3): "hierarchical bottlenecks
      can be addressed by static replication mechanisms, [but hot-spots
      and failures] call for an adaptive scheme." *)

open Terradir
open Terradir_util
open Terradir_workload

type row = { dimension : string; variant : string; metrics : (string * float) list }

type result = { rows : row list }

let zipf_phases setup ~duration =
  Common.uzipf_stream setup ~paper_rate:Common.paper_lambda_fig3 ~alpha:1.25 ~duration

(* §2.4's cache claims are made "even in the absence of locality": under
   Zipf demand a handful of endpoint entries covers the hot head, but
   under uniform demand endpoint reuse is nil while path entries
   (ancestors at every level) keep earning shortcuts. *)
let unif_phases setup ~duration =
  Common.unif_stream setup ~paper_rate:Common.paper_lambda_fig3 ~duration

let measure cluster =
  let m = Cluster.metrics cluster in
  [
    ("drop_fraction", Metrics.drop_fraction m);
    ("mean_hops", Stats.mean m.Metrics.hops);
    ("mean_latency_ms", 1000.0 *. Stats.mean m.Metrics.latency);
    ("replicas", float_of_int m.Metrics.replicas_created);
  ]

let run_one ?scale ?(features = Config.bcr) ?(stream = `Zipf) ~seed ~duration ~dimension
    ~variant tweak prep =
  let setup = Common.make ?scale ~features ~seed ~config_tweak:tweak Common.NS in
  let cluster = Common.cluster setup in
  prep cluster;
  let phases =
    match stream with
    | `Zipf -> zipf_phases setup ~duration
    | `Unif -> unif_phases setup ~duration
  in
  Scenario.run cluster ~phases ~seed:(seed + 7);
  Runner.record_events cluster;
  { dimension; variant; metrics = measure cluster }

let no_prep (_ : Cluster.t) = ()

(* Digest shortcuts discover routes independently of the cache, masking
   cache-policy and cache-size differences; those two dimensions therefore
   run with digests off so the cache is the only shortcut mechanism. *)
let no_digests = { Config.bcr with Config.digests = false }

let run ?scale ?(duration = 120.0) ?(seed = 42) () =
  (* Each ablation cell is captured as a thunk (nothing shared across
     cells) and the whole battery is dispatched through the pool. *)
  let one = run_one ?scale ~seed ~duration in
  let cache_policy =
    [
      (fun () ->
        one ~features:no_digests ~stream:`Unif ~dimension:"cache-policy"
          ~variant:"path-propagation"
          (fun c -> { c with Config.cache_policy = Config.Path_propagation })
          no_prep);
      (fun () ->
        one ~features:no_digests ~stream:`Unif ~dimension:"cache-policy"
          ~variant:"endpoints-only"
          (fun c -> { c with Config.cache_policy = Config.Endpoints_only })
          no_prep);
    ]
  in
  let cache_size =
    List.map
      (fun slots () ->
        one ~features:no_digests ~stream:`Unif ~dimension:"cache-size"
          ~variant:(string_of_int slots)
          (fun c -> { c with Config.cache_slots = slots })
          no_prep)
      [ 0; 6; 12; 24; 48 ]
  in
  let map_size =
    List.map
      (fun r_map () ->
        one ~dimension:"r-map" ~variant:(string_of_int r_map)
          (fun c -> { c with Config.r_map = r_map })
          no_prep)
      [ 1; 2; 4; 8 ]
  in
  let static_levels = 4 and static_copies = 3 in
  let static =
    [
      (fun () -> one ~dimension:"replication" ~variant:"adaptive" Fun.id no_prep);
      (fun () ->
        one ~dimension:"replication" ~variant:"static-top-levels"
          (fun c ->
            {
              c with
              Config.features = Config.bc (* no adaptive replication *);
              replica_idle_timeout = 1.0e6 (* static copies must persist *);
            })
          (fun cluster ->
            ignore
              (Static_replication.apply cluster ~levels:static_levels ~copies:static_copies)));
      (fun () ->
        one ~dimension:"replication" ~variant:"static+adaptive"
          (fun c -> c)
          (fun cluster ->
            ignore
              (Static_replication.apply cluster ~levels:static_levels ~copies:static_copies)));
      (fun () ->
        one ~dimension:"replication" ~variant:"none"
          (fun c -> { c with Config.features = Config.bc })
          no_prep);
    ]
  in
  let cells = cache_policy @ cache_size @ map_size @ static in
  { rows = Runner.map (fun cell -> cell ()) cells }

let print r =
  print_endline "Ablations — design choices under uzipf1.25 with shifts (N_S)";
  let header = [ "dimension"; "variant"; "drop fraction"; "hops"; "latency(ms)"; "replicas" ] in
  let cell row key =
    match List.assoc_opt key row.metrics with
    | Some v -> Tablefmt.float_cell ~decimals:(if key = "mean_hops" then 2 else 4) v
    | None -> "-"
  in
  Tablefmt.print ~header
    (List.map
       (fun row ->
         [
           row.dimension;
           row.variant;
           cell row "drop_fraction";
           cell row "mean_hops";
           cell row "mean_latency_ms";
           (match List.assoc_opt "replicas" row.metrics with
           | Some v -> Printf.sprintf "%.0f" v
           | None -> "-");
         ])
       r.rows)
