type entry = {
  id : string;
  title : string;
  run : ?scale:float -> ?duration:float -> ?seed:int -> unit -> unit;
}

let all =
  [
    {
      id = "table1";
      title = "Table 1: server-node relationships";
      run = (fun ?scale ?duration:_ ?seed () -> Table1.print (Table1.run ?scale ?seed ()));
    };
    {
      id = "fig3";
      title = "Fig 3: dropped queries over time (N_S)";
      run = (fun ?scale ?duration ?seed () -> Fig3.print (Fig3.run ?scale ?duration ?seed ()));
    };
    {
      id = "fig4";
      title = "Fig 4: replicas created over time (N_C)";
      run = (fun ?scale ?duration ?seed () -> Fig4.print (Fig4.run ?scale ?duration ?seed ()));
    };
    {
      id = "fig5";
      title = "Fig 5: drop fraction, B vs BC vs BCR";
      run = (fun ?scale ?duration ?seed () -> Fig5.print (Fig5.run ?scale ?duration ?seed ()));
    };
    {
      id = "fig6";
      title = "Fig 6: utilization and load balance";
      run = (fun ?scale ?duration ?seed () -> Fig6.print (Fig6.run ?scale ?duration ?seed ()));
    };
    {
      id = "fig7";
      title = "Fig 7: replicas per namespace level";
      run = (fun ?scale ?duration ?seed () -> Fig7.print (Fig7.run ?scale ?duration ?seed ()));
    };
    {
      id = "fig8";
      title = "Fig 8: stabilization over long runs";
      run = (fun ?scale ?duration ?seed () -> Fig8.print (Fig8.run ?scale ?duration ?seed ()));
    };
    {
      id = "fig9";
      title = "Fig 9: scalability with system size";
      run = (fun ?scale ?duration ?seed () -> Fig9.print (Fig9.run ?scale ?duration ?seed ()));
    };
    {
      id = "rfact";
      title = "par. 4.4 ablation: replication factor, digests, oracle";
      run = (fun ?scale ?duration ?seed () -> Rfact.print (Rfact.run ?scale ?duration ?seed ()));
    };
    {
      id = "ablations";
      title = "design-choice ablations: cache policy/size, r_map, static replication";
      run =
        (fun ?scale ?duration ?seed () ->
          Ablations.print (Ablations.run ?scale ?duration ?seed ()));
    };
    {
      id = "hetero";
      title = "par. 5 claim: exploiting server heterogeneity";
      run = (fun ?scale ?duration ?seed () -> Hetero.print (Hetero.run ?scale ?duration ?seed ()));
    };
    {
      id = "resilience";
      title = "resilience: chaos campaigns vs replication factor";
      (* Campaign timelines are fixed-length — duration does not apply. *)
      run =
        (fun ?scale ?duration:_ ?seed () ->
          Resilience.print (Resilience.run ?scale ?seed ()));
    };
    {
      id = "capacity";
      title = "capacity: macro throughput at scale (analytic rate)";
      (* Sized in queries, not seconds — duration does not apply. *)
      run = (fun ?scale ?duration:_ ?seed () -> Capacity.print (Capacity.run ?scale ?seed ()));
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all
