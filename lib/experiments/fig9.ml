(** Figure 9: scalability.  System size doubles step by step; nodes per
    server stay constant (~8, balanced binary namespace), λ grows
    proportionally, cache slots grow logarithmically (2·log2 S − 2) and
    r_map grows logarithmically.

    Reported per size: average query latency (hops and seconds — the paper
    plots a logarithmically growing latency), log10 of replication events,
    and log10 of dropped queries (both roughly linear in system size,
    hence straight lines on the log scale). *)

open Terradir
open Terradir_util

type row = {
  servers : int;
  nodes : int;
  mean_hops : float;
  mean_latency : float;
  replications : int;
  drops : int;
  resolved : int;
}

type result = { rows : row list }

(* Scaled counterpart of the paper's 2^9..2^14 sweep: six doublings,
   starting from 512·scale servers (so scale=1 reproduces 2^9..2^14). *)
let sizes ?(scale = 1.0 /. 16.0) () =
  let smallest = max 8 (int_of_float (512.0 *. scale)) in
  List.init 6 (fun i -> smallest * (1 lsl i))

let run ?scale ?(duration = 90.0) ?(seed = 42) () =
  (* One pool cell per system size. *)
  let rows =
    Runner.map
      (fun servers ->
        let scale_for = float_of_int servers /. float_of_int Common.paper_servers in
        let tweak c =
          let log2s =
            let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
            go 0 servers
          in
          {
            c with
            Config.placement = Config.Round_robin;
            cache_slots = max 4 ((2 * log2s) - 2);
            r_map = max 2 (log2s - 2);
          }
        in
        let setup = Common.make ~scale:scale_for ~seed ~config_tweak:tweak Common.NS in
        let paper_rate = 5.0 *. float_of_int Common.paper_servers (* λ ∝ S *) in
        let phases = Common.uzipf_stream setup ~paper_rate ~alpha:1.00 ~duration in
        let cluster = Runner.run_phases setup phases in
        let m = Cluster.metrics cluster in
        {
          servers;
          nodes = Terradir_namespace.Tree.size setup.Common.tree;
          mean_hops = Stats.mean m.Metrics.hops;
          mean_latency = Stats.mean m.Metrics.latency;
          replications = m.Metrics.replicas_created;
          drops = Metrics.dropped_total m;
          resolved = m.Metrics.resolved;
        })
      (sizes ?scale ())
  in
  { rows }

let print r =
  print_endline "Figure 9 — scalability with system size (uzipf1.00, lambda proportional to S)";
  Tablefmt.print
    ~header:
      [ "servers"; "nodes"; "mean hops"; "latency(s)"; "log10(replications)"; "log10(drops)"; "resolved" ]
    (List.map
       (fun row ->
         [
           string_of_int row.servers;
           string_of_int row.nodes;
           Tablefmt.float_cell ~decimals:2 row.mean_hops;
           Tablefmt.float_cell row.mean_latency;
           Tablefmt.float_cell ~decimals:2 (Common.log10_or_zero (float_of_int row.replications));
           Tablefmt.float_cell ~decimals:2 (Common.log10_or_zero (float_of_int row.drops));
           string_of_int row.resolved;
         ])
       r.rows)
