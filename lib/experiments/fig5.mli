(** Figure 5: total drop fraction per (stream × system) cell — B (base)
    vs BC (caching) vs BCR (caching + replication), over unif and uzipf
    streams on both namespaces. *)

type cell = { stream : string; system : string; drop_fraction : float }

type result = { cells : cell list }

val run : ?scale:float -> ?duration:float -> ?seed:int -> unit -> result

val streams_in : result -> string list
(** Distinct stream labels, sorted. *)

val lookup : result -> stream:string -> system:string -> float
(** Drop fraction of one cell ([Float.nan] when absent). *)

val print : result -> unit
