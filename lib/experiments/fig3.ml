(** Figure 3: fraction of queries dropped every second (relative to λ) over
    time, namespace N_S, λ = 20000 q/s paper scale.

    Five curves: unif and uzipf at orders 0.75–1.50.  The uzipf streams
    begin with staggered uniform warmups; each Zipf segment re-ranks node
    popularity instantly, producing the paper's drop spikes that the
    replication protocol then flattens. *)

open Terradir
open Terradir_util

type result = {
  duration : float;
  scaled_rate : float;
  series : (string * float array) list;  (** per-second drop fraction *)
}

let run ?scale ?(duration = 250.0) ?(seed = 42) () =
  (* One pool cell per stream; each builds its own setup and cluster. *)
  let series =
    Runner.map
      (fun (label, phases) ->
        let setup = Common.make ?scale ~seed Common.NS in
        let cluster = Runner.run_phases setup phases in
        let fractions =
          Common.per_second_fraction (Cluster.metrics cluster).Metrics.drops_ts
            ~rate:(setup.Common.rate Common.paper_lambda_fig3)
            ~bins:(int_of_float duration)
        in
        (label, fractions))
      (Runner.named_streams
         (Common.make ?scale ~seed Common.NS)
         ~paper_rate:Common.paper_lambda_fig3 ~duration)
  in
  let setup = Common.make ?scale ~seed Common.NS in
  { duration; scaled_rate = setup.Common.rate Common.paper_lambda_fig3; series }

let summarize r =
  List.map
    (fun (label, fr) ->
      let total = Array.fold_left ( +. ) 0.0 fr in
      let peak = Array.fold_left Float.max 0.0 fr in
      (label, total /. float_of_int (Array.length fr), peak))
    r.series

let print r =
  Printf.printf "Figure 3 — dropped queries per second / lambda (N_S, lambda=%.0f scaled)\n"
    r.scaled_rate;
  Tablefmt.series ~title:"fig3: drop fraction per second" ~time_label:"t(s)" ~columns:r.series;
  Tablefmt.print ~header:[ "stream"; "mean drop fraction"; "peak drop fraction" ]
    (List.map
       (fun (label, mean, peak) ->
         [ label; Tablefmt.float_cell mean; Tablefmt.float_cell peak ])
       (summarize r))
