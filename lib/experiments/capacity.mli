(** Capacity macro-benchmark: a single large uniform-stream run sized in
    {e queries} rather than simulated seconds, with an {e analytic}
    injection rate in place of the usual calibration probe (a probe at
    100k servers would cost as much as the measurement).

    The rate targets per-server utilization ρ = 0.5 via
    [ρ·S / (service_mean · est_hops)] with [est_hops = 2·mean_depth + 1]
    (the ascend-plus-descend routing bound — an overestimate once caches
    warm, so realized utilization stays below the target).  The config is
    Fig. 9's size-scaled knobs plus the calendar-queue scheduler.

    At reference scale ([scale = 1.0], or [bench/capacity.ml]'s defaults)
    the scenario is 100 000 servers and an expected 2 100 000 queries.
    Mean utilization lands well under the target, but at full scale the
    top of the tree still saturates transiently while caches and replicas
    warm, so a nontrivial drop fraction is expected — the run measures
    engine throughput, and the drop fraction documents protocol behavior
    at that scale rather than invalidating the measurement.
    Every reported field is deterministic for a given (servers, queries,
    seed) — wall-clock and memory measurement live in the caller. *)

type result = {
  servers : int;
  domains : int;
      (** engine domains the run actually executed on (after the engine's
          fallback/clamp rules) — reported for the bench harness, and
          deliberately absent from {!rows}: the golden CSV must stay
          byte-identical for any domain count *)
  nodes : int;
  rate : float;  (** analytic injection rate, queries/s *)
  sim_duration : float;  (** simulated seconds driven *)
  events : int;  (** engine events executed *)
  injected : int;
  resolved : int;
  dropped : int;
  drop_fraction : float;
  mean_hops : float;
  mean_latency : float;
  replicas_created : int;
}

(** One measured slice of the run — warmup (cold caches, stores still
    growing) versus steady state (the hot path the zero-allocation work
    gates).  GC words are process-level measurements, not simulation
    outputs: they stay out of {!rows} and the golden CSV. *)
type phase_gc = {
  pg_phase : string;  (** ["warmup"] or ["steady_state"] *)
  pg_events : int;  (** engine events executed in the slice *)
  pg_minor_words : float;
  pg_promoted_words : float;
  pg_major_words : float;
  pg_minor_collections : int;
  pg_major_collections : int;
}

val reference_servers : int
(** 100 000 — the scale-1 deployment size. *)

val reference_queries : int
(** 2 100 000 — the scale-1 expected query count (the margin over two
    million absorbs Poisson fluctuation in the realized count). *)

val run :
  ?servers:int ->
  ?queries:int ->
  ?domains:int ->
  ?scale:float ->
  ?seed:int ->
  unit ->
  result
(** [servers]/[queries] override the [scale]-derived sizes (defaults:
    [reference_servers]·scale and [reference_queries]·scale, scale 1/16).
    [queries] is an expectation — arrivals are Poisson, so the realized
    [injected] count varies (deterministically) with the seed.
    [domains] pins the engine-domain count for this run; when absent the
    {!Runner.engine_domains} override (CLI / [TERRADIR_ENGINE_DOMAINS])
    applies, else the config default.  Every reported field except
    [domains] is byte-identical for any domain count.
    @raise Invalid_argument on scale outside (0,1], servers < 8,
    queries < 1, or domains < 1. *)

val run_instrumented :
  ?servers:int ->
  ?queries:int ->
  ?domains:int ->
  ?scale:float ->
  ?seed:int ->
  unit ->
  result * phase_gc list
(** {!run} plus the per-phase GC accounting: the same trajectory is driven
    in two [run_until] slices split at {e warmup_fraction} (¼) of the
    stream duration, with a [Gc.quick_stat] delta around each.  The result
    is byte-identical to {!run}'s (the engine is time-ordered — an
    intermediate stop replays the same events); the phase list is always
    [[warmup; steady_state]].  Word deltas are exact for the driving
    domain; engine lanes of a K ≥ 2 run fold in only as they are joined
    (the K = 1 reference run CI gates on is exact). *)

val rows : result -> (string * string) list
(** Stable (metric, value) rows — the CSV export and the report feed. *)

val print : result -> unit
