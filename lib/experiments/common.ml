open Terradir_util
open Terradir_namespace
open Terradir
open Terradir_workload

type namespace = NS | NC

let paper_servers = 4096

let paper_lambda_fig3 = 20000.0

let paper_lambda_fig4 = 40000.0

let zipf_orders = [ 0.75; 1.00; 1.25; 1.50 ]

let _paper_ns_levels = 14 (* 32767 nodes: Fig. 7 shows levels 0..14 *)

let paper_nc_nodes = 40342

type setup = { config : Config.t; tree : Tree.t; rate : float -> float; scale : float }

let mean_depth tree =
  let total = Tree.fold tree ~init:0 ~f:(fun acc v -> acc + Tree.depth tree v) in
  float_of_int total /. float_of_int (Tree.size tree)

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

(* The paper's λ values are utilization targets in disguise: on N_S,
   λ ∈ {2000..20000} spans ρ ≈ {0.08..0.8}; on N_C the paper doubles λ "to
   keep the system at approximately the same utilization".  So the
   conversion that preserves the results' driving quantity is
   ρ = λ/25000 (N_S) and λ/50000 (N_C). *)
let target_utilization ns paper_lambda =
  match ns with NS -> paper_lambda /. 25000.0 | NC -> paper_lambda /. 50000.0

(* Empirical λ→ρ calibration: run the canonical full system briefly at a
   low probe rate and measure busy time per unit of arrival rate.  Busy
   time is linear in λ below saturation, so the target utilization divides
   out.  Calibrating against BCR (not the setup's own feature set) keeps
   ablation comparisons honest: the paper drives every system at the same
   absolute λ. *)
let calibrate ~config ~tree ~seed =
  (* The probe is tiny and runs while the experiment suite may already be
     saturating the machine's domains — force the sequential engine. *)
  let probe_config =
    {
      config with
      Config.features = Config.bcr;
      oracle_maps = false;
      engine_domains = 1;
      seed = seed + 9001;
    }
  in
  let cluster = Cluster.create ~config:probe_config ~tree () in
  let servers = float_of_int probe_config.Config.num_servers in
  (* aim near ρ ≈ 0.1 assuming ~5 hops/query *)
  let probe_rate = 0.1 *. servers /. (probe_config.Config.service_mean *. 5.0) in
  let total_busy time =
    Array.fold_left
      (fun acc s -> acc +. Load_meter.total_busy_time s.Server.load time)
      0.0 cluster.Cluster.servers
  in
  (* skip the cold first 4 s (empty caches inflate hop counts) *)
  let early = ref 0.0 in
  Terradir_sim.Engine.schedule_at cluster.Cluster.engine 4.0 (fun () ->
      early := total_busy 4.0);
  Terradir_workload.Scenario.run cluster
    ~phases:(Terradir_workload.Stream.unif ~rate:probe_rate ~duration:12.0)
    ~seed:(seed + 77) ~drain:0.0;
  let busy = total_busy (Cluster.now cluster) -. !early in
  let rho = busy /. (servers *. 8.0) in
  Float.max 1e-9 (rho /. probe_rate)

let make ?(scale = 1.0 /. 16.0) ?(features = Config.bcr) ?(seed = 42)
    ?(config_tweak = fun c -> c) ns =
  if scale <= 0.0 || scale > 1.0 then invalid_arg "Common.make: scale must be in (0, 1]";
  let servers = max 8 (int_of_float (Float.round (float_of_int paper_servers *. scale))) in
  let tree =
    match ns with
    | NS ->
      (* Keep ~8 nodes per server: levels L with 2^(L+1)-1 ≈ 8·servers. *)
      let levels = max 3 (log2i (8 * servers)) in
      Build.balanced ~arity:2 ~levels
    | NC ->
      let target = max 64 (paper_nc_nodes * servers / paper_servers) in
      Build.coda_like ~target ()
  in
  let config =
    config_tweak { Config.default with Config.num_servers = servers; features; seed }
  in
  let rho_per_lambda = lazy (calibrate ~config ~tree ~seed) in
  let rate paper_lambda =
    target_utilization ns paper_lambda /. Lazy.force rho_per_lambda
  in
  { config; tree; rate; scale }

let cluster ?obs setup = Cluster.create ?obs ~config:setup.config ~tree:setup.tree ()

let warmup_for alpha = 40.0 +. (Float.max 0.0 (alpha -. 0.75) /. 0.25 *. 10.0)

let shift_every = 45.0

let uzipf_stream setup ~paper_rate ~alpha ~duration =
  let rate = setup.rate paper_rate in
  let warmup = warmup_for alpha in
  let remaining = duration -. warmup in
  if remaining <= 0.0 then invalid_arg "Common.uzipf_stream: duration shorter than warmup";
  let shifts = max 1 (int_of_float (Float.round (remaining /. shift_every))) in
  let seg = remaining /. float_of_int shifts in
  { Stream.duration = warmup; rate; dist = Stream.Uniform }
  :: List.init shifts (fun _ ->
         { Stream.duration = seg; rate; dist = Stream.Zipf { alpha; reshuffle = true } })

let unif_stream setup ~paper_rate ~duration =
  Stream.unif ~rate:(setup.rate paper_rate) ~duration

let per_second_fraction ts ~rate ~bins =
  let sums = Timeseries.sums ts in
  Array.init bins (fun i -> if i < Array.length sums then sums.(i) /. rate else 0.0)

let log10_or_zero x = if x <= 0.0 then 0.0 else log10 x
