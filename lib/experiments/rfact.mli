(** §4.4 ablation (summarized in the paper without a figure): low
    replication factors under repeatedly shifting high-order hot-spots
    (uzipf1.50), with inverse-mapping digests, without them, and against
    the oracle (routing with perfectly accurate host maps).

    Low r_fact + shifting hot-spots force constant replica churn, which is
    exactly when stale maps hurt; the paper's claim is that digests keep
    routing accuracy "within the optimal range".  Accuracy here is
    1 − stale-forward fraction (a stale forward is an arrival at a server
    that no longer hosts the forwarding target — zero by construction
    under the oracle). *)

type mode = Oracle | Digests | No_digests

val mode_label : mode -> string

type row = {
  r_fact : float;
  mode : mode;
  drop_fraction : float;
  replicas_created : int;
  replicas_evicted : int;
  accuracy : float;
  shortcut_share : float;
}

type result = { rows : row list }

val r_facts : float list

val modes : mode list

val run : ?scale:float -> ?duration:float -> ?seed:int -> unit -> result

val print : result -> unit
