(** Shared experiment driver: build a cluster for a setup, run a stream,
    hand back the cluster for measurement — plus the multicore fan-out that
    dispatches independent (figure, stream, seed) cells over a domain pool.

    {b Concurrency model.}  Every cell is a self-contained closure: it
    builds its own {!Common.setup} (fresh tree, fresh calibration), its own
    [Cluster] (fresh engine, fresh [Splitmix] streams), and touches no
    state shared with any other cell.  Results are therefore bit-identical
    for any jobs count; parallelism only changes wall-clock. *)

val jobs : unit -> int
(** Fan-out width used by {!map}: the value pinned by {!set_jobs} /
    {!with_jobs} if any, else the [TERRADIR_JOBS] environment variable,
    else [Domain.recommended_domain_count () - 1].  [1] is the sequential
    path (no domain is spawned). *)

val set_jobs : int option -> unit
(** Pin (or unpin, with [None]) the fan-out width, overriding the
    environment.  Test binaries pin [Some 1] so [dune runtest] stays on the
    sequential path by default.  Main-domain only. *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** Run a thunk with the fan-out width pinned, restoring the previous
    setting afterwards (also on exceptions). *)

val map : ('a -> 'b) -> 'a list -> 'b list
(** [Terradir_util.Pool.map] at {!jobs} domains: order-preserving,
    exception-propagating.  Cells must be self-contained closures (see the
    concurrency model above). *)

val engine_domains : unit -> int option
(** Domains INSIDE each simulation's event engine — orthogonal to {!jobs},
    which fans independent cells out.  [Some d] when pinned by
    {!set_engine_domains} / {!with_engine_domains} or set through the
    [TERRADIR_ENGINE_DOMAINS] environment variable; [None] means "leave the
    config's own [engine_domains] alone".  The engine's determinism
    contract makes this knob observable-output-neutral: every metric, CSV
    and trace is byte-identical for any value. *)

val set_engine_domains : int option -> unit
(** Pin (or unpin, with [None]) the engine-domain override.  Main-domain
    only, like {!set_jobs}. *)

val with_engine_domains : int -> (unit -> 'a) -> 'a
(** Run a thunk with the engine-domain override pinned, restoring the
    previous setting afterwards (also on exceptions). *)

val with_engine_config : Terradir.Config.t -> Terradir.Config.t
(** The config with {!engine_domains} applied when an override is in
    effect; the config unchanged otherwise.  {!run_phases} applies this to
    every cluster it builds; drivers that build clusters themselves (the
    capacity figure, benches) call it explicitly. *)

val set_obs : (Terradir_obs.Obs.level * int) option -> unit
(** Pin (or unpin) the observability (level, probe cadence) that
    {!run_phases} gives every cluster it builds.  Each cell gets its own
    fresh sink — sinks are per-cluster mutable state and are never shared
    across domains.  The resulting sink is reachable from the returned
    cluster ([Cluster.obs]).  Main-domain only, like {!set_jobs}; the
    default ([None]) builds clusters on the shared null sink. *)

val with_obs :
  level:Terradir_obs.Obs.level -> ?probe_every:int -> (unit -> 'a) -> 'a
(** Run a thunk with observability pinned, restoring the previous setting
    afterwards (also on exceptions).  [probe_every] defaults to 2000
    engine events. *)

val events_executed : unit -> int
(** Total engine events executed by every {!run_phases} call so far, summed
    across domains (monotonic; the benchmark harness reads deltas). *)

val record_events : Terradir.Cluster.t -> unit
(** Fold a cluster's engine-event count into {!events_executed} — for
    drivers that run {!Terradir_workload.Scenario.run} themselves instead
    of going through {!run_phases}. *)

val minor_words_allocated : unit -> int
(** Minor-heap words allocated inside every instrumented region so far —
    the GC-pressure twin of {!events_executed}; the bench harness divides
    deltas of the two to report words per event.  Regions are
    {!run_phases} calls plus whatever drivers wrap in {!record_alloc}. *)

val promoted_words_allocated : unit -> int
(** Words promoted from the minor to the major heap inside instrumented
    regions (same accounting as {!minor_words_allocated}). *)

val record_alloc : (unit -> 'a) -> 'a
(** Run a thunk and fold its [Gc.quick_stat] allocation delta into the
    word counters.  Must be called from the domain doing the allocating
    (OCaml 5 allocation counters are per-domain): {!run_phases} applies it
    inside each worker, and engine lanes joined within the region fold in
    at join.  Exception-safe — the delta is recorded either way. *)

val add_alloc : minor:int -> promoted:int -> unit
(** Fold externally measured word deltas into the counters — for drivers
    (the capacity figure) that take their own phase-resolved
    [Gc.quick_stat] deltas. *)

val run_phases :
  ?workload_seed:int ->
  Common.setup ->
  Terradir_workload.Stream.phase list ->
  Terradir.Cluster.t
(** Fresh cluster from the setup, driven through the phases to completion
    (2 s drain). *)

val named_streams :
  Common.setup ->
  paper_rate:float ->
  duration:float ->
  (string * Terradir_workload.Stream.phase list) list
(** The paper's five standard streams: [unif] plus [uzipf] at each order in
    {!Common.zipf_orders}, labelled "unif", "uzipf0.75", …. *)
