(** §4.4 ablation (summarized in the paper without a figure): low
    replication factors under repeatedly shifting high-order hot-spots
    (uzipf1.50), with inverse-mapping digests, without them, and against
    the oracle (routing with perfectly accurate host maps).

    Low r_fact + shifting hot-spots force constant replica churn, which is
    exactly when stale maps hurt; the paper's claim is that digests keep
    routing accuracy "within the optimal range".  Accuracy here is
    1 − stale-forward fraction (a stale forward is an arrival at a server
    that no longer hosts the forwarding target — zero by construction
    under the oracle). *)

open Terradir
open Terradir_util

type mode = Oracle | Digests | No_digests

let mode_label = function Oracle -> "oracle" | Digests -> "digests" | No_digests -> "none"

type row = {
  r_fact : float;
  mode : mode;
  drop_fraction : float;
  replicas_created : int;
  replicas_evicted : int;
  accuracy : float;
  shortcut_share : float;
}

type result = { rows : row list }

let r_facts = [ 0.125; 0.25; 0.5; 2.0 ]

let modes = [ Oracle; Digests; No_digests ]

let run ?scale ?(duration = 150.0) ?(seed = 42) () =
  (* One pool cell per (r_fact, mode) pair. *)
  let specs = List.concat_map (fun r -> List.map (fun m -> (r, m)) modes) r_facts in
  let rows =
    Runner.map
      (fun (r_fact, mode) ->
            let features =
              { Config.bcr with Config.digests = (mode = Digests) }
            in
            let tweak c =
              { c with Config.r_fact; oracle_maps = (mode = Oracle) }
            in
            let setup = Common.make ?scale ~features ~seed ~config_tweak:tweak Common.NS in
            let phases =
              Common.uzipf_stream setup ~paper_rate:Common.paper_lambda_fig3 ~alpha:1.50
                ~duration
            in
            let cluster = Runner.run_phases setup phases in
            let m = Cluster.metrics cluster in
            let forwards = max 1 m.Metrics.query_forwards in
            {
              r_fact;
              mode;
              drop_fraction = Metrics.drop_fraction m;
              replicas_created = m.Metrics.replicas_created;
              replicas_evicted = m.Metrics.replicas_evicted;
              accuracy =
                1.0 -. (float_of_int m.Metrics.stale_forwards /. float_of_int forwards);
              shortcut_share =
                float_of_int m.Metrics.shortcut_forwards /. float_of_int forwards;
            })
      specs
  in
  { rows }

let print r =
  print_endline
    "rfact ablation (par. 4.4) — replica churn vs routing accuracy, uzipf1.50 shifts";
  Tablefmt.print
    ~header:
      [ "r_fact"; "maps"; "drop fraction"; "created"; "evicted"; "accuracy"; "shortcut share" ]
    (List.map
       (fun row ->
         [
           Printf.sprintf "%.3f" row.r_fact;
           mode_label row.mode;
           Tablefmt.float_cell row.drop_fraction;
           string_of_int row.replicas_created;
           string_of_int row.replicas_evicted;
           Tablefmt.float_cell row.accuracy;
           Tablefmt.float_cell row.shortcut_share;
         ])
       r.rows)
