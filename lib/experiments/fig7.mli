(** Figure 7: average replicas per node at each namespace level, N_S, for
    unif and uzipf1.00 at three arrival rates — replication concentrates
    near the root, where hierarchical bottlenecks form. *)

type series = { label : string; per_level : float array }

type result = { runs : series list }

val paper_rates : float list

val run : ?scale:float -> ?duration:float -> ?seed:int -> unit -> result

val print : result -> unit
