(** Resilience under canned chaos campaigns, across replication factors:
    availability floor during the fault era, drop fraction, and time to
    reconvergence, for each campaign in {!Terradir_chaos.Campaigns.all}
    at each [r_fact] in {!r_facts}. *)

type row = {
  campaign : string;
  r_fact : float;
  baseline_availability : float;  (** NaN when no pre-fault window exists *)
  min_availability : float;
  drop_fraction : float;
  unresolved : int;
  recoveries : int;
  recovered : int;  (** recoveries that reconverged within the run *)
  mean_ttr : float option;  (** mean time-to-reconvergence, seconds *)
}

type result = { rows : row list }

val r_facts : float list

val rate_per_server : float

val run : ?scale:float -> ?duration:float -> ?seed:int -> unit -> result
(** One cell per (campaign, r_fact), fanned over {!Runner.map}.
    [duration] is accepted for registry uniformity and ignored — campaign
    timelines are fixed-length. *)

val print : result -> unit
