open Terradir_util

let write_file dir name content =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir name in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc content);
  path

(* One row per index, columns padded with empty cells. *)
let series_csv ~index_label columns =
  let n = List.fold_left (fun acc (_, a) -> max acc (Array.length a)) 0 columns in
  let rows =
    List.init n (fun i ->
        string_of_int i
        :: List.map
             (fun (_, a) -> if i < Array.length a then Printf.sprintf "%.6f" a.(i) else "")
             columns)
  in
  Tablefmt.csv ~header:(index_label :: List.map fst columns) rows

let table_csv ~header rows = Tablefmt.csv ~header rows

(* Machine-readable counter snapshot, driven by the same field-spec list
   as the struct itself ([Metrics.counter_fields]) so a counter added to
   [Metrics.t] cannot silently miss the export; histogram-derived latency
   and hop statistics ride along under stable prefixed names. *)
let metrics_csv metrics =
  let module M = Terradir.Metrics in
  let module Hist = Terradir_obs.Hist in
  let counter_rows =
    List.map (fun (name, get) -> [ name; string_of_int (get metrics) ]) M.counter_fields
  in
  let hist_rows prefix h =
    List.map (fun (k, v) -> [ prefix ^ "_" ^ k; Printf.sprintf "%.6f" v ]) (Hist.summary_fields h)
  in
  table_csv ~header:[ "metric"; "value" ]
    (counter_rows
    @ hist_rows "latency" metrics.M.latency_hist
    @ hist_rows "hops" metrics.M.hops_hist)

let f = Printf.sprintf

let fig3 ?scale ?seed dir =
  let r = Fig3.run ?scale ?seed () in
  [ write_file dir "fig3_drop_fraction.csv" (series_csv ~index_label:"second" r.Fig3.series) ]

let fig4 ?scale ?seed dir =
  let r = Fig4.run ?scale ?seed () in
  [
    write_file dir "fig4_replica_creation.csv" (series_csv ~index_label:"second" r.Fig4.series);
  ]

let fig5 ?scale ?seed dir =
  let r = Fig5.run ?scale ?seed () in
  let rows =
    List.map
      (fun (c : Fig5.cell) -> [ c.Fig5.stream; c.Fig5.system; f "%.6f" c.Fig5.drop_fraction ])
      r.Fig5.cells
  in
  [ write_file dir "fig5_drops.csv" (table_csv ~header:[ "stream"; "system"; "drop_fraction" ] rows) ]

let fig6 ?scale ?seed dir =
  let r = Fig6.run ?scale ?seed () in
  let left =
    List.concat_map
      (fun s -> [ (s.Fig6.label ^ "_avg", s.Fig6.mean_load); (s.Fig6.label ^ "_max", s.Fig6.max_load) ])
      r.Fig6.runs
  in
  let right = List.map (fun s -> (s.Fig6.label ^ "_max11", s.Fig6.smoothed_max)) r.Fig6.runs in
  [
    write_file dir "fig6_load.csv" (series_csv ~index_label:"second" left);
    write_file dir "fig6_smoothed_max.csv" (series_csv ~index_label:"second" right);
  ]

let fig7 ?scale ?seed dir =
  let r = Fig7.run ?scale ?seed () in
  let columns = List.map (fun s -> (s.Fig7.label, s.Fig7.per_level)) r.Fig7.runs in
  [ write_file dir "fig7_replicas_per_level.csv" (series_csv ~index_label:"level" columns) ]

let fig8 ?scale ?seed dir =
  let r = Fig8.run ?scale ?seed () in
  let columns = List.map (fun s -> (s.Fig8.label, s.Fig8.per_minute)) r.Fig8.runs in
  [ write_file dir "fig8_replicas_per_minute.csv" (series_csv ~index_label:"minute" columns) ]

let fig9 ?scale ?seed dir =
  let r = Fig9.run ?scale ?seed () in
  let rows =
    List.map
      (fun (row : Fig9.row) ->
        [
          string_of_int row.Fig9.servers;
          string_of_int row.Fig9.nodes;
          f "%.4f" row.Fig9.mean_hops;
          f "%.6f" row.Fig9.mean_latency;
          string_of_int row.Fig9.replications;
          string_of_int row.Fig9.drops;
          string_of_int row.Fig9.resolved;
        ])
      r.Fig9.rows
  in
  [
    write_file dir "fig9_scalability.csv"
      (table_csv
         ~header:[ "servers"; "nodes"; "mean_hops"; "latency_s"; "replications"; "drops"; "resolved" ]
         rows);
  ]

let rfact ?scale ?seed dir =
  let r = Rfact.run ?scale ?seed () in
  let rows =
    List.map
      (fun (row : Rfact.row) ->
        [
          f "%.3f" row.Rfact.r_fact;
          Rfact.mode_label row.Rfact.mode;
          f "%.6f" row.Rfact.drop_fraction;
          string_of_int row.Rfact.replicas_created;
          string_of_int row.Rfact.replicas_evicted;
          f "%.6f" row.Rfact.accuracy;
          f "%.6f" row.Rfact.shortcut_share;
        ])
      r.Rfact.rows
  in
  [
    write_file dir "rfact_ablation.csv"
      (table_csv
         ~header:[ "r_fact"; "maps"; "drop_fraction"; "created"; "evicted"; "accuracy"; "shortcut_share" ]
         rows);
  ]

let ablations ?scale ?seed dir =
  let r = Ablations.run ?scale ?seed () in
  let keys = [ "drop_fraction"; "mean_hops"; "mean_latency_ms"; "replicas" ] in
  let rows =
    List.map
      (fun (row : Ablations.row) ->
        row.Ablations.dimension :: row.Ablations.variant
        :: List.map
             (fun k ->
               match List.assoc_opt k row.Ablations.metrics with
               | Some v -> f "%.6f" v
               | None -> "")
             keys)
      r.Ablations.rows
  in
  [ write_file dir "ablations.csv" (table_csv ~header:([ "dimension"; "variant" ] @ keys) rows) ]

let hetero ?scale ?seed dir =
  let r = Hetero.run ?scale ?seed () in
  let rows =
    List.map
      (fun (row : Hetero.row) ->
        [
          f "%.1f" row.Hetero.spread;
          row.Hetero.system;
          f "%.6f" row.Hetero.drop_fraction;
          f "%.6f" row.Hetero.mean_latency;
          f "%.6f" row.Hetero.mean_load_of_max;
        ])
      r.Hetero.rows
  in
  [
    write_file dir "hetero.csv"
      (table_csv ~header:[ "spread"; "system"; "drop_fraction"; "latency_s"; "mean_max_load" ] rows);
  ]

let resilience ?scale ?seed dir =
  let r = Resilience.run ?scale ?seed () in
  let rows =
    List.map
      (fun (row : Resilience.row) ->
        [
          row.Resilience.campaign;
          f "%.2f" row.Resilience.r_fact;
          f "%.6f" row.Resilience.baseline_availability;
          f "%.6f" row.Resilience.min_availability;
          f "%.6f" row.Resilience.drop_fraction;
          string_of_int row.Resilience.unresolved;
          string_of_int row.Resilience.recovered;
          string_of_int row.Resilience.recoveries;
          (match row.Resilience.mean_ttr with None -> "" | Some t -> f "%.6f" t);
        ])
      r.Resilience.rows
  in
  [
    write_file dir "resilience.csv"
      (table_csv
         ~header:
           [
             "campaign"; "r_fact"; "baseline_availability"; "min_availability"; "drop_fraction";
             "unresolved"; "recovered"; "recoveries"; "mean_ttr_s";
           ]
         rows);
  ]

let capacity ?scale ?seed dir =
  let r = Capacity.run ?scale ?seed () in
  let rows = List.map (fun (k, v) -> [ k; v ]) (Capacity.rows r) in
  [ write_file dir "capacity.csv" (table_csv ~header:[ "metric"; "value" ] rows) ]

let exporters =
  [
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("rfact", rfact);
    ("ablations", ablations);
    ("hetero", hetero);
    ("resilience", resilience);
    ("capacity", capacity);
  ]

let exportable = List.map fst exporters

let export ~id ?scale ?seed ~dir () =
  match List.assoc_opt id exporters with
  | Some writer -> writer ?scale ?seed dir
  | None -> invalid_arg ("Csv_export.export: unknown or non-exportable experiment " ^ id)
