(** Heterogeneity experiment — §5's closing claim: "the most distinguishing
    feature of [deployed P2P] systems is their heterogeneity.  We believe
    that the adaptive nature of our replication model makes it a
    first-class candidate for exploiting system heterogeneity."

    Setup: same aggregate capacity, but per-server speeds drawn log-uniform
    over a spread of 1 (homogeneous), 4, or 16.  §3.1's load metric is a
    locally-defined busy fraction, so slow servers report high loads early
    and shed their hot nodes toward fast ones with no protocol change.
    Expectation: with adaptive replication (BCR) the drop fraction barely
    moves with the spread; caching alone (BC) degrades, since static
    placement strands hot nodes on slow servers. *)

open Terradir
open Terradir_util

type row = {
  spread : float;
  system : string;
  drop_fraction : float;
  mean_latency : float;
  mean_load_of_max : float;  (** time-average of the per-second max load *)
}

type result = { rows : row list }

let spreads = [ 1.0; 4.0; 16.0 ]

let systems = [ ("BC", Config.bc); ("BCR", Config.bcr) ]

let run ?scale ?(duration = 120.0) ?(seed = 42) () =
  (* One pool cell per (spread, system) pair. *)
  let specs =
    List.concat_map (fun spread -> List.map (fun sys -> (spread, sys)) systems) spreads
  in
  let rows =
    Runner.map
      (fun (spread, (system, features)) ->
            let tweak c = { c with Config.speed_spread = spread } in
            let setup = Common.make ?scale ~features ~seed ~config_tweak:tweak Common.NS in
            let phases =
              Common.uzipf_stream setup ~paper_rate:10000.0 ~alpha:1.00 ~duration
            in
            let cluster = Runner.run_phases setup phases in
            let m = Cluster.metrics cluster in
            let maxima = Timeseries.maxima m.Metrics.load_max_ts in
            let mean_of_max =
              if Array.length maxima = 0 then 0.0
              else Array.fold_left ( +. ) 0.0 maxima /. float_of_int (Array.length maxima)
            in
            {
              spread;
              system;
              drop_fraction = Metrics.drop_fraction m;
              mean_latency = Stats.mean m.Metrics.latency;
              mean_load_of_max = mean_of_max;
            })
      specs
  in
  { rows }

let print r =
  print_endline "Heterogeneity — adaptive replication under unequal server capacities (par. 5)";
  Tablefmt.print
    ~header:[ "speed spread"; "system"; "drop fraction"; "latency(s)"; "mean max-load" ]
    (List.map
       (fun row ->
         [
           Printf.sprintf "%.0fx" row.spread;
           row.system;
           Tablefmt.float_cell row.drop_fraction;
           Tablefmt.float_cell row.mean_latency;
           Tablefmt.float_cell row.mean_load_of_max;
         ])
       r.rows)
