(** Figure 7: how the system reacts to hierarchical bottlenecks — the
    average number of replicas created per node at each namespace level
    (root = level 0), for uniform and Zipf streams at three arrival rates.

    Paper shape: the top levels replicate heavily; level 2 often exceeds
    its ancestors (pointers to level-2 nodes linger in caches, diverting
    traffic from levels 0–1); replication fades toward the leaves. *)

open Terradir
open Terradir_util

type series = { label : string; per_level : float array }

type result = { runs : series list }

let paper_rates = [ 2000.0; 4000.0; 8000.0 ]

let run ?scale ?(duration = 150.0) ?(seed = 42) () =
  (* One pool cell per (stream kind, rate); setups are built inside the
     cell so no state crosses domains. *)
  let specs =
    List.concat_map (fun rate -> [ (`Unif, rate); (`Uzipf, rate) ]) paper_rates
  in
  let runs =
    Runner.map
      (fun (kind, paper_rate) ->
        let setup = Common.make ?scale ~seed Common.NS in
        let label, phases =
          match kind with
          | `Unif ->
            ( Printf.sprintf "unif l=%.0f" paper_rate,
              Common.unif_stream setup ~paper_rate ~duration )
          | `Uzipf ->
            ( Printf.sprintf "uzipf l=%.0f" paper_rate,
              Common.uzipf_stream setup ~paper_rate ~alpha:1.00 ~duration )
        in
        let cluster = Runner.run_phases setup phases in
        { label; per_level = Cluster.replicas_per_level cluster `Created })
      specs
  in
  { runs }

let print r =
  print_endline "Figure 7 — average replicas created per node, by namespace level (N_S)";
  let columns = List.map (fun s -> (s.label, s.per_level)) r.runs in
  Tablefmt.series ~title:"fig7: replicas per level" ~time_label:"level" ~columns
