(** Ablations of the design choices the paper asserts but does not plot.

    - {b Cache policy} (§2.4): "This mixture of close and far nodes
      [path propagation] performs significantly better than caching the
      query endpoints."
    - {b Cache size}: caches add O(log-ish) state per server and claim
      large latency wins even without locality.
    - {b Map size} (§3.7): maps are bounded at r_map entries "for
      scalability reasons" — how much accuracy does a tiny map cost?
    - {b Static vs. adaptive replication} (§2.3): "hierarchical bottlenecks
      can be addressed by static replication mechanisms, [but hot-spots
      and failures] call for an adaptive scheme." *)

type row = { dimension : string; variant : string; metrics : (string * float) list }

type result = { rows : row list }

val run : ?scale:float -> ?duration:float -> ?seed:int -> unit -> result

val print : result -> unit
