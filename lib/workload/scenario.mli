(** Drive a cluster through a query stream.

    Schedules Poisson query arrivals phase by phase (uniform source server,
    stream-sampled destination) and runs the simulation to the end of the
    stream (plus a drain allowance so in-flight lookups finish).

    {!start} exposes the underlying machinery without the blocking run:
    it installs a stream on the cluster's engine and returns a {!driver}
    handle, so an outer controller (the chaos scenario engine) can lay
    faults, rate shifts, and extra streams over it before calling
    [Cluster.run_until] itself. *)

type driver
(** A live injected stream: phase transitions and the Poisson arrival
    chain are already scheduled on the cluster's engine. *)

val start :
  ?fetch_probability:float ->
  ?on_phase:(int -> Stream.phase -> unit) ->
  Terradir.Cluster.t ->
  phases:Stream.phase list ->
  seed:int ->
  driver
(** Install the stream starting at the engine's current time and return
    its handle.  Does {e not} run the engine.  Parameters as in {!run}.
    With the rate factor left at 1.0 the stream is byte-identical to the
    one {!run} has always scheduled (the multiplier is exact: [x *. 1.0
    = x]).
    @raise Invalid_argument on an empty phase list or non-positive rates. *)

val stream_end : driver -> float
(** Simulation time of the last possible arrival (stream start + total
    phase duration). *)

val set_rate_factor : driver -> float -> unit
(** Scale the stream's arrival rate from now on: the next Poisson gap is
    drawn at [phase_rate *. factor].  Takes effect on the gap drawn after
    the call (arrivals already scheduled keep their times) — call it from
    an event scheduled on the same engine for deterministic alignment.
    @raise Invalid_argument unless the factor is positive and finite. *)

val run :
  ?drain:float ->
  ?on_phase:(int -> Stream.phase -> unit) ->
  ?fetch_probability:float ->
  Terradir.Cluster.t ->
  phases:Stream.phase list ->
  seed:int ->
  unit
(** [run cluster ~phases ~seed] executes the whole stream.  [drain]
    (default 2 s) extends the run past the last arrival.  [on_phase] is
    called at each phase start (e.g. to log shift times).
    [fetch_probability] (default 0: lookups only, the paper's methodology)
    makes that fraction of resolved lookups proceed to step two — a data
    fetch from the resolved map's hosts ("few of the objects looked up
    ... are effectively retrieved", §1).
    @raise Invalid_argument on an empty phase list or non-positive rates. *)

val run_interleaved :
  ?drain:float ->
  ?on_phase:(int -> Stream.phase -> unit) ->
  ?fetch_probability:float ->
  Terradir.Cluster.t ->
  streams:(Stream.phase list * int) list ->
  unit
(** Several independent streams (phases, seed) injected concurrently into
    one cluster — e.g. a background uniform trickle plus a flash crowd.
    [on_phase] and [fetch_probability] apply to {e every} stream
    ([on_phase] receives the phase index within its own stream), so a
    single-stream call is byte-identical to {!run} with the same
    arguments. *)
