open Terradir_util
open Terradir_sim
open Terradir

let check_phases phases =
  if phases = [] then invalid_arg "Scenario.run: empty phase list";
  List.iter
    (fun p ->
      if p.Stream.rate <= 0.0 then invalid_arg "Scenario.run: rate must be positive";
      if p.Stream.duration <= 0.0 then invalid_arg "Scenario.run: duration must be positive")
    phases

type driver = {
  d_end : float;
  d_factor : float ref;
}

(* Schedule one stream's phase transitions and arrival chain onto the
   cluster's engine.  Starts at the current engine time; the returned
   driver carries the stream's end time and a live rate multiplier.

   Byte-compat invariant: with the factor left at 1.0 this must consume
   randomness and schedule events in exactly the historical order
   (sampler, arrival rng, phase installs, fetch rng, arrival kick) —
   the golden CSVs pin that order.  [x *. 1.0 = x] exactly in IEEE for
   any finite rate, so the multiplier is free until someone shifts it. *)
let start ?(fetch_probability = 0.0) ?(on_phase = fun _ _ -> ()) cluster ~phases ~seed =
  check_phases phases;
  let engine = cluster.Cluster.engine in
  let sampler = Stream.sampler ~tree:cluster.Cluster.tree ~seed in
  let arrival_rng = Splitmix.create (seed lxor 0x5ca1ab1e) in
  let start = Engine.now engine in
  let stream_end = start +. Stream.total_duration phases in
  (* Current phase state, updated by scheduled transitions. *)
  let rate = ref (List.hd phases).Stream.rate in
  let factor = ref 1.0 in
  let rec install_phases idx t0 = function
    | [] -> ()
    | p :: rest ->
      Engine.schedule_at engine t0 (fun () ->
          on_phase idx p;
          rate := p.Stream.rate;
          Stream.install sampler p.Stream.dist);
      install_phases (idx + 1) (t0 +. p.Stream.duration) rest
  in
  install_phases 0 start phases;
  let fetch_rng = Splitmix.create (seed lxor 0xfe7c4) in
  let inject_one () =
    let dst = Stream.sample sampler in
    if fetch_probability > 0.0 && Splitmix.float fetch_rng 1.0 < fetch_probability then begin
      (* Two-step access (§2.1): look the node up, then retrieve its data
         from one of the hosts in the returned map.  The client is the
         lookup's source server; resolution is always asynchronous, so the
         reference is filled before any fetch can fire. *)
      let client = ref 0 in
      Cluster.inject_uniform_src cluster ~dst ~on_complete:(fun outcome ->
          match outcome with
          | Terradir.Types.Resolved _ -> Cluster.fetch cluster ~client:!client ~node:dst
          | Terradir.Types.Dropped _ -> ());
      client := Cluster.last_injected_src cluster
    end
    else Cluster.inject_uniform_src cluster ~dst
  in
  let rec arrival () =
    let gap = Dist.poisson_gap arrival_rng ~rate:(!rate *. !factor) in
    let next = Engine.now engine +. gap in
    if next < stream_end then
      Engine.schedule_at engine next (fun () ->
          inject_one ();
          arrival ())
  in
  (* Kick the chain just after phase 0 installs. *)
  Engine.schedule_at engine start (fun () -> arrival ());
  { d_end = stream_end; d_factor = factor }

let stream_end d = d.d_end

let set_rate_factor d f =
  if (not (f > 0.0)) || not (Float.is_finite f) then
    invalid_arg "Scenario.set_rate_factor: factor must be positive and finite";
  d.d_factor := f

let run ?(drain = 2.0) ?on_phase ?fetch_probability cluster ~phases ~seed =
  let d = start ?fetch_probability ?on_phase cluster ~phases ~seed in
  Cluster.run_until cluster (d.d_end +. drain)

let run_interleaved ?(drain = 2.0) ?on_phase ?fetch_probability cluster ~streams =
  if streams = [] then invalid_arg "Scenario.run_interleaved: no streams";
  let ends =
    List.map
      (fun (phases, seed) ->
        let d = start ?fetch_probability ?on_phase cluster ~phases ~seed in
        d.d_end)
      streams
  in
  Cluster.run_until cluster (List.fold_left Float.max 0.0 ends +. drain)
