open Terradir_util

(* One shard lane of the (possibly parallel) engine: an event queue plus
   the per-lane execution context.  The engine owns an array of these;
   during a synchronized window each lane is driven by exactly one domain,
   so none of the mutable fields need atomicity — visibility across
   windows is published by the gang's barrier (mutex acquire/release).

   Entries carry the canonical total-order key (timestamp, tie) in the
   queue's (key, seq) slots and the executing-context id (owner server,
   or a negative pseudo-context) in the tag slot. *)

type queue = Heap of (unit -> unit) Pqueue.t | Calendar of (unit -> unit) Calqueue.t

(* A per-destination deposit buffer, struct-of-arrays so a window's
   cross-lane traffic costs zero allocation once the arrays have grown to
   the high-water mark.  Capacity persists across windows; only [len]
   resets at the barrier. *)
type outbox = {
  mutable ob_time : floatarray;
  mutable ob_tie : int array;
  mutable ob_owner : int array;
  mutable ob_fn : (unit -> unit) array;
  mutable ob_len : int;
}

let nop () = ()

let outbox_create () =
  {
    ob_time = Float.Array.create 0;
    ob_tie = [||];
    ob_owner = [||];
    ob_fn = [||];
    ob_len = 0;
  }

type t = {
  idx : int; (* lane index: 0..K-1 shards; K = the coordinator lane *)
  queue : queue;
  mutable clock : float; (* time of the event being / last executed *)
  mutable ctx : int; (* executing context: owner of the running event, -1 idle *)
  mutable tie : int; (* tie-break of the running event (obs stamping) *)
  mutable sub : int; (* intra-event emission counter (obs stamping) *)
  mutable executed : int;
  outboxes : outbox array;
      (* per-destination-lane deposits made while a window is open, merged
         by the coordinator at the barrier.  Insertion order is irrelevant
         — ties are globally unique. *)
}

let create ~scheduler ~idx ~ndest =
  let queue =
    match scheduler with
    | `Heap -> Heap (Pqueue.create ())
    | `Calendar -> Calendar (Calqueue.create ())
  in
  {
    idx;
    queue;
    clock = 0.0;
    ctx = -1;
    tie = 0;
    sub = 0;
    executed = 0;
    outboxes = Array.init ndest (fun _ -> outbox_create ());
  }

let idx t = t.idx

let clock t = t.clock

let set_clock t time = t.clock <- time

let ctx t = t.ctx

let tie t = t.tie

let next_sub t =
  let s = t.sub in
  t.sub <- s + 1;
  s

let executed t = t.executed

let outbox_grow b =
  let cap = max 16 (2 * Array.length b.ob_tie) in
  let time = Float.Array.create cap in
  Float.Array.blit b.ob_time 0 time 0 b.ob_len;
  b.ob_time <- time;
  let grow_int a =
    let a' = Array.make cap 0 in
    Array.blit a 0 a' 0 b.ob_len;
    a'
  in
  b.ob_tie <- grow_int b.ob_tie;
  b.ob_owner <- grow_int b.ob_owner;
  let fn = Array.make cap nop in
  Array.blit b.ob_fn 0 fn 0 b.ob_len;
  b.ob_fn <- fn

let outbox_push t ~dest ~time ~tie ~owner f =
  let b = t.outboxes.(dest) in
  if b.ob_len >= Array.length b.ob_tie then outbox_grow b;
  let i = b.ob_len in
  Float.Array.unsafe_set b.ob_time i time;
  b.ob_tie.(i) <- tie;
  b.ob_owner.(i) <- owner;
  b.ob_fn.(i) <- f;
  b.ob_len <- i + 1

let drain_outboxes t ~f =
  let boxes = t.outboxes in
  for dest = 0 to Array.length boxes - 1 do
    let b = boxes.(dest) in
    if b.ob_len > 0 then begin
      for i = 0 to b.ob_len - 1 do
        f ~dest ~time:(Float.Array.unsafe_get b.ob_time i) ~tie:b.ob_tie.(i)
          ~owner:b.ob_owner.(i) b.ob_fn.(i);
        b.ob_fn.(i) <- nop (* drop the thunk: retained closures capture messages *)
      done;
      b.ob_len <- 0
    end
  done

let length t = match t.queue with Heap q -> Pqueue.length q | Calendar q -> Calqueue.length q

let is_empty t = match t.queue with Heap q -> Pqueue.is_empty q | Calendar q -> Calqueue.is_empty q

(* The three peeks are undefined on an empty lane; callers check first.
   The calendar queue caches its min position, so peeking all three
   components costs one scan at most. *)
let top_key t = match t.queue with Heap q -> Pqueue.top_key q | Calendar q -> Calqueue.top_key q

let top_tie t = match t.queue with Heap q -> Pqueue.top_seq q | Calendar q -> Calqueue.top_seq q

let top_tag t = match t.queue with Heap q -> Pqueue.top_tag q | Calendar q -> Calqueue.top_tag q

let enqueue t ~key ~tie ~tag f =
  match t.queue with
  | Heap q -> Pqueue.add_tagged q ~key ~seq:tie ~tag f
  | Calendar q -> Calqueue.add_tagged q ~key ~seq:tie ~tag f

(* Execute the lane's minimum event: advance the lane clock, expose the
   event's owner as the executing context for the duration of the
   handler, and drop back to idle (-1) after — idle-time API calls must
   not observe a stale context. *)
let pop_run t =
  let key = top_key t and tie = top_tie t and tag = top_tag t in
  let f = match t.queue with Heap q -> Pqueue.pop_exn q | Calendar q -> Calqueue.pop_exn q in
  if key < t.clock then
    invalid_arg
      (Printf.sprintf "Shard.pop_run: lane %d key regressed %h -> %h" t.idx t.clock key);
  t.clock <- key;
  t.ctx <- tag;
  t.tie <- tie;
  t.sub <- 0;
  t.executed <- t.executed + 1;
  f ();
  t.ctx <- -1

(* Run every event strictly below the exclusive bound (time, tie). *)
let run_below t ~time ~tie =
  let continue = ref true in
  while !continue do
    if is_empty t then continue := false
    else begin
      let k = top_key t in
      if k < time || (k = time && top_tie t < tie) then pop_run t else continue := false
    end
  done
