open Terradir_util

(* One shard lane of the (possibly parallel) engine: an event queue plus
   the per-lane execution context.  The engine owns an array of these;
   during a synchronized window each lane is driven by exactly one domain,
   so none of the mutable fields need atomicity — visibility across
   windows is published by the gang's barrier (mutex acquire/release).

   Entries carry the canonical total-order key (timestamp, tie) in the
   queue's (key, seq) slots and the executing-context id (owner server,
   or a negative pseudo-context) in the tag slot. *)

type queue = Heap of (unit -> unit) Pqueue.t | Calendar of (unit -> unit) Calqueue.t

type t = {
  idx : int; (* lane index: 0..K-1 shards; K = the coordinator lane *)
  queue : queue;
  mutable clock : float; (* time of the event being / last executed *)
  mutable ctx : int; (* executing context: owner of the running event, -1 idle *)
  mutable tie : int; (* tie-break of the running event (obs stamping) *)
  mutable sub : int; (* intra-event emission counter (obs stamping) *)
  mutable executed : int;
  outboxes : (float * int * int * (unit -> unit)) list array;
      (* per-destination-lane deposits made while a window is open:
         (time, tie, owner, thunk), merged by the coordinator at the
         barrier.  Insertion order is irrelevant — ties are globally
         unique. *)
}

let create ~scheduler ~idx ~ndest =
  let queue =
    match scheduler with
    | `Heap -> Heap (Pqueue.create ())
    | `Calendar -> Calendar (Calqueue.create ())
  in
  {
    idx;
    queue;
    clock = 0.0;
    ctx = -1;
    tie = 0;
    sub = 0;
    executed = 0;
    outboxes = Array.make ndest [];
  }

let idx t = t.idx

let clock t = t.clock

let set_clock t time = t.clock <- time

let ctx t = t.ctx

let tie t = t.tie

let next_sub t =
  let s = t.sub in
  t.sub <- s + 1;
  s

let executed t = t.executed

let outbox_push t ~dest ~time ~tie ~owner f =
  t.outboxes.(dest) <- (time, tie, owner, f) :: t.outboxes.(dest)

let drain_outboxes t ~f =
  let boxes = t.outboxes in
  for dest = 0 to Array.length boxes - 1 do
    match boxes.(dest) with
    | [] -> ()
    | items ->
      boxes.(dest) <- [];
      f ~dest items
  done

let length t = match t.queue with Heap q -> Pqueue.length q | Calendar q -> Calqueue.length q

let is_empty t = match t.queue with Heap q -> Pqueue.is_empty q | Calendar q -> Calqueue.is_empty q

(* The three peeks are undefined on an empty lane; callers check first.
   The calendar queue caches its min position, so peeking all three
   components costs one scan at most. *)
let top_key t = match t.queue with Heap q -> Pqueue.top_key q | Calendar q -> Calqueue.top_key q

let top_tie t = match t.queue with Heap q -> Pqueue.top_seq q | Calendar q -> Calqueue.top_seq q

let top_tag t = match t.queue with Heap q -> Pqueue.top_tag q | Calendar q -> Calqueue.top_tag q

let enqueue t ~key ~tie ~tag f =
  match t.queue with
  | Heap q -> Pqueue.add_tagged q ~key ~seq:tie ~tag f
  | Calendar q -> Calqueue.add_tagged q ~key ~seq:tie ~tag f

(* Execute the lane's minimum event: advance the lane clock, expose the
   event's owner as the executing context for the duration of the
   handler, and drop back to idle (-1) after — idle-time API calls must
   not observe a stale context. *)
let pop_run t =
  let key = top_key t and tie = top_tie t and tag = top_tag t in
  let f = match t.queue with Heap q -> Pqueue.pop_exn q | Calendar q -> Calqueue.pop_exn q in
  if key < t.clock then
    invalid_arg
      (Printf.sprintf "Shard.pop_run: lane %d key regressed %h -> %h" t.idx t.clock key);
  t.clock <- key;
  t.ctx <- tag;
  t.tie <- tie;
  t.sub <- 0;
  t.executed <- t.executed + 1;
  f ();
  t.ctx <- -1

(* Run every event strictly below the exclusive bound (time, tie). *)
let run_below t ~time ~tie =
  let continue = ref true in
  while !continue do
    if is_empty t then continue := false
    else begin
      let k = top_key t in
      if k < time || (k = time && top_tie t < tie) then pop_run t else continue := false
    end
  done
