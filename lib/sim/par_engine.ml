open Terradir_util

(* Conservative-window machinery for the parallel engine: the canonical
   key order, the per-window exclusive bound, and the fork-join execution
   of one window across a persistent domain gang.

   The synchronization protocol (see DESIGN §13): with lookahead L — the
   minimum cross-server network latency — every cross-shard effect of an
   event at time t lands at or after t + L.  A window that executes every
   shard event strictly below B = min(lb + L, next sync key, until) can
   therefore run its lanes independently: no lane can receive an event
   below B from another lane mid-window.  Cross-lane schedules are parked
   in per-lane outboxes and merged at the barrier; because ties are
   globally unique, merge order is irrelevant. *)

(* Canonical key order: (time, tie) lexicographic. *)
let key_lt t1 s1 t2 s2 = t1 < t2 || (t1 = t2 && s1 < s2)

(* Minimum pending key over the shard lanes; [None] when all are empty. *)
let shard_min lanes =
  let best = ref None in
  Array.iter
    (fun lane ->
      if not (Shard.is_empty lane) then begin
        let k = Shard.top_key lane and s = Shard.top_tie lane in
        match !best with
        | None -> best := Some (k, s)
        | Some (bk, bs) -> if key_lt k s bk bs then best := Some (k, s)
      end)
    lanes;
  !best

(* Exclusive upper bound of the next window, given the shard lower bound.
   [(lb + L, -1)] admits every event at times < lb + L (tie -1 sorts
   before any real tie); a pending solo event — sync or driver, both run
   alone between windows — tightens the bound to its own key; [until]
   caps it inclusively (tie [max_int] sorts after any real tie). *)
let window_bound ~lb_time ~lookahead ~sync ~until =
  let bt = ref (lb_time +. lookahead) and btie = ref (-1) in
  (match sync with
  | Some (sk, ss) -> if key_lt sk ss !bt !btie then begin
      bt := sk;
      btie := ss
    end
  | None -> ());
  (match until with
  | Some s -> if s < !bt then begin
      bt := s;
      btie := max_int
    end
  | None -> ());
  (!bt, !btie)

type gang = Pool.Gang.t

let create_gang ~workers = Pool.Gang.create ~workers

let shutdown_gang = Pool.Gang.shutdown

(* Run one window: worker [i] of the gang drives lane [i + 1] up to the
   exclusive bound; the caller drives lane 0 itself (via [coordinate])
   and blocks at the barrier.  [prepare] runs on the worker domain before
   its lane (domain-local-storage setup). *)
let run_window gang lanes ~time ~tie ~prepare ~coordinate =
  Pool.Gang.launch gang (fun w ->
      let lane = lanes.(w + 1) in
      prepare lane;
      Shard.run_below lane ~time ~tie);
  coordinate (fun () -> Shard.run_below lanes.(0) ~time ~tie);
  Pool.Gang.join gang
