(** Random-variate samplers used by the evaluation methodology (§4.1).

    - exponential service times (via {!Terradir_util.Splitmix.exponential});
    - Poisson arrival processes (exponential inter-arrival gaps);
    - the Zipf law of popularity vs. ranking, for locality query streams. *)

val poisson_gap : Terradir_util.Splitmix.t -> rate:float -> float
(** Next inter-arrival gap of a Poisson process with the given rate (events
    per unit time).  @raise Invalid_argument if [rate <= 0]. *)

val lognormal : Terradir_util.Splitmix.t -> mu:float -> sigma:float -> float
(** One lognormal variate [exp(Normal(mu, sigma))] (Box–Muller) — the
    heavy-tailed latency model of {!Net}.  Median is [exp mu].
    @raise Invalid_argument if [sigma < 0]. *)

module Zipf : sig
  (** Sampler for P(rank = k) ∝ 1/k^alpha over ranks 1..n, by inverse-CDF
      lookup with binary search (O(log n) per draw after O(n) setup). *)

  type t

  val create : alpha:float -> n:int -> t
  (** @raise Invalid_argument if [n <= 0] or [alpha < 0]. *)

  val alpha : t -> float

  val support : t -> int

  val sample : t -> Terradir_util.Splitmix.t -> int
  (** A rank in [0 .. n-1] (0 = most popular). *)

  val probability : t -> int -> float
  (** [probability z k] for rank [k] in [0 .. n-1]. *)
end
