(** Discrete-event simulation engine — sequential, or sharded across
    OCaml 5 domains with conservative synchronized windows.

    A simulation is a clock plus a priority queue of timestamped thunks.
    [run] repeatedly pops the earliest event, advances the clock to its
    timestamp, and executes it; handlers schedule further events.

    Events are totally ordered by a canonical, partition-independent key:
    (timestamp, tie), where the tie-break combines the {e executing}
    context id with a per-context monotone counter.  Because the order
    never references global insertion order, it is identical for every
    shard count [K] — byte-identical simulation outputs at K = 1, 2, 4…
    are the engine's core contract (test-enforced).

    The engine is deliberately minimal: processes, queues, and resources
    are modeled by the TerraDir layer on top of it. *)

type t

val create : ?scheduler:[ `Heap | `Calendar ] -> unit -> t
(** Fresh sequential engine with the clock at 0.  [scheduler] selects the
    event-queue implementation: [`Heap] (default) is the binary-heap
    {!Terradir_util.Pqueue}; [`Calendar] is the calendar queue, O(1)
    expected add/pop at steady state — the right choice for
    capacity-scale runs.  Both pop in the identical canonical sequence,
    so the selection never changes simulation results, only speed. *)

val configure : t -> domains:int -> lookahead:float -> shard_of:int array -> unit
(** Partition the engine's contexts across [domains] shard lanes before
    any event is scheduled.  [shard_of.(c)] is the lane of context [c]
    (servers, in the TerraDir layer); [lookahead] must be a positive
    lower bound on every cross-context scheduling delay — the minimum
    network latency.  [domains = 1] only records the context count.
    @raise Invalid_argument if the engine already has events, [domains]
    or an assignment is out of range, or [lookahead <= 0] with
    [domains > 1]. *)

val domains : t -> int
(** The configured shard count K (1 until {!configure}). *)

val driver_ctx : int
(** Pseudo-context [-1]: workload-driver events (arrival chains, phase
    transitions).  Must read no shard-owned state; executed on the
    coordinator, possibly ahead of slower shards. *)

val sync_ctx : int
(** Pseudo-context [-2]: cross-shard readers (the load monitor).  Always
    executed solo, with every lane idle. *)

val now : t -> float
(** Current simulation time — of the calling domain's lane while inside
    an event, of the coordinator between events. *)

val ctx : t -> int
(** Context (owner) of the event being executed on the calling domain;
    [-1] between events.  The TerraDir layer uses this to decide whether
    a completion may run inline or must be re-scheduled to its owner. *)

val lane_count : t -> int
(** Number of metric/obs lanes: K shard lanes plus the coordinator lane
    when K >= 2; exactly 1 when K = 1. *)

val lane_index : t -> int
(** Index in [0, lane_count) of the calling domain's current lane (the
    coordinator lane between events) — the slot for per-lane sinks. *)

val stamp : t -> int * float * int * int
(** [(lane, time, tie, sub)] of the currently executing event, bumping
    the intra-event emission counter [sub] — a canonical, K-independent
    sort key for merged observability records. *)

val schedule : ?owner:int -> t -> delay:float -> (unit -> unit) -> unit
(** [schedule ~owner t ~delay f] runs [f], in context [owner], at
    [now t +. delay].  [owner] (default {!driver_ctx}) is the server id
    whose state [f] touches; with [domains > 1] it selects the lane.
    Cross-lane schedules from inside a window must satisfy the lookahead
    ([delay >=] minimum network latency).
    @raise Invalid_argument if [delay] is negative or not finite, or on
    a lookahead violation. *)

val schedule_at : ?owner:int -> t -> float -> (unit -> unit) -> unit
(** Absolute-time variant. @raise Invalid_argument when scheduling into
    the past. *)

val pending : t -> int
(** Number of events not yet executed. *)

val next_time : t -> float option
(** Timestamp of the earliest pending event, if any. *)

val add_observer : t -> every:int -> (unit -> unit) -> unit
(** Register an observer hook, run strictly {e between} events — handlers
    never see it mid-flight.  At K = 1 it runs after every [every]-th
    executed event; at K >= 2 it runs at the first synchronization point
    (window barrier or solo sync event) after each [every]-multiple is
    crossed — the same points for every K >= 2, since the window
    schedule is K-independent.  Hooks must not schedule events or
    otherwise perturb the simulation; they exist for auditing and
    observation (invariant checks, probes).  Observers fire in
    registration order; several may share a cadence.
    @raise Invalid_argument if [every < 1]. *)

val set_observer : t -> every:int -> (unit -> unit) -> unit
(** [add_observer] after discarding every registered observer. *)

val clear_observer : t -> unit
(** Discard all observers. *)

val run : ?until:float -> t -> unit
(** Execute events in canonical key order.  With [until], stops (without
    executing them) at the first event strictly after [until] and
    advances the clock to [until]; without it, runs until the queues
    drain.  With [domains > 1], spawns the worker gang for the duration
    of the call.  @raise Invalid_argument if [until] is before [now]. *)

val step : t -> bool
(** Execute exactly the next event.  [false] when the queue is empty.
    @raise Invalid_argument on a multi-domain engine. *)

val events_executed : t -> int
(** Total events executed since creation (simulation-cost accounting). *)
