(** Sequential discrete-event simulation engine.

    A simulation is a clock plus a priority queue of timestamped thunks.
    [run] repeatedly pops the earliest event, advances the clock to its
    timestamp, and executes it; handlers schedule further events.  Events
    with equal timestamps fire in scheduling order (deterministic).

    The engine is deliberately minimal: processes, queues, and resources are
    modeled by the TerraDir layer on top of it. *)

type t

val create : ?scheduler:[ `Heap | `Calendar ] -> unit -> t
(** Fresh engine with the clock at 0.  [scheduler] selects the event-queue
    implementation: [`Heap] (default) is the binary-heap {!Pqueue};
    [`Calendar] is the calendar queue, O(1) expected add/pop at steady
    state — the right choice for capacity-scale runs.  Both pop in the
    identical (timestamp, insertion-order) sequence, so the selection
    never changes simulation results, only speed. *)

val now : t -> float
(** Current simulation time. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay].
    @raise Invalid_argument if [delay] is negative or not finite. *)

val schedule_at : t -> float -> (unit -> unit) -> unit
(** Absolute-time variant. @raise Invalid_argument when scheduling into the
    past. *)

val pending : t -> int
(** Number of events not yet executed. *)

val next_time : t -> float option
(** Timestamp of the earliest pending event, if any — what the clock will
    advance to on the next {!step}. *)

val add_observer : t -> every:int -> (unit -> unit) -> unit
(** Register an observer: the hook runs after every [every]-th executed
    event, strictly {e between} events — handlers never see it mid-flight.
    Hooks must not schedule events or otherwise perturb the simulation;
    they exist for auditing and observation (invariant checks, probes).
    Observers fire in registration order; several may share a cadence.
    @raise Invalid_argument if [every < 1]. *)

val set_observer : t -> every:int -> (unit -> unit) -> unit
(** [add_observer] after discarding every registered observer. *)

val clear_observer : t -> unit
(** Discard all observers. *)

val run : ?until:float -> t -> unit
(** Execute events in timestamp order.  With [until], stops (without
    executing them) at the first event strictly after [until] and advances
    the clock to [until]; without it, runs until the queue drains.
    @raise Invalid_argument if [until] is before [now]. *)

val step : t -> bool
(** Execute exactly the next event.  [false] when the queue is empty. *)

val events_executed : t -> int
(** Total events executed since creation (simulation-cost accounting). *)
