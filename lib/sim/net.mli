(** Fault-injectable network model.

    Every simulated message traverses the network exactly once, through
    {!transmit}: the model decides whether the message is delivered (and
    after what latency), silently lost, or blocked by an active partition.
    All randomness flows through the [Splitmix] generator supplied at
    creation, so a run is bit-for-bit reproducible from a seed — the
    deterministic-simulation-testing discipline: the same seed must yield
    the same verdict and latency stream, fault injection included.

    The model is deliberately memoryless per message (iid loss, iid
    latency); correlated failures are expressed as partitions, installed
    and healed by the test harness at chosen simulation times. *)

(** Per-message latency distribution. *)
type latency =
  | Constant of float  (** every message takes exactly this long *)
  | Uniform of { base : float; jitter : float }
      (** uniform in [[base - jitter, base + jitter]]; requires
          [0 <= jitter <= base] *)
  | Lognormal of { median : float; sigma : float }
      (** heavy-tailed WAN-style latency: [exp(Normal(ln median, sigma))] *)

(** Verdict for one message. *)
type verdict =
  | Delivered of float  (** deliver after the sampled latency *)
  | Lost  (** dropped by iid loss — the sender learns nothing *)
  | Blocked  (** dropped by an active partition *)

type partition_id = int

type t

val create :
  ?loss:float ->
  ?latency:latency ->
  ?obs:Terradir_obs.Obs.t ->
  ?peers:int ->
  rng:Terradir_util.Splitmix.t ->
  unit ->
  t
(** [create ~rng ()] is an ideal network (no loss, zero constant latency)
    until configured otherwise.  [obs] (default the disabled sink)
    receives [Net_lost] / [Net_blocked] events, attributed to the sending
    server; recording never touches [rng].

    [peers] (the sender-id space, ids [0 .. peers-1]) switches the model
    to one randomness stream and one counter set {e per sender}: each
    stream is split off [rng] in id order at creation, and a sender's
    draws then depend only on its own transmission order.  This is what
    makes a multi-domain engine run bit-identical to the sequential one
    — a shared stream would be consumed in nondeterministic global order
    — and it keeps counter writes shard-local.  Without [peers] the
    legacy single-stream model is unchanged.
    @raise Invalid_argument if [loss] is outside [0, 1], [peers < 1], or
    the latency parameters are invalid (negative times, [jitter > base],
    non-positive median, negative sigma). *)

val set_loss : t -> float -> unit
(** Change the iid per-message loss probability.  @raise Invalid_argument
    outside [0, 1]. *)

val loss : t -> float

val set_latency : t -> latency -> unit
(** @raise Invalid_argument on invalid parameters (see {!create}). *)

val sample_latency : t -> float
(** Draw one latency from the current distribution (always >= 0), using
    the shared creation-time stream — test/diagnostic use; {!transmit}
    draws from the per-sender stream when [peers] was given. *)

val min_latency : t -> float
(** Infimum of the current latency distribution: [Constant d] gives [d],
    [Uniform] gives [base - jitter], [Lognormal] gives [0.] (unbounded
    below in spirit).  The conservative engine's lookahead: no message
    sent at time [t] can act before [t + min_latency]. *)

val partition : ?directed:bool -> t -> a:int list -> b:int list -> partition_id
(** [partition t ~a ~b] makes every message from a server in [a] to a
    server in [b] — and, unless [directed] (default false), from [b] to
    [a] — return [Blocked] until the partition is healed.  Partitions
    stack: a pair is blocked while {e any} active partition covers it.
    @raise Invalid_argument if either side is empty or the sides
    intersect. *)

val heal : t -> partition_id -> unit
(** Remove one partition.  Unknown or already-healed ids are ignored
    (healing is idempotent). *)

val heal_all : t -> unit

val blocked : t -> src:int -> dst:int -> bool
(** Whether an active partition currently blocks [src -> dst].  Pure
    observation: no RNG draw, no counter update. *)

val transmit : t -> src:int -> dst:int -> verdict
(** Decide one message's fate: partition check first (no RNG), then the
    loss draw, then the latency draw.  Loopback ([src = dst]) is never
    lost or blocked.  Updates the delivery counters. *)

(** Cumulative {!transmit} counters, for metrics export. *)
val delivered : t -> int

val lost : t -> int

val blocked_count : t -> int

val backoff : base:float -> factor:float -> attempt:int -> float
(** The retransmission backoff schedule: [backoff ~base ~factor ~attempt]
    is [base *. factor ^ attempt] — the timeout granted to attempt number
    [attempt] (0 = the initial transmission).
    @raise Invalid_argument if [base < 0], [factor < 1] or
    [attempt < 0]. *)
