open Terradir_util

type latency =
  | Constant of float
  | Uniform of { base : float; jitter : float }
  | Lognormal of { median : float; sigma : float }

type verdict = Delivered of float | Lost | Blocked

type partition_id = int

type partition = {
  p_id : partition_id;
  p_a : (int, unit) Hashtbl.t;
  p_b : (int, unit) Hashtbl.t;
  p_directed : bool;
}

type t = {
  rng : Splitmix.t;
  src_rngs : Splitmix.t array;
      (* per-source randomness streams ([create ~peers]): each sender
         draws loss/latency from its own stream, so the draw order seen
         by any one stream is the sender's event order — deterministic
         and independent of how servers are sharded across domains.
         [||] = the legacy single-stream network. *)
  obs : Terradir_obs.Obs.t;
  mutable p_loss : float;
  mutable latency : latency;
  mutable partitions : partition list;
  mutable next_partition : int;
  n_delivered : int array;
  n_lost : int array;
  n_blocked : int array;
      (* per-source counters in [~peers] mode (writes stay shard-local);
         length 1 otherwise.  Read back as sums. *)
}

let check_loss p =
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Net: loss must be in [0, 1]"

let check_latency = function
  | Constant d -> if d < 0.0 then invalid_arg "Net: constant latency must be non-negative"
  | Uniform { base; jitter } ->
    if base < 0.0 then invalid_arg "Net: base latency must be non-negative";
    if jitter < 0.0 || jitter > base then invalid_arg "Net: jitter must be in [0, base]"
  | Lognormal { median; sigma } ->
    if median <= 0.0 then invalid_arg "Net: lognormal median must be positive";
    if sigma < 0.0 then invalid_arg "Net: lognormal sigma must be non-negative"

let create ?(loss = 0.0) ?(latency = Constant 0.0) ?(obs = Terradir_obs.Obs.null) ?peers ~rng () =
  check_loss loss;
  check_latency latency;
  let src_rngs =
    match peers with
    | None -> [||]
    | Some n ->
      if n < 1 then invalid_arg "Net.create: peers must be >= 1";
      (* split in src order so the stream assignment is a pure function
         of the peer count, whatever the eventual sharding *)
      Array.init n (fun _ -> Splitmix.split rng)
  in
  let slots = max 1 (Array.length src_rngs) in
  {
    rng;
    src_rngs;
    obs;
    p_loss = loss;
    latency;
    partitions = [];
    next_partition = 0;
    n_delivered = Array.make slots 0;
    n_lost = Array.make slots 0;
    n_blocked = Array.make slots 0;
  }

let set_loss t p =
  check_loss p;
  t.p_loss <- p

let loss t = t.p_loss

let set_latency t l =
  check_latency l;
  t.latency <- l

let draw_latency t rng =
  match t.latency with
  | Constant d -> d
  | Uniform { base; jitter } ->
    if jitter = 0.0 then base else base -. jitter +. Splitmix.float rng (2.0 *. jitter)
  | Lognormal { median; sigma } -> Dist.lognormal rng ~mu:(log median) ~sigma

let sample_latency t = draw_latency t t.rng

let min_latency t =
  match t.latency with
  | Constant d -> d
  | Uniform { base; jitter } -> base -. jitter
  | Lognormal _ -> 0.0

let partition ?(directed = false) t ~a ~b =
  if a = [] || b = [] then invalid_arg "Net.partition: empty side";
  let side ids =
    let h = Hashtbl.create (List.length ids) in
    List.iter (fun id -> Hashtbl.replace h id ()) ids;
    h
  in
  let p_a = side a and p_b = side b in
  (* lint: ordered existence check: raises iff the intersection is non-empty, in any visit order *)
  Hashtbl.iter
    (fun id () -> if Hashtbl.mem p_b id then invalid_arg "Net.partition: sides intersect")
    p_a;
  let id = t.next_partition in
  t.next_partition <- id + 1;
  t.partitions <- { p_id = id; p_a; p_b; p_directed = directed } :: t.partitions;
  id

let heal t id = t.partitions <- List.filter (fun p -> p.p_id <> id) t.partitions

let heal_all t = t.partitions <- []

let blocked t ~src ~dst =
  src <> dst
  && List.exists
       (fun p ->
         (Hashtbl.mem p.p_a src && Hashtbl.mem p.p_b dst)
         || ((not p.p_directed) && Hashtbl.mem p.p_b src && Hashtbl.mem p.p_a dst))
       t.partitions

let transmit t ~src ~dst =
  let per_src = Array.length t.src_rngs > 0 in
  let slot = if per_src then src else 0 in
  let rng = if per_src then t.src_rngs.(src) else t.rng in
  if blocked t ~src ~dst then begin
    t.n_blocked.(slot) <- t.n_blocked.(slot) + 1;
    if Terradir_obs.Obs.counters_on t.obs then
      (* lint: obs-in-hot-path fault events are rare and gated on the counters level *)
      Terradir_obs.Obs.record t.obs ~server:src (Terradir_obs.Event.Net_blocked { src; dst });
    Blocked
  end
  else if src <> dst && t.p_loss > 0.0 && Splitmix.float rng 1.0 < t.p_loss then begin
    t.n_lost.(slot) <- t.n_lost.(slot) + 1;
    if Terradir_obs.Obs.counters_on t.obs then
      (* lint: obs-in-hot-path fault events are rare and gated on the counters level *)
      Terradir_obs.Obs.record t.obs ~server:src (Terradir_obs.Event.Net_lost { src; dst });
    Lost
  end
  else begin
    t.n_delivered.(slot) <- t.n_delivered.(slot) + 1;
    Delivered (draw_latency t rng)
  end

let sum = Array.fold_left ( + ) 0

let delivered t = sum t.n_delivered

let lost t = sum t.n_lost

let blocked_count t = sum t.n_blocked

let backoff ~base ~factor ~attempt =
  if base < 0.0 then invalid_arg "Net.backoff: base must be non-negative";
  if factor < 1.0 then invalid_arg "Net.backoff: factor must be >= 1";
  if attempt < 0 then invalid_arg "Net.backoff: attempt must be non-negative";
  base *. (factor ** float_of_int attempt)
