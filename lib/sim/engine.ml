open Terradir_util

type t = {
  queue : (unit -> unit) Pqueue.t;
  mutable clock : float;
  mutable executed : int;
  mutable observers : (int * (unit -> unit)) list;
      (** (cadence, hook) pairs, in registration order: each hook runs
          after every [cadence]-th event, between events — never inside
          one *)
}

let create () = { queue = Pqueue.create (); clock = 0.0; executed = 0; observers = [] }

let now t = t.clock

let schedule_at t time f =
  if not (Float.is_finite time) then invalid_arg "Engine.schedule_at: non-finite time";
  if time < t.clock then invalid_arg "Engine.schedule_at: scheduling into the past";
  Pqueue.add t.queue time f

let schedule t ~delay f =
  if not (Float.is_finite delay) || delay < 0.0 then
    invalid_arg "Engine.schedule: negative or non-finite delay";
  Pqueue.add t.queue (t.clock +. delay) f

let pending t = Pqueue.length t.queue

let next_time t = Option.map fst (Pqueue.min t.queue)

let add_observer t ~every f =
  if every < 1 then invalid_arg "Engine.add_observer: every must be >= 1";
  t.observers <- t.observers @ [ (every, f) ]

let set_observer t ~every f =
  if every < 1 then invalid_arg "Engine.set_observer: every must be >= 1";
  t.observers <- [ (every, f) ]

let clear_observer t = t.observers <- []

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    t.executed <- t.executed + 1;
    f ();
    (match t.observers with
    | [] -> ()
    | observers ->
      List.iter (fun (every, obs) -> if t.executed mod every = 0 then obs ()) observers);
    true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
    if stop < t.clock then invalid_arg "Engine.run: until is in the past";
    let continue = ref true in
    while !continue do
      match Pqueue.min t.queue with
      | Some (time, _) when time <= stop -> ignore (step t)
      | Some _ | None -> continue := false
    done;
    t.clock <- stop

let events_executed t = t.executed
