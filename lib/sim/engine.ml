open Terradir_util

(* The event queue comes in two interchangeable flavors: the binary heap
   (default) and the calendar queue (O(1) expected at steady state, for
   capacity-scale runs).  Both pop in identical (timestamp, insertion)
   order, so the choice is performance-only — test/test_interning.ml holds
   them to byte-identical pop sequences. *)
type queue = Heap of (unit -> unit) Pqueue.t | Calendar of (unit -> unit) Calqueue.t

type t = {
  queue : queue;
  mutable clock : float;
  mutable executed : int;
  mutable observers : (int * (unit -> unit)) list;
      (** (cadence, hook) pairs, in registration order: each hook runs
          after every [cadence]-th event, between events — never inside
          one *)
}

let create ?(scheduler = `Heap) () =
  let queue =
    match scheduler with `Heap -> Heap (Pqueue.create ()) | `Calendar -> Calendar (Calqueue.create ())
  in
  { queue; clock = 0.0; executed = 0; observers = [] }

let now t = t.clock

let enqueue t time f =
  match t.queue with Heap q -> Pqueue.add q time f | Calendar q -> Calqueue.add q time f

let schedule_at t time f =
  if not (Float.is_finite time) then invalid_arg "Engine.schedule_at: non-finite time";
  if time < t.clock then invalid_arg "Engine.schedule_at: scheduling into the past";
  enqueue t time f

let schedule t ~delay f =
  if not (Float.is_finite delay) || delay < 0.0 then
    invalid_arg "Engine.schedule: negative or non-finite delay";
  enqueue t (t.clock +. delay) f

let pending t = match t.queue with Heap q -> Pqueue.length q | Calendar q -> Calqueue.length q

let queue_empty t = match t.queue with Heap q -> Pqueue.is_empty q | Calendar q -> Calqueue.is_empty q

(* Undefined when empty; callers check [queue_empty] first. *)
let queue_top_key t = match t.queue with Heap q -> Pqueue.top_key q | Calendar q -> Calqueue.top_key q

let queue_pop_exn t = match t.queue with Heap q -> Pqueue.pop_exn q | Calendar q -> Calqueue.pop_exn q

let next_time t = if queue_empty t then None else Some (queue_top_key t)

let add_observer t ~every f =
  if every < 1 then invalid_arg "Engine.add_observer: every must be >= 1";
  t.observers <- t.observers @ [ (every, f) ]

let set_observer t ~every f =
  if every < 1 then invalid_arg "Engine.set_observer: every must be >= 1";
  t.observers <- [ (every, f) ]

let clear_observer t = t.observers <- []

let step t =
  if queue_empty t then false
  else begin
    let time = queue_top_key t in
    let f = queue_pop_exn t in
    t.clock <- time;
    t.executed <- t.executed + 1;
    f ();
    (match t.observers with
    | [] -> ()
    | observers ->
      List.iter (fun (every, obs) -> if t.executed mod every = 0 then obs ()) observers);
    true
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
    if stop < t.clock then invalid_arg "Engine.run: until is in the past";
    let continue = ref true in
    while !continue do
      if (not (queue_empty t)) && queue_top_key t <= stop then ignore (step t)
      else continue := false
    done;
    t.clock <- stop

let events_executed t = t.executed
