(* The discrete-event engine, sequential or sharded-parallel.

   Events live in per-lane queues (Shard.t) ordered by a canonical,
   partition-independent key: (timestamp, tie), where

     tie = (c lsl 43) lor seq
     c   = executing context + 1 (contexts < 0 — the driver and sync
           pseudo-contexts — share slot 0)
     seq = per-context monotone counter

   Because every event is scheduled from exactly one executing context
   and contexts are confined to one lane each, the counters advance
   identically whatever the shard count K — so the canonical order, and
   with it every simulation output, is byte-identical for all K
   (including K = 1, the plain sequential engine).

   K >= 2 runs conservative synchronized windows (see Par_engine and
   DESIGN §13): driver events (context -1, cross-shard writers) and sync
   events (context -2, cross-shard readers) each run solo when they are
   the global minimum; shard lanes execute in parallel up to a
   lookahead-bounded exclusive key — capped by the next solo key —
   exchanging cross-shard events through outboxes merged at the
   barrier. *)

let driver_ctx = -1

let sync_ctx = -2

let ctx_shift = 43

(* c must stay below 2^(62 - ctx_shift) so the tie fits a 63-bit int. *)
let max_ctx = 1 lsl 19

type t = {
  scheduler : [ `Heap | `Calendar ];
  mutable domains : int; (* shard count K; 1 = sequential *)
  mutable lanes : Shard.t array; (* length K *)
  mutable driver : Shard.t; (* = lanes.(0) when K = 1 *)
  mutable sync : Shard.t; (* = lanes.(0) when K = 1 *)
  mutable shard_of : int array; (* context -> lane; unused when K = 1 *)
  mutable lookahead : float;
  mutable counters : int array; (* per-context seq counters, slot = ctx + 1 *)
  mutable observers : (int * (unit -> unit)) list;
      (** (cadence, hook) pairs, in registration order: each hook runs
          after every [cadence]-th event (K = 1) or at the first
          barrier crossing a cadence multiple (K >= 2), between events —
          never inside one *)
  mutable obs_mark : int; (* executed count at the last barrier check *)
  mutable active : Shard.t option; (* coordinator's lane while inside an event *)
  mutable window_on : bool;
  mutable window_bound : float; (* time of the open window's bound *)
  mutable vclock : float; (* coordinator clock between events (K >= 2) *)
  dls : Shard.t option Domain.DLS.key; (* worker domains' own lane *)
}

let create ?(scheduler = `Heap) () =
  let lane0 = Shard.create ~scheduler ~idx:0 ~ndest:0 in
  {
    scheduler;
    domains = 1;
    lanes = [| lane0 |];
    driver = lane0;
    sync = lane0;
    shard_of = [||];
    lookahead = 0.0;
    counters = Array.make 1 0;
    observers = [];
    obs_mark = 0;
    active = None;
    window_on = false;
    window_bound = 0.0;
    vclock = 0.0;
    dls = Domain.DLS.new_key (fun () -> None);
  }

let domains t = t.domains

(* The lane whose event is running on the calling domain: lane 0 when
   sequential; the worker's own lane (domain-local) or the coordinator's
   current lane when parallel; [None] between events on the coordinator. *)
let cur_lane_opt t =
  if t.domains = 1 then Some t.lanes.(0)
  else match Domain.DLS.get t.dls with Some _ as l -> l | None -> t.active

let now t = match cur_lane_opt t with Some l -> Shard.clock l | None -> t.vclock

let ctx t = match cur_lane_opt t with Some l -> Shard.ctx l | None -> -1

let lane_count t = if t.domains = 1 then 1 else t.domains + 1

let lane_index t = match cur_lane_opt t with Some l -> Shard.idx l | None -> t.domains

let stamp t =
  match cur_lane_opt t with
  | Some l -> (Shard.idx l, Shard.clock l, Shard.tie l, Shard.next_sub l)
  | None -> (t.domains, t.vclock, 0, 0)

let events_executed t =
  if t.domains = 1 then Shard.executed t.lanes.(0)
  else begin
    let n = ref (Shard.executed t.driver + Shard.executed t.sync) in
    Array.iter (fun l -> n := !n + Shard.executed l) t.lanes;
    !n
  end

let pending t =
  if t.domains = 1 then Shard.length t.lanes.(0)
  else begin
    let n = ref (Shard.length t.driver + Shard.length t.sync) in
    Array.iter (fun l -> n := !n + Shard.length l) t.lanes;
    !n
  end

let next_time t =
  if t.domains = 1 then
    if Shard.is_empty t.lanes.(0) then None else Some (Shard.top_key t.lanes.(0))
  else begin
    let best = ref None in
    let consider lane =
      if not (Shard.is_empty lane) then begin
        let k = Shard.top_key lane and s = Shard.top_tie lane in
        match !best with
        | None -> best := Some (k, s)
        | Some (bk, bs) -> if Par_engine.key_lt k s bk bs then best := Some (k, s)
      end
    in
    Array.iter consider t.lanes;
    consider t.driver;
    consider t.sync;
    Option.map fst !best
  end

let ensure_counter t c =
  let n = Array.length t.counters in
  if c >= n then begin
    let m = ref (max 1 n) in
    while c >= !m do
      m := !m * 2
    done;
    let fresh = Array.make !m 0 in
    Array.blit t.counters 0 fresh 0 n;
    t.counters <- fresh
  end

let configure t ~domains ~lookahead ~shard_of =
  if events_executed t <> 0 || pending t <> 0 || t.domains <> 1 then
    invalid_arg "Engine.configure: engine already in use";
  if domains < 1 then invalid_arg "Engine.configure: domains must be >= 1";
  let num_ctx = Array.length shard_of in
  if num_ctx + 1 > max_ctx then invalid_arg "Engine.configure: too many contexts";
  ensure_counter t num_ctx;
  if domains > 1 then begin
    if not (lookahead > 0.0) then
      invalid_arg "Engine.configure: domains > 1 requires a positive lookahead";
    Array.iter
      (fun s ->
        if s < 0 || s >= domains then
          invalid_arg "Engine.configure: shard assignment out of range")
      shard_of;
    t.domains <- domains;
    t.shard_of <- Array.copy shard_of;
    t.lookahead <- lookahead;
    let ndest = domains + 2 in
    t.lanes <- Array.init domains (fun i -> Shard.create ~scheduler:t.scheduler ~idx:i ~ndest);
    t.driver <- Shard.create ~scheduler:t.scheduler ~idx:domains ~ndest;
    t.sync <- Shard.create ~scheduler:t.scheduler ~idx:domains ~ndest
  end

(* Allocate the canonical key for a fresh event and route it.  The seq
   counter slot is the EXECUTING context's (+1, negatives sharing slot
   0): each slot is only ever touched by the one lane its context lives
   on, so allocation needs no atomics and is K-independent. *)
let schedule_key t ~owner time f =
  let lane_opt = cur_lane_opt t in
  let cx = match lane_opt with Some l -> Shard.ctx l | None -> -1 in
  let c = if cx < 0 then 0 else cx + 1 in
  ensure_counter t c;
  let seq = t.counters.(c) in
  t.counters.(c) <- seq + 1;
  let tie = (c lsl ctx_shift) lor seq in
  if t.domains = 1 then Shard.enqueue t.lanes.(0) ~key:time ~tie ~tag:owner f
  else begin
    let d =
      if owner >= 0 then t.shard_of.(owner)
      else if owner = driver_ctx then t.domains
      else t.domains + 1
    in
    let dest = if d < t.domains then t.lanes.(d) else if d = t.domains then t.driver else t.sync in
    match lane_opt with
    | Some lane when t.window_on && dest != lane ->
      if time < t.window_bound then
        invalid_arg "Engine.schedule: cross-shard event inside the open window (lookahead violated)";
      Shard.outbox_push lane ~dest:d ~time ~tie ~owner f
    | _ -> Shard.enqueue dest ~key:time ~tie ~tag:owner f
  end

let schedule ?(owner = driver_ctx) t ~delay f =
  if not (Float.is_finite delay) || delay < 0.0 then
    invalid_arg "Engine.schedule: negative or non-finite delay";
  schedule_key t ~owner (now t +. delay) f

let schedule_at ?(owner = driver_ctx) t time f =
  if not (Float.is_finite time) then invalid_arg "Engine.schedule_at: non-finite time";
  if time < now t then invalid_arg "Engine.schedule_at: scheduling into the past";
  schedule_key t ~owner time f

let add_observer t ~every f =
  if every < 1 then invalid_arg "Engine.add_observer: every must be >= 1";
  t.observers <- t.observers @ [ (every, f) ]

let set_observer t ~every f =
  if every < 1 then invalid_arg "Engine.set_observer: every must be >= 1";
  t.observers <- [ (every, f) ]

let clear_observer t = t.observers <- []

(* ---- sequential execution (K = 1) ---- *)

let step t =
  if t.domains <> 1 then invalid_arg "Engine.step: unavailable on a multi-domain engine";
  let lane = t.lanes.(0) in
  if Shard.is_empty lane then false
  else begin
    Shard.pop_run lane;
    t.vclock <- Shard.clock lane;
    (match t.observers with
    | [] -> ()
    | observers ->
      List.iter (fun (every, obs) -> if Shard.executed lane mod every = 0 then obs ()) observers);
    true
  end

let seq_run ?until t =
  let lane = t.lanes.(0) in
  match until with
  | None -> while step t do () done
  | Some stop ->
    if stop < Shard.clock lane then invalid_arg "Engine.run: until is in the past";
    let continue = ref true in
    while !continue do
      if (not (Shard.is_empty lane)) && Shard.top_key lane <= stop then ignore (step t)
      else continue := false
    done;
    Shard.set_clock lane stop;
    t.vclock <- stop

(* ---- parallel execution (K >= 2) ---- *)

(* Fire observers that crossed a cadence multiple since the last check.
   Windows execute a K-independent set of events (the window schedule
   depends only on keys and the lookahead), so these firing points are
   identical for every K >= 2. *)
let fire_par t =
  (match t.observers with
  | [] -> ()
  | observers ->
    let total = events_executed t in
    List.iter
      (fun (every, obs) -> if total / every > t.obs_mark / every then obs ())
      observers);
  t.obs_mark <- events_executed t

let par_run ?until t =
  (match until with
  | Some s when s < t.vclock -> invalid_arg "Engine.run: until is in the past"
  | _ -> ());
  let in_stop k = match until with None -> true | Some s -> k <= s in
  let gang = Par_engine.create_gang ~workers:(t.domains - 1) in
  Fun.protect ~finally:(fun () -> Par_engine.shutdown_gang gang) @@ fun () ->
  let running = ref true in
  while !running do
    let lb = Par_engine.shard_min t.lanes in
    (* Driver and sync pseudo-context events both touch cross-shard state
       (injections mutate arbitrary servers' queues; the monitor reads
       every server), so each runs SOLO, exactly at its canonical position
       in the global order — never ahead of pending shard events whose
       keys precede it.  The next solo key also caps the window bound. *)
    let solo =
      let consider lane acc =
        if Shard.is_empty lane then acc
        else begin
          let k = Shard.top_key lane and s = Shard.top_tie lane in
          match acc with
          | Some (_, ak, asq) when Par_engine.key_lt ak asq k s -> acc
          | _ -> Some (lane, k, s)
        end
      in
      consider t.driver (consider t.sync None)
    in
    match (lb, solo) with
    | None, None -> running := false
    | _, Some (lane, sk, ss)
      when match lb with None -> true | Some (lk, ls) -> Par_engine.key_lt sk ss lk ls ->
      if in_stop sk then begin
        t.active <- Some lane;
        Shard.pop_run lane;
        t.active <- None;
        t.vclock <- sk;
        fire_par t
      end
      else running := false
    | None, Some _ -> assert false (* the solo guard above always takes this case *)
    | Some (lk, _), _ ->
      if not (in_stop lk) then running := false
      else begin
        let sm = Option.map (fun (_, k, s) -> (k, s)) solo in
        let bt, btie = Par_engine.window_bound ~lb_time:lk ~lookahead:t.lookahead ~sync:sm ~until in
        t.window_bound <- bt;
        t.window_on <- true;
        Par_engine.run_window gang t.lanes ~time:bt ~tie:btie
          ~prepare:(fun lane -> Domain.DLS.set t.dls (Some lane))
          ~coordinate:(fun drive ->
            t.active <- Some t.lanes.(0);
            drive ();
            t.active <- None);
        t.window_on <- false;
        Array.iter
          (fun lane ->
            Shard.drain_outboxes lane ~f:(fun ~dest ~time ~tie ~owner f ->
                let dst =
                  if dest < t.domains then t.lanes.(dest)
                  else if dest = t.domains then t.driver
                  else t.sync
                in
                Shard.enqueue dst ~key:time ~tie ~tag:owner f))
          t.lanes;
        t.vclock <- bt;
        fire_par t
      end
  done;
  match until with
  | Some s ->
    t.vclock <- s;
    Array.iter (fun l -> Shard.set_clock l s) t.lanes;
    Shard.set_clock t.driver s;
    Shard.set_clock t.sync s
  | None ->
    let m = ref t.vclock in
    Array.iter (fun l -> if Shard.clock l > !m then m := Shard.clock l) t.lanes;
    if Shard.clock t.driver > !m then m := Shard.clock t.driver;
    if Shard.clock t.sync > !m then m := Shard.clock t.sync;
    t.vclock <- !m

let run ?until t = if t.domains = 1 then seq_run ?until t else par_run ?until t
