open Terradir_util

type t = {
  queue : (unit -> unit) Pqueue.t;
  mutable clock : float;
  mutable executed : int;
  mutable observer : (int * (unit -> unit)) option;
      (** (cadence, hook): run the hook after every [cadence]-th event,
          between events — never inside one *)
}

let create () = { queue = Pqueue.create (); clock = 0.0; executed = 0; observer = None }

let now t = t.clock

let schedule_at t time f =
  if not (Float.is_finite time) then invalid_arg "Engine.schedule_at: non-finite time";
  if time < t.clock then invalid_arg "Engine.schedule_at: scheduling into the past";
  Pqueue.add t.queue time f

let schedule t ~delay f =
  if not (Float.is_finite delay) || delay < 0.0 then
    invalid_arg "Engine.schedule: negative or non-finite delay";
  Pqueue.add t.queue (t.clock +. delay) f

let pending t = Pqueue.length t.queue

let next_time t = Option.map fst (Pqueue.min t.queue)

let set_observer t ~every f =
  if every < 1 then invalid_arg "Engine.set_observer: every must be >= 1";
  t.observer <- Some (every, f)

let clear_observer t = t.observer <- None

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    t.executed <- t.executed + 1;
    f ();
    (match t.observer with
    | Some (every, obs) when t.executed mod every = 0 -> obs ()
    | Some _ | None -> ());
    true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
    if stop < t.clock then invalid_arg "Engine.run: until is in the past";
    let continue = ref true in
    while !continue do
      match Pqueue.min t.queue with
      | Some (time, _) when time <= stop -> ignore (step t)
      | Some _ | None -> continue := false
    done;
    t.clock <- stop

let events_executed t = t.executed
