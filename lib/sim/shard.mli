(** One shard lane of the discrete-event engine.

    A lane is an event queue ({!Terradir_util.Pqueue} or
    {!Terradir_util.Calqueue}) plus the mutable execution context of the
    event it is currently running (clock, owner, tie-break, intra-event
    counter).  The engine partitions servers across lanes; during a
    synchronized window each lane is driven by exactly one domain, so the
    fields need no atomicity — the window barrier publishes them.

    Queue entries store the canonical total-order key (timestamp, tie) in
    the (key, seq) slots and the event's owner context in the tag slot:
    the parallel engine's pop order over the union of all lanes is then
    exactly the sequential engine's pop order over one queue. *)

type queue =
  | Heap of (unit -> unit) Terradir_util.Pqueue.t
  | Calendar of (unit -> unit) Terradir_util.Calqueue.t

type t = {
  idx : int;
  queue : queue;
  mutable clock : float;
  mutable ctx : int;  (** owner of the running event; [-1] when idle *)
  mutable tie : int;
  mutable sub : int;  (** intra-event obs emission counter *)
  mutable executed : int;
  outboxes : (float * int * int * (unit -> unit)) list array;
      (** per-destination cross-lane deposits of the open window *)
}

val create : scheduler:[ `Heap | `Calendar ] -> idx:int -> ndest:int -> t

val length : t -> int

val is_empty : t -> bool

val top_key : t -> float
(** Undefined when empty (as are {!top_tie} and {!top_tag}). *)

val top_tie : t -> int

val top_tag : t -> int

val enqueue : t -> key:float -> tie:int -> tag:int -> (unit -> unit) -> unit

val pop_run : t -> unit
(** Execute the minimum event: sets clock/ctx/tie, runs the thunk, and
    resets [ctx] to [-1].  The lane must be non-empty. *)

val run_below : t -> time:float -> tie:int -> unit
(** Pop-and-run while the lane minimum is strictly below the exclusive
    bound [(time, tie)]. *)
