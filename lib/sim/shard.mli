(** One shard lane of the discrete-event engine.

    A lane is an event queue ({!Terradir_util.Pqueue} or
    {!Terradir_util.Calqueue}) plus the mutable execution context of the
    event it is currently running (clock, owner, tie-break, intra-event
    counter).  The engine partitions servers across lanes; during a
    synchronized window each lane is driven by exactly one domain, so the
    fields need no atomicity — the window barrier publishes them.

    The representation is abstract: lane state is single-writer by
    protocol (exactly one domain drives a lane inside a window), so every
    mutation must go through this interface where the race check can see
    it.  In particular the per-destination outboxes — the only sanctioned
    path for cross-lane event transfer — are reachable only via
    {!outbox_push} and {!drain_outboxes}, never as a raw array a caller
    could mutate outside the barrier protocol.

    Queue entries store the canonical total-order key (timestamp, tie) in
    the (key, seq) slots and the event's owner context in the tag slot:
    the parallel engine's pop order over the union of all lanes is then
    exactly the sequential engine's pop order over one queue. *)

type t

val create : scheduler:[ `Heap | `Calendar ] -> idx:int -> ndest:int -> t

val idx : t -> int
(** Lane index: [0..K-1] shards; [K] = the coordinator lane. *)

val clock : t -> float
(** Time of the event being / last executed on this lane. *)

val set_clock : t -> float -> unit
(** Force the lane clock (end-of-run [until] alignment); must only be
    called between windows, by the coordinating domain. *)

val ctx : t -> int
(** Owner of the running event; [-1] when idle. *)

val tie : t -> int
(** Tie-break of the running event (obs stamping). *)

val next_sub : t -> int
(** Return the running event's intra-event emission counter and advance
    it (obs stamping). *)

val executed : t -> int
(** Events executed on this lane since creation. *)

val length : t -> int

val is_empty : t -> bool

val top_key : t -> float
(** Undefined when empty (as are {!top_tie} and {!top_tag}). *)

val top_tie : t -> int

val top_tag : t -> int

val enqueue : t -> key:float -> tie:int -> tag:int -> (unit -> unit) -> unit

val outbox_push : t -> dest:int -> time:float -> tie:int -> owner:int -> (unit -> unit) -> unit
(** Park a cross-lane deposit for destination lane [dest] until the
    barrier.  Only the domain driving this lane may call it, and only
    while a window is open. *)

val drain_outboxes :
  t ->
  f:(dest:int -> time:float -> tie:int -> owner:int -> (unit -> unit) -> unit) ->
  unit
(** Hand every parked deposit to [f], one call per item, and clear the
    boxes (thunk slots are scrubbed so the buffers retain nothing).
    Coordinator-only, at the barrier; deposit order is irrelevant because
    ties are globally unique. *)

val pop_run : t -> unit
(** Execute the minimum event: sets clock/ctx/tie, runs the thunk, and
    resets [ctx] to [-1].  The lane must be non-empty. *)

val run_below : t -> time:float -> tie:int -> unit
(** Pop-and-run while the lane minimum is strictly below the exclusive
    bound [(time, tie)]. *)
