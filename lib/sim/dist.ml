open Terradir_util

let poisson_gap rng ~rate =
  if rate <= 0.0 then invalid_arg "Dist.poisson_gap: rate must be positive";
  Splitmix.exponential rng (1.0 /. rate)

let lognormal rng ~mu ~sigma =
  if sigma < 0.0 then invalid_arg "Dist.lognormal: sigma must be non-negative";
  (* Box–Muller; u1 shifted into (0, 1] so the log is finite. *)
  let u1 = 1.0 -. Splitmix.float rng 1.0 in
  let u2 = Splitmix.float rng 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  exp (mu +. (sigma *. z))

module Zipf = struct
  type t = { alpha : float; cdf : float array }

  let create ~alpha ~n =
    if n <= 0 then invalid_arg "Zipf.create: n must be positive";
    if alpha < 0.0 then invalid_arg "Zipf.create: alpha must be non-negative";
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for k = 0 to n - 1 do
      acc := !acc +. (1.0 /. (float_of_int (k + 1) ** alpha));
      cdf.(k) <- !acc
    done;
    let norm = !acc in
    for k = 0 to n - 1 do
      cdf.(k) <- cdf.(k) /. norm
    done;
    cdf.(n - 1) <- 1.0;
    { alpha; cdf }

  let alpha z = z.alpha

  let support z = Array.length z.cdf

  let sample z rng =
    let u = Splitmix.float rng 1.0 in
    (* First index with cdf.(i) > u. *)
    let lo = ref 0 and hi = ref (Array.length z.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if z.cdf.(mid) > u then hi := mid else lo := mid + 1
    done;
    !lo

  let probability z k =
    if k < 0 || k >= Array.length z.cdf then invalid_arg "Zipf.probability: rank out of range";
    if k = 0 then z.cdf.(0) else z.cdf.(k) -. z.cdf.(k - 1)
end
