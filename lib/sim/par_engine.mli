(** Conservative-window machinery for the parallel engine.

    Implements the synchronization protocol of the sharded engine: the
    canonical (timestamp, tie) key order, the lookahead-derived exclusive
    window bound, and fork-join execution of one window across a
    persistent {!Terradir_util.Pool.Gang}.  The engine proper
    ({!Engine}) owns the lanes and the orchestration loop. *)

val key_lt : float -> int -> float -> int -> bool
(** [key_lt t1 s1 t2 s2]: canonical order [(t1, s1) < (t2, s2)]. *)

val shard_min : Shard.t array -> (float * int) option
(** Minimum pending (time, tie) over the lanes; [None] if all empty. *)

val window_bound :
  lb_time:float ->
  lookahead:float ->
  sync:(float * int) option ->
  until:float option ->
  float * int
(** Exclusive upper bound of the next window: the tightest of
    [(lb_time + lookahead, -1)], the pending sync key, and
    [(until, max_int)]. *)

type gang

val create_gang : workers:int -> gang

val shutdown_gang : gang -> unit

val run_window :
  gang ->
  Shard.t array ->
  time:float ->
  tie:int ->
  prepare:(Shard.t -> unit) ->
  coordinate:((unit -> unit) -> unit) ->
  unit
(** [run_window gang lanes ~time ~tie ~prepare ~coordinate] executes one
    window bounded exclusively by [(time, tie)]: gang worker [i] runs
    [prepare lanes.(i+1)] then drains that lane; the calling domain is
    handed a thunk draining lane 0 through [coordinate] and then blocks
    at the barrier (worker exceptions re-raise there). *)
