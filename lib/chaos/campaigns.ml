open Terradir_namespace
open Terradir
open Terradir_workload

type spec = {
  workload : Stream.phase list;
  workload_seed : int;
  timeline : Timeline.t;
  window : float;
  slo : Report.slo;
  drain : float;
  config_tweak : Config.t -> Config.t;
}

type t = {
  name : string;
  title : string;
  spec : servers:int -> rate:float -> seed:int -> spec;
}

(* Every canned campaign arms the retransmission machinery: without rpc
   timers, queries stranded behind a partition never produce an outcome,
   so availability would not dip — it would silently leak into the
   unresolved count and the fault window would look perfect. *)
let resilient_config c =
  { c with Config.rpc_timeout = 0.5; max_retries = 3; retry_backoff = 2.0 }

let zipf alpha = Stream.Zipf { alpha; reshuffle = false }

(* Planned maintenance: a rolling restart of a server subset — graceful
   leave (owned nodes handed off), a repair pause, revive.  Queries must
   ride the handoffs; availability should barely move. *)
let rolling_restart =
  {
    name = "rolling-restart";
    title = "rolling restart: staggered graceful leaves and revives";
    spec =
      (fun ~servers ~rate ~seed ->
        ignore seed;
        let nrest = max 2 (servers / 32) in
        let victim k = (k + 1) * servers / (nrest + 1) in
        let timeline =
          List.concat
            (List.init nrest (fun k ->
                 let t0 = 16.0 +. (3.0 *. float_of_int k) in
                 [
                   (t0, Action.Graceful_leave [ victim k ]);
                   (t0 +. 6.0, Action.Revive [ victim k ]);
                 ]))
        in
        {
          workload = Stream.unif ~rate ~duration:60.0;
          workload_seed = 1000;
          timeline = Timeline.make timeline;
          window = 2.0;
          slo = Report.default_slo;
          drain = 2.0;
          config_tweak = resilient_config;
        });
  }

(* Correlated failure: an eighth of the servers (a "rack") cut off from
   the rest, then healed.  Availability dips while queries that must
   cross the cut time out; reconvergence starts at the heal. *)
let rack_partition =
  {
    name = "rack-partition";
    title = "correlated rack partition and heal";
    spec =
      (fun ~servers ~rate ~seed ->
        ignore seed;
        let rack_size = max 1 (servers / 8) in
        let rack = List.init rack_size Fun.id in
        let rest = List.init (servers - rack_size) (fun i -> i + rack_size) in
        {
          workload = Stream.unif ~rate ~duration:60.0;
          workload_seed = 2000;
          timeline =
            Timeline.make
              [
                (20.0, Action.Partition { tag = "rack"; a = rack; b = rest; directed = false });
                (38.0, Action.Heal "rack");
              ];
          window = 2.0;
          slo = Report.default_slo;
          drain = 2.0;
          config_tweak = resilient_config;
        });
  }

(* The compound stress of §4: a partition is live when a flash crowd
   lands on a hot subtree — replication must shed the surge while the
   cut steals capacity.  The acceptance scenario. *)
let partition_flash_crowd =
  {
    name = "partition-flash-crowd";
    title = "flash crowd during an active partition";
    spec =
      (fun ~servers ~rate ~seed ->
        ignore seed;
        let rack_size = max 1 (servers / 8) in
        let rack = List.init rack_size Fun.id in
        let rest = List.init (servers - rack_size) (fun i -> i + rack_size) in
        {
          workload = Stream.unif ~rate ~duration:62.0;
          workload_seed = 3000;
          timeline =
            Timeline.make
              [
                (18.0, Action.Partition { tag = "rack"; a = rack; b = rest; directed = false });
                ( 22.0,
                  Action.Flash_crowd
                    {
                      phases = [ { Stream.duration = 12.0; rate; dist = zipf 1.25 } ];
                      seed = 3001;
                    } );
                (40.0, Action.Heal "rack");
              ];
          window = 2.0;
          slo = Report.default_slo;
          drain = 2.0;
          config_tweak = resilient_config;
        });
  }

(* Escalating churn: background loss, then two deterministic
   kill-fraction waves, then mass revival and a clean network — the
   survival-under-churn sweep from the replication literature. *)
let churn_ramp =
  {
    name = "churn-ramp";
    title = "churn ramp: loss + kill-fraction waves, then mass revival";
    spec =
      (fun ~servers ~rate ~seed ->
        ignore servers;
        {
          workload = Stream.unif ~rate ~duration:64.0;
          workload_seed = 4000;
          timeline =
            Timeline.make
              [
                (10.0, Action.Set_loss 0.02);
                (18.0, Action.Kill_fraction { fraction = 0.08; salt = seed });
                (26.0, Action.Kill_fraction { fraction = 0.08; salt = seed + 1 });
                (42.0, Action.Revive_killed);
                (46.0, Action.Set_loss 0.0);
              ];
          window = 2.0;
          slo = Report.default_slo;
          drain = 2.0;
          config_tweak = resilient_config;
        });
  }

let all = [ rolling_restart; rack_partition; partition_flash_crowd; churn_ramp ]

let find name = List.find_opt (fun c -> String.equal c.name name) all

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

let run_campaign ?obs ?(config = Config.default) campaign ~servers ~rate ~seed =
  if servers < 2 then invalid_arg "Campaigns.run_campaign: need at least 2 servers";
  if rate <= 0.0 then invalid_arg "Campaigns.run_campaign: rate must be positive";
  let spec = campaign.spec ~servers ~rate ~seed in
  (* Same shape the experiment suite uses: ~8 nodes per server. *)
  let levels = max 3 (log2i (8 * servers)) in
  let tree = Build.balanced ~arity:2 ~levels in
  let config = spec.config_tweak { config with Config.num_servers = servers; seed } in
  let cluster = Cluster.create ?obs ~config ~tree () in
  Chaos.run ~drain:spec.drain ~window:spec.window ~slo:spec.slo ~scenario:campaign.name ~seed
    cluster ~workload:spec.workload ~workload_seed:spec.workload_seed ~timeline:spec.timeline ()
