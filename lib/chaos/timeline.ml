type t = (float * Action.t) list

let make entries =
  List.iter
    (fun (at, _) ->
      if Float.is_nan at || at < 0.0 || not (Float.is_finite at) then
        invalid_arg "Timeline.make: action times must be finite and non-negative")
    entries;
  (* Stable: same-time actions keep their declaration order, which is the
     order Chaos.run schedules (and hence applies) them in. *)
  List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) entries

let entries t = t

let first_time = function [] -> None | (at, _) :: _ -> Some at

let is_empty = function [] -> true | _ :: _ -> false
