open Terradir_workload

type t =
  | Kill of int list
  | Revive of int list
  | Revive_killed
  | Graceful_leave of int list
  | Kill_fraction of { fraction : float; salt : int }
  | Partition of { tag : string; a : int list; b : int list; directed : bool }
  | Heal of string
  | Heal_all
  | Set_loss of float
  | Set_jitter of float
  | Flash_crowd of { phases : Stream.phase list; seed : int }
  | Rate_shift of float

let kind = function
  | Kill _ -> "kill"
  | Revive _ -> "revive"
  | Revive_killed -> "revive_killed"
  | Graceful_leave _ -> "graceful_leave"
  | Kill_fraction _ -> "kill_fraction"
  | Partition _ -> "partition"
  | Heal _ -> "heal"
  | Heal_all -> "heal_all"
  | Set_loss _ -> "set_loss"
  | Set_jitter _ -> "set_jitter"
  | Flash_crowd _ -> "flash_crowd"
  | Rate_shift _ -> "rate_shift"

(* Render a sorted id list compactly and comma-free: a contiguous run as
   "lo..hi", anything else "+"-joined ("3+7+12").  The detail strings
   land in CSV cells and the JSON report, so they must stay free of
   commas and quotes. *)
let ids_to_string ids =
  match List.sort_uniq Int.compare ids with
  | [] -> "none"
  | sorted ->
    let lo = List.hd sorted and hi = List.nth sorted (List.length sorted - 1) in
    if hi - lo + 1 = List.length sorted && List.length sorted > 2 then
      Printf.sprintf "%d..%d" lo hi
    else String.concat "+" (List.map string_of_int sorted)

let detail = function
  | Kill ids -> Printf.sprintf "servers=%s" (ids_to_string ids)
  | Revive ids -> Printf.sprintf "servers=%s" (ids_to_string ids)
  | Revive_killed -> ""
  | Graceful_leave ids -> Printf.sprintf "servers=%s" (ids_to_string ids)
  | Kill_fraction { fraction; salt } -> Printf.sprintf "fraction=%.4f salt=%d" fraction salt
  | Partition { tag; a; b; directed } ->
    Printf.sprintf "tag=%s a=%s b=%s directed=%b" tag (ids_to_string a) (ids_to_string b)
      directed
  | Heal tag -> Printf.sprintf "tag=%s" tag
  | Heal_all -> ""
  | Set_loss p -> Printf.sprintf "loss=%.4f" p
  | Set_jitter j -> Printf.sprintf "jitter=%.6f" j
  | Flash_crowd { phases; seed } ->
    Printf.sprintf "phases=%d duration=%.1f seed=%d" (List.length phases)
      (Stream.total_duration phases) seed
  | Rate_shift f -> Printf.sprintf "factor=%.4f" f

(* Recovery markers anchor the report's time-to-reconvergence clocks:
   actions after which the system is {e expected} to climb back to the
   baseline band.  Loss/jitter resets and rate shifts back down could
   qualify too, but their "recovered" state is ambiguous (the knob may
   move several times); the unambiguous set is below. *)
let is_recovery = function
  | Revive _ | Revive_killed | Heal _ | Heal_all -> true
  | Kill _ | Graceful_leave _ | Kill_fraction _ | Partition _ | Set_loss _ | Set_jitter _
  | Flash_crowd _ | Rate_shift _ -> false
