(** The chaos action vocabulary: everything a fault timeline can do to a
    running cluster.

    Actions are declarative values; {!Chaos.run} validates and applies
    them at their scheduled times from the cluster's own event engine, so
    a timeline perturbs the simulation exactly like hand-written test
    code would — deterministically, for every engine shard count. *)

type t =
  | Kill of int list  (** fail-stop the listed servers ({!Terradir.Cluster.kill}) *)
  | Revive of int list
  | Revive_killed
      (** revive every server this timeline has killed so far (fail-stop,
          fraction, or graceful) and not yet revived, in ascending id
          order — the bookkeeping-free complement of {!Kill_fraction} *)
  | Graceful_leave of int list
      (** planned departures: owned nodes are handed to random alive
          peers before the fail-stop ({!Terradir.Cluster.graceful_leave}) *)
  | Kill_fraction of { fraction : float; salt : int }
      (** kill [fraction] of the {e currently alive} servers, picked by a
          private [Splitmix] stream seeded from [salt] — deterministic,
          independent of the engine shard count, and never taking the
          last alive server *)
  | Partition of { tag : string; a : int list; b : int list; directed : bool }
      (** install a network partition and remember it under [tag] *)
  | Heal of string  (** heal the partition installed under this tag *)
  | Heal_all
  | Set_loss of float  (** iid per-message loss probability, in [0, 1] *)
  | Set_jitter of float
      (** switch the network latency to uniform
          [network_delay ± jitter]; [0.] restores the constant-delay
          model.  Bounded by the configured [net_jitter] — see the
          determinism rule in {!Chaos.run} *)
  | Flash_crowd of { phases : Terradir_workload.Stream.phase list; seed : int }
      (** start an extra query stream (its own seed and phases) at the
          action time, on top of the base workload *)
  | Rate_shift of float
      (** scale the base workload's arrival rate by this factor from now
          on ({!Terradir_workload.Scenario.set_rate_factor}) *)

val kind : t -> string
(** Stable snake_case tag ("kill", "partition", ...) used in the report's
    event log and the obs flight recorder. *)

val detail : t -> string
(** Comma-free [k=v] rendering of the payload (embeds in CSV cells and
    the JSON report). *)

val is_recovery : t -> bool
(** Whether the action starts a time-to-reconvergence clock in the
    resilience report: [Revive]/[Revive_killed]/[Heal]/[Heal_all]. *)

val ids_to_string : int list -> string
(** Compact sorted rendering: contiguous runs as "lo..hi", otherwise
    "+"-joined; "none" when empty. *)
