(** A fault timeline: actions at offsets (seconds) from the campaign
    start, kept sorted by time.  Same-time actions apply in declaration
    order (the sort is stable). *)

type t

val make : (float * Action.t) list -> t
(** @raise Invalid_argument on a negative, NaN or infinite time. *)

val entries : t -> (float * Action.t) list
(** Sorted ascending by time. *)

val first_time : t -> float option
(** Offset of the earliest action; [None] for an empty timeline.  The
    report's baseline is measured over the windows that end before it. *)

val is_empty : t -> bool
