type window = {
  w_start : float;
  w_end : float;
  issued : int;
  resolved : int;
  dropped : int;
  availability : float;
  p99_latency : float;
  replicas_created : int;
  net_lost : int;
  net_blocked : int;
  alive : int;
}

type event = {
  e_time : float;
  e_kind : string;
  e_detail : string;
  e_recovery : bool;
}

type recovery = {
  r_time : float;
  r_kind : string;
  r_reconverged : float option;
}

type baseline = {
  b_windows : int;
  b_availability : float;
  b_p99 : float;
}

type totals = {
  injected : int;
  resolved_total : int;
  dropped_total : int;
  unresolved : int;
  replicas_total : int;
  net_lost_total : int;
  net_blocked_total : int;
}

type slo = {
  availability_drop : float;
  p99_factor : float;
}

let default_slo = { availability_drop = 0.05; p99_factor = 2.0 }

type t = {
  scenario : string;
  seed : int;
  workload_seed : int;
  engine_domains : int;
  servers : int;
  window_s : float;
  duration_s : float;
  slo : slo;
  baseline : baseline option;
  windows : window list;
  events : event list;
  recoveries : recovery list;
  totals : totals;
}

(* ---- JSON rendering ----

   Hand-rolled like tools/trace_check's consumer side: the repo carries
   no JSON dependency.  Floats print as %.6f — fixed precision keeps the
   report byte-identical across runs and engine shard counts. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jf x = Printf.sprintf "%.6f" x

let window_to_json w =
  Printf.sprintf
    "{\"t_start\": %s, \"t_end\": %s, \"issued\": %d, \"resolved\": %d, \"dropped\": %d, \
     \"availability\": %s, \"p99_s\": %s, \"replicas_created\": %d, \"net_lost\": %d, \
     \"net_blocked\": %d, \"alive\": %d}"
    (jf w.w_start) (jf w.w_end) w.issued w.resolved w.dropped (jf w.availability)
    (jf w.p99_latency) w.replicas_created w.net_lost w.net_blocked w.alive

let event_to_json e =
  Printf.sprintf "{\"t\": %s, \"kind\": \"%s\", \"detail\": \"%s\", \"recovery\": %b}"
    (jf e.e_time) (json_escape e.e_kind) (json_escape e.e_detail) e.e_recovery

let recovery_to_json r =
  Printf.sprintf "{\"t\": %s, \"kind\": \"%s\", \"reconverged_s\": %s}" (jf r.r_time)
    (json_escape r.r_kind)
    (match r.r_reconverged with None -> "null" | Some t -> jf t)

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"terradir-resilience-report\",\n";
  Buffer.add_string b "  \"version\": 1,\n";
  Buffer.add_string b (Printf.sprintf "  \"scenario\": \"%s\",\n" (json_escape t.scenario));
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" t.seed);
  Buffer.add_string b (Printf.sprintf "  \"workload_seed\": %d,\n" t.workload_seed);
  Buffer.add_string b (Printf.sprintf "  \"engine_domains\": %d,\n" t.engine_domains);
  Buffer.add_string b (Printf.sprintf "  \"servers\": %d,\n" t.servers);
  Buffer.add_string b (Printf.sprintf "  \"window_s\": %s,\n" (jf t.window_s));
  Buffer.add_string b (Printf.sprintf "  \"duration_s\": %s,\n" (jf t.duration_s));
  Buffer.add_string b
    (Printf.sprintf "  \"slo\": {\"availability_drop\": %s, \"p99_factor\": %s},\n"
       (jf t.slo.availability_drop) (jf t.slo.p99_factor));
  (match t.baseline with
  | None -> Buffer.add_string b "  \"baseline\": null,\n"
  | Some base ->
    Buffer.add_string b
      (Printf.sprintf "  \"baseline\": {\"windows\": %d, \"availability\": %s, \"p99_s\": %s},\n"
         base.b_windows (jf base.b_availability) (jf base.b_p99)));
  Buffer.add_string b "  \"windows\": [\n";
  List.iteri
    (fun i w ->
      Buffer.add_string b "    ";
      Buffer.add_string b (window_to_json w);
      if i < List.length t.windows - 1 then Buffer.add_string b ",";
      Buffer.add_string b "\n")
    t.windows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"events\": [\n";
  List.iteri
    (fun i e ->
      Buffer.add_string b "    ";
      Buffer.add_string b (event_to_json e);
      if i < List.length t.events - 1 then Buffer.add_string b ",";
      Buffer.add_string b "\n")
    t.events;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"recoveries\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b "    ";
      Buffer.add_string b (recovery_to_json r);
      if i < List.length t.recoveries - 1 then Buffer.add_string b ",";
      Buffer.add_string b "\n")
    t.recoveries;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"totals\": {\"injected\": %d, \"resolved\": %d, \"dropped\": %d, \"unresolved\": \
        %d, \"replicas_created\": %d, \"net_lost\": %d, \"net_blocked\": %d}\n"
       t.totals.injected t.totals.resolved_total t.totals.dropped_total t.totals.unresolved
       t.totals.replicas_total t.totals.net_lost_total t.totals.net_blocked_total);
  Buffer.add_string b "}\n";
  Buffer.contents b

let windows_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "t_start,t_end,issued,resolved,dropped,availability,p99_s,replicas_created,net_lost,net_blocked,alive\n";
  List.iter
    (fun w ->
      Buffer.add_string b
        (Printf.sprintf "%s,%s,%d,%d,%d,%s,%s,%d,%d,%d,%d\n" (jf w.w_start) (jf w.w_end)
           w.issued w.resolved w.dropped (jf w.availability) (jf w.p99_latency)
           w.replicas_created w.net_lost w.net_blocked w.alive))
    t.windows;
  Buffer.contents b

let min_fault_availability t =
  match t.baseline with
  | None -> List.fold_left (fun acc w -> Float.min acc w.availability) 1.0 t.windows
  | Some base ->
    let skip = base.b_windows in
    let rest = List.filteri (fun i _ -> i >= skip) t.windows in
    List.fold_left (fun acc w -> Float.min acc w.availability) 1.0 rest

let mean_time_to_reconvergence t =
  let times =
    List.filter_map
      (fun r -> match r.r_reconverged with None -> None | Some at -> Some (at -. r.r_time))
      t.recoveries
  in
  match times with
  | [] -> None
  | ts -> Some (List.fold_left ( +. ) 0.0 ts /. float_of_int (List.length ts))

let summary_rows t =
  let f = Printf.sprintf in
  let base_rows =
    match t.baseline with
    | None -> [ ("baseline", "none (faults start before the first full window)") ]
    | Some base ->
      [
        ("baseline windows", f "%d" base.b_windows);
        ("baseline availability", f "%.4f" base.b_availability);
        ("baseline p99 (s)", f "%.4f" base.b_p99);
      ]
  in
  let reconv_rows =
    List.map
      (fun r ->
        ( f "reconvergence after %s @ %.1fs" r.r_kind r.r_time,
          match r.r_reconverged with
          | None -> "never (within the run)"
          | Some at -> f "%.1fs (at t=%.1fs)" (at -. r.r_time) at ))
      t.recoveries
  in
  [
    ("scenario", t.scenario);
    ("servers", f "%d" t.servers);
    ("windows", f "%d x %.1fs" (List.length t.windows) t.window_s);
    ("injected", f "%d" t.totals.injected);
    ("resolved", f "%d" t.totals.resolved_total);
    ("dropped", f "%d" t.totals.dropped_total);
    ("unresolved", f "%d" t.totals.unresolved);
  ]
  @ base_rows
  @ [ ("min availability (fault era)", f "%.4f" (min_fault_availability t)) ]
  @ reconv_rows
