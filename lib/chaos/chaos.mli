(** The chaos scenario runner: apply a fault {!Timeline} to a cluster
    while a workload runs, and measure resilience.

    {b Determinism rules} (DESIGN §15):
    - every action fires from the cluster's own event engine in a solo
      driver event, so fault injection interleaves with protocol traffic
      at one deterministic point for every [engine_domains] value;
    - the only randomness actions consume is either the cluster's own
      driver-side stream ([graceful_leave]'s peer picks) or a private
      stream derived from a declared salt ([Kill_fraction]) — never
      wall-clock, never a global generator;
    - window snapshots run in the engine's solo sync context and are pure
      observation;
    - [Set_jitter] may not exceed the configured [net_jitter]: the
      conservative engine's lookahead was fixed at cluster creation from
      the latency floor, so a campaign that shakes jitter declares its
      maximum up front (and typically opens with a [Set_jitter] down to
      the intended starting value).  The bound is enforced at {e every}
      shard count so a timeline valid at K=1 is valid at K=4.

    The result is a {!Report.t} whose trajectory fields are
    byte-identical across [engine_domains] and across repeated runs with
    the same seeds. *)

val run :
  ?drain:float ->
  ?window:float ->
  ?slo:Report.slo ->
  ?scenario:string ->
  ?seed:int ->
  ?fetch_probability:float ->
  Terradir.Cluster.t ->
  workload:Terradir_workload.Stream.phase list ->
  workload_seed:int ->
  timeline:Timeline.t ->
  unit ->
  Report.t
(** Start the base workload, schedule every timeline action (offsets are
    relative to the engine's current time), run to the end of all streams
    plus [drain] (default 2 s) rounded up to a whole number of windows
    (default 1 s), and assemble the report.

    [scenario] and [seed] are metadata echoed into the report;
    [slo] (default {!Report.default_slo}) sets the reconvergence band;
    [fetch_probability] is passed through to the base workload stream.

    Availability is measured per window as resolved/issued (clamped to
    [0, 1], vacuously 1 when idle); the baseline aggregates the windows
    that end before the first timeline action (absent when the first
    action lands inside the first window).  Each recovery action starts a
    reconvergence clock that stops at the end of the first subsequent
    window back inside the SLO band.

    @raise Invalid_argument on an invalid timeline (out-of-range server
    ids, [Heal] of a never-installed tag, [Set_jitter] above the
    configured ceiling, bad probabilities or rates) or invalid
    window/drain/slo parameters. *)
