(** Canned chaos campaigns: named, parameterized fault scenarios ready to
    run from the CLI ([terradir_sim chaos]) or the experiment suite.

    Every campaign arms the rpc-timeout machinery in its config tweak —
    without timers, queries stranded behind a fault never produce an
    outcome and the availability dip the campaign exists to measure would
    hide in the unresolved count. *)

type spec = {
  workload : Terradir_workload.Stream.phase list;  (** the base query stream *)
  workload_seed : int;
  timeline : Timeline.t;
  window : float;  (** report window width, seconds *)
  slo : Report.slo;
  drain : float;
  config_tweak : Terradir.Config.t -> Terradir.Config.t;
      (** applied after servers/seed are set; arms timeouts, may raise
          [net_jitter] budgets, etc. *)
}

type t = {
  name : string;  (** CLI identifier, e.g. "rack-partition" *)
  title : string;
  spec : servers:int -> rate:float -> seed:int -> spec;
}

val rolling_restart : t
(** Staggered graceful leaves and revives of a server subset — planned
    maintenance; availability should barely move. *)

val rack_partition : t
(** An eighth of the servers cut off, then healed. *)

val partition_flash_crowd : t
(** A Zipf flash crowd lands while a rack partition is active — the
    acceptance scenario (availability dips, then reconverges after the
    heal). *)

val churn_ramp : t
(** Background loss plus two seeded kill-fraction waves, then mass
    revival and a clean network. *)

val all : t list

val find : string -> t option

val run_campaign :
  ?obs:Terradir_obs.Obs.t ->
  ?config:Terradir.Config.t ->
  t ->
  servers:int ->
  rate:float ->
  seed:int ->
  Report.t
(** Build a balanced namespace (~8 nodes per server, the experiment
    suite's shape), a cluster from [config] (default [Config.default])
    with [servers]/[seed] applied and the campaign's tweak on top, and
    run the campaign's spec at the given query [rate].
    @raise Invalid_argument when [servers < 2] or [rate <= 0]. *)
