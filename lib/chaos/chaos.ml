open Terradir_util
open Terradir_sim
open Terradir
open Terradir_workload
module Obs = Terradir_obs.Obs
module Event = Terradir_obs.Event
module Hist = Terradir_obs.Hist

(* ---- timeline validation ----

   Everything checkable before the run is checked before the run, at any
   engine shard count: a campaign must fail identically whether it was
   about to run on 1 domain or 4 (a K-dependent failure would itself be a
   determinism bug). *)

let check_phases ~what phases =
  if phases = [] then invalid_arg (Printf.sprintf "Chaos.run: %s: empty phase list" what);
  List.iter
    (fun p ->
      if p.Stream.rate <= 0.0 then
        invalid_arg (Printf.sprintf "Chaos.run: %s: rate must be positive" what);
      if p.Stream.duration <= 0.0 then
        invalid_arg (Printf.sprintf "Chaos.run: %s: duration must be positive" what))
    phases

let check_ids ~what ~n ids =
  if ids = [] then invalid_arg (Printf.sprintf "Chaos.run: %s: empty server list" what);
  List.iter
    (fun sid ->
      if sid < 0 || sid >= n then
        invalid_arg (Printf.sprintf "Chaos.run: %s: server %d out of range [0, %d)" what sid n))
    ids

let validate_timeline cluster timeline =
  let n = Cluster.num_servers cluster in
  let config = cluster.Cluster.config in
  let tags = Hashtbl.create 8 in
  List.iter
    (fun (_, action) ->
      match action with
      | Action.Kill ids -> check_ids ~what:"Kill" ~n ids
      | Action.Revive ids -> check_ids ~what:"Revive" ~n ids
      | Action.Revive_killed -> ()
      | Action.Graceful_leave ids -> check_ids ~what:"Graceful_leave" ~n ids
      | Action.Kill_fraction { fraction; _ } ->
        if fraction < 0.0 || fraction >= 1.0 || Float.is_nan fraction then
          invalid_arg "Chaos.run: Kill_fraction: fraction must be in [0, 1)"
      | Action.Partition { tag; a; b; _ } ->
        check_ids ~what:"Partition side a" ~n a;
        check_ids ~what:"Partition side b" ~n b;
        List.iter
          (fun sid ->
            if List.mem sid b then
              invalid_arg
                (Printf.sprintf "Chaos.run: Partition %s: sides intersect at server %d" tag sid))
          a;
        Hashtbl.replace tags tag ()
      | Action.Heal tag ->
        if not (Hashtbl.mem tags tag) then
          invalid_arg
            (Printf.sprintf "Chaos.run: Heal %s: no earlier Partition installed that tag" tag)
      | Action.Heal_all -> ()
      | Action.Set_loss p ->
        if p < 0.0 || p > 1.0 || Float.is_nan p then
          invalid_arg "Chaos.run: Set_loss: probability must be in [0, 1]"
      | Action.Set_jitter j ->
        (* Determinism rule: the conservative engine's lookahead was fixed
           at cluster creation from Net.min_latency = network_delay -
           net_jitter.  A mid-run jitter above the configured ceiling
           would push the latency floor below the lookahead — undefined
           at K > 1 — so it is rejected at every K: campaigns that shake
           jitter must budget for the maximum in [config.net_jitter]. *)
        if j < 0.0 || Float.is_nan j then invalid_arg "Chaos.run: Set_jitter: must be >= 0";
        if j > config.Config.net_jitter then
          invalid_arg
            (Printf.sprintf
               "Chaos.run: Set_jitter %.6f exceeds config.net_jitter %.6f (the engine \
                lookahead budget fixed at cluster creation); raise net_jitter in the config \
                and open the timeline with a Set_jitter at the intended starting value"
               j config.Config.net_jitter)
      | Action.Flash_crowd { phases; _ } -> check_phases ~what:"Flash_crowd" phases
      | Action.Rate_shift f ->
        if (not (f > 0.0)) || not (Float.is_finite f) then
          invalid_arg "Chaos.run: Rate_shift: factor must be positive and finite")
    (Timeline.entries timeline)

(* ---- the runner ---- *)

type snapshot = {
  s_metrics : Metrics.t;
  s_alive : int;
}

let snap cluster = { s_metrics = Cluster.metrics cluster; s_alive = Cluster.alive_servers cluster }

let apply cluster ~killed ~partitions ~base_driver action =
  let net = cluster.Cluster.net in
  let config = cluster.Cluster.config in
  (match action with
  | Action.Kill ids ->
    List.iter
      (fun sid ->
        Cluster.kill cluster sid;
        Hashtbl.replace killed sid ())
      ids
  | Action.Revive ids ->
    List.iter
      (fun sid ->
        Cluster.revive cluster sid;
        Hashtbl.remove killed sid)
      ids
  | Action.Revive_killed ->
    (* Ascending id order, membership-tested — never Hashtbl iteration
       order, which is insertion-history dependent. *)
    for sid = 0 to Cluster.num_servers cluster - 1 do
      if Hashtbl.mem killed sid then begin
        Cluster.revive cluster sid;
        Hashtbl.remove killed sid
      end
    done
  | Action.Graceful_leave ids ->
    List.iter
      (fun sid ->
        Cluster.graceful_leave cluster sid;
        Hashtbl.replace killed sid ())
      ids
  | Action.Kill_fraction { fraction; salt } ->
    (* Private stream seeded from the salt: the pick depends on the set of
       currently-alive servers (deterministic at this event) and nothing
       else — not on the cluster rng's position, not on the shard count. *)
    let alive =
      Array.of_seq
        (Seq.filter
           (fun sid -> (Cluster.server cluster sid).Server.alive)
           (Seq.init (Cluster.num_servers cluster) Fun.id))
    in
    let count = Array.length alive in
    let victims = min (int_of_float (fraction *. float_of_int count)) (count - 1) in
    if victims > 0 then begin
      let rng = Splitmix.create (salt lxor 0xc4a05) in
      let perm = Splitmix.permutation rng count in
      let picked = Array.sub perm 0 victims in
      Array.sort Int.compare picked;
      Array.iter
        (fun ix ->
          Cluster.kill cluster alive.(ix);
          Hashtbl.replace killed alive.(ix) ())
        picked
    end
  | Action.Partition { tag; a; b; directed } ->
    let pid = Net.partition ~directed net ~a ~b in
    Hashtbl.replace partitions tag pid
  | Action.Heal tag -> (
    match Hashtbl.find_opt partitions tag with
    | Some pid ->
      Net.heal net pid;
      Hashtbl.remove partitions tag
    | None -> () (* healed twice: idempotent, like Net.heal itself *))
  | Action.Heal_all ->
    Net.heal_all net;
    Hashtbl.reset partitions
  | Action.Set_loss p -> Net.set_loss net p
  | Action.Set_jitter j ->
    let base = config.Config.network_delay in
    Net.set_latency net (if j <= 0.0 then Net.Constant base else Net.Uniform { base; jitter = j })
  | Action.Flash_crowd { phases; seed } ->
    ignore (Scenario.start cluster ~phases ~seed : Scenario.driver)
  | Action.Rate_shift f -> Scenario.set_rate_factor base_driver f);
  let obs = cluster.Cluster.obs in
  if Obs.counters_on obs then
    (* lint: obs-in-hot-path rare (a handful per campaign), solo driver event, counters level *)
    Obs.record obs ~server:0
      (Event.Chaos_action { action = Action.kind action; detail = Action.detail action })

let run ?(drain = 2.0) ?(window = 1.0) ?(slo = Report.default_slo) ?(scenario = "custom")
    ?(seed = 0) ?(fetch_probability = 0.0) cluster ~workload ~workload_seed ~timeline () =
  if window <= 0.0 || Float.is_nan window then
    invalid_arg "Chaos.run: window must be positive";
  if drain < 0.0 || Float.is_nan drain then invalid_arg "Chaos.run: drain must be >= 0";
  if slo.Report.availability_drop < 0.0 || slo.Report.p99_factor < 1.0 then
    invalid_arg "Chaos.run: slo band must have availability_drop >= 0 and p99_factor >= 1";
  validate_timeline cluster timeline;
  let engine = cluster.Cluster.engine in
  let start_t = Engine.now engine in
  let base_driver = Scenario.start ~fetch_probability cluster ~phases:workload ~seed:workload_seed in
  (* The run must cover the base stream, every flash crowd, and the drain
     tail — then round up to a whole number of windows so the last
     snapshot lands exactly on the run's end event. *)
  let raw_end =
    List.fold_left
      (fun acc (at, action) ->
        match action with
        | Action.Flash_crowd { phases; _ } ->
          Float.max acc (start_t +. at +. Stream.total_duration phases)
        | _ -> acc)
      (Scenario.stream_end base_driver)
      (Timeline.entries timeline)
    +. drain
  in
  let nwin = max 1 (int_of_float (Float.ceil ((raw_end -. start_t) /. window))) in
  let end_t = start_t +. (float_of_int nwin *. window) in
  (* Fault bookkeeping lives in driver-event closures: driver events run
     solo, so plain Hashtbls are single-threaded here at any K. *)
  let killed = Hashtbl.create 16 in
  let partitions = Hashtbl.create 8 in
  let fired = ref [] in
  List.iter
    (fun (at, action) ->
      Engine.schedule_at engine (start_t +. at) (fun () ->
          apply cluster ~killed ~partitions ~base_driver action;
          fired :=
            {
              Report.e_time = start_t +. at;
              e_kind = Action.kind action;
              e_detail = Action.detail action;
              e_recovery = Action.is_recovery action;
            }
            :: !fired))
    (Timeline.entries timeline);
  let snaps = Array.make (nwin + 1) None in
  snaps.(0) <- Some (snap cluster);
  for k = 1 to nwin do
    (* Window closes are pure observation (Cluster.metrics builds a fresh
       merged struct); they run in the solo sync context so a K-domain
       engine quiesces before the cluster-wide read. *)
    Engine.schedule_at ~owner:Engine.sync_ctx engine
      (start_t +. (float_of_int k *. window))
      (fun () -> snaps.(k) <- Some (snap cluster))
  done;
  Cluster.run_until cluster end_t;
  let snap_at k =
    match snaps.(k) with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "Chaos.run: window %d snapshot never ran" k)
  in
  let m0 = (snap_at 0).s_metrics in
  let diff_win k =
    let a = (snap_at k).s_metrics and bs = snap_at (k + 1) in
    let b = bs.s_metrics in
    let issued = b.Metrics.injected - a.Metrics.injected in
    let resolved = b.Metrics.resolved - a.Metrics.resolved in
    let dropped = Metrics.dropped_total b - Metrics.dropped_total a in
    let availability =
      if issued <= 0 then 1.0
      else Float.min 1.0 (float_of_int resolved /. float_of_int issued)
    in
    let p99 =
      if resolved <= 0 then 0.0
      else
        Hist.percentile (Hist.diff b.Metrics.latency_hist ~since:a.Metrics.latency_hist) 0.99
    in
    {
      Report.w_start = start_t +. (float_of_int k *. window);
      w_end = start_t +. (float_of_int (k + 1) *. window);
      issued;
      resolved;
      dropped;
      availability;
      p99_latency = p99;
      replicas_created = b.Metrics.replicas_created - a.Metrics.replicas_created;
      net_lost = b.Metrics.net_lost - a.Metrics.net_lost;
      net_blocked = b.Metrics.net_blocked - a.Metrics.net_blocked;
      alive = bs.s_alive;
    }
  in
  let windows = List.init nwin diff_win in
  let baseline =
    match Timeline.first_time timeline with
    | None -> None
    | Some first ->
      let b_windows = min nwin (int_of_float (Float.floor (first /. window))) in
      if b_windows <= 0 then None
      else begin
        let mb = (snap_at b_windows).s_metrics in
        let issued = mb.Metrics.injected - m0.Metrics.injected in
        let resolved = mb.Metrics.resolved - m0.Metrics.resolved in
        let availability =
          if issued <= 0 then 1.0
          else Float.min 1.0 (float_of_int resolved /. float_of_int issued)
        in
        let p99 =
          if resolved <= 0 then 0.0
          else
            Hist.percentile (Hist.diff mb.Metrics.latency_hist ~since:m0.Metrics.latency_hist) 0.99
        in
        Some { Report.b_windows; b_availability = availability; b_p99 = p99 }
      end
  in
  let events = List.rev !fired in
  let recoveries =
    List.filter_map
      (fun e ->
        if not e.Report.e_recovery then None
        else
          let reconverged =
            match baseline with
            | None -> None
            | Some base ->
              List.find_map
                (fun w ->
                  if
                    w.Report.w_start >= e.Report.e_time
                    && w.Report.issued > 0
                    && w.Report.availability >= base.Report.b_availability -. slo.Report.availability_drop
                    && (base.Report.b_p99 <= 0.0
                       || w.Report.p99_latency <= slo.Report.p99_factor *. base.Report.b_p99)
                  then Some w.Report.w_end
                  else None)
                windows
          in
          Some { Report.r_time = e.Report.e_time; r_kind = e.Report.e_kind; r_reconverged = reconverged })
      events
  in
  let mf = (snap_at nwin).s_metrics in
  let injected = mf.Metrics.injected - m0.Metrics.injected in
  let resolved_total = mf.Metrics.resolved - m0.Metrics.resolved in
  let dropped_total = Metrics.dropped_total mf - Metrics.dropped_total m0 in
  {
    Report.scenario;
    seed;
    workload_seed;
    engine_domains = Engine.domains engine;
    servers = Cluster.num_servers cluster;
    window_s = window;
    duration_s = end_t -. start_t;
    slo;
    baseline;
    windows;
    events;
    recoveries;
    totals =
      {
        Report.injected;
        resolved_total;
        dropped_total;
        unresolved = injected - resolved_total - dropped_total;
        replicas_total = mf.Metrics.replicas_created - m0.Metrics.replicas_created;
        net_lost_total = mf.Metrics.net_lost - m0.Metrics.net_lost;
        net_blocked_total = mf.Metrics.net_blocked - m0.Metrics.net_blocked;
      };
  }
