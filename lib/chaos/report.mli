(** The resilience report: what a chaos campaign measured.

    Pure data plus renderers — building one is {!Chaos.run}'s job.  The
    JSON form is schema'd ("terradir-resilience-report", version 1) and
    validated by [tools/report_check]; all floats print at fixed %.6f
    precision so a report is byte-identical across runs with the same
    seed and across engine shard counts (modulo the [engine_domains]
    metadata field itself). *)

type window = {
  w_start : float;
  w_end : float;
  issued : int;  (** queries injected during the window *)
  resolved : int;  (** resolutions completing during the window *)
  dropped : int;  (** drops (all reasons) during the window *)
  availability : float;
      (** resolved/issued clamped to [0, 1]; 1.0 for an idle window
          (nothing asked, nothing failed) *)
  p99_latency : float;  (** p99 of resolutions completing this window; 0 if none *)
  replicas_created : int;
  net_lost : int;
  net_blocked : int;
  alive : int;  (** alive servers at window end *)
}

type event = {
  e_time : float;  (** absolute simulation time the action fired *)
  e_kind : string;
  e_detail : string;
  e_recovery : bool;
}

type recovery = {
  r_time : float;
  r_kind : string;
  r_reconverged : float option;
      (** end time of the first window at/after [r_time] back inside the
          SLO band of the baseline; [None] if the run ended first (or no
          baseline was measurable) *)
}

type baseline = {
  b_windows : int;  (** windows wholly before the first timeline action *)
  b_availability : float;
  b_p99 : float;
}

type totals = {
  injected : int;
  resolved_total : int;
  dropped_total : int;
  unresolved : int;  (** injected - resolved - dropped: never answered *)
  replicas_total : int;
  net_lost_total : int;
  net_blocked_total : int;
}

(** The reconvergence band: a window counts as recovered when its
    availability is within [availability_drop] of the baseline's and its
    p99 latency within [p99_factor] times the baseline's. *)
type slo = {
  availability_drop : float;
  p99_factor : float;
}

val default_slo : slo
(** availability within 0.05, p99 within 2x. *)

type t = {
  scenario : string;
  seed : int;
  workload_seed : int;
  engine_domains : int;
  servers : int;
  window_s : float;
  duration_s : float;
  slo : slo;
  baseline : baseline option;
  windows : window list;
  events : event list;
  recoveries : recovery list;
  totals : totals;
}

val to_json : t -> string
(** The schema'd report document (see [tools/report_check] for the
    contract). *)

val windows_csv : t -> string
(** The per-window trajectory as CSV (header + one row per window) — the
    plottable availability/p99 time series. *)

val min_fault_availability : t -> float
(** Lowest windowed availability at or after the first fault (over the
    whole run when there is no baseline). *)

val mean_time_to_reconvergence : t -> float option
(** Mean over recoveries that did reconverge; [None] when none did (or
    the timeline had no recovery actions). *)

val summary_rows : t -> (string * string) list
(** Human-readable key/value summary for terminal reports. *)
