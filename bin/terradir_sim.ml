(* terradir_sim: command-line driver for the TerraDir reproduction.

   Subcommands:
     list            enumerate the paper's experiments
     run <id>        regenerate one table/figure (at a chosen scale)
     all             regenerate everything
     custom          free-form simulation with explicit knobs
     chaos           run a canned chaos campaign, emit its resilience report
     trace           show the route a lookup would take right now *)

open Cmdliner
open Terradir
open Terradir_util
open Terradir_workload
module Experiments = Terradir_experiments
module Obs = Terradir_obs.Obs
module Obs_export = Terradir_obs.Export

let scale_arg =
  let doc =
    "Scale relative to the paper's 4096-server testbed (0 < scale <= 1). Default 1/16."
  in
  Arg.(value & opt float (1.0 /. 16.0) & info [ "scale" ] ~docv:"S" ~doc)

let seed_arg =
  let doc = "Deterministic simulation seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Domains to fan experiment cells over (default: TERRADIR_JOBS, else all \
     cores minus one).  Results are bit-identical for any value; 1 runs \
     sequentially in-process."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let apply_jobs jobs = Experiments.Runner.set_jobs jobs

let engine_domains_arg =
  let doc =
    "Domains INSIDE each simulation's event engine (default: \
     TERRADIR_ENGINE_DOMAINS, else 1).  Orthogonal to --jobs, which fans \
     independent runs out.  Every metric, CSV and trace is byte-identical \
     for any value; only wall-clock changes."
  in
  Arg.(value & opt (some int) None & info [ "engine-domains" ] ~docv:"K" ~doc)

let apply_engine_domains d = Experiments.Runner.set_engine_domains d

let audit_arg =
  let doc =
    "Run the invariant auditor alongside the simulation (see also \
     TERRADIR_AUDIT).  Violations are collected and reported at the end \
     instead of aborting the run."
  in
  Arg.(value & flag & info [ "audit" ] ~doc)

(* Must run before any cluster is created and before the runner spawns
   worker domains: [force_enable]/[set_mode] are plain refs that the
   workers read but never write. *)
let apply_audit audit =
  if audit then begin
    Invariant.force_enable ();
    Invariant.set_mode `Collect
  end

let report_audit audit =
  if audit then
    match Invariant.collected_reports () with
    | [] -> prerr_endline "audit: clean (no invariant violations)"
    | reports ->
      List.iter prerr_endline reports;
      Printf.eprintf "audit: %d run(s) reported violations\n" (List.length reports);
      exit 3

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun e -> Printf.printf "%-8s %s\n" e.Experiments.Registry.id e.Experiments.Registry.title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the paper's experiments") Term.(const run $ const ())

(* ---- run ---- *)

let run_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id (see list)")
  in
  let csv_arg =
    let doc = "Write plot-ready CSV files to $(docv) instead of printing tables." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)
  in
  let duration_arg =
    let doc = "Simulated seconds per run (experiment default if absent)." in
    Arg.(value & opt (some float) None & info [ "duration" ] ~docv:"SEC" ~doc)
  in
  let run id scale seed csv duration jobs engine_domains audit =
    apply_jobs jobs;
    apply_engine_domains engine_domains;
    apply_audit audit;
    (match (Experiments.Registry.find id, csv) with
    | None, _ ->
      Printf.eprintf "unknown experiment %S; try: %s\n" id
        (String.concat " " (Experiments.Registry.ids ()));
      exit 1
    | Some _, Some dir when List.mem id Experiments.Csv_export.exportable ->
      List.iter print_endline (Experiments.Csv_export.export ~id ~scale ~seed ~dir ())
    | Some _, Some _ ->
      Printf.eprintf "%s has no CSV form (try: %s)\n" id
        (String.concat " " Experiments.Csv_export.exportable);
      exit 1
    | Some e, None -> e.Experiments.Registry.run ~scale ?duration ~seed ());
    report_audit audit
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Regenerate one table/figure")
    Term.(
      const run $ id_arg $ scale_arg $ seed_arg $ csv_arg $ duration_arg $ jobs_arg
      $ engine_domains_arg $ audit_arg)

(* ---- all ---- *)

let all_cmd =
  let run scale seed jobs engine_domains audit =
    apply_jobs jobs;
    apply_engine_domains engine_domains;
    apply_audit audit;
    List.iter
      (fun e ->
        Printf.printf "\n===== %s — %s =====\n" e.Experiments.Registry.id
          e.Experiments.Registry.title;
        e.Experiments.Registry.run ~scale ~seed ())
      Experiments.Registry.all;
    report_audit audit
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every table and figure")
    Term.(const run $ scale_arg $ seed_arg $ jobs_arg $ engine_domains_arg $ audit_arg)

(* ---- custom ---- *)

let custom_cmd =
  let servers =
    Arg.(value & opt int 256 & info [ "servers" ] ~docv:"N" ~doc:"Number of servers")
  in
  let namespace =
    let doc = "Namespace: 'balanced:LEVELS' or 'coda:NODES'." in
    Arg.(value & opt string "balanced:11" & info [ "namespace" ] ~docv:"NS" ~doc)
  in
  let rate = Arg.(value & opt float 1000.0 & info [ "rate" ] ~docv:"Q/S" ~doc:"Global query rate") in
  let duration = Arg.(value & opt float 60.0 & info [ "duration" ] ~docv:"SEC" ~doc:"Run length") in
  let alpha =
    Arg.(value & opt (some float) None & info [ "zipf" ] ~docv:"ALPHA" ~doc:"Zipf order (uniform if absent)")
  in
  let shifts =
    Arg.(value & opt int 0 & info [ "shifts" ] ~docv:"K" ~doc:"Instant popularity re-rankings")
  in
  let system =
    let doc = "Feature set: B (base), BC (caching), BCR (full)." in
    Arg.(value & opt string "BCR" & info [ "system" ] ~docv:"SYS" ~doc)
  in
  let obs_level =
    let doc = "Observability level: off, counters, spans or full (see DESIGN §11)." in
    Arg.(value & opt string "off" & info [ "obs-level" ] ~docv:"LEVEL" ~doc)
  in
  let probe_every =
    let doc = "Per-server probe cadence, in executed engine events." in
    Arg.(value & opt int 2000 & info [ "probe-every" ] ~docv:"N" ~doc)
  in
  let trace =
    let doc =
      "Write a Chrome trace-event JSON file to $(docv) (open in Perfetto or \
       chrome://tracing).  Implies at least --obs-level spans."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let events_csv =
    let doc = "Write the raw flight-recorder event log as CSV to $(docv).  Implies at least --obs-level counters." in
    Arg.(value & opt (some string) None & info [ "events-csv" ] ~docv:"FILE" ~doc)
  in
  let probes_csv =
    let doc = "Write the per-server probe time series as CSV to $(docv).  Implies at least --obs-level counters." in
    Arg.(value & opt (some string) None & info [ "probes-csv" ] ~docv:"FILE" ~doc)
  in
  let run servers namespace rate duration alpha shifts system seed engine_domains audit obs_level
      probe_every trace events_csv probes_csv =
    apply_engine_domains engine_domains;
    apply_audit audit;
    let obs =
      let requested =
        match Obs.level_of_string obs_level with
        | Some l -> l
        | None -> failwith "obs-level must be off, counters, spans or full"
      in
      let rank = function Obs.Off -> 0 | Obs.Counters -> 1 | Obs.Spans -> 2 | Obs.Full -> 3 in
      (* Exporters need data: a trace needs spans, the CSVs need counters.
         Asking for a file quietly raises the level to what it requires. *)
      let need =
        if trace <> None then Obs.Spans
        else if events_csv <> None || probes_csv <> None then Obs.Counters
        else Obs.Off
      in
      let level = if rank requested >= rank need then requested else need in
      if level = Obs.Off then Obs.null else Obs.create ~probe_every ~level ()
    in
    let tree =
      match String.split_on_char ':' namespace with
      | [ "balanced"; levels ] -> Terradir_namespace.Build.balanced ~arity:2 ~levels:(int_of_string levels)
      | [ "coda"; nodes ] -> Terradir_namespace.Build.coda_like ~seed ~target:(int_of_string nodes) ()
      | _ -> failwith "namespace must be balanced:LEVELS or coda:NODES"
    in
    let features =
      match String.uppercase_ascii system with
      | "B" -> Config.base
      | "BC" -> Config.bc
      | "BCR" -> Config.bcr
      | "BCR-NODIGEST" -> { Config.bcr with Config.digests = false }
      | _ -> failwith "system must be B, BC, BCR or BCR-nodigest"
    in
    let config =
      Experiments.Runner.with_engine_config
        { Config.default with Config.num_servers = servers; features; seed }
    in
    let cluster = Cluster.create ~obs ~config ~tree () in
    let phases =
      match alpha with
      | None -> Stream.unif ~rate ~duration
      | Some alpha ->
        if shifts = 0 then
          [ { Stream.duration; rate; dist = Stream.Zipf { alpha; reshuffle = true } } ]
        else
          Stream.uzipf ~rate ~warmup:(duration /. 5.0) ~alpha
            ~shift_every:(duration *. 0.8 /. float_of_int shifts)
            ~shifts
    in
    Scenario.run cluster ~phases ~seed:(seed + 1);
    Printf.printf "namespace: %s\n" (Terradir_namespace.Build.describe tree);
    Tablefmt.print ~header:[ "metric"; "value" ]
      (List.map (fun (k, v) -> [ k; v ]) (Metrics.summary_rows (Cluster.metrics cluster)));
    Printf.printf "engine events executed: %d\n"
      (Terradir_sim.Engine.events_executed cluster.Cluster.engine);
    if Obs.counters_on obs then begin
      print_newline ();
      Tablefmt.print ~header:[ "observability"; "value" ]
        (List.map (fun (k, v) -> [ k; v ]) (Obs_export.summary_rows obs))
    end;
    let write file content =
      Out_channel.with_open_text file (fun oc -> Out_channel.output_string oc content);
      Printf.printf "wrote %s\n" file
    in
    Option.iter (fun file -> write file (Obs_export.chrome_trace (Obs.recorder obs))) trace;
    Option.iter (fun file -> write file (Obs_export.events_csv (Obs.recorder obs))) events_csv;
    Option.iter (fun file -> write file (Obs_export.probes_csv (Obs.probes obs))) probes_csv;
    report_audit audit
  in
  Cmd.v
    (Cmd.info "custom" ~doc:"Run a custom simulation")
    Term.(
      const run $ servers $ namespace $ rate $ duration $ alpha $ shifts $ system $ seed_arg
      $ engine_domains_arg $ audit_arg $ obs_level $ probe_every $ trace $ events_csv
      $ probes_csv)

(* ---- chaos ---- *)

let chaos_cmd =
  let scenario =
    let doc = "Canned campaign to run (see --list)." in
    Arg.(value & opt string "partition-flash-crowd" & info [ "scenario" ] ~docv:"NAME" ~doc)
  in
  let list_flag =
    Arg.(value & flag & info [ "list" ] ~doc:"List the canned campaigns and exit.")
  in
  let servers =
    Arg.(value & opt int 128 & info [ "servers" ] ~docv:"N" ~doc:"Number of servers")
  in
  let rate =
    Arg.(value & opt float 500.0 & info [ "rate" ] ~docv:"Q/S" ~doc:"Base query rate")
  in
  let seeds =
    let doc =
      "Seed sweep width: run the campaign at seeds SEED .. SEED+N-1 (fanned over --jobs \
       domains) and report each.  Output files gain a .seedS infix when N > 1."
    in
    Arg.(value & opt int 1 & info [ "seeds" ] ~docv:"N" ~doc)
  in
  let out =
    let doc = "Write the resilience report JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let csv =
    let doc = "Write the per-window trajectory CSV to $(docv)." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)
  in
  let run scenario list_flag servers rate seed seeds jobs engine_domains audit out csv =
    if list_flag then
      List.iter
        (fun c -> Printf.printf "%-24s %s\n" c.Terradir_chaos.Campaigns.name c.Terradir_chaos.Campaigns.title)
        Terradir_chaos.Campaigns.all
    else begin
      apply_jobs jobs;
      apply_engine_domains engine_domains;
      apply_audit audit;
      if seeds < 1 then failwith "--seeds must be >= 1";
      match Terradir_chaos.Campaigns.find scenario with
      | None ->
        Printf.eprintf "unknown campaign %S; try: %s\n" scenario
          (String.concat " "
             (List.map (fun c -> c.Terradir_chaos.Campaigns.name) Terradir_chaos.Campaigns.all));
        exit 1
      | Some campaign ->
        let config = Experiments.Runner.with_engine_config Config.default in
        let reports =
          Experiments.Runner.map
            (fun s -> Terradir_chaos.Campaigns.run_campaign ~config campaign ~servers ~rate ~seed:s)
            (List.init seeds (fun i -> seed + i))
        in
        let with_suffix s file =
          if seeds = 1 then file
          else
            let ext = Filename.extension file in
            Printf.sprintf "%s.seed%d%s" (Filename.remove_extension file) s ext
        in
        let write file content =
          Out_channel.with_open_text file (fun oc -> Out_channel.output_string oc content);
          Printf.printf "wrote %s\n" file
        in
        List.iteri
          (fun i report ->
            let s = seed + i in
            if seeds > 1 then Printf.printf "\n===== seed %d =====\n" s;
            Tablefmt.print ~header:[ "resilience"; "value" ]
              (List.map (fun (k, v) -> [ k; v ]) (Terradir_chaos.Report.summary_rows report));
            Option.iter
              (fun file -> write (with_suffix s file) (Terradir_chaos.Report.to_json report))
              out;
            Option.iter
              (fun file -> write (with_suffix s file) (Terradir_chaos.Report.windows_csv report))
              csv)
          reports;
        report_audit audit
    end
  in
  Cmd.v
    (Cmd.info "chaos" ~doc:"Run a canned chaos campaign and emit its resilience report")
    Term.(
      const run $ scenario $ list_flag $ servers $ rate $ seed_arg $ seeds $ jobs_arg
      $ engine_domains_arg $ audit_arg $ out $ csv)

(* ---- trace ---- *)

let trace_cmd =
  let namespace =
    Arg.(value & opt string "balanced:6" & info [ "namespace" ] ~docv:"NS" ~doc:"balanced:LEVELS or coda:NODES")
  in
  let servers = Arg.(value & opt int 16 & info [ "servers" ] ~docv:"N" ~doc:"Number of servers") in
  let warm =
    Arg.(value & opt float 0.0 & info [ "warm" ] ~docv:"SEC" ~doc:"Warm with Zipf traffic for this long first")
  in
  let from_arg = Arg.(value & opt int 0 & info [ "from" ] ~docv:"SERVER" ~doc:"Source server") in
  let to_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH" ~doc:"Destination name, e.g. /0/1/0")
  in
  let run namespace servers warm from_ to_ seed =
    let tree =
      match String.split_on_char ':' namespace with
      | [ "balanced"; levels ] ->
        Terradir_namespace.Build.balanced ~arity:2 ~levels:(int_of_string levels)
      | [ "coda"; nodes ] -> Terradir_namespace.Build.coda_like ~seed ~target:(int_of_string nodes) ()
      | _ -> failwith "namespace must be balanced:LEVELS or coda:NODES"
    in
    let config = { Config.default with Config.num_servers = servers; seed } in
    let cluster = Cluster.create ~config ~tree () in
    if warm > 0.0 then
      Scenario.run cluster
        ~phases:
          [
            {
              Stream.duration = warm;
              rate = 25.0 *. float_of_int servers;
              dist = Stream.Zipf { alpha = 1.1; reshuffle = true };
            };
          ]
        ~seed:(seed + 1);
    match Terradir_namespace.Tree.find_string tree to_ with
    | None ->
      Printf.eprintf "no such node: %s\n" to_;
      exit 1
    | Some dst -> print_string (Trace.to_string cluster (Trace.route cluster ~src:from_ ~dst))
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Trace the route a lookup would take right now (cf. paper Figs. 1-2)")
    Term.(const run $ namespace $ servers $ warm $ from_arg $ to_arg $ seed_arg)

let () =
  let doc = "TerraDir hierarchical routing with soft-state replicas (IPDPS 2004) - simulator" in
  let info = Cmd.info "terradir_sim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; all_cmd; custom_cmd; chaos_cmd; trace_cmd ]))
