lib/sim/dist.ml: Array Splitmix Terradir_util
