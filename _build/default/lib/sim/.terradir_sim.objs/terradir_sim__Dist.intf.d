lib/sim/dist.mli: Terradir_util
