lib/sim/engine.mli:
