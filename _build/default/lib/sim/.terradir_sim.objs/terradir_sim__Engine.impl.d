lib/sim/engine.ml: Float Pqueue Terradir_util
