lib/bloom/bloom.ml: Bitset Int64 List Terradir_util
