lib/bloom/bloom.mli:
