open Terradir_namespace
open Types

type hop = Via_neighbor_or_cache | Via_digest

type step = {
  at_server : server_id;
  hosted_here : node_id option;
  via_node : node_id;
  to_server : server_id;
  hop : hop;
  distance_left : int;
}

type t = {
  src : server_id;
  dst : node_id;
  steps : step list;
  outcome : [ `Resolved of server_id | `Dead_end of server_id | `Diverged ];
}

let route cluster ~src ~dst =
  let tree = cluster.Cluster.tree in
  if src < 0 || src >= Array.length cluster.Cluster.servers then
    invalid_arg "Trace.route: bad source server";
  if dst < 0 || dst >= Tree.size tree then invalid_arg "Trace.route: bad destination";
  let budget = (4 * Tree.max_depth tree) + 16 in
  (* Same monotone shortcut bound a live query would carry. *)
  let best_dist = ref max_int in
  let rec walk sid steps hops =
    let s = Cluster.server cluster sid in
    let hosted_here = if Server.hosts s dst then Some dst else None in
    if hops > budget then { src; dst; steps = List.rev steps; outcome = `Diverged }
    else
      match Routing.decide ~shortcut_bound:!best_dist s ~dst with
      | Routing.Resolve -> { src; dst; steps = List.rev steps; outcome = `Resolved sid }
      | Routing.Dead_end -> { src; dst; steps = List.rev steps; outcome = `Dead_end sid }
      | Routing.Forward { via_node; to_server; shortcut } ->
        best_dist := min !best_dist (Tree.distance tree via_node dst);
        let step =
          {
            at_server = sid;
            hosted_here;
            via_node;
            to_server;
            hop = (if shortcut then Via_digest else Via_neighbor_or_cache);
            distance_left = Tree.distance tree via_node dst;
          }
        in
        walk to_server (step :: steps) (hops + 1)
  in
  walk src [] 0

let pp fmt cluster t =
  let tree = cluster.Cluster.tree in
  let name v = Tree.name_string tree v in
  Format.fprintf fmt "route: server %d -> %s (node %d)@." t.src (name t.dst) t.dst;
  List.iteri
    (fun i step ->
      Format.fprintf fmt "  step %c: server %-4d via %-30s -> server %-4d (%s, %d to go)@."
        (Char.chr (Char.code 'A' + (i mod 26)))
        step.at_server (name step.via_node) step.to_server
        (match step.hop with
        | Via_digest -> "digest shortcut"
        | Via_neighbor_or_cache -> "neighbor/cache")
        step.distance_left)
    t.steps;
  match t.outcome with
  | `Resolved sid -> Format.fprintf fmt "  resolved at server %d (%d forwarding steps)@." sid (List.length t.steps)
  | `Dead_end sid -> Format.fprintf fmt "  DEAD END at server %d@." sid
  | `Diverged -> Format.fprintf fmt "  DIVERGED (stale state defeated the hop budget)@."

let to_string cluster t = Format.asprintf "%a" (fun fmt -> pp fmt cluster) t
