open Terradir_namespace
open Types

type node_result = {
  sr_node : node_id;
  sr_map : Node_map.t;
  sr_meta_version : int;
  sr_hops : int;
}

type result = {
  root : node_id;
  matched : node_result list;
  lookups_issued : int;
  lookups_dropped : int;
  latency : float;
}

(* Breadth-first subtree enumeration, capped. *)
let enumerate tree root ~max_nodes =
  let acc = ref [] and count = ref 0 in
  let queue = Queue.create () in
  Queue.add root queue;
  while (not (Queue.is_empty queue)) && !count < max_nodes do
    let v = Queue.pop queue in
    acc := v :: !acc;
    incr count;
    Array.iter (fun c -> Queue.add c queue) (Tree.children tree v)
  done;
  List.rev !acc

let subtree ?(max_nodes = 256) ?(filter = fun _ -> true) ?(pacing = 0.025) cluster ~src ~root
    ~on_done =
  if max_nodes < 1 then invalid_arg "Search.subtree: max_nodes must be >= 1";
  let tree = cluster.Cluster.tree in
  if root < 0 || root >= Tree.size tree then invalid_arg "Search.subtree: bad root";
  let engine = cluster.Cluster.engine in
  let targets = enumerate tree root ~max_nodes in
  let started = Terradir_sim.Engine.now engine in
  let pending = ref (List.length targets) in
  let matched = ref [] and dropped = ref 0 in
  let complete node outcome =
    (match outcome with
    | Resolved r ->
      if filter node then
        matched :=
          { sr_node = node; sr_map = r.map; sr_meta_version = r.meta_version; sr_hops = r.hops }
          :: !matched
    | Dropped _ -> incr dropped);
    decr pending;
    if !pending = 0 then
      on_done
        {
          root;
          matched = List.rev !matched;
          lookups_issued = List.length targets;
          lookups_dropped = !dropped;
          latency = Terradir_sim.Engine.now engine -. started;
        }
  in
  (* Paced injection: a real client streams its decomposed lookups rather
     than blasting its own queue. *)
  List.iteri
    (fun i node ->
      Terradir_sim.Engine.schedule engine ~delay:(float_of_int i *. pacing) (fun () ->
          Cluster.inject cluster ~src ~dst:node ~on_complete:(complete node)))
    targets

let glob ?max_nodes ?pacing cluster ~src ~pattern ~on_done =
  let deep, prefix =
    match (Filename.check_suffix pattern "/**", Filename.check_suffix pattern "/*") with
    | true, _ -> (true, Filename.chop_suffix pattern "/**")
    | false, true -> (false, Filename.chop_suffix pattern "/*")
    | false, false -> invalid_arg "Search.glob: pattern must end in /* or /**"
  in
  let tree = cluster.Cluster.tree in
  match Tree.find_string tree (if prefix = "" then "/" else prefix) with
  | None -> invalid_arg "Search.glob: prefix names no node"
  | Some root ->
    let filter =
      if deep then fun _ -> true
      else fun node -> node = root || Tree.parent tree node = Some root
    in
    let max_nodes =
      match max_nodes with
      | Some m -> Some m
      | None when not deep ->
        (* one level: the enumeration itself can stay shallow *)
        Some (1 + Tree.num_children tree root)
      | None -> None
    in
    subtree ?max_nodes ~filter ?pacing cluster ~src ~root ~on_done
