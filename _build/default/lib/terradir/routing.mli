(** The minimizing routing procedure (§2.2, §3.6.1).

    A server routing a query for [dst] picks the closest node to [dst] it
    knows about — among hosted nodes, tree-neighbors of hosted nodes, and
    cached nodes — and forwards to one of the servers in that node's map.
    With inverse-mapping digests it may do better: a digest hit for a name
    even closer to [dst] (necessarily [dst] itself or one of its ancestors —
    see the lemma below) redirects the query to that server directly.

    {b Shortcut lemma.}  The paper (§3.6.1) tests every name inferable by
    prefix extraction from known names.  Testing only [dst] and its
    ancestors is lossless: let [k] be any known node and [a] an ancestor of
    [k].  If [a] is not an ancestor of [dst], then [a] lies strictly below
    [lca(k,dst)] on [k]'s branch, so [distance(a,dst) > distance(lca(k,dst),
    dst)] — and [lca(k,dst)] {e is} an ancestor of [dst].  Hence the best
    digest-testable name is always found on [dst]'s own ancestor chain. *)

open Types

type decision =
  | Resolve  (** the destination is hosted here *)
  | Forward of { via_node : node_id; to_server : server_id; shortcut : bool }
      (** forward on behalf of [via_node] to [to_server]; [shortcut] marks a
          digest-discovered hop *)
  | Dead_end  (** no usable forwarding candidate *)

val decide :
  ?shortcut_bound:int ->
  ?oracle:(node_id -> Node_map.t) ->
  Server.t ->
  dst:node_id ->
  decision
(** One routing step at this server.  Reads (and, for the chosen cache
    entry, touches) server state; never mutates maps or sends messages.
    [shortcut_bound] (default unlimited) caps the namespace distance a
    digest shortcut may target — callers pass the query's best distance so
    far, making shortcut chains strictly decreasing (two servers with
    false-positive digests for each other's region would otherwise bounce
    a query until its hop budget dies).

    [oracle], when given, substitutes ground-truth host maps for the
    server's own (possibly stale) maps when choosing the forwarding
    server, and disables digest shortcuts — §4.4's "routing with perfectly
    accurate information, as if given by an oracle" reference point.  The
    {e candidate} set is still the server's local knowledge: the oracle
    perfects accuracy, not awareness. *)

val closest_known_distance : Server.t -> dst:node_id -> int option
(** Distance of the best non-digest candidate (diagnostics/tests); [None]
    when the server knows nothing relevant. *)
