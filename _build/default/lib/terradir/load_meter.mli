(** Normalized server load (§3.1).

    The paper's load metric: the fraction of a fixed window W that the server
    spent busy, a value in [0, 1], locally defined and linearly comparable.
    The value reported to peers and used in replication decisions is the
    {e last completed} window's fraction — with one exception, the
    anti-thrashing adjustment: after a replication session both parties
    substitute the post-shed target load until fresh measurement overwrites
    it (§3.3 step 4). *)

type t

val create : window:float -> t
(** @raise Invalid_argument if [window <= 0]. *)

val window : t -> float

val begin_busy : t -> float -> unit
(** The server starts serving at the given time.
    @raise Invalid_argument if already busy or time regresses. *)

val end_busy : t -> float -> unit
(** @raise Invalid_argument if not busy. *)

val is_busy : t -> bool

val load : t -> float -> float
(** [load t now]: the reported load — the adjustment if one is pending,
    otherwise the last completed window's busy fraction.  Rolls windows
    forward as a side effect. *)

val raw_load : t -> float -> float
(** Measurement only, ignoring any pending adjustment. *)

val sustained_load : t -> float -> float
(** The minimum of the last two completed windows (0 before two windows
    exist) — a de-noised trigger signal: with ~25 exponential services per
    window, single-window loads fluctuate enough to fire replication
    sessions spuriously; requiring two consecutive high windows does not.
    Respects a pending adjustment the same way {!load} does. *)

val set_adjustment : t -> float -> unit
(** Install the hysteresis value; cleared automatically when the next
    window completes.  Clamped to [0, 1]. *)

val busy_fraction_so_far : t -> float -> float
(** Busy fraction of the {e current, incomplete} window (diagnostics). *)

val total_busy_time : t -> float -> float
(** Cumulative busy seconds up to [now] (utilization accounting). *)
