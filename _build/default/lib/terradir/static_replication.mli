(** Static replication of the top namespace levels.

    The paper notes (§2.3) that hierarchical bottlenecks can be addressed by
    static replication [Silaghi et al. 2002], while hot-spots and failures
    need the adaptive scheme.  This module implements that baseline: at
    deployment time, replicate every node above a cutoff depth onto a fixed
    number of extra servers.  Used by the ablation benchmarks to compare
    static-only, adaptive-only, and combined configurations. *)

val apply : Cluster.t -> levels:int -> copies:int -> int
(** [apply cluster ~levels ~copies] replicates each node of depth < [levels]
    onto [copies] additional distinct servers (chosen at random, skipping
    servers already hosting the node).  Installs go through the normal
    replica machinery and therefore respect each server's replication
    factor; servers without budget are skipped.  Returns the number of
    replicas actually installed.  Run this before injecting load; pair it
    with a large [replica_idle_timeout] if the copies must persist through
    idle periods.
    @raise Invalid_argument on negative arguments. *)
