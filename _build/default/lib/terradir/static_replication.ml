open Terradir_util
open Terradir_namespace

let apply (cluster : Cluster.t) ~levels ~copies =
  if levels < 0 then invalid_arg "Static_replication.apply: negative levels";
  if copies < 0 then invalid_arg "Static_replication.apply: negative copies";
  let tree = cluster.Cluster.tree in
  let servers = cluster.Cluster.servers in
  let n_servers = Array.length servers in
  let rng = cluster.Cluster.rng in
  let installed = ref 0 in
  Tree.iter tree (fun node ->
      if Tree.depth tree node < levels then begin
        let owner = servers.(cluster.Cluster.owner_of.(node)) in
        match Server.make_replica_payload owner node ~now:0.0 with
        | None -> ()
        | Some payload ->
          (* Draw target servers until [copies] succeed or attempts run
             out (bounded: budget-less servers would loop forever). *)
          let placed = ref 0 and attempts = ref 0 in
          while !placed < copies && !attempts < 8 * copies do
            incr attempts;
            let target = servers.(Splitmix.int rng n_servers) in
            if (not (Server.hosts target node)) && Server.replica_budget target > 0 then begin
              match Server.install_replica target payload ~now:0.0 with
              | `Installed ->
                incr placed;
                incr installed;
                Server.record_new_replica owner node target.Server.id ~now:0.0
              | `Merged | `Rejected -> ()
            end
          done
      end);
  !installed
