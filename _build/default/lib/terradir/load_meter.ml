type t = {
  window : float;
  mutable window_start : float;
  mutable busy_in_window : float;
  mutable last_window_load : float;
  mutable prev_window_load : float;
  mutable adjustment : float option;
  mutable busy_since : float option;
  mutable total_busy : float;
  mutable last_event : float;
}

let create ~window =
  if window <= 0.0 then invalid_arg "Load_meter.create: window must be positive";
  {
    window;
    window_start = 0.0;
    busy_in_window = 0.0;
    last_window_load = 0.0;
    prev_window_load = 0.0;
    adjustment = None;
    busy_since = None;
    total_busy = 0.0;
    last_event = 0.0;
  }

let window t = t.window

(* Roll completed windows up to [now].  Busy intervals spanning a boundary
   are split at the boundary. *)
let advance t now =
  while now >= t.window_start +. t.window do
    let boundary = t.window_start +. t.window in
    (match t.busy_since with
    | Some s ->
      t.busy_in_window <- t.busy_in_window +. (boundary -. s);
      t.total_busy <- t.total_busy +. (boundary -. s);
      t.busy_since <- Some boundary
    | None -> ());
    t.prev_window_load <- t.last_window_load;
    t.last_window_load <- Float.min 1.0 (t.busy_in_window /. t.window);
    t.busy_in_window <- 0.0;
    t.window_start <- boundary;
    (* A completed measurement supersedes the hysteresis adjustment. *)
    t.adjustment <- None
  done

let check_time t now op =
  if now < t.last_event then invalid_arg ("Load_meter." ^ op ^ ": time regressed");
  t.last_event <- now

let begin_busy t now =
  check_time t now "begin_busy";
  advance t now;
  if t.busy_since <> None then invalid_arg "Load_meter.begin_busy: already busy";
  t.busy_since <- Some now

let end_busy t now =
  check_time t now "end_busy";
  advance t now;
  match t.busy_since with
  | None -> invalid_arg "Load_meter.end_busy: not busy"
  | Some s ->
    t.busy_in_window <- t.busy_in_window +. (now -. s);
    t.total_busy <- t.total_busy +. (now -. s);
    t.busy_since <- None

let is_busy t = t.busy_since <> None

let raw_load t now =
  advance t now;
  t.last_window_load

let load t now =
  advance t now;
  match t.adjustment with Some a -> a | None -> t.last_window_load

let sustained_load t now =
  advance t now;
  match t.adjustment with
  | Some a -> a
  | None -> Float.min t.last_window_load t.prev_window_load

let set_adjustment t v = t.adjustment <- Some (Float.max 0.0 (Float.min 1.0 v))

let busy_fraction_so_far t now =
  advance t now;
  let live = match t.busy_since with Some s -> now -. s | None -> 0.0 in
  let elapsed = now -. t.window_start in
  if elapsed <= 0.0 then 0.0 else Float.min 1.0 ((t.busy_in_window +. live) /. elapsed)

let total_busy_time t now =
  let live = match t.busy_since with Some s -> now -. s | None -> 0.0 in
  t.total_busy +. live
