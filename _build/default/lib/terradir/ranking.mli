(** Load-based node ranking (§3.2).

    Each server weights every node it hosts by the load incurred on its
    behalf: a counter incremented per query processed for the node, rescaled
    (halved) periodically so weights approximate {e recent} demand.  Ranking
    selects which nodes to replicate (highest weight) and which replicas to
    evict (lowest weight). *)

type t

val create : unit -> t

val touch : t -> int -> unit
(** Add one unit of demand to a node's weight. *)

val weight : t -> int -> float
(** 0 for never-touched nodes. *)

val seed : t -> int -> float -> unit
(** Initialize a node's weight (e.g. a freshly installed replica inherits a
    hint so it is not immediately evicted). *)

val decay : t -> unit
(** Halve all weights; entries decayed below 1/64 are dropped. *)

val remove : t -> int -> unit

val ranked_desc : t -> among:int list -> (int * float) list
(** The given nodes with weights, heaviest first (stable for equal weights:
    ascending node id). *)

val ranked_asc : t -> among:int list -> (int * float) list
(** Lightest first — eviction order. *)

val total_weight : t -> among:int list -> float
