(** Route tracing — the paper's Fig. 1 ("Route for query
    /university/private") and Fig. 2 (digest shortcut) walk-throughs,
    reproducible against live cluster state.

    A trace replays the forwarding decisions a query would take {e right
    now}, without queueing or service delays: each step names the server,
    the node it acts on behalf of, the decision, and the namespace distance
    still to cover.  Useful for debugging, demos, and the [trace] CLI
    subcommand. *)

open Types

type hop =
  | Via_neighbor_or_cache  (** conventional minimizing step (§2.2) *)
  | Via_digest  (** shortcut discovered in a remote digest (§3.6.1) *)

type step = {
  at_server : server_id;
  hosted_here : node_id option;  (** the target node, when this server hosts it *)
  via_node : node_id;  (** node chosen to route through *)
  to_server : server_id;
  hop : hop;
  distance_left : int;  (** namespace distance from [via_node] to dst *)
}

type t = {
  src : server_id;
  dst : node_id;
  steps : step list;
  outcome : [ `Resolved of server_id | `Dead_end of server_id | `Diverged ];
      (** [`Diverged]: exceeded the namespace diameter without resolving
          (possible only under stale state) *)
}

val route : Cluster.t -> src:server_id -> dst:node_id -> t
(** Trace from [src]'s viewpoint to [dst].  Read-mostly: the only state
    touched is cache recency (exactly as a real query would touch it). *)

val pp : Format.formatter -> Cluster.t -> t -> unit
(** Human-readable rendering with full node names, in the style of the
    paper's Fig. 1 step annotations. *)

val to_string : Cluster.t -> t -> string
