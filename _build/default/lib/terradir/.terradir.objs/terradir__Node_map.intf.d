lib/terradir/node_map.mli: Format Terradir_util
