lib/terradir/load_meter.ml: Float
