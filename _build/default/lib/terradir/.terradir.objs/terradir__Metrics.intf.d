lib/terradir/metrics.mli: Splitmix Stats Terradir_util Timeseries Types
