lib/terradir/ranking.mli:
