lib/terradir/metrics.ml: Printf Stats Terradir_util Timeseries Types
