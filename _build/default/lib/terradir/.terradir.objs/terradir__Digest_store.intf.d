lib/terradir/digest_store.mli: Terradir_bloom
