lib/terradir/ranking.ml: Float Hashtbl List Option
