lib/terradir/digest_store.ml: Bloom Hashtbl Lru Option Terradir_bloom Terradir_util
