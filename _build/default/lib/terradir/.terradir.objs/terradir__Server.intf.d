lib/terradir/server.mli: Cache Config Digest_store Hashtbl Load_meter Node_map Queue Ranking Terradir_namespace Terradir_util Types
