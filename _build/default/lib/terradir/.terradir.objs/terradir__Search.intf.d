lib/terradir/search.mli: Cluster Node_map Types
