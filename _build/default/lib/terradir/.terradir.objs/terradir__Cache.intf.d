lib/terradir/cache.mli: Node_map Terradir_util
