lib/terradir/trace.mli: Cluster Format Types
