lib/terradir/config.ml:
