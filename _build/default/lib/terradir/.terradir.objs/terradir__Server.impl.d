lib/terradir/server.ml: Cache Config Digest_store Hashtbl List Load_meter Node_map Option Queue Ranking Splitmix Terradir_bloom Terradir_namespace Terradir_util Tree Types
