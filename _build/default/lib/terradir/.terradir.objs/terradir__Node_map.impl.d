lib/terradir/node_map.ml: Float Format List Option Printf Splitmix String Terradir_util
