lib/terradir/static_replication.ml: Array Cluster Server Splitmix Terradir_namespace Terradir_util Tree
