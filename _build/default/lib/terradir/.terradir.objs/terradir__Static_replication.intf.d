lib/terradir/static_replication.mli: Cluster
