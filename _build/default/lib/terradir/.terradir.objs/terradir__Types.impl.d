lib/terradir/types.ml: Node_map Terradir_bloom
