lib/terradir/config.mli:
