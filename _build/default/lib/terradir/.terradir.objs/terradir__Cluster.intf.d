lib/terradir/cluster.mli: Config Hashtbl Metrics Server Terradir_namespace Terradir_sim Terradir_util Types
