lib/terradir/replication.ml: Config Float Hashtbl List Load_meter Ranking Server
