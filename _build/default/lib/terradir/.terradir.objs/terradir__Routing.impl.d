lib/terradir/routing.ml: Cache Config Digest_store Hashtbl List Node_map Option Server Terradir_bloom Terradir_namespace Tree Types
