lib/terradir/cache.ml: Lru Node_map Splitmix Terradir_util
