lib/terradir/load_meter.mli:
