lib/terradir/search.ml: Array Cluster Filename List Node_map Queue Terradir_namespace Terradir_sim Tree Types
