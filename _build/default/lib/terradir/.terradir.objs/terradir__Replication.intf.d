lib/terradir/replication.mli: Config Server Types
