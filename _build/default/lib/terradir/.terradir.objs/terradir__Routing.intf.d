lib/terradir/routing.mli: Node_map Server Types
