lib/terradir/trace.ml: Array Char Cluster Format List Routing Server Terradir_namespace Tree Types
