(** Replica-creation decision logic (§3.3) — the pure parts.

    The message exchange (probe → reply → replicate) is driven by
    {!Cluster}; this module owns the decisions: when a session should start,
    how many of the top-ranked nodes to shed, and the post-session load
    adjustments. *)

open Types

val effective_high_water : Server.t -> now:float -> float
(** The adaptive T_high of §3.1: the configured floor, raised in proportion
    to the overall system utilization as estimated from the server's
    in-band peer-load table (own load included):
    [max high_water (min 0.95 (high_water_factor × mean))]. *)

val should_start : Server.t -> now:float -> bool
(** True when this server should open a replication session: replication
    enabled, load ≥ {!effective_high_water}, no session in flight, past any
    backoff, and it hosts at least one node. *)

val shed_target : l_source:float -> l_dest:float -> float
(** The fraction of the source's demand weight to move:
    [(l_source − l_dest) / (2 · l_source)] — step 3's right-hand side. *)

val acceptable : config:Config.t -> l_source:float -> l_dest:float -> bool
(** Step 3's guard: [l_source − l_dest ≥ min_delta]. *)

val select_nodes : Server.t -> l_source:float -> l_dest:float -> now:float -> node_id list
(** The smallest top-ranked prefix of hosted nodes whose cumulative weight
    reaches the shed target (at least one node when any weight exists;
    empty when the server has no recorded demand).  Capped at
    [max_shed_nodes] to bound message size. *)

val max_shed_nodes : int

val adjusted_load : l_source:float -> l_dest:float -> float
(** Step 4's hysteresis value [(l_source + l_dest) / 2], installed on both
    parties after a successful shed. *)
