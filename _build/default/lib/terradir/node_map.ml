open Terradir_util

type entry = { server : int; is_owner : bool; stamp : float }

type t = entry list
(* Invariant: no duplicate servers; owners first, then newest-first.
   Maps are tiny (≤ r_map, typically 4) and merged on every query hop, so
   the implementation favors small-list operations over hashing. *)

let empty = []

let entries t = t

let servers t = List.map (fun e -> e.server) t

let size = List.length

let is_empty t = t = []

let mem t s = List.exists (fun e -> e.server = s) t

let owner t = Option.map (fun e -> e.server) (List.find_opt (fun e -> e.is_owner) t)

let order a b =
  (* Owners first; ties broken newest-first, then by server id for
     determinism. *)
  match (b.is_owner, a.is_owner) with
  | true, false -> 1
  | false, true -> -1
  | _ -> (
    match compare (b.stamp : float) a.stamp with 0 -> compare a.server b.server | c -> c)

(* Newest stamp wins; the owner flag is sticky (a server once seen as owner
   stays owner even if a later stale entry forgot the flag).  Quadratic,
   which beats hashing at these sizes. *)
let dedup entries =
  let combine x e =
    { server = e.server; is_owner = x.is_owner || e.is_owner; stamp = Float.max x.stamp e.stamp }
  in
  let rec add acc e =
    match acc with
    | [] -> [ e ]
    | x :: rest -> if x.server = e.server then combine x e :: rest else x :: add rest e
  in
  List.fold_left add [] entries

let truncate ~max entries =
  let sorted = List.sort order entries in
  List.filteri (fun i _ -> i < max) sorted

let of_entries ~max entries =
  if max < 1 then invalid_arg "Node_map.of_entries: max must be >= 1";
  truncate ~max (dedup entries)

let singleton ?(is_owner = false) ~server ~stamp () = [ { server; is_owner; stamp } ]

let add ~max t entry = of_entries ~max (entry :: t)

let remove t s = List.filter (fun e -> e.server <> s) t

(* Draw [want] entries uniformly without replacement from a small list. *)
let rec draw rng pool want acc =
  if want <= 0 then acc
  else
    match pool with
    | [] -> acc
    | _ ->
      let i = Splitmix.int rng (List.length pool) in
      let rec split k seen = function
        | [] -> assert false
        | e :: rest -> if k = 0 then (e, List.rev_append seen rest) else split (k - 1) (e :: seen) rest
      in
      let e, rest = split i [] pool in
      draw rng rest (want - 1) (e :: acc)

(* [subsumes a b]: merging [b] into [a] cannot change [a] — every entry of
   [b] is already present with an equal-or-newer stamp and owner flag.  The
   common case on busy paths (the same maps circulate), worth a scan to
   avoid reallocating stored maps. *)
let subsumes a b =
  List.for_all
    (fun eb ->
      List.exists
        (fun ea ->
          ea.server = eb.server && ea.stamp >= eb.stamp && (ea.is_owner || not eb.is_owner))
        a)
    b

let merge ~max rng a b =
  if max < 1 then invalid_arg "Node_map.merge: max must be >= 1";
  if (a == b || subsumes a b) && size a <= max then a
  else begin
    let all = dedup (List.rev_append a b) in
    let owners, rest = List.partition (fun e -> e.is_owner) all in
    let owners = truncate ~max owners in
    let slots = max - List.length owners in
    if slots <= 0 then owners
    else begin
      (* Keep the newest half of the remaining budget, fill the rest
         randomly from what is left so maps decorrelate across servers. *)
      let rest = List.sort order rest in
      let keep_newest = (slots + 1) / 2 in
      let newest = List.filteri (fun i _ -> i < keep_newest) rest in
      let remainder = List.filteri (fun i _ -> i >= keep_newest) rest in
      let filled = draw rng remainder (slots - List.length newest) [] in
      List.sort order (owners @ newest @ filled)
    end
  end

let filter t ~f = List.filter (fun e -> e.is_owner || f e) t

let random_server ?exclude t rng =
  let eligible =
    match exclude with None -> t | Some s -> List.filter (fun e -> e.server <> s) t
  in
  match eligible with
  | [] -> None
  | l -> Some (List.nth l (Splitmix.int rng (List.length l))).server

let pp fmt t =
  Format.fprintf fmt "{%s}"
    (String.concat "; "
       (List.map
          (fun e -> Printf.sprintf "%d%s@%.2f" e.server (if e.is_owner then "*" else "") e.stamp)
          t))
