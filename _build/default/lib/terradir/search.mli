(** Complex queries (§2.1): "Complex search queries are decomposed
    hierarchically into individual lookup queries, the appropriate nodes
    are resolved, and then the results are aggregated and sent back to the
    requester."

    This is a {e client} layer: it owns no server state and speaks to the
    system exclusively through {!Cluster.inject}'s completion callbacks —
    exactly how an application embeds TerraDir.  A subtree search
    enumerates the namespace below a root (structure is shared knowledge;
    {e placement} is what lookups discover), issues one lookup per node
    with light pacing, filters the resolutions, and aggregates. *)

open Types

type node_result = {
  sr_node : node_id;
  sr_map : Node_map.t;  (** where the node can be found / fetched from *)
  sr_meta_version : int;
  sr_hops : int;
}

type result = {
  root : node_id;
  matched : node_result list;  (** resolved nodes passing the filter *)
  lookups_issued : int;
  lookups_dropped : int;
  latency : float;  (** first injection to last completion *)
}

val subtree :
  ?max_nodes:int ->
  ?filter:(node_id -> bool) ->
  ?pacing:float ->
  Cluster.t ->
  src:server_id ->
  root:node_id ->
  on_done:(result -> unit) ->
  unit
(** [subtree cluster ~src ~root ~on_done] resolves every node in [root]'s
    subtree (breadth-first, capped at [max_nodes], default 256) from
    client [src], keeping resolutions for which [filter] holds (default:
    all).  Lookups are injected [pacing] seconds apart (default 25 ms, above the
    mean service time) so a
    search does not trample the client's own request queue.  [on_done]
    fires once, after every lookup has terminated.
    @raise Invalid_argument on a bad root or non-positive [max_nodes]. *)

val glob :
  ?max_nodes:int ->
  ?pacing:float ->
  Cluster.t ->
  src:server_id ->
  pattern:string ->
  on_done:(result -> unit) ->
  unit
(** Convenience: [pattern] is a path with a trailing ["/*"] (one level) or
    ["/**"] (whole subtree), e.g. ["/university/public/**"].  Resolves the
    matching namespace region.  @raise Invalid_argument if the prefix
    names no node or the pattern has no glob suffix. *)
