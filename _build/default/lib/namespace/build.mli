(** Namespace generators for the paper's two evaluation namespaces and for
    tests.

    - {!balanced} builds the synthetic namespace [N_S]: a perfectly balanced
      k-ary tree (the paper uses arity 2 with levels 0..14, i.e. 32767
      nodes).
    - {!coda_like} substitutes for the paper's Coda-server trace namespace
      [N_C] ("barber", one month of January 1993, ~40k nodes): the original
      trace is not redistributable, so we generate a filesystem-shaped tree
      with heavy-tailed fan-out and deep, thin directory chains from a seed.
    - {!of_paths} builds a namespace from an explicit path listing (handy
      for tests and for loading real listings). *)

val balanced : arity:int -> levels:int -> Tree.t
(** Perfectly balanced [arity]-ary tree with levels [0..levels] (the root is
    level 0), i.e. [(arity^(levels+1)-1)/(arity-1)] nodes for arity ≥ 2.
    Children of a node are named ["0"], ["1"], ….
    @raise Invalid_argument if [arity < 1] or [levels < 0]. *)

val balanced_node_count : arity:int -> levels:int -> int
(** Number of nodes {!balanced} will produce. *)

val coda_like : ?seed:int -> target:int -> unit -> Tree.t
(** Filesystem-shaped namespace of approximately [target] nodes (always
    within 1%, typically exact).  Deterministic in [seed] (default 1993,
    the trace year).  Shape properties (asserted by tests): irregular
    fan-out with a heavy tail, maximum depth ≥ 8 for targets ≥ 10k,
    a majority of leaf ("file") nodes — matching published file-system
    namespace statistics.
    @raise Invalid_argument if [target < 1]. *)

val of_paths : string list -> Tree.t
(** Build a tree containing every listed path, creating intermediate
    components as needed.  Duplicates are fine. *)

val describe : Tree.t -> string
(** One-line shape summary: nodes, max depth, mean/max fan-out, leaf share. *)
