type t = string list
(* Components in root-first order; the canonical-form invariant (no empty
   component, no '/') is enforced by all constructors. *)

let root = []

let check_component c =
  if c = "" then invalid_arg "Name: empty component";
  if String.contains c '/' then invalid_arg "Name: component contains '/'"

let of_components cs =
  List.iter check_component cs;
  cs

let of_string s =
  String.split_on_char '/' s |> List.filter (fun c -> c <> "")

let to_string = function
  | [] -> "/"
  | cs -> "/" ^ String.concat "/" cs

let components t = t

let child t c =
  check_component c;
  t @ [ c ]

let parent = function
  | [] -> None
  | cs ->
    let rec drop_last = function
      | [] -> assert false
      | [ _ ] -> []
      | c :: rest -> c :: drop_last rest
    in
    Some (drop_last cs)

let basename = function
  | [] -> None
  | cs -> Some (List.nth cs (List.length cs - 1))

let depth = List.length

let rec is_ancestor a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' -> String.equal x y && is_ancestor a' b'

let ancestors t =
  (* Walk up through parents: nearest ancestor first, root last. *)
  let rec go acc cur =
    match parent cur with
    | None -> List.rev acc
    | Some p -> go (p :: acc) p
  in
  go [] t

let lowest_common_ancestor a b =
  let rec go acc a b =
    match (a, b) with
    | x :: a', y :: b' when String.equal x y -> go (x :: acc) a' b'
    | _ -> List.rev acc
  in
  go [] a b

let distance a b =
  let l = lowest_common_ancestor a b in
  depth a + depth b - (2 * depth l)

let equal a b = List.equal String.equal a b

let compare a b = List.compare String.compare a b

let pp fmt t = Format.pp_print_string fmt (to_string t)
