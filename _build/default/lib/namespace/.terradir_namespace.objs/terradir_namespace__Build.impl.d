lib/namespace/build.ml: Array Float Hashtbl List Name Printf Splitmix Stats Terradir_util Tree
