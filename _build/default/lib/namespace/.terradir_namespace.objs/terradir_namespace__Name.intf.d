lib/namespace/name.mli: Format
