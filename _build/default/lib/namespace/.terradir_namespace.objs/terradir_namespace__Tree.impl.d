lib/namespace/tree.ml: Array Hashtbl List Name String
