lib/namespace/tree.mli: Name
