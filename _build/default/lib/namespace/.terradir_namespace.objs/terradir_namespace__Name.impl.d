lib/namespace/name.ml: Format List String
