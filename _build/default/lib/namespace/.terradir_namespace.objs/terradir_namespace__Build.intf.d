lib/namespace/build.mli: Tree
