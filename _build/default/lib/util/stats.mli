(** Online summary statistics and percentile estimation.

    {!t} is a Welford accumulator: O(1) memory, numerically stable mean and
    variance.  {!Reservoir} adds percentile estimation with bounded memory
    via uniform reservoir sampling (Vitter's algorithm R). *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0.0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0.0 with fewer than two samples. *)

val stddev : t -> float

val min_value : t -> float
(** @raise Invalid_argument when empty. *)

val max_value : t -> float
(** @raise Invalid_argument when empty. *)

val total : t -> float
(** Sum of all samples. *)

val merge : t -> t -> t
(** Statistics of the union of the two sample streams (Chan's formula). *)

module Reservoir : sig
  type stats = t

  type t

  val create : ?capacity:int -> Splitmix.t -> t
  (** Default capacity 4096 samples. *)

  val add : t -> float -> unit

  val count : t -> int

  val percentile : t -> float -> float
  (** [percentile r p] for [p] in [\[0,1\]], linear interpolation between
      order statistics of the retained sample.
      @raise Invalid_argument when empty or [p] out of range. *)

  val summary : t -> stats
  (** The exact online summary of {e all} samples seen (not just retained). *)
end
