type t = { bits : Bytes.t; length : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative size";
  { bits = Bytes.make ((n + 7) / 8) '\000'; length = n }

let length b = b.length

let check b i op =
  if i < 0 || i >= b.length then invalid_arg ("Bitset." ^ op ^ ": index out of range")

let set b i =
  check b i "set";
  let byte = Char.code (Bytes.unsafe_get b.bits (i lsr 3)) in
  Bytes.unsafe_set b.bits (i lsr 3) (Char.unsafe_chr (byte lor (1 lsl (i land 7))))

let clear b i =
  check b i "clear";
  let byte = Char.code (Bytes.unsafe_get b.bits (i lsr 3)) in
  Bytes.unsafe_set b.bits (i lsr 3) (Char.unsafe_chr (byte land lnot (1 lsl (i land 7))))

let mem b i =
  check b i "mem";
  Char.code (Bytes.unsafe_get b.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let reset b = Bytes.fill b.bits 0 (Bytes.length b.bits) '\000'

let popcount_byte =
  (* 256-entry popcount table, built once. *)
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun c -> table.(Char.code c)

let count b =
  let n = ref 0 in
  Bytes.iter (fun c -> n := !n + popcount_byte c) b.bits;
  !n

let union_into ~dst src =
  if dst.length <> src.length then invalid_arg "Bitset.union_into: length mismatch";
  for i = 0 to Bytes.length dst.bits - 1 do
    let d = Char.code (Bytes.unsafe_get dst.bits i)
    and s = Char.code (Bytes.unsafe_get src.bits i) in
    Bytes.unsafe_set dst.bits i (Char.unsafe_chr (d lor s))
  done

let copy b = { bits = Bytes.copy b.bits; length = b.length }

let equal a b = a.length = b.length && Bytes.equal a.bits b.bits
