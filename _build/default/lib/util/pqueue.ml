type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array; (* positions [0, size) are live *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length q = q.size

let is_empty q = q.size = 0

(* Entry ordering: key first, then insertion sequence for FIFO ties. *)
let before a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow q entry =
  let capacity = Array.length q.heap in
  if q.size = capacity then begin
    let fresh = Array.make (max 8 (2 * capacity)) entry in
    Array.blit q.heap 0 fresh 0 q.size;
    q.heap <- fresh
  end

let add q key value =
  let entry = { key; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  grow q entry;
  (* Sift up. *)
  let i = ref q.size in
  q.size <- q.size + 1;
  q.heap.(!i) <- entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before entry q.heap.(parent) then begin
      q.heap.(!i) <- q.heap.(parent);
      q.heap.(parent) <- entry;
      i := parent
    end
    else continue := false
  done

let min q = if q.size = 0 then None else Some (q.heap.(0).key, q.heap.(0).value)

let sift_down q =
  let n = q.size in
  let entry = q.heap.(0) in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < n && before q.heap.(l) q.heap.(!smallest) then smallest := l;
    if r < n && before q.heap.(r) q.heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      q.heap.(!i) <- q.heap.(!smallest);
      q.heap.(!smallest) <- entry;
      i := !smallest
    end
    else continue := false
  done

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      q.heap.(q.size) <- top (* keep slot initialized; avoids space leak concerns *);
      sift_down q
    end;
    Some (top.key, top.value)
  end

let clear q =
  q.heap <- [||];
  q.size <- 0

let to_sorted_list q =
  let copy = { heap = Array.sub q.heap 0 (Array.length q.heap); size = q.size; next_seq = q.next_seq } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some kv -> drain (kv :: acc)
  in
  drain []
