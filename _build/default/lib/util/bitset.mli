(** Fixed-size mutable bit vectors, backed by [Bytes].

    Used as the storage layer for Bloom-filter digests.  Bounds are checked;
    all operations are O(1) except the bulk ones, which are O(size/8). *)

type t

val create : int -> t
(** [create n] is a bitset of [n] bits, all cleared.
    @raise Invalid_argument if [n < 0]. *)

val length : t -> int
(** Number of bits. *)

val set : t -> int -> unit
(** [set b i] sets bit [i]. @raise Invalid_argument on out-of-range index. *)

val clear : t -> int -> unit
(** [clear b i] clears bit [i]. *)

val mem : t -> int -> bool
(** [mem b i] is the value of bit [i]. *)

val reset : t -> unit
(** Clear every bit. *)

val count : t -> int
(** Number of set bits (popcount). *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] ors [src] into [dst].
    @raise Invalid_argument if lengths differ. *)

val copy : t -> t
(** Independent copy. *)

val equal : t -> t -> bool
(** Structural equality (same length, same bits). *)
