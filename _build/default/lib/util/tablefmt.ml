type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) (List.length header) rows in
  let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
  let width i =
    List.fold_left (fun acc r -> max acc (String.length (cell r i))) (String.length (cell header i)) rows
  in
  let widths = List.init ncols width in
  let alignment i =
    match align with
    | Some l -> (match List.nth_opt l i with Some a -> a | None -> Right)
    | None -> if i = 0 then Left else Right
  in
  let line row =
    let cells = List.mapi (fun i w -> pad (alignment i) w (cell row i)) widths in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule =
    let dashes = List.map (fun w -> String.make (w + 2) '-') widths in
    "+" ^ String.concat "+" dashes ^ "+"
  in
  let body = List.map line rows in
  String.concat "\n" ((rule :: line header :: rule :: body) @ [ rule ]) ^ "\n"

let print ?align ~header rows = print_string (render ?align ~header rows)

let float_cell ?(decimals = 4) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" decimals x

let series ~title ~time_label ~columns =
  let n = List.fold_left (fun acc (_, a) -> max acc (Array.length a)) 0 columns in
  let header = time_label :: List.map fst columns in
  let row i =
    string_of_int i
    :: List.map
         (fun (_, a) -> if i < Array.length a then float_cell a.(i) else "-")
         columns
  in
  let rows = List.init n row in
  Printf.printf "== %s ==\n" title;
  print ~header rows

let csv ~header rows =
  let check cell =
    if String.exists (fun c -> c = ',' || c = '\n') cell then
      invalid_arg "Tablefmt.csv: cell contains separator";
    cell
  in
  let line row = String.concat "," (List.map check row) in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"
