(** Plain-text table and series rendering for experiment reports.

    Every experiment harness prints the rows/series the paper reports through
    this module, so all output is uniform and greppable. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out a boxed ASCII table.  Columns are sized to
    content; [align] defaults to [Left] for the first column and [Right] for
    the rest.  Ragged rows are padded with empty cells. *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** [render] to stdout. *)

val float_cell : ?decimals:int -> float -> string
(** Fixed-point formatting, default 4 decimals; NaN prints as ["-"]. *)

val series :
  title:string -> time_label:string -> columns:(string * float array) list -> unit
(** Print aligned per-bin series (one row per bin index) — the harness's
    rendition of the paper's line plots.  Columns may have different lengths;
    missing points print as ["-"]. *)

val csv : header:string list -> string list list -> string
(** The same data as comma-separated values (no quoting: cells must not
    contain commas or newlines — enforced with [Invalid_argument]). *)
