lib/util/stats.mli: Splitmix
