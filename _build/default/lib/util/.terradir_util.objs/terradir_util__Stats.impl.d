lib/util/stats.ml: Array Float Splitmix
