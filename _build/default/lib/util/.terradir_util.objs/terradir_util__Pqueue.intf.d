lib/util/pqueue.mli:
