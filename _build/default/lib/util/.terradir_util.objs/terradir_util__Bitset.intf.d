lib/util/bitset.mli:
