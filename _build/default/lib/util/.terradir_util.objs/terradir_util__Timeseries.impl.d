lib/util/timeseries.ml: Array
