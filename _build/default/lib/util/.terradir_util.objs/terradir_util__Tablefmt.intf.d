lib/util/tablefmt.mli:
