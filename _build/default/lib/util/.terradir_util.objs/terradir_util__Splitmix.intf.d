lib/util/splitmix.mli:
