lib/util/timeseries.mli:
