lib/util/lru.mli:
