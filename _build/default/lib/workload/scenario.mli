(** Drive a cluster through a query stream.

    Schedules Poisson query arrivals phase by phase (uniform source server,
    stream-sampled destination) and runs the simulation to the end of the
    stream (plus a drain allowance so in-flight lookups finish). *)

val run :
  ?drain:float ->
  ?on_phase:(int -> Stream.phase -> unit) ->
  ?fetch_probability:float ->
  Terradir.Cluster.t ->
  phases:Stream.phase list ->
  seed:int ->
  unit
(** [run cluster ~phases ~seed] executes the whole stream.  [drain]
    (default 2 s) extends the run past the last arrival.  [on_phase] is
    called at each phase start (e.g. to log shift times).
    [fetch_probability] (default 0: lookups only, the paper's methodology)
    makes that fraction of resolved lookups proceed to step two — a data
    fetch from the resolved map's hosts ("few of the objects looked up
    ... are effectively retrieved", §1).
    @raise Invalid_argument on an empty phase list or non-positive rates. *)

val run_interleaved :
  ?drain:float ->
  Terradir.Cluster.t ->
  streams:(Stream.phase list * int) list ->
  unit
(** Several independent streams (phases, seed) injected concurrently into
    one cluster — e.g. a background uniform trickle plus a flash crowd. *)
