lib/workload/scenario.mli: Stream Terradir
