lib/workload/scenario.ml: Cluster Dist Engine Float List Splitmix Stream Terradir Terradir_sim Terradir_util
