lib/workload/stream.ml: Array Dist List Splitmix Terradir_namespace Terradir_sim Terradir_util Tree
