lib/workload/stream.mli: Terradir_namespace
