(** Query streams (§4.1).

    Destinations are drawn either uniformly at random over the namespace
    ([unif] traces) or by the Zipf law of popularity vs. ranking ([uzipf]
    traces), where the popularity ranking is a random permutation of all
    nodes.  Streams are sequences of phases; a Zipf phase created with
    [reshuffle] re-draws the ranking {e instantly} when the phase starts —
    the paper's "arbitrary and instantaneous changes in demand
    distribution" (shifting hot-spots).

    Sources are always chosen uniformly among servers by the driver
    ({!Scenario}). *)

type dist =
  | Uniform
  | Zipf of { alpha : float; reshuffle : bool }

type phase = { duration : float; rate : float; dist : dist }
(** [rate] is the global Poisson query arrival rate during the phase. *)

val uzipf : rate:float -> warmup:float -> alpha:float -> shift_every:float -> shifts:int -> phase list
(** The paper's composite [uzipf] stream: a uniform warmup of [warmup]
    seconds (letting the cold system replicate away hierarchical
    bottlenecks before locality starts), then [shifts] Zipf([alpha])
    segments of [shift_every] seconds, each re-drawing the popularity
    ranking. *)

val unif : rate:float -> duration:float -> phase list

val total_duration : phase list -> float

(** Mutable destination sampler. *)
type sampler

val sampler : tree:Terradir_namespace.Tree.t -> seed:int -> sampler

val install : sampler -> dist -> unit
(** Enter a phase: build the Zipf CDF for its order and, when the phase
    asks for it, re-rank node popularity. *)

val sample : sampler -> Terradir_namespace.Tree.node
(** Draw a destination under the currently installed distribution
    (uniform before any {!install}). *)

val rank_of_node : sampler -> Terradir_namespace.Tree.node -> int
(** Current popularity rank of a node (0 = hottest); for tests. *)
