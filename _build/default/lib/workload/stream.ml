open Terradir_util
open Terradir_namespace
open Terradir_sim

type dist = Uniform | Zipf of { alpha : float; reshuffle : bool }

type phase = { duration : float; rate : float; dist : dist }

let unif ~rate ~duration = [ { duration; rate; dist = Uniform } ]

let uzipf ~rate ~warmup ~alpha ~shift_every ~shifts =
  let zipf_phase = { duration = shift_every; rate; dist = Zipf { alpha; reshuffle = true } } in
  { duration = warmup; rate; dist = Uniform } :: List.init shifts (fun _ -> zipf_phase)

let total_duration phases = List.fold_left (fun acc p -> acc +. p.duration) 0.0 phases

type sampler = {
  tree_size : int;
  rng : Splitmix.t;
  mutable ranking : int array; (* rank -> node *)
  mutable zipf : Dist.Zipf.t option;
}

let sampler ~tree ~seed =
  let rng = Splitmix.create seed in
  let n = Tree.size tree in
  { tree_size = n; rng; ranking = Splitmix.permutation rng n; zipf = None }

let install s dist =
  match dist with
  | Uniform -> s.zipf <- None
  | Zipf { alpha; reshuffle } ->
    (match s.zipf with
    | Some z when Dist.Zipf.alpha z = alpha -> ()
    | Some _ | None -> s.zipf <- Some (Dist.Zipf.create ~alpha ~n:s.tree_size));
    if reshuffle then s.ranking <- Splitmix.permutation s.rng s.tree_size

let sample s =
  match s.zipf with
  | None -> Splitmix.int s.rng s.tree_size
  | Some z -> s.ranking.(Dist.Zipf.sample z s.rng)

let rank_of_node s node =
  let rec find i = if s.ranking.(i) = node then i else find (i + 1) in
  if node < 0 || node >= s.tree_size then invalid_arg "Stream.rank_of_node: bad node";
  find 0
