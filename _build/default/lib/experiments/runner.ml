open Terradir
open Terradir_workload

let run_phases ?(workload_seed = 1009) setup phases =
  let cluster = Common.cluster setup in
  Scenario.run cluster ~phases ~seed:workload_seed;
  cluster

let named_streams setup ~paper_rate ~duration =
  ignore (Config.validate setup.Common.config);
  ("unif", Common.unif_stream setup ~paper_rate ~duration)
  :: List.map
       (fun alpha ->
         ( Printf.sprintf "uzipf%.2f" alpha,
           Common.uzipf_stream setup ~paper_rate ~alpha ~duration ))
       Common.zipf_orders
