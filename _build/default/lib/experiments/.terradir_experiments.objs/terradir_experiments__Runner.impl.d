lib/experiments/runner.ml: Common Config List Printf Scenario Terradir Terradir_workload
