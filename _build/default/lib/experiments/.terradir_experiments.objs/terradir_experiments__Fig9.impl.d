lib/experiments/fig9.ml: Cluster Common Config List Metrics Runner Stats Tablefmt Terradir Terradir_namespace Terradir_util
