lib/experiments/table1.ml: Array Build Cluster Config List Printf Scenario Server Stream String Tablefmt Terradir Terradir_namespace Terradir_util Terradir_workload
