lib/experiments/common.mli: Terradir Terradir_namespace Terradir_util Terradir_workload
