lib/experiments/registry.mli:
