lib/experiments/fig8.ml: Array Cluster Common List Metrics Runner Stream Tablefmt Terradir Terradir_util Terradir_workload Timeseries
