lib/experiments/registry.ml: Ablations Fig3 Fig4 Fig5 Fig6 Fig7 Fig8 Fig9 Hetero List Rfact Table1
