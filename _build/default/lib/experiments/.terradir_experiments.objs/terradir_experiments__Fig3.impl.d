lib/experiments/fig3.ml: Array Cluster Common Float List Metrics Printf Runner Tablefmt Terradir Terradir_util
