lib/experiments/fig4.ml: Array Cluster Common List Metrics Printf Runner Tablefmt Terradir Terradir_util
