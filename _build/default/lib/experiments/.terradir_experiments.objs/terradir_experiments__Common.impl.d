lib/experiments/common.ml: Array Build Cluster Config Float Lazy List Load_meter Server Stream Terradir Terradir_namespace Terradir_sim Terradir_util Terradir_workload Timeseries Tree
