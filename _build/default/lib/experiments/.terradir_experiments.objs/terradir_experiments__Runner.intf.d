lib/experiments/runner.mli: Common Terradir Terradir_workload
