lib/experiments/fig5.ml: Cluster Common Config Float List Metrics Runner Tablefmt Terradir Terradir_util
