lib/experiments/rfact.ml: Cluster Common Config List Metrics Printf Runner Tablefmt Terradir Terradir_util
