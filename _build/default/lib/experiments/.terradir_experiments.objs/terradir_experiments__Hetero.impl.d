lib/experiments/hetero.ml: Array Cluster Common Config List Metrics Printf Runner Stats Tablefmt Terradir Terradir_util Timeseries
