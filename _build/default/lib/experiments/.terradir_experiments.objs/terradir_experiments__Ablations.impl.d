lib/experiments/ablations.ml: Cluster Common Config Fun List Metrics Printf Scenario Static_replication Stats Tablefmt Terradir Terradir_util Terradir_workload
