lib/experiments/fig7.ml: Cluster Common List Printf Runner Tablefmt Terradir Terradir_util
