lib/experiments/csv_export.ml: Ablations Array Fig3 Fig4 Fig5 Fig6 Fig7 Fig8 Fig9 Filename Hetero List Out_channel Printf Rfact Sys Tablefmt Terradir_util
