(** Small shared driver: build a cluster for a setup, run a stream, hand
    back the cluster for measurement. *)

val run_phases :
  ?workload_seed:int ->
  Common.setup ->
  Terradir_workload.Stream.phase list ->
  Terradir.Cluster.t
(** Fresh cluster from the setup, driven through the phases to completion
    (2 s drain). *)

val named_streams :
  Common.setup ->
  paper_rate:float ->
  duration:float ->
  (string * Terradir_workload.Stream.phase list) list
(** The paper's five standard streams: [unif] plus [uzipf] at each order in
    {!Common.zipf_orders}, labelled "unif", "uzipf0.75", …. *)
