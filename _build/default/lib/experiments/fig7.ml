(** Figure 7: how the system reacts to hierarchical bottlenecks — the
    average number of replicas created per node at each namespace level
    (root = level 0), for uniform and Zipf streams at three arrival rates.

    Paper shape: the top levels replicate heavily; level 2 often exceeds
    its ancestors (pointers to level-2 nodes linger in caches, diverting
    traffic from levels 0–1); replication fades toward the leaves. *)

open Terradir
open Terradir_util

type series = { label : string; per_level : float array }

type result = { runs : series list }

let paper_rates = [ 2000.0; 4000.0; 8000.0 ]

let run ?scale ?(duration = 150.0) ?(seed = 42) () =
  let one label phases setup =
    let cluster = Runner.run_phases setup phases in
    { label; per_level = Cluster.replicas_per_level cluster `Created }
  in
  let runs =
    List.concat_map
      (fun paper_rate ->
        let setup () = Common.make ?scale ~seed Common.NS in
        let s1 = setup () in
        let s2 = setup () in
        [
          one
            (Printf.sprintf "unif l=%.0f" paper_rate)
            (Common.unif_stream s1 ~paper_rate ~duration)
            s1;
          one
            (Printf.sprintf "uzipf l=%.0f" paper_rate)
            (Common.uzipf_stream s2 ~paper_rate ~alpha:1.00 ~duration)
            s2;
        ])
      paper_rates
  in
  { runs }

let print r =
  print_endline "Figure 7 — average replicas created per node, by namespace level (N_S)";
  let columns = List.map (fun s -> (s.label, s.per_level)) r.runs in
  Tablefmt.series ~title:"fig7: replicas per level" ~time_label:"level" ~columns
