(* Benchmark harness:

   1. Bechamel micro-benchmarks of the protocol's hot operations.
   2. Regeneration of every table and figure in the paper's evaluation
      (§4), at a configurable scale.

   The default scale is 1/32 of the paper's 4096-server testbed so the
   whole suite completes in minutes; set TERRADIR_BENCH_SCALE (e.g. 0.125)
   to run closer to paper scale, and TERRADIR_BENCH_SEED to vary runs.
   Per-server utilization — the quantity behind every result — is
   preserved by the scaling (see Experiments.Common). *)

module E = Terradir_experiments

let getenv_float name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some v -> ( match float_of_string_opt v with Some f -> f | None -> default)

let getenv_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)

let scale = getenv_float "TERRADIR_BENCH_SCALE" (1.0 /. 32.0)

let seed = getenv_int "TERRADIR_BENCH_SEED" 42

(* Durations in simulated seconds: compressed relative to the paper's
   250 s (Figs. 3–6) and 10000 s (Fig. 8) horizons so the whole suite
   finishes in minutes — each series still contains the warmup, multiple
   popularity shifts, and (for Fig. 8) an unambiguous decay tail.  Pass a
   larger TERRADIR_BENCH_SCALE and edit here for paper-scale runs. *)
let figures =
  [
    ("table1", fun () -> E.Table1.print (E.Table1.run ~scale ~seed ()));
    ("fig3", fun () -> E.Fig3.print (E.Fig3.run ~scale ~duration:180.0 ~seed ()));
    ("fig4", fun () -> E.Fig4.print (E.Fig4.run ~scale ~duration:180.0 ~seed ()));
    ("fig5", fun () -> E.Fig5.print (E.Fig5.run ~scale ~duration:100.0 ~seed ()));
    ("fig6", fun () -> E.Fig6.print (E.Fig6.run ~scale ~duration:180.0 ~seed ()));
    ("fig7", fun () -> E.Fig7.print (E.Fig7.run ~scale ~duration:120.0 ~seed ()));
    ("fig8", fun () -> E.Fig8.print (E.Fig8.run ~scale ~duration:480.0 ~seed ()));
    ("fig9", fun () -> E.Fig9.print (E.Fig9.run ~scale ~duration:80.0 ~seed ()));
    ("rfact", fun () -> E.Rfact.print (E.Rfact.run ~scale ~duration:120.0 ~seed ()));
    ("ablations", fun () -> E.Ablations.print (E.Ablations.run ~scale ~duration:100.0 ~seed ()));
    ("hetero", fun () -> E.Hetero.print (E.Hetero.run ~scale ~duration:110.0 ~seed ()));
  ]

let () =
  let t0 = Unix.gettimeofday () in
  Printf.printf "TerraDir soft-state replication benchmark suite (scale=%.4f, seed=%d)\n\n%!"
    scale seed;
  Micro.run ();
  List.iter
    (fun (id, run) ->
      let start = Unix.gettimeofday () in
      Printf.printf "\n===== %s =====\n%!" id;
      run ();
      Printf.printf "[%s completed in %.1fs wall]\n%!" id (Unix.gettimeofday () -. start))
    figures;
  Printf.printf "\nTotal wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
