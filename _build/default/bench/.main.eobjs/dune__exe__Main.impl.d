bench/main.ml: List Micro Printf Sys Terradir_experiments Unix
