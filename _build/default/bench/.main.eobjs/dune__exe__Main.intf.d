bench/main.mli:
