(* Tests for the load meter (§3.1) and demand ranking (§3.2), plus the
   digest store bookkeeping. *)

open Terradir
open Terradir_bloom

let flt = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Load_meter                                                          *)
(* ------------------------------------------------------------------ *)

let test_meter_window_fraction () =
  let m = Load_meter.create ~window:1.0 in
  Load_meter.begin_busy m 0.2;
  Load_meter.end_busy m 0.5;
  flt "mid-window: last completed window is 0" 0.0 (Load_meter.load m 0.9);
  flt "after roll: 30% busy" 0.3 (Load_meter.load m 1.1);
  flt "next window idle" 0.0 (Load_meter.load m 2.5)

let test_meter_busy_spanning_windows () =
  let m = Load_meter.create ~window:1.0 in
  Load_meter.begin_busy m 0.5;
  Load_meter.end_busy m 2.5;
  (* windows [0,1): 0.5 busy; [1,2): fully busy; [2,3) has 0.5 so far *)
  flt "full window" 1.0 (Load_meter.load m 2.6);
  flt "total busy" 2.0 (Load_meter.total_busy_time m 2.6);
  flt "current window fraction" (0.5 /. 0.6) (Load_meter.busy_fraction_so_far m 2.6)

let test_meter_adjustment_hysteresis () =
  let m = Load_meter.create ~window:1.0 in
  Load_meter.begin_busy m 0.0;
  Load_meter.end_busy m 0.9;
  flt "measured" 0.9 (Load_meter.load m 1.0);
  Load_meter.set_adjustment m 0.45;
  flt "adjusted view" 0.45 (Load_meter.load m 1.2);
  flt "raw unaffected" 0.9 (Load_meter.raw_load m 1.2);
  (* a completed window clears the adjustment *)
  flt "measurement supersedes" 0.0 (Load_meter.load m 2.1)

let test_meter_adjustment_clamped () =
  let m = Load_meter.create ~window:1.0 in
  Load_meter.set_adjustment m 1.7;
  flt "clamped high" 1.0 (Load_meter.load m 0.1);
  Load_meter.set_adjustment m (-0.3);
  flt "clamped low" 0.0 (Load_meter.load m 0.2)

let test_meter_validation () =
  Alcotest.check_raises "window" (Invalid_argument "Load_meter.create: window must be positive")
    (fun () -> ignore (Load_meter.create ~window:0.0));
  let m = Load_meter.create ~window:1.0 in
  Alcotest.check_raises "end when idle" (Invalid_argument "Load_meter.end_busy: not busy")
    (fun () -> Load_meter.end_busy m 0.1);
  Load_meter.begin_busy m 0.2;
  Alcotest.check_raises "double begin" (Invalid_argument "Load_meter.begin_busy: already busy")
    (fun () -> Load_meter.begin_busy m 0.3);
  Alcotest.check_raises "time regression" (Invalid_argument "Load_meter.end_busy: time regressed")
    (fun () -> Load_meter.end_busy m 0.1)

let test_meter_sustained_load () =
  let m = Load_meter.create ~window:1.0 in
  (* window [0,1): 80% busy; window [1,2): idle; window [2,3): 90% busy *)
  Load_meter.begin_busy m 0.0;
  Load_meter.end_busy m 0.8;
  flt "one high window is not sustained" 0.0 (Load_meter.sustained_load m 1.1);
  Load_meter.begin_busy m 2.0;
  Load_meter.end_busy m 2.9;
  (* completed windows now: [1,2)=0, [2,3)=0.9 *)
  flt "idle window breaks sustain" 0.0 (Load_meter.sustained_load m 3.1);
  Load_meter.begin_busy m 3.0;
  Load_meter.end_busy m 3.85;
  (* last two completed: 0.9 then 0.85 *)
  flt "two high windows sustain" 0.85 (Load_meter.sustained_load m 4.1);
  (* the hysteresis adjustment overrides, like load *)
  Load_meter.set_adjustment m 0.2;
  flt "adjustment wins" 0.2 (Load_meter.sustained_load m 4.2)

let test_meter_load_capped () =
  let m = Load_meter.create ~window:1.0 in
  Load_meter.begin_busy m 0.0;
  Load_meter.end_busy m 1.0;
  Alcotest.(check bool) "load in [0,1]" true (Load_meter.load m 1.5 <= 1.0)

(* ------------------------------------------------------------------ *)
(* Ranking                                                             *)
(* ------------------------------------------------------------------ *)

let test_ranking_touch_weight () =
  let r = Ranking.create () in
  flt "untouched" 0.0 (Ranking.weight r 5);
  Ranking.touch r 5;
  Ranking.touch r 5;
  Ranking.touch r 9;
  flt "counted" 2.0 (Ranking.weight r 5);
  flt "counted other" 1.0 (Ranking.weight r 9)

let test_ranking_order () =
  let r = Ranking.create () in
  List.iter (Ranking.touch r) [ 1; 2; 2; 3; 3; 3 ];
  Alcotest.(check (list int)) "desc" [ 3; 2; 1 ]
    (List.map fst (Ranking.ranked_desc r ~among:[ 1; 2; 3 ]));
  Alcotest.(check (list int)) "asc" [ 1; 2; 3 ]
    (List.map fst (Ranking.ranked_asc r ~among:[ 1; 2; 3 ]));
  (* equal weights tie-break by node id, deterministic *)
  Alcotest.(check (list int)) "tie-break" [ 4; 7 ]
    (List.map fst (Ranking.ranked_desc r ~among:[ 7; 4 ]))

let test_ranking_decay_drops () =
  let r = Ranking.create () in
  Ranking.touch r 1;
  Ranking.decay r;
  flt "halved" 0.5 (Ranking.weight r 1);
  for _ = 1 to 10 do
    Ranking.decay r
  done;
  flt "decayed out" 0.0 (Ranking.weight r 1)

let test_ranking_seed_remove_total () =
  let r = Ranking.create () in
  Ranking.seed r 3 4.5;
  flt "seeded" 4.5 (Ranking.weight r 3);
  Ranking.seed r 4 (-2.0);
  flt "negative clamped" 0.0 (Ranking.weight r 4);
  Ranking.touch r 5;
  flt "total" 5.5 (Ranking.total_weight r ~among:[ 3; 4; 5 ]);
  Ranking.remove r 3;
  flt "removed" 0.0 (Ranking.weight r 3)

(* ------------------------------------------------------------------ *)
(* Digest_store                                                        *)
(* ------------------------------------------------------------------ *)

let test_digest_local_versions () =
  let d = Digest_store.create ~max_remote:4 () in
  Alcotest.(check int) "initial version" 0 (Digest_store.local_version d);
  Digest_store.rebuild_local d ~hosted:[ 1; 2; 3 ];
  Alcotest.(check int) "bumped" 1 (Digest_store.local_version d);
  Alcotest.(check bool) "contains hosted" true (Bloom.mem (Digest_store.local d) 2);
  Digest_store.rebuild_local d ~hosted:[ 1 ];
  Alcotest.(check int) "bumped again" 2 (Digest_store.local_version d)

let test_digest_remote_versioning () =
  let d = Digest_store.create ~max_remote:4 () in
  Alcotest.(check (option bool)) "unknown server" None (Digest_store.test_remote d ~server:9 ~node:1);
  Digest_store.record_remote d ~server:9 ~version:2 (Bloom.of_list [ 1 ]);
  Alcotest.(check (option bool)) "hit" (Some true) (Digest_store.test_remote d ~server:9 ~node:1);
  (* stale version ignored *)
  Digest_store.record_remote d ~server:9 ~version:1 (Bloom.of_list [ 42 ]);
  Alcotest.(check (option bool)) "stale ignored" (Some true)
    (Digest_store.test_remote d ~server:9 ~node:1);
  Digest_store.record_remote d ~server:9 ~version:3 (Bloom.of_list [ 42 ]);
  Alcotest.(check (option bool)) "newer replaces" (Some true)
    (Digest_store.test_remote d ~server:9 ~node:42);
  Alcotest.(check (option int)) "version stored" (Some 3) (Digest_store.remote_version d ~server:9)

let test_digest_remote_bounded () =
  let d = Digest_store.create ~max_remote:2 () in
  for s = 1 to 5 do
    Digest_store.record_remote d ~server:s ~version:1 (Bloom.of_list [ s ])
  done;
  Alcotest.(check int) "bounded" 2 (Digest_store.remote_count d)

let test_digest_sent_tracking () =
  let d = Digest_store.create ~max_remote:4 () in
  Alcotest.(check int) "never sent" 0 (Digest_store.last_version_sent d ~peer:3);
  Digest_store.note_version_sent d ~peer:3 7;
  Alcotest.(check int) "recorded" 7 (Digest_store.last_version_sent d ~peer:3)

let () =
  Alcotest.run "terradir_meters"
    [
      ( "load_meter",
        [
          Alcotest.test_case "window fraction" `Quick test_meter_window_fraction;
          Alcotest.test_case "spanning windows" `Quick test_meter_busy_spanning_windows;
          Alcotest.test_case "adjustment hysteresis" `Quick test_meter_adjustment_hysteresis;
          Alcotest.test_case "adjustment clamped" `Quick test_meter_adjustment_clamped;
          Alcotest.test_case "validation" `Quick test_meter_validation;
          Alcotest.test_case "sustained load" `Quick test_meter_sustained_load;
          Alcotest.test_case "capped" `Quick test_meter_load_capped;
        ] );
      ( "ranking",
        [
          Alcotest.test_case "touch/weight" `Quick test_ranking_touch_weight;
          Alcotest.test_case "order" `Quick test_ranking_order;
          Alcotest.test_case "decay" `Quick test_ranking_decay_drops;
          Alcotest.test_case "seed/remove/total" `Quick test_ranking_seed_remove_total;
        ] );
      ( "digest_store",
        [
          Alcotest.test_case "local versions" `Quick test_digest_local_versions;
          Alcotest.test_case "remote versioning" `Quick test_digest_remote_versioning;
          Alcotest.test_case "remote bounded" `Quick test_digest_remote_bounded;
          Alcotest.test_case "sent tracking" `Quick test_digest_sent_tracking;
        ] );
    ]
