(* Tests for the minimizing routing procedure, digest shortcuts and map
   pruning (§2.2, §3.6). *)

open Terradir_util
open Terradir_namespace
open Terradir

let tree = Build.balanced ~arity:2 ~levels:4 (* 31 nodes, ids in BFS order *)

let config =
  { Config.default with Config.num_servers = 16; cache_slots = 8; seed = 11 }

(* A pristine cluster: every server has exactly its owned nodes and accurate
   neighbor contexts — routing should behave like the paper's §2.2 example. *)
let pristine () = Cluster.create ~monitor:false ~config ~tree ()

let test_resolve_when_hosted () =
  let cluster = pristine () in
  let dst = 9 in
  let owner = cluster.Cluster.owner_of.(dst) in
  match Routing.decide (Cluster.server cluster owner) ~dst with
  | Routing.Resolve -> ()
  | Routing.Forward _ | Routing.Dead_end -> Alcotest.fail "owner must resolve its own node"

let test_forward_makes_progress () =
  let cluster = pristine () in
  (* From every server, toward every destination, each forwarding decision
     targets a node strictly closer than the server's closest hosted node. *)
  Array.iter
    (fun s ->
      if Server.hosted_nodes s <> [] then
        Tree.iter tree (fun dst ->
            match Routing.decide s ~dst with
            | Routing.Resolve -> Alcotest.(check bool) "resolve iff hosted" true (Server.hosts s dst)
            | Routing.Dead_end -> Alcotest.fail "pristine cluster has no dead ends"
            | Routing.Forward { via_node; to_server; shortcut = _ } ->
              let closest_hosted =
                List.fold_left
                  (fun acc n -> min acc (Tree.distance tree n dst))
                  max_int (Server.hosted_nodes s)
              in
              Alcotest.(check bool) "strict progress" true
                (Tree.distance tree via_node dst < closest_hosted);
              (* with pristine maps the chosen server really hosts via_node *)
              Alcotest.(check bool) "map accurate" true
                (Server.hosts (Cluster.server cluster to_server) via_node)))
    cluster.Cluster.servers

let test_full_route_terminates () =
  let cluster = pristine () in
  (* Walk the forwarding chain by hand (no queueing): from every server to
     every destination, the chain reaches a host of dst within the
     namespace diameter. *)
  let diameter = 2 * Tree.max_depth tree in
  Array.iter
    (fun (s0 : Server.t) ->
      Tree.iter tree (fun dst ->
          let rec walk (s : Server.t) hops =
            if hops > diameter then Alcotest.fail "route exceeded diameter"
            else
              match Routing.decide s ~dst with
              | Routing.Resolve -> hops
              | Routing.Dead_end -> Alcotest.fail "dead end in pristine cluster"
              | Routing.Forward { to_server; _ } -> walk (Cluster.server cluster to_server) (hops + 1)
          in
          ignore (walk s0 0)))
    cluster.Cluster.servers

let test_cache_shortcut_used () =
  let cluster = pristine () in
  let dst = 30 (* deep leaf *) in
  let owner = cluster.Cluster.owner_of.(dst) in
  (* pick a server whose hosted nodes are all far from dst *)
  let s =
    Array.to_list cluster.Cluster.servers
    |> List.find (fun s ->
           (not (Server.hosts s dst))
           && List.for_all (fun n -> Tree.distance tree n dst > 3) (Server.hosted_nodes s)
           && Server.hosted_nodes s <> [])
  in
  Cache.insert s.Server.cache ~node:dst
    (Node_map.singleton ~is_owner:true ~server:owner ~stamp:1.0 ());
  match Routing.decide s ~dst with
  | Routing.Forward { via_node; to_server; shortcut } ->
    Alcotest.(check int) "cache pointer chosen" dst via_node;
    Alcotest.(check int) "goes to cached host" owner to_server;
    Alcotest.(check bool) "cache hop is not a digest shortcut" false shortcut
  | Routing.Resolve | Routing.Dead_end -> Alcotest.fail "expected cached forward"

let test_digest_shortcut () =
  let cluster = pristine () in
  let dst = 23 in
  let s =
    Array.to_list cluster.Cluster.servers
    |> List.find (fun s ->
           (not (Server.hosts s dst))
           && List.for_all (fun n -> Tree.distance tree n dst > 2) (Server.hosted_nodes s)
           && Server.hosted_nodes s <> [])
  in
  (* Server 99 does not exist in maps, but a digest says it hosts dst. *)
  let holder = (s.Server.id + 1) mod 16 in
  Digest_store.record_remote s.Server.digests ~server:holder ~version:1
    (Terradir_bloom.Bloom.of_list ~bits_per_element:16 ~hashes:10 [ dst ]);
  match Routing.decide s ~dst with
  | Routing.Forward { via_node; to_server; shortcut } ->
    Alcotest.(check bool) "digest shortcut taken" true shortcut;
    Alcotest.(check int) "jumps to digest holder" holder to_server;
    Alcotest.(check int) "on behalf of dst" dst via_node
  | Routing.Resolve | Routing.Dead_end -> Alcotest.fail "expected shortcut"

let test_digest_shortcut_disabled_by_feature () =
  let cfg = { config with Config.features = Config.bc } in
  let cluster = Cluster.create ~monitor:false ~config:cfg ~tree () in
  let dst = 23 in
  let s =
    Array.to_list cluster.Cluster.servers
    |> List.find (fun s -> (not (Server.hosts s dst)) && Server.hosted_nodes s <> [])
  in
  Digest_store.record_remote s.Server.digests ~server:((s.Server.id + 1) mod 16) ~version:1
    (Terradir_bloom.Bloom.of_list [ dst ]);
  match Routing.decide s ~dst with
  | Routing.Forward { shortcut; _ } -> Alcotest.(check bool) "no shortcut in BC" false shortcut
  | Routing.Resolve | Routing.Dead_end -> Alcotest.fail "expected conventional forward"

let test_shortcut_only_when_strictly_better () =
  let cluster = pristine () in
  (* A digest claiming a node the server can already reach at distance 0 via
     its own knowledge must not be used: better_than bounds the walk. *)
  let s = Array.get cluster.Cluster.servers 0 in
  match Server.hosted_nodes s with
  | [] -> ()
  | hosted :: _ ->
    (* dst = a neighbor of a hosted node: conventional candidate at distance 0. *)
    let dst = List.hd (Tree.neighbors tree hosted) in
    if not (Server.hosts s dst) then begin
      Digest_store.record_remote s.Server.digests ~server:7 ~version:1
        (Terradir_bloom.Bloom.of_list [ dst ]);
      match Routing.decide s ~dst with
      | Routing.Forward { shortcut; _ } ->
        Alcotest.(check bool) "no shortcut when not strictly closer" false shortcut
      | Routing.Resolve | Routing.Dead_end -> Alcotest.fail "expected forward"
    end

let test_dead_end_without_knowledge () =
  let s = Server.create ~id:0 ~config ~tree ~rng:(Splitmix.create 1) () in
  match Routing.decide s ~dst:5 with
  | Routing.Dead_end -> ()
  | Routing.Resolve | Routing.Forward _ -> Alcotest.fail "empty server must dead-end"

let test_prune_map_with_digests () =
  let cluster = pristine () in
  let s = Array.get cluster.Cluster.servers 0 in
  let node = 9 in
  let map =
    Node_map.of_entries ~max:4
      [
        { Node_map.server = 3; is_owner = false; stamp = 1.0 };
        { Node_map.server = 4; is_owner = false; stamp = 1.0 };
        { Node_map.server = 5; is_owner = true; stamp = 1.0 };
      ]
  in
  (* digest for 3 denies hosting [node]; digest for 4 confirms; 5 unknown *)
  Digest_store.record_remote s.Server.digests ~server:3 ~version:1
    (Terradir_bloom.Bloom.of_list ~bits_per_element:16 ~hashes:10 [ 777 ]);
  Digest_store.record_remote s.Server.digests ~server:4 ~version:1
    (Terradir_bloom.Bloom.of_list ~bits_per_element:16 ~hashes:10 [ node ]);
  let pruned = Server.prune_map_with_digests s node map in
  Alcotest.(check bool) "denied entry pruned" false (Node_map.mem pruned 3);
  Alcotest.(check bool) "confirmed entry kept" true (Node_map.mem pruned 4);
  Alcotest.(check bool) "unknown entry kept" true (Node_map.mem pruned 5)

let test_prune_noop_without_digests () =
  let cfg = { config with Config.features = Config.bc } in
  let cluster = Cluster.create ~monitor:false ~config:cfg ~tree () in
  let s = Array.get cluster.Cluster.servers 0 in
  let map = Node_map.singleton ~server:3 ~stamp:1.0 () in
  Digest_store.record_remote s.Server.digests ~server:3 ~version:1
    (Terradir_bloom.Bloom.of_list [ 777 ]);
  Alcotest.(check bool) "feature off: untouched" true
    (Server.prune_map_with_digests s 9 map == map)

let test_closest_known_distance () =
  let cluster = pristine () in
  let s =
    Array.to_list cluster.Cluster.servers |> List.find (fun s -> Server.hosted_nodes s <> [])
  in
  let hosted = List.hd (Server.hosted_nodes s) in
  Alcotest.(check (option int)) "hosted is 0" (Some 0)
    (Routing.closest_known_distance s ~dst:hosted);
  let empty = Server.create ~id:1 ~config ~tree ~rng:(Splitmix.create 2) () in
  Alcotest.(check (option int)) "empty server knows nothing" None
    (Routing.closest_known_distance empty ~dst:3)

(* Property: on random pristine clusters (varying seed), the full routing
   walk reaches the destination from any of the first few servers. *)
let prop_routing_converges =
  QCheck.Test.make ~name:"routing: walks converge on random placements" ~count:30
    QCheck.(pair (int_bound 1000) (int_bound 30))
    (fun (seed, dst) ->
      let cfg = { config with Config.seed = seed + 1 } in
      let cluster = Cluster.create ~monitor:false ~config:cfg ~tree () in
      let start =
        Array.to_list cluster.Cluster.servers
        |> List.find (fun s -> Server.hosted_nodes s <> [])
      in
      let rec walk s hops =
        if hops > 2 * Tree.max_depth tree then false
        else
          match Routing.decide s ~dst with
          | Routing.Resolve -> true
          | Routing.Dead_end -> false
          | Routing.Forward { to_server; _ } -> walk (Cluster.server cluster to_server) (hops + 1)
      in
      walk start 0)

let () =
  Alcotest.run "terradir_routing"
    [
      ( "routing",
        [
          Alcotest.test_case "resolve when hosted" `Quick test_resolve_when_hosted;
          Alcotest.test_case "forward progress" `Quick test_forward_makes_progress;
          Alcotest.test_case "routes terminate" `Quick test_full_route_terminates;
          Alcotest.test_case "cache shortcut" `Quick test_cache_shortcut_used;
          Alcotest.test_case "digest shortcut" `Quick test_digest_shortcut;
          Alcotest.test_case "shortcut gated by feature" `Quick test_digest_shortcut_disabled_by_feature;
          Alcotest.test_case "shortcut strictness" `Quick test_shortcut_only_when_strictly_better;
          Alcotest.test_case "dead end" `Quick test_dead_end_without_knowledge;
          Alcotest.test_case "map pruning" `Quick test_prune_map_with_digests;
          Alcotest.test_case "pruning gated" `Quick test_prune_noop_without_digests;
          Alcotest.test_case "closest known distance" `Quick test_closest_known_distance;
        ] );
      ( "routing-props",
        List.map (QCheck_alcotest.to_alcotest ~long:false) [ prop_routing_converges ] );
    ]
