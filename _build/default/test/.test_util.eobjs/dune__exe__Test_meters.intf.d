test/test_meters.mli:
