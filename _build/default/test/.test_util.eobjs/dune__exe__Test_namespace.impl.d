test/test_namespace.ml: Alcotest Build List Name Option Printf QCheck QCheck_alcotest Terradir_namespace Tree
