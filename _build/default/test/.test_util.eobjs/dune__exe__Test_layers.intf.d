test/test_layers.mli:
