test/test_cache.ml: Alcotest Cache List Node_map Option QCheck QCheck_alcotest Splitmix Terradir Terradir_util
