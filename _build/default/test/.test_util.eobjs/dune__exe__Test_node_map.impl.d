test/test_node_map.ml: Alcotest List Node_map QCheck QCheck_alcotest Splitmix Terradir Terradir_util
