test/test_node_map.mli:
