test/test_routing.ml: Alcotest Array Build Cache Cluster Config Digest_store List Node_map QCheck QCheck_alcotest Routing Server Splitmix Terradir Terradir_bloom Terradir_namespace Terradir_util Tree
