test/test_workload.ml: Alcotest Array Build Cluster Config List Metrics Printf Scenario Stream Terradir Terradir_namespace Terradir_util Terradir_workload Tree
