test/test_util.ml: Alcotest Array Bitset Float Fun Gen List Lru Option Pqueue Printf QCheck QCheck_alcotest Splitmix Stats String Tablefmt Terradir_util Timeseries
