test/test_experiments.ml: Alcotest Array Filename Float In_channel List Printf String Sys Terradir Terradir_experiments Terradir_namespace
