test/test_meters.ml: Alcotest Bloom Digest_store List Load_meter Ranking Terradir Terradir_bloom
