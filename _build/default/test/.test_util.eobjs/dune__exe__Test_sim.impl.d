test/test_sim.ml: Alcotest Array Dist Engine Float Fun List Printf QCheck QCheck_alcotest Splitmix Stats Terradir_sim Terradir_util
