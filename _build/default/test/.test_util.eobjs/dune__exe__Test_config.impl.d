test/test_config.ml: Alcotest Config Printf String Terradir
