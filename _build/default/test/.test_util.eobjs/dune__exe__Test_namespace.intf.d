test/test_namespace.mli:
