(* Tests for hierarchical names, interned trees and namespace generators. *)

open Terradir_namespace

let name = Alcotest.testable Name.pp Name.equal

(* ------------------------------------------------------------------ *)
(* Name                                                                *)
(* ------------------------------------------------------------------ *)

let test_name_parse_print () =
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) input expected (Name.to_string (Name.of_string input)))
    [
      ("/university/private", "/university/private");
      ("university/private", "/university/private");
      ("//a///b/", "/a/b");
      ("/", "/");
      ("", "/");
    ]

let test_name_components () =
  let n = Name.of_string "/a/b/c" in
  Alcotest.(check (list string)) "components" [ "a"; "b"; "c" ] (Name.components n);
  Alcotest.(check int) "depth" 3 (Name.depth n);
  Alcotest.(check int) "root depth" 0 (Name.depth Name.root)

let test_name_child_parent () =
  let n = Name.of_string "/a/b" in
  Alcotest.check name "child" (Name.of_string "/a/b/c") (Name.child n "c");
  Alcotest.check (Alcotest.option name) "parent" (Some (Name.of_string "/a")) (Name.parent n);
  Alcotest.check (Alcotest.option name) "root parent" None (Name.parent Name.root);
  Alcotest.(check (option string)) "basename" (Some "b") (Name.basename n);
  Alcotest.(check (option string)) "root basename" None (Name.basename Name.root);
  Alcotest.check_raises "bad component" (Invalid_argument "Name: component contains '/'")
    (fun () -> ignore (Name.child n "x/y"));
  Alcotest.check_raises "empty component" (Invalid_argument "Name: empty component") (fun () ->
      ignore (Name.of_components [ "a"; "" ]))

let test_name_ancestors () =
  let n = Name.of_string "/a/b/c" in
  Alcotest.(check (list string)) "nearest first"
    [ "/a/b"; "/a"; "/" ]
    (List.map Name.to_string (Name.ancestors n));
  Alcotest.(check (list string)) "root has none" [] (List.map Name.to_string (Name.ancestors Name.root))

let test_name_is_ancestor () =
  let check a b expected =
    Alcotest.(check bool)
      (Printf.sprintf "%s ancestor of %s" a b)
      expected
      (Name.is_ancestor (Name.of_string a) (Name.of_string b))
  in
  check "/" "/a/b" true;
  check "/a" "/a/b" true;
  check "/a/b" "/a/b" true;
  check "/a/b" "/a" false;
  check "/a" "/ab" false

let test_name_lca_distance () =
  let lca a b = Name.to_string (Name.lowest_common_ancestor (Name.of_string a) (Name.of_string b)) in
  Alcotest.(check string) "lca siblings" "/a" (lca "/a/b" "/a/c");
  Alcotest.(check string) "lca disjoint" "/" (lca "/a/b" "/c");
  Alcotest.(check string) "lca nested" "/a/b" (lca "/a/b" "/a/b/c/d");
  let dist a b = Name.distance (Name.of_string a) (Name.of_string b) in
  (* The paper's example: /u/private from /u/public/people/students/Lisa. *)
  Alcotest.(check int) "paper example" 4 (dist "/u/public/people/students" "/u/private");
  Alcotest.(check int) "self" 0 (dist "/a/b" "/a/b");
  Alcotest.(check int) "parent" 1 (dist "/a/b" "/a")

let name_gen =
  QCheck.Gen.(
    map
      (fun parts -> Name.of_components (List.map (fun i -> string_of_int i) parts))
      (list_size (int_bound 6) (int_bound 3)))

let arb_name = QCheck.make ~print:Name.to_string name_gen

let prop_name_roundtrip =
  QCheck.Test.make ~name:"name: of_string/to_string roundtrip" ~count:300 arb_name (fun n ->
      Name.equal n (Name.of_string (Name.to_string n)))

let prop_distance_metric =
  QCheck.Test.make ~name:"name: distance is a metric (tree metric axioms)" ~count:300
    QCheck.(triple arb_name arb_name arb_name)
    (fun (a, b, c) ->
      let d = Name.distance in
      d a b = d b a
      && d a b >= 0
      && (d a b = 0) = Name.equal a b
      && d a c <= d a b + d b c)

let prop_ancestor_distance =
  QCheck.Test.make ~name:"name: ancestors are at their depth difference" ~count:200 arb_name
    (fun n ->
      List.for_all (fun a -> Name.distance n a = Name.depth n - Name.depth a) (Name.ancestors n))

(* ------------------------------------------------------------------ *)
(* Tree                                                                *)
(* ------------------------------------------------------------------ *)

let sample_tree () =
  (* The paper's Fig. 1 namespace. *)
  Build.of_paths
    [
      "/university/public/people/faculty/John";
      "/university/public/people/faculty/Steve";
      "/university/public/people/staff";
      "/university/public/people/students/Ann";
      "/university/private/people/students/Lisa";
      "/university/private/people/students/Mary";
    ]

let test_tree_build_find () =
  let t = sample_tree () in
  Tree.check_invariants t;
  Alcotest.(check int) "size" 15 (Tree.size t);
  (match Tree.find_string t "/university/public/people" with
  | Some v ->
    Alcotest.(check string) "roundtrip" "/university/public/people" (Tree.name_string t v);
    Alcotest.(check int) "depth" 3 (Tree.depth t v)
  | None -> Alcotest.fail "expected to find node");
  Alcotest.(check bool) "missing" true (Tree.find_string t "/university/nope" = None)

let test_tree_structure () =
  let t = sample_tree () in
  let id s = Option.get (Tree.find_string t s) in
  Alcotest.(check (option int)) "parent" (Some (id "/university/public"))
    (Tree.parent t (id "/university/public/people"));
  Alcotest.(check (option int)) "root parent" None (Tree.parent t Tree.root);
  Alcotest.(check int) "children of people(public)" 3
    (Tree.num_children t (id "/university/public/people"));
  let nb = Tree.neighbors t (id "/university/public/people") in
  Alcotest.(check int) "neighbors = parent + children" 4 (List.length nb);
  Alcotest.(check int) "root neighbors = children" 1 (List.length (Tree.neighbors t Tree.root))

let test_tree_lca_distance_route () =
  let t = sample_tree () in
  let id s = Option.get (Tree.find_string t s) in
  let lisa = id "/university/private/people/students/Lisa" in
  let john = id "/university/public/people/faculty/John" in
  Alcotest.(check int) "lca is root child" (id "/university") (Tree.lca t lisa john);
  Alcotest.(check int) "distance" 8 (Tree.distance t lisa john);
  let path = Tree.route_path t lisa john in
  Alcotest.(check int) "route length = distance + 1" 9 (List.length path);
  Alcotest.(check int) "route starts at src" lisa (List.hd path);
  Alcotest.(check int) "route ends at dst" john (List.nth path 8);
  (* consecutive route nodes are tree-adjacent *)
  let rec adjacent = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check int) "adjacent step" 1 (Tree.distance t a b);
      adjacent rest
    | _ -> ()
  in
  adjacent path

let test_tree_ancestor_ops () =
  let t = sample_tree () in
  let id s = Option.get (Tree.find_string t s) in
  let lisa = id "/university/private/people/students/Lisa" in
  Alcotest.(check bool) "root ancestor" true (Tree.is_ancestor t Tree.root lisa);
  Alcotest.(check bool) "self ancestor" true (Tree.is_ancestor t lisa lisa);
  Alcotest.(check bool) "not ancestor" false
    (Tree.is_ancestor t (id "/university/public") lisa);
  Alcotest.(check int) "ancestor at depth 2" (id "/university/private")
    (Tree.ancestor_at_depth t lisa 2);
  Alcotest.check_raises "too deep" (Invalid_argument "Tree.ancestor_at_depth: bad depth")
    (fun () -> ignore (Tree.ancestor_at_depth t lisa 9))

let test_tree_levels_leaves () =
  let t = sample_tree () in
  Alcotest.(check (array int)) "level sizes" [| 1; 1; 2; 2; 4; 5 |] (Tree.level_sizes t);
  Alcotest.(check int) "max depth" 5 (Tree.max_depth t);
  Alcotest.(check int) "leaves" 6 (List.length (Tree.leaves t))

let test_builder_validation () =
  let b = Tree.Builder.create () in
  let child = Tree.Builder.add_child b Tree.root "a" in
  Alcotest.(check int) "ids dense" 1 child;
  Alcotest.check_raises "duplicate" (Invalid_argument "Tree.Builder.add_child: duplicate child")
    (fun () -> ignore (Tree.Builder.add_child b Tree.root "a"));
  Alcotest.check_raises "bad parent" (Invalid_argument "Tree.Builder.add_child: bad parent id")
    (fun () -> ignore (Tree.Builder.add_child b 99 "x"));
  let t = Tree.Builder.freeze b in
  Tree.check_invariants t;
  Alcotest.check_raises "sealed" (Invalid_argument "Tree.Builder.add_child: builder is sealed")
    (fun () -> ignore (Tree.Builder.add_child b Tree.root "z"))

(* ------------------------------------------------------------------ *)
(* Build                                                               *)
(* ------------------------------------------------------------------ *)

let test_balanced () =
  let t = Build.balanced ~arity:2 ~levels:5 in
  Tree.check_invariants t;
  Alcotest.(check int) "node count" 63 (Tree.size t);
  Alcotest.(check int) "count helper" 63 (Build.balanced_node_count ~arity:2 ~levels:5);
  Alcotest.(check int) "max depth" 5 (Tree.max_depth t);
  Tree.iter t (fun v ->
      let kids = Tree.num_children t v in
      if Tree.depth t v < 5 then Alcotest.(check int) "internal arity" 2 kids
      else Alcotest.(check int) "leaf" 0 kids)

let test_balanced_ternary_and_unary () =
  let t3 = Build.balanced ~arity:3 ~levels:3 in
  Alcotest.(check int) "ternary count" 40 (Tree.size t3);
  let t1 = Build.balanced ~arity:1 ~levels:4 in
  Alcotest.(check int) "unary chain" 5 (Tree.size t1);
  Alcotest.(check int) "unary depth" 4 (Tree.max_depth t1)

let test_coda_like_shape () =
  let t = Build.coda_like ~target:12_000 () in
  Tree.check_invariants t;
  Alcotest.(check int) "hits target" 12_000 (Tree.size t);
  Alcotest.(check bool) "deep enough" true (Tree.max_depth t >= 8);
  let leaves = List.length (Tree.leaves t) in
  Alcotest.(check bool) "mostly leaves" true (float_of_int leaves > 0.5 *. 12_000.0);
  (* Irregular fan-out: max far above mean. *)
  let max_fan = Tree.fold t ~init:0 ~f:(fun acc v -> max acc (Tree.num_children t v)) in
  Alcotest.(check bool) "heavy-tailed fanout" true (max_fan >= 20)

let test_coda_like_deterministic () =
  let a = Build.coda_like ~seed:7 ~target:2000 () in
  let b = Build.coda_like ~seed:7 ~target:2000 () in
  Alcotest.(check int) "same size" (Tree.size a) (Tree.size b);
  Tree.iter a (fun v ->
      Alcotest.(check string) "same names" (Tree.name_string a v) (Tree.name_string b v));
  let c = Build.coda_like ~seed:8 ~target:2000 () in
  let differs =
    Tree.fold a ~init:false ~f:(fun acc v ->
        acc || v >= Tree.size c || Tree.name_string a v <> Tree.name_string c v)
  in
  Alcotest.(check bool) "different seeds differ" true differs

let test_of_paths_dedup () =
  let t = Build.of_paths [ "/x/y"; "/x/y"; "/x/z" ] in
  Alcotest.(check int) "shared prefixes interned once" 4 (Tree.size t)

let prop_tree_distance_equals_name_distance =
  QCheck.Test.make ~name:"tree: interned distance = name-level distance" ~count:100
    QCheck.(pair (int_bound 62) (int_bound 62))
    (fun (a, b) ->
      let t = Build.balanced ~arity:2 ~levels:5 in
      Tree.distance t a b = Name.distance (Tree.name t a) (Tree.name t b))

let prop_route_path_adjacency =
  QCheck.Test.make ~name:"tree: route paths step by unit distance" ~count:100
    QCheck.(pair (int_bound 62) (int_bound 62))
    (fun (a, b) ->
      let t = Build.balanced ~arity:2 ~levels:5 in
      let path = Tree.route_path t a b in
      List.length path = Tree.distance t a b + 1
      &&
      let rec ok = function
        | x :: (y :: _ as rest) -> Tree.distance t x y = 1 && ok rest
        | _ -> true
      in
      ok path)

let () =
  Alcotest.run "terradir_namespace"
    [
      ( "name",
        [
          Alcotest.test_case "parse/print" `Quick test_name_parse_print;
          Alcotest.test_case "components" `Quick test_name_components;
          Alcotest.test_case "child/parent" `Quick test_name_child_parent;
          Alcotest.test_case "ancestors" `Quick test_name_ancestors;
          Alcotest.test_case "is_ancestor" `Quick test_name_is_ancestor;
          Alcotest.test_case "lca/distance" `Quick test_name_lca_distance;
        ] );
      ( "name-props",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          [ prop_name_roundtrip; prop_distance_metric; prop_ancestor_distance ] );
      ( "tree",
        [
          Alcotest.test_case "build/find" `Quick test_tree_build_find;
          Alcotest.test_case "structure" `Quick test_tree_structure;
          Alcotest.test_case "lca/distance/route" `Quick test_tree_lca_distance_route;
          Alcotest.test_case "ancestor ops" `Quick test_tree_ancestor_ops;
          Alcotest.test_case "levels/leaves" `Quick test_tree_levels_leaves;
          Alcotest.test_case "builder validation" `Quick test_builder_validation;
        ] );
      ( "build",
        [
          Alcotest.test_case "balanced binary" `Quick test_balanced;
          Alcotest.test_case "balanced other arities" `Quick test_balanced_ternary_and_unary;
          Alcotest.test_case "coda-like shape" `Quick test_coda_like_shape;
          Alcotest.test_case "coda-like deterministic" `Quick test_coda_like_deterministic;
          Alcotest.test_case "of_paths dedup" `Quick test_of_paths_dedup;
        ] );
      ( "tree-props",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          [ prop_tree_distance_equals_name_distance; prop_route_path_adjacency ] );
    ]
