(* Tests for the Bloom-filter digests (§3.6's inverse-mapping digests). *)

open Terradir_bloom

let test_no_false_negatives () =
  let b = Bloom.create ~expected:100 () in
  let elements = List.init 100 (fun i -> (i * 7919) + 3) in
  List.iter (Bloom.add b) elements;
  List.iter
    (fun x -> Alcotest.(check bool) (Printf.sprintf "mem %d" x) true (Bloom.mem b x))
    elements

let test_empty_filter_rejects () =
  let b = Bloom.create ~expected:10 () in
  for x = 0 to 100 do
    Alcotest.(check bool) "empty has no members" false (Bloom.mem b x)
  done

let test_false_positive_rate () =
  let n = 1000 in
  let b = Bloom.create ~expected:n () in
  for i = 0 to n - 1 do
    Bloom.add b i
  done;
  (* Probe values far outside the inserted range. *)
  let false_positives = ref 0 in
  let probes = 20_000 in
  for i = 0 to probes - 1 do
    if Bloom.mem b (1_000_000 + (i * 13)) then incr false_positives
  done;
  let rate = float_of_int !false_positives /. float_of_int probes in
  (* 10 bits/element, 7 hashes → ~1%; allow generous slack. *)
  Alcotest.(check bool) (Printf.sprintf "fp rate %.4f < 0.03" rate) true (rate < 0.03)

let test_bigger_filter_fewer_fps () =
  let n = 500 in
  let small = Bloom.create ~bits_per_element:4 ~hashes:3 ~expected:n () in
  let large = Bloom.create ~bits_per_element:16 ~hashes:10 ~expected:n () in
  for i = 0 to n - 1 do
    Bloom.add small i;
    Bloom.add large i
  done;
  Alcotest.(check bool) "predicted fp ordering" true
    (Bloom.false_positive_rate large < Bloom.false_positive_rate small)

let test_cardinality_estimate () =
  let n = 2000 in
  let b = Bloom.create ~expected:n () in
  for i = 0 to n - 1 do
    Bloom.add b (i * 31)
  done;
  let est = Bloom.cardinality_estimate b in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f within 10%% of %d" est n)
    true
    (abs_float (est -. float_of_int n) < 0.1 *. float_of_int n)

let test_fill_ratio_monotone () =
  let b = Bloom.create ~expected:100 () in
  let before = Bloom.fill_ratio b in
  Bloom.add b 42;
  let after = Bloom.fill_ratio b in
  Alcotest.(check bool) "fill grows" true (after > before);
  Alcotest.(check (float 1e-9)) "starts empty" 0.0 before

let test_reset () =
  let b = Bloom.create ~expected:10 () in
  Bloom.add b 1;
  Bloom.reset b;
  Alcotest.(check bool) "reset clears" false (Bloom.mem b 1);
  Alcotest.(check (float 1e-9)) "fill zero" 0.0 (Bloom.fill_ratio b)

let test_copy_independent () =
  let a = Bloom.create ~expected:10 () in
  Bloom.add a 1;
  let b = Bloom.copy a in
  Alcotest.(check bool) "copies equal" true (Bloom.equal a b);
  Bloom.add b 2;
  Alcotest.(check bool) "copy diverges" false (Bloom.equal a b);
  Alcotest.(check bool) "original unaffected" false (Bloom.mem a 2)

let test_mem_hashed_agrees () =
  let b = Bloom.create ~expected:50 () in
  List.iter (Bloom.add b) (List.init 50 (fun i -> i * 3));
  for x = 0 to 300 do
    Alcotest.(check bool)
      (Printf.sprintf "mem_hashed %d" x)
      (Bloom.mem b x)
      (Bloom.mem_hashed b (Bloom.hash x))
  done

let test_of_list () =
  let b = Bloom.of_list [ 5; 10; 15 ] in
  List.iter (fun x -> Alcotest.(check bool) "member" true (Bloom.mem b x)) [ 5; 10; 15 ];
  let empty = Bloom.of_list [] in
  Alcotest.(check bool) "empty list filter works" false (Bloom.mem empty 5);
  Alcotest.(check bool) "minimal size" true (Bloom.num_bits empty >= 64)

let test_create_validation () =
  Alcotest.check_raises "zero expected"
    (Invalid_argument "Bloom.create: expected must be positive") (fun () ->
      ignore (Bloom.create ~expected:0 ()));
  Alcotest.check_raises "zero hashes"
    (Invalid_argument "Bloom.create: hashes must be positive") (fun () ->
      ignore (Bloom.create ~hashes:0 ~expected:1 ()))

let prop_no_false_negatives =
  QCheck.Test.make ~name:"bloom: added elements are always members" ~count:300
    QCheck.(small_list int)
    (fun elements ->
      let b = Bloom.of_list elements in
      List.for_all (Bloom.mem b) elements)

let prop_union_semantics_via_adds =
  QCheck.Test.make ~name:"bloom: membership is monotone under adds" ~count:200
    QCheck.(pair (small_list (int_bound 1000)) (small_list (int_bound 1000)))
    (fun (xs, ys) ->
      let b = Bloom.create ~expected:(max 1 (List.length xs + List.length ys)) () in
      List.iter (Bloom.add b) xs;
      let members_before = List.filter (Bloom.mem b) (xs @ ys) in
      List.iter (Bloom.add b) ys;
      List.for_all (Bloom.mem b) members_before)

let () =
  Alcotest.run "terradir_bloom"
    [
      ( "bloom",
        [
          Alcotest.test_case "no false negatives" `Quick test_no_false_negatives;
          Alcotest.test_case "empty rejects" `Quick test_empty_filter_rejects;
          Alcotest.test_case "false positive rate" `Quick test_false_positive_rate;
          Alcotest.test_case "sizing reduces fps" `Quick test_bigger_filter_fewer_fps;
          Alcotest.test_case "cardinality estimate" `Quick test_cardinality_estimate;
          Alcotest.test_case "fill ratio" `Quick test_fill_ratio_monotone;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "mem_hashed" `Quick test_mem_hashed_agrees;
          Alcotest.test_case "of_list" `Quick test_of_list;
          Alcotest.test_case "validation" `Quick test_create_validation;
        ] );
      ( "bloom-props",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          [ prop_no_false_negatives; prop_union_semantics_via_adds ] );
    ]
