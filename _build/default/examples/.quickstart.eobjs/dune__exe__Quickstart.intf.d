examples/quickstart.mli:
