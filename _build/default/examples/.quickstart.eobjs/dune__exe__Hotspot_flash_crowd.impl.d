examples/hotspot_flash_crowd.ml: Array Build Cluster Config List Metrics Printf Scenario Stats Stream Terradir Terradir_namespace Terradir_util Terradir_workload Timeseries
