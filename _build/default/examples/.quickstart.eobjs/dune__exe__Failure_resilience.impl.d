examples/failure_resilience.ml: Array Build Cluster Config Fun List Metrics Printf Scenario Server Stream Terradir Terradir_namespace Terradir_sim Terradir_util Terradir_workload Timeseries
