examples/filesystem_directory.ml: Array Build Cluster Config List Metrics Printf Scenario Search Server Stats Stream Terradir Terradir_namespace Terradir_util Terradir_workload Trace Tree
