examples/quickstart.ml: Array Build Cluster Config List Metrics Printf Scenario Server Stream String Tablefmt Terradir Terradir_namespace Terradir_util Terradir_workload Tree
