examples/failure_resilience.mli:
