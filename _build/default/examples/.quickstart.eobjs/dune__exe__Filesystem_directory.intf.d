examples/filesystem_directory.mli:
