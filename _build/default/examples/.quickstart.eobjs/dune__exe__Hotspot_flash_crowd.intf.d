examples/hotspot_flash_crowd.mli:
