(* Tests for node maps (§3.7 policies). *)

open Terradir_util
open Terradir

let entry ?(owner = false) server stamp = { Node_map.server; is_owner = owner; stamp }

let servers_of m = List.sort compare (Node_map.servers m)

let test_empty_singleton () =
  Alcotest.(check bool) "empty" true (Node_map.is_empty Node_map.empty);
  let m = Node_map.singleton ~is_owner:true ~server:7 ~stamp:1.0 () in
  Alcotest.(check int) "size" 1 (Node_map.size m);
  Alcotest.(check (option int)) "owner" (Some 7) (Node_map.owner m);
  Alcotest.(check bool) "mem" true (Node_map.mem m 7);
  Alcotest.(check bool) "not mem" false (Node_map.mem m 8)

let test_dedup_newest_wins () =
  let m = Node_map.of_entries ~max:4 [ entry 1 5.0; entry 1 9.0; entry ~owner:true 1 2.0 ] in
  Alcotest.(check int) "single entry" 1 (Node_map.size m);
  (match Node_map.entries m with
  | [ e ] ->
    Alcotest.(check (float 1e-9)) "newest stamp" 9.0 e.Node_map.stamp;
    Alcotest.(check bool) "owner flag sticky" true e.Node_map.is_owner
  | _ -> Alcotest.fail "expected one entry");
  Alcotest.(check (option int)) "owner found" (Some 1) (Node_map.owner m)

let test_truncation_policy () =
  (* owner always kept; then newest *)
  let m =
    Node_map.of_entries ~max:3
      [ entry 1 1.0; entry 2 2.0; entry 3 3.0; entry 4 4.0; entry ~owner:true 5 0.5 ]
  in
  Alcotest.(check int) "bounded" 3 (Node_map.size m);
  Alcotest.(check bool) "owner kept despite oldest stamp" true (Node_map.mem m 5);
  Alcotest.(check bool) "newest kept" true (Node_map.mem m 4);
  Alcotest.(check bool) "oldest dropped" false (Node_map.mem m 1)

let test_entries_ordering () =
  let m =
    Node_map.of_entries ~max:4 [ entry 2 2.0; entry ~owner:true 9 1.0; entry 3 3.0 ]
  in
  match Node_map.entries m with
  | first :: rest ->
    Alcotest.(check bool) "owner first" true first.Node_map.is_owner;
    Alcotest.(check (list int)) "then newest-first" [ 3; 2 ]
      (List.map (fun e -> e.Node_map.server) rest)
  | [] -> Alcotest.fail "unexpected empty"

let test_add_remove () =
  let m = Node_map.singleton ~is_owner:true ~server:1 ~stamp:1.0 () in
  let m = Node_map.add ~max:2 m (entry 2 2.0) in
  let m = Node_map.add ~max:2 m (entry 3 3.0) in
  Alcotest.(check int) "bounded" 2 (Node_map.size m);
  Alcotest.(check bool) "owner survives" true (Node_map.mem m 1);
  let m = Node_map.remove m 1 in
  Alcotest.(check (option int)) "owner removable explicitly" None (Node_map.owner m)

let test_merge_owner_and_bound () =
  let rng = Splitmix.create 3 in
  let a = Node_map.of_entries ~max:4 [ entry ~owner:true 1 1.0; entry 2 5.0 ] in
  let b = Node_map.of_entries ~max:4 [ entry 3 6.0; entry 4 7.0; entry 5 8.0 ] in
  let m = Node_map.merge ~max:4 rng a b in
  Alcotest.(check int) "bounded" 4 (Node_map.size m);
  Alcotest.(check bool) "owner kept" true (Node_map.mem m 1);
  Alcotest.(check bool) "newest non-owner kept" true (Node_map.mem m 5)

let test_merge_subsumed_physical_reuse () =
  let rng = Splitmix.create 3 in
  let a = Node_map.of_entries ~max:4 [ entry ~owner:true 1 1.0; entry 2 5.0 ] in
  Alcotest.(check bool) "merge with itself returns same value" true
    (Node_map.merge ~max:4 rng a a == a);
  let older = Node_map.of_entries ~max:4 [ entry 2 3.0 ] in
  Alcotest.(check bool) "merge with older subset reuses" true
    (Node_map.merge ~max:4 rng a older == a)

let test_merge_combines_fresh_info () =
  let rng = Splitmix.create 3 in
  let a = Node_map.of_entries ~max:4 [ entry 2 1.0 ] in
  let b = Node_map.of_entries ~max:4 [ entry 2 9.0 ] in
  let m = Node_map.merge ~max:4 rng a b in
  match Node_map.entries m with
  | [ e ] -> Alcotest.(check (float 1e-9)) "stamp refreshed" 9.0 e.Node_map.stamp
  | _ -> Alcotest.fail "expected single entry"

let test_filter_owner_exempt () =
  let m = Node_map.of_entries ~max:4 [ entry ~owner:true 1 1.0; entry 2 2.0; entry 3 3.0 ] in
  let m' = Node_map.filter m ~f:(fun server -> server <> 2) in
  Alcotest.(check (list int)) "2 pruned" [ 1; 3 ] (servers_of m');
  let m'' = Node_map.filter m ~f:(fun _ -> false) in
  Alcotest.(check (list int)) "owner survives filter-all" [ 1 ] (servers_of m'')

let test_random_server () =
  let rng = Splitmix.create 4 in
  let m = Node_map.of_entries ~max:4 [ entry 1 1.0; entry 2 2.0 ] in
  for _ = 1 to 50 do
    match Node_map.random_server ~exclude:1 m rng with
    | Some s -> Alcotest.(check int) "exclusion respected" 2 s
    | None -> Alcotest.fail "expected a server"
  done;
  Alcotest.(check (option int)) "all excluded" None
    (Node_map.random_server ~exclude:1 (Node_map.of_entries ~max:4 [ entry 1 1.0 ]) rng);
  Alcotest.(check (option int)) "empty map" None (Node_map.random_server Node_map.empty rng)

let test_validation () =
  Alcotest.check_raises "of_entries max" (Invalid_argument "Node_map.of_entries: max must be >= 1")
    (fun () -> ignore (Node_map.of_entries ~max:0 []));
  Alcotest.check_raises "merge max" (Invalid_argument "Node_map.merge: max must be >= 1")
    (fun () -> ignore (Node_map.merge ~max:0 (Splitmix.create 1) Node_map.empty Node_map.empty))

let arb_entries =
  QCheck.(
    small_list
      (map
         (fun (s, o, st) -> { Node_map.server = s; is_owner = o; stamp = float_of_int st })
         (triple (int_bound 10) bool (int_bound 100))))

let prop_no_duplicate_servers =
  QCheck.Test.make ~name:"node_map: no duplicate servers after of_entries" ~count:300 arb_entries
    (fun entries ->
      let m = Node_map.of_entries ~max:4 entries in
      let ss = Node_map.servers m in
      List.length ss = List.length (List.sort_uniq compare ss))

let prop_merge_bounded_and_owner_stable =
  QCheck.Test.make ~name:"node_map: merge is bounded and keeps some owner when one exists"
    ~count:300
    QCheck.(pair arb_entries arb_entries)
    (fun (ea, eb) ->
      let rng = Splitmix.create 17 in
      let a = Node_map.of_entries ~max:4 ea and b = Node_map.of_entries ~max:4 eb in
      let m = Node_map.merge ~max:4 rng a b in
      Node_map.size m <= 4
      && (Node_map.owner a = None && Node_map.owner b = None) = (Node_map.owner m = None))

let prop_merge_servers_from_inputs =
  QCheck.Test.make ~name:"node_map: merged entries come from the inputs" ~count:300
    QCheck.(pair arb_entries arb_entries)
    (fun (ea, eb) ->
      let rng = Splitmix.create 23 in
      let a = Node_map.of_entries ~max:4 ea and b = Node_map.of_entries ~max:4 eb in
      let m = Node_map.merge ~max:4 rng a b in
      List.for_all (fun s -> Node_map.mem a s || Node_map.mem b s) (Node_map.servers m))

(* ------------------------------------------------------------------ *)
(* Old-vs-new equivalence                                              *)
(* ------------------------------------------------------------------ *)

(* Reference reimplementation of the pre-optimization sort-based Node_map
   on plain entry lists.  The current single-pass insertion code must
   agree bit-for-bit — including rng consumption in [merge], since the
   random fill feeds back into simulation trajectories. *)
module Reference = struct
  open Node_map

  let order (a : entry) (b : entry) =
    match (b.is_owner, a.is_owner) with
    | true, false -> 1
    | false, true -> -1
    | _ -> (
      match compare (b.stamp : float) a.stamp with
      | 0 -> compare a.server b.server
      | c -> c)

  let dedup entries =
    let combine x e =
      { server = e.server; is_owner = x.is_owner || e.is_owner; stamp = Float.max x.stamp e.stamp }
    in
    let rec add acc e =
      match acc with
      | [] -> [ e ]
      | x :: rest -> if x.server = e.server then combine x e :: rest else x :: add rest e
    in
    List.fold_left add [] entries

  let truncate ~max entries =
    let sorted = List.sort order entries in
    List.filteri (fun i _ -> i < max) sorted

  let of_entries ~max entries = truncate ~max (dedup entries)

  let rec draw rng pool want acc =
    if want <= 0 then acc
    else
      match pool with
      | [] -> acc
      | _ ->
        let i = Splitmix.int rng (List.length pool) in
        let rec split k seen = function
          | [] -> assert false
          | e :: rest ->
            if k = 0 then (e, List.rev_append seen rest) else split (k - 1) (e :: seen) rest
        in
        let e, rest = split i [] pool in
        draw rng rest (want - 1) (e :: acc)

  let subsumes a b =
    List.for_all
      (fun (eb : entry) ->
        List.exists
          (fun (ea : entry) ->
            ea.server = eb.server && ea.stamp >= eb.stamp && (ea.is_owner || not eb.is_owner))
          a)
      b

  let merge ~max rng a b =
    if subsumes a b && List.length a <= max then a
    else begin
      let all = dedup (List.rev_append a b) in
      let owners, rest = List.partition (fun (e : entry) -> e.is_owner) all in
      let owners = truncate ~max owners in
      let slots = max - List.length owners in
      if slots <= 0 then owners
      else begin
        let rest = List.sort order rest in
        let keep_newest = (slots + 1) / 2 in
        let newest = List.filteri (fun i _ -> i < keep_newest) rest in
        let remainder = List.filteri (fun i _ -> i >= keep_newest) rest in
        let filled = draw rng remainder (slots - List.length newest) [] in
        List.sort order (owners @ newest @ filled)
      end
    end
end

let prop_of_entries_matches_reference =
  QCheck.Test.make ~name:"node_map: single-pass of_entries == sort-based reference" ~count:500
    QCheck.(pair (int_range 1 6) arb_entries)
    (fun (max, entries) ->
      Node_map.entries (Node_map.of_entries ~max entries) = Reference.of_entries ~max entries)

let prop_merge_matches_reference =
  QCheck.Test.make
    ~name:"node_map: merge == sort-based reference (result and rng consumption)" ~count:500
    QCheck.(quad (int_range 1 6) arb_entries arb_entries small_nat)
    (fun (max, ea, eb, seed) ->
      let a = Node_map.of_entries ~max ea and b = Node_map.of_entries ~max eb in
      let ra = Reference.of_entries ~max ea and rb = Reference.of_entries ~max eb in
      let rng = Splitmix.create seed and ref_rng = Splitmix.create seed in
      let m = Node_map.merge ~max rng a b in
      let rm = Reference.merge ~max ref_rng ra rb in
      Node_map.entries m = rm
      (* both sides drew the same number of randoms iff the streams agree *)
      && Splitmix.int rng 1_000_000 = Splitmix.int ref_rng 1_000_000)

let () =
  Alcotest.run "terradir_node_map"
    [
      ( "node_map",
        [
          Alcotest.test_case "empty/singleton" `Quick test_empty_singleton;
          Alcotest.test_case "dedup newest wins" `Quick test_dedup_newest_wins;
          Alcotest.test_case "truncation policy" `Quick test_truncation_policy;
          Alcotest.test_case "entries ordering" `Quick test_entries_ordering;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "merge owner+bound" `Quick test_merge_owner_and_bound;
          Alcotest.test_case "merge subsumed reuse" `Quick test_merge_subsumed_physical_reuse;
          Alcotest.test_case "merge freshness" `Quick test_merge_combines_fresh_info;
          Alcotest.test_case "filter owner exempt" `Quick test_filter_owner_exempt;
          Alcotest.test_case "random server" `Quick test_random_server;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "node_map-props",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          [
            prop_no_duplicate_servers;
            prop_merge_bounded_and_owner_stable;
            prop_merge_servers_from_inputs;
            prop_of_entries_matches_reference;
            prop_merge_matches_reference;
          ] );
    ]
