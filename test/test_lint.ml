(* Unit tests for the determinism lint: each rule fires on a minimal
   offending snippet, clean idioms stay silent, and the suppression
   machinery (inline annotations, justifications, staleness) behaves. *)

module Lint = Terradir_lint.Lint

let rules source =
  Lint.lint_source ~path:"snippet.ml" ~source
  |> List.map (fun f -> f.Lint.rule)
  |> List.sort String.compare

let check name expected source = Alcotest.(check (list string)) name expected (rules source)

let test_hashtbl_order () =
  check "bare iter flagged" [ "hashtbl-order" ] "let f h = Hashtbl.iter (fun _ _ -> ()) h";
  check "bare fold flagged" [ "hashtbl-order" ] "let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []";
  check "to_seq flagged" [ "hashtbl-order" ] "let f h = Hashtbl.to_seq_keys h";
  check "sorted fold clean" []
    "let f h = List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) h [])";
  check "piped into sort clean" []
    "let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h [] |> List.sort Int.compare";
  check "sort applied with @@ clean" []
    "let f h = List.sort Int.compare @@ Hashtbl.fold (fun k _ acc -> k :: acc) h []"

let test_wall_clock () =
  check "Sys.time flagged" [ "wall-clock" ] "let t () = Sys.time ()";
  check "gettimeofday flagged" [ "wall-clock" ] "let t () = Unix.gettimeofday ()"

let test_global_rng () =
  check "Random.int flagged" [ "global-rng" ] "let r () = Random.int 10";
  check "Random.State flagged" [ "global-rng" ] "let r s = Random.State.int s 10";
  Alcotest.(check (list string))
    "splitmix.ml exempt" []
    (Lint.lint_source ~path:"lib/util/splitmix.ml" ~source:"let r () = Random.int 10"
    |> List.map (fun f -> f.Lint.rule))

let test_poly_compare () =
  check "bare compare flagged" [ "poly-compare" ] "let f xs = List.sort compare xs";
  check "Stdlib.compare flagged" [ "poly-compare" ] "let c a b = Stdlib.compare a b";
  check "equality on lambda flagged" [ "poly-compare" ] "let b f = f = fun x -> x + 1";
  check "Int.compare clean" [] "let f xs = List.sort Int.compare xs"

let test_marshal () =
  check "Marshal flagged" [ "marshal" ] "let s x = Marshal.to_string x []"

let test_annotations () =
  check "justified annotation suppresses" []
    "(* lint: ordered commutative sum *)\nlet f h = Hashtbl.fold (fun _ v acc -> acc + v) h 0";
  check "same-line annotation suppresses" []
    "let f h = Hashtbl.fold (fun _ v acc -> acc + v) h 0 (* lint: hashtbl-order commutative sum *)";
  check "unjustified annotation: finding survives plus bad-annotation"
    [ "bad-annotation"; "hashtbl-order" ]
    "(* lint: ordered *)\nlet f h = Hashtbl.fold (fun _ v acc -> acc + v) h 0";
  check "stale annotation flagged" [ "unused-suppression" ]
    "(* lint: ordered nothing here needs it *)\nlet f x = x + 1";
  check "annotation scoped to its own rule"
    [ "unused-suppression"; "wall-clock" ]
    "(* lint: ordered wrong rule *)\nlet t () = Sys.time ()"

let test_parse_error () =
  check "unparsable input reported" [ "parse-error" ] "let let let"

let test_finding_positions () =
  match Lint.lint_source ~path:"pos.ml" ~source:"\nlet t () = Sys.time ()" with
  | [ f ] ->
    Alcotest.(check string) "file" "pos.ml" f.Lint.file;
    Alcotest.(check int) "line" 2 f.Lint.line;
    Alcotest.(check bool) "column set" true (f.Lint.col > 0)
  | fs -> Alcotest.fail (Printf.sprintf "expected one finding, got %d" (List.length fs))

let () =
  Alcotest.run "terradir_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "hashtbl order" `Quick test_hashtbl_order;
          Alcotest.test_case "wall clock" `Quick test_wall_clock;
          Alcotest.test_case "global rng" `Quick test_global_rng;
          Alcotest.test_case "poly compare" `Quick test_poly_compare;
          Alcotest.test_case "marshal" `Quick test_marshal;
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "positions" `Quick test_finding_positions;
        ] );
      ("suppressions", [ Alcotest.test_case "annotations" `Quick test_annotations ]);
    ]
