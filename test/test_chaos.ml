(* Chaos scenario engine: determinism across engine shard counts, the
   acceptance trajectory (availability dips under fault, reconverges
   after heal), graceful leaves under active partitions, and the
   resilience-report schema contract.  The whole file runs under
   TERRADIR_AUDIT=1 (test/dune), so every Cluster.run_until inside
   Chaos.run ends with a full invariant pass. *)

open Terradir
open Terradir_namespace
open Terradir_workload
module Chaos = Terradir_chaos
module Report_check = Terradir_report_check.Report_check

let check_equal label a b =
  if not (String.equal a b) then begin
    let first_diff =
      let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
      let rec go i = function
        | x :: xs, y :: ys -> if String.equal x y then go (i + 1) (xs, ys) else (i, x, y)
        | x :: _, [] -> (i, x, "<missing>")
        | [], y :: _ -> (i, "<missing>", y)
        | [], [] -> (i, "", "")
      in
      go 1 (la, lb)
    in
    let line, x, y = first_diff in
    Alcotest.failf "%s: first difference at line %d:\n  a: %s\n  b: %s" label line x y
  end

(* The engine shard count is report metadata; mask it so the rest of the
   document can be compared byte-for-byte across K. *)
let masked_json r = Chaos.Report.to_json { r with Chaos.Report.engine_domains = 0 }

let campaign_report ~domains () =
  let campaign =
    match Chaos.Campaigns.find "partition-flash-crowd" with
    | Some c -> c
    | None -> Alcotest.fail "canned campaign partition-flash-crowd not registered"
  in
  let config = { Config.default with Config.engine_domains = domains } in
  Chaos.Campaigns.run_campaign ~config campaign ~servers:32 ~rate:150.0 ~seed:7

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let test_campaign_k_byte_identical () =
  let k1 = campaign_report ~domains:1 () in
  let k4 = campaign_report ~domains:4 () in
  check_equal "campaign JSON K=1 vs K=4" (masked_json k1) (masked_json k4);
  check_equal "campaign windows CSV K=1 vs K=4" (Chaos.Report.windows_csv k1)
    (Chaos.Report.windows_csv k4);
  (* repeated same-seed run: bit-for-bit reproducible *)
  let again = campaign_report ~domains:1 () in
  check_equal "campaign JSON rerun" (Chaos.Report.to_json k1) (Chaos.Report.to_json again)

let test_kill_fraction_deterministic () =
  let dead_set salt =
    let tree = Build.balanced ~arity:2 ~levels:6 in
    let config = { Config.default with Config.num_servers = 24; seed = 9 } in
    let cluster = Cluster.create ~config ~tree () in
    let timeline =
      Chaos.Timeline.make [ (2.0, Chaos.Action.Kill_fraction { fraction = 0.33; salt }) ]
    in
    ignore
      (Chaos.Chaos.run cluster
         ~workload:(Stream.unif ~rate:60.0 ~duration:6.0)
         ~workload_seed:4 ~timeline ()
        : Chaos.Report.t);
    List.filter (fun i -> not (Cluster.server cluster i).Server.alive) (List.init 24 Fun.id)
  in
  let a = dead_set 17 in
  Alcotest.(check (list int)) "same salt, same victims" a (dead_set 17);
  Alcotest.(check int) "fraction honored" 7 (List.length a);
  Alcotest.(check bool) "different salt, different victims" true (a <> dead_set 18)

let test_kill_fraction_spares_last_server () =
  let tree = Build.balanced ~arity:2 ~levels:4 in
  let config = { Config.default with Config.num_servers = 4; seed = 3 } in
  let cluster = Cluster.create ~config ~tree () in
  let timeline =
    Chaos.Timeline.make
      [
        (1.0, Chaos.Action.Kill_fraction { fraction = 0.9; salt = 1 });
        (2.0, Chaos.Action.Kill_fraction { fraction = 0.9; salt = 2 });
      ]
  in
  ignore
    (Chaos.Chaos.run cluster
       ~workload:(Stream.unif ~rate:20.0 ~duration:4.0)
       ~workload_seed:5 ~timeline ()
      : Chaos.Report.t);
  Alcotest.(check bool) "at least one survivor" true (Cluster.alive_servers cluster >= 1)

(* ------------------------------------------------------------------ *)
(* Acceptance trajectory                                               *)
(* ------------------------------------------------------------------ *)

let test_availability_dips_and_reconverges () =
  let r = campaign_report ~domains:1 () in
  let baseline =
    match r.Chaos.Report.baseline with
    | Some b -> b
    | None -> Alcotest.fail "campaign leaves room for a baseline"
  in
  Alcotest.(check bool) "healthy baseline" true (baseline.Chaos.Report.b_availability > 0.9);
  let floor = Chaos.Report.min_fault_availability r in
  Alcotest.(check bool)
    (Printf.sprintf "availability dips under the fault (%.4f)" floor)
    true
    (floor < baseline.Chaos.Report.b_availability -. r.Chaos.Report.slo.Chaos.Report.availability_drop);
  (match Chaos.Report.mean_time_to_reconvergence r with
  | None -> Alcotest.fail "heal reconverges within the run"
  | Some ttr ->
    Alcotest.(check bool)
      (Printf.sprintf "finite positive time-to-reconvergence (%.1f s)" ttr)
      true
      (Float.is_finite ttr && ttr > 0.0));
  (* the recovery bookkeeping matches the event log *)
  let recovery_events =
    List.filter (fun e -> e.Chaos.Report.e_recovery) r.Chaos.Report.events
  in
  Alcotest.(check int) "one recovery clock per recovery action"
    (List.length recovery_events)
    (List.length r.Chaos.Report.recoveries)

(* ------------------------------------------------------------------ *)
(* Graceful leave under an active partition, mid-flight queries        *)
(* ------------------------------------------------------------------ *)

let leave_under_partition_report ~domains () =
  let tree = Build.balanced ~arity:2 ~levels:6 in
  let config =
    {
      Config.default with
      Config.num_servers = 24;
      seed = 13;
      engine_domains = domains;
      rpc_timeout = 0.5;
      max_retries = 3;
      retry_backoff = 2.0;
    }
  in
  let cluster = Cluster.create ~config ~tree () in
  let minority = List.init 6 Fun.id in
  let rest = List.init 18 (fun i -> i + 6) in
  let timeline =
    Chaos.Timeline.make
      [
        (4.0, Chaos.Action.Partition { tag = "rack"; a = minority; b = rest; directed = false });
        (* leaves fire while the partition is live and queries are
           mid-flight: handoffs toward the far side are blocked, the
           leaver still dies cleanly *)
        (6.0, Chaos.Action.Graceful_leave [ 2; 3 ]);
        (7.0, Chaos.Action.Graceful_leave [ 10 ]);
        (10.0, Chaos.Action.Heal "rack");
        (13.0, Chaos.Action.Revive [ 2; 3; 10 ]);
      ]
  in
  let report =
    Chaos.Chaos.run ~window:2.0 ~scenario:"leave-under-partition" ~seed:13 cluster
      ~workload:(Stream.unif ~rate:200.0 ~duration:18.0)
      ~workload_seed:31 ~timeline ()
  in
  (cluster, report)

let test_graceful_leave_under_partition () =
  let cluster, r = leave_under_partition_report ~domains:1 () in
  (* audit ran at every run_until; re-check explicitly at the end state *)
  Cluster.check_invariants cluster;
  Alcotest.(check int) "everyone revived" 24 (Cluster.alive_servers cluster);
  (* the three leavers were actually down between leave and revive *)
  let down =
    List.filter
      (fun e -> String.equal e.Chaos.Report.e_kind "graceful_leave")
      r.Chaos.Report.events
  in
  Alcotest.(check int) "both leave actions fired" 2 (List.length down);
  (* queries were mid-flight throughout: every window carried traffic *)
  List.iter
    (fun w ->
      if w.Chaos.Report.w_end <= 18.0 then
        Alcotest.(check bool)
          (Printf.sprintf "window at %.0f s carried traffic" w.Chaos.Report.w_start)
          true
          (w.Chaos.Report.issued > 0))
    r.Chaos.Report.windows;
  (* nothing is left permanently unanswered once timers are armed *)
  Alcotest.(check int) "no unresolved backlog" 0 r.Chaos.Report.totals.Chaos.Report.unresolved

let test_graceful_leave_k_byte_identical () =
  let _, k1 = leave_under_partition_report ~domains:1 () in
  let _, k4 = leave_under_partition_report ~domains:4 () in
  check_equal "leave-under-partition JSON K=1 vs K=4" (masked_json k1) (masked_json k4)

(* ------------------------------------------------------------------ *)
(* Timeline validation                                                 *)
(* ------------------------------------------------------------------ *)

let test_timeline_validation () =
  let tree = Build.balanced ~arity:2 ~levels:5 in
  let config = { Config.default with Config.num_servers = 8; seed = 1 } in
  let mk () = Cluster.create ~config ~tree () in
  let run_with timeline =
    ignore
      (Chaos.Chaos.run (mk ()) ~workload:(Stream.unif ~rate:10.0 ~duration:2.0) ~workload_seed:1
         ~timeline ()
        : Chaos.Report.t)
  in
  (* the timeline is built inside the thunk: Timeline.make validates
     times itself, Chaos.run validates the actions against the cluster *)
  let raises name mk_timeline =
    match run_with (mk_timeline ()) with
    | () -> Alcotest.failf "%s: Invalid_argument expected" name
    | exception Invalid_argument _ -> ()
  in
  raises "out-of-range kill" (fun () -> Chaos.Timeline.make [ (1.0, Chaos.Action.Kill [ 8 ]) ]);
  raises "heal of unknown tag" (fun () ->
      Chaos.Timeline.make [ (1.0, Chaos.Action.Heal "nope") ]);
  raises "jitter above the configured ceiling" (fun () ->
      Chaos.Timeline.make [ (1.0, Chaos.Action.Set_jitter 0.5) ]);
  raises "fraction of one" (fun () ->
      Chaos.Timeline.make [ (1.0, Chaos.Action.Kill_fraction { fraction = 1.0; salt = 0 }) ]);
  raises "negative time" (fun () -> Chaos.Timeline.make [ (-1.0, Chaos.Action.Heal_all) ]);
  (* a valid timeline with every remaining action kind goes through *)
  run_with
    (Chaos.Timeline.make
       [
         (0.5, Chaos.Action.Set_loss 0.01);
         (1.0, Chaos.Action.Rate_shift 2.0);
         (1.5, Chaos.Action.Set_loss 0.0);
       ])

(* ------------------------------------------------------------------ *)
(* Report schema contract                                              *)
(* ------------------------------------------------------------------ *)

let test_report_check_accepts_and_rejects () =
  let r = campaign_report ~domains:1 () in
  let json = Chaos.Report.to_json r in
  (match Report_check.validate json with
  | Ok stats ->
    Alcotest.(check int) "validator sees every window" (List.length r.Chaos.Report.windows)
      stats.Report_check.windows;
    Alcotest.(check int) "validator sees every event" (List.length r.Chaos.Report.events)
      stats.Report_check.events
  | Error errs ->
    Alcotest.failf "fresh report rejected: %s" (String.concat "; " errs));
  let replace ~needle ~by s =
    let nl = String.length needle in
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    while !i <= String.length s - nl do
      if String.equal (String.sub s !i nl) needle then begin
        Buffer.add_string buf by;
        i := !i + nl
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.add_string buf (String.sub s !i (String.length s - !i));
    Buffer.contents buf
  in
  let corrupt needle replacement =
    match Report_check.validate (replace ~needle ~by:replacement json) with
    | Ok _ -> Alcotest.failf "corruption %S -> %S went undetected" needle replacement
    | Error _ -> ()
  in
  corrupt "\"version\": 1" "\"version\": 2";
  corrupt "\"schema\": \"terradir-resilience-report\"" "\"schema\": \"something-else\""

(* Corrupting numeric consistency (totals vs window sums) must also be
   caught; do it structurally rather than by string surgery. *)
let test_report_check_totals_consistency () =
  let r = campaign_report ~domains:1 () in
  let t = r.Chaos.Report.totals in
  let broken =
    { r with Chaos.Report.totals = { t with Chaos.Report.injected = t.Chaos.Report.injected + 1 } }
  in
  match Report_check.validate (Chaos.Report.to_json broken) with
  | Ok _ -> Alcotest.fail "inconsistent totals went undetected"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* The resilience experiment (tiny scale)                              *)
(* ------------------------------------------------------------------ *)

let test_resilience_experiment_smoke () =
  let module R = Terradir_experiments.Resilience in
  let r = R.run ~scale:0.002 ~seed:5 () in
  Alcotest.(check int) "campaigns x r_facts" 12 (List.length r.R.rows);
  List.iter
    (fun (row : R.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s r=%.1f availability in range" row.R.campaign row.R.r_fact)
        true
        (row.R.min_availability >= 0.0 && row.R.min_availability <= 1.0))
    r.R.rows

let () =
  Alcotest.run "terradir_chaos"
    [
      ( "determinism",
        [
          Alcotest.test_case "campaign report byte-identical for K in {1,4}" `Slow
            test_campaign_k_byte_identical;
          Alcotest.test_case "kill_fraction seeded pick" `Slow test_kill_fraction_deterministic;
          Alcotest.test_case "kill_fraction spares a survivor" `Quick
            test_kill_fraction_spares_last_server;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "availability dips, then reconverges" `Slow
            test_availability_dips_and_reconverges;
          Alcotest.test_case "graceful leave under an active partition" `Slow
            test_graceful_leave_under_partition;
          Alcotest.test_case "leave-under-partition byte-identical for K in {1,4}" `Slow
            test_graceful_leave_k_byte_identical;
        ] );
      ( "contract",
        [
          Alcotest.test_case "timeline validation" `Quick test_timeline_validation;
          Alcotest.test_case "report_check accepts fresh, rejects corrupt" `Slow
            test_report_check_accepts_and_rejects;
          Alcotest.test_case "report_check catches inconsistent totals" `Slow
            test_report_check_totals_consistency;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "resilience experiment smoke" `Slow test_resilience_experiment_smoke;
        ] );
    ]
