(* Tests for the discrete-event engine and the random-variate samplers. *)

open Terradir_util
open Terradir_sim

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:3.0 (fun () -> log := 3 :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:2.0 (fun () -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "timestamp order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.0 (Engine.now e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "scheduling order on ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:1.0 (fun () ->
      log := "a" :: !log;
      Engine.schedule e ~delay:0.5 (fun () -> log := "c" :: !log));
  Engine.schedule e ~delay:1.2 (fun () -> log := "b" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "handler-scheduled events interleave" [ "a"; "b"; "c" ]
    (List.rev !log)

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref [] in
  List.iter (fun d -> Engine.schedule e ~delay:d (fun () -> fired := d :: !fired)) [ 1.0; 2.0; 3.0 ];
  Engine.run ~until:2.5 e;
  Alcotest.(check (list (float 1e-9))) "only events <= until" [ 1.0; 2.0 ] (List.rev !fired);
  Alcotest.(check (float 1e-9)) "clock advanced to until" 2.5 (Engine.now e);
  Alcotest.(check int) "event pending" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "remaining fires" 3 (List.length !fired)

let test_engine_until_boundary_inclusive () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e ~delay:2.0 (fun () -> fired := true);
  Engine.run ~until:2.0 e;
  Alcotest.(check bool) "event exactly at until fires" true !fired

let test_engine_validation () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative or non-finite delay") (fun () ->
      Engine.schedule e ~delay:(-1.0) (fun () -> ()));
  Engine.schedule e ~delay:5.0 (fun () -> ());
  Engine.run e;
  Alcotest.check_raises "past absolute time"
    (Invalid_argument "Engine.schedule_at: scheduling into the past") (fun () ->
      Engine.schedule_at e 1.0 (fun () -> ()));
  Alcotest.check_raises "past until" (Invalid_argument "Engine.run: until is in the past")
    (fun () -> Engine.run ~until:1.0 e)

let test_engine_step_and_counters () =
  let e = Engine.create () in
  Engine.schedule e ~delay:1.0 (fun () -> ());
  Engine.schedule e ~delay:2.0 (fun () -> ());
  Alcotest.(check bool) "step true" true (Engine.step e);
  Alcotest.(check int) "one executed" 1 (Engine.events_executed e);
  Alcotest.(check bool) "step true" true (Engine.step e);
  Alcotest.(check bool) "step false when empty" false (Engine.step e);
  Alcotest.(check int) "two executed" 2 (Engine.events_executed e)

(* ------------------------------------------------------------------ *)
(* Dist                                                                *)
(* ------------------------------------------------------------------ *)

let test_poisson_gap_mean () =
  let rng = Splitmix.create 5 in
  let s = Stats.create () in
  for _ = 1 to 100_000 do
    Stats.add s (Dist.poisson_gap rng ~rate:50.0)
  done;
  Alcotest.(check bool) "mean gap ~ 1/50" true (abs_float (Stats.mean s -. 0.02) < 0.001);
  Alcotest.check_raises "rate validation"
    (Invalid_argument "Dist.poisson_gap: rate must be positive") (fun () ->
      ignore (Dist.poisson_gap rng ~rate:0.0))

let test_lognormal_shape () =
  let rng = Splitmix.create 17 in
  let n = 50_001 in
  let mu = log 0.05 and sigma = 0.7 in
  let samples = Array.init n (fun _ -> Dist.lognormal rng ~mu ~sigma) in
  Alcotest.(check bool) "strictly positive" true (Array.for_all (fun x -> x > 0.0) samples);
  Array.sort compare samples;
  let median = samples.(n / 2) in
  Alcotest.(check bool)
    (Printf.sprintf "median %.4f ~ exp mu = 0.05" median)
    true
    (abs_float (median -. 0.05) < 0.003);
  (* mean of log-samples estimates mu *)
  let s = Stats.create () in
  Array.iter (fun x -> Stats.add s (log x)) samples;
  Alcotest.(check bool) "log-mean ~ mu" true (abs_float (Stats.mean s -. mu) < 0.02)

let test_lognormal_degenerate_and_validation () =
  let rng = Splitmix.create 2 in
  for _ = 1 to 20 do
    Alcotest.(check (float 1e-9)) "sigma=0 is constant exp(mu)" (exp 1.5)
      (Dist.lognormal rng ~mu:1.5 ~sigma:0.0)
  done;
  Alcotest.check_raises "sigma validation"
    (Invalid_argument "Dist.lognormal: sigma must be non-negative") (fun () ->
      ignore (Dist.lognormal rng ~mu:0.0 ~sigma:(-0.1)))

let test_zipf_probabilities () =
  let z = Dist.Zipf.create ~alpha:1.0 ~n:100 in
  let total = ref 0.0 in
  for k = 0 to 99 do
    total := !total +. Dist.Zipf.probability z k
  done;
  Alcotest.(check (float 1e-9)) "probabilities sum to 1" 1.0 !total;
  Alcotest.(check bool) "monotone decreasing" true
    (Dist.Zipf.probability z 0 > Dist.Zipf.probability z 1);
  (* Zipf(1): p(0)/p(9) = 10 *)
  Alcotest.(check (float 1e-6)) "rank ratio" 10.0
    (Dist.Zipf.probability z 0 /. Dist.Zipf.probability z 9)

let test_zipf_alpha_zero_uniform () =
  let z = Dist.Zipf.create ~alpha:0.0 ~n:50 in
  for k = 0 to 49 do
    Alcotest.(check (float 1e-9)) "uniform" 0.02 (Dist.Zipf.probability z k)
  done

let test_zipf_sampling_matches_pmf () =
  let n = 20 in
  let z = Dist.Zipf.create ~alpha:1.2 ~n in
  let rng = Splitmix.create 11 in
  let counts = Array.make n 0 in
  let draws = 200_000 in
  for _ = 1 to draws do
    let k = Dist.Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  for k = 0 to n - 1 do
    let expected = Dist.Zipf.probability z k *. float_of_int draws in
    let got = float_of_int counts.(k) in
    Alcotest.(check bool)
      (Printf.sprintf "rank %d: got %.0f expected %.0f" k got expected)
      true
      (abs_float (got -. expected) < Float.max 80.0 (0.05 *. expected))
  done

let test_zipf_validation () =
  Alcotest.check_raises "n" (Invalid_argument "Zipf.create: n must be positive") (fun () ->
      ignore (Dist.Zipf.create ~alpha:1.0 ~n:0));
  Alcotest.check_raises "alpha" (Invalid_argument "Zipf.create: alpha must be non-negative")
    (fun () -> ignore (Dist.Zipf.create ~alpha:(-0.1) ~n:5));
  let z = Dist.Zipf.create ~alpha:1.0 ~n:5 in
  Alcotest.check_raises "rank" (Invalid_argument "Zipf.probability: rank out of range")
    (fun () -> ignore (Dist.Zipf.probability z 5))

let prop_engine_executes_all =
  QCheck.Test.make ~name:"engine: every scheduled event runs exactly once" ~count:200
    QCheck.(small_list (float_bound_inclusive 100.0))
    (fun delays ->
      let e = Engine.create () in
      let count = ref 0 in
      List.iter (fun d -> Engine.schedule e ~delay:d (fun () -> incr count)) delays;
      Engine.run e;
      !count = List.length delays)

let prop_zipf_samples_in_range =
  QCheck.Test.make ~name:"zipf: samples stay in [0, n)" ~count:100
    QCheck.(pair (int_range 1 100) (float_bound_inclusive 2.0))
    (fun (n, alpha) ->
      let z = Dist.Zipf.create ~alpha ~n in
      let rng = Splitmix.create (n + int_of_float (alpha *. 100.0)) in
      List.for_all
        (fun _ ->
          let k = Dist.Zipf.sample z rng in
          k >= 0 && k < n)
        (List.init 100 Fun.id))

let () =
  Alcotest.run "terradir_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "order" `Quick test_engine_order;
          Alcotest.test_case "fifo ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
          Alcotest.test_case "until inclusive" `Quick test_engine_until_boundary_inclusive;
          Alcotest.test_case "validation" `Quick test_engine_validation;
          Alcotest.test_case "step/counters" `Quick test_engine_step_and_counters;
        ] );
      ( "dist",
        [
          Alcotest.test_case "poisson gap mean" `Quick test_poisson_gap_mean;
          Alcotest.test_case "lognormal shape" `Quick test_lognormal_shape;
          Alcotest.test_case "lognormal edge cases" `Quick test_lognormal_degenerate_and_validation;
          Alcotest.test_case "zipf pmf" `Quick test_zipf_probabilities;
          Alcotest.test_case "zipf alpha=0" `Quick test_zipf_alpha_zero_uniform;
          Alcotest.test_case "zipf sampling" `Quick test_zipf_sampling_matches_pmf;
          Alcotest.test_case "zipf validation" `Quick test_zipf_validation;
        ] );
      ( "sim-props",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          [ prop_engine_executes_all; prop_zipf_samples_in_range ] );
    ]
