(* Coverage for Config validation and presets. *)

open Terradir

let expect_invalid field tweak =
  let c = tweak Config.default in
  match Config.validate c with
  | () -> Alcotest.fail (field ^ ": expected rejection")
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      (Printf.sprintf "%s mentioned in %S" field msg)
      true
      (String.length msg > 0)

let test_default_valid () = Config.validate Config.default

let test_validation_rejects () =
  expect_invalid "num_servers" (fun c -> { c with Config.num_servers = 0 });
  expect_invalid "speed_spread" (fun c -> { c with Config.speed_spread = 0.5 });
  expect_invalid "service_mean" (fun c -> { c with Config.service_mean = 0.0 });
  expect_invalid "ctrl_service" (fun c -> { c with Config.ctrl_service = -1.0 });
  expect_invalid "network_delay" (fun c -> { c with Config.network_delay = -0.1 });
  expect_invalid "net_jitter negative" (fun c -> { c with Config.net_jitter = -0.01 });
  expect_invalid "net_jitter above delay" (fun c ->
      { c with Config.net_jitter = c.Config.network_delay +. 0.01 });
  expect_invalid "net_loss low" (fun c -> { c with Config.net_loss = -0.1 });
  expect_invalid "net_loss high" (fun c -> { c with Config.net_loss = 1.1 });
  expect_invalid "net_loss nan" (fun c -> { c with Config.net_loss = Float.nan });
  expect_invalid "rpc_timeout" (fun c -> { c with Config.rpc_timeout = -1.0 });
  expect_invalid "max_retries" (fun c -> { c with Config.max_retries = -1 });
  expect_invalid "retry_backoff" (fun c -> { c with Config.retry_backoff = 0.9 });
  expect_invalid "queue_capacity" (fun c -> { c with Config.queue_capacity = 0 });
  expect_invalid "load_window" (fun c -> { c with Config.load_window = 0.0 });
  expect_invalid "high_water low" (fun c -> { c with Config.high_water = 0.0 });
  expect_invalid "high_water high" (fun c -> { c with Config.high_water = 1.5 });
  expect_invalid "high_water_factor" (fun c -> { c with Config.high_water_factor = -1.0 });
  expect_invalid "min_delta" (fun c -> { c with Config.min_delta = 0.0 });
  expect_invalid "r_fact" (fun c -> { c with Config.r_fact = -1.0 });
  expect_invalid "r_map" (fun c -> { c with Config.r_map = 0 });
  expect_invalid "cache_slots" (fun c -> { c with Config.cache_slots = -1 });
  expect_invalid "max_attempts" (fun c -> { c with Config.max_attempts = 0 });
  expect_invalid "retry_delay" (fun c -> { c with Config.retry_delay = -1.0 });
  expect_invalid "success_cooldown" (fun c -> { c with Config.success_cooldown = -1.0 });
  expect_invalid "replica_idle_timeout" (fun c -> { c with Config.replica_idle_timeout = 0.0 });
  expect_invalid "eviction_scan_period" (fun c -> { c with Config.eviction_scan_period = 0.0 });
  expect_invalid "hop_budget_slack" (fun c -> { c with Config.hop_budget_slack = -1 });
  expect_invalid "bootstrap_peers" (fun c -> { c with Config.bootstrap_peers = -1 });
  expect_invalid "max_remote_digests" (fun c -> { c with Config.max_remote_digests = -1 });
  expect_invalid "data_copies" (fun c -> { c with Config.data_copies = 0 });
  expect_invalid "data_service_mean" (fun c -> { c with Config.data_service_mean = 0.0 })

let test_presets () =
  Alcotest.(check bool) "bcr all on" true
    Config.(bcr.caching && bcr.replication && bcr.digests);
  Alcotest.(check bool) "bc caching only" true
    Config.(bc.caching && (not bc.replication) && not bc.digests);
  Alcotest.(check bool) "base all off" true
    Config.(
      (not base.caching) && (not base.replication) && not base.digests)

let test_scaled () =
  let c = Config.scaled Config.default ~factor:0.25 in
  Alcotest.(check int) "quartered" 1024 c.Config.num_servers;
  Config.validate c;
  let tiny = Config.scaled Config.default ~factor:1e-9 in
  Alcotest.(check int) "floored at 2" 2 tiny.Config.num_servers;
  Alcotest.check_raises "factor validation"
    (Invalid_argument "Config.scaled: factor must be positive") (fun () ->
      ignore (Config.scaled Config.default ~factor:0.0))

let () =
  Alcotest.run "terradir_config"
    [
      ( "config",
        [
          Alcotest.test_case "default valid" `Quick test_default_valid;
          Alcotest.test_case "validation rejects" `Quick test_validation_rejects;
          Alcotest.test_case "presets" `Quick test_presets;
          Alcotest.test_case "scaled" `Quick test_scaled;
        ] );
    ]
