(* Tests for the fault-injectable network model, and the
   deterministic-simulation discipline it enables: a whole lossy,
   partitioned cluster run must be a pure function of its seed. *)

open Terradir_util
open Terradir_namespace
open Terradir_sim
open Terradir
open Terradir_workload

let mk ?(seed = 1) ?loss ?latency () = Net.create ?loss ?latency ~rng:(Splitmix.create seed) ()

(* ------------------------------------------------------------------ *)
(* Loss                                                                *)
(* ------------------------------------------------------------------ *)

let test_ideal_by_default () =
  let net = mk () in
  for i = 0 to 99 do
    match Net.transmit net ~src:i ~dst:(i + 1) with
    | Net.Delivered d -> Alcotest.(check (float 1e-12)) "zero latency" 0.0 d
    | Net.Lost | Net.Blocked -> Alcotest.fail "ideal network must deliver"
  done;
  Alcotest.(check int) "delivered counter" 100 (Net.delivered net);
  Alcotest.(check int) "lost counter" 0 (Net.lost net);
  Alcotest.(check int) "blocked counter" 0 (Net.blocked_count net)

let test_loss_rate_tolerance () =
  let net = mk ~seed:3 ~loss:0.3 () in
  let draws = 20_000 in
  for _ = 1 to draws do
    ignore (Net.transmit net ~src:0 ~dst:1)
  done;
  let frac = float_of_int (Net.lost net) /. float_of_int draws in
  (* sd of the estimator is sqrt(0.3*0.7/20000) ~ 0.0032; +-0.02 is 6 sd *)
  Alcotest.(check bool) (Printf.sprintf "lost fraction %.4f ~ 0.3" frac) true
    (abs_float (frac -. 0.3) < 0.02);
  Alcotest.(check int) "all accounted" draws (Net.lost net + Net.delivered net)

let test_total_loss () =
  let net = mk ~loss:1.0 () in
  for _ = 1 to 50 do
    Alcotest.(check bool) "always lost" true (Net.transmit net ~src:0 ~dst:1 = Net.Lost)
  done

let test_loopback_immune () =
  let net = mk ~loss:1.0 () in
  ignore (Net.partition net ~a:[ 0 ] ~b:[ 1 ]);
  (match Net.transmit net ~src:0 ~dst:0 with
  | Net.Delivered _ -> ()
  | Net.Lost | Net.Blocked -> Alcotest.fail "loopback is never lost or blocked");
  Alcotest.(check bool) "loopback never blocked" false (Net.blocked net ~src:0 ~dst:0)

let test_set_loss () =
  let net = mk ~seed:5 () in
  Net.set_loss net 1.0;
  Alcotest.(check (float 1e-12)) "loss readable" 1.0 (Net.loss net);
  Alcotest.(check bool) "now lossy" true (Net.transmit net ~src:0 ~dst:1 = Net.Lost);
  Net.set_loss net 0.0;
  Alcotest.(check bool) "lossless again" true
    (match Net.transmit net ~src:0 ~dst:1 with Net.Delivered _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Partitions                                                          *)
(* ------------------------------------------------------------------ *)

let test_partition_symmetric () =
  let net = mk () in
  let a = [ 0; 1; 2 ] and b = [ 3; 4 ] in
  ignore (Net.partition net ~a ~b);
  List.iter
    (fun s ->
      List.iter
        (fun d ->
          Alcotest.(check bool) "a->b blocked" true (Net.blocked net ~src:s ~dst:d);
          Alcotest.(check bool) "b->a blocked" true (Net.blocked net ~src:d ~dst:s))
        b)
    a;
  (* pairs inside one side, and pairs involving outsiders, are untouched *)
  Alcotest.(check bool) "within a" false (Net.blocked net ~src:0 ~dst:1);
  Alcotest.(check bool) "within b" false (Net.blocked net ~src:3 ~dst:4);
  Alcotest.(check bool) "outsider" false (Net.blocked net ~src:7 ~dst:0);
  Alcotest.(check bool) "transmit verdict" true (Net.transmit net ~src:2 ~dst:3 = Net.Blocked);
  Alcotest.(check int) "blocked counter" 1 (Net.blocked_count net)

let test_partition_directed () =
  let net = mk () in
  ignore (Net.partition ~directed:true net ~a:[ 0 ] ~b:[ 1 ]);
  Alcotest.(check bool) "a->b blocked" true (Net.blocked net ~src:0 ~dst:1);
  Alcotest.(check bool) "b->a open" false (Net.blocked net ~src:1 ~dst:0)

let test_partition_heal () =
  let net = mk () in
  let pid = Net.partition net ~a:[ 0 ] ~b:[ 1 ] in
  Alcotest.(check bool) "blocked" true (Net.blocked net ~src:0 ~dst:1);
  Net.heal net pid;
  Alcotest.(check bool) "healed" false (Net.blocked net ~src:0 ~dst:1);
  Net.heal net pid (* idempotent *);
  Net.heal net 999 (* unknown ignored *)

let test_partition_stacking () =
  let net = mk () in
  let p1 = Net.partition net ~a:[ 0; 1 ] ~b:[ 2; 3 ] in
  let p2 = Net.partition net ~a:[ 1 ] ~b:[ 2 ] in
  Alcotest.(check bool) "covered twice" true (Net.blocked net ~src:1 ~dst:2);
  Net.heal net p1;
  Alcotest.(check bool) "still covered by p2" true (Net.blocked net ~src:1 ~dst:2);
  Alcotest.(check bool) "p1-only pair freed" false (Net.blocked net ~src:0 ~dst:3);
  Net.heal net p2;
  Alcotest.(check bool) "fully healed" false (Net.blocked net ~src:1 ~dst:2);
  ignore (Net.partition net ~a:[ 5 ] ~b:[ 6 ]);
  ignore (Net.partition net ~a:[ 7 ] ~b:[ 8 ]);
  Net.heal_all net;
  Alcotest.(check bool) "heal_all" false
    (Net.blocked net ~src:5 ~dst:6 || Net.blocked net ~src:7 ~dst:8)

let test_partition_consumes_no_rng () =
  (* A blocked transmit must not advance the RNG: the surviving traffic's
     randomness is unchanged by how many messages died at the cut. *)
  let n1 = mk ~seed:21 ~loss:0.5 () and n2 = mk ~seed:21 ~loss:0.5 () in
  ignore (Net.partition n1 ~a:[ 0 ] ~b:[ 1 ]);
  for _ = 1 to 10 do
    ignore (Net.transmit n1 ~src:0 ~dst:1)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "verdict streams agree" true
      (Net.transmit n1 ~src:2 ~dst:3 = Net.transmit n2 ~src:2 ~dst:3)
  done

let test_partition_validation () =
  let net = mk () in
  Alcotest.check_raises "empty side" (Invalid_argument "Net.partition: empty side") (fun () ->
      ignore (Net.partition net ~a:[] ~b:[ 1 ]));
  Alcotest.check_raises "intersecting" (Invalid_argument "Net.partition: sides intersect")
    (fun () -> ignore (Net.partition net ~a:[ 0; 1 ] ~b:[ 1; 2 ]))

(* ------------------------------------------------------------------ *)
(* Latency distributions                                               *)
(* ------------------------------------------------------------------ *)

let test_latency_constant () =
  let net = mk ~latency:(Net.Constant 0.025) () in
  for _ = 1 to 20 do
    Alcotest.(check (float 1e-12)) "exact" 0.025 (Net.sample_latency net)
  done

let test_latency_uniform () =
  let net = mk ~seed:8 ~latency:(Net.Uniform { base = 0.1; jitter = 0.04 }) () in
  let s = Stats.create () in
  for _ = 1 to 10_000 do
    let l = Net.sample_latency net in
    Alcotest.(check bool) "in [base-j, base+j]" true (l >= 0.06 && l <= 0.14);
    Stats.add s l
  done;
  Alcotest.(check bool) "mean ~ base" true (abs_float (Stats.mean s -. 0.1) < 0.002)

let test_latency_lognormal () =
  let net = mk ~seed:13 ~latency:(Net.Lognormal { median = 0.05; sigma = 0.6 }) () in
  let n = 10_001 in
  let samples = Array.init n (fun _ -> Net.sample_latency net) in
  Alcotest.(check bool) "all positive" true (Array.for_all (fun l -> l > 0.0) samples);
  Array.sort compare samples;
  let med = samples.(n / 2) in
  Alcotest.(check bool) (Printf.sprintf "sample median %.4f ~ 0.05" med) true
    (abs_float (med -. 0.05) < 0.005)

let test_latency_validation () =
  Alcotest.check_raises "negative constant"
    (Invalid_argument "Net: constant latency must be non-negative") (fun () ->
      ignore (mk ~latency:(Net.Constant (-0.1)) ()));
  Alcotest.check_raises "jitter > base" (Invalid_argument "Net: jitter must be in [0, base]")
    (fun () -> ignore (mk ~latency:(Net.Uniform { base = 0.1; jitter = 0.2 }) ()));
  Alcotest.check_raises "non-positive median"
    (Invalid_argument "Net: lognormal median must be positive") (fun () ->
      ignore (mk ~latency:(Net.Lognormal { median = 0.0; sigma = 1.0 }) ()));
  Alcotest.check_raises "negative sigma"
    (Invalid_argument "Net: lognormal sigma must be non-negative") (fun () ->
      ignore (mk ~latency:(Net.Lognormal { median = 0.1; sigma = -1.0 }) ()));
  Alcotest.check_raises "loss range" (Invalid_argument "Net: loss must be in [0, 1]") (fun () ->
      ignore (mk ~loss:1.5 ()));
  let net = mk () in
  Alcotest.check_raises "set_latency validates"
    (Invalid_argument "Net: jitter must be in [0, base]") (fun () ->
      Net.set_latency net (Net.Uniform { base = 0.0; jitter = 0.1 }))

(* ------------------------------------------------------------------ *)
(* Backoff schedule                                                    *)
(* ------------------------------------------------------------------ *)

let test_backoff_schedule () =
  List.iteri
    (fun attempt expected ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "attempt %d" attempt)
        expected
        (Net.backoff ~base:0.1 ~factor:2.0 ~attempt))
    [ 0.1; 0.2; 0.4; 0.8; 1.6 ];
  Alcotest.(check (float 1e-12)) "factor 1 is flat" 0.5
    (Net.backoff ~base:0.5 ~factor:1.0 ~attempt:7);
  Alcotest.check_raises "negative base" (Invalid_argument "Net.backoff: base must be non-negative")
    (fun () -> ignore (Net.backoff ~base:(-1.0) ~factor:2.0 ~attempt:0));
  Alcotest.check_raises "factor < 1" (Invalid_argument "Net.backoff: factor must be >= 1")
    (fun () -> ignore (Net.backoff ~base:1.0 ~factor:0.5 ~attempt:0));
  Alcotest.check_raises "negative attempt"
    (Invalid_argument "Net.backoff: attempt must be non-negative") (fun () ->
      ignore (Net.backoff ~base:1.0 ~factor:2.0 ~attempt:(-1)))

(* ------------------------------------------------------------------ *)
(* Determinism properties                                              *)
(* ------------------------------------------------------------------ *)

let prop_net_verdicts_deterministic =
  QCheck.Test.make ~name:"net: same seed yields the same verdict stream" ~count:50
    QCheck.(int_bound 100_000)
    (fun seed ->
      let stream net =
        List.init 300 (fun i -> Net.transmit net ~src:(i mod 7) ~dst:((i * 3) mod 11))
      in
      let latency = Net.Lognormal { median = 0.025; sigma = 0.5 } in
      stream (mk ~seed ~loss:0.2 ~latency ()) = stream (mk ~seed ~loss:0.2 ~latency ()))

let prop_partition_blocks_exactly_the_cut =
  QCheck.Test.make ~name:"net: a partition blocks exactly the cross pairs" ~count:100
    QCheck.(triple (int_bound 4) (int_bound 4) bool)
    (fun (na, nb, directed) ->
      let a = List.init (na + 1) Fun.id in
      let b = List.init (nb + 1) (fun i -> i + na + 1) in
      let net = mk () in
      ignore (Net.partition ~directed net ~a ~b);
      let all = List.init (na + nb + 4) Fun.id in
      List.for_all
        (fun s ->
          List.for_all
            (fun d ->
              let cross_ab = List.mem s a && List.mem d b in
              let cross_ba = List.mem s b && List.mem d a in
              let expect = cross_ab || ((not directed) && cross_ba) in
              Net.blocked net ~src:s ~dst:d = (expect && s <> d))
            all)
        all)

(* ------------------------------------------------------------------ *)
(* Deterministic simulation: whole-cluster runs under faults           *)
(* ------------------------------------------------------------------ *)

(* Digest every observable of a run: full metrics snapshot, Net counters,
   and the number of engine events (a cheap trace digest — any divergence
   in event scheduling shows up here even if the counters happen to agree). *)
let faulty_run seed =
  let tree = Build.balanced ~arity:2 ~levels:5 in
  let config =
    {
      Config.default with
      Config.num_servers = 12;
      seed;
      net_loss = 0.05;
      net_jitter = 0.01;
      rpc_timeout = 0.5;
      max_retries = 2;
      retry_backoff = 2.0;
    }
  in
  let cluster = Cluster.create ~config ~tree () in
  let pid = ref None in
  Engine.schedule_at cluster.Cluster.engine 2.0 (fun () ->
      pid := Some (Net.partition cluster.Cluster.net ~a:[ 0; 1; 2 ] ~b:(List.init 9 (fun i -> i + 3))));
  Engine.schedule_at cluster.Cluster.engine 5.0 (fun () ->
      Option.iter (Net.heal cluster.Cluster.net) !pid);
  Scenario.run cluster ~phases:(Stream.unif ~rate:120.0 ~duration:8.0) ~seed:(seed + 1);
  Cluster.run_until cluster (Cluster.now cluster +. 10.0);
  Cluster.check_invariants cluster;
  let m = Cluster.metrics cluster in
  let rows = Metrics.summary_rows m |> List.map (fun (k, v) -> k ^ "=" ^ v) in
  String.concat ";" rows
  ^ Printf.sprintf ";net=%d/%d/%d;events=%d;lat=%h;hops=%h"
      (Net.delivered cluster.Cluster.net)
      (Net.lost cluster.Cluster.net)
      (Net.blocked_count cluster.Cluster.net)
      (Engine.events_executed cluster.Cluster.engine)
      (Stats.mean m.Metrics.latency) (Stats.mean m.Metrics.hops)

let prop_faulty_cluster_deterministic =
  QCheck.Test.make ~name:"cluster: lossy partitioned run is a function of the seed" ~count:4
    QCheck.(int_bound 10_000)
    (fun seed -> String.equal (faulty_run seed) (faulty_run seed))

let test_faulty_runs_diverge_across_seeds () =
  Alcotest.(check bool) "different seeds differ" true (faulty_run 1 <> faulty_run 2)

let () =
  Alcotest.run "terradir_net"
    [
      ( "loss",
        [
          Alcotest.test_case "ideal by default" `Quick test_ideal_by_default;
          Alcotest.test_case "loss rate tolerance" `Quick test_loss_rate_tolerance;
          Alcotest.test_case "total loss" `Quick test_total_loss;
          Alcotest.test_case "loopback immune" `Quick test_loopback_immune;
          Alcotest.test_case "set_loss" `Quick test_set_loss;
        ] );
      ( "partition",
        [
          Alcotest.test_case "symmetric" `Quick test_partition_symmetric;
          Alcotest.test_case "directed" `Quick test_partition_directed;
          Alcotest.test_case "heal" `Quick test_partition_heal;
          Alcotest.test_case "stacking" `Quick test_partition_stacking;
          Alcotest.test_case "no rng on block" `Quick test_partition_consumes_no_rng;
          Alcotest.test_case "validation" `Quick test_partition_validation;
        ] );
      ( "latency",
        [
          Alcotest.test_case "constant" `Quick test_latency_constant;
          Alcotest.test_case "uniform" `Quick test_latency_uniform;
          Alcotest.test_case "lognormal" `Quick test_latency_lognormal;
          Alcotest.test_case "validation" `Quick test_latency_validation;
        ] );
      ("backoff", [ Alcotest.test_case "schedule" `Quick test_backoff_schedule ]);
      ( "determinism",
        [
          Alcotest.test_case "seeds diverge" `Slow test_faulty_runs_diverge_across_seeds;
        ] );
      ( "net-props",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          [
            prop_net_verdicts_deterministic;
            prop_partition_blocks_exactly_the_cut;
            prop_faulty_cluster_deterministic;
          ] );
    ]
