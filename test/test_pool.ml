(* Tests for the experiment fan-out pool: order preservation, exception
   propagation, and the sequential fallback. *)

open Terradir_util

exception Boom of int

let test_order_preserved () =
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun x -> x * x) xs in
  Alcotest.(check (list int)) "domains=4" expected (Pool.map ~domains:4 (fun x -> x * x) xs);
  Alcotest.(check (list int))
    "more domains than items" expected
    (Pool.map ~domains:64 (fun x -> x * x) xs)

let test_sequential_fallback () =
  (* domains=1 must never spawn: the applications run on the calling domain
     in list order, observable through a (domain-local) side effect. *)
  let trace = ref [] in
  let out = Pool.map ~domains:1 (fun x -> trace := x :: !trace; x + 1) [ 3; 1; 2 ] in
  Alcotest.(check (list int)) "results" [ 4; 2; 3 ] out;
  Alcotest.(check (list int)) "applied in order" [ 3; 1; 2 ] (List.rev !trace)

let test_edge_cases () =
  Alcotest.(check (list int)) "empty list" [] (Pool.map ~domains:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 9 ] (Pool.map ~domains:4 (fun x -> x * 9) [ 1 ]);
  Alcotest.check_raises "domains must be positive"
    (Invalid_argument "Pool.map: domains must be >= 1") (fun () ->
      ignore (Pool.map ~domains:0 Fun.id [ 1 ]))

let test_exception_propagates () =
  List.iter
    (fun domains ->
      match Pool.map ~domains (fun x -> if x = 7 then raise (Boom x) else x) (List.init 32 Fun.id) with
      | _ -> Alcotest.failf "domains=%d: expected Boom" domains
      | exception Boom 7 -> ())
    [ 1; 2; 4 ]

let test_all_work_executes () =
  (* Every item is applied exactly once even with contention: count
     applications through an atomic. *)
  let hits = Atomic.make 0 in
  let xs = List.init 500 Fun.id in
  let out = Pool.map ~domains:8 (fun x -> Atomic.incr hits; 2 * x) xs in
  Alcotest.(check int) "every item applied once" 500 (Atomic.get hits);
  Alcotest.(check (list int)) "results" (List.map (fun x -> 2 * x) xs) out

let prop_matches_list_map =
  QCheck.Test.make ~count:50 ~name:"Pool.map ~domains:k == List.map"
    QCheck.(pair (small_list small_int) (int_range 1 8))
    (fun (xs, domains) ->
      Pool.map ~domains (fun x -> (x * 31) + 7) xs = List.map (fun x -> (x * 31) + 7) xs)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "sequential fallback" `Quick test_sequential_fallback;
          Alcotest.test_case "edge cases" `Quick test_edge_cases;
          Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
          Alcotest.test_case "all work executes" `Quick test_all_work_executes;
          QCheck_alcotest.to_alcotest prop_matches_list_map;
        ] );
    ]
