(* Unit tests for the domain-safety race check: each rule fires on a
   minimal lane-reachable snippet and is silenced by its suppression,
   clean synchronization idioms stay silent, the interprocedural guard
   fixpoint proves lock-held helpers safe, and the effect summaries are
   stable under declaration reordering (the analysis is a fixpoint over
   sets, so source order must not leak into its output). *)

module R = Terradir_racecheck.Racecheck

let rules ?mli source =
  let files =
    match mli with
    | Some s -> [ ("snippet.ml", source); ("snippet.mli", s) ]
    | None -> [ ("snippet.ml", source) ]
  in
  R.findings (R.analyze files) |> List.map (fun f -> f.R.rule) |> List.sort String.compare

let check ?mli name expected source =
  Alcotest.(check (list string)) name expected (rules ?mli source)

(* Every snippet needs a lane entry (here: an [Engine.schedule] site) or
   its roots are main-only and out of scope — which the first test pins. *)

let test_bare_shared_mutable () =
  check "bare ref written from lane code" [ "bare-shared-mutable" ]
    "let hits = ref 0\n\
     let on_event () = hits := !hits + 1\n\
     let install e = Engine.schedule e ~delay:1.0 on_event";
  check "main-only mutation is out of scope" []
    "let hits = ref 0\nlet bump () = hits := !hits + 1";
  check "never-written root is fine" []
    "let limit = ref 10\n\
     let install e = Engine.schedule e ~delay:1.0 (fun () -> ignore !limit)";
  check "main-written, lane-read still flags (writer discipline is not static)"
    [ "bare-shared-mutable" ]
    "let limit = ref 10\n\
     let set_limit v = limit := v\n\
     let install e = Engine.schedule e ~delay:1.0 (fun () -> ignore !limit)";
  check "suppression silences it" []
    "let hits = ref 0 (* race: bare-shared-mutable test double for a pre-spawn-only write *)\n\
     let on_event () = hits := !hits + 1\n\
     let install e = Engine.schedule e ~delay:1.0 on_event"

let test_inconsistent_guard () =
  let source =
    "let lock = Mutex.create ()\n\
     let table = Hashtbl.create 8\n\
     let guarded k = Mutex.protect lock (fun () -> Hashtbl.replace table k k)\n\
     let bare k = Hashtbl.replace table k k\n\
     let install e = Engine.schedule e ~delay:1.0 (fun () -> guarded 1; bare 2)"
  in
  check "bare write next to guarded writes" [ "inconsistent-guard" ] source;
  check "consistent Mutex.protect is clean" []
    "let lock = Mutex.create ()\n\
     let table = Hashtbl.create 8\n\
     let guarded k = Mutex.protect lock (fun () -> Hashtbl.replace table k k)\n\
     let install e = Engine.schedule e ~delay:1.0 (fun () -> guarded 1)";
  check "lock/unlock spans count as guards" []
    "let lock = Mutex.create ()\n\
     let table = Hashtbl.create 8\n\
     let guarded k = Mutex.lock lock; Hashtbl.replace table k k; Mutex.unlock lock\n\
     let install e = Engine.schedule e ~delay:1.0 (fun () -> guarded 1)";
  check "lane read without the write-side lock" [ "inconsistent-guard" ]
    "let lock = Mutex.create ()\n\
     let table = Hashtbl.create 8\n\
     let guarded k = Mutex.protect lock (fun () -> Hashtbl.replace table k k)\n\
     let peek () = Hashtbl.length table\n\
     let install e = Engine.schedule e ~delay:1.0 (fun () -> guarded 1; ignore (peek ()))";
  check "suppression silences it" []
    "let lock = Mutex.create ()\n\
     let table = Hashtbl.create 8\n\
     let guarded k = Mutex.protect lock (fun () -> Hashtbl.replace table k k)\n\
     let bare k = Hashtbl.replace table k k (* race: inconsistent-guard test double *)\n\
     let install e = Engine.schedule e ~delay:1.0 (fun () -> guarded 1; bare 2)"

let test_atomic_rmw () =
  check "get -> set loses updates" [ "atomic-read-modify-write" ]
    "let counter = Atomic.make 0\n\
     let bump () = Atomic.set counter (Atomic.get counter + 1)\n\
     let install e = Engine.schedule e ~delay:1.0 bump";
  check "fetch_and_add is clean" []
    "let counter = Atomic.make 0\n\
     let bump () = ignore (Atomic.fetch_and_add counter 1)\n\
     let install e = Engine.schedule e ~delay:1.0 bump";
  check "get -> set under one lock is clean" []
    "let lock = Mutex.create ()\n\
     let counter = Atomic.make 0\n\
     let bump () = Mutex.protect lock (fun () -> Atomic.set counter (Atomic.get counter + 1))\n\
     let install e = Engine.schedule e ~delay:1.0 bump";
  check "suppression silences it" []
    "let counter = Atomic.make 0\n\
     let bump () = Atomic.set counter (Atomic.get counter + 1) (* race: \
     atomic-read-modify-write test double *)\n\
     let install e = Engine.schedule e ~delay:1.0 bump"

let test_outbox_bypass () =
  check "direct Shard.enqueue outside the engine" [ "outbox-bypass" ]
    "let sneak lane = Shard.enqueue lane ~key:0.0 ~tie:0 ~tag:0 (fun () -> ())";
  check "suppression silences it" []
    "(* race: outbox-bypass test double *)\n\
     let sneak lane = Shard.enqueue lane ~key:0.0 ~tie:0 ~tag:0 (fun () -> ())";
  (* The pooled-record discipline (DESIGN §16): free lists are per-lane
     fields on the cluster, never module-level.  A module-level pool a lane
     recycles into, combined with a direct cross-lane [Shard.enqueue] to
     hand a recycled record over, fires both rules. *)
  check "shared message pool recycled across lanes behind the outbox"
    [ "bare-shared-mutable"; "outbox-bypass" ]
    "let msg_pool = Queue.create ()\n\
     let recycle m = Queue.push m msg_pool\n\
     let reinject lane = Shard.enqueue lane ~key:0.0 ~tie:0 ~tag:0 (fun () -> Queue.pop \
     msg_pool)\n\
     let pump e = Engine.schedule e ~delay:1.0 (fun () -> recycle 1)"

(* The interprocedural part: a non-exported helper whose only references
   sit inside [Mutex.protect lock (fun () -> ...)] closures inherits the
   guard (this is what proves Name.intern_child safe).  Exporting the
   helper through the .mli forfeits the proof: anyone may call it bare. *)
let test_guard_fixpoint () =
  let source =
    "let lock = Mutex.create ()\n\
     let table = Hashtbl.create 8\n\
     let helper k = Hashtbl.replace table k k\n\
     let add k = Mutex.protect lock (fun () -> helper k)\n\
     let install e = Engine.schedule e ~delay:1.0 (fun () -> add 1)"
  in
  let mli = "val add : int -> unit\nval install : 'a -> unit" in
  check ~mli "hidden helper inherits its callers' lock" [] source;
  check "exported helper may be called bare" [ "bare-shared-mutable" ] source

let test_parse_error () =
  check "unparsable input reported" [ "parse-error" ] "let let let"

(* Summaries (and finding rules) must not depend on declaration order:
   shuffle independent top-level blocks and compare the CSV byte-wise. *)
let prop_reorder_stable =
  let blocks =
    [|
      "let lock = Mutex.create ()";
      "let table = Hashtbl.create 8";
      "let counter = Atomic.make 0";
      "let bump () = ignore (Atomic.fetch_and_add counter 1)";
      "let guarded k = Mutex.protect lock (fun () -> Hashtbl.replace table k k)";
      "let peek () = Hashtbl.length table";
      "let install e = Engine.schedule e ~delay:1.0 (fun () -> guarded 1; bump (); ignore (peek ()))";
    |]
  in
  let analyze_order order =
    let source = String.concat "\n" (List.map (fun i -> blocks.(i)) order) in
    let a = R.analyze [ ("snippet.ml", source) ] in
    (R.summaries a, R.findings a |> List.map (fun f -> f.R.rule) |> List.sort String.compare)
  in
  let canonical = analyze_order [ 0; 1; 2; 3; 4; 5; 6 ] in
  QCheck.Test.make ~name:"racecheck: summaries stable across declaration reordering" ~count:60
    QCheck.(list_of_size (Gen.return 12) (int_bound 1000))
    (fun seeds ->
      (* Derive a permutation from the generated seeds (Fisher-Yates with
         the seed stream as the randomness source). *)
      let order = Array.init (Array.length blocks) Fun.id in
      List.iteri
        (fun i seed ->
          let n = Array.length order in
          let j = i mod n and k = seed mod n in
          let tmp = order.(j) in
          order.(j) <- order.(k);
          order.(k) <- tmp)
        seeds;
      analyze_order (Array.to_list order) = canonical)

let () =
  Alcotest.run "terradir_racecheck"
    [
      ( "rules",
        [
          Alcotest.test_case "bare shared mutable" `Quick test_bare_shared_mutable;
          Alcotest.test_case "inconsistent guard" `Quick test_inconsistent_guard;
          Alcotest.test_case "atomic rmw" `Quick test_atomic_rmw;
          Alcotest.test_case "outbox bypass" `Quick test_outbox_bypass;
          Alcotest.test_case "guard fixpoint" `Quick test_guard_fixpoint;
          Alcotest.test_case "parse error" `Quick test_parse_error;
        ] );
      ( "stability",
        List.map (QCheck_alcotest.to_alcotest ~long:false) [ prop_reorder_stable ] );
    ]
