(* Equivalence suites for the flat hot-path stores introduced by the
   zero-allocation work: the index-linked LRU against a reference list
   model, the iteration-driven Bloom digest rebuild against the historical
   list-based one, scratch-buffer and RNG-draw parity on Node_map merges —
   and two end-to-end locks: fig3 with observability Off vs Full, and a
   pooled-hot-path workload byte-compared across engine-domain counts
   (free lists, ring paths and SoA outboxes must all be trajectory
   invisible). *)

open Terradir
open Terradir_util
open Terradir_namespace
open Terradir_workload
module E = Terradir_experiments

let () = E.Runner.set_jobs (Some 1)

(* ------------------------------------------------------------------ *)
(* Flat LRU vs a reference model                                       *)
(* ------------------------------------------------------------------ *)

(* Reference model: bounded association list, most-recently-used first.
   O(n) everywhere — exactly the semantics the flat version must keep. *)
module Model = struct
  type t = { cap : int; mutable items : (int * int) list }

  let create cap = { cap; items = [] }

  let find m k =
    match List.assoc_opt k m.items with
    | None -> None
    | Some v ->
      m.items <- (k, v) :: List.remove_assoc k m.items;
      Some v

  let peek m k = List.assoc_opt k m.items

  let mem m k = List.mem_assoc k m.items

  let put m k v =
    let without = List.remove_assoc k m.items in
    let without =
      if List.mem_assoc k m.items || List.length without < m.cap then without
      else
        (* full and k is new: evict the least-recently-used (last) *)
        List.filteri (fun i _ -> i < List.length without - 1) without
    in
    if m.cap > 0 then m.items <- (k, v) :: without

  let remove m k = m.items <- List.remove_assoc k m.items

  let keys m = List.map fst m.items
end

type lru_op = Put of int * int | Find of int | Peek of int | Mem of int | Remove of int

let lru_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun k v -> Put (k, v)) (int_bound 20) (int_bound 1000));
        (3, map (fun k -> Find k) (int_bound 20));
        (1, map (fun k -> Peek k) (int_bound 20));
        (1, map (fun k -> Mem k) (int_bound 20));
        (1, map (fun k -> Remove k) (int_bound 20));
      ])

let show_op = function
  | Put (k, v) -> Printf.sprintf "Put(%d,%d)" k v
  | Find k -> Printf.sprintf "Find %d" k
  | Peek k -> Printf.sprintf "Peek %d" k
  | Mem k -> Printf.sprintf "Mem %d" k
  | Remove k -> Printf.sprintf "Remove %d" k

let prop_lru_model =
  QCheck.Test.make ~name:"flat LRU ≡ list model (ops, results, MRU order)" ~count:500
    QCheck.(
      pair (int_range 0 8)
        (make ~print:(fun l -> String.concat "; " (List.map show_op l))
           (Gen.list_size (Gen.int_bound 60) lru_op_gen)))
    (fun (cap, ops) ->
      let lru = Lru.create ~capacity:cap in
      let model = Model.create cap in
      List.for_all
        (fun op ->
          match op with
          | Put (k, v) ->
            Lru.put lru k v;
            Model.put model k v;
            true
          | Find k -> Lru.find lru k = Model.find model k
          | Peek k -> Lru.peek lru k = Model.peek model k
          | Mem k -> Lru.mem lru k = Model.mem model k
          | Remove k ->
            Lru.remove lru k;
            Model.remove model k;
            true)
        ops
      && Lru.keys_mru_order lru = Model.keys model
      && Lru.length lru = List.length (Model.keys model))

let test_lru_eviction_order () =
  let lru = Lru.create ~capacity:3 in
  List.iter (fun k -> Lru.put lru k (10 * k)) [ 1; 2; 3 ];
  ignore (Lru.find lru 1);
  (* 1 promoted: inserting 4 must evict 2, the LRU *)
  Lru.put lru 4 40;
  Alcotest.(check (list int)) "MRU order after eviction" [ 4; 1; 3 ] (Lru.keys_mru_order lru);
  Alcotest.(check bool) "evicted key gone" false (Lru.mem lru 2);
  (* tombstone reuse: remove then reinsert keeps the index consistent *)
  Lru.remove lru 3;
  Lru.put lru 3 30;
  Lru.put lru 2 20;
  Alcotest.(check (list int)) "after churn" [ 2; 3; 4 ] (Lru.keys_mru_order lru)

(* ------------------------------------------------------------------ *)
(* Digest rebuild: list path vs iteration path                         *)
(* ------------------------------------------------------------------ *)

(* [rebuild_local_from] over a hash table's arbitrary iteration order
   must build the SAME filter as [rebuild_local] over the sorted list the
   server historically materialized: Bloom bit-sets are insertion-order
   independent, and both paths must size the filter identically. *)
let prop_digest_rebuild =
  QCheck.Test.make ~name:"digest rebuild: Hashtbl iteration ≡ sorted list" ~count:200
    QCheck.(list_of_size (Gen.int_bound 80) (int_bound 10_000))
    (fun nodes ->
      let dedup = List.sort_uniq compare nodes in
      let tbl = Hashtbl.create 16 in
      List.iter (fun n -> Hashtbl.replace tbl n ()) nodes;
      let by_list = Digest_store.create ~max_remote:4 () in
      Digest_store.rebuild_local by_list ~hosted:dedup;
      let by_iter = Digest_store.create ~max_remote:4 () in
      Digest_store.rebuild_local_from by_iter ~count:(Hashtbl.length tbl)
        ~iter:(fun add -> Hashtbl.iter (fun n () -> add n) tbl);
      Terradir_bloom.Bloom.equal (Digest_store.local by_list) (Digest_store.local by_iter)
      && Digest_store.local_version by_list = Digest_store.local_version by_iter)

(* ------------------------------------------------------------------ *)
(* Node_map merge: scratch parity and RNG-draw parity                  *)
(* ------------------------------------------------------------------ *)

let entry_gen =
  QCheck.Gen.(
    map3
      (fun server is_owner stamp ->
        { Node_map.server; is_owner; stamp = float_of_int stamp /. 8.0 })
      (int_bound 30) (map (fun b -> b = 0) (int_bound 7)) (int_bound 100))

let map_gen =
  QCheck.Gen.(
    map
      (fun entries -> Node_map.of_entries ~max:12 entries)
      (list_size (int_bound 16) entry_gen))

let prop_merge_scratch_parity =
  QCheck.Test.make
    ~name:"merge: scratch buffer changes neither the result nor the RNG draw count"
    ~count:300
    QCheck.(
      triple (int_range 1 10) small_int
        (make
           ~print:(fun (a, b) ->
             Format.asprintf "%a / %a" Node_map.pp a Node_map.pp b)
           Gen.(pair map_gen map_gen)))
    (fun (max, seed, (a, b)) ->
      let rng_plain = Splitmix.create seed in
      let rng_scratch = Splitmix.create seed in
      let scratch = Node_map.scratch () in
      let plain = Node_map.merge ~max rng_plain a b in
      let with_scratch = Node_map.merge ~scratch ~max rng_scratch a b in
      Node_map.entries plain = Node_map.entries with_scratch
      && Splitmix.draws rng_plain = Splitmix.draws rng_scratch)

(* Reusing ONE scratch across many merges must leave each result
   independent of the scratch's prior contents (results are snapshots,
   never aliases into the workspace). *)
let prop_merge_scratch_reuse =
  QCheck.Test.make ~name:"merge: reused scratch leaves earlier results intact" ~count:200
    QCheck.(
      pair small_int
        (make
           ~print:(fun maps ->
             String.concat " / " (List.map (Format.asprintf "%a" Node_map.pp) maps))
           Gen.(list_size (int_range 2 6) map_gen)))
    (fun (seed, maps) ->
      let fresh_results =
        List.map
          (fun m -> Node_map.merge ~max:6 (Splitmix.create seed) m m)
          maps
      in
      let scratch = Node_map.scratch () in
      let reused_results =
        List.map
          (fun m -> Node_map.merge ~scratch ~max:6 (Splitmix.create seed) m m)
          maps
      in
      List.for_all2
        (fun a b -> Node_map.entries a = Node_map.entries b)
        fresh_results reused_results)

(* ------------------------------------------------------------------ *)
(* End-to-end locks                                                    *)
(* ------------------------------------------------------------------ *)

(* Observability reads pooled records (message loads, query paths) but
   must never perturb them: fig3's series byte-identical Off vs Full. *)
let test_fig3_obs_off_vs_full () =
  (* 90 s: the uzipf streams open with staggered warmups up to 70 s. *)
  let run () = E.Fig3.run ~scale:0.002 ~duration:90.0 ~seed:42 () in
  let off = run () in
  let full = E.Runner.with_obs ~level:Terradir_obs.Obs.Full (fun () -> run ()) in
  Alcotest.(check (list string))
    "same streams" (List.map fst off.E.Fig3.series) (List.map fst full.E.Fig3.series);
  List.iter2
    (fun (label, a) (_, b) ->
      Alcotest.(check (array (float 0.0))) ("series " ^ label) a b)
    off.E.Fig3.series full.E.Fig3.series

(* The pooling stress: queries, fetches, and a kill/revive cycle (the
   free-list terminal sweeps) on K = 1 vs K = 4 — per-lane pools see
   records migrate across lanes with the traffic, and the metrics CSV
   must not move a byte. *)
let workload_csv domains =
  let config =
    {
      Config.default with
      Config.num_servers = 30;
      engine_domains = domains;
      rpc_timeout = 0.5;
      net_loss = 0.02;
      seed = 23;
    }
  in
  let tree = Build.balanced ~arity:2 ~levels:6 in
  let cluster = Cluster.create ~config ~tree () in
  let kill_t = 4.0 and revive_t = 6.0 in
  Terradir_sim.Engine.schedule_at cluster.Cluster.engine kill_t (fun () ->
      Cluster.kill cluster 7);
  Terradir_sim.Engine.schedule_at cluster.Cluster.engine revive_t (fun () ->
      Cluster.revive cluster 7);
  Scenario.run cluster
    ~phases:(Stream.unif ~rate:120.0 ~duration:10.0)
    ~seed:5 ~fetch_probability:0.2;
  E.Csv_export.metrics_csv (Cluster.metrics cluster)

let test_pooled_path_k_equivalence () =
  let k1 = workload_csv 1 in
  let k4 = workload_csv 4 in
  Alcotest.(check string) "pooled hot path: K=1 vs K=4 metrics CSV" k1 k4

let () =
  Alcotest.run "terradir_flatstore"
    [
      ( "lru",
        Alcotest.test_case "eviction order and churn" `Quick test_lru_eviction_order
        :: List.map (QCheck_alcotest.to_alcotest ~long:false) [ prop_lru_model ] );
      ("digests", List.map (QCheck_alcotest.to_alcotest ~long:false) [ prop_digest_rebuild ]);
      ( "node_map",
        List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [ prop_merge_scratch_parity; prop_merge_scratch_reuse ] );
      ( "end-to-end",
        [
          Alcotest.test_case "fig3 Off vs Full" `Slow test_fig3_obs_off_vs_full;
          Alcotest.test_case "pooled path K=1 vs K=4" `Slow test_pooled_path_k_equivalence;
        ] );
    ]
