(* Equivalence suite for the scaling refactor: the interned [Name], the
   struct-of-arrays [Pqueue], the calendar-queue scheduler, and the
   floatarray [Load_meter] must be bit-identical — structural results and
   RNG draw counts — to the semantics of the representations they
   replaced.  Each reference implementation below is a straight rewrite of
   the historical code (string-list names, record meters, option-returning
   heap), and qcheck drives both sides through the same operation
   sequences. *)

open Terradir_util
open Terradir_namespace

(* ------------------------------------------------------------------ *)
(* Reference names: the historical string-list representation          *)
(* ------------------------------------------------------------------ *)

module Ref_name = struct
  (* A reference name is its component list, root-first. *)

  let valid_component c = String.length c > 0 && not (String.contains c '/')

  let of_string s =
    List.filter (fun c -> c <> "") (String.split_on_char '/' s)

  let to_string = function [] -> "/" | cs -> "/" ^ String.concat "/" cs

  let child t c = if valid_component c then t @ [ c ] else invalid_arg "Ref_name.child"

  let parent t =
    match List.rev t with [] -> None | _ :: rest -> Some (List.rev rest)

  let basename t = match List.rev t with [] -> None | c :: _ -> Some c

  let depth = List.length

  let rec is_ancestor a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> String.equal x y && is_ancestor xs ys

  (* Strict prefixes, nearest first, ending with the root. *)
  let ancestors t =
    let rec prefixes pre acc = function
      | [] -> acc
      | c :: rest -> let pre = pre @ [ c ] in prefixes pre (pre :: acc) rest
    in
    match t with [] -> [] | _ -> List.tl (prefixes [] [ [] ] t)

  let rec lowest_common_ancestor a b =
    match (a, b) with
    | x :: xs, y :: ys when String.equal x y -> x :: lowest_common_ancestor xs ys
    | _ -> []

  let distance a b = depth a + depth b - (2 * depth (lowest_common_ancestor a b))

  let compare = List.compare String.compare

  let equal a b = compare a b = 0
end

(* Small alphabet so random names collide on prefixes (the interesting
   case for ancestors/LCA and for hash-consing). *)
let components_gen =
  QCheck.Gen.(list_size (int_bound 6) (map string_of_int (int_bound 3)))

let arb_components =
  QCheck.make ~print:(fun cs -> Ref_name.to_string cs) components_gen

let name_of_ref cs = Name.of_components cs

let prop_name_ops_match =
  QCheck.Test.make ~name:"interning: every Name op matches the string-list reference"
    ~count:500
    QCheck.(pair arb_components arb_components)
    (fun (a, b) ->
      let na = name_of_ref a and nb = name_of_ref b in
      String.equal (Name.to_string na) (Ref_name.to_string a)
      && Name.components na = a
      && Name.depth na = Ref_name.depth a
      && Name.basename na = Ref_name.basename a
      && (match (Name.parent na, Ref_name.parent a) with
         | None, None -> true
         | Some n, Some r -> Name.equal n (name_of_ref r)
         | _ -> false)
      && Name.is_ancestor na nb = Ref_name.is_ancestor a b
      && Name.is_ancestor nb na = Ref_name.is_ancestor b a
      && List.equal Name.equal (Name.ancestors na)
           (List.map name_of_ref (Ref_name.ancestors a))
      && Name.equal
           (Name.lowest_common_ancestor na nb)
           (name_of_ref (Ref_name.lowest_common_ancestor a b))
      && Name.distance na nb = Ref_name.distance a b
      && Name.equal na nb = Ref_name.equal a b
      &&
      let sign c = if c < 0 then -1 else if c > 0 then 1 else 0 in
      sign (Name.compare na nb) = sign (Ref_name.compare a b))

let prop_name_roundtrip_via_strings =
  QCheck.Test.make ~name:"interning: of_string agrees with the reference parser" ~count:300
    arb_components
    (fun a ->
      let s = Ref_name.to_string a in
      Name.equal (Name.of_string s) (name_of_ref (Ref_name.of_string s)))

let prop_name_hash_consing =
  QCheck.Test.make ~name:"interning: equal names share one id; ids are dense" ~count:300
    arb_components
    (fun a ->
      let n1 = name_of_ref a and n2 = Name.of_string (Ref_name.to_string a) in
      Name.id n1 = Name.id n2
      && Name.hash n1 = Name.id n1
      && Name.id n1 >= 0
      && Name.id n1 < Name.interned_count ())

let prop_name_child =
  QCheck.Test.make ~name:"interning: child agrees with the reference" ~count:300
    QCheck.(pair arb_components (int_bound 3))
    (fun (a, i) ->
      let c = string_of_int i in
      Name.equal (Name.child (name_of_ref a) c) (name_of_ref (Ref_name.child a c)))

(* ------------------------------------------------------------------ *)
(* Tree lookups through interned names                                 *)
(* ------------------------------------------------------------------ *)

let tree_roundtrip () =
  let tree = Build.balanced ~arity:3 ~levels:4 in
  for v = 0 to Tree.size tree - 1 do
    let n = Tree.name tree v in
    (match Tree.find tree n with
    | Some v' -> Alcotest.(check int) "find (name v) = v" v v'
    | None -> Alcotest.failf "vertex %d not found by its own name" v);
    match Tree.find_string tree (Name.to_string n) with
    | Some v' -> Alcotest.(check int) "find_string roundtrip" v v'
    | None -> Alcotest.failf "vertex %d not found by its path string" v
  done;
  Alcotest.(check (option int)) "unknown path" None (Tree.find_string tree "/no/such/node")

(* ------------------------------------------------------------------ *)
(* Pqueue (SoA heap) vs Calqueue: identical pop sequences              *)
(* ------------------------------------------------------------------ *)

(* Keys from a tiny set so FIFO ties are common — the ordering bug class
   both structures must agree on is equal-key insertion order. *)
type qop = Add of float | Pop

let qop_gen =
  QCheck.Gen.(
    frequency
      [ (3, map (fun k -> Add (float_of_int k /. 4.0)) (int_bound 8)); (2, pure Pop) ])

let arb_qops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map (function Add k -> Printf.sprintf "add %g" k | Pop -> "pop") ops))
    QCheck.Gen.(list_size (int_bound 60) qop_gen)

let prop_heap_calendar_equal =
  QCheck.Test.make ~name:"scheduler: heap and calendar agree on every op sequence"
    ~count:500 arb_qops
    (fun ops ->
      let h = Pqueue.create () and c = Calqueue.create () in
      let serial = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Add k ->
            incr serial;
            Pqueue.add h k !serial;
            Calqueue.add c k !serial
          | Pop -> (
            (match (Pqueue.min h, Calqueue.min c) with
            | Some (hk, hv), Some (ck, cv) -> ok := !ok && hk = ck && hv = cv
            | None, None -> ()
            | _ -> ok := false);
            match (Pqueue.pop h, Calqueue.pop c) with
            | Some (hk, hv), Some (ck, cv) -> ok := !ok && hk = ck && hv = cv
            | None, None -> ()
            | _ -> ok := false))
        ops;
      ok := !ok && Pqueue.length h = Calqueue.length c;
      (* Drain what remains: total order must match to the last element. *)
      let rec drain () =
        match (Pqueue.pop h, Calqueue.pop c) with
        | Some (hk, hv), Some (ck, cv) ->
          ok := !ok && hk = ck && hv = cv;
          drain ()
        | None, None -> ()
        | _ -> ok := false
      in
      drain ();
      !ok)

let prop_pop_exn_matches_pop =
  QCheck.Test.make ~name:"scheduler: top_key/pop_exn agree with min/pop" ~count:300 arb_qops
    (fun ops ->
      let a = Pqueue.create () and b = Pqueue.create () in
      let serial = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Add k ->
            incr serial;
            Pqueue.add a k !serial;
            Pqueue.add b k !serial
          | Pop -> (
            match Pqueue.pop a with
            | None -> ok := !ok && Pqueue.is_empty b
            | Some (k, v) ->
              ok := !ok && Pqueue.top_key b = k && Pqueue.pop_exn b = v))
        ops;
      !ok && Pqueue.length a = Pqueue.length b)

let calendar_peek_then_early_insert () =
  (* Regression: a peek's year-by-year walk advances the scan year past
     empty buckets.  An insert arriving ABOVE last_key but BELOW the
     advanced year (the parallel engine's coordinator peeks every lane
     between windows without popping) must pull the year back, or the
     walk skips the era once the cached min is popped. *)
  let c = Calqueue.create () in
  Calqueue.add_tagged c ~key:3.7 ~seq:1 ~tag:0 "far";
  ignore (Calqueue.top_key c) (* walk advances the scan year to 3 *);
  Calqueue.add_tagged c ~key:0.4 ~seq:2 ~tag:0 "near";
  Calqueue.add_tagged c ~key:0.6 ~seq:3 ~tag:0 "nearer";
  Alcotest.(check string) "cached min" "near" (Calqueue.pop_exn c);
  Alcotest.(check (float 0.0)) "era not skipped" 0.6 (Calqueue.top_key c);
  Alcotest.(check string) "in order" "nearer" (Calqueue.pop_exn c);
  Alcotest.(check string) "far last" "far" (Calqueue.pop_exn c)

let calendar_wide_spread () =
  (* Exercise bucket resizing and the direct-search fallback: widely and
     unevenly spread keys, then a full drain. *)
  let c = Calqueue.create () and h = Pqueue.create () in
  let rng = Splitmix.create 7 in
  for i = 1 to 2000 do
    let k =
      match Splitmix.int rng 3 with
      | 0 -> Splitmix.float rng 1.0
      | 1 -> 1000.0 +. Splitmix.float rng 1.0
      | _ -> Splitmix.float rng 1e6
    in
    Pqueue.add h k i;
    Calqueue.add c k i;
    if i mod 3 = 0 then begin
      let a = Pqueue.pop h and b = Calqueue.pop c in
      if a <> b then Alcotest.failf "mid-drain divergence at %d" i
    end
  done;
  let rec drain n =
    match (Pqueue.pop h, Calqueue.pop c) with
    | None, None -> n
    | a, b ->
      if a <> b then Alcotest.failf "drain divergence after %d pops" n;
      drain (n + 1)
  in
  ignore (drain 0)

(* ------------------------------------------------------------------ *)
(* Load_meter (floatarray) vs the historical record representation     *)
(* ------------------------------------------------------------------ *)

module Ref_meter = struct
  type t = {
    window : float;
    mutable window_start : float;
    mutable busy_in_window : float;
    mutable last_window_load : float;
    mutable prev_window_load : float;
    mutable adjustment : float option;
    mutable busy_since : float option;
    mutable total_busy : float;
    mutable last_event : float;
  }

  let create ~window =
    {
      window;
      window_start = 0.0;
      busy_in_window = 0.0;
      last_window_load = 0.0;
      prev_window_load = 0.0;
      adjustment = None;
      busy_since = None;
      total_busy = 0.0;
      last_event = 0.0;
    }

  let advance t now =
    while now >= t.window_start +. t.window do
      let boundary = t.window_start +. t.window in
      (match t.busy_since with
      | Some since ->
        t.busy_in_window <- t.busy_in_window +. (boundary -. since);
        t.total_busy <- t.total_busy +. (boundary -. since);
        t.busy_since <- Some boundary
      | None -> ());
      t.prev_window_load <- t.last_window_load;
      t.last_window_load <- Float.min 1.0 (t.busy_in_window /. t.window);
      t.busy_in_window <- 0.0;
      t.window_start <- boundary;
      t.adjustment <- None
    done

  let begin_busy t now =
    t.last_event <- now;
    advance t now;
    t.busy_since <- Some now

  let end_busy t now =
    t.last_event <- now;
    advance t now;
    match t.busy_since with
    | Some since ->
      t.busy_in_window <- t.busy_in_window +. (now -. since);
      t.total_busy <- t.total_busy +. (now -. since);
      t.busy_since <- None
    | None -> assert false

  let raw_load t now =
    advance t now;
    t.last_window_load

  let load t now =
    advance t now;
    match t.adjustment with Some a -> a | None -> t.last_window_load

  let sustained_load t now =
    advance t now;
    match t.adjustment with
    | Some a -> a
    | None -> Float.min t.last_window_load t.prev_window_load

  let set_adjustment t v = t.adjustment <- Some (Float.max 0.0 (Float.min 1.0 v))

  let busy_fraction_so_far t now =
    advance t now;
    let live = match t.busy_since with Some s -> now -. s | None -> 0.0 in
    let elapsed = now -. t.window_start in
    if elapsed <= 0.0 then 0.0 else Float.min 1.0 ((t.busy_in_window +. live) /. elapsed)

  let total_busy_time t now =
    let live = match t.busy_since with Some s -> now -. s | None -> 0.0 in
    t.total_busy +. live
end

type mop = Begin | End | Load | Raw | Sustained | Adjust of float | Fraction | Total

let mop_gen =
  QCheck.Gen.(
    frequency
      [
        (3, pure Begin);
        (3, pure End);
        (2, pure Load);
        (1, pure Raw);
        (1, pure Sustained);
        (1, map (fun v -> Adjust (float_of_int v /. 8.0)) (int_bound 12));
        (1, pure Fraction);
        (1, pure Total);
      ])

let arb_mops =
  QCheck.make
    ~print:(fun ops -> string_of_int (List.length ops))
    QCheck.Gen.(list_size (int_bound 80) (pair mop_gen (int_bound 30)))

let prop_load_meter_matches =
  QCheck.Test.make ~name:"load meter: floatarray equals the record reference" ~count:500
    arb_mops
    (fun ops ->
      let m = Terradir.Load_meter.create ~window:0.5 in
      let r = Ref_meter.create ~window:0.5 in
      let now = ref 0.0 in
      let busy = ref false in
      let same a b = Float.abs (a -. b) <= 1e-12 in
      List.for_all
        (fun (op, dt) ->
          now := !now +. (float_of_int dt /. 16.0);
          let t = !now in
          match op with
          | Begin ->
            if !busy then true
            else begin
              busy := true;
              Terradir.Load_meter.begin_busy m t;
              Ref_meter.begin_busy r t;
              Terradir.Load_meter.is_busy m
            end
          | End ->
            if not !busy then true
            else begin
              busy := false;
              Terradir.Load_meter.end_busy m t;
              Ref_meter.end_busy r t;
              not (Terradir.Load_meter.is_busy m)
            end
          | Load -> same (Terradir.Load_meter.load m t) (Ref_meter.load r t)
          | Raw -> same (Terradir.Load_meter.raw_load m t) (Ref_meter.raw_load r t)
          | Sustained ->
            same (Terradir.Load_meter.sustained_load m t) (Ref_meter.sustained_load r t)
          | Adjust v ->
            Terradir.Load_meter.set_adjustment m v;
            Ref_meter.set_adjustment r v;
            same (Terradir.Load_meter.load m t) (Ref_meter.load r t)
          | Fraction ->
            same
              (Terradir.Load_meter.busy_fraction_so_far m t)
              (Ref_meter.busy_fraction_so_far r t)
          | Total ->
            same (Terradir.Load_meter.total_busy_time m t) (Ref_meter.total_busy_time r t))
        ops)

(* ------------------------------------------------------------------ *)
(* Splitmix draw accounting                                            *)
(* ------------------------------------------------------------------ *)

let splitmix_draw_counting () =
  let g = Splitmix.create 42 in
  Alcotest.(check int) "fresh stream has zero draws" 0 (Splitmix.draws g);
  let _ = Splitmix.float g 1.0 in
  Alcotest.(check int) "float is one draw" 1 (Splitmix.draws g);
  (* [int] uses rejection sampling: draws advance by at least one per call
     and the copy replays the identical sequence with identical counts. *)
  let c = Splitmix.copy g in
  Alcotest.(check int) "copy preserves the count" (Splitmix.draws g) (Splitmix.draws c);
  for bound = 1 to 100 do
    let before = Splitmix.draws g in
    let x = Splitmix.int g bound and y = Splitmix.int c bound in
    Alcotest.(check int) "copy replays the value" x y;
    Alcotest.(check int) "copy replays the draw count" (Splitmix.draws g) (Splitmix.draws c);
    if Splitmix.draws g < before + 1 then Alcotest.fail "int consumed no draw"
  done;
  let child = Splitmix.split g in
  Alcotest.(check int) "split child starts at zero" 0 (Splitmix.draws child)

let prop_node_map_merge_draws =
  (* Same inputs, same rng seed → same result and the same number of raw
     rng advances: [Splitmix.draws] is the currency the interning work is
     audited in, so pin merge's consumption to being deterministic. *)
  QCheck.Test.make ~name:"node map: merge rng consumption is input-deterministic"
    ~count:300
    QCheck.(pair (list_of_size (Gen.int_bound 8) (int_bound 9)) (int_bound 1000))
    (fun (servers, seed) ->
      let entries stamp =
        List.mapi
          (fun i s -> { Terradir.Node_map.server = s; is_owner = i = 0; stamp })
          servers
      in
      let a = Terradir.Node_map.of_entries ~max:4 (entries 1.0) in
      let b = Terradir.Node_map.of_entries ~max:4 (entries 2.0) in
      let run () =
        let rng = Splitmix.create seed in
        let m = Terradir.Node_map.merge ~max:4 rng a b in
        (Terradir.Node_map.entries m, Splitmix.draws rng)
      in
      let r1, d1 = run () and r2, d2 = run () in
      r1 = r2 && d1 = d2)

let () =
  let q = List.map (QCheck_alcotest.to_alcotest ~long:false) in
  Alcotest.run "interning"
    [
      ( "names",
        q
          [
            prop_name_ops_match;
            prop_name_roundtrip_via_strings;
            prop_name_hash_consing;
            prop_name_child;
          ]
        @ [ Alcotest.test_case "tree name/find roundtrip" `Quick tree_roundtrip ] );
      ( "scheduler",
        q [ prop_heap_calendar_equal; prop_pop_exn_matches_pop ]
        @ [
            Alcotest.test_case "calendar wide key spread" `Quick calendar_wide_spread;
            Alcotest.test_case "calendar peek then early insert" `Quick
              calendar_peek_then_early_insert;
          ] );
      ("meters", q [ prop_load_meter_matches ]);
      ( "rng",
        q [ prop_node_map_merge_draws ]
        @ [ Alcotest.test_case "splitmix draw counting" `Quick splitmix_draw_counting ] );
    ]
