(* Tests for per-server state management: hosting, replica install/evict,
   neighbor-context refcounting, digest freshness, map bookkeeping. *)

open Terradir_util
open Terradir_namespace
open Terradir
open Types

let tree = Build.balanced ~arity:2 ~levels:4 (* 31 nodes *)

let config = { Config.default with Config.num_servers = 8; r_fact = 2.0; cache_slots = 8 }

let owner_of node = node mod 8

let mk_server ?(id = 0) ?(cfg = config) () =
  Server.create ~id ~config:cfg ~tree ~rng:(Splitmix.create (id + 100)) ()

let owned_server ?(id = 0) ?(cfg = config) nodes =
  let s = mk_server ~id ~cfg () in
  List.iter (fun n -> Server.add_owned s n ~owner_of ~now:0.0) nodes;
  s

let payload_for node =
  {
    rp_node = node;
    rp_meta_version = 3;
    rp_map = Node_map.singleton ~is_owner:true ~server:(owner_of node) ~stamp:1.0 ();
    rp_context =
      List.map
        (fun nb -> (nb, Node_map.singleton ~is_owner:true ~server:(owner_of nb) ~stamp:1.0 ()))
        (Tree.neighbors tree node);
    rp_weight_hint = 2.0;
  }

let test_add_owned () =
  let s = owned_server [ 1; 6 ] in
  Alcotest.(check bool) "hosts owned" true (Server.hosts s 1 && Server.hosts s 6);
  Alcotest.(check int) "owned count" 2 s.Server.owned_count;
  Alcotest.(check (list int)) "owned nodes" [ 1; 6 ] (List.sort compare (Server.owned_nodes s));
  (* context present for every tree neighbor *)
  List.iter
    (fun n ->
      List.iter
        (fun nb ->
          Alcotest.(check bool)
            (Printf.sprintf "context for %d" nb)
            true
            (Server.hosts s nb || Server.neighbor_map s nb <> None))
        (Tree.neighbors tree n))
    [ 1; 6 ];
  (* self pinned as owner in own map *)
  (match Server.find_hosted s 1 with
  | Some h -> Alcotest.(check (option int)) "owner is self" (Some 0) (Node_map.owner h.Server.h_map)
  | None -> Alcotest.fail "hosted");
  Invariant.assert_server s ~now:0.0;
  Alcotest.check_raises "double add" (Invalid_argument "Server.add_owned: already hosted")
    (fun () -> Server.add_owned s 1 ~owner_of ~now:0.0)

let test_digest_covers_hosted () =
  let s = owned_server [ 1; 6 ] in
  List.iter
    (fun n ->
      Alcotest.(check bool) "digest membership" true
        (Terradir_bloom.Bloom.mem (Digest_store.local s.Server.digests) n))
    [ 1; 6 ]

let test_install_replica () =
  let s = owned_server [ 1 ] in
  (match Server.install_replica s (payload_for 20) ~now:1.0 with
  | `Installed -> ()
  | `Merged | `Rejected -> Alcotest.fail "expected install");
  Alcotest.(check bool) "hosts replica" true (Server.hosts s 20);
  Alcotest.(check int) "replica count" 1 s.Server.replica_count;
  Alcotest.(check (list int)) "replica nodes" [ 20 ] (Server.replica_nodes s);
  (match Server.find_hosted s 20 with
  | Some h ->
    Alcotest.(check int) "meta version" 3 h.Server.h_meta_version;
    Alcotest.(check bool) "self in map" true (Node_map.mem h.Server.h_map 0);
    Alcotest.(check bool) "owner in map" true (Node_map.mem h.Server.h_map (owner_of 20))
  | None -> Alcotest.fail "hosted record");
  Alcotest.(check (float 1e-9)) "ranking seeded" 2.0 (Ranking.weight s.Server.ranking 20);
  Alcotest.(check bool) "digest updated" true
    (Terradir_bloom.Bloom.mem (Digest_store.local s.Server.digests) 20);
  Invariant.assert_server s ~now:1.0

let test_install_replica_merge () =
  let s = owned_server [ 1 ] in
  ignore (Server.install_replica s (payload_for 20) ~now:1.0);
  let newer = { (payload_for 20) with rp_meta_version = 9 } in
  (match Server.install_replica s newer ~now:2.0 with
  | `Merged -> ()
  | `Installed | `Rejected -> Alcotest.fail "expected merge");
  Alcotest.(check int) "still one replica" 1 s.Server.replica_count;
  match Server.find_hosted s 20 with
  | Some h -> Alcotest.(check int) "meta upgraded" 9 h.Server.h_meta_version
  | None -> Alcotest.fail "hosted"

let test_replica_budget_eviction () =
  let s = owned_server [ 1 ] in
  (* r_fact = 2, owned = 1 → at most 2 replicas. *)
  ignore (Server.install_replica s (payload_for 20) ~now:1.0);
  ignore (Server.install_replica s (payload_for 21) ~now:1.0);
  Alcotest.(check int) "budget exhausted" 0 (Server.replica_budget s);
  (* make 21 clearly hotter so 20 is the eviction victim *)
  Server.touch_node s 21 ~now:1.1;
  Server.touch_node s 21 ~now:1.2;
  (match Server.install_replica s (payload_for 22) ~now:2.0 with
  | `Installed -> ()
  | `Merged | `Rejected -> Alcotest.fail "expected install with eviction");
  Alcotest.(check int) "still at cap" 2 s.Server.replica_count;
  Alcotest.(check bool) "lowest-ranked evicted" false (Server.hosts s 20);
  Alcotest.(check bool) "hot replica kept" true (Server.hosts s 21);
  Alcotest.(check int) "eviction counted" 1 s.Server.replicas_evicted;
  Invariant.assert_server s ~now:2.0

let test_displacement_needs_dominance () =
  let s = owned_server [ 1 ] in
  ignore (Server.install_replica s (payload_for 20) ~now:1.0);
  ignore (Server.install_replica s (payload_for 21) ~now:1.0);
  (* all weights equal (hint 2.0): the incoming node does not dominate any
     victim, so nothing is displaced — no thrash under flat demand *)
  (match Server.install_replica s (payload_for 22) ~now:2.0 with
  | `Rejected -> ()
  | `Installed | `Merged -> Alcotest.fail "equal-weight displacement must be rejected");
  Alcotest.(check bool) "both replicas kept" true (Server.hosts s 20 && Server.hosts s 21);
  (* once a victim is clearly colder (2x margin), displacement proceeds *)
  Ranking.seed s.Server.ranking 20 0.5;
  (match Server.install_replica s (payload_for 22) ~now:3.0 with
  | `Installed -> ()
  | `Merged | `Rejected -> Alcotest.fail "dominated victim must be displaced");
  Alcotest.(check bool) "cold victim gone" false (Server.hosts s 20);
  Invariant.assert_server s ~now:3.0

let test_install_rejected_when_no_budget () =
  let cfg = { config with Config.r_fact = 0.0 } in
  let s = owned_server ~cfg [ 1 ] in
  match Server.install_replica s (payload_for 20) ~now:1.0 with
  | `Rejected -> Alcotest.(check int) "nothing hosted" 0 s.Server.replica_count
  | `Installed | `Merged -> Alcotest.fail "expected rejection"

let test_evict_replica_refcounts () =
  let s = owned_server [ 5 ] in
  (* node 5's neighbors: 2 (parent), 11, 12. Install replica of 2 — shares
     neighbor 5... (2's neighbors are 0, 5, 6). *)
  ignore (Server.install_replica s (payload_for 2) ~now:1.0);
  Invariant.assert_server s ~now:1.0;
  Server.evict_replica s 2;
  Alcotest.(check bool) "gone" false (Server.hosts s 2);
  Invariant.assert_server s ~now:1.0;
  (* original owned context intact *)
  List.iter
    (fun nb ->
      Alcotest.(check bool) "context kept" true
        (Server.hosts s nb || Server.neighbor_map s nb <> None))
    (Tree.neighbors tree 5);
  Alcotest.check_raises "evicting owned"
    (Invalid_argument "Server.evict_replica: node is owned, not a replica") (fun () ->
      Server.evict_replica s 5);
  Alcotest.check_raises "evicting absent" (Invalid_argument "Server.evict_replica: node not hosted")
    (fun () -> Server.evict_replica s 2)

let test_idle_scan () =
  let cfg = { config with Config.replica_idle_timeout = 60.0 } in
  let s = owned_server ~cfg [ 1 ] in
  ignore (Server.install_replica s (payload_for 20) ~now:0.0);
  ignore (Server.install_replica s (payload_for 21) ~now:0.0);
  Server.touch_node s 21 ~now:50.0;
  let evicted = Server.idle_scan s ~now:70.0 in
  (* idle timeout set to 60 s: replica 20 unused since 0.0 goes, 21 stays. *)
  Alcotest.(check (list int)) "idle replica evicted" [ 20 ] evicted;
  Alcotest.(check bool) "active replica kept" true (Server.hosts s 21);
  Invariant.assert_server s ~now:70.0;
  (* nothing else is stale yet under the same timeout *)
  Alcotest.(check (list int)) "second scan idle" [] (Server.idle_scan s ~now:80.0)

let test_known_map_priority () =
  let s = owned_server [ 5 ] in
  (* hosted beats neighbor beats cache *)
  (match Server.known_map s 5 with
  | Some m -> Alcotest.(check bool) "hosted map has self" true (Node_map.mem m 0)
  | None -> Alcotest.fail "hosted map");
  (match Server.known_map s 2 with
  | Some m -> Alcotest.(check bool) "neighbor map has owner" true (Node_map.mem m (owner_of 2))
  | None -> Alcotest.fail "neighbor map");
  Alcotest.(check bool) "unknown node" true (Server.known_map s 30 = None);
  Cache.insert s.Server.cache ~node:30 (Node_map.singleton ~server:3 ~stamp:1.0 ());
  Alcotest.(check bool) "cached map found" true (Server.known_map s 30 <> None)

let test_merge_into_known_map_routes () =
  let s = owned_server [ 5 ] in
  let incoming = Node_map.singleton ~server:7 ~stamp:9.0 () in
  (* hosted *)
  Server.merge_into_known_map s 5 incoming ~now:9.0;
  (match Server.find_hosted s 5 with
  | Some h ->
    Alcotest.(check bool) "merged into hosted" true (Node_map.mem h.Server.h_map 7);
    Alcotest.(check bool) "self still pinned" true (Node_map.mem h.Server.h_map 0)
  | None -> Alcotest.fail "hosted");
  (* neighbor *)
  Server.merge_into_known_map s 2 incoming ~now:9.0;
  (match Server.neighbor_map s 2 with
  | Some m -> Alcotest.(check bool) "merged into neighbor" true (Node_map.mem m 7)
  | None -> Alcotest.fail "neighbor map");
  (* neither → cache (caching on) *)
  Server.merge_into_known_map s 30 incoming ~now:9.0;
  Alcotest.(check bool) "cached" true (Cache.peek s.Server.cache ~node:30 <> None)

let test_merge_into_known_map_no_cache_when_disabled () =
  let cfg = { config with Config.features = Config.base } in
  let s = owned_server ~cfg [ 5 ] in
  Server.merge_into_known_map s 30 (Node_map.singleton ~server:7 ~stamp:9.0 ()) ~now:9.0;
  Alcotest.(check int) "not cached" 0 (Cache.length s.Server.cache)

let test_peer_loads () =
  let s = mk_server () in
  Server.note_peer_load s 3 0.5;
  Server.note_peer_load s 4 0.2;
  Server.note_peer_load s 5 0.9;
  Server.note_peer_load s 0 0.0 (* self: ignored *);
  (match Server.min_load_peer s ~exclude:[] with
  | Some (peer, load) ->
    Alcotest.(check int) "min peer" 4 peer;
    Alcotest.(check (float 1e-9)) "min load" 0.2 load
  | None -> Alcotest.fail "expected peer");
  (match Server.min_load_peer s ~exclude:[ 4 ] with
  | Some (peer, _) -> Alcotest.(check int) "exclusion" 3 peer
  | None -> Alcotest.fail "expected peer");
  Server.forget_peer s 3;
  (match Server.min_load_peer s ~exclude:[ 4 ] with
  | Some (peer, _) -> Alcotest.(check int) "after forget" 5 peer
  | None -> Alcotest.fail "expected peer");
  Alcotest.(check bool) "all excluded" true (Server.min_load_peer s ~exclude:[ 4; 5 ] = None)

let test_forget_server () =
  let s = owned_server [ 5 ] in
  ignore (Server.install_replica s (payload_for 20) ~now:1.0);
  (* hosted map *)
  Server.forget_server s 20 (owner_of 20);
  (match Server.find_hosted s 20 with
  | Some h -> Alcotest.(check bool) "owner dropped from hosted map" false (Node_map.mem h.Server.h_map (owner_of 20))
  | None -> Alcotest.fail "hosted");
  (* neighbor map *)
  Server.forget_server s 2 (owner_of 2);
  (match Server.neighbor_map s 2 with
  | Some m -> Alcotest.(check bool) "dropped from neighbor map" false (Node_map.mem m (owner_of 2))
  | None -> Alcotest.fail "neighbor");
  (* cached map: emptying it drops the entry *)
  Cache.insert s.Server.cache ~node:30 (Node_map.singleton ~server:3 ~stamp:1.0 ());
  Server.forget_server s 30 3;
  Alcotest.(check bool) "cache entry dropped when emptied" true
    (Cache.peek s.Server.cache ~node:30 = None)

let test_make_replica_payload () =
  let s = owned_server [ 5 ] in
  Server.touch_node s 5 ~now:0.1;
  Server.touch_node s 5 ~now:0.1;
  (match Server.make_replica_payload s 5 ~now:1.0 with
  | Some p ->
    Alcotest.(check int) "node" 5 p.rp_node;
    Alcotest.(check int) "full context" (List.length (Tree.neighbors tree 5))
      (List.length p.rp_context);
    List.iter
      (fun (_, m) -> Alcotest.(check bool) "context maps non-empty" false (Node_map.is_empty m))
      p.rp_context;
    Alcotest.(check (float 1e-9)) "weight hint is half" 1.0 p.rp_weight_hint
  | None -> Alcotest.fail "expected payload");
  Alcotest.(check bool) "absent node" true (Server.make_replica_payload s 9 ~now:1.0 = None)

let test_record_new_replica_advertised () =
  let s = owned_server [ 5 ] in
  Server.record_new_replica s 5 6 ~now:2.0;
  match Server.find_hosted s 5 with
  | Some h ->
    Alcotest.(check bool) "new replica in map" true (Node_map.mem h.Server.h_map 6);
    Alcotest.(check bool) "self retained" true (Node_map.mem h.Server.h_map 0)
  | None -> Alcotest.fail "hosted"

let test_state_kinds () =
  let s = owned_server [ 5 ] in
  ignore (Server.install_replica s (payload_for 20) ~now:1.0);
  Cache.insert s.Server.cache ~node:30 (Node_map.singleton ~server:3 ~stamp:1.0 ());
  let kinds = Server.state_kinds s in
  let kind_of n = List.assoc_opt n kinds in
  Alcotest.(check (option string)) "owned" (Some "Owned") (kind_of 5);
  Alcotest.(check (option string)) "replicated" (Some "Replicated") (kind_of 20);
  Alcotest.(check (option string)) "neighboring" (Some "Neighboring") (kind_of 2);
  Alcotest.(check (option string)) "cached" (Some "Cached") (kind_of 30)

(* Property: random sequences of installs/evictions/touches keep every
   internal invariant. *)
let prop_random_ops_keep_invariants =
  QCheck.Test.make ~name:"server: random op sequences preserve invariants" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 40) (pair (int_bound 2) (int_bound 30)))
    (fun ops ->
      let s = owned_server [ 1; 14 ] in
      let now = ref 1.0 in
      List.iter
        (fun (op, node) ->
          now := !now +. 0.25;
          match op with
          | 0 -> ignore (Server.install_replica s (payload_for node) ~now:!now)
          | 1 -> if List.mem node (Server.replica_nodes s) then Server.evict_replica s node
          | _ -> if Server.hosts s node then Server.touch_node s node ~now:!now)
        ops;
      Invariant.assert_server s ~now:!now;
      true)

let () =
  Alcotest.run "terradir_server"
    [
      ( "server",
        [
          Alcotest.test_case "add owned" `Quick test_add_owned;
          Alcotest.test_case "digest covers hosted" `Quick test_digest_covers_hosted;
          Alcotest.test_case "install replica" `Quick test_install_replica;
          Alcotest.test_case "install merge" `Quick test_install_replica_merge;
          Alcotest.test_case "budget eviction" `Quick test_replica_budget_eviction;
          Alcotest.test_case "displacement dominance" `Quick test_displacement_needs_dominance;
          Alcotest.test_case "install rejected" `Quick test_install_rejected_when_no_budget;
          Alcotest.test_case "evict refcounts" `Quick test_evict_replica_refcounts;
          Alcotest.test_case "idle scan" `Quick test_idle_scan;
          Alcotest.test_case "known map priority" `Quick test_known_map_priority;
          Alcotest.test_case "merge into known map" `Quick test_merge_into_known_map_routes;
          Alcotest.test_case "no cache when disabled" `Quick test_merge_into_known_map_no_cache_when_disabled;
          Alcotest.test_case "peer loads" `Quick test_peer_loads;
          Alcotest.test_case "forget server" `Quick test_forget_server;
          Alcotest.test_case "replica payload" `Quick test_make_replica_payload;
          Alcotest.test_case "advertise new replica" `Quick test_record_new_replica_advertised;
          Alcotest.test_case "state kinds" `Quick test_state_kinds;
        ] );
      ( "server-props",
        List.map (QCheck_alcotest.to_alcotest ~long:false) [ prop_random_ops_keep_invariants ] );
    ]
