(* Unit and property tests for the terradir_util foundation modules. *)

open Terradir_util

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Splitmix                                                            *)
(* ------------------------------------------------------------------ *)

let test_splitmix_deterministic () =
  let a = Splitmix.create 42 and b = Splitmix.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix.bits64 a) (Splitmix.bits64 b)
  done

let test_splitmix_seed_sensitivity () =
  let a = Splitmix.create 1 and b = Splitmix.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Splitmix.bits64 a <> Splitmix.bits64 b)

let test_splitmix_copy_independent () =
  let a = Splitmix.create 7 in
  let _ = Splitmix.bits64 a in
  let b = Splitmix.copy a in
  Alcotest.(check int64) "copy continues stream" (Splitmix.bits64 a) (Splitmix.bits64 b);
  let _ = Splitmix.bits64 a in
  (* b not advanced by a's draws *)
  let a' = Splitmix.copy a in
  Alcotest.(check int64) "copies align again" (Splitmix.bits64 a) (Splitmix.bits64 a')

let test_splitmix_split_diverges () =
  let a = Splitmix.create 9 in
  let child = Splitmix.split a in
  Alcotest.(check bool) "child stream differs" true (Splitmix.bits64 child <> Splitmix.bits64 a)

let test_splitmix_int_bounds () =
  let g = Splitmix.create 3 in
  for _ = 1 to 10_000 do
    let v = Splitmix.int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "zero bound rejected" (Invalid_argument "Splitmix.int: bound must be positive")
    (fun () -> ignore (Splitmix.int g 0))

let test_splitmix_int_uniformity () =
  let g = Splitmix.create 11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Splitmix.int g 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d near uniform (%d)" i c)
        true
        (abs (c - expected) < expected / 10))
    buckets

let test_splitmix_float_range () =
  let g = Splitmix.create 5 in
  for _ = 1 to 10_000 do
    let v = Splitmix.float g 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_splitmix_exponential_mean () =
  let g = Splitmix.create 13 in
  let s = Stats.create () in
  for _ = 1 to 200_000 do
    Stats.add s (Splitmix.exponential g 0.02)
  done;
  Alcotest.(check bool) "mean near 0.02" true (abs_float (Stats.mean s -. 0.02) < 0.001)

let test_permutation_is_permutation () =
  let g = Splitmix.create 21 in
  let p = Splitmix.permutation g 100 in
  let seen = Array.make 100 false in
  Array.iter (fun i -> seen.(i) <- true) p;
  Alcotest.(check bool) "all present" true (Array.for_all Fun.id seen)

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check int) "length" 100 (Bitset.length b);
  Alcotest.(check int) "empty count" 0 (Bitset.count b);
  Bitset.set b 0;
  Bitset.set b 63;
  Bitset.set b 99;
  Alcotest.(check bool) "bit 0" true (Bitset.mem b 0);
  Alcotest.(check bool) "bit 63" true (Bitset.mem b 63);
  Alcotest.(check bool) "bit 99" true (Bitset.mem b 99);
  Alcotest.(check bool) "bit 50 clear" false (Bitset.mem b 50);
  Alcotest.(check int) "count 3" 3 (Bitset.count b);
  Bitset.clear b 63;
  Alcotest.(check bool) "cleared" false (Bitset.mem b 63);
  Alcotest.(check int) "count 2" 2 (Bitset.count b)

let test_bitset_bounds () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "negative index" (Invalid_argument "Bitset.mem: index out of range")
    (fun () -> ignore (Bitset.mem b (-1)));
  Alcotest.check_raises "past end" (Invalid_argument "Bitset.set: index out of range")
    (fun () -> Bitset.set b 8)

let test_bitset_union_reset () =
  let a = Bitset.create 32 and b = Bitset.create 32 in
  Bitset.set a 1;
  Bitset.set b 2;
  Bitset.union_into ~dst:a b;
  Alcotest.(check bool) "union has 1" true (Bitset.mem a 1);
  Alcotest.(check bool) "union has 2" true (Bitset.mem a 2);
  Alcotest.(check bool) "src unchanged" false (Bitset.mem b 1);
  Bitset.reset a;
  Alcotest.(check int) "reset empties" 0 (Bitset.count a)

let test_bitset_copy_equal () =
  let a = Bitset.create 16 in
  Bitset.set a 5;
  let b = Bitset.copy a in
  Alcotest.(check bool) "copies equal" true (Bitset.equal a b);
  Bitset.set b 6;
  Alcotest.(check bool) "copy independent" false (Bitset.equal a b)

let prop_bitset_set_then_mem =
  QCheck.Test.make ~name:"bitset: set bits are members, others are not" ~count:200
    QCheck.(pair (int_bound 500) (small_list (int_bound 500)))
    (fun (extra, indices) ->
      let size = 501 in
      let b = Bitset.create size in
      List.iter (fun i -> Bitset.set b i) indices;
      let expected i = List.mem i indices in
      List.for_all (fun i -> Bitset.mem b i = expected i) (extra :: indices))

let prop_bitset_count =
  QCheck.Test.make ~name:"bitset: count equals distinct set bits" ~count:200
    QCheck.(small_list (int_bound 300))
    (fun indices ->
      let b = Bitset.create 301 in
      List.iter (fun i -> Bitset.set b i) indices;
      Bitset.count b = List.length (List.sort_uniq compare indices))

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)
(* ------------------------------------------------------------------ *)

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  List.iter (fun (k, v) -> Pqueue.add q k v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  let drain () = match Pqueue.pop q with Some (_, v) -> v | None -> "?" in
  let first = drain () in
  let second = drain () in
  let third = drain () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ first; second; third ];
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.add q 5.0 v) [ 1; 2; 3; 4 ];
  let order = List.filter_map (fun _ -> Option.map snd (Pqueue.pop q)) [ (); (); (); () ] in
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3; 4 ] order

let test_pqueue_min_peek () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty min" true (Pqueue.min q = None);
  Pqueue.add q 2.0 "x";
  Pqueue.add q 1.0 "y";
  (match Pqueue.min q with
  | Some (k, v) ->
    check_float "min key" 1.0 k;
    Alcotest.(check string) "min value" "y" v
  | None -> Alcotest.fail "expected min");
  Alcotest.(check int) "peek does not remove" 2 (Pqueue.length q)

let test_pqueue_to_sorted_list () =
  let q = Pqueue.create () in
  List.iter (fun k -> Pqueue.add q k (int_of_float k)) [ 4.0; 1.0; 3.0; 2.0 ];
  let keys = List.map fst (Pqueue.to_sorted_list q) in
  Alcotest.(check (list (float 0.0))) "sorted view" [ 1.0; 2.0; 3.0; 4.0 ] keys;
  Alcotest.(check int) "queue intact" 4 (Pqueue.length q)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue: pops are sorted" ~count:200
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun keys ->
      let q = Pqueue.create () in
      List.iter (fun k -> Pqueue.add q k ()) keys;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some (k, ()) -> drain (k :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare keys)

(* ------------------------------------------------------------------ *)
(* Lru                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lru_put_find () =
  let c = Lru.create ~capacity:2 in
  Lru.put c 1 "a";
  Lru.put c 2 "b";
  Alcotest.(check (option string)) "find 1" (Some "a") (Lru.find c 1);
  Lru.put c 3 "c";
  (* 2 was least recently used after find 1 promoted key 1 *)
  Alcotest.(check (option string)) "2 evicted" None (Lru.find c 2);
  Alcotest.(check (option string)) "1 kept" (Some "a") (Lru.find c 1);
  Alcotest.(check (option string)) "3 kept" (Some "c") (Lru.find c 3)

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:3 in
  List.iter (fun k -> Lru.put c k k) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "mru order" [ 3; 2; 1 ] (Lru.keys_mru_order c);
  ignore (Lru.find c 1);
  Alcotest.(check (list int)) "promoted" [ 1; 3; 2 ] (Lru.keys_mru_order c);
  Lru.put c 4 4;
  Alcotest.(check bool) "2 evicted" false (Lru.mem c 2);
  Alcotest.(check int) "length" 3 (Lru.length c)

let test_lru_peek_no_promote () =
  let c = Lru.create ~capacity:2 in
  Lru.put c 1 "a";
  Lru.put c 2 "b";
  Alcotest.(check (option string)) "peek" (Some "a") (Lru.peek c 1);
  Lru.put c 3 "c";
  Alcotest.(check bool) "1 evicted despite peek" false (Lru.mem c 1)

let test_lru_zero_capacity () =
  let c = Lru.create ~capacity:0 in
  Lru.put c 1 "a";
  Alcotest.(check int) "stays empty" 0 (Lru.length c);
  Alcotest.(check (option string)) "no find" None (Lru.find c 1)

let test_lru_update_existing () =
  let c = Lru.create ~capacity:2 in
  Lru.put c 1 "a";
  Lru.put c 2 "b";
  Lru.put c 1 "a2";
  Alcotest.(check (option string)) "updated" (Some "a2") (Lru.find c 1);
  Alcotest.(check int) "no duplicate" 2 (Lru.length c)

let test_lru_remove () =
  let c = Lru.create ~capacity:4 in
  List.iter (fun k -> Lru.put c k k) [ 1; 2; 3 ];
  Lru.remove c 2;
  Alcotest.(check bool) "removed" false (Lru.mem c 2);
  Alcotest.(check (list int)) "list intact" [ 3; 1 ] (Lru.keys_mru_order c);
  Lru.remove c 42 (* removing absent key is a no-op *)

let test_lru_hit_accounting () =
  let c = Lru.create ~capacity:2 in
  Alcotest.(check (float 1e-9)) "empty rate" 0.0 (Lru.hit_rate c);
  Lru.put c 1 "a";
  ignore (Lru.find c 1);
  ignore (Lru.find c 2);
  ignore (Lru.find c 1);
  Alcotest.(check int) "hits" 2 (Lru.hits c);
  Alcotest.(check int) "misses" 1 (Lru.misses c);
  Alcotest.(check (float 1e-9)) "rate" (2.0 /. 3.0) (Lru.hit_rate c);
  (* peek and mem are inspection, not use *)
  ignore (Lru.peek c 1);
  ignore (Lru.peek c 9);
  ignore (Lru.mem c 1);
  Alcotest.(check int) "peek/mem do not count hits" 2 (Lru.hits c);
  Alcotest.(check int) "peek/mem do not count misses" 1 (Lru.misses c);
  (* clear drops entries, keeps accounting *)
  Lru.clear c;
  Alcotest.(check int) "hits survive clear" 2 (Lru.hits c);
  ignore (Lru.find c 1);
  Alcotest.(check int) "post-clear lookup is a miss" 2 (Lru.misses c)

let prop_lru_capacity_respected =
  QCheck.Test.make ~name:"lru: length never exceeds capacity" ~count:200
    QCheck.(pair (int_range 1 16) (small_list (int_bound 50)))
    (fun (cap, keys) ->
      let c = Lru.create ~capacity:cap in
      List.iter (fun k -> Lru.put c k k) keys;
      Lru.length c <= cap)

let prop_lru_contains_recent =
  QCheck.Test.make ~name:"lru: the most recent distinct keys are present" ~count:200
    QCheck.(pair (int_range 1 8) (list_of_size (Gen.return 30) (int_bound 20)))
    (fun (cap, keys) ->
      let c = Lru.create ~capacity:cap in
      List.iter (fun k -> Lru.put c k k) keys;
      (* The last [cap] distinct keys inserted must be retained. *)
      let rec last_distinct acc = function
        | [] -> acc
        | k :: rest ->
          if List.length acc >= cap then acc
          else if List.mem k acc then last_distinct acc rest
          else last_distinct (k :: acc) rest
      in
      let recent = last_distinct [] (List.rev keys) in
      List.for_all (fun k -> Lru.mem c k) recent)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Stats.count s);
  check_float "mean" 5.0 (Stats.mean s);
  check_float "variance" (32.0 /. 7.0) (Stats.variance s);
  check_float "min" 2.0 (Stats.min_value s);
  check_float "max" 9.0 (Stats.max_value s);
  check_float "total" 40.0 (Stats.total s)

let test_stats_empty () =
  let s = Stats.create () in
  check_float "empty mean" 0.0 (Stats.mean s);
  check_float "empty variance" 0.0 (Stats.variance s);
  Alcotest.check_raises "empty min" (Invalid_argument "Stats.min_value: empty") (fun () ->
      ignore (Stats.min_value s))

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  let xs = [ 1.0; 2.0; 3.0 ] and ys = [ 10.0; 20.0; 30.0; 40.0 ] in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  List.iter (Stats.add whole) (xs @ ys);
  let m = Stats.merge a b in
  Alcotest.(check int) "merged count" (Stats.count whole) (Stats.count m);
  check_float "merged mean" (Stats.mean whole) (Stats.mean m);
  Alcotest.(check (float 1e-6)) "merged variance" (Stats.variance whole) (Stats.variance m);
  check_float "merged min" (Stats.min_value whole) (Stats.min_value m);
  check_float "merged max" (Stats.max_value whole) (Stats.max_value m)

let test_stats_merge_empty () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add b 5.0;
  let m = Stats.merge a b in
  Alcotest.(check int) "count" 1 (Stats.count m);
  check_float "mean" 5.0 (Stats.mean m)

let test_reservoir_percentiles () =
  let rng = Splitmix.create 17 in
  let r = Stats.Reservoir.create ~capacity:1000 rng in
  for i = 1 to 1000 do
    Stats.Reservoir.add r (float_of_int i)
  done;
  (* capacity = samples, so percentiles are exact *)
  check_float "median" 500.5 (Stats.Reservoir.percentile r 0.5);
  check_float "p0" 1.0 (Stats.Reservoir.percentile r 0.0);
  check_float "p100" 1000.0 (Stats.Reservoir.percentile r 1.0)

let test_reservoir_subsampling () =
  let rng = Splitmix.create 23 in
  let r = Stats.Reservoir.create ~capacity:512 rng in
  for i = 1 to 100_000 do
    Stats.Reservoir.add r (float_of_int (i mod 1000))
  done;
  Alcotest.(check int) "sees all" 100_000 (Stats.Reservoir.count r);
  let median = Stats.Reservoir.percentile r 0.5 in
  Alcotest.(check bool) "median approx 500" true (abs_float (median -. 500.0) < 60.0)

let prop_stats_mean_bounded =
  QCheck.Test.make ~name:"stats: min <= mean <= max" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_inclusive 100.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      Stats.min_value s <= Stats.mean s +. 1e-9 && Stats.mean s <= Stats.max_value s +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Timeseries                                                          *)
(* ------------------------------------------------------------------ *)

let test_timeseries_binning () =
  let ts = Timeseries.create () in
  Timeseries.add ts 0.2 1.0;
  Timeseries.add ts 0.9 2.0;
  Timeseries.add ts 1.5 5.0;
  Timeseries.incr ts 3.1;
  Alcotest.(check int) "bins" 4 (Timeseries.num_bins ts);
  Alcotest.(check (array (float 1e-9))) "sums" [| 3.0; 5.0; 0.0; 1.0 |] (Timeseries.sums ts);
  Alcotest.(check (array int)) "counts" [| 2; 1; 0; 1 |] (Timeseries.counts ts)

let test_timeseries_means_maxima () =
  let ts = Timeseries.create ~bin:2.0 () in
  Timeseries.add ts 0.0 4.0;
  Timeseries.add ts 1.0 6.0;
  Timeseries.add ts 2.5 10.0;
  Alcotest.(check (array (float 1e-9))) "means" [| 5.0; 10.0 |] (Timeseries.means ts);
  Alcotest.(check (array (float 1e-9))) "maxima" [| 6.0; 10.0 |] (Timeseries.maxima ts)

let test_timeseries_observe_max () =
  let ts = Timeseries.create () in
  Timeseries.observe_max ts 0.1 0.5;
  Timeseries.observe_max ts 0.2 0.9;
  Timeseries.observe_max ts 0.3 0.7;
  Alcotest.(check (array (float 1e-9))) "max kept" [| 0.9 |] (Timeseries.maxima ts)

let test_timeseries_smoothed_max () =
  let ts = Timeseries.create () in
  List.iteri (fun i v -> Timeseries.observe_max ts (float_of_int i +. 0.5) v) [ 1.0; 3.0; 5.0 ];
  let sm = Timeseries.smoothed_max ts ~window:2 in
  Alcotest.(check (array (float 1e-9))) "trailing window mean" [| 1.0; 2.0; 4.0 |] sm

let test_timeseries_rejects_negative_time () =
  let ts = Timeseries.create () in
  Alcotest.check_raises "negative time" (Invalid_argument "Timeseries: negative time")
    (fun () -> Timeseries.add ts (-1.0) 1.0)

let prop_timeseries_total_preserved =
  QCheck.Test.make ~name:"timeseries: sum of bins = sum of samples" ~count:200
    QCheck.(small_list (pair (float_bound_inclusive 50.0) (float_bound_inclusive 10.0)))
    (fun samples ->
      let ts = Timeseries.create () in
      List.iter (fun (t, v) -> Timeseries.add ts t v) samples;
      let total = Array.fold_left ( +. ) 0.0 (Timeseries.sums ts) in
      let expected = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 samples in
      abs_float (total -. expected) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Tablefmt                                                            *)
(* ------------------------------------------------------------------ *)

let test_tablefmt_render () =
  let out = Tablefmt.render ~header:[ "name"; "value" ] [ [ "a"; "1" ]; [ "bb"; "22" ] ] in
  Alcotest.(check bool) "has header" true
    (String.length out > 0 && String.index_opt out 'n' <> None);
  (* all lines same width *)
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  let w = String.length (List.hd lines) in
  Alcotest.(check bool) "rectangular" true (List.for_all (fun l -> String.length l = w) lines)

let test_tablefmt_ragged_rows () =
  let out = Tablefmt.render ~header:[ "a"; "b"; "c" ] [ [ "1" ]; [ "1"; "2"; "3"; "4" ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_tablefmt_float_cell () =
  Alcotest.(check string) "fixed point" "1.2346" (Tablefmt.float_cell 1.23456);
  Alcotest.(check string) "decimals" "1.2" (Tablefmt.float_cell ~decimals:1 1.23456);
  Alcotest.(check string) "nan" "-" (Tablefmt.float_cell Float.nan)

let test_tablefmt_csv () =
  let out = Tablefmt.csv ~header:[ "x"; "y" ] [ [ "1"; "2" ] ] in
  Alcotest.(check string) "csv" "x,y\n1,2\n" out;
  Alcotest.check_raises "separator rejected"
    (Invalid_argument "Tablefmt.csv: cell contains separator") (fun () ->
      ignore (Tablefmt.csv ~header:[ "a" ] [ [ "1,2" ] ]))

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "terradir_util"
    [
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_splitmix_seed_sensitivity;
          Alcotest.test_case "copy independent" `Quick test_splitmix_copy_independent;
          Alcotest.test_case "split diverges" `Quick test_splitmix_split_diverges;
          Alcotest.test_case "int bounds" `Quick test_splitmix_int_bounds;
          Alcotest.test_case "int uniformity" `Quick test_splitmix_int_uniformity;
          Alcotest.test_case "float range" `Quick test_splitmix_float_range;
          Alcotest.test_case "exponential mean" `Quick test_splitmix_exponential_mean;
          Alcotest.test_case "permutation" `Quick test_permutation_is_permutation;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "union/reset" `Quick test_bitset_union_reset;
          Alcotest.test_case "copy/equal" `Quick test_bitset_copy_equal;
        ] );
      qsuite "bitset-props" [ prop_bitset_set_then_mem; prop_bitset_count ];
      ( "pqueue",
        [
          Alcotest.test_case "ordering" `Quick test_pqueue_ordering;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "min peek" `Quick test_pqueue_min_peek;
          Alcotest.test_case "sorted view" `Quick test_pqueue_to_sorted_list;
        ] );
      qsuite "pqueue-props" [ prop_pqueue_sorted ];
      ( "lru",
        [
          Alcotest.test_case "put/find" `Quick test_lru_put_find;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "peek no promote" `Quick test_lru_peek_no_promote;
          Alcotest.test_case "zero capacity" `Quick test_lru_zero_capacity;
          Alcotest.test_case "update existing" `Quick test_lru_update_existing;
          Alcotest.test_case "remove" `Quick test_lru_remove;
          Alcotest.test_case "hit accounting" `Quick test_lru_hit_accounting;
        ] );
      qsuite "lru-props" [ prop_lru_capacity_respected; prop_lru_contains_recent ];
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "merge empty" `Quick test_stats_merge_empty;
          Alcotest.test_case "reservoir percentiles" `Quick test_reservoir_percentiles;
          Alcotest.test_case "reservoir subsampling" `Quick test_reservoir_subsampling;
        ] );
      qsuite "stats-props" [ prop_stats_mean_bounded ];
      ( "timeseries",
        [
          Alcotest.test_case "binning" `Quick test_timeseries_binning;
          Alcotest.test_case "means/maxima" `Quick test_timeseries_means_maxima;
          Alcotest.test_case "observe max" `Quick test_timeseries_observe_max;
          Alcotest.test_case "smoothed max" `Quick test_timeseries_smoothed_max;
          Alcotest.test_case "negative time" `Quick test_timeseries_rejects_negative_time;
        ] );
      qsuite "timeseries-props" [ prop_timeseries_total_preserved ];
      ( "tablefmt",
        [
          Alcotest.test_case "render" `Quick test_tablefmt_render;
          Alcotest.test_case "ragged rows" `Quick test_tablefmt_ragged_rows;
          Alcotest.test_case "float cell" `Quick test_tablefmt_float_cell;
          Alcotest.test_case "csv" `Quick test_tablefmt_csv;
        ] );
    ]
