(* End-to-end scale smoke: a 10 000-server deployment driven under the
   runtime invariant auditor (TERRADIR_AUDIT=1 — set for the whole suite
   by test/dune, so every [Cluster.run_until] here ends with a full audit
   pass that raises on any violated invariant).

   Beyond "it runs at scale without tripping an invariant", the test
   byte-compares the full metrics export across the two axes this PR
   must keep behavior-neutral:

   - observability Off vs Full (recording must never perturb a run);
   - the `Heap vs `Calendar engine scheduler (pop order is specified to
     be identical, so every downstream metric must be too). *)

open Terradir
open Terradir_namespace
open Terradir_workload
open Terradir_experiments

let servers = 10_000

let seed = 42

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

let config ~scheduler =
  let log2s = log2i servers in
  {
    Config.default with
    Config.num_servers = servers;
    placement = Config.Round_robin;
    cache_slots = max 4 ((2 * log2s) - 2);
    r_map = max 2 (log2s - 2);
    scheduler;
    seed;
  }

(* Analytic rate at utilization 0.5, as in Experiments.Capacity; ~20k
   expected queries keep the smoke in test-suite time. *)
let run ?obs ~scheduler () =
  let config = config ~scheduler in
  let tree = Build.balanced ~arity:2 ~levels:(max 3 (log2i (8 * servers))) in
  let est_hops = (2.0 *. Common.mean_depth tree) +. 1.0 in
  let rate = 0.5 *. float_of_int servers /. (config.Config.service_mean *. est_hops) in
  let duration = 20_000.0 /. rate in
  let cluster = Cluster.create ?obs ~config ~tree () in
  Scenario.run cluster ~phases:(Stream.unif ~rate ~duration) ~seed:(seed + 1009);
  cluster

(* The complete counter/histogram export — any divergence in any counter,
   latency bucket, or hop bucket shows up as a byte diff. *)
let fingerprint cluster = Csv_export.metrics_csv (Cluster.metrics cluster)

let check_sane label cluster =
  let m = Cluster.metrics cluster in
  if m.Metrics.injected < 10_000 then
    Alcotest.failf "%s: only %d queries injected" label m.Metrics.injected;
  if m.Metrics.resolved = 0 then Alcotest.failf "%s: nothing resolved" label;
  if Cluster.alive_servers cluster <> servers then
    Alcotest.failf "%s: expected %d alive servers" label servers

let test_obs_off_vs_full () =
  let off = run ~scheduler:`Calendar () in
  check_sane "obs off" off;
  let full =
    let obs = Terradir_obs.Obs.create ~probe_every:2000 ~level:Terradir_obs.Obs.Full () in
    run ~obs ~scheduler:`Calendar ()
  in
  Alcotest.(check string) "Off and Full runs are byte-identical" (fingerprint off)
    (fingerprint full);
  if Terradir_obs.Recorder.total (Terradir_obs.Obs.recorder full.Cluster.obs) = 0 then
    Alcotest.fail "Full-level sink recorded nothing"

let test_heap_vs_calendar () =
  let heap = run ~scheduler:`Heap () in
  check_sane "heap" heap;
  let calendar = run ~scheduler:`Calendar () in
  Alcotest.(check string) "schedulers produce byte-identical metrics" (fingerprint heap)
    (fingerprint calendar);
  Alcotest.(check int) "and execute the same number of events"
    (Terradir_sim.Engine.events_executed heap.Cluster.engine)
    (Terradir_sim.Engine.events_executed calendar.Cluster.engine)

let () =
  Runner.set_jobs (Some 1);
  Alcotest.run "scale_smoke"
    [
      ( "10k-servers",
        [
          Alcotest.test_case "audited run: obs Off vs Full byte-identical" `Slow
            test_obs_off_vs_full;
          Alcotest.test_case "audited run: heap vs calendar byte-identical" `Slow
            test_heap_vs_calendar;
        ] );
    ]
