(* Tests for the replication protocol decisions (§3.3–§3.5) — the pure
   helpers plus protocol-level behavior driven through a live cluster. *)

open Terradir_util
open Terradir_namespace
open Terradir
open Terradir_workload

let flt = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Pure decision helpers                                               *)
(* ------------------------------------------------------------------ *)

let test_shed_target () =
  flt "balanced halves the gap" 0.25 (Replication.shed_target ~l_source:0.8 ~l_dest:0.4);
  flt "idle destination" 0.5 (Replication.shed_target ~l_source:0.8 ~l_dest:0.0);
  flt "no load no shed" 0.0 (Replication.shed_target ~l_source:0.0 ~l_dest:0.0);
  flt "negative gap clamps" 0.0 (Replication.shed_target ~l_source:0.3 ~l_dest:0.9)

let test_acceptable () =
  let config = Config.default (* min_delta = 0.2 *) in
  Alcotest.(check bool) "gap above delta" true
    (Replication.acceptable ~config ~l_source:0.9 ~l_dest:0.5);
  Alcotest.(check bool) "gap at delta" true
    (Replication.acceptable ~config ~l_source:0.9 ~l_dest:0.7);
  Alcotest.(check bool) "gap below delta" false
    (Replication.acceptable ~config ~l_source:0.6 ~l_dest:0.5)

let test_adjusted_load () =
  flt "midpoint" 0.6 (Replication.adjusted_load ~l_source:0.8 ~l_dest:0.4)

let tree = Build.balanced ~arity:2 ~levels:4

let server_with_weights weights =
  let config = { Config.default with Config.num_servers = 8 } in
  let s = Server.create ~id:0 ~config ~tree ~rng:(Splitmix.create 3) () in
  List.iter
    (fun (node, w) ->
      Server.add_owned s node ~owner_of:(fun v -> v mod 8) ~now:0.0;
      Ranking.seed s.Server.ranking node w)
    weights;
  s

let test_select_nodes_prefix () =
  (* weights: 8, 4, 2, 1, 1 → total 16 *)
  let s = server_with_weights [ (1, 8.0); (2, 4.0); (3, 2.0); (4, 1.0); (5, 1.0) ] in
  (* shed target (0.8-0.4)/(2·0.8) = 0.25 → want 4 of 16 → node 1 alone. *)
  Alcotest.(check (list int)) "one node suffices" [ 1 ]
    (Replication.select_nodes s ~l_source:0.8 ~l_dest:0.4 ~now:1.0);
  (* idle destination: want 8 of 16 → node 1 alone reaches exactly 8. *)
  Alcotest.(check (list int)) "prefix grows with the gap" [ 1 ]
    (Replication.select_nodes s ~l_source:0.8 ~l_dest:0.0 ~now:1.0);
  (* flatter weights force a multi-node prefix: total 12, want 6. *)
  let s2 = server_with_weights [ (6, 4.0); (9, 4.0); (10, 2.0); (11, 1.0); (12, 1.0) ] in
  Alcotest.(check (list int)) "heaviest first, smallest sufficient prefix" [ 6; 9 ]
    (Replication.select_nodes s2 ~l_source:1.0 ~l_dest:0.0 ~now:1.0)

let test_select_nodes_no_demand () =
  let s = server_with_weights [ (1, 0.0) ] in
  Alcotest.(check (list int)) "no recorded demand, nothing to shed" []
    (Replication.select_nodes s ~l_source:0.9 ~l_dest:0.1 ~now:1.0)

let test_select_nodes_cap () =
  let nodes = List.init 31 (fun i -> (i, 1.0)) in
  let s = server_with_weights nodes in
  let selected = Replication.select_nodes s ~l_source:1.0 ~l_dest:0.0 ~now:1.0 in
  Alcotest.(check bool) "bounded by max_shed_nodes" true
    (List.length selected <= Replication.max_shed_nodes)

let test_should_start_gates () =
  let config =
    { Config.default with Config.num_servers = 8; high_water = 0.7; retry_delay = 1.0 }
  in
  let s = Server.create ~id:0 ~config ~tree ~rng:(Splitmix.create 5) () in
  (* Roll the meter to [now] first, then install the adjustment, so the
     windowing does not clear it before should_start reads it. *)
  let set_load srv now v =
    ignore (Load_meter.raw_load srv.Server.load now);
    Load_meter.set_adjustment srv.Server.load v
  in
  (* no hosted nodes *)
  set_load s 0.1 0.9;
  Alcotest.(check bool) "nothing to replicate" false (Replication.should_start s ~now:0.1);
  Server.add_owned s 1 ~owner_of:(fun v -> v mod 8) ~now:0.0;
  set_load s 0.1 0.9;
  Alcotest.(check bool) "hot server starts" true (Replication.should_start s ~now:0.1);
  (* below threshold *)
  set_load s 0.1 0.5;
  Alcotest.(check bool) "cool server does not" false (Replication.should_start s ~now:0.1);
  (* backoff respected *)
  s.Server.session_backoff_until <- 5.0;
  set_load s 4.0 0.9;
  Alcotest.(check bool) "backoff" false (Replication.should_start s ~now:4.0);
  set_load s 5.0 0.9;
  Alcotest.(check bool) "backoff expired" true (Replication.should_start s ~now:5.0);
  (* session in flight *)
  s.Server.session <- Some { Server.session_id = 1; tried = []; attempts = 1 };
  set_load s 6.0 0.9;
  Alcotest.(check bool) "one session at a time" false (Replication.should_start s ~now:6.0);
  s.Server.session <- None;
  (* feature gate *)
  let cfg_off = { config with Config.features = Config.bc } in
  let s2 = Server.create ~id:1 ~config:cfg_off ~tree ~rng:(Splitmix.create 6) () in
  Server.add_owned s2 2 ~owner_of:(fun v -> v mod 8) ~now:0.0;
  set_load s2 0.1 0.9;
  Alcotest.(check bool) "replication disabled" false (Replication.should_start s2 ~now:0.1)

let test_effective_high_water () =
  let config =
    { Config.default with Config.num_servers = 8; high_water = 0.7; high_water_factor = 1.6 }
  in
  let s = Server.create ~id:0 ~config ~tree ~rng:(Splitmix.create 8) () in
  (* empty peer table, idle self: the floor applies *)
  flt "floor at idle" 0.7 (Replication.effective_high_water s ~now:0.1);
  (* believed overall utilization 0.5 → 1.6 × 0.5 = 0.8 *)
  List.iteri (fun i load -> Server.note_peer_load s (i + 1) load) [ 0.5; 0.5; 0.5; 0.5; 0.5 ];
  let thr = Replication.effective_high_water s ~now:0.1 in
  (* own raw load 0 pulls the mean to 2.5/6 ≈ 0.417 → 0.667 < floor *)
  flt "own idle load counts" 0.7 thr;
  List.iter (fun i -> Server.note_peer_load s i 0.9) [ 1; 2; 3; 4; 5 ];
  let thr = Replication.effective_high_water s ~now:0.1 in
  Alcotest.(check bool) (Printf.sprintf "raised above floor (%.3f)" thr) true (thr > 0.7);
  Alcotest.(check bool) "capped at 0.95" true (thr <= 0.95);
  (* factor 0 disables adaptation *)
  let cfg0 = { config with Config.high_water_factor = 0.0 } in
  let s0 = Server.create ~id:1 ~config:cfg0 ~tree ~rng:(Splitmix.create 9) () in
  List.iter (fun i -> Server.note_peer_load s0 i 0.9) [ 1; 2; 3 ];
  flt "constant threshold" 0.7 (Replication.effective_high_water s0 ~now:0.1)

(* ------------------------------------------------------------------ *)
(* Protocol-level behavior                                             *)
(* ------------------------------------------------------------------ *)

let hot_run ?(features = Config.bcr) ?(r_fact = 2.0) ?(duration = 40.0) ?(rate = 300.0) () =
  let tree = Build.balanced ~arity:2 ~levels:8 in
  let config =
    {
      Config.default with
      Config.num_servers = 32;
      features;
      r_fact;
      seed = 13;
    }
  in
  let cluster = Cluster.create ~config ~tree () in
  Scenario.run cluster
    ~phases:[ { Stream.duration; rate; dist = Stream.Zipf { alpha = 1.3; reshuffle = true } } ]
    ~seed:21;
  cluster

let test_hot_spot_triggers_replication () =
  let cluster = hot_run () in
  let m = Cluster.metrics cluster in
  Alcotest.(check bool) "sessions started" true (m.Metrics.sessions_started > 0);
  Alcotest.(check bool) "replicas created" true (m.Metrics.replicas_created > 10);
  Cluster.check_invariants cluster

let test_budget_respected_cluster_wide () =
  let cluster = hot_run ~r_fact:1.0 () in
  Array.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "server %d within budget" s.Server.id)
        true
        (float_of_int s.Server.replica_count
        <= (1.0 *. float_of_int s.Server.owned_count) +. 1e-9))
    cluster.Cluster.servers

let test_no_replication_when_disabled () =
  let cluster = hot_run ~features:Config.bc () in
  let m = Cluster.metrics cluster in
  Alcotest.(check int) "no replicas" 0 m.Metrics.replicas_created;
  Alcotest.(check int) "no sessions" 0 m.Metrics.sessions_started;
  Alcotest.(check int) "no control traffic" 0 m.Metrics.control_messages

let test_control_traffic_is_light () =
  let cluster = hot_run () in
  let m = Cluster.metrics cluster in
  (* The paper: load-balancing messages at least two orders of magnitude
     fewer than queries.  At this tiny scale we check one order. *)
  Alcotest.(check bool)
    (Printf.sprintf "control %d << queries %d" m.Metrics.control_messages m.Metrics.injected)
    true
    (m.Metrics.control_messages * 10 < m.Metrics.injected)

let test_replication_reduces_drops () =
  let with_repl = hot_run () in
  let without = hot_run ~features:Config.bc () in
  let f_with = Metrics.drop_fraction (Cluster.metrics with_repl) in
  let f_without = Metrics.drop_fraction (Cluster.metrics without) in
  Alcotest.(check bool)
    (Printf.sprintf "drops with (%.4f) < without (%.4f)" f_with f_without)
    true (f_with < f_without)

let test_replicas_follow_demand () =
  let cluster = hot_run () in
  (* Replicated nodes should skew toward the top of the namespace plus the
     hot spots: at minimum, the average depth of replicated nodes must be
     strictly less than the namespace's average depth (hierarchical
     bottleneck relief). *)
  let total = ref 0 and count = ref 0 in
  Array.iter
    (fun s ->
      List.iter
        (fun n ->
          total := !total + Tree.depth cluster.Cluster.tree n;
          incr count)
        (Server.replica_nodes s))
    cluster.Cluster.servers;
  Alcotest.(check bool) "some replicas" true (!count > 0);
  let avg_replica_depth = float_of_int !total /. float_of_int !count in
  let ns_avg_depth =
    float_of_int
      (Tree.fold cluster.Cluster.tree ~init:0 ~f:(fun acc v -> acc + Tree.depth cluster.Cluster.tree v))
    /. float_of_int (Tree.size cluster.Cluster.tree)
  in
  Alcotest.(check bool)
    (Printf.sprintf "replica depth %.2f < namespace depth %.2f" avg_replica_depth ns_avg_depth)
    true
    (avg_replica_depth < ns_avg_depth)

let test_static_replication () =
  let tree = Build.balanced ~arity:2 ~levels:6 in
  let config = { Config.default with Config.num_servers = 16; seed = 3 } in
  let cluster = Cluster.create ~monitor:false ~config ~tree () in
  let installed = Static_replication.apply cluster ~levels:3 ~copies:2 in
  (* 7 nodes above depth 3, 2 copies each *)
  Alcotest.(check int) "all copies placed" 14 installed;
  Alcotest.(check int) "cluster-wide count" 14 (Cluster.total_replicas cluster);
  let per_level = Cluster.replicas_per_level cluster `Current in
  Alcotest.(check (float 1e-9)) "root copies" 2.0 per_level.(0);
  Alcotest.(check (float 1e-9)) "level 2 average" 2.0 per_level.(2);
  Alcotest.(check (float 1e-9)) "below cutoff untouched" 0.0 per_level.(3);
  Cluster.check_invariants cluster

let test_static_replication_validation () =
  let tree = Build.balanced ~arity:2 ~levels:3 in
  let config = { Config.default with Config.num_servers = 4 } in
  let cluster = Cluster.create ~monitor:false ~config ~tree () in
  Alcotest.check_raises "negative levels"
    (Invalid_argument "Static_replication.apply: negative levels") (fun () ->
      ignore (Static_replication.apply cluster ~levels:(-1) ~copies:1))

(* ------------------------------------------------------------------ *)
(* Self-entry survival (the PR-3-documented truncation subtlety)       *)
(* ------------------------------------------------------------------ *)

(* An adversarial incoming map: r_map entries, every one sorting ahead of
   the new host's non-owner self entry (the owner first, then same-stamp
   entries with lower server ids).  A plain [Node_map.add] of self
   truncates it straight back out; the host would then advertise a map
   that does not include itself. *)
let adversarial_map ~r_map ~stamp =
  Node_map.of_entries ~max:r_map
    (List.init r_map (fun i -> { Node_map.server = i; is_owner = i = 0; stamp }))

let test_replica_self_survives_install () =
  let config = { Config.default with Config.num_servers = 8 } in
  let self = 7 in
  let s = Server.create ~id:self ~config ~tree ~rng:(Splitmix.create 11) () in
  (* Own one node so the replica budget (r_fact × owned) admits the install. *)
  Server.add_owned s 1 ~owner_of:(fun _ -> self) ~now:0.0;
  let now = 5.0 in
  let payload =
    {
      Types.rp_node = 2;
      rp_meta_version = 0;
      rp_map = adversarial_map ~r_map:config.Config.r_map ~stamp:now;
      rp_context = [];
      rp_weight_hint = 1.0;
    }
  in
  (match Server.install_replica s payload ~now with
  | `Installed -> ()
  | `Merged | `Rejected -> Alcotest.fail "expected a fresh install");
  let h = Option.get (Server.find_hosted s 2) in
  Alcotest.(check bool) "self entry survives the install truncation" true
    (Node_map.mem h.Server.h_map self);
  Alcotest.(check int) "map stays within r_map" config.Config.r_map
    (Node_map.size h.Server.h_map);
  Alcotest.(check (option int)) "owner entry is never displaced" (Some 0)
    (Node_map.owner h.Server.h_map)

let test_replica_self_survives_merge () =
  let config = { Config.default with Config.num_servers = 8 } in
  let self = 7 in
  let s = Server.create ~id:self ~config ~tree ~rng:(Splitmix.create 13) () in
  Server.add_owned s 1 ~owner_of:(fun _ -> self) ~now:0.0;
  let payload =
    {
      Types.rp_node = 2;
      rp_meta_version = 0;
      rp_map = Node_map.singleton ~is_owner:true ~server:0 ~stamp:1.0 ();
      rp_context = [];
      rp_weight_hint = 1.0;
    }
  in
  (match Server.install_replica s payload ~now:1.0 with
  | `Installed -> ()
  | `Merged | `Rejected -> Alcotest.fail "expected a fresh install");
  (* Piggybacked path state floods the hosted map with same-stamp entries
     that all sort ahead of the (older) self entry. *)
  Server.merge_into_known_map s 2 (adversarial_map ~r_map:config.Config.r_map ~stamp:9.0) ~now:9.0;
  let h = Option.get (Server.find_hosted s 2) in
  Alcotest.(check bool) "self entry survives the merge truncation" true
    (Node_map.mem h.Server.h_map self)

let test_add_pinned_never_displaces_owners () =
  (* Degenerate case: owner entries alone fill the map — pinning must give
     up rather than evict an owner. *)
  let owners =
    Node_map.of_entries ~max:2
      [
        { Node_map.server = 1; is_owner = true; stamp = 3.0 };
        { Node_map.server = 2; is_owner = true; stamp = 3.0 };
      ]
  in
  let pinned =
    Node_map.add_pinned ~max:2 owners { Node_map.server = 9; is_owner = false; stamp = 9.0 }
  in
  Alcotest.(check (list int)) "owners kept, pin dropped" [ 1; 2 ] (Node_map.servers pinned);
  (* Normal case: the lowest-priority non-owner is the victim. *)
  let mixed =
    Node_map.of_entries ~max:3
      [
        { Node_map.server = 1; is_owner = true; stamp = 5.0 };
        { Node_map.server = 2; is_owner = false; stamp = 5.0 };
        { Node_map.server = 3; is_owner = false; stamp = 5.0 };
      ]
  in
  let pinned =
    Node_map.add_pinned ~max:3 mixed { Node_map.server = 9; is_owner = false; stamp = 5.0 }
  in
  Alcotest.(check bool) "pinned entry present" true (Node_map.mem pinned 9);
  Alcotest.(check bool) "lowest-priority non-owner evicted" false (Node_map.mem pinned 3);
  Alcotest.(check int) "size bound held" 3 (Node_map.size pinned)

let () =
  Alcotest.run "terradir_replication"
    [
      ( "decisions",
        [
          Alcotest.test_case "shed target" `Quick test_shed_target;
          Alcotest.test_case "acceptable" `Quick test_acceptable;
          Alcotest.test_case "adjusted load" `Quick test_adjusted_load;
          Alcotest.test_case "select prefix" `Quick test_select_nodes_prefix;
          Alcotest.test_case "select no demand" `Quick test_select_nodes_no_demand;
          Alcotest.test_case "select cap" `Quick test_select_nodes_cap;
          Alcotest.test_case "should_start gates" `Quick test_should_start_gates;
          Alcotest.test_case "adaptive high water" `Quick test_effective_high_water;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "hot spot replicates" `Slow test_hot_spot_triggers_replication;
          Alcotest.test_case "budget cluster-wide" `Slow test_budget_respected_cluster_wide;
          Alcotest.test_case "disabled stays off" `Slow test_no_replication_when_disabled;
          Alcotest.test_case "control traffic light" `Slow test_control_traffic_is_light;
          Alcotest.test_case "reduces drops" `Slow test_replication_reduces_drops;
          Alcotest.test_case "replicas follow demand" `Slow test_replicas_follow_demand;
        ] );
      ( "static",
        [
          Alcotest.test_case "apply" `Quick test_static_replication;
          Alcotest.test_case "validation" `Quick test_static_replication_validation;
        ] );
      ( "self-entry",
        [
          Alcotest.test_case "install keeps self" `Quick test_replica_self_survives_install;
          Alcotest.test_case "merge keeps self" `Quick test_replica_self_survives_merge;
          Alcotest.test_case "owners never displaced" `Quick test_add_pinned_never_displaces_owners;
        ] );
    ]
