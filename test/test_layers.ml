(* Tests for the client layers above raw lookups: completion callbacks,
   two-step data retrieval (§2.1), meta-data versioning/staleness, and
   hierarchical search decomposition. *)

open Terradir_util
open Terradir_namespace
open Terradir
open Terradir_workload

let mk_cluster ?(servers = 16) ?(levels = 5) ?(data_copies = 1) ?(seed = 3) () =
  let tree = Build.balanced ~arity:2 ~levels in
  let config = { Config.default with Config.num_servers = servers; data_copies; seed } in
  Cluster.create ~config ~tree ()

(* ------------------------------------------------------------------ *)
(* Completion callbacks                                                *)
(* ------------------------------------------------------------------ *)

let test_on_complete_resolved () =
  let cluster = mk_cluster () in
  let got = ref None in
  let dst = 19 in
  Cluster.inject cluster ~src:0 ~dst ~on_complete:(fun o -> got := Some o);
  Cluster.run_until cluster 5.0;
  match !got with
  | Some (Types.Resolved r) ->
    Alcotest.(check bool) "positive latency" true (r.latency > 0.0);
    Alcotest.(check bool) "hops recorded" true (r.hops >= 0);
    Alcotest.(check bool) "result map names a host" true
      (Node_map.mem r.map cluster.Cluster.owner_of.(dst));
    Alcotest.(check int) "meta version initial" 0 r.meta_version
  | Some (Types.Dropped _) -> Alcotest.fail "unexpected drop"
  | None -> Alcotest.fail "callback never fired"

let test_on_complete_dropped () =
  let cluster = mk_cluster ~servers:8 () in
  (* kill the owner of a leaf; without replication warm-up its nodes are
     unreachable *)
  let tree = cluster.Cluster.tree in
  let dst = List.hd (Tree.leaves tree) in
  let owner = cluster.Cluster.owner_of.(dst) in
  Cluster.kill cluster owner;
  let got = ref None in
  let src = (owner + 1) mod 8 in
  Cluster.inject cluster ~src ~dst ~on_complete:(fun o -> got := Some o);
  Cluster.run_until cluster 30.0;
  match !got with
  | Some (Types.Dropped _) -> ()
  | Some (Types.Resolved _) -> Alcotest.fail "cannot resolve a dead owner's leaf"
  | None -> Alcotest.fail "callback never fired"

let test_callback_fires_exactly_once () =
  let cluster = mk_cluster () in
  let count = ref 0 in
  for dst = 1 to 20 do
    Cluster.inject cluster ~src:(dst mod 16) ~dst ~on_complete:(fun _ -> incr count)
  done;
  Cluster.run_until cluster 10.0;
  Alcotest.(check int) "one callback per query" 20 !count

(* ------------------------------------------------------------------ *)
(* Data retrieval                                                      *)
(* ------------------------------------------------------------------ *)

let test_fetch_basic () =
  let cluster = mk_cluster () in
  let got = ref None in
  Cluster.fetch cluster ~client:1 ~node:9 ~on_done:(fun o -> got := Some o);
  Cluster.run_until cluster 5.0;
  (match !got with
  | Some (Cluster.Fetched { latency }) ->
    (* request + reply: at least two network hops *)
    Alcotest.(check bool) "latency >= 2 network hops" true (latency >= 0.05)
  | Some Cluster.Fetch_failed -> Alcotest.fail "fetch failed on healthy cluster"
  | None -> Alcotest.fail "no outcome");
  let m = Cluster.metrics cluster in
  Alcotest.(check int) "counted" 1 m.Metrics.data_requests;
  Alcotest.(check int) "completed" 1 m.Metrics.data_completed;
  Alcotest.(check int) "no drops" 0 m.Metrics.data_dropped

let test_fetch_failover_to_data_copy () =
  let cluster = mk_cluster ~data_copies:3 () in
  let node = 9 in
  let holders = cluster.Cluster.data_holders.(node) in
  Alcotest.(check int) "three holders" 3 (Array.length holders);
  Alcotest.(check int) "owner is first holder" cluster.Cluster.owner_of.(node) holders.(0);
  (* kill all but the last holder: the fetch must fail over *)
  Array.iteri (fun i h -> if i < Array.length holders - 1 then Cluster.kill cluster h) holders;
  let got = ref None in
  let live = holders.(Array.length holders - 1) in
  let client = (live + 1) mod 16 in
  let client = if Array.exists (fun h -> h = client) holders then (client + 1) mod 16 else client in
  Cluster.fetch cluster ~client ~node ~on_done:(fun o -> got := Some o);
  Cluster.run_until cluster 10.0;
  match !got with
  | Some (Cluster.Fetched _) -> ()
  | Some Cluster.Fetch_failed -> Alcotest.fail "failover should reach the live copy"
  | None -> Alcotest.fail "no outcome"

let test_fetch_fails_when_all_holders_dead () =
  let cluster = mk_cluster ~data_copies:2 () in
  let node = 9 in
  Array.iter (Cluster.kill cluster) cluster.Cluster.data_holders.(node);
  let got = ref None in
  let client =
    let rec free c =
      if Array.exists (fun h -> h = c) cluster.Cluster.data_holders.(node) then free (c + 1) else c
    in
    free 0
  in
  Cluster.fetch cluster ~client ~node ~on_done:(fun o -> got := Some o);
  Cluster.run_until cluster 10.0;
  (match !got with
  | Some Cluster.Fetch_failed -> ()
  | Some (Cluster.Fetched _) -> Alcotest.fail "all holders are dead"
  | None -> Alcotest.fail "no outcome");
  Alcotest.(check int) "drop counted" 1 (Cluster.metrics cluster).Metrics.data_dropped

let test_fetch_validation () =
  let cluster = mk_cluster () in
  Alcotest.check_raises "bad client" (Invalid_argument "Cluster.fetch: bad client") (fun () ->
      Cluster.fetch cluster ~client:(-1) ~node:0);
  Alcotest.check_raises "bad node" (Invalid_argument "Cluster.fetch: bad node") (fun () ->
      Cluster.fetch cluster ~client:0 ~node:10_000)

let test_scenario_fetch_probability () =
  let cluster = mk_cluster ~servers:12 ~levels:6 () in
  Scenario.run cluster
    ~phases:(Stream.unif ~rate:100.0 ~duration:20.0)
    ~seed:7 ~fetch_probability:0.3;
  let m = Cluster.metrics cluster in
  let expected = float_of_int m.Metrics.resolved *. 0.3 in
  Alcotest.(check bool)
    (Printf.sprintf "fetches %d ~ 30%% of %d resolved" m.Metrics.data_requests m.Metrics.resolved)
    true
    (abs_float (float_of_int m.Metrics.data_requests -. expected) < 0.25 *. expected);
  Alcotest.(check bool) "most fetches complete" true
    (m.Metrics.data_completed > (9 * m.Metrics.data_requests) / 10);
  Alcotest.(check bool) "fetch latency measured" true
    (Stats.mean m.Metrics.data_latency > 0.0)

(* ------------------------------------------------------------------ *)
(* Meta-data versioning                                                *)
(* ------------------------------------------------------------------ *)

let test_update_meta () =
  let cluster = mk_cluster () in
  Alcotest.(check int) "initial" 0 (Cluster.owner_meta_version cluster 9);
  Alcotest.(check int) "bump" 1 (Cluster.update_meta cluster 9);
  Alcotest.(check int) "bump again" 2 (Cluster.update_meta cluster 9);
  Alcotest.(check int) "visible" 2 (Cluster.owner_meta_version cluster 9)

let test_meta_staleness_observed () =
  (* Warm a cluster so replicas of a hot node exist, then bump the owner's
     meta version: lookups resolving at stale replicas must register lag. *)
  let cluster = mk_cluster ~servers:12 ~levels:5 () in
  Scenario.run cluster
    ~phases:
      [ { Stream.duration = 20.0; rate = 300.0; dist = Stream.Zipf { alpha = 1.3; reshuffle = true } } ]
    ~seed:9;
  Tree.iter cluster.Cluster.tree (fun node -> ignore (Cluster.update_meta cluster node));
  let lag_before = Stats.count (Cluster.metrics cluster).Metrics.meta_lag in
  Scenario.run cluster ~phases:(Stream.unif ~rate:200.0 ~duration:10.0) ~seed:10;
  let m = Cluster.metrics cluster in
  Alcotest.(check bool) "lag samples collected" true
    (Stats.count m.Metrics.meta_lag > lag_before);
  (* Some lookups resolved at replicas still carrying version 0 *)
  Alcotest.(check bool) "staleness observed" true (Stats.max_value m.Metrics.meta_lag >= 1.0)

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

let test_search_subtree () =
  let cluster = mk_cluster ~servers:12 ~levels:5 () in
  let tree = cluster.Cluster.tree in
  let root = 1 (* depth-1 subtree in a levels-5 tree: 2^5-1 = 31 nodes *) in
  let got = ref None in
  Search.subtree cluster ~src:0 ~root ~on_done:(fun r -> got := Some r);
  Cluster.run_until cluster 30.0;
  match !got with
  | Some r ->
    Alcotest.(check int) "whole subtree enumerated" 31 r.Search.lookups_issued;
    Alcotest.(check int) "all resolved" 31 (List.length r.Search.matched);
    Alcotest.(check int) "no drops" 0 r.Search.lookups_dropped;
    Alcotest.(check bool) "latency positive" true (r.Search.latency > 0.0);
    List.iter
      (fun nr ->
        Alcotest.(check bool) "matched node in subtree" true
          (Tree.is_ancestor tree root nr.Search.sr_node))
      r.Search.matched
  | None -> Alcotest.fail "search never completed"

let test_search_filter_and_cap () =
  let cluster = mk_cluster ~servers:12 ~levels:5 () in
  let got = ref None in
  Search.subtree cluster ~src:0 ~root:0 ~max_nodes:8
    ~filter:(fun node -> node mod 2 = 0)
    ~on_done:(fun r -> got := Some r);
  Cluster.run_until cluster 30.0;
  match !got with
  | Some r ->
    Alcotest.(check int) "capped enumeration" 8 r.Search.lookups_issued;
    Alcotest.(check bool) "filter applied" true
      (List.for_all (fun nr -> nr.Search.sr_node mod 2 = 0) r.Search.matched)
  | None -> Alcotest.fail "search never completed"

let test_search_glob () =
  (* A named namespace so glob patterns read naturally. *)
  let tree =
    Build.of_paths
      [
        "/u/public/people/faculty/John";
        "/u/public/people/faculty/Steve";
        "/u/public/people/students/Ann";
        "/u/private/people/students/Lisa";
      ]
  in
  let config = { Config.default with Config.num_servers = 8; seed = 5 } in
  let cluster = Cluster.create ~config ~tree () in
  let shallow = ref None and deep = ref None in
  Search.glob cluster ~src:0 ~pattern:"/u/public/people/*" ~on_done:(fun r -> shallow := Some r);
  Search.glob cluster ~src:1 ~pattern:"/u/public/**" ~on_done:(fun r -> deep := Some r);
  Cluster.run_until cluster 30.0;
  (match !shallow with
  | Some r ->
    (* the root plus its two children: faculty, students *)
    Alcotest.(check int) "one-level glob" 3 (List.length r.Search.matched)
  | None -> Alcotest.fail "shallow glob incomplete");
  (match !deep with
  | Some r ->
    (* /u/public subtree: public, people, faculty, students, John, Steve, Ann *)
    Alcotest.(check int) "recursive glob" 7 (List.length r.Search.matched)
  | None -> Alcotest.fail "deep glob incomplete");
  Alcotest.check_raises "bad pattern" (Invalid_argument "Search.glob: pattern must end in /* or /**")
    (fun () -> Search.glob cluster ~src:0 ~pattern:"/u/public" ~on_done:ignore);
  Alcotest.check_raises "unknown prefix" (Invalid_argument "Search.glob: prefix names no node")
    (fun () -> Search.glob cluster ~src:0 ~pattern:"/nope/*" ~on_done:ignore)

let test_search_validation () =
  let cluster = mk_cluster () in
  Alcotest.check_raises "bad root" (Invalid_argument "Search.subtree: bad root") (fun () ->
      Search.subtree cluster ~src:0 ~root:9999 ~on_done:ignore);
  Alcotest.check_raises "bad max" (Invalid_argument "Search.subtree: max_nodes must be >= 1")
    (fun () -> Search.subtree cluster ~src:0 ~root:0 ~max_nodes:0 ~on_done:ignore)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_resolves_with_progress () =
  let cluster = mk_cluster () in
  let dst = 27 in
  let src = (cluster.Cluster.owner_of.(dst) + 1) mod 16 in
  let t = Trace.route cluster ~src ~dst in
  (match t.Trace.outcome with
  | `Resolved _ -> ()
  | `Dead_end _ | `Diverged -> Alcotest.fail "pristine cluster must resolve");
  (* distances strictly decrease step over step *)
  let rec decreasing = function
    | (a : Trace.step) :: (b : Trace.step) :: rest ->
      Alcotest.(check bool) "monotone" true (b.Trace.distance_left < a.Trace.distance_left);
      decreasing (b :: rest)
    | _ -> ()
  in
  decreasing t.Trace.steps;
  (* the final step lands on a host of dst *)
  (match List.rev t.Trace.steps with
  | last :: _ ->
    Alcotest.(check int) "last hop targets dst" dst last.Trace.via_node;
    Alcotest.(check bool) "receiver hosts dst" true
      (Server.hosts (Cluster.server cluster last.Trace.to_server) dst)
  | [] -> ());
  Alcotest.(check bool) "rendering non-empty" true (String.length (Trace.to_string cluster t) > 0)

let test_trace_self_resolution () =
  let cluster = mk_cluster () in
  let dst = 5 in
  let owner = cluster.Cluster.owner_of.(dst) in
  let t = Trace.route cluster ~src:owner ~dst in
  Alcotest.(check int) "no steps" 0 (List.length t.Trace.steps);
  match t.Trace.outcome with
  | `Resolved sid -> Alcotest.(check int) "resolved at owner" owner sid
  | `Dead_end _ | `Diverged -> Alcotest.fail "owner resolves locally"

let test_trace_validation () =
  let cluster = mk_cluster () in
  Alcotest.check_raises "bad src" (Invalid_argument "Trace.route: bad source server") (fun () ->
      ignore (Trace.route cluster ~src:99 ~dst:0));
  Alcotest.check_raises "bad dst" (Invalid_argument "Trace.route: bad destination") (fun () ->
      ignore (Trace.route cluster ~src:0 ~dst:(-1)))

let () =
  Alcotest.run "terradir_layers"
    [
      ( "callbacks",
        [
          Alcotest.test_case "resolved" `Quick test_on_complete_resolved;
          Alcotest.test_case "dropped" `Quick test_on_complete_dropped;
          Alcotest.test_case "exactly once" `Quick test_callback_fires_exactly_once;
        ] );
      ( "retrieval",
        [
          Alcotest.test_case "basic fetch" `Quick test_fetch_basic;
          Alcotest.test_case "failover" `Quick test_fetch_failover_to_data_copy;
          Alcotest.test_case "all holders dead" `Quick test_fetch_fails_when_all_holders_dead;
          Alcotest.test_case "validation" `Quick test_fetch_validation;
          Alcotest.test_case "scenario fetch probability" `Slow test_scenario_fetch_probability;
        ] );
      ( "metadata",
        [
          Alcotest.test_case "update meta" `Quick test_update_meta;
          Alcotest.test_case "staleness observed" `Slow test_meta_staleness_observed;
        ] );
      ( "search",
        [
          Alcotest.test_case "subtree" `Quick test_search_subtree;
          Alcotest.test_case "filter and cap" `Quick test_search_filter_and_cap;
          Alcotest.test_case "glob" `Quick test_search_glob;
          Alcotest.test_case "validation" `Quick test_search_validation;
        ] );
      ( "trace",
        [
          Alcotest.test_case "resolves with progress" `Quick test_trace_resolves_with_progress;
          Alcotest.test_case "self resolution" `Quick test_trace_self_resolution;
          Alcotest.test_case "validation" `Quick test_trace_validation;
        ] );
    ]
