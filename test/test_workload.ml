(* Tests for query streams and the scenario driver (§4.1 methodology). *)

open Terradir_namespace
open Terradir
open Terradir_workload

let tree = Build.balanced ~arity:2 ~levels:7 (* 255 nodes *)

(* ------------------------------------------------------------------ *)
(* Stream constructors                                                 *)
(* ------------------------------------------------------------------ *)

let test_unif_constructor () =
  match Stream.unif ~rate:100.0 ~duration:30.0 with
  | [ p ] ->
    Alcotest.(check (float 1e-9)) "duration" 30.0 p.Stream.duration;
    Alcotest.(check (float 1e-9)) "rate" 100.0 p.Stream.rate;
    Alcotest.(check bool) "uniform" true (p.Stream.dist = Stream.Uniform)
  | _ -> Alcotest.fail "one phase expected"

let test_uzipf_constructor () =
  let phases = Stream.uzipf ~rate:50.0 ~warmup:40.0 ~alpha:1.25 ~shift_every:45.0 ~shifts:4 in
  Alcotest.(check int) "warmup + shifts" 5 (List.length phases);
  (match phases with
  | warm :: rest ->
    Alcotest.(check bool) "warmup uniform" true (warm.Stream.dist = Stream.Uniform);
    List.iter
      (fun p ->
        match p.Stream.dist with
        | Stream.Zipf { alpha; reshuffle } ->
          Alcotest.(check (float 1e-9)) "alpha" 1.25 alpha;
          Alcotest.(check bool) "reshuffles" true reshuffle
        | Stream.Uniform -> Alcotest.fail "zipf expected")
      rest
  | [] -> Alcotest.fail "phases expected");
  Alcotest.(check (float 1e-9)) "total duration" 220.0 (Stream.total_duration phases)

(* ------------------------------------------------------------------ *)
(* Sampler                                                             *)
(* ------------------------------------------------------------------ *)

let test_sampler_uniform_coverage () =
  let s = Stream.sampler ~tree ~seed:3 in
  let counts = Array.make (Tree.size tree) 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    let v = Stream.sample s in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = draws / Tree.size tree in
  Array.iteri
    (fun v c ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d near uniform (%d)" v c)
        true
        (abs (c - expected) < expected))
    counts

let test_sampler_zipf_skew () =
  let s = Stream.sampler ~tree ~seed:3 in
  Stream.install s (Stream.Zipf { alpha = 1.2; reshuffle = true });
  let counts = Array.make (Tree.size tree) 0 in
  for _ = 1 to 50_000 do
    let v = Stream.sample s in
    counts.(v) <- counts.(v) + 1
  done;
  (* the rank-0 node should dominate *)
  let hottest = ref 0 in
  Array.iteri (fun v c -> if c > counts.(!hottest) then hottest := v) counts;
  Alcotest.(check int) "hottest is rank 0" 0 (Stream.rank_of_node s !hottest);
  let sorted = Array.copy counts in
  Array.sort (fun a b -> compare b a) sorted;
  Alcotest.(check bool) "heavy head" true
    (float_of_int sorted.(0) > 0.05 *. 50_000.0)

let test_reshuffle_changes_ranking () =
  let s = Stream.sampler ~tree ~seed:3 in
  Stream.install s (Stream.Zipf { alpha = 1.0; reshuffle = true });
  let hot_before = ref (-1) in
  Array.iteri (fun v _ -> if Stream.rank_of_node s v = 0 then hot_before := v)
    (Array.make (Tree.size tree) 0);
  Stream.install s (Stream.Zipf { alpha = 1.0; reshuffle = true });
  let hot_after = ref (-1) in
  Array.iteri (fun v _ -> if Stream.rank_of_node s v = 0 then hot_after := v)
    (Array.make (Tree.size tree) 0);
  (* (1/255 chance of a false failure is avoided by the fixed seed) *)
  Alcotest.(check bool) "hot node moved" true (!hot_before <> !hot_after)

let test_no_reshuffle_keeps_ranking () =
  let s = Stream.sampler ~tree ~seed:3 in
  Stream.install s (Stream.Zipf { alpha = 1.0; reshuffle = true });
  let rank v = Stream.rank_of_node s v in
  let before = List.init 10 rank in
  Stream.install s (Stream.Zipf { alpha = 1.5; reshuffle = false });
  Alcotest.(check (list int)) "ranking preserved across alpha change" before (List.init 10 rank)

(* ------------------------------------------------------------------ *)
(* Scenario driver                                                     *)
(* ------------------------------------------------------------------ *)

let mk_cluster () =
  let config = { Config.default with Config.num_servers = 12; seed = 2 } in
  Cluster.create ~config ~tree ()

let test_scenario_injection_rate () =
  let cluster = mk_cluster () in
  Scenario.run cluster ~phases:(Stream.unif ~rate:200.0 ~duration:20.0) ~seed:7;
  let injected = (Cluster.metrics cluster).Metrics.injected in
  (* Poisson(200 × 20 = 4000): allow ±10% *)
  Alcotest.(check bool)
    (Printf.sprintf "injected %d ~ 4000" injected)
    true
    (injected > 3600 && injected < 4400)

let test_scenario_phase_rates () =
  let cluster = mk_cluster () in
  let phases =
    [
      { Stream.duration = 10.0; rate = 50.0; dist = Stream.Uniform };
      { Stream.duration = 10.0; rate = 400.0; dist = Stream.Uniform };
    ]
  in
  Scenario.run cluster ~phases ~seed:7;
  let per_second = Terradir_util.Timeseries.sums (Cluster.metrics cluster).Metrics.injected_ts in
  let first = Array.fold_left ( +. ) 0.0 (Array.sub per_second 0 10) in
  let second = Array.fold_left ( +. ) 0.0 (Array.sub per_second 10 (Array.length per_second - 10)) in
  Alcotest.(check bool)
    (Printf.sprintf "rates honored per phase (%.0f then %.0f)" first second)
    true
    (first < 800.0 && second > 3000.0)

let test_scenario_on_phase_callback () =
  let cluster = mk_cluster () in
  let seen = ref [] in
  let phases = Stream.uzipf ~rate:50.0 ~warmup:5.0 ~alpha:1.0 ~shift_every:5.0 ~shifts:2 in
  Scenario.run cluster ~phases ~seed:7 ~on_phase:(fun i p -> seen := (i, p.Stream.rate) :: !seen);
  Alcotest.(check int) "every phase announced" 3 (List.length !seen);
  Alcotest.(check (list int)) "in order" [ 0; 1; 2 ] (List.rev_map fst !seen)

let test_scenario_validation () =
  let cluster = mk_cluster () in
  Alcotest.check_raises "empty" (Invalid_argument "Scenario.run: empty phase list") (fun () ->
      Scenario.run cluster ~phases:[] ~seed:1);
  Alcotest.check_raises "bad rate" (Invalid_argument "Scenario.run: rate must be positive")
    (fun () ->
      Scenario.run cluster
        ~phases:[ { Stream.duration = 1.0; rate = 0.0; dist = Stream.Uniform } ]
        ~seed:1)

let test_interleaved_single_stream_matches_run () =
  (* A single interleaved stream must be byte-identical to [run] with the
     same arguments — including the optional fetch and phase-callback
     machinery.  Any trajectory difference is a byte diff in the full
     metrics CSV. *)
  let phases = Stream.uzipf ~rate:150.0 ~warmup:4.0 ~alpha:1.1 ~shift_every:4.0 ~shifts:2 in
  let csv_of ~phases_seen driver =
    let cluster = mk_cluster () in
    driver cluster ~fetch_probability:0.3 ~on_phase:(fun i _ -> phases_seen := i :: !phases_seen);
    Terradir_experiments.Csv_export.metrics_csv (Cluster.metrics cluster)
  in
  let seen_run = ref [] and seen_inter = ref [] in
  let via_run =
    csv_of ~phases_seen:seen_run (fun cluster ~fetch_probability ~on_phase ->
        Scenario.run cluster ~phases ~seed:9 ~fetch_probability ~on_phase)
  in
  let via_interleaved =
    csv_of ~phases_seen:seen_inter (fun cluster ~fetch_probability ~on_phase ->
        Scenario.run_interleaved cluster ~streams:[ (phases, 9) ] ~fetch_probability ~on_phase)
  in
  Alcotest.(check string) "single interleaved stream == run, byte for byte" via_run
    via_interleaved;
  Alcotest.(check (list int)) "same phase callbacks in the same order" !seen_run !seen_inter

let test_scenario_interleaved () =
  let cluster = mk_cluster () in
  Scenario.run_interleaved cluster
    ~streams:
      [
        (Stream.unif ~rate:50.0 ~duration:10.0, 1);
        ([ { Stream.duration = 10.0; rate = 50.0; dist = Stream.Zipf { alpha = 1.0; reshuffle = true } } ], 2);
      ];
  let injected = (Cluster.metrics cluster).Metrics.injected in
  (* two Poisson(500) streams *)
  Alcotest.(check bool)
    (Printf.sprintf "both streams injected (%d)" injected)
    true
    (injected > 800 && injected < 1200)

let () =
  Alcotest.run "terradir_workload"
    [
      ( "stream",
        [
          Alcotest.test_case "unif" `Quick test_unif_constructor;
          Alcotest.test_case "uzipf" `Quick test_uzipf_constructor;
          Alcotest.test_case "uniform coverage" `Quick test_sampler_uniform_coverage;
          Alcotest.test_case "zipf skew" `Quick test_sampler_zipf_skew;
          Alcotest.test_case "reshuffle" `Quick test_reshuffle_changes_ranking;
          Alcotest.test_case "no reshuffle" `Quick test_no_reshuffle_keeps_ranking;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "injection rate" `Slow test_scenario_injection_rate;
          Alcotest.test_case "phase rates" `Slow test_scenario_phase_rates;
          Alcotest.test_case "phase callback" `Quick test_scenario_on_phase_callback;
          Alcotest.test_case "validation" `Quick test_scenario_validation;
          Alcotest.test_case "interleaved" `Slow test_scenario_interleaved;
          Alcotest.test_case "interleaved single stream == run" `Slow
            test_interleaved_single_stream_matches_run;
        ] );
    ]
