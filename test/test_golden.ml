(* Golden-output regression tests: figure CSVs must stay byte-identical to
   the committed goldens under test/golden/.  This is the guard the
   determinism lint and the hashtable-order fixes are held to — reordering
   an iteration, resorting a result list, or touching RNG draw order shows
   up here as a byte diff.

   Regenerate (bless) after an *intentional* output change with:

     TERRADIR_BLESS=$PWD/test/golden dune exec test/test_golden.exe
*)

open Terradir_experiments

let scale = 0.002
let seed = 42

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path content =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

(* Compare [content] against the committed golden byte-for-byte; on
   mismatch report the first differing line rather than dumping both
   files.  With TERRADIR_BLESS=<dir> set, rewrite the golden instead. *)
let check_golden name content =
  match Sys.getenv_opt "TERRADIR_BLESS" with
  | Some dir ->
    write_file (Filename.concat dir name) content;
    Printf.printf "blessed %s (%d bytes)\n%!" name (String.length content)
  | None ->
    let golden_path = Filename.concat "golden" name in
    if not (Sys.file_exists golden_path) then
      Alcotest.failf "missing golden %s — run with TERRADIR_BLESS to create it" golden_path;
    let expected = read_file golden_path in
    if not (String.equal expected content) then begin
      let lines s = String.split_on_char '\n' s in
      let el = lines expected and al = lines content in
      let rec first_diff i = function
        | e :: es, a :: as_ -> if String.equal e a then first_diff (i + 1) (es, as_) else (i, e, a)
        | e :: _, [] -> (i, e, "<missing>")
        | [], a :: _ -> (i, "<missing>", a)
        | [], [] -> (i, "<equal?>", "<equal?>")
      in
      let line, e, a = first_diff 1 (el, al) in
      Alcotest.failf "%s differs from golden at line %d:\n  golden: %s\n  actual: %s" name line e a
    end

let fig3_golden () =
  let r = Fig3.run ~scale ~duration:90.0 ~seed () in
  check_golden "fig3_drop_fraction.csv"
    (Csv_export.series_csv ~index_label:"second" r.Fig3.series)

let fig7_golden () =
  let dir = "_golden_out" in
  let paths = Csv_export.export ~id:"fig7" ~scale ~seed ~dir () in
  List.iter
    (fun path -> check_golden (Filename.basename path) (read_file path))
    paths

(* The capacity experiment runs on the calendar-queue scheduler with the
   analytic (probe-free) injection rate: this golden pins both — a
   calendar-queue ordering bug or a drifted rate formula is a byte diff
   here before it is a wrong number in BENCH_results.json. *)
let capacity_golden () =
  let dir = "_golden_out" in
  let paths = Csv_export.export ~id:"capacity" ~scale ~seed ~dir () in
  List.iter
    (fun path -> check_golden (Filename.basename path) (read_file path))
    paths

let () =
  Runner.set_jobs (Some 1);
  Alcotest.run "golden"
    [
      ( "figures",
        [
          Alcotest.test_case "fig3 drop-fraction CSV is byte-identical" `Slow fig3_golden;
          Alcotest.test_case "fig7 replicas-per-level CSV is byte-identical" `Slow fig7_golden;
          Alcotest.test_case "capacity CSV is byte-identical" `Slow capacity_golden;
        ] );
    ]
