(* Tests for the runtime invariant auditor: each injected corruption must
   be caught by exactly the rule that covers it, a healthy server must
   audit clean, and a full end-to-end experiment must run audit-clean with
   the auditor enabled. *)

open Terradir_util
open Terradir_namespace
open Terradir
open Types

let tree = Build.balanced ~arity:2 ~levels:4 (* 31 nodes *)

let config = { Config.default with Config.num_servers = 8; r_fact = 2.0; cache_slots = 8 }

let owner_of node = node mod 8

let owned_server ?(id = 0) nodes =
  let s = Server.create ~id ~config ~tree ~rng:(Splitmix.create (id + 100)) () in
  List.iter (fun n -> Server.add_owned s n ~owner_of ~now:0.0) nodes;
  s

let payload_for node =
  {
    rp_node = node;
    rp_meta_version = 3;
    rp_map = Node_map.singleton ~is_owner:true ~server:(owner_of node) ~stamp:1.0 ();
    rp_context =
      List.map
        (fun nb -> (nb, Node_map.singleton ~is_owner:true ~server:(owner_of nb) ~stamp:1.0 ()))
        (Tree.neighbors tree node);
    rp_weight_hint = 2.0;
  }

let rules_of s ~now =
  let t = Invariant.create () in
  Invariant.check_server t ~now s;
  List.map (fun v -> v.Invariant.v_rule) (Invariant.violations t)

let check_fires name rule rules =
  Alcotest.(check bool) (name ^ ": " ^ rule ^ " fires") true (List.mem rule rules)

let test_clean_server () =
  let s = owned_server [ 1; 6 ] in
  ignore (Server.install_replica s (payload_for 20) ~now:1.0);
  Alcotest.(check (list string)) "no violations" [] (rules_of s ~now:1.0)

let test_oversized_map () =
  let s = owned_server [ 1 ] in
  let h = Option.get (Server.find_hosted s 1) in
  (* Blow past r_map by constructing the oversized map directly (no mutator
     allows this, which is the point). *)
  let entries =
    List.init (config.Config.r_map + 3) (fun i ->
        { Node_map.server = i; is_owner = i = 0; stamp = 0.5 })
  in
  h.Server.h_map <- Node_map.of_entries ~max:1000 entries;
  check_fires "oversized map" "map-bound" (rules_of s ~now:1.0)

let test_replica_over_budget () =
  let s = owned_server [ 1; 6 ] in
  ignore (Server.install_replica s (payload_for 20) ~now:1.0);
  (* Forge the budget away: with no owned nodes, any replica exceeds
     r_fact x 0.  The hosted table still says two owned nodes, so the
     counter cross-check must fire alongside the budget rule. *)
  s.Server.owned_count <- 0;
  let rules = rules_of s ~now:1.0 in
  check_fires "forged owned_count" "replica-bound" rules;
  check_fires "forged owned_count" "count-mismatch" rules

let test_stale_digest () =
  let s = owned_server [ 1; 6 ] in
  Digest_store.rebuild_local s.Server.digests ~hosted:[];
  check_fires "emptied digest" "digest-stale" (rules_of s ~now:1.0)

let test_self_missing () =
  let s = owned_server [ 1 ] in
  let h = Option.get (Server.find_hosted s 1) in
  h.Server.h_map <- Node_map.remove h.Server.h_map s.Server.id;
  check_fires "self removed from owned map" "self-missing" (rules_of s ~now:1.0)

let test_stamp_future () =
  let s = owned_server [ 1 ] in
  let h = Option.get (Server.find_hosted s 1) in
  h.Server.h_map <-
    Node_map.add ~max:config.Config.r_map h.Server.h_map
      { Node_map.server = 3; is_owner = false; stamp = 99.0 };
  check_fires "entry stamped ahead of clock" "stamp-future" (rules_of s ~now:1.0)

let test_context_refs () =
  let s = owned_server [ 1 ] in
  (match Hashtbl.find_opt s.Server.neighbor_maps 0 with
  | Some r -> r.Server.refs <- r.Server.refs + 7
  | None -> Alcotest.fail "expected a neighbor context for node 1's parent");
  check_fires "forged refcount" "context-refs" (rules_of s ~now:1.0)

let test_clock_regression () =
  let t = Invariant.create () in
  Invariant.check_cluster t ~now:5.0 ~next_event:None ~servers:[||] ~owner_of:[||];
  Invariant.check_cluster t ~now:1.0 ~next_event:(Some 0.5) ~servers:[||] ~owner_of:[||];
  let rules = List.map (fun v -> v.Invariant.v_rule) (Invariant.violations t) in
  check_fires "clock moved backwards" "clock-regression" rules;
  check_fires "pending event in the past" "event-queue-order" rules

let test_deliver_raises_and_resets () =
  let t = Invariant.create () in
  let s = owned_server [ 1 ] in
  Digest_store.rebuild_local s.Server.digests ~hosted:[];
  Invariant.check_server t ~now:1.0 s;
  Alcotest.(check bool) "collected" true (Invariant.total_violations t > 0);
  let contains hay needle =
    let h = String.length hay and n = String.length needle in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  (match Invariant.deliver t ~label:"unit" with
  | () -> Alcotest.fail "expected Audit_failure"
  | exception Invariant.Audit_failure msg ->
    Alcotest.(check bool) "report names the rule" true (contains msg "digest-stale"));
  (* Delivery resets the collector: a second deliver is a no-op. *)
  Alcotest.(check int) "reset" 0 (Invariant.total_violations t);
  Invariant.deliver t ~label:"unit"

(* End to end: a real experiment figure runs audit-clean with the auditor
   on (the suite exports TERRADIR_AUDIT=1, so every run_until inside
   already ends with a raising audit pass — reaching this assertion at
   all means no violation was found over the whole run). *)
let test_fig3_audit_clean () =
  Terradir_experiments.Runner.set_jobs (Some 1);
  let r = Terradir_experiments.Fig3.run ~scale:0.002 ~duration:90.0 ~seed:42 () in
  Alcotest.(check bool) "produced series" true (List.length r.Terradir_experiments.Fig3.series > 0)

let () =
  Alcotest.run "terradir_invariant"
    [
      ( "auditor",
        [
          Alcotest.test_case "clean server" `Quick test_clean_server;
          Alcotest.test_case "oversized map" `Quick test_oversized_map;
          Alcotest.test_case "replica over budget" `Quick test_replica_over_budget;
          Alcotest.test_case "stale digest" `Quick test_stale_digest;
          Alcotest.test_case "self missing" `Quick test_self_missing;
          Alcotest.test_case "stamp future" `Quick test_stamp_future;
          Alcotest.test_case "context refs" `Quick test_context_refs;
          Alcotest.test_case "clock regression" `Quick test_clock_regression;
          Alcotest.test_case "deliver raises and resets" `Quick test_deliver_raises_and_resets;
        ] );
      ("end-to-end", [ Alcotest.test_case "fig3 audit clean" `Quick test_fig3_audit_clean ]);
    ]
