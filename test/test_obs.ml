(* Observability subsystem tests:

   - Hist quantile accuracy (the 3% relative-error bound of the
     log-bucketed layout);
   - Recorder ring-buffer overwrite order (qcheck: the newest
     [capacity] events survive, in recording order);
   - span reconstruction and Chrome-trace export from a live cluster
     run, with the trace validated by the tools/trace_check shape
     checker CI uses;
   - the Metrics CSV export carrying every counter exactly once;
   - the determinism hard constraint: fig3's figure CSV is
     byte-identical between obs Off and obs Full. *)

open Terradir_util
open Terradir_namespace
open Terradir
open Terradir_workload
open Terradir_obs
module E = Terradir_experiments
module Check = Terradir_trace_check.Trace_check

(* ---- histograms ---- *)

let test_hist_quantiles () =
  let h = Hist.create () in
  for i = 1 to 1000 do
    Hist.add h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Hist.count h);
  Alcotest.(check (float 1e-9)) "mean is exact" 500.5 (Hist.mean h);
  Alcotest.(check (float 1e-9)) "min is exact" 1.0 (Hist.min_value h);
  Alcotest.(check (float 1e-9)) "max is exact" 1000.0 (Hist.max_value h);
  Alcotest.(check (float 1e-9)) "p100 = max" 1000.0 (Hist.percentile h 1.0);
  List.iter
    (fun q ->
      let exact = q *. 1000.0 in
      let got = Hist.percentile h q in
      if Float.abs (got -. exact) /. exact > 0.04 then
        Alcotest.failf "p%g: got %g, want %g +/- 4%%" (q *. 100.0) got exact)
    [ 0.5; 0.9; 0.95; 0.99 ]

let test_hist_empty_and_reset () =
  let h = Hist.create () in
  Alcotest.(check int) "empty count" 0 (Hist.count h);
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (Hist.percentile h 0.5);
  Hist.add h 3.0;
  Hist.reset h;
  Alcotest.(check int) "reset count" 0 (Hist.count h);
  Alcotest.(check (float 0.0)) "reset max" 0.0 (Hist.max_value h)

let test_hist_underflow_bucket () =
  let h = Hist.create () in
  Hist.add h (-5.0);
  Hist.add h 0.0;
  Hist.add h Float.nan;
  Alcotest.(check int) "non-positive values all land" 3 (Hist.count h)

(* ---- recorder ring buffer ---- *)

(* Events carry their sequence number as qid, so surviving entries reveal
   both which events were kept and their order. *)
let prop_ring_overwrite_order =
  QCheck.Test.make ~name:"recorder: newest [capacity] events survive, in order" ~count:300
    QCheck.(pair (int_bound 50) (int_bound 200))
    (fun (capacity, n) ->
      let r = Recorder.create ~capacity in
      for i = 0 to n - 1 do
        Recorder.record r ~time:(float_of_int i) ~server:i
          (Event.Query_injected { qid = i; dst = 0 })
      done;
      (* a capacity-0 recorder (the disabled sink's store) ignores records
         entirely, counter included *)
      let counted = if capacity = 0 then 0 else n in
      let retained = min counted capacity in
      Recorder.total r = counted
      && Recorder.retained r = retained
      && List.for_all2
           (fun (entry : Recorder.entry) i ->
             entry.Recorder.server = i
             && entry.Recorder.time = float_of_int i
             && match entry.Recorder.event with
                | Event.Query_injected { qid; _ } -> qid = i
                | _ -> false)
           (Recorder.to_list r)
           (List.init retained (fun k -> counted - retained + k)))

(* ---- live run: spans and trace export ---- *)

let traced_run () =
  let tree = Build.balanced ~arity:2 ~levels:6 in
  let config = { Config.default with Config.num_servers = 24; seed = 9 } in
  let obs = Obs.create ~level:Obs.Full ~probe_every:500 () in
  let cluster = Cluster.create ~obs ~config ~tree () in
  Scenario.run cluster ~phases:(Stream.unif ~rate:150.0 ~duration:10.0) ~seed:33;
  (cluster, obs)

let test_span_reconstruction () =
  let cluster, obs = traced_run () in
  let m = Cluster.metrics cluster in
  let spans = Span.of_recorder (Obs.recorder obs) in
  let resolved =
    List.filter (fun sp -> match sp.Span.span_outcome with Span.Resolved _ -> true | _ -> false) spans
  in
  Alcotest.(check int) "every query has a span" m.Metrics.injected (List.length spans);
  Alcotest.(check int) "every resolution has a span" m.Metrics.resolved (List.length resolved);
  List.iter
    (fun sp ->
      if sp.Span.span_stop < sp.Span.span_start then
        Alcotest.failf "q%d: stop before start" sp.Span.span_qid;
      let rec sorted = function
        | a :: (b :: _ as rest) -> a.Span.seg_start <= b.Span.seg_start && sorted rest
        | _ -> true
      in
      if not (sorted sp.Span.span_segs) then
        Alcotest.failf "q%d: segments out of order" sp.Span.span_qid;
      List.iter
        (fun (g : Span.seg) ->
          if g.Span.seg_stop < g.Span.seg_start then
            Alcotest.failf "q%d: segment stop before start" sp.Span.span_qid;
          if g.Span.seg_start < sp.Span.span_start -. 1e-9
             || g.Span.seg_stop > sp.Span.span_stop +. 1e-9
          then Alcotest.failf "q%d: segment outside the span" sp.Span.span_qid)
        sp.Span.span_segs)
    spans;
  List.iter
    (fun sp ->
      let services =
        List.filter (fun g -> g.Span.seg_kind = Span.Service) sp.Span.span_segs
      in
      match sp.Span.span_outcome with
      | Span.Resolved { latency; hops } ->
        if services = [] then Alcotest.failf "q%d: resolved without service" sp.Span.span_qid;
        if latency < 0.0 then Alcotest.failf "q%d: negative latency" sp.Span.span_qid;
        if hops < 0 then Alcotest.failf "q%d: negative hops" sp.Span.span_qid
      | Span.Dropped _ | Span.In_flight -> ())
    resolved

let test_chrome_trace_valid () =
  let _cluster, obs = traced_run () in
  let trace = Export.chrome_trace (Obs.recorder obs) in
  match Check.validate trace with
  | Ok { Check.events; by_phase; tracks; async_pairs } ->
    Alcotest.(check bool) "has events" true (events > 100);
    Alcotest.(check bool) "has service slices" true (List.mem_assoc "X" by_phase);
    Alcotest.(check bool) "has async pairs" true (async_pairs > 0);
    Alcotest.(check bool) "one track per active server" true (tracks > 1 && tracks <= 25)
  | Error errs -> Alcotest.failf "trace rejected:\n%s" (String.concat "\n" errs)

let test_checker_rejects_garbage () =
  let reject source =
    match Check.validate source with
    | Ok _ -> Alcotest.failf "checker accepted %S" source
    | Error _ -> ()
  in
  reject "";
  reject "{\"traceEvents\": 3}";
  reject {|{"traceEvents":[{"ph":"X","pid":1,"ts":1}]}|};
  (* a "b" with no matching "e" *)
  reject {|{"traceEvents":[{"ph":"b","cat":"q","id":"1","pid":1,"ts":0}]}|}

let test_events_and_probes_csv () =
  let _cluster, obs = traced_run () in
  let events = Export.events_csv (Obs.recorder obs) in
  let probes = Export.probes_csv (Obs.probes obs) in
  let lines s = List.length (String.split_on_char '\n' (String.trim s)) in
  Alcotest.(check bool) "events csv has rows" true (lines events > 100);
  Alcotest.(check bool) "probes csv has rows" true (lines probes > 24);
  Alcotest.(check string) "events header" "time,server,kind,qid,detail"
    (List.hd (String.split_on_char '\n' events));
  Alcotest.(check string) "probes header" "time,server,load,queue_depth,replicas,cache_hit_rate"
    (List.hd (String.split_on_char '\n' probes))

(* ---- the metrics CSV drift guard (one field-spec list) ---- *)

let test_metrics_csv_exact_once () =
  let names = Metrics.csv_header in
  Alcotest.(check bool) "counters exist" true (List.length names >= 20);
  Alcotest.(check int) "no duplicate counter names"
    (List.length names)
    (List.length (List.sort_uniq String.compare names));
  let rng = Splitmix.create 7 in
  let m = Metrics.create ~rng in
  Alcotest.(check int) "row aligns with header" (List.length names)
    (List.length (Metrics.csv_row m));
  let csv = E.Csv_export.metrics_csv m in
  let rows = String.split_on_char '\n' csv in
  List.iter
    (fun name ->
      let n =
        List.length (List.filter (fun row -> List.hd (String.split_on_char ',' row) = name) rows)
      in
      Alcotest.(check int) (name ^ " appears exactly once") 1 n)
    names;
  List.iter
    (fun stat ->
      Alcotest.(check bool) (stat ^ " present") true
        (List.exists (fun row -> List.hd (String.split_on_char ',' row) = stat) rows))
    [ "latency_p50"; "latency_p99"; "hops_p95"; "latency_count" ]

(* ---- determinism: recording must not change results ---- *)

let fig3_csv () =
  let r = E.Fig3.run ~scale:0.002 ~duration:90.0 ~seed:42 () in
  E.Csv_export.series_csv ~index_label:"second" r.E.Fig3.series

let test_fig3_off_vs_full () =
  E.Runner.set_jobs (Some 1);
  let off = fig3_csv () in
  let full = E.Runner.with_obs ~level:Obs.Full ~probe_every:500 fig3_csv in
  if not (String.equal off full) then begin
    let ol = String.split_on_char '\n' off and fl = String.split_on_char '\n' full in
    let rec first_diff i = function
      | a :: rest, b :: rest' -> if String.equal a b then first_diff (i + 1) (rest, rest') else (i, a, b)
      | a :: _, [] -> (i, a, "<missing>")
      | [], b :: _ -> (i, "<missing>", b)
      | [], [] -> (i, "<equal?>", "<equal?>")
    in
    let line, a, b = first_diff 1 (ol, fl) in
    Alcotest.failf "fig3 CSV differs at line %d:\n  off : %s\n  full: %s" line a b
  end

let () =
  Alcotest.run "terradir_obs"
    [
      ( "hist",
        [
          Alcotest.test_case "quantiles within bucket error" `Quick test_hist_quantiles;
          Alcotest.test_case "empty and reset" `Quick test_hist_empty_and_reset;
          Alcotest.test_case "underflow bucket" `Quick test_hist_underflow_bucket;
        ] );
      ( "recorder",
        List.map (QCheck_alcotest.to_alcotest ~long:false) [ prop_ring_overwrite_order ] );
      ( "spans",
        [
          Alcotest.test_case "reconstruction from a live run" `Quick test_span_reconstruction;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace passes the shape checker" `Quick test_chrome_trace_valid;
          Alcotest.test_case "checker rejects malformed traces" `Quick test_checker_rejects_garbage;
          Alcotest.test_case "event and probe CSVs" `Quick test_events_and_probes_csv;
        ] );
      ( "metrics-csv",
        [
          Alcotest.test_case "every counter exactly once" `Quick test_metrics_csv_exact_once;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig3 CSV byte-identical at obs off vs full" `Slow
            test_fig3_off_vs_full;
        ] );
    ]
