(* Smoke tests for the experiment harnesses: every table/figure module runs
   at a tiny scale and produces data with the paper's qualitative shape. *)

module E = Terradir_experiments

(* Keep the default test run on the sequential path; the determinism test
   below opts into domains explicitly via [Runner.with_jobs]. *)
let () = E.Runner.set_jobs (Some 1)

let scale = 0.002 (* 8 servers *)

let scale_mid = 0.008
(* 33 servers — the scale where hierarchy/cache effects are measurable:
   with 8 servers every peer owns a sixteenth of the namespace and routes
   are trivially short, so cache and replication ablations show nothing. *)

let mean a =
  if Array.length a = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let test_common_setup () =
  let setup = E.Common.make ~scale E.Common.NS in
  Alcotest.(check int) "servers scaled" 8 setup.E.Common.config.Terradir.Config.num_servers;
  let nodes = Terradir_namespace.Tree.size setup.E.Common.tree in
  Alcotest.(check bool) "nodes per server ~8" true (nodes >= 4 * 8 && nodes <= 16 * 8);
  (* rate conversion: calibrated to utilization targets — positive, linear
     in the paper rate, and in a plausible band for 8 servers at ρ=0.8
     (capacity 400 svc/s, a few hops per query). *)
  let r20 = setup.E.Common.rate 20000.0 in
  let r4 = setup.E.Common.rate 4000.0 in
  Alcotest.(check (float 1e-9)) "linear in paper lambda" (5.0 *. r4) r20;
  Alcotest.(check bool)
    (Printf.sprintf "plausible magnitude (%.1f q/s)" r20)
    true
    (r20 > 10.0 && r20 < 400.0);
  Alcotest.check_raises "scale validation"
    (Invalid_argument "Common.make: scale must be in (0, 1]") (fun () ->
      ignore (E.Common.make ~scale:0.0 E.Common.NS))

let test_common_nc_namespace () =
  let setup = E.Common.make ~scale E.Common.NC in
  let tree = setup.E.Common.tree in
  (* the scaled-down N_C is tiny (~80 nodes); just require tree shape *)
  Alcotest.(check bool) "coda-like is irregular" true
    (Terradir_namespace.Tree.max_depth tree >= 3)

let test_warmups_staggered () =
  let w = List.map E.Common.warmup_for [ 0.75; 1.00; 1.25; 1.50 ] in
  Alcotest.(check (list (float 1e-9))) "10s increments" [ 40.0; 50.0; 60.0; 70.0 ] w

let test_table1 () =
  let r = E.Table1.run ~seed:42 () in
  Alcotest.(check bool) "all four kinds live" true r.E.Table1.verified;
  Alcotest.(check int) "kinds" 4 (List.length r.E.Table1.kinds_seen)

let test_fig3 () =
  let r = E.Fig3.run ~scale ~duration:90.0 ~seed:42 () in
  Alcotest.(check int) "five streams" 5 (List.length r.E.Fig3.series);
  List.iter
    (fun (label, fr) ->
      Alcotest.(check int) (label ^ " bins") 90 (Array.length fr);
      Alcotest.(check bool) (label ^ " fractions sane") true
        (Array.for_all (fun x -> x >= 0.0 && x < 2.0) fr);
      Alcotest.(check bool) (label ^ " not catastrophic") true (mean fr < 0.5))
    r.E.Fig3.series

let test_fig4 () =
  let r = E.Fig4.run ~scale ~duration:90.0 ~seed:42 () in
  Alcotest.(check int) "five streams" 5 (List.length r.E.Fig4.series);
  (* replication happens, and the per-second creation fraction is small
     relative to the query rate (lightweight protocol) *)
  List.iter
    (fun (label, fr) ->
      let total = Array.fold_left ( +. ) 0.0 fr in
      Alcotest.(check bool) (label ^ " creations happen") true (total > 0.0);
      Alcotest.(check bool) (label ^ " lightweight") true (mean fr < 0.25))
    r.E.Fig4.series

let test_fig5 () =
  let r = E.Fig5.run ~scale ~duration:90.0 ~seed:42 () in
  Alcotest.(check int) "10 streams x 3 systems" 30 (List.length r.E.Fig5.cells);
  let avg system =
    let cells = List.filter (fun c -> c.E.Fig5.system = system) r.E.Fig5.cells in
    List.fold_left (fun acc c -> acc +. c.E.Fig5.drop_fraction) 0.0 cells
    /. float_of_int (List.length cells)
  in
  let b = avg "B" and bcr = avg "BCR" in
  Alcotest.(check bool)
    (Printf.sprintf "B (%.3f) drops more than BCR (%.3f)" b bcr)
    true (b > bcr);
  (* "barely usable" B only emerges at larger scales (fewer hosted nodes
     per server = longer routes); the smoke check is directional only. *)
  Alcotest.(check bool) "B drops non-trivially" true (b > 0.02)

let test_fig6 () =
  let r = E.Fig6.run ~scale ~duration:90.0 ~seed:42 () in
  Alcotest.(check int) "three rates" 3 (List.length r.E.Fig6.runs);
  let means =
    List.map (fun s -> mean s.E.Fig6.mean_load) r.E.Fig6.runs
  in
  (match means with
  | [ low; mid; high ] ->
    Alcotest.(check bool)
      (Printf.sprintf "load grows with rate (%.3f %.3f %.3f)" low mid high)
      true
      (low < mid && mid < high)
  | _ -> Alcotest.fail "expected three runs");
  List.iter
    (fun s ->
      Alcotest.(check bool) "max >= mean pointwise" true
        (Array.for_all2 ( <= )
           (Array.map2 Float.min s.E.Fig6.mean_load s.E.Fig6.max_load)
           s.E.Fig6.max_load))
    r.E.Fig6.runs

let test_fig7 () =
  let r = E.Fig7.run ~scale:scale_mid ~duration:90.0 ~seed:42 () in
  Alcotest.(check int) "six runs" 6 (List.length r.E.Fig7.runs);
  List.iter
    (fun s ->
      Alcotest.(check bool) "levels covered" true (Array.length s.E.Fig7.per_level >= 4))
    r.E.Fig7.runs;
  (* at the highest rate, replication definitely happened *)
  let hottest = List.nth r.E.Fig7.runs 5 in
  Alcotest.(check bool) "replicas created" true
    (Array.exists (fun x -> x > 0.0) hottest.E.Fig7.per_level)

let test_fig8 () =
  let r = E.Fig8.run ~scale ~duration:240.0 ~seed:42 () in
  Alcotest.(check int) "four runs" 4 (List.length r.E.Fig8.runs);
  List.iter
    (fun s ->
      Alcotest.(check int) "four minutes" 4 (Array.length s.E.Fig8.per_minute);
      (* stabilization: the last minute creates fewer replicas than the
         busiest minute *)
      let peak = Array.fold_left Float.max 0.0 s.E.Fig8.per_minute in
      Alcotest.(check bool)
        (Printf.sprintf "%s decays (peak %.0f, final %.0f)" s.E.Fig8.label peak s.E.Fig8.final_rate)
        true
        (s.E.Fig8.final_rate <= peak))
    r.E.Fig8.runs

let test_fig9 () =
  let r = E.Fig9.run ~scale ~duration:60.0 ~seed:42 () in
  Alcotest.(check int) "six sizes" 6 (List.length r.E.Fig9.rows);
  let rec doubling = function
    | a :: (b : E.Fig9.row) :: rest ->
      Alcotest.(check int) "doubles" (2 * a.E.Fig9.servers) b.E.Fig9.servers;
      doubling (b :: rest)
    | _ -> ()
  in
  doubling r.E.Fig9.rows;
  List.iter
    (fun (row : E.Fig9.row) ->
      Alcotest.(check bool) "queries resolved" true (row.E.Fig9.resolved > 0);
      Alcotest.(check bool) "latency positive" true (row.E.Fig9.mean_latency > 0.0))
    r.E.Fig9.rows;
  (* replication volume grows with system size (λ ∝ S): compare ends *)
  let first = List.hd r.E.Fig9.rows and last = List.nth r.E.Fig9.rows 5 in
  Alcotest.(check bool) "replication scales" true
    (last.E.Fig9.replications > first.E.Fig9.replications)

let test_rfact () =
  let r = E.Rfact.run ~scale ~duration:100.0 ~seed:42 () in
  Alcotest.(check int) "4 r_facts x 3 map modes" 12 (List.length r.E.Rfact.rows);
  List.iter
    (fun (row : E.Rfact.row) ->
      Alcotest.(check bool) "accuracy in range" true
        (row.E.Rfact.accuracy >= 0.0 && row.E.Rfact.accuracy <= 1.0))
    r.E.Rfact.rows;
  let avg mode =
    let rows = List.filter (fun (row : E.Rfact.row) -> row.E.Rfact.mode = mode) r.E.Rfact.rows in
    List.fold_left (fun acc (row : E.Rfact.row) -> acc +. row.E.Rfact.accuracy) 0.0 rows
    /. float_of_int (List.length rows)
  in
  (* the paper's §4.4 ordering: oracle is optimal; digests approximate it;
     bare maps trail *)
  Alcotest.(check bool) "oracle near-perfect" true (avg E.Rfact.Oracle > 0.99);
  Alcotest.(check bool)
    (Printf.sprintf "digest accuracy %.4f vs bare %.4f" (avg E.Rfact.Digests)
       (avg E.Rfact.No_digests))
    true
    (avg E.Rfact.Digests >= avg E.Rfact.No_digests -. 0.02)

let test_ablations () =
  let r = E.Ablations.run ~scale:scale_mid ~duration:90.0 ~seed:42 () in
  Alcotest.(check int) "all variants ran" 15 (List.length r.E.Ablations.rows);
  let metric row key = List.assoc key row.E.Ablations.metrics in
  let find dim variant =
    List.find
      (fun (row : E.Ablations.row) ->
        row.E.Ablations.dimension = dim && row.E.Ablations.variant = variant)
      r.E.Ablations.rows
  in
  (* §2.4: path propagation sheds more load than endpoint-only caching —
     drops are its win (resolved-query hop counts suffer survivor bias).
     Direction emerges clearly from ~100 servers; at smoke scale allow a
     small tolerance. *)
  let path = find "cache-policy" "path-propagation" in
  let ends = find "cache-policy" "endpoints-only" in
  Alcotest.(check bool)
    (Printf.sprintf "path propagation drops %.3f <~ endpoints %.3f"
       (metric path "drop_fraction") (metric ends "drop_fraction"))
    true
    (metric path "drop_fraction" <= metric ends "drop_fraction" +. 0.03);
  (* caches help: no cache drops at least as much as the default *)
  let no_cache = find "cache-size" "0" and default_cache = find "cache-size" "24" in
  Alcotest.(check bool) "cache reduces drops" true
    (metric default_cache "drop_fraction" <= metric no_cache "drop_fraction" +. 0.02);
  (* adaptive replication drops less than none under a shifting hot-spot *)
  let adaptive = find "replication" "adaptive" and none = find "replication" "none" in
  Alcotest.(check bool) "adaptive beats none" true
    (metric adaptive "drop_fraction" < metric none "drop_fraction")

let test_hetero () =
  let r = E.Hetero.run ~scale ~duration:90.0 ~seed:42 () in
  Alcotest.(check int) "3 spreads x 2 systems" 6 (List.length r.E.Hetero.rows);
  let drop system spread =
    (List.find
       (fun (row : E.Hetero.row) -> row.E.Hetero.system = system && row.E.Hetero.spread = spread)
       r.E.Hetero.rows)
      .E.Hetero.drop_fraction
  in
  (* Heterogeneity hurts BC more than it hurts BCR (absolute penalty). *)
  let penalty system = drop system 16.0 -. drop system 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "BCR penalty %.4f <= BC penalty %.4f" (penalty "BCR") (penalty "BC"))
    true
    (penalty "BCR" <= penalty "BC" +. 0.01)

let test_csv_export () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "terradir_csv_test" in
  let files = E.Csv_export.export ~id:"fig7" ~scale ~seed:42 ~dir () in
  Alcotest.(check int) "one file for fig7" 1 (List.length files);
  List.iter
    (fun path ->
      Alcotest.(check bool) (path ^ " exists") true (Sys.file_exists path);
      let header = In_channel.with_open_text path In_channel.input_line in
      match header with
      | Some h -> Alcotest.(check bool) "has csv header" true (String.contains h ',')
      | None -> Alcotest.fail "empty csv")
    files;
  Alcotest.(check bool) "every figure is exportable" true
    (List.for_all
       (fun id -> List.mem id E.Csv_export.exportable)
       [ "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "rfact"; "ablations"; "hetero" ]);
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Csv_export.export: unknown or non-exportable experiment nope") (fun () ->
      ignore (E.Csv_export.export ~id:"nope" ~dir ()))

(* The tentpole guarantee: fanning cells over domains changes wall-clock
   only.  Run the same figure sequentially and at jobs=4 and require
   structurally identical results, then byte-compare a CSV export. *)
let test_parallel_determinism () =
  let seq = E.Fig3.run ~scale ~duration:90.0 ~seed:42 () in
  let par = E.Runner.with_jobs 4 (fun () -> E.Fig3.run ~scale ~duration:90.0 ~seed:42 ()) in
  Alcotest.(check int) "jobs pin restored" 1 (E.Runner.jobs ());
  Alcotest.(check (list string)) "same stream labels"
    (List.map fst seq.E.Fig3.series) (List.map fst par.E.Fig3.series);
  List.iter2
    (fun (label, a) (_, b) ->
      Alcotest.(check bool) (label ^ " bit-identical") true (a = b))
    seq.E.Fig3.series par.E.Fig3.series;
  let r5_seq = E.Fig5.run ~scale ~duration:80.0 ~seed:42 () in
  let r5_par = E.Runner.with_jobs 4 (fun () -> E.Fig5.run ~scale ~duration:80.0 ~seed:42 ()) in
  Alcotest.(check bool) "fig5 cells bit-identical" true (r5_seq = r5_par)

let test_parallel_csv_identical () =
  let tmp = Filename.get_temp_dir_name () in
  let dir_seq = Filename.concat tmp "terradir_csv_seq" in
  let dir_par = Filename.concat tmp "terradir_csv_par" in
  let files_seq = E.Csv_export.export ~id:"fig7" ~scale ~seed:42 ~dir:dir_seq () in
  let files_par =
    E.Runner.with_jobs 4 (fun () -> E.Csv_export.export ~id:"fig7" ~scale ~seed:42 ~dir:dir_par ())
  in
  Alcotest.(check int) "same file count" (List.length files_seq) (List.length files_par);
  List.iter2
    (fun a b ->
      let read path = In_channel.with_open_bin path In_channel.input_all in
      Alcotest.(check string) (Filename.basename a ^ " bytes") (read a) (read b))
    files_seq files_par

let test_registry_complete () =
  let ids = E.Registry.ids () in
  List.iter
    (fun id -> Alcotest.(check bool) (id ^ " registered") true (List.mem id ids))
    [ "table1"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "rfact"; "ablations"; "hetero" ];
  Alcotest.(check bool) "find works" true (E.Registry.find "fig3" <> None);
  Alcotest.(check bool) "unknown" true (E.Registry.find "fig99" = None)

let () =
  Alcotest.run "terradir_experiments"
    [
      ( "common",
        [
          Alcotest.test_case "setup scaling" `Quick test_common_setup;
          Alcotest.test_case "nc namespace" `Quick test_common_nc_namespace;
          Alcotest.test_case "warmups" `Quick test_warmups_staggered;
          Alcotest.test_case "registry" `Quick test_registry_complete;
        ] );
      ( "figures",
        [
          Alcotest.test_case "table1" `Slow test_table1;
          Alcotest.test_case "fig3" `Slow test_fig3;
          Alcotest.test_case "fig4" `Slow test_fig4;
          Alcotest.test_case "fig5" `Slow test_fig5;
          Alcotest.test_case "fig6" `Slow test_fig6;
          Alcotest.test_case "fig7" `Slow test_fig7;
          Alcotest.test_case "fig8" `Slow test_fig8;
          Alcotest.test_case "fig9" `Slow test_fig9;
          Alcotest.test_case "rfact" `Slow test_rfact;
          Alcotest.test_case "ablations" `Slow test_ablations;
          Alcotest.test_case "hetero" `Slow test_hetero;
          Alcotest.test_case "csv export" `Slow test_csv_export;
        ] );
      ( "parallelism",
        [
          Alcotest.test_case "determinism across jobs" `Slow test_parallel_determinism;
          Alcotest.test_case "csv identical across jobs" `Slow test_parallel_csv_identical;
        ] );
    ]
