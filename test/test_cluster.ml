(* Integration tests: whole-deployment behavior of the simulated TerraDir
   system — query lifecycle, load, failures, determinism. *)

open Terradir_util
open Terradir_namespace
open Terradir_sim
open Terradir
open Terradir_workload

let mk_cluster ?(servers = 24) ?(levels = 6) ?(features = Config.bcr) ?(seed = 9) () =
  let tree = Build.balanced ~arity:2 ~levels in
  let config = { Config.default with Config.num_servers = servers; features; seed } in
  Cluster.create ~config ~tree ()

let run_uniform ?(rate = 150.0) ?(duration = 20.0) cluster =
  Scenario.run cluster ~phases:(Stream.unif ~rate ~duration) ~seed:33

let test_bootstrap_placement () =
  let cluster = mk_cluster () in
  Cluster.check_invariants cluster;
  (* every node owned exactly once, by its recorded owner *)
  let tree = cluster.Cluster.tree in
  Tree.iter tree (fun node ->
      let holders =
        Array.to_list cluster.Cluster.servers
        |> List.filter (fun s ->
               match Server.find_hosted s node with
               | Some h -> h.Server.h_kind = Server.Owned
               | None -> false)
      in
      Alcotest.(check int) "one owner" 1 (List.length holders);
      Alcotest.(check int) "recorded owner"
        cluster.Cluster.owner_of.(node)
        (List.hd holders).Server.id)

let test_round_robin_placement () =
  let tree = Build.balanced ~arity:2 ~levels:6 (* 127 nodes *) in
  let config =
    { Config.default with Config.num_servers = 16; placement = Config.Round_robin; seed = 4 }
  in
  let cluster = Cluster.create ~monitor:false ~config ~tree () in
  Array.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "server %d owns 7 or 8" s.Server.id)
        true
        (s.Server.owned_count = 7 || s.Server.owned_count = 8))
    cluster.Cluster.servers

let test_all_resolve_at_low_load () =
  let cluster = mk_cluster () in
  run_uniform ~rate:60.0 cluster;
  let m = Cluster.metrics cluster in
  Alcotest.(check bool) "queries ran" true (m.Metrics.injected > 500);
  Alcotest.(check int) "no drops at low load" 0 (Metrics.dropped_total m);
  Alcotest.(check int) "all resolved" m.Metrics.injected m.Metrics.resolved;
  Cluster.check_invariants cluster

let test_latency_sane () =
  let cluster = mk_cluster () in
  run_uniform cluster;
  let m = Cluster.metrics cluster in
  let mean = Stats.mean m.Metrics.latency in
  (* every hop costs >= network delay; resolution needs >= 1 message *)
  Alcotest.(check bool) "latency above one network hop" true
    (mean >= cluster.Cluster.config.Config.network_delay);
  Alcotest.(check bool) "latency below a second at low load" true (mean < 1.0);
  Alcotest.(check bool) "hops positive" true (Stats.mean m.Metrics.hops > 0.0)

let test_caching_reduces_hops () =
  let with_cache = mk_cluster ~features:Config.bc () in
  let without = mk_cluster ~features:Config.base () in
  run_uniform ~rate:40.0 with_cache;
  run_uniform ~rate:40.0 without;
  let h_with = Stats.mean (Cluster.metrics with_cache).Metrics.hops in
  let h_without = Stats.mean (Cluster.metrics without).Metrics.hops in
  Alcotest.(check bool)
    (Printf.sprintf "hops %.2f < %.2f" h_with h_without)
    true (h_with < h_without)

let test_injection_validation () =
  let cluster = mk_cluster () in
  Alcotest.check_raises "bad src" (Invalid_argument "Cluster.inject: bad source server")
    (fun () -> Cluster.inject cluster ~src:999 ~dst:0);
  Alcotest.check_raises "bad dst" (Invalid_argument "Cluster.inject: bad destination node")
    (fun () -> Cluster.inject cluster ~src:0 ~dst:70000)

let test_single_query_trace () =
  let cluster = mk_cluster () in
  let dst = 37 in
  let src = (cluster.Cluster.owner_of.(dst) + 1) mod Cluster.num_servers cluster in
  Cluster.inject cluster ~src ~dst;
  Cluster.run_until cluster 5.0;
  let m = Cluster.metrics cluster in
  Alcotest.(check int) "resolved" 1 m.Metrics.resolved;
  Alcotest.(check int) "injected" 1 m.Metrics.injected;
  (* route length bounded by hierarchical distance + reply *)
  Alcotest.(check bool) "hops bounded" true
    (Stats.mean m.Metrics.hops <= float_of_int (2 * Tree.max_depth cluster.Cluster.tree + 1))

let test_determinism () =
  let run () =
    let cluster = mk_cluster ~seed:77 () in
    run_uniform cluster;
    let m = Cluster.metrics cluster in
    ( m.Metrics.injected,
      m.Metrics.resolved,
      m.Metrics.replicas_created,
      m.Metrics.query_forwards,
      Stats.mean m.Metrics.latency )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical metrics across runs" true (a = b)

let test_seed_sensitivity () =
  let run seed =
    let cluster = mk_cluster ~seed () in
    run_uniform cluster;
    (Cluster.metrics cluster).Metrics.query_forwards
  in
  Alcotest.(check bool) "different seeds change the trajectory" true (run 1 <> run 2)

(* ------------------------------------------------------------------ *)
(* Failures                                                            *)
(* ------------------------------------------------------------------ *)

let test_kill_loses_soft_state () =
  let cluster = mk_cluster () in
  run_uniform ~rate:250.0 ~duration:15.0 cluster;
  (* find a server with replicas *)
  let victim =
    Array.to_list cluster.Cluster.servers |> List.find (fun s -> s.Server.replica_count > 0)
  in
  let owned_before = victim.Server.owned_count in
  Cluster.kill cluster victim.Server.id;
  Alcotest.(check int) "replicas gone" 0 victim.Server.replica_count;
  Alcotest.(check int) "cache gone" 0 (Cache.length victim.Server.cache);
  Alcotest.(check int) "ownership durable" owned_before victim.Server.owned_count;
  Alcotest.(check bool) "marked dead" false victim.Server.alive;
  Alcotest.(check int) "alive count" (Cluster.num_servers cluster - 1) (Cluster.alive_servers cluster);
  Cluster.kill cluster victim.Server.id (* idempotent *);
  Cluster.revive cluster victim.Server.id;
  Alcotest.(check bool) "revived" true victim.Server.alive

let test_queries_survive_replica_failure () =
  (* Kill a server that replicates a node (but does not own it): lookups
     must keep resolving via the owner. *)
  let cluster = mk_cluster ~servers:16 ~levels:5 () in
  run_uniform ~rate:250.0 ~duration:15.0 cluster;
  let victim =
    Array.to_list cluster.Cluster.servers |> List.find (fun s -> s.Server.replica_count > 0)
  in
  Cluster.kill cluster victim.Server.id;
  let m0 = Cluster.metrics cluster in
  let resolved_before = m0.Metrics.resolved in
  let drops_before = Metrics.dropped_total m0 in
  (* lookups to nodes NOT owned by the victim *)
  let tree = cluster.Cluster.tree in
  let n_queries = ref 0 in
  Tree.iter tree (fun dst ->
      if cluster.Cluster.owner_of.(dst) <> victim.Server.id && !n_queries < 40 then begin
        incr n_queries;
        let src = (victim.Server.id + 1 + (dst mod 7)) mod 16 in
        if src <> victim.Server.id then Cluster.inject cluster ~src ~dst
      end);
  Cluster.run_until cluster (Cluster.now cluster +. 30.0);
  let m = Cluster.metrics cluster in
  let resolved_delta = m.Metrics.resolved - resolved_before in
  let drop_delta = Metrics.dropped_total m - drops_before in
  Alcotest.(check bool)
    (Printf.sprintf "resolved %d, dropped %d" resolved_delta drop_delta)
    true
    (resolved_delta > 30 && drop_delta = 0)

let test_owner_failure_drops_only_its_nodes () =
  let cluster = mk_cluster ~servers:16 ~levels:5 ~features:Config.bc () in
  (* no replication: the owner is the only host; killing it makes its
     leaf nodes unreachable *)
  let victim = 3 in
  Cluster.kill cluster victim;
  let tree = cluster.Cluster.tree in
  (* a leaf owned by the victim (leaves are nobody's routing context) *)
  let victim_leaf =
    Tree.leaves tree |> List.find_opt (fun n -> cluster.Cluster.owner_of.(n) = victim)
  in
  (match victim_leaf with
  | None -> ()
  | Some dst ->
    let src = (victim + 1) mod 16 in
    Cluster.inject cluster ~src ~dst;
    Cluster.run_until cluster (Cluster.now cluster +. 30.0);
    Alcotest.(check bool) "query for dead owner's leaf fails" true
      (Metrics.dropped_total (Cluster.metrics cluster) > 0));
  (* other nodes still resolve *)
  let m = Cluster.metrics cluster in
  let resolved_before = m.Metrics.resolved in
  let other_leaf =
    Tree.leaves tree |> List.find (fun n -> cluster.Cluster.owner_of.(n) <> victim)
  in
  (* route from a live server; the route may pass near the dead server but
     bounce-retries find alternatives when they exist *)
  Cluster.inject cluster ~src:((victim + 2) mod 16) ~dst:other_leaf;
  Cluster.run_until cluster (Cluster.now cluster +. 30.0);
  ignore resolved_before;
  Cluster.check_invariants cluster

(* ------------------------------------------------------------------ *)
(* Network faults: partitions, timeouts, retransmission                *)
(* ------------------------------------------------------------------ *)

(* One partition-then-heal run: servers 0-3 cut off from 4-15 between
   t=5 and t=12, uniform traffic throughout, then a drain long enough for
   every retransmission timer to expire.  Returns the full counter
   snapshot.  [max_retries] is the variable under test: with retries the
   partition window (7 s) sits inside the total attempt span
   (1+2+4+8 = 15 s), so cross-cut queries injected during the partition
   retry their way past the heal; with [max_retries = 0] the single 1 s
   timer expires inside the partition and the query dies. *)
let partition_heal_run ~max_retries ~seed =
  let tree = Build.balanced ~arity:2 ~levels:5 in
  let config =
    {
      Config.default with
      Config.num_servers = 16;
      seed;
      rpc_timeout = 1.0;
      max_retries;
      retry_backoff = 2.0;
    }
  in
  let cluster = Cluster.create ~config ~tree () in
  let side_a = [ 0; 1; 2; 3 ] in
  let side_b = List.init 12 (fun i -> i + 4) in
  let pid = ref None in
  Engine.schedule_at cluster.Cluster.engine 5.0 (fun () ->
      pid := Some (Net.partition cluster.Cluster.net ~a:side_a ~b:side_b));
  Engine.schedule_at cluster.Cluster.engine 12.0 (fun () ->
      Option.iter (Net.heal cluster.Cluster.net) !pid);
  Scenario.run cluster ~phases:(Stream.unif ~rate:100.0 ~duration:25.0) ~seed:33;
  Cluster.run_until cluster (Cluster.now cluster +. 25.0);
  Cluster.check_invariants cluster;
  cluster

let snapshot cluster =
  let m = Cluster.metrics cluster in
  ( m.Metrics.injected,
    m.Metrics.resolved,
    Metrics.dropped_total m,
    m.Metrics.dropped_timeout,
    m.Metrics.query_retransmits,
    m.Metrics.net_blocked,
    Stats.mean m.Metrics.latency,
    Stats.mean m.Metrics.hops )

let test_partition_heal_recovers () =
  let cluster = partition_heal_run ~max_retries:3 ~seed:21 in
  let injected, resolved, dropped, timed_out, retransmits, blocked, _, _ = snapshot cluster in
  Alcotest.(check int) "every query finalized" injected (resolved + dropped);
  Alcotest.(check int) "no request left pending" 0
    (Array.fold_left (fun a h -> a + Hashtbl.length h) 0 cluster.Cluster.pending_queries);
  Alcotest.(check bool) "the cut actually dropped traffic" true (blocked > 100);
  Alcotest.(check bool) "timers actually fired" true (retransmits > 50);
  (* retries carry cross-cut queries past the heal: near-total success *)
  Alcotest.(check bool)
    (Printf.sprintf "resolved %d/%d, timed out %d" resolved injected timed_out)
    true
    (float_of_int resolved /. float_of_int injected > 0.95);
  (* after the heal, fresh queries across the former cut all resolve *)
  let before = (Cluster.metrics cluster).Metrics.resolved in
  let probes = [ (0, 40); (1, 17); (5, 3); (12, 9) ] in
  List.iter (fun (src, dst) -> Cluster.inject cluster ~src ~dst) probes;
  Cluster.run_until cluster (Cluster.now cluster +. 20.0);
  Alcotest.(check int) "post-heal probes all resolve"
    (before + List.length probes)
    (Cluster.metrics cluster).Metrics.resolved

let test_partition_heal_deterministic () =
  (* the acceptance bar: the same seed must reproduce the identical
     metrics snapshot, retransmissions and all *)
  let a = snapshot (partition_heal_run ~max_retries:3 ~seed:21) in
  let b = snapshot (partition_heal_run ~max_retries:3 ~seed:21) in
  Alcotest.(check bool) "identical faulty runs" true (a = b)

let test_no_retries_measurably_worse () =
  let _, res_retry, _, to_retry, _, _, _, _ =
    snapshot (partition_heal_run ~max_retries:3 ~seed:21)
  in
  let inj, res_none, _, to_none, _, _, _, _ =
    snapshot (partition_heal_run ~max_retries:0 ~seed:21)
  in
  Alcotest.(check bool)
    (Printf.sprintf "resolved with retries %d vs without %d (of %d)" res_retry res_none inj)
    true
    (res_retry > res_none + 50);
  Alcotest.(check bool)
    (Printf.sprintf "timeouts %d vs %d" to_retry to_none)
    true (to_none > to_retry)

let test_owner_lost_mid_fetch_fails_over () =
  (* Two data holders per node; the owner becomes unreachable in two ways
     (fail-stop -> bounce-driven failover; silent partition -> timer-driven
     failover).  Either way the fetch must complete via the other holder. *)
  let tree = Build.balanced ~arity:2 ~levels:5 in
  let config =
    {
      Config.default with
      Config.num_servers = 16;
      seed = 6;
      data_copies = 2;
      rpc_timeout = 0.5;
      max_retries = 3;
      retry_backoff = 2.0;
    }
  in
  let cluster = Cluster.create ~config ~tree () in
  let pick_node ~client =
    (* a node whose two holders are distinct and exclude the client *)
    let rec find n =
      let holders = cluster.Cluster.data_holders.(n) in
      if Array.length holders = 2 && holders.(0) <> holders.(1)
         && (not (Array.mem client holders))
      then n
      else find (n + 1)
    in
    find 0
  in
  (* bounce-driven: kill the owner while the request is in flight *)
  let client = 7 in
  let node = pick_node ~client in
  let owner = cluster.Cluster.owner_of.(node) in
  let outcome = ref None in
  Cluster.fetch cluster ~client ~node ~on_done:(fun o -> outcome := Some o);
  Cluster.kill cluster owner;
  Cluster.run_until cluster (Cluster.now cluster +. 20.0);
  (match !outcome with
  | Some (Cluster.Fetched _) -> ()
  | Some Cluster.Fetch_failed -> Alcotest.fail "fetch must fail over to the surviving holder"
  | None -> Alcotest.fail "fetch never completed");
  Cluster.revive cluster owner;
  (* timer-driven: the owner is alive but silently unreachable *)
  let client2 = 11 in
  let node2 = pick_node ~client:client2 in
  let owner2 = cluster.Cluster.owner_of.(node2) in
  ignore (Net.partition cluster.Cluster.net ~a:[ client2 ] ~b:[ owner2 ]);
  let outcome2 = ref None in
  Cluster.fetch cluster ~client:client2 ~node:node2 ~on_done:(fun o -> outcome2 := Some o);
  Cluster.run_until cluster (Cluster.now cluster +. 20.0);
  (match !outcome2 with
  | Some (Cluster.Fetched _) -> ()
  | Some Cluster.Fetch_failed -> Alcotest.fail "fetch must time out onto the other holder"
  | None -> Alcotest.fail "partitioned fetch never finalized");
  Alcotest.(check int) "no fetch left pending" 0 (Array.fold_left (fun a h -> a + Hashtbl.length h) 0 cluster.Cluster.pending_fetches)

let test_fetch_failover_many_holders () =
  (* Regression for the failover holder filter: with many data copies the
     tried-set is consulted once per remaining holder on every attempt, so
     a long failover chain (here 11 dead holders before the survivor) used
     to cost O(tried²) list scans.  Behavior must be unchanged: walk the
     dead holders via bounces, complete on the survivor, and fail cleanly
     when no holder is left. *)
  let tree = Build.balanced ~arity:2 ~levels:5 in
  let config =
    {
      Config.default with
      Config.num_servers = 32;
      seed = 8;
      data_copies = 12;
      rpc_timeout = 0.5;
      max_retries = 3;
      retry_backoff = 2.0;
    }
  in
  let cluster = Cluster.create ~config ~tree () in
  let client = 3 in
  let node =
    let rec find n =
      let holders = cluster.Cluster.data_holders.(n) in
      if Array.length holders = 12 && not (Array.mem client holders) then n else find (n + 1)
    in
    find 0
  in
  let holders = cluster.Cluster.data_holders.(node) in
  (* keep exactly one non-owner holder alive *)
  let survivor = holders.(Array.length holders - 1) in
  Array.iter (fun h -> if h <> survivor then Cluster.kill cluster h) holders;
  let outcome = ref None in
  Cluster.fetch cluster ~client ~node ~on_done:(fun o -> outcome := Some o);
  Cluster.run_until cluster (Cluster.now cluster +. 30.0);
  (match !outcome with
  | Some (Cluster.Fetched _) -> ()
  | Some Cluster.Fetch_failed ->
    Alcotest.fail "fetch must fail over across 11 dead holders to the survivor"
  | None -> Alcotest.fail "fetch never completed");
  (* with the survivor also gone, the chain exhausts and fails cleanly *)
  Cluster.kill cluster survivor;
  let outcome2 = ref None in
  Cluster.fetch cluster ~client ~node ~on_done:(fun o -> outcome2 := Some o);
  Cluster.run_until cluster (Cluster.now cluster +. 60.0);
  (match !outcome2 with
  | Some Cluster.Fetch_failed -> ()
  | Some (Cluster.Fetched _) -> Alcotest.fail "no holder is alive; fetch cannot succeed"
  | None -> Alcotest.fail "exhausted fetch never finalized");
  Alcotest.(check int) "no fetch left pending" 0 (Array.fold_left (fun a h -> a + Hashtbl.length h) 0 cluster.Cluster.pending_fetches)

let test_dead_link_degrades_but_never_deadlocks () =
  (* 100% loss on one directed link for the whole run (a directed
     partition is exactly that).  Every request must still finalize:
     resolved or counted dropped, nothing stuck. *)
  let tree = Build.balanced ~arity:2 ~levels:5 in
  let config =
    {
      Config.default with
      Config.num_servers = 16;
      seed = 14;
      rpc_timeout = 0.5;
      max_retries = 2;
      retry_backoff = 2.0;
    }
  in
  let cluster = Cluster.create ~config ~tree () in
  ignore (Net.partition ~directed:true cluster.Cluster.net ~a:[ 0 ] ~b:[ 1 ]);
  Scenario.run cluster ~phases:(Stream.unif ~rate:100.0 ~duration:20.0) ~seed:8;
  Cluster.run_until cluster (Cluster.now cluster +. 20.0);
  let m = Cluster.metrics cluster in
  Alcotest.(check int) "accounting identity" m.Metrics.injected
    (m.Metrics.resolved + Metrics.dropped_total m);
  Alcotest.(check int) "no query pending" 0 (Array.fold_left (fun a h -> a + Hashtbl.length h) 0 cluster.Cluster.pending_queries);
  Alcotest.(check bool) "link dropped traffic" true (m.Metrics.net_blocked > 0);
  Alcotest.(check bool)
    (Printf.sprintf "still mostly working: %d/%d" m.Metrics.resolved m.Metrics.injected)
    true
    (float_of_int m.Metrics.resolved /. float_of_int m.Metrics.injected > 0.9);
  Cluster.check_invariants cluster

(* ------------------------------------------------------------------ *)
(* Membership change (ownership handoff extension)                     *)
(* ------------------------------------------------------------------ *)

let test_handoff_transfers_ownership () =
  let cluster = mk_cluster () in
  let node = 23 in
  let donor = cluster.Cluster.owner_of.(node) in
  let recipient = (donor + 1) mod Cluster.num_servers cluster in
  Cluster.handoff cluster ~node ~to_:recipient;
  Alcotest.(check int) "ground truth moved" recipient cluster.Cluster.owner_of.(node);
  Alcotest.(check bool) "donor no longer hosts" false
    (Server.hosts (Cluster.server cluster donor) node);
  (match Server.find_hosted (Cluster.server cluster recipient) node with
  | Some h -> Alcotest.(check bool) "recipient owns" true (h.Server.h_kind = Server.Owned)
  | None -> Alcotest.fail "recipient must host");
  Alcotest.(check bool) "data moved" true
    (Array.exists (fun h -> h = recipient) cluster.Cluster.data_holders.(node));
  Cluster.check_invariants cluster;
  (* lookups still resolve, from anywhere *)
  let before = (Cluster.metrics cluster).Metrics.resolved in
  Cluster.inject cluster ~src:((donor + 3) mod 24) ~dst:node;
  Cluster.inject cluster ~src:donor ~dst:node;
  Cluster.run_until cluster (Cluster.now cluster +. 10.0);
  Alcotest.(check int) "both resolve post-handoff" (before + 2)
    (Cluster.metrics cluster).Metrics.resolved;
  Alcotest.check_raises "double handoff" (Invalid_argument "Cluster.handoff: already the owner")
    (fun () -> Cluster.handoff cluster ~node ~to_:recipient)

let test_handoff_upgrades_replica () =
  let cluster = mk_cluster () in
  run_uniform ~rate:250.0 ~duration:15.0 cluster;
  (* find a replica and hand its node's ownership to the replica holder *)
  let holder =
    Array.to_list cluster.Cluster.servers |> List.find (fun s -> s.Server.replica_count > 0)
  in
  let node = List.hd (Server.replica_nodes holder) in
  Cluster.handoff cluster ~node ~to_:holder.Server.id;
  (match Server.find_hosted holder node with
  | Some h -> Alcotest.(check bool) "upgraded in place" true (h.Server.h_kind = Server.Owned)
  | None -> Alcotest.fail "holder must own now");
  Cluster.check_invariants cluster

let test_graceful_leave_keeps_namespace_reachable () =
  let cluster = mk_cluster ~servers:16 ~levels:5 () in
  let leaver = 3 in
  let owned = Server.owned_nodes (Cluster.server cluster leaver) in
  Cluster.graceful_leave cluster leaver;
  Alcotest.(check bool) "left" false (Cluster.server cluster leaver).Server.alive;
  Alcotest.(check int) "nothing owned anymore" 0
    (Cluster.server cluster leaver).Server.owned_count;
  Cluster.check_invariants cluster;
  (* every node it used to own still resolves *)
  let before = (Cluster.metrics cluster).Metrics.resolved in
  List.iter (fun dst -> Cluster.inject cluster ~src:((leaver + 1) mod 16) ~dst) owned;
  Cluster.run_until cluster (Cluster.now cluster +. 30.0);
  Alcotest.(check int) "all former nodes resolve"
    (before + List.length owned)
    (Cluster.metrics cluster).Metrics.resolved

let test_monitor_series_collected () =
  let cluster = mk_cluster () in
  run_uniform ~rate:100.0 ~duration:10.0 cluster;
  let m = Cluster.metrics cluster in
  Alcotest.(check bool) "load series sampled" true
    (Timeseries.num_bins m.Metrics.load_mean_ts >= 9);
  let means = Timeseries.means m.Metrics.load_mean_ts in
  Alcotest.(check bool) "loads in range" true
    (Array.for_all (fun l -> l >= 0.0 && l <= 1.0) means);
  Alcotest.(check bool) "some load measured" true (Array.exists (fun l -> l > 0.0) means)

let test_replicas_per_level_shapes () =
  let cluster = mk_cluster ~servers:16 ~levels:5 () in
  Scenario.run cluster
    ~phases:[ { Stream.duration = 20.0; rate = 250.0; dist = Stream.Zipf { alpha = 1.2; reshuffle = true } } ]
    ~seed:5;
  let created = Cluster.replicas_per_level cluster `Created in
  let current = Cluster.replicas_per_level cluster `Current in
  Alcotest.(check int) "level arrays span namespace" 6 (Array.length created);
  Alcotest.(check bool) "created >= current everywhere" true
    (Array.for_all2 (fun a b -> a >= b) created current);
  Alcotest.(check bool) "something replicated" true (Array.exists (fun x -> x > 0.0) created)

(* Property: arbitrary interleavings of kill / revive / handoff / traffic
   preserve every structural invariant, and afterwards each node owned by
   an alive server still resolves. *)
let prop_membership_churn_invariants =
  QCheck.Test.make ~name:"cluster: membership churn preserves invariants" ~count:12
    QCheck.(pair (int_bound 1000) (list_of_size (Gen.int_range 4 16) (pair (int_bound 3) (int_bound 15))))
    (fun (seed, ops) ->
      let tree = Build.balanced ~arity:2 ~levels:5 in
      let config = { Config.default with Config.num_servers = 16; seed = seed + 1 } in
      let cluster = Cluster.create ~config ~tree () in
      let run_for secs = Cluster.run_until cluster (Cluster.now cluster +. secs) in
      List.iter
        (fun (op, arg) ->
          (match op with
          | 0 -> Cluster.kill cluster arg
          | 1 -> Cluster.revive cluster arg
          | 2 ->
            let node = (arg * 7) mod Tree.size tree in
            let to_ = (arg + 3) mod 16 in
            let owner_alive = (Cluster.server cluster cluster.Cluster.owner_of.(node)).Server.alive in
            if
              (Cluster.server cluster to_).Server.alive
              && owner_alive
              && cluster.Cluster.owner_of.(node) <> to_
            then Cluster.handoff cluster ~node ~to_
          | _ ->
            if Cluster.alive_servers cluster > 0 then
              Cluster.inject_uniform_src cluster ~dst:(arg mod Tree.size tree));
          run_for 0.5)
        ops;
      (* bring everyone back and verify reachability of the namespace *)
      for sid = 0 to 15 do
        Cluster.revive cluster sid
      done;
      run_for 5.0;
      Cluster.check_invariants cluster;
      let before = (Cluster.metrics cluster).Metrics.resolved in
      let probes = [ 0; 3; 9; 17; 30; 45; 60 ] in
      List.iter (fun dst -> Cluster.inject cluster ~src:(dst mod 16) ~dst) probes;
      run_for 60.0;
      (Cluster.metrics cluster).Metrics.resolved = before + List.length probes)

let () =
  Alcotest.run "terradir_cluster"
    [
      ( "bootstrap",
        [
          Alcotest.test_case "placement" `Quick test_bootstrap_placement;
          Alcotest.test_case "round robin" `Quick test_round_robin_placement;
          Alcotest.test_case "injection validation" `Quick test_injection_validation;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "all resolve at low load" `Slow test_all_resolve_at_low_load;
          Alcotest.test_case "latency sane" `Slow test_latency_sane;
          Alcotest.test_case "caching reduces hops" `Slow test_caching_reduces_hops;
          Alcotest.test_case "single query trace" `Quick test_single_query_trace;
          Alcotest.test_case "determinism" `Slow test_determinism;
          Alcotest.test_case "seed sensitivity" `Slow test_seed_sensitivity;
          Alcotest.test_case "monitor series" `Slow test_monitor_series_collected;
          Alcotest.test_case "replica level shapes" `Slow test_replicas_per_level_shapes;
        ] );
      ( "membership",
        [
          Alcotest.test_case "handoff" `Quick test_handoff_transfers_ownership;
          Alcotest.test_case "handoff upgrades replica" `Slow test_handoff_upgrades_replica;
          Alcotest.test_case "graceful leave" `Quick test_graceful_leave_keeps_namespace_reachable;
        ] );
      ( "failures",
        [
          Alcotest.test_case "kill loses soft state" `Slow test_kill_loses_soft_state;
          Alcotest.test_case "replica failure survivable" `Slow test_queries_survive_replica_failure;
          Alcotest.test_case "owner failure scoped" `Slow test_owner_failure_drops_only_its_nodes;
        ] );
      ( "network-faults",
        [
          Alcotest.test_case "partition+heal recovers" `Slow test_partition_heal_recovers;
          Alcotest.test_case "faulty run deterministic" `Slow test_partition_heal_deterministic;
          Alcotest.test_case "no retries measurably worse" `Slow test_no_retries_measurably_worse;
          Alcotest.test_case "fetch fails over" `Quick test_owner_lost_mid_fetch_fails_over;
          Alcotest.test_case "fetch failover, many holders" `Quick test_fetch_failover_many_holders;
          Alcotest.test_case "dead link no deadlock" `Slow test_dead_link_degrades_but_never_deadlocks;
        ] );
      ( "cluster-props",
        List.map (QCheck_alcotest.to_alcotest ~long:false) [ prop_membership_churn_invariants ] );
    ]
