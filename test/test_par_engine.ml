(* Parallel-engine equivalence: the sharded conservative engine must be
   BYTE-IDENTICAL to the sequential one — same metrics, same CSVs, same
   flight-recorder stream — for every domain count K and every shard
   assignment.  The whole file runs under TERRADIR_AUDIT=1 (test/dune),
   so each run_until here also ends with a full invariant pass on the
   multi-domain engine.

   Local CI machines may expose a single core; OCaml domains still
   interleave correctly there, so these tests exercise the full
   synchronization protocol regardless of the host's parallelism. *)

open Terradir
open Terradir_namespace
open Terradir_workload

let mk_config ?(servers = 24) ?(scheduler = `Heap) ~domains () =
  {
    Config.default with
    Config.num_servers = servers;
    scheduler;
    engine_domains = domains;
    seed = 11;
  }

(* One standard workload: uniform stream with two-step accesses, enough
   traffic for replication sessions, caching, and data fetches to all
   fire.  Returns the full metrics CSV — any trajectory difference is a
   byte diff here. *)
let run_workload ?shard_of ?(obs = Terradir_obs.Obs.null) ?(servers = 24)
    ?(scheduler = `Heap) ?(mutate = fun _ -> ()) ~domains () =
  let config = mk_config ~servers ~scheduler ~domains () in
  let tree = Build.balanced ~arity:2 ~levels:6 in
  let cluster = Cluster.create ?shard_of ~obs ~config ~tree () in
  mutate cluster;
  Scenario.run cluster
    ~phases:(Stream.unif ~rate:150.0 ~duration:8.0)
    ~seed:3 ~fetch_probability:0.25;
  Cluster.run_until cluster (Cluster.now cluster +. 4.0);
  (cluster, Terradir_experiments.Csv_export.metrics_csv (Cluster.metrics cluster))

let csv_of ?shard_of ?obs ?servers ?scheduler ?mutate ~domains () =
  snd (run_workload ?shard_of ?obs ?servers ?scheduler ?mutate ~domains ())

let check_equal label a b =
  if not (String.equal a b) then begin
    let first_diff =
      let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
      let rec go i = function
        | x :: xs, y :: ys -> if String.equal x y then go (i + 1) (xs, ys) else (i, x, y)
        | x :: _, [] -> (i, x, "<missing>")
        | [], y :: _ -> (i, "<missing>", y)
        | [], [] -> (i, "", "")
      in
      go 1 (la, lb)
    in
    let line, x, y = first_diff in
    Alcotest.failf "%s: first difference at line %d:\n  a: %s\n  b: %s" label line x y
  end

let test_k_equivalence () =
  let k1 = csv_of ~domains:1 () in
  let k2 = csv_of ~domains:2 () in
  let k4 = csv_of ~domains:4 () in
  check_equal "K=1 vs K=2" k1 k2;
  check_equal "K=1 vs K=4" k1 k4

let test_k_equivalence_calendar () =
  let k1 = csv_of ~scheduler:`Calendar ~domains:1 () in
  let k4 = csv_of ~scheduler:`Calendar ~domains:4 () in
  check_equal "calendar K=1 vs K=4" k1 k4;
  (* scheduler choice is behavior-neutral on the parallel engine too *)
  check_equal "heap K=2 vs calendar K=2" (csv_of ~domains:2 ())
    (csv_of ~scheduler:`Calendar ~domains:2 ())

let test_k_equivalence_under_faults () =
  (* Jitter exercises the per-sender latency streams, loss + timers the
     retransmission machinery (issuer-owned timer events), all under a
     tightened lookahead (base - jitter). *)
  let faulty domains =
    let config =
      {
        (mk_config ~servers:16 ~domains ()) with
        Config.net_jitter = 0.01;
        net_loss = 0.02;
        rpc_timeout = 0.4;
        max_retries = 2;
      }
    in
    let tree = Build.balanced ~arity:2 ~levels:5 in
    let cluster = Cluster.create ~config ~tree () in
    Scenario.run cluster ~phases:(Stream.unif ~rate:120.0 ~duration:8.0) ~seed:5;
    Cluster.run_until cluster (Cluster.now cluster +. 6.0);
    Terradir_experiments.Csv_export.metrics_csv (Cluster.metrics cluster)
  in
  check_equal "faulty K=1 vs K=3" (faulty 1) (faulty 3)

let test_k_equivalence_under_churn () =
  (* Kill and revive mid-stream: fail-stop, bounce-backs, and epoch
     cancellation are driver-side cross-shard writes — they must land at
     their canonical position in the global order. *)
  let churny domains =
    let mutate cluster =
      let engine = cluster.Cluster.engine in
      Terradir_sim.Engine.schedule_at engine 2.5 (fun () -> Cluster.kill cluster 3);
      Terradir_sim.Engine.schedule_at engine 5.0 (fun () -> Cluster.revive cluster 3)
    in
    csv_of ~servers:16 ~mutate ~domains ()
  in
  check_equal "churn K=1 vs K=2" (churny 1) (churny 2)

let test_obs_off_vs_full () =
  (* Recording is passive: enabling the flight recorder must not change
     the trajectory, on the parallel engine included. *)
  let with_obs level =
    let obs = Terradir_obs.Obs.create ~capacity:4096 ~level () in
    csv_of ~obs ~domains:2 ()
  in
  check_equal "K=2 obs Off vs Full" (csv_of ~domains:2 ()) (with_obs Terradir_obs.Obs.Full)

let test_recorder_stream_k_independent () =
  (* The merged per-lane flight-recorder ring must byte-match the
     sequential recorder: same events, same canonical order, same ring
     truncation.  (Probe sampling points differ between K=1 and K>=2 —
     cadence hooks fire at window barriers — but the event stream and the
     retained ring must not.) *)
  let events domains =
    let obs = Terradir_obs.Obs.create ~capacity:2048 ~level:Terradir_obs.Obs.Full () in
    let cluster, _ = run_workload ~obs ~domains () in
    ignore cluster;
    Terradir_obs.Export.events_csv (Terradir_obs.Obs.recorder obs)
  in
  let k1 = events 1 in
  let k2 = events 2 in
  let k4 = events 4 in
  check_equal "recorder K=1 vs K=2" k1 k2;
  check_equal "recorder K=2 vs K=4" k2 k4

let test_fallback_to_sequential () =
  let domains_of config =
    let tree = Build.balanced ~arity:2 ~levels:5 in
    let cluster = Cluster.create ~config ~tree () in
    Terradir_sim.Engine.domains cluster.Cluster.engine
  in
  (* oracle routing scans every server: no shard-local reads, no parallel mode *)
  Alcotest.(check int) "oracle_maps pins K=1" 1
    (domains_of { (mk_config ~servers:16 ~domains:4 ()) with Config.oracle_maps = true });
  (* a zero latency floor leaves no lookahead *)
  Alcotest.(check int) "zero network delay pins K=1" 1
    (domains_of { (mk_config ~servers:16 ~domains:4 ()) with Config.network_delay = 0.0 });
  (* more domains than servers is clamped, not an error *)
  let cluster =
    Cluster.create
      ~config:(mk_config ~servers:16 ~domains:64 ())
      ~tree:(Build.balanced ~arity:2 ~levels:5)
      ()
  in
  Alcotest.(check int) "domains clamped to num_servers" 16
    (Terradir_sim.Engine.domains cluster.Cluster.engine)

(* Randomized shard assignments: the observable outputs are a function of
   the CONFIG only, never of how servers are distributed over lanes. *)
let prop_shard_assignment_irrelevant =
  QCheck.Test.make ~name:"par engine: outputs independent of shard assignment" ~count:4
    QCheck.(pair (int_bound 1_000_000) (int_range 2 4))
    (fun (salt, domains) ->
      let baseline = csv_of ~servers:16 ~domains:1 () in
      let shard_of sid = (((sid * 2654435761) lxor salt) land max_int) mod domains in
      let sharded = csv_of ~servers:16 ~shard_of ~domains () in
      String.equal baseline sharded)

let () =
  Alcotest.run "par_engine"
    [
      ( "equivalence",
        [
          Alcotest.test_case "metrics CSV byte-identical for K in {1,2,4}" `Slow
            test_k_equivalence;
          Alcotest.test_case "calendar scheduler equivalent at K>=2" `Slow
            test_k_equivalence_calendar;
          Alcotest.test_case "loss+jitter+timers equivalent across K" `Slow
            test_k_equivalence_under_faults;
          Alcotest.test_case "kill/revive equivalent across K" `Slow
            test_k_equivalence_under_churn;
          Alcotest.test_case "obs Off vs Full at K=2" `Slow test_obs_off_vs_full;
          Alcotest.test_case "flight-recorder stream K-independent" `Slow
            test_recorder_stream_k_independent;
          Alcotest.test_case "sequential fallbacks" `Quick test_fallback_to_sequential;
          QCheck_alcotest.to_alcotest prop_shard_assignment_irrelevant;
        ] );
    ]
