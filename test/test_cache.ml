(* Tests for the per-server node cache (§2.4 semantics). *)

open Terradir_util
open Terradir

let mk ?(slots = 4) () = Cache.create ~slots ~r_map:4 ~rng:(Splitmix.create 5) ()

let map1 server = Node_map.singleton ~server ~stamp:1.0 ()

let test_insert_use () =
  let c = mk () in
  Cache.insert c ~node:10 (map1 1);
  (match Cache.use c ~node:10 with
  | Some m -> Alcotest.(check bool) "map present" true (Node_map.mem m 1)
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check (option Alcotest.reject)) "miss"
    None
    (Option.map (fun _ -> assert false) (Cache.use c ~node:99));
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 1 (Cache.misses c)

let test_insert_merges () =
  let c = mk () in
  Cache.insert c ~node:10 (map1 1);
  Cache.insert c ~node:10 (map1 2);
  match Cache.peek c ~node:10 with
  | Some m ->
    Alcotest.(check bool) "both servers" true (Node_map.mem m 1 && Node_map.mem m 2);
    Alcotest.(check int) "one entry" 1 (Cache.length c)
  | None -> Alcotest.fail "expected entry"

let test_insert_empty_ignored () =
  let c = mk () in
  Cache.insert c ~node:10 Node_map.empty;
  Alcotest.(check int) "empty maps not cached" 0 (Cache.length c)

let test_lru_touch_on_use () =
  let c = mk ~slots:2 () in
  Cache.insert c ~node:1 (map1 1);
  Cache.insert c ~node:2 (map1 2);
  ignore (Cache.use c ~node:1);
  (* 2 is now LRU *)
  Cache.insert c ~node:3 (map1 3);
  Alcotest.(check bool) "2 evicted" true (Cache.peek c ~node:2 = None);
  Alcotest.(check bool) "1 kept (touched)" true (Cache.peek c ~node:1 <> None)

let test_peek_does_not_promote () =
  let c = mk ~slots:2 () in
  Cache.insert c ~node:1 (map1 1);
  Cache.insert c ~node:2 (map1 2);
  ignore (Cache.peek c ~node:1);
  Cache.insert c ~node:3 (map1 3);
  Alcotest.(check bool) "1 evicted despite peek" true (Cache.peek c ~node:1 = None)

let test_update_prune () =
  let c = mk () in
  Cache.insert c ~node:5 (Node_map.of_entries ~max:4 [ { Node_map.server = 1; is_owner = false; stamp = 1.0 }; { Node_map.server = 2; is_owner = false; stamp = 2.0 } ]);
  Cache.update c ~node:5 ~f:(fun m -> Node_map.remove m 1);
  (match Cache.peek c ~node:5 with
  | Some m -> Alcotest.(check (list int)) "pruned" [ 2 ] (Node_map.servers m)
  | None -> Alcotest.fail "entry expected");
  (* pruning away everything drops the entry *)
  Cache.update c ~node:5 ~f:(fun m -> Node_map.remove m 2);
  Alcotest.(check bool) "empty entry dropped" true (Cache.peek c ~node:5 = None);
  Cache.update c ~node:404 ~f:(fun m -> m) (* absent: no-op *)

let test_disabled_cache () =
  let c = mk ~slots:0 () in
  Cache.insert c ~node:1 (map1 1);
  Alcotest.(check int) "nothing stored" 0 (Cache.length c);
  Alcotest.(check bool) "no hit" true (Cache.use c ~node:1 = None)

let test_remove_and_iter () =
  let c = mk () in
  List.iter (fun n -> Cache.insert c ~node:n (map1 n)) [ 1; 2; 3 ];
  Cache.remove c ~node:2;
  let seen = ref [] in
  Cache.iter c ~f:(fun node _ -> seen := node :: !seen);
  Alcotest.(check (list int)) "iter after remove" [ 1; 3 ] (List.sort compare !seen)

let prop_capacity =
  QCheck.Test.make ~name:"cache: length never exceeds slots" ~count:200
    QCheck.(pair (int_range 1 8) (small_list (int_bound 30)))
    (fun (slots, nodes) ->
      let c = mk ~slots () in
      List.iter (fun n -> Cache.insert c ~node:n (map1 n)) nodes;
      Cache.length c <= slots)

let prop_maps_bounded =
  QCheck.Test.make ~name:"cache: stored maps respect r_map" ~count:200
    QCheck.(small_list (pair (int_bound 3) (int_bound 20)))
    (fun inserts ->
      let c = mk () in
      List.iter (fun (node, server) -> Cache.insert c ~node (map1 server)) inserts;
      let ok = ref true in
      Cache.iter c ~f:(fun _ m -> if Node_map.size m > 4 then ok := false);
      !ok)

let () =
  Alcotest.run "terradir_cache"
    [
      ( "cache",
        [
          Alcotest.test_case "insert/use" `Quick test_insert_use;
          Alcotest.test_case "insert merges" `Quick test_insert_merges;
          Alcotest.test_case "empty ignored" `Quick test_insert_empty_ignored;
          Alcotest.test_case "lru touch" `Quick test_lru_touch_on_use;
          Alcotest.test_case "peek no promote" `Quick test_peek_does_not_promote;
          Alcotest.test_case "update/prune" `Quick test_update_prune;
          Alcotest.test_case "disabled" `Quick test_disabled_cache;
          Alcotest.test_case "remove/iter" `Quick test_remove_and_iter;
        ] );
      ( "cache-props",
        List.map (QCheck_alcotest.to_alcotest ~long:false) [ prop_capacity; prop_maps_bounded ] );
    ]
