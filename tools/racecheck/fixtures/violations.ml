(* Deliberate domain-safety violations, one block per rule; racecheck's
   diagnostics on this file are pinned byte-for-byte in expected.txt.
   The file is parsed by the race check, never compiled, so the Engine /
   Shard references need no real implementation behind them. *)

(* --- bare-shared-mutable: a bare ref written from lane-reachable code --- *)

let hits = ref 0

let on_event () = hits := !hits + 1

let install engine = Engine.schedule engine ~delay:1.0 on_event

(* --- inconsistent-guard: guarded at one write site, bare at another --- *)

let lock = Mutex.create ()

let table = Hashtbl.create 16

let guarded_add k v = Mutex.protect lock (fun () -> Hashtbl.replace table k v)

let bare_add k v = Hashtbl.replace table k v

let churn engine =
  Engine.schedule engine ~delay:1.0 (fun () ->
      guarded_add 1 2;
      bare_add 3 4)

(* --- atomic-read-modify-write: get -> set loses concurrent updates --- *)

let counter = Atomic.make 0

let bump () = Atomic.set counter (Atomic.get counter + 1)

let tick engine = Engine.schedule engine ~delay:1.0 bump

(* --- outbox-bypass: lane state mutated behind the engine's back --- *)

let sneak lane = Shard.enqueue lane ~key:0.0 ~tie:0 ~tag:0 (fun () -> ())

(* --- suppression hygiene --- *)

(* A justified annotation silences its finding (and is thereby used): *)
let silenced = ref 0 (* race: bare-shared-mutable fixture: stands in for pre-spawn-only writes *)

let poke () = silenced := 1

let arm engine = Engine.schedule engine ~delay:1.0 poke

(* race: bare-shared-mutable *)
let naked = ref 0

let touch () = naked := 1

let rearm engine = Engine.schedule engine ~delay:1.0 touch

(* race: outbox-bypass nothing on the next line bypasses anything *)
let idle () = ()

(* --- pooled-message cross-lane misuse: a recycled message from a shared
   free list is pushed straight onto another lane's queue, skipping the
   window outbox (the only legal cross-lane channel for pooled records,
   whose ownership migrates with the traffic) --- *)

let msg_pool = Queue.create ()

let recycle msg = Queue.push msg msg_pool

let reinject_stolen lane =
  Shard.enqueue lane ~key:0.0 ~tie:0 ~tag:0 (fun () -> Queue.pop msg_pool)

let pump engine = Engine.schedule engine ~delay:1.0 (fun () -> recycle 1)
